// The logical operator tree that represents the *input* query.
//
// Queries enter the optimizer as an operator tree over base relations, the
// way a parser + initial translator would produce them (paper Sec. 4.1: the
// set of relations, the set of operators, and a hypergraph built from them
// by the conflict detector). The plan generator then reorders freely within
// the limits of the conflict rules.

#ifndef EADP_ALGEBRA_OPERATOR_TREE_H_
#define EADP_ALGEBRA_OPERATOR_TREE_H_

#include <memory>
#include <string>
#include <vector>

#include "algebra/aggregate.h"
#include "algebra/predicate.h"
#include "common/bitset.h"

namespace eadp {

class Catalog;

/// The binary operators of Fig. 1 that can appear as internal nodes of an
/// input operator tree, plus the unary grouping used at the root.
enum class OpKind {
  kJoin,       ///< B   inner join
  kLeftSemi,   ///< N   left semijoin
  kLeftAnti,   ///< T   left antijoin
  kLeftOuter,  ///< E   left outerjoin (generalized with defaults)
  kFullOuter,  ///< K   full outerjoin (generalized with defaults)
  kGroupJoin,  ///< Z   left groupjoin (von Bültzingsloewen)
};

/// Short operator name, e.g. "join", "louter".
const char* OpKindName(OpKind kind);

/// True for operators where e1 ◦ e2 ≡ e2 ◦ e1 (inner and full outer join).
bool IsCommutative(OpKind kind);

/// True for operators whose result contains only attributes from the left
/// input (semijoin, antijoin, groupjoin).
bool LeftOnlyOutput(OpKind kind);

/// One additional conjunct on a kJoin node, flattened into its own
/// operator (see OpTreeNode::extra_predicates).
struct ExtraPredicate {
  JoinPredicate predicate;
  double selectivity = 1.0;
};

/// A node of the input operator tree. Leaves carry a base relation index,
/// internal nodes a binary operator with its predicate.
struct OpTreeNode {
  bool is_leaf = false;
  int relation = -1;  ///< leaf: base relation index

  OpKind kind = OpKind::kJoin;  ///< internal: operator
  JoinPredicate predicate;      ///< internal: join predicate
  double selectivity = 1.0;     ///< internal: estimated predicate selectivity
  /// internal, kGroupJoin only: the aggregation vector F̂ evaluated over the
  /// join partners of each left tuple; result columns are appended to the
  /// left tuple.
  AggregateVector groupjoin_aggs;
  /// internal, kJoin only: further conjuncts of this node's predicate,
  /// each flattened into a *separate* inner-join operator (its own
  /// hyperedge). σ_{p∧q}(e1 × e2) ≡ σ_q(σ_p(e1 × e2)), so splitting a
  /// conjunction over freely reorderable inner joins preserves semantics
  /// while exposing each equality to the enumerator as an individual
  /// graph edge — a clique query enumerates densely instead of
  /// collapsing to the left-deep prefix chain its n-1 conjoined
  /// operators would force (queries/query_generator.h,
  /// per_edge_predicates).
  std::vector<ExtraPredicate> extra_predicates;

  std::unique_ptr<OpTreeNode> left;
  std::unique_ptr<OpTreeNode> right;

  static std::unique_ptr<OpTreeNode> Leaf(int relation);
  static std::unique_ptr<OpTreeNode> Binary(OpKind kind,
                                            std::unique_ptr<OpTreeNode> l,
                                            std::unique_ptr<OpTreeNode> r,
                                            JoinPredicate pred,
                                            double selectivity);

  /// T(node): the set of base relations in this subtree.
  RelSet Relations() const;

  /// Pretty-prints the subtree (indented, one node per line).
  std::string ToString(const Catalog& catalog, int indent = 0) const;
};

}  // namespace eadp

#endif  // EADP_ALGEBRA_OPERATOR_TREE_H_
