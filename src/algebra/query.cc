#include "algebra/query.h"

#include <cassert>

#include "common/strings.h"

namespace eadp {

Query Query::FromTree(Catalog catalog, std::unique_ptr<OpTreeNode> root,
                      AttrSet group_by, AggregateVector aggregates) {
  Query q;
  q.catalog_ = std::move(catalog);
  q.group_by_ = group_by;
  q.aggregates_ = std::move(aggregates);
  q.all_rels_ = root->Relations();
  q.root_ = std::move(root);
  q.Flatten(q.root_.get());

  // Visible relations: walk the tree; right subtrees of semi/anti/group
  // joins are invisible above the operator.
  q.visible_rels_ = q.all_rels_;
  for (const QueryOp& op : q.ops_) {
    if (LeftOnlyOutput(op.kind)) {
      q.visible_rels_ = q.visible_rels_.Minus(op.right_rels);
    }
  }
  return q;
}

void Query::Flatten(const OpTreeNode* node) {
  if (node->is_leaf) return;
  Flatten(node->left.get());
  Flatten(node->right.get());
  QueryOp op;
  op.kind = node->kind;
  op.predicate = node->predicate;
  op.selectivity = node->selectivity;
  op.groupjoin_aggs = node->groupjoin_aggs;
  op.left_rels = node->left->Relations();
  op.right_rels = node->right->Relations();
  ops_.push_back(std::move(op));
  // Extra conjuncts become separate inner-join operators over the same
  // subtrees (operator_tree.h): each is its own hyperedge for the
  // enumerator, and the selectivity product equals the conjoined
  // predicate's.
  RelSet left_rels = node->left->Relations();
  RelSet right_rels = node->right->Relations();
  for (const ExtraPredicate& extra : node->extra_predicates) {
    QueryOp split;
    split.kind = OpKind::kJoin;
    split.predicate = extra.predicate;
    split.selectivity = extra.selectivity;
    split.left_rels = left_rels;
    split.right_rels = right_rels;
    ops_.push_back(std::move(split));
  }
}

void Query::Canonicalize() {
  if (canonicalized_) return;
  canonicalized_ = true;
  AggregateVector out;
  for (const AggregateFunction& f : aggregates_) {
    if (f.kind == AggKind::kAvg && !f.distinct) {
      AggregateFunction sum_part;
      sum_part.output = f.output + "$sum";
      sum_part.kind = AggKind::kSum;
      sum_part.arg = f.arg;
      AggregateFunction cnt_part;
      cnt_part.output = f.output + "$cnt";
      cnt_part.kind = AggKind::kCountNN;
      cnt_part.arg = f.arg;
      FinalDivision div;
      div.output = f.output;
      div.numerator_slot = static_cast<int>(out.size());
      div.denominator_slot = static_cast<int>(out.size()) + 1;
      final_divisions_.push_back(div);
      out.push_back(std::move(sum_part));
      out.push_back(std::move(cnt_part));
    } else {
      out.push_back(f);
    }
  }
  aggregates_ = std::move(out);
}

RelSet Query::OpSes(const QueryOp& op) const {
  RelSet ses = catalog_.RelationsOf(op.predicate.ReferencedAttrs());
  for (const AggregateFunction& f : op.groupjoin_aggs) {
    if (f.arg >= 0) ses.Add(catalog_.RelationOf(f.arg));
  }
  return ses;
}

AttrSet Query::GroupByPlus(RelSet rels) const {
  AttrSet own = catalog_.AttributesOf(rels);
  AttrSet result = group_by_.Intersect(own);
  for (const QueryOp& op : ops_) {
    // Pending: the operator has not yet been applied within `rels`. An
    // operator is applied exactly at the cut where its syntactic
    // eligibility set (SES) first spans the two sides, so it is pending iff
    // its SES is not contained in `rels`. (The original subtree relation
    // sets are NOT the right test: reordering can apply an operator inside
    // a smaller set than its original subtrees spanned.)
    RelSet ses = OpSes(op);
    if (ses.Intersects(rels) && !ses.IsSubsetOf(rels)) {
      result.UnionWith(op.predicate.ReferencedAttrs().Intersect(own));
      // A pending groupjoin's aggregate arguments must survive as well.
      for (const AggregateFunction& f : op.groupjoin_aggs) {
        if (f.arg >= 0 && own.Contains(f.arg)) result.Add(f.arg);
      }
    }
  }
  return result;
}

bool Query::PendingGroupJoinRightIntersects(RelSet rels) const {
  for (const QueryOp& op : ops_) {
    if (op.kind != OpKind::kGroupJoin) continue;
    // Pending: not yet applied within `rels` (SES containment, see above).
    if (!OpSes(op).IsSubsetOf(rels) && op.right_rels.Intersects(rels)) {
      return true;
    }
  }
  return false;
}

std::string Query::ToString() const {
  std::string s = "Query over " + all_rels_.ToString() + "\n";
  s += "  group by: " + catalog_.AttrSetToString(group_by_) + "\n";
  std::vector<std::string> aggs;
  for (const AggregateFunction& f : aggregates_) {
    aggs.push_back(f.ToString(f.arg >= 0 ? catalog_.attribute(f.arg).name
                                         : std::string()));
  }
  s += "  aggregates: " + StrJoin(aggs, ", ") + "\n";
  if (root_) s += root_->ToString(catalog_, 1);
  return s;
}

}  // namespace eadp
