#include "algebra/predicate.h"

#include "catalog/catalog.h"
#include "common/strings.h"

namespace eadp {

AttrSet JoinPredicate::ReferencedAttrs() const {
  AttrSet s;
  for (const auto& eq : eqs_) {
    s.Add(eq.left_attr);
    s.Add(eq.right_attr);
  }
  return s;
}

AttrSet JoinPredicate::LeftAttrs() const {
  AttrSet s;
  for (const auto& eq : eqs_) s.Add(eq.left_attr);
  return s;
}

AttrSet JoinPredicate::RightAttrs() const {
  AttrSet s;
  for (const auto& eq : eqs_) s.Add(eq.right_attr);
  return s;
}

std::string JoinPredicate::ToString(const Catalog& catalog) const {
  std::vector<std::string> parts;
  for (const auto& eq : eqs_) {
    parts.push_back(catalog.attribute(eq.left_attr).name + "=" +
                    catalog.attribute(eq.right_attr).name);
  }
  return StrJoin(parts, " AND ");
}

}  // namespace eadp
