// Join predicates: conjunctions of attribute equalities.
//
// The paper's random workload attaches equality join predicates to the
// internal nodes of random operator trees; TPC-H join predicates are column
// equalities as well. Equality predicates are null-rejecting on both sides,
// which enables the footnote conditions of the assoc/l-asscom/r-asscom
// property tables used by the conflict detector.

#ifndef EADP_ALGEBRA_PREDICATE_H_
#define EADP_ALGEBRA_PREDICATE_H_

#include <string>
#include <vector>

#include "common/bitset.h"

namespace eadp {

class Catalog;

/// One equality `left_attr = right_attr` between global catalog attributes.
struct AttrEquality {
  int left_attr = -1;
  int right_attr = -1;
};

/// A conjunction of attribute equalities.
class JoinPredicate {
 public:
  JoinPredicate() = default;
  explicit JoinPredicate(std::vector<AttrEquality> eqs) : eqs_(std::move(eqs)) {}

  void AddEquality(int left_attr, int right_attr) {
    eqs_.push_back({left_attr, right_attr});
  }

  const std::vector<AttrEquality>& equalities() const { return eqs_; }
  bool empty() const { return eqs_.empty(); }

  /// F(q): all attributes referenced by the predicate.
  AttrSet ReferencedAttrs() const;

  /// Attributes referenced on the "left" position of each equality.
  AttrSet LeftAttrs() const;
  /// Attributes referenced on the "right" position of each equality.
  AttrSet RightAttrs() const;

  /// Equality predicates reject NULLs on every referenced attribute.
  bool IsNullRejecting() const { return !eqs_.empty(); }

  /// Renders e.g. "R0.a=R1.b AND R0.c=R1.d".
  std::string ToString(const Catalog& catalog) const;

 private:
  std::vector<AttrEquality> eqs_;
};

}  // namespace eadp

#endif  // EADP_ALGEBRA_PREDICATE_H_
