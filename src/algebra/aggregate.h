// Aggregate functions and their algebraic properties (paper Sec. 2.1).
//
// The eager-aggregation equivalences hinge on three properties of an
// aggregation vector F:
//   * splittability (Def. 1): F = F1 ◦ F2 where each part references
//     attributes of only one join argument. In this library every aggregate
//     references at most one base attribute, so splitting is by attribute
//     ownership and is always possible; count(*) (special case S1) can join
//     either side.
//   * decomposability (Def. 2): agg(X ∪ Y) = agg2(agg1(X), agg1(Y)).
//     min/max/sum/count are decomposable, the distinct-sensitive variants
//     sum(distinct)/count(distinct)/avg(distinct) are not. avg is handled by
//     canonicalizing it into sum/countNN + a final division (Sec. 2.1.2).
//   * duplicate sensitivity (Sec. 2.1.3): duplicate-agnostic functions
//     (min, max, *(distinct)) pass through the ⊗ adjustment unchanged;
//     duplicate-sensitive ones (sum, count) must be scaled by the count
//     attribute(s) introduced by groupings on the other side(s).

#ifndef EADP_ALGEBRA_AGGREGATE_H_
#define EADP_ALGEBRA_AGGREGATE_H_

#include <string>
#include <vector>

#include "common/bitset.h"

namespace eadp {

/// The aggregate function kinds understood by the optimizer and executor.
enum class AggKind {
  kCountStar,   ///< count(*)
  kCount,       ///< count(a) — counts non-NULL values of a
  kCountNN,     ///< countNN(a): alias of count(a); kept distinct for clarity
                ///< when it appears in avg decompositions (Sec. 2.1.2)
  kSum,         ///< sum(a)
  kMin,         ///< min(a)
  kMax,         ///< max(a)
  kAvg,         ///< avg(a) — canonicalized to sum/countNN by the optimizer
};

/// Returns a lower-case name, e.g. "sum".
const char* AggKindName(AggKind kind);

/// One aggregate function application `output : agg([distinct] arg)` at the
/// query level. `arg` is a global catalog attribute id, or -1 for count(*).
struct AggregateFunction {
  std::string output;   ///< result attribute name, e.g. "b1"
  AggKind kind = AggKind::kCountStar;
  int arg = -1;         ///< catalog attribute id; -1 iff kind == kCountStar
  bool distinct = false;

  /// Renders as e.g. "b1:sum(R0.a)" given the attribute name.
  std::string ToString(const std::string& arg_name) const;
};

/// A vector F of aggregate functions (paper notation F = F1 ◦ F2).
using AggregateVector = std::vector<AggregateFunction>;

/// True iff the function's result is independent of duplicates in its input
/// (Class D of Yan and Larson). min, max and all distinct-qualified
/// functions are duplicate agnostic; sum, count, avg are duplicate
/// sensitive.
bool IsDuplicateAgnostic(const AggregateFunction& f);

/// True iff the function is decomposable in the sense of Def. 2.
/// sum/count/countNN/min/max and their non-distinct forms are; the
/// duplicate-eliminating forms sum(distinct), count(distinct),
/// avg(distinct) are not. avg itself is decomposable only via its
/// sum/countNN canonicalization, so this returns false for kAvg — callers
/// must canonicalize first (Query::Canonicalize does).
bool IsDecomposable(const AggregateFunction& f);

/// The inner aggregate agg1 of the decomposition agg = agg2 ∘ agg1
/// (sum→sum, count→count, count(*)→count(*), min→min, max→max).
/// Precondition: IsDecomposable(f).
AggKind InnerDecomposition(AggKind kind);

/// The outer aggregate agg2 of the decomposition
/// (sum→sum, count→sum, count(*)→sum, min→min, max→max).
/// Precondition: IsDecomposable(f).
AggKind OuterDecomposition(AggKind kind);

/// The value an aggregate yields on the single null-tuple {⊥}, used for the
/// default vectors of generalized outer joins (paper Sec. 3, Fig. 3 and the
/// count(*)({⊥}) := 1 convention of A.5.1).
enum class NullTupleDefault {
  kOne,   ///< count(*) over {⊥} = 1
  kZero,  ///< count(a)/countNN(a) over {⊥} = 0 (a is NULL)
  kNull,  ///< sum/min/max/avg over {⊥} = NULL
};

/// Default value of `kind` applied to {⊥} (see NullTupleDefault).
NullTupleDefault DefaultOnNullTuple(AggKind kind);

}  // namespace eadp

#endif  // EADP_ALGEBRA_AGGREGATE_H_
