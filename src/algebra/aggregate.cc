#include "algebra/aggregate.h"

#include <cassert>

namespace eadp {

const char* AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kCountStar:
      return "count(*)";
    case AggKind::kCount:
      return "count";
    case AggKind::kCountNN:
      return "countNN";
    case AggKind::kSum:
      return "sum";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
    case AggKind::kAvg:
      return "avg";
  }
  return "?";
}

std::string AggregateFunction::ToString(const std::string& arg_name) const {
  std::string s = output + ":";
  if (kind == AggKind::kCountStar) {
    s += "count(*)";
  } else {
    s += AggKindName(kind);
    s += "(";
    if (distinct) s += "distinct ";
    s += arg_name;
    s += ")";
  }
  return s;
}

bool IsDuplicateAgnostic(const AggregateFunction& f) {
  if (f.distinct) return true;
  return f.kind == AggKind::kMin || f.kind == AggKind::kMax;
}

bool IsDecomposable(const AggregateFunction& f) {
  if (f.distinct) {
    // min(distinct)/max(distinct) equal their non-distinct forms and remain
    // decomposable; sum/count/avg(distinct) are not (Sec. 2.1.2).
    return f.kind == AggKind::kMin || f.kind == AggKind::kMax;
  }
  switch (f.kind) {
    case AggKind::kCountStar:
    case AggKind::kCount:
    case AggKind::kCountNN:
    case AggKind::kSum:
    case AggKind::kMin:
    case AggKind::kMax:
      return true;
    case AggKind::kAvg:
      return false;  // decomposable only after sum/countNN canonicalization
  }
  return false;
}

AggKind InnerDecomposition(AggKind kind) {
  switch (kind) {
    case AggKind::kCountStar:
    case AggKind::kCount:
    case AggKind::kCountNN:
    case AggKind::kSum:
    case AggKind::kMin:
    case AggKind::kMax:
      return kind;
    case AggKind::kAvg:
      break;
  }
  assert(false && "not decomposable");
  return kind;
}

AggKind OuterDecomposition(AggKind kind) {
  switch (kind) {
    case AggKind::kCountStar:
    case AggKind::kCount:
    case AggKind::kCountNN:
    case AggKind::kSum:
      return AggKind::kSum;
    case AggKind::kMin:
      return AggKind::kMin;
    case AggKind::kMax:
      return AggKind::kMax;
    case AggKind::kAvg:
      break;
  }
  assert(false && "not decomposable");
  return kind;
}

NullTupleDefault DefaultOnNullTuple(AggKind kind) {
  switch (kind) {
    case AggKind::kCountStar:
      // count(*)(∅) := 1 in the context of outer join defaults (A.5.1).
      return NullTupleDefault::kOne;
    case AggKind::kCount:
    case AggKind::kCountNN:
      return NullTupleDefault::kZero;
    case AggKind::kSum:
    case AggKind::kMin:
    case AggKind::kMax:
    case AggKind::kAvg:
      return NullTupleDefault::kNull;
  }
  return NullTupleDefault::kNull;
}

}  // namespace eadp
