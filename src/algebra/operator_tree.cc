#include "algebra/operator_tree.h"

#include "catalog/catalog.h"
#include "common/strings.h"

namespace eadp {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kJoin:
      return "join";
    case OpKind::kLeftSemi:
      return "lsemi";
    case OpKind::kLeftAnti:
      return "lanti";
    case OpKind::kLeftOuter:
      return "louter";
    case OpKind::kFullOuter:
      return "fouter";
    case OpKind::kGroupJoin:
      return "groupjoin";
  }
  return "?";
}

bool IsCommutative(OpKind kind) {
  return kind == OpKind::kJoin || kind == OpKind::kFullOuter;
}

bool LeftOnlyOutput(OpKind kind) {
  return kind == OpKind::kLeftSemi || kind == OpKind::kLeftAnti ||
         kind == OpKind::kGroupJoin;
}

std::unique_ptr<OpTreeNode> OpTreeNode::Leaf(int relation) {
  auto node = std::make_unique<OpTreeNode>();
  node->is_leaf = true;
  node->relation = relation;
  return node;
}

std::unique_ptr<OpTreeNode> OpTreeNode::Binary(OpKind kind,
                                               std::unique_ptr<OpTreeNode> l,
                                               std::unique_ptr<OpTreeNode> r,
                                               JoinPredicate pred,
                                               double selectivity) {
  auto node = std::make_unique<OpTreeNode>();
  node->is_leaf = false;
  node->kind = kind;
  node->left = std::move(l);
  node->right = std::move(r);
  node->predicate = std::move(pred);
  node->selectivity = selectivity;
  return node;
}

RelSet OpTreeNode::Relations() const {
  if (is_leaf) return RelSet::Single(relation);
  RelSet s = left->Relations();
  s.UnionWith(right->Relations());
  return s;
}

std::string OpTreeNode::ToString(const Catalog& catalog, int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  if (is_leaf) {
    return pad + catalog.relation(relation).name + "\n";
  }
  std::string s = pad + OpKindName(kind) + " [" +
                  predicate.ToString(catalog) + "]\n";
  s += left->ToString(catalog, indent + 1);
  s += right->ToString(catalog, indent + 1);
  return s;
}

}  // namespace eadp
