// Query: the optimizer's input.
//
// A Query bundles the catalog, the flattened operator list of the input
// operator tree, the grouping attributes G and the aggregation vector F of
// the top grouping (paper: ΓG;F over the join tree). Flattening keeps, for
// every operator, the relation sets of its original left and right subtrees
// — exactly what the conflict detector (SIGMOD'13) needs.

#ifndef EADP_ALGEBRA_QUERY_H_
#define EADP_ALGEBRA_QUERY_H_

#include <memory>
#include <string>
#include <vector>

#include "algebra/aggregate.h"
#include "algebra/operator_tree.h"
#include "algebra/predicate.h"
#include "catalog/catalog.h"
#include "common/bitset.h"

namespace eadp {

/// One flattened operator of the input tree.
struct QueryOp {
  OpKind kind = OpKind::kJoin;
  JoinPredicate predicate;
  double selectivity = 1.0;
  AggregateVector groupjoin_aggs;  ///< kGroupJoin only

  RelSet left_rels;   ///< T(left(o)): relations of the original left subtree
  RelSet right_rels;  ///< T(right(o))

  RelSet Relations() const { return left_rels.Union(right_rels); }
};

/// A post-aggregation scalar computation, used to reconstitute avg after the
/// canonicalization avg(a) -> sum(a)/countNN(a) (Sec. 2.1.2). The final map
/// emits `output = numerator_slot / denominator_slot` (NULL if the
/// denominator is 0).
struct FinalDivision {
  std::string output;
  int numerator_slot = -1;    ///< index into Query::aggregates
  int denominator_slot = -1;  ///< index into Query::aggregates
};

/// The optimizer input: ΓG;F applied to an operator tree.
class Query {
 public:
  Query() = default;

  /// Builds a query from an operator tree. The tree is flattened; its
  /// ownership is retained so callers can still inspect or execute it.
  static Query FromTree(Catalog catalog, std::unique_ptr<OpTreeNode> root,
                        AttrSet group_by, AggregateVector aggregates);

  const Catalog& catalog() const { return catalog_; }
  Catalog* mutable_catalog() { return &catalog_; }

  const std::vector<QueryOp>& ops() const { return ops_; }
  const OpTreeNode* root() const { return root_.get(); }

  AttrSet group_by() const { return group_by_; }
  const AggregateVector& aggregates() const { return aggregates_; }
  const std::vector<FinalDivision>& final_divisions() const {
    return final_divisions_;
  }

  /// All relations referenced by the query.
  RelSet AllRelations() const { return all_rels_; }
  int NumRelations() const { return all_rels_.Count(); }

  /// Relations whose attributes are visible at the root of the original
  /// tree (relations hidden below the right side of a semijoin, antijoin or
  /// groupjoin contribute no attributes upward). Grouping attributes and
  /// aggregate arguments must come from visible relations.
  RelSet VisibleRelations() const { return visible_rels_; }

  /// Replaces every avg slot by a sum slot and a countNN slot and records a
  /// FinalDivision that recombines them; afterwards all aggregates are
  /// decomposable-or-distinct and the plan generators can reason uniformly.
  /// Idempotent.
  void Canonicalize();

  /// The syntactic eligibility set of an operator: the relations its
  /// predicate (and, for groupjoins, its aggregate vector) references.
  RelSet OpSes(const QueryOp& op) const;

  /// Attributes referenced by pending operator predicates between `rels`
  /// and its complement, plus the grouping attributes: G+ for the side
  /// `rels` (paper Sec. 3.1: G_i^+ = G_i ∪ J_i). Only attributes owned by
  /// `rels` are returned.
  AttrSet GroupByPlus(RelSet rels) const;

  /// True iff some pending groupjoin's right side intersects `rels`: the
  /// groupjoin's own aggregation must see raw (unaggregated) rows, so
  /// grouping `rels` early is invalid (see DESIGN.md §2).
  bool PendingGroupJoinRightIntersects(RelSet rels) const;

  /// Human-readable multi-line dump.
  std::string ToString() const;

 private:
  void Flatten(const OpTreeNode* node);

  Catalog catalog_;
  std::vector<QueryOp> ops_;
  std::unique_ptr<OpTreeNode> root_;
  AttrSet group_by_;
  AggregateVector aggregates_;
  std::vector<FinalDivision> final_divisions_;
  RelSet all_rels_;
  RelSet visible_rels_;
  bool canonicalized_ = false;
};

}  // namespace eadp

#endif  // EADP_ALGEBRA_QUERY_H_
