#include "cost/recost.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "cardinality/estimator.h"
#include "cost/cost_model.h"

namespace eadp {

namespace {

/// Inverse of PlanOpFromOpKind for the binary operators (the estimator
/// speaks OpKind).
bool OpKindOf(PlanOp op, OpKind* kind) {
  switch (op) {
    case PlanOp::kJoin: *kind = OpKind::kJoin; return true;
    case PlanOp::kLeftSemi: *kind = OpKind::kLeftSemi; return true;
    case PlanOp::kLeftAnti: *kind = OpKind::kLeftAnti; return true;
    case PlanOp::kLeftOuter: *kind = OpKind::kLeftOuter; return true;
    case PlanOp::kFullOuter: *kind = OpKind::kFullOuter; return true;
    case PlanOp::kGroupJoin: *kind = OpKind::kGroupJoin; return true;
    default: return false;
  }
}

/// Full per-node annotation set: the raw/pregroup chains feed parent
/// estimates exactly as during enumeration, so the recomputation is
/// bit-faithful, not just approximately equal.
struct NodeCards {
  double cost = 0;
  double cardinality = 0;
  double raw = 0;
  double pregroup = 0;
  bool ok = false;
};

NodeCards Walk(PlanPtr node, const Query& query,
               const CardinalityEstimator& estimator,
               const CostModel& cost_model) {
  NodeCards out;
  if (node == nullptr) return out;

  switch (node->op) {
    case PlanOp::kScan: {
      // Mirrors PlanBuilder::MakeScan.
      out.cardinality = estimator.BaseCardinality(node->relation);
      out.raw = out.cardinality;
      out.pregroup = out.cardinality;
      out.cost = cost_model.ScanCost();
      out.ok = true;
      return out;
    }

    case PlanOp::kJoin:
    case PlanOp::kLeftSemi:
    case PlanOp::kLeftAnti:
    case PlanOp::kLeftOuter:
    case PlanOp::kFullOuter:
    case PlanOp::kGroupJoin: {
      // Mirrors PlanBuilder::MakeJoin. The crossing payload stores the
      // applied operator indices; the selectivity product is recomputed
      // from the query's CURRENT operators in the stored order, matching
      // InternCrossing's multiplication order bit-for-bit.
      NodeCards l = Walk(node->left, query, estimator, cost_model);
      NodeCards r = Walk(node->right, query, estimator, cost_model);
      OpKind kind;
      if (!l.ok || !r.ok || node->crossing == nullptr ||
          !OpKindOf(node->op, &kind)) {
        return out;
      }
      const std::vector<QueryOp>& ops = query.ops();
      double selectivity = 1;
      for (int i : node->crossing->op_indices) {
        if (i < 0 || static_cast<size_t>(i) >= ops.size()) return out;
        selectivity *= ops[static_cast<size_t>(i)].selectivity;
      }

      if (node->op == PlanOp::kJoin) {
        out.raw = CardinalityEstimator::ClampCard(l.raw * r.raw * selectivity);
        out.cardinality = out.raw;
      } else {
        double right_match_distinct = r.cardinality;
        if (node->op == PlanOp::kLeftSemi || node->op == PlanOp::kLeftAnti) {
          AttrSet j2 = node->crossing->predicate.ReferencedAttrs().Intersect(
              query.catalog().AttributesOf(node->right->rels));
          right_match_distinct =
              estimator.GroupingCardinality(j2, r.pregroup);
        }
        out.cardinality = estimator.JoinCardinality(
            kind, l.cardinality, r.cardinality, selectivity,
            right_match_distinct);
      }
      if (node->duplicate_free) {
        out.cardinality = std::min(out.cardinality,
                                   estimator.KeyImpliedBound(node->keys()));
      }
      if (node->op != PlanOp::kJoin) out.raw = out.cardinality;
      out.pregroup = CardinalityEstimator::ClampCard(l.pregroup * r.pregroup *
                                                     selectivity);
      out.cost = cost_model.BinaryOpCost(out.cardinality, l.cost, r.cost);
      out.ok = true;
      return out;
    }

    case PlanOp::kGroup: {
      // Mirrors PlanBuilder::MakeGrouping.
      NodeCards child = Walk(node->left, query, estimator, cost_model);
      if (!child.ok) return out;
      out.cardinality =
          estimator.GroupingCardinality(node->group_by, child.cardinality);
      out.cardinality = std::min(out.cardinality,
                                 estimator.KeyImpliedBound(node->keys()));
      out.raw = out.cardinality;
      out.pregroup = child.pregroup;
      out.cost = cost_model.GroupingCost(out.cardinality, child.cost);
      out.ok = true;
      return out;
    }

    case PlanOp::kFinalGroup: {
      // Mirrors PlanBuilder::FinalizeTop's grouping half (no key cap
      // there: the final grouping's estimate stands on its own).
      NodeCards child = Walk(node->left, query, estimator, cost_model);
      if (!child.ok) return out;
      out.cardinality =
          estimator.GroupingCardinality(node->group_by, child.cardinality);
      out.raw = out.cardinality;
      out.pregroup = child.pregroup;
      out.cost = cost_model.GroupingCost(out.cardinality, child.cost);
      out.ok = true;
      return out;
    }

    case PlanOp::kFinalMap: {
      NodeCards child = Walk(node->left, query, estimator, cost_model);
      if (!child.ok) return out;
      out = child;
      out.cost = cost_model.MapCost(child.cost);
      return out;
    }
  }
  return out;
}

}  // namespace

RecostResult RecostPlan(PlanPtr plan, const Query& query) {
  RecostResult result;
  if (plan == nullptr) return result;
  CardinalityEstimator estimator(&query.catalog());
  CostModel cost_model;
  NodeCards root = Walk(plan, query, estimator, cost_model);
  result.cost = root.cost;
  result.cardinality = root.cardinality;
  result.ok = root.ok;
  return result;
}

namespace {

double FactorProduct(const std::vector<double>& from,
                     const std::vector<double>& to) {
  double scale = 1;
  for (size_t i = 0; i < from.size(); ++i) {
    uint64_t fb, tb;
    std::memcpy(&fb, &from[i], sizeof(fb));
    std::memcpy(&tb, &to[i], sizeof(tb));
    if (fb == tb) continue;
    if (!(from[i] > 0) || !(to[i] > 0)) return 0;
    double r = to[i] / from[i];
    double shrink = std::min(r, 1.0 / r);
    scale *= shrink * shrink;
  }
  return scale;
}

}  // namespace

double DriftCostScale(const StatsOverlay& from, const StatsOverlay& to) {
  if (from.rel_cardinality.size() != to.rel_cardinality.size() ||
      from.attr_distinct.size() != to.attr_distinct.size() ||
      from.op_selectivity.size() != to.op_selectivity.size()) {
    return 0;
  }
  double scale = FactorProduct(from.rel_cardinality, to.rel_cardinality);
  scale *= FactorProduct(from.attr_distinct, to.attr_distinct);
  scale *= FactorProduct(from.op_selectivity, to.op_selectivity);
  return scale;
}

}  // namespace eadp
