// Incremental plan re-costing under statistics drift.
//
// A cached plan's per-node cost/cardinality annotations were computed from
// the catalog statistics at plan time. When statistics drift, the plan's
// *structure* (join order, grouping placement, keys, predicates) is still a
// valid plan for the structural query class — only the numbers are stale.
// RecostPlan walks an existing PlanNode tree and recomputes cost and
// cardinality bottom-up under the query's CURRENT catalog, mirroring the
// exact formulas PlanBuilder (plangen/op_trees.cc) and the cost model
// apply during enumeration — without enumerating anything. Differential
// pin (tests/drift_test.cpp): with unchanged statistics, the re-costed
// root cost/cardinality are bit-identical to the stored annotations.
//
// This is the "re-evaluate the DP solution under new inputs" half of
// incremental maintenance for monotone dynamic programs (Henzinger et al.,
// PAPERS.md): re-costing is O(plan nodes) where re-planning is
// exponential-ish in relations, so a cache can afford it on every drifted
// hit. The second half — deciding whether the *optimum* may have moved —
// is approximated by DriftCostScale's sensitivity bound: every estimator
// formula is a product/min/max chain over the statistics, so scaling one
// statistic by r scales any plan's cost by at most max(r, 1/r)^2 (the
// exponent-2 covers antijoin/full-outer terms that are anti-monotone in a
// distinct count). The cached optimum's old cost times the product of
// min(r, 1/r)^2 over drifted statistics therefore lower-bounds the fresh
// optimum's cost, giving the serving layer (plangen/plan_cache.h) a cheap
// probe: if the re-costed cached plan is within drift_tolerance of that
// bound, no re-planning can improve on it by more than the tolerance.

#ifndef EADP_COST_RECOST_H_
#define EADP_COST_RECOST_H_

#include "algebra/query.h"
#include "plangen/plan.h"
#include "queries/fingerprint.h"

namespace eadp {

/// Root annotations recomputed under the current catalog.
struct RecostResult {
  double cost = 0;
  double cardinality = 0;
  /// False when the walk met a node shape it cannot re-cost (never the
  /// case for plans built by PlanBuilder; defensive for decoded blobs).
  bool ok = false;
};

/// Recomputes cost/cardinality of `plan` bottom-up under `query`'s current
/// catalog and operator selectivities. `query` must belong to the plan's
/// structural fingerprint class (same shapes and indices; statistics free
/// to differ). The plan is not mutated.
RecostResult RecostPlan(PlanPtr plan, const Query& query);

/// Sensitivity lower-bound factor for a statistics move `from` -> `to`:
/// the product over bit-differing statistics of min(r, 1/r)^2 with
/// r = to/from. Multiplying a plan cost computed under `from` by this
/// factor lower-bounds its (and by optimality of the cached plan, any
/// plan's) cost under `to`. Returns 1 when the overlays are bit-equal and
/// 0 when their shapes differ (forcing callers onto the re-plan path).
double DriftCostScale(const StatsOverlay& from, const StatsOverlay& to);

}  // namespace eadp

#endif  // EADP_COST_RECOST_H_
