// The C_out cost model (paper Sec. 4.4).
//
//   C_out(T) = 0                                if T is a single table
//            = |T| + C_out(T1) + C_out(T2)      if T = T1 ◦ T2
//            = |T| + C_out(T1)                  if T = Γ(T1)
//
// Map (χ) and projection (Π) nodes are free, matching the paper's remark
// that replacing a top grouping by a projection (Eqv. 42) removes its cost.

#ifndef EADP_COST_COST_MODEL_H_
#define EADP_COST_COST_MODEL_H_

namespace eadp {

class CostModel {
 public:
  /// Cost contribution of an operator node that produces `output_card`
  /// rows on top of children with the given accumulated costs.
  double BinaryOpCost(double output_card, double left_cost,
                      double right_cost) const {
    return output_card + left_cost + right_cost;
  }

  double GroupingCost(double output_card, double child_cost) const {
    return output_card + child_cost;
  }

  double ScanCost() const { return 0.0; }
  double MapCost(double child_cost) const { return child_cost; }
};

}  // namespace eadp

#endif  // EADP_COST_COST_MODEL_H_
