// Functional dependencies and candidate keys.
//
// The optimality-preserving pruning of Sec. 4.6 compares the FD closures of
// two plans; the paper notes this "can be weakened in an actual
// implementation by comparing the sets of candidate keys instead". We provide
// both: a full FD set with attribute-closure computation (used in tests and
// available to clients), and the compact candidate-key machinery the plan
// generator uses (KeySet in plangen/keys.h builds on the dominance helper
// here).

#ifndef EADP_CATALOG_FUNCTIONAL_DEPENDENCY_H_
#define EADP_CATALOG_FUNCTIONAL_DEPENDENCY_H_

#include <span>
#include <string>
#include <vector>

#include "common/bitset.h"

namespace eadp {

/// A functional dependency lhs -> rhs over global attribute ids.
struct FunctionalDependency {
  AttrSet lhs;
  AttrSet rhs;

  friend bool operator==(const FunctionalDependency& a,
                         const FunctionalDependency& b) {
    return a.lhs == b.lhs && a.rhs == b.rhs;
  }
};

/// A set of functional dependencies with closure queries.
class FdSet {
 public:
  void Add(AttrSet lhs, AttrSet rhs) { fds_.push_back({lhs, rhs}); }
  void Add(const FunctionalDependency& fd) { fds_.push_back(fd); }
  void AddAll(const FdSet& other);

  size_t size() const { return fds_.size(); }
  const std::vector<FunctionalDependency>& fds() const { return fds_; }

  /// Attribute closure: the largest set X+ with `attrs` -> X+ derivable from
  /// this FD set (standard fixpoint; O(|fds|^2) worst case, fine at our
  /// sizes).
  AttrSet Closure(AttrSet attrs) const;

  /// True iff lhs -> rhs is implied by this FD set.
  bool Implies(AttrSet lhs, AttrSet rhs) const {
    return Closure(lhs).ContainsAll(rhs);
  }

  /// True iff `attrs` determines all of `universe` (i.e. is a superkey of a
  /// relation with attribute set `universe`).
  bool IsSuperkey(AttrSet attrs, AttrSet universe) const {
    return Closure(attrs).ContainsAll(universe);
  }

  /// All minimal keys of `universe` under this FD set, found by breadth-first
  /// shrinking from `universe`. Exponential in the worst case; intended for
  /// tests and small schemas.
  std::vector<AttrSet> CandidateKeys(AttrSet universe) const;

  /// True iff every FD derivable from `other` is derivable from *this
  /// (i.e. Closure_this >= Closure_other pointwise on other's FDs).
  bool Covers(const FdSet& other) const;

 private:
  std::vector<FunctionalDependency> fds_;
};

/// Dominance helper for key sets (each key an AttrSet): `a` dominates `b`
/// iff every key in `b` is implied by (i.e. a superset of) some key in `a`.
/// A smaller key is stronger: k1 ⊆ k2 means k1 implies k2.
bool KeysDominate(std::span<const AttrSet> a, std::span<const AttrSet> b);
inline bool KeysDominate(const std::vector<AttrSet>& a,
                         const std::vector<AttrSet>& b) {
  return KeysDominate(std::span<const AttrSet>(a),
                      std::span<const AttrSet>(b));
}

/// Inserts `key` into `keys` keeping only minimal keys: drops the insert if a
/// subset is already present, and removes supersets of `key`.
void InsertMinimalKey(std::vector<AttrSet>& keys, AttrSet key);

}  // namespace eadp

#endif  // EADP_CATALOG_FUNCTIONAL_DEPENDENCY_H_
