#include "catalog/catalog.h"

#include <atomic>
#include <cassert>
#include <utility>

#include "common/strings.h"

namespace eadp {

uint64_t Catalog::NextCatalogId() {
  // Id 0 is never handed out: it marks "no catalog" in overlay identity
  // hints (queries/fingerprint.h StatsOverlay).
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

Catalog::Catalog() : catalog_id_(NextCatalogId()) {}

Catalog::Catalog(const Catalog& other)
    : relations_(other.relations_),
      attributes_(other.attributes_),
      catalog_id_(NextCatalogId()),
      stats_epoch_(other.stats_epoch_) {}

Catalog::Catalog(Catalog&& other) noexcept
    : relations_(std::move(other.relations_)),
      attributes_(std::move(other.attributes_)),
      catalog_id_(other.catalog_id_),
      stats_epoch_(other.stats_epoch_) {}

Catalog& Catalog::operator=(const Catalog& other) {
  if (this != &other) {
    relations_ = other.relations_;
    attributes_ = other.attributes_;
    catalog_id_ = NextCatalogId();
    stats_epoch_ = other.stats_epoch_;
  }
  return *this;
}

Catalog& Catalog::operator=(Catalog&& other) noexcept {
  if (this != &other) {
    relations_ = std::move(other.relations_);
    attributes_ = std::move(other.attributes_);
    catalog_id_ = other.catalog_id_;
    stats_epoch_ = other.stats_epoch_;
  }
  return *this;
}

int Catalog::AddRelation(const std::string& name, double cardinality) {
  assert(relations_.size() < static_cast<size_t>(kBitsetCapacity) &&
         "at most 128 relations per query");
  RelationDef def;
  def.name = name;
  def.cardinality = cardinality;
  relations_.push_back(def);
  return static_cast<int>(relations_.size()) - 1;
}

int Catalog::AddAttribute(int rel, const std::string& name, double distinct) {
  assert(rel >= 0 && rel < num_relations());
  assert(attributes_.size() < static_cast<size_t>(kBitsetCapacity) &&
         "at most 128 attributes per query");
  AttributeDef def;
  def.name = name;
  def.relation = rel;
  def.distinct = distinct;
  attributes_.push_back(def);
  int id = static_cast<int>(attributes_.size()) - 1;
  relations_[rel].attributes.Add(id);
  return id;
}

void Catalog::DeclareKey(int rel, AttrSet key_attrs) {
  assert(rel >= 0 && rel < num_relations());
  assert(relations_[rel].attributes.ContainsAll(key_attrs));
  relations_[rel].keys.push_back(key_attrs);
  relations_[rel].duplicate_free = true;
}

void Catalog::SetCardinality(int r, double cardinality) {
  assert(r >= 0 && r < num_relations());
  assert(cardinality >= 1);
  relations_[r].cardinality = cardinality;
  ++stats_epoch_;
}

void Catalog::SetDistinct(int a, double distinct) {
  assert(a >= 0 && a < num_attributes());
  assert(distinct >= 1);
  attributes_[a].distinct = distinct;
  ++stats_epoch_;
}

RelSet Catalog::RelationsOf(AttrSet attrs) const {
  RelSet rels;
  for (int a : BitsOf(attrs)) rels.Add(attributes_[a].relation);
  return rels;
}

AttrSet Catalog::AttributesOf(RelSet rels) const {
  AttrSet attrs;
  for (int r : BitsOf(rels)) attrs.UnionWith(relations_[r].attributes);
  return attrs;
}

std::string Catalog::AttrSetToString(AttrSet attrs) const {
  std::vector<std::string> names;
  for (int a : BitsOf(attrs)) names.push_back(attributes_[a].name);
  return StrJoin(names, ",");
}

}  // namespace eadp
