#include "catalog/functional_dependency.h"

#include <algorithm>

namespace eadp {

void FdSet::AddAll(const FdSet& other) {
  fds_.insert(fds_.end(), other.fds_.begin(), other.fds_.end());
}

AttrSet FdSet::Closure(AttrSet attrs) const {
  AttrSet closure = attrs;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& fd : fds_) {
      if (closure.ContainsAll(fd.lhs) && !closure.ContainsAll(fd.rhs)) {
        closure.UnionWith(fd.rhs);
        changed = true;
      }
    }
  }
  return closure;
}

std::vector<AttrSet> FdSet::CandidateKeys(AttrSet universe) const {
  std::vector<AttrSet> keys;
  if (!IsSuperkey(universe, universe)) return keys;  // cannot happen, but safe
  // Start from the universe and greedily shrink along every order; to stay
  // exact we do a BFS over superkeys, keeping minimal ones.
  std::vector<AttrSet> frontier = {universe};
  std::vector<AttrSet> seen = {universe};
  while (!frontier.empty()) {
    std::vector<AttrSet> next;
    for (AttrSet sk : frontier) {
      bool shrank = false;
      for (int a : BitsOf(sk)) {
        AttrSet candidate = sk;
        candidate.Remove(a);
        if (IsSuperkey(candidate, universe)) {
          shrank = true;
          if (std::find(seen.begin(), seen.end(), candidate) == seen.end()) {
            seen.push_back(candidate);
            next.push_back(candidate);
          }
        }
      }
      if (!shrank) InsertMinimalKey(keys, sk);
    }
    frontier = std::move(next);
  }
  return keys;
}

bool FdSet::Covers(const FdSet& other) const {
  for (const auto& fd : other.fds()) {
    if (!Implies(fd.lhs, fd.rhs)) return false;
  }
  return true;
}

bool KeysDominate(std::span<const AttrSet> a, std::span<const AttrSet> b) {
  for (AttrSet kb : b) {
    bool implied = false;
    for (AttrSet ka : a) {
      if (ka.IsSubsetOf(kb)) {
        implied = true;
        break;
      }
    }
    if (!implied) return false;
  }
  return true;
}

void InsertMinimalKey(std::vector<AttrSet>& keys, AttrSet key) {
  for (AttrSet existing : keys) {
    if (existing.IsSubsetOf(key)) return;  // `key` is redundant
  }
  keys.erase(std::remove_if(keys.begin(), keys.end(),
                            [key](AttrSet existing) {
                              return key.IsSubsetOf(existing);
                            }),
             keys.end());
  keys.push_back(key);
}

}  // namespace eadp
