// Schema catalog: relations, attributes, declared keys and statistics.
//
// A Catalog describes the inputs of one query: every base relation with its
// cardinality and declared keys, and every attribute with its estimated
// number of distinct values. Attributes are numbered globally across the
// whole query (at most 128 per query), so sets of attributes are plain
// Bitset128 values, mirroring the relation sets used by the enumerator.

#ifndef EADP_CATALOG_CATALOG_H_
#define EADP_CATALOG_CATALOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bitset.h"

namespace eadp {

/// One column of a base relation.
struct AttributeDef {
  std::string name;     ///< e.g. "R1.a"
  int relation = -1;    ///< index of the owning relation in the catalog
  double distinct = 1;  ///< estimated number of distinct values
};

/// One base relation.
struct RelationDef {
  std::string name;            ///< e.g. "customer"
  double cardinality = 1;      ///< estimated row count
  AttrSet attributes;          ///< global attribute ids owned by this relation
  std::vector<AttrSet> keys;   ///< declared keys (each a set of attributes)

  /// SQL primary key / uniqueness declarations imply the relation is
  /// duplicate-free (paper Sec. 3.2, Remark). Relations without keys are
  /// treated as bags that may contain duplicates.
  bool duplicate_free = false;
};

/// The schema for one query. Cheap to copy; typically built once per query.
///
/// Drift identity: every Catalog instance carries a process-unique
/// `catalog_id` and a monotonically increasing `stats_epoch`. The epoch is
/// bumped by the statistics mutators (SetCardinality/SetDistinct) only —
/// schema growth (AddRelation/AddAttribute/DeclareKey) happens before a
/// catalog is planned against and does not count as drift. Together,
/// (catalog_id, stats_epoch) lets a cache answer "are these the statistics
/// I planned under?" without comparing statistic bytes: equal pairs imply
/// unchanged stats. Copies take a FRESH id (two copies can be mutated
/// independently; sharing an id would let their epochs alias), moves keep
/// the id (the object is the same logical catalog relocated).
class Catalog {
 public:
  Catalog();
  Catalog(const Catalog& other);
  Catalog(Catalog&& other) noexcept;
  Catalog& operator=(const Catalog& other);
  Catalog& operator=(Catalog&& other) noexcept;

  /// Adds a relation with the given name and cardinality; returns its index.
  int AddRelation(const std::string& name, double cardinality);

  /// Adds an attribute to relation `rel`; returns its global attribute id.
  int AddAttribute(int rel, const std::string& name, double distinct);

  /// Declares `key_attrs` (attributes of `rel`) as a key of `rel` and marks
  /// the relation duplicate-free.
  void DeclareKey(int rel, AttrSet key_attrs);

  /// Statistics mutators (used by the workload fuzzer to perturb base
  /// statistics in place). Values must be finite and >= 1; consistency
  /// between a key attribute's distinct count and its relation's
  /// cardinality is the caller's responsibility. Each call bumps
  /// stats_epoch(), even when the new value equals the old one — the epoch
  /// is a cheap conservative signal, and false positives just cost a byte
  /// comparison downstream (queries/fingerprint.h SameStats).
  void SetCardinality(int r, double cardinality);
  void SetDistinct(int a, double distinct);

  /// Process-unique identity of this catalog instance (fresh on copy,
  /// preserved on move).
  uint64_t catalog_id() const { return catalog_id_; }
  /// Bumped by every statistics mutation. Starts at 0.
  uint64_t stats_epoch() const { return stats_epoch_; }

  int num_relations() const { return static_cast<int>(relations_.size()); }
  int num_attributes() const { return static_cast<int>(attributes_.size()); }

  const RelationDef& relation(int r) const { return relations_[r]; }
  const AttributeDef& attribute(int a) const { return attributes_[a]; }

  /// The relation owning attribute `a`.
  int RelationOf(int a) const { return attributes_[a].relation; }

  /// The set of relations that own at least one attribute in `attrs`.
  RelSet RelationsOf(AttrSet attrs) const;

  /// All attributes owned by the relations in `rels`.
  AttrSet AttributesOf(RelSet rels) const;

  /// Distinct-value estimate for attribute `a`.
  double DistinctOf(int a) const { return attributes_[a].distinct; }

  /// Human-readable attribute list, e.g. "R0.a,R1.b".
  std::string AttrSetToString(AttrSet attrs) const;

 private:
  static uint64_t NextCatalogId();

  std::vector<RelationDef> relations_;
  std::vector<AttributeDef> attributes_;
  uint64_t catalog_id_ = 0;
  uint64_t stats_epoch_ = 0;
};

}  // namespace eadp

#endif  // EADP_CATALOG_CATALOG_H_
