// DPhyp: enumeration of csg-cmp-pairs of a hypergraph.
//
// Implements the enumerator of Moerkotte & Neumann ("Dynamic Programming
// Strikes Back", SIGMOD 2008), which emits every csg-cmp-pair (Def. 3 of
// the paper under reproduction) exactly once, in an order compatible with
// bottom-up dynamic programming: both components of a pair are emitted
// after all of their own sub-pairs.
//
// Invariants: the node universe is bounded to 128 (one Bitset128 word); for
// each unordered pair {S1, S2} exactly one orientation is emitted, and
// dphyp_test cross-checks emission counts against closed forms (chains,
// cycles, stars, cliques) and a brute-force csg-cmp enumeration.

#ifndef EADP_HYPERGRAPH_DPHYP_ENUMERATOR_H_
#define EADP_HYPERGRAPH_DPHYP_ENUMERATOR_H_

#include <cstdint>
#include <functional>

#include "common/bitset.h"
#include "hypergraph/hypergraph.h"

namespace eadp {

/// Callback invoked for every csg-cmp-pair (S1, S2). The pair is emitted in
/// one orientation only; callers handle commutativity themselves.
using CcpCallback = std::function<void(RelSet, RelSet)>;

/// Enumerates all csg-cmp-pairs of `graph`, invoking `cb` for each.
/// Returns the number of pairs emitted.
uint64_t EnumerateCsgCmpPairs(const Hypergraph& graph, const CcpCallback& cb);

/// Counts csg-cmp-pairs without a callback (for tests and statistics).
uint64_t CountCsgCmpPairs(const Hypergraph& graph);

}  // namespace eadp

#endif  // EADP_HYPERGRAPH_DPHYP_ENUMERATOR_H_
