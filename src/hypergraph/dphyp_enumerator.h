// DPhyp: enumeration of csg-cmp-pairs of a hypergraph.
//
// Implements the enumerator of Moerkotte & Neumann ("Dynamic Programming
// Strikes Back", SIGMOD 2008), which emits every csg-cmp-pair (Def. 3 of
// the paper under reproduction) exactly once, in an order compatible with
// bottom-up dynamic programming: both components of a pair are emitted
// after all of their own sub-pairs.
//
// Invariants: the node universe is bounded to 128 (one Bitset128 word); for
// each unordered pair {S1, S2} exactly one orientation is emitted, and
// dphyp_test cross-checks emission counts against closed forms (chains,
// cycles, stars, cliques) and a brute-force csg-cmp enumeration.

#ifndef EADP_HYPERGRAPH_DPHYP_ENUMERATOR_H_
#define EADP_HYPERGRAPH_DPHYP_ENUMERATOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/bitset.h"
#include "hypergraph/hypergraph.h"

namespace eadp {

/// Callback invoked for every csg-cmp-pair (S1, S2). The pair is emitted in
/// one orientation only; callers handle commutativity themselves.
using CcpCallback = std::function<void(RelSet, RelSet)>;

/// Enumerates all csg-cmp-pairs of `graph`, invoking `cb` for each.
/// Returns the number of pairs emitted.
uint64_t EnumerateCsgCmpPairs(const Hypergraph& graph, const CcpCallback& cb);

/// Counts csg-cmp-pairs without a callback (for tests and statistics).
uint64_t CountCsgCmpPairs(const Hypergraph& graph);

/// One csg-cmp-pair, materialized.
struct CcpPair {
  RelSet s1;
  RelSet s2;
};

/// Materializes every csg-cmp-pair bucketed by |S1 ∪ S2|: on return,
/// (*levels)[k] holds — in emission order — exactly the pairs whose union
/// has k relations (entries 0 and 1 stay empty; `levels` is sized
/// num_nodes()+1). This is the schedule the intra-query parallel DP runs:
/// every source class of a level-k pair belongs to a strictly smaller
/// level, and the only level-k class a pair touches is its own union — so
/// levels can be processed with a barrier between them while pairs within
/// a level spread across workers, partitioned by target class
/// (plangen/parallel_dp.h). Returns the total pair count.
uint64_t CollectCsgCmpPairsBySize(const Hypergraph& graph,
                                  std::vector<std::vector<CcpPair>>* levels);

}  // namespace eadp

#endif  // EADP_HYPERGRAPH_DPHYP_ENUMERATOR_H_
