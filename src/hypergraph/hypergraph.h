// Query hypergraphs.
//
// The conflict detector encodes reordering constraints as hyperedges
// (Moerkotte, Fender & Eich, SIGMOD'13): every operator of the input tree
// contributes one hyperedge (L, R) where L and R are the parts of its TES
// on its original left and right side. Simple binary edges are the special
// case |L| = |R| = 1. The DPhyp enumerator walks this structure.

#ifndef EADP_HYPERGRAPH_HYPERGRAPH_H_
#define EADP_HYPERGRAPH_HYPERGRAPH_H_

#include <string>
#include <vector>

#include "common/bitset.h"

namespace eadp {

/// One hyperedge: the two hypernodes plus the index of the operator (into
/// Query::ops) it stems from.
struct Hyperedge {
  RelSet left;
  RelSet right;
  int op_index = -1;
};

/// A hypergraph over relations {0, ..., num_nodes-1}.
class Hypergraph {
 public:
  explicit Hypergraph(int num_nodes) : num_nodes_(num_nodes) {}

  void AddEdge(RelSet left, RelSet right, int op_index) {
    edges_.push_back({left, right, op_index});
  }

  int num_nodes() const { return num_nodes_; }
  const std::vector<Hyperedge>& edges() const { return edges_; }

  /// DPhyp neighborhood: representatives of hypernodes reachable from S
  /// while avoiding the forbidden set X. For every edge (u, v) with
  /// u ⊆ S and v ∩ (S ∪ X) = ∅, the representative min(v) is added
  /// (and symmetrically for v ⊆ S).
  RelSet Neighborhood(RelSet s, RelSet x) const;

  /// True iff some edge connects a subset of `s1` with a subset of `s2`
  /// (in either orientation).
  bool Connects(RelSet s1, RelSet s2) const;

  /// True iff `s` induces a connected subgraph.
  bool IsConnected(RelSet s) const;

  std::string ToString() const;

 private:
  int num_nodes_;
  std::vector<Hyperedge> edges_;
};

}  // namespace eadp

#endif  // EADP_HYPERGRAPH_HYPERGRAPH_H_
