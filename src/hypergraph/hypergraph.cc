#include "hypergraph/hypergraph.h"

#include "common/strings.h"

namespace eadp {

RelSet Hypergraph::Neighborhood(RelSet s, RelSet x) const {
  RelSet forbidden = s.Union(x);
  RelSet n;
  for (const Hyperedge& e : edges_) {
    if (e.left.IsSubsetOf(s) && !e.right.Intersects(forbidden)) {
      n.Add(e.right.Lowest());
    }
    if (e.right.IsSubsetOf(s) && !e.left.Intersects(forbidden)) {
      n.Add(e.left.Lowest());
    }
  }
  return n;
}

bool Hypergraph::Connects(RelSet s1, RelSet s2) const {
  for (const Hyperedge& e : edges_) {
    if (e.left.IsSubsetOf(s1) && e.right.IsSubsetOf(s2)) return true;
    if (e.left.IsSubsetOf(s2) && e.right.IsSubsetOf(s1)) return true;
  }
  return false;
}

bool Hypergraph::IsConnected(RelSet s) const {
  if (s.empty()) return false;
  if (s.Count() == 1) return true;
  RelSet reached = s.LowestBit();
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Hyperedge& e : edges_) {
      if (!e.left.IsSubsetOf(s) || !e.right.IsSubsetOf(s)) continue;
      if (e.left.IsSubsetOf(reached) && !e.right.IsSubsetOf(reached)) {
        reached.UnionWith(e.right);
        changed = true;
      } else if (e.right.IsSubsetOf(reached) && !e.left.IsSubsetOf(reached)) {
        reached.UnionWith(e.left);
        changed = true;
      }
    }
  }
  return reached == s;
}

std::string Hypergraph::ToString() const {
  std::string s = StrFormat("Hypergraph(%d nodes)\n", num_nodes_);
  for (const Hyperedge& e : edges_) {
    s += "  " + e.left.ToString() + " -- " + e.right.ToString() +
         StrFormat(" (op %d)\n", e.op_index);
  }
  return s;
}

}  // namespace eadp
