#include "hypergraph/dphyp_enumerator.h"

#include <vector>

namespace eadp {

namespace {

/// Templated on the emit callback so the per-pair call inlines: the
/// enumeration itself is a few bitset operations per pair, and routing
/// every emission through a std::function indirection measurably taxes the
/// cheap generators (kDphyp/kH1). The public std::function entry points
/// instantiate this once; CollectCsgCmpPairsBySize instantiates it with
/// the direct bucketing lambda.
template <typename EmitFn>
class Enumerator {
 public:
  Enumerator(const Hypergraph& graph, const EmitFn& emit)
      : graph_(graph), emit_(emit) {}

  uint64_t Run() {
    int n = graph_.num_nodes();
    for (int v = n - 1; v >= 0; --v) {
      RelSet s1 = RelSet::Single(v);
      EmitCsg(s1);
      EnumerateCsgRec(s1, RelSet::Below(v + 1));
    }
    return count_;
  }

 private:
  void EmitCsg(RelSet s1) {
    RelSet x = s1.Union(RelSet::Below(s1.Lowest() + 1));
    RelSet n = graph_.Neighborhood(s1, x);
    // Descending order over the neighborhood.
    std::vector<int> members;
    for (int v : BitsOf(n)) members.push_back(v);
    for (auto it = members.rbegin(); it != members.rend(); ++it) {
      int v = *it;
      RelSet s2 = RelSet::Single(v);
      if (graph_.Connects(s1, s2)) Emit(s1, s2);
      // Forbid smaller-or-equal neighbors so each S2 is grown exactly once.
      RelSet below_v = n.Intersect(RelSet::Below(v + 1));
      EnumerateCmpRec(s1, s2, x.Union(below_v));
    }
  }

  void EnumerateCsgRec(RelSet s1, RelSet x) {
    RelSet n = graph_.Neighborhood(s1, x);
    if (n.empty()) return;
    for (RelSet sub : SubsetsOf(n)) {
      RelSet grown = s1.Union(sub);
      if (graph_.IsConnected(grown)) EmitCsg(grown);
    }
    for (RelSet sub : SubsetsOf(n)) {
      EnumerateCsgRec(s1.Union(sub), x.Union(n));
    }
  }

  void EnumerateCmpRec(RelSet s1, RelSet s2, RelSet x) {
    RelSet n = graph_.Neighborhood(s2, x);
    if (n.empty()) return;
    for (RelSet sub : SubsetsOf(n)) {
      RelSet grown = s2.Union(sub);
      if (graph_.IsConnected(grown) && graph_.Connects(s1, grown)) {
        Emit(s1, grown);
      }
    }
    for (RelSet sub : SubsetsOf(n)) {
      EnumerateCmpRec(s1, s2.Union(sub), x.Union(n));
    }
  }

  void Emit(RelSet s1, RelSet s2) {
    ++count_;
    emit_(s1, s2);
  }

  const Hypergraph& graph_;
  const EmitFn& emit_;
  uint64_t count_ = 0;
};

template <typename EmitFn>
uint64_t RunEnumeration(const Hypergraph& graph, const EmitFn& emit) {
  Enumerator<EmitFn> e(graph, emit);
  return e.Run();
}

}  // namespace

uint64_t EnumerateCsgCmpPairs(const Hypergraph& graph, const CcpCallback& cb) {
  if (!cb) return CountCsgCmpPairs(graph);
  return RunEnumeration(graph, cb);
}

uint64_t CountCsgCmpPairs(const Hypergraph& graph) {
  return RunEnumeration(graph, [](RelSet, RelSet) {});
}

uint64_t CollectCsgCmpPairsBySize(const Hypergraph& graph,
                                  std::vector<std::vector<CcpPair>>* levels) {
  levels->clear();
  levels->resize(static_cast<size_t>(graph.num_nodes()) + 1);
  return RunEnumeration(graph, [levels](RelSet s1, RelSet s2) {
    (*levels)[static_cast<size_t>(s1.Union(s2).Count())].push_back({s1, s2});
  });
}

}  // namespace eadp
