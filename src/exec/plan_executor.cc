#include "exec/plan_executor.h"

#include <cassert>

namespace eadp {

namespace {

/// Translates a JoinPredicate into an ExecPredicate against the two child
/// tables. Each equality's attributes may come from either child (the plan
/// may have swapped argument order relative to the input tree), so sides
/// are resolved by schema lookup.
ExecPredicate BindPredicate(const JoinPredicate& pred, const Catalog& catalog,
                            const Table& left, const Table& right) {
  ExecPredicate out;
  for (const AttrEquality& eq : pred.equalities()) {
    const std::string& a = catalog.attribute(eq.left_attr).name;
    const std::string& b = catalog.attribute(eq.right_attr).name;
    ColumnCondition c;
    c.op = CmpOp::kEq;
    if (left.ColumnIndex(a) >= 0 && right.ColumnIndex(b) >= 0) {
      c.left_column = a;
      c.right_column = b;
    } else {
      assert(left.ColumnIndex(b) >= 0 && right.ColumnIndex(a) >= 0);
      c.left_column = b;
      c.right_column = a;
    }
    out.push_back(std::move(c));
  }
  return out;
}

DefaultVector BindDefaults(const std::vector<SymbolicDefault>& defaults) {
  DefaultVector out;
  for (const SymbolicDefault& d : defaults) {
    out.push_back({d.column, Value::Int(d.one ? 1 : 0)});
  }
  return out;
}

std::vector<std::string> GroupColumnNames(AttrSet attrs,
                                          const Catalog& catalog) {
  std::vector<std::string> names;
  for (int a : BitsOf(attrs)) names.push_back(catalog.attribute(a).name);
  return names;
}

std::vector<ExecAggregate> BindGroupjoinAggs(const AggregateVector& aggs,
                                             const Catalog& catalog,
                                             int op_index) {
  std::vector<ExecAggregate> out;
  for (size_t k = 0; k < aggs.size(); ++k) {
    const AggregateFunction& f = aggs[k];
    ExecAggregate a;
    a.output = f.output.empty()
                   ? "$gj" + std::to_string(op_index) + "_" + std::to_string(k)
                   : f.output;
    a.kind = f.kind;
    a.distinct = f.distinct;
    if (f.arg >= 0) a.arg = catalog.attribute(f.arg).name;
    out.push_back(std::move(a));
  }
  return out;
}

Table Execute(const PlanNode& node, const Query& query, const Database& db,
              ExecutionStats* stats);

/// Records estimated-vs-actual rows for one node.
void Record(const PlanNode& node, const Query& query, const Table& result,
            ExecutionStats* stats) {
  if (stats == nullptr) return;
  ExecutionStats::NodeStat stat;
  stat.label = PlanOpName(node.op);
  if (node.op == PlanOp::kScan) {
    stat.label += " " + query.catalog().relation(node.relation).name;
  } else if (node.op == PlanOp::kGroup || node.op == PlanOp::kFinalGroup) {
    stat.label +=
        " {" + query.catalog().AttrSetToString(node.group_by) + "}";
  } else if (node.IsBinary() && !node.predicate().empty()) {
    stat.label += " [" + node.predicate().ToString(query.catalog()) + "]";
  }
  stat.estimated = node.cardinality;
  stat.actual = result.NumRows();
  stats->nodes.push_back(std::move(stat));
}

Table Execute(const PlanNode& node, const Query& query, const Database& db,
              ExecutionStats* stats) {
  const Catalog& catalog = query.catalog();
  switch (node.op) {
    case PlanOp::kScan: {
      const Table& t = db.tables[static_cast<size_t>(node.relation)];
      Record(node, query, t, stats);
      return t;
    }
    case PlanOp::kGroup:
    case PlanOp::kFinalGroup: {
      Table in = Execute(*node.left, query, db, stats);
      Table out = GroupBy(in, GroupColumnNames(node.group_by, catalog),
                          node.group_aggs());
      Record(node, query, out, stats);
      return out;
    }
    case PlanOp::kFinalMap: {
      Table in = Execute(*node.left, query, db, stats);
      Table mapped = node.final_map().empty() ? in : Map(in, node.final_map());
      Table out = Project(mapped, node.output_columns());
      Record(node, query, out, stats);
      return out;
    }
    default:
      break;
  }

  Table left = Execute(*node.left, query, db, stats);
  Table right = Execute(*node.right, query, db, stats);
  ExecPredicate pred = BindPredicate(node.predicate(), catalog, left, right);
  Table out;
  switch (node.op) {
    case PlanOp::kJoin:
      out = InnerJoin(left, right, pred);
      break;
    case PlanOp::kLeftSemi:
      out = LeftSemiJoin(left, right, pred);
      break;
    case PlanOp::kLeftAnti:
      out = LeftAntiJoin(left, right, pred);
      break;
    case PlanOp::kLeftOuter:
      out = LeftOuterJoin(left, right, pred,
                          BindDefaults(node.right_defaults()));
      break;
    case PlanOp::kFullOuter:
      out = FullOuterJoin(left, right, pred, BindDefaults(node.left_defaults()),
                          BindDefaults(node.right_defaults()));
      break;
    case PlanOp::kGroupJoin:
      out = GroupJoin(left, right, pred,
                      BindGroupjoinAggs(node.groupjoin_aggs(), catalog,
                                        node.op_indices().empty()
                                            ? 0
                                            : node.op_indices()[0]));
      break;
    default:
      assert(false && "unhandled plan operator");
  }
  Record(node, query, out, stats);
  return out;
}

Table ExecuteTree(const OpTreeNode& node, const Query& query,
                  const Database& db, int* op_counter) {
  const Catalog& catalog = query.catalog();
  if (node.is_leaf) return db.tables[static_cast<size_t>(node.relation)];
  Table left = ExecuteTree(*node.left, query, db, op_counter);
  Table right = ExecuteTree(*node.right, query, db, op_counter);
  int op_index = (*op_counter)++;
  // Each extra conjunct occupies its own flattened-operator slot (see
  // Query::Flatten); execution conjoins them into this node's predicate —
  // for inner joins the two are equivalent.
  JoinPredicate conjoined = node.predicate;
  for (const ExtraPredicate& extra : node.extra_predicates) {
    for (const AttrEquality& eq : extra.predicate.equalities()) {
      conjoined.AddEquality(eq.left_attr, eq.right_attr);
    }
    ++*op_counter;
  }
  ExecPredicate pred = BindPredicate(conjoined, catalog, left, right);
  switch (node.kind) {
    case OpKind::kJoin:
      return InnerJoin(left, right, pred);
    case OpKind::kLeftSemi:
      return LeftSemiJoin(left, right, pred);
    case OpKind::kLeftAnti:
      return LeftAntiJoin(left, right, pred);
    case OpKind::kLeftOuter:
      return LeftOuterJoin(left, right, pred);
    case OpKind::kFullOuter:
      return FullOuterJoin(left, right, pred);
    case OpKind::kGroupJoin:
      return GroupJoin(
          left, right, pred,
          BindGroupjoinAggs(node.groupjoin_aggs, catalog, op_index));
  }
  return Table();
}

}  // namespace

double ExecutionStats::ActualCout() const {
  double total = 0;
  for (const NodeStat& n : nodes) {
    // Scans are free under C_out; map/projection nodes likewise.
    if (n.label.rfind("scan", 0) == 0 || n.label.rfind("final-map", 0) == 0) {
      continue;
    }
    total += static_cast<double>(n.actual);
  }
  return total;
}

Table ExecutePlan(const PlanPtr& plan, const Query& query, const Database& db,
                  ExecutionStats* stats) {
  assert(plan != nullptr);
  return Execute(*plan, query, db, stats);
}

Table ExecuteCanonical(const Query& query, const Database& db) {
  const Catalog& catalog = query.catalog();
  int op_counter = 0;
  Table joined = ExecuteTree(*query.root(), query, db, &op_counter);

  std::vector<ExecAggregate> aggs;
  for (const AggregateFunction& f : query.aggregates()) {
    ExecAggregate a;
    a.output = f.output;
    a.kind = f.kind;
    a.distinct = f.distinct;
    if (f.arg >= 0) a.arg = catalog.attribute(f.arg).name;
    aggs.push_back(std::move(a));
  }
  Table grouped =
      GroupBy(joined, GroupColumnNames(query.group_by(), catalog), aggs);

  std::vector<MapExpr> divisions;
  for (const FinalDivision& div : query.final_divisions()) {
    MapExpr e;
    e.output = div.output;
    e.kind = MapExpr::Kind::kDiv;
    e.arg =
        query.aggregates()[static_cast<size_t>(div.numerator_slot)].output;
    e.arg2 =
        query.aggregates()[static_cast<size_t>(div.denominator_slot)].output;
    divisions.push_back(std::move(e));
  }
  Table mapped = divisions.empty() ? grouped : Map(grouped, divisions);

  std::vector<std::string> output = GroupColumnNames(query.group_by(), catalog);
  for (const AggregateFunction& f : query.aggregates()) {
    output.push_back(f.output);
  }
  for (const FinalDivision& div : query.final_divisions()) {
    output.push_back(div.output);
  }
  return Project(mapped, output);
}

}  // namespace eadp
