// Bag-semantics implementations of the algebraic operators of Fig. 1.
//
// These implement, over Table:
//   cross product A, inner join B, left semijoin N, left antijoin T,
//   left outerjoin E (with optional default vector D2, Eqv. 7),
//   full outerjoin K (with optional default vectors D1;D2, Eqv. 8),
//   left groupjoin Z (Eqv. 9), grouping Γ (with full aggregate evaluation),
//   map χ, selection σ, projections Π / Π^D, and bag union.
//
// Joins use a hash strategy when every condition is an equality and fall
// back to nested loops otherwise. Predicates follow SQL semantics: NULL
// never satisfies a comparison. Grouping keys follow the NULL-equals-NULL
// convention (paper Sec. 2.3, citing Paulley).

#ifndef EADP_EXEC_OPERATORS_H_
#define EADP_EXEC_OPERATORS_H_

#include <functional>
#include <string>
#include <vector>

#include "exec/aggregate_eval.h"
#include "exec/table.h"

namespace eadp {

/// Comparison operators for column conditions (θ of the paper).
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// One condition `left θ right` between a column of the left input and a
/// column of the right input.
struct ColumnCondition {
  std::string left_column;
  std::string right_column;
  CmpOp op = CmpOp::kEq;
};

/// A conjunction of column conditions; empty means "true" (cross product
/// semantics for joins).
using ExecPredicate = std::vector<ColumnCondition>;

/// A default vector D for generalized outer joins: unmatched tuples are
/// padded with these values for the listed columns and NULL elsewhere.
struct DefaultEntry {
  std::string column;
  Value value;
};
using DefaultVector = std::vector<DefaultEntry>;

/// e1 A e2 (cross product).
Table CrossProduct(const Table& left, const Table& right);

/// e1 B_p e2.
Table InnerJoin(const Table& left, const Table& right,
                const ExecPredicate& pred);

/// e1 N_p e2.
Table LeftSemiJoin(const Table& left, const Table& right,
                   const ExecPredicate& pred);

/// e1 T_p e2.
Table LeftAntiJoin(const Table& left, const Table& right,
                   const ExecPredicate& pred);

/// e1 E^{D2}_p e2; pass an empty `right_defaults` for plain NULL padding.
Table LeftOuterJoin(const Table& left, const Table& right,
                    const ExecPredicate& pred,
                    const DefaultVector& right_defaults = {});

/// e1 K^{D1;D2}_p e2.
Table FullOuterJoin(const Table& left, const Table& right,
                    const ExecPredicate& pred,
                    const DefaultVector& left_defaults = {},
                    const DefaultVector& right_defaults = {});

/// e1 Z_{p; aggs} e2: every left tuple extended by the aggregate values over
/// its right partners (empty partner sets aggregate over ∅: count = 0,
/// sum/min/max = NULL).
Table GroupJoin(const Table& left, const Table& right,
                const ExecPredicate& pred,
                const std::vector<ExecAggregate>& aggs);

/// Γ_{G; aggs}(in): equality grouping on `group_columns` (NULL groups with
/// NULL) with the given aggregates. Output schema: group columns then
/// aggregate outputs.
Table GroupBy(const Table& in, const std::vector<std::string>& group_columns,
              const std::vector<ExecAggregate>& aggs);

/// σ_pred(in) with an arbitrary row predicate.
Table Select(const Table& in,
             const std::function<bool(const Table&, const Row&)>& pred);

/// Π_cols(in): duplicate-preserving projection.
Table Project(const Table& in, const std::vector<std::string>& cols);

/// Π^D_cols(in): duplicate-removing projection (NULLs compare equal).
Table DistinctProject(const Table& in, const std::vector<std::string>& cols);

/// Bag union; schemas must have equal column names (in any order).
Table UnionAll(const Table& a, const Table& b);

/// Scalar expressions for the map operator χ. These cover exactly what plan
/// finalization needs (Eqv. 42 and the count-scaling rules).
struct MapExpr {
  enum class Kind {
    kCopy,          ///< out = column `arg`
    kMulCounts,     ///< out = arg · Π counts (NULL if arg is NULL)
    kCountProduct,  ///< out = Π counts (1 when `counts` is empty)
    kCountIfNotNull,///< out = arg IS NULL ? 0 : Π counts
    kDiv,           ///< out = arg / arg2 (NULL if either NULL or arg2 = 0)
    kConstInt,      ///< out = const_value
  };
  std::string output;
  Kind kind = Kind::kCopy;
  std::string arg;
  std::string arg2;                  ///< kDiv only
  std::vector<std::string> counts;   ///< count columns for the product
  int64_t const_value = 0;

  static MapExpr Copy(std::string out, std::string col) {
    MapExpr e;
    e.output = std::move(out);
    e.kind = Kind::kCopy;
    e.arg = std::move(col);
    return e;
  }
};

/// χ_exprs(in): extends every row by the computed columns (input columns are
/// retained; use Project to drop them).
Table Map(const Table& in, const std::vector<MapExpr>& exprs);

}  // namespace eadp

#endif  // EADP_EXEC_OPERATORS_H_
