#include "exec/table.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "common/hash.h"
#include "common/strings.h"

namespace eadp {

int Table::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

int Table::RequireColumn(const std::string& name) const {
  int idx = ColumnIndex(name);
  if (idx < 0) {
    std::fprintf(stderr, "Table: missing column '%s' (have: %s)\n",
                 name.c_str(), StrJoin(columns_, ", ").c_str());
    std::abort();
  }
  return idx;
}

void Table::AddRow(Row row) {
  assert(row.size() == columns_.size());
  rows_.push_back(std::move(row));
}

namespace {
bool RowLess(const Row& a, const Row& b) {
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    if (Value::Less(a[i], b[i])) return true;
    if (Value::Less(b[i], a[i])) return false;
  }
  return a.size() < b.size();
}
}  // namespace

std::vector<Row> Table::SortedRows() const {
  std::vector<Row> sorted = rows_;
  std::sort(sorted.begin(), sorted.end(), RowLess);
  return sorted;
}

bool Table::BagEquals(const Table& a, const Table& b) {
  if (a.NumColumns() != b.NumColumns()) return false;
  if (a.NumRows() != b.NumRows()) return false;
  // Compute the column permutation from b to a's order.
  std::vector<int> perm(a.NumColumns());
  for (size_t i = 0; i < a.columns().size(); ++i) {
    int j = b.ColumnIndex(a.columns()[i]);
    if (j < 0) return false;
    perm[i] = j;
  }
  std::vector<Row> b_rows;
  b_rows.reserve(b.NumRows());
  for (const Row& r : b.rows()) {
    Row out(perm.size());
    for (size_t i = 0; i < perm.size(); ++i) out[i] = r[perm[i]];
    b_rows.push_back(std::move(out));
  }
  std::vector<Row> a_rows = a.SortedRows();
  std::sort(b_rows.begin(), b_rows.end(), RowLess);
  for (size_t i = 0; i < a_rows.size(); ++i) {
    const Row& ra = a_rows[i];
    const Row& rb = b_rows[i];
    for (size_t c = 0; c < ra.size(); ++c) {
      if (!Value::GroupEquals(ra[c], rb[c])) {
        // Numeric aggregates may differ by float rounding when computed in
        // different orders; tolerate a tiny relative error.
        if (!ra[c].is_null() && !rb[c].is_null()) {
          double x = ra[c].AsDouble();
          double y = rb[c].AsDouble();
          double scale = std::max({1.0, std::abs(x), std::abs(y)});
          if (std::abs(x - y) <= 1e-9 * scale) continue;
        }
        return false;
      }
    }
  }
  return true;
}

uint64_t Table::ContentHash() const {
  uint64_t h = Mix64(columns_.size());
  for (const std::string& c : columns_) {
    h = HashCombine(h, HashBytes(c.data(), c.size(), 0x7ab1e5));
  }
  for (const Row& row : SortedRows()) {
    for (const Value& v : row) h = HashCombine(h, v.Hash());
  }
  return h;
}

std::string Table::ToString(size_t max_rows) const {
  std::vector<size_t> widths(columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) widths[i] = columns_[i].size();
  size_t shown = std::min(max_rows, rows_.size());
  std::vector<std::vector<std::string>> cells(shown);
  for (size_t r = 0; r < shown; ++r) {
    cells[r].resize(columns_.size());
    for (size_t c = 0; c < columns_.size(); ++c) {
      cells[r][c] = rows_[r][c].ToString();
      widths[c] = std::max(widths[c], cells[r][c].size());
    }
  }
  std::string out;
  for (size_t c = 0; c < columns_.size(); ++c) {
    out += StrFormat("%-*s ", static_cast<int>(widths[c]), columns_[c].c_str());
  }
  out += "\n";
  for (size_t r = 0; r < shown; ++r) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      out += StrFormat("%-*s ", static_cast<int>(widths[c]),
                       cells[r][c].c_str());
    }
    out += "\n";
  }
  if (shown < rows_.size()) {
    out += StrFormat("... (%zu rows total)\n", rows_.size());
  }
  return out;
}

}  // namespace eadp
