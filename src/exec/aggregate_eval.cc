#include "exec/aggregate_eval.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace eadp {

BoundAggregate BindAggregate(const ExecAggregate& spec, const Table& table) {
  BoundAggregate bound;
  bound.spec = &spec;
  if (spec.kind != AggKind::kCountStar) {
    bound.arg_idx = table.RequireColumn(spec.arg);
  }
  for (const std::string& m : spec.multipliers) {
    bound.multiplier_idx.push_back(table.RequireColumn(m));
  }
  return bound;
}

namespace {

/// Product of the multiplier columns for one row. Multiplier columns are
/// count attributes and must be non-NULL (outer joins install default 1 for
/// them); a NULL here would indicate a missing default vector.
double MultiplierProduct(const BoundAggregate& agg, const Row& row) {
  double prod = 1.0;
  for (int idx : agg.multiplier_idx) {
    const Value& v = row[idx];
    assert(!v.is_null() && "NULL count attribute: missing outer join default");
    if (!v.is_null()) prod *= v.AsDouble();
  }
  return prod;
}

/// Accumulator that yields int64 results when every input was integral.
class NumericSum {
 public:
  void Add(double v, bool integral) {
    sum_ += v;
    all_int_ &= integral;
    any_ = true;
  }
  bool any() const { return any_; }
  Value Get() const {
    if (!any_) return Value::Null();
    if (all_int_ && std::abs(sum_) < 9.0e15) {
      return Value::Int(static_cast<int64_t>(std::llround(sum_)));
    }
    return Value::Double(sum_);
  }
  double Raw() const { return sum_; }

 private:
  double sum_ = 0;
  bool all_int_ = true;
  bool any_ = false;
};

bool IsIntegral(const Value& v) { return v.is_int(); }

}  // namespace

Value EvaluateAggregate(const BoundAggregate& agg, const Table& table,
                        const std::vector<int>& row_indices) {
  const ExecAggregate& spec = *agg.spec;
  const auto& rows = table.rows();

  if (spec.distinct && spec.kind != AggKind::kMin &&
      spec.kind != AggKind::kMax) {
    // Duplicate-eliminating aggregates: collect distinct non-NULL values.
    std::vector<Value> values;
    for (int r : row_indices) {
      const Value& v = rows[r][agg.arg_idx];
      if (v.is_null()) continue;
      bool seen = false;
      for (const Value& u : values) {
        if (Value::GroupEquals(u, v)) {
          seen = true;
          break;
        }
      }
      if (!seen) values.push_back(v);
    }
    switch (spec.kind) {
      case AggKind::kCount:
      case AggKind::kCountNN:
        return Value::Int(static_cast<int64_t>(values.size()));
      case AggKind::kSum: {
        NumericSum s;
        for (const Value& v : values) s.Add(v.AsDouble(), IsIntegral(v));
        return s.Get();
      }
      case AggKind::kAvg: {
        if (values.empty()) return Value::Null();
        double sum = 0;
        for (const Value& v : values) sum += v.AsDouble();
        return Value::Double(sum / static_cast<double>(values.size()));
      }
      default:
        break;
    }
    assert(false && "unsupported distinct aggregate");
    return Value::Null();
  }

  switch (spec.kind) {
    case AggKind::kCountStar: {
      NumericSum s;
      for (int r : row_indices) {
        s.Add(MultiplierProduct(agg, rows[r]), true);
      }
      return s.any() ? s.Get() : Value::Int(0);
    }
    case AggKind::kCount:
    case AggKind::kCountNN: {
      NumericSum s;
      for (int r : row_indices) {
        const Value& v = rows[r][agg.arg_idx];
        s.Add(v.is_null() ? 0.0 : MultiplierProduct(agg, rows[r]), true);
      }
      return s.any() ? s.Get() : Value::Int(0);
    }
    case AggKind::kSum: {
      NumericSum s;
      for (int r : row_indices) {
        const Value& v = rows[r][agg.arg_idx];
        if (v.is_null()) continue;  // SQL sum ignores NULLs
        s.Add(v.AsDouble() * MultiplierProduct(agg, rows[r]), IsIntegral(v));
      }
      return s.Get();  // NULL when no non-NULL input (SQL semantics)
    }
    case AggKind::kMin:
    case AggKind::kMax: {
      Value best = Value::Null();
      for (int r : row_indices) {
        const Value& v = rows[r][agg.arg_idx];
        if (v.is_null()) continue;
        if (best.is_null() ||
            (spec.kind == AggKind::kMin ? Value::Less(v, best)
                                        : Value::Less(best, v))) {
          best = v;
        }
      }
      return best;
    }
    case AggKind::kAvg: {
      // Direct evaluation (tests); the optimizer canonicalizes avg away.
      double sum = 0;
      double cnt = 0;
      for (int r : row_indices) {
        const Value& v = rows[r][agg.arg_idx];
        if (v.is_null()) continue;
        double mult = MultiplierProduct(agg, rows[r]);
        sum += v.AsDouble() * mult;
        cnt += mult;
      }
      if (cnt == 0) return Value::Null();
      return Value::Double(sum / cnt);
    }
  }
  return Value::Null();
}

}  // namespace eadp
