#include "exec/operators.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

namespace eadp {

namespace {

/// Resolved predicate: column indexes into the two input tables.
struct BoundPredicate {
  std::vector<int> left_idx;
  std::vector<int> right_idx;
  std::vector<CmpOp> ops;
  bool all_equality = true;
};

BoundPredicate Bind(const ExecPredicate& pred, const Table& left,
                    const Table& right) {
  BoundPredicate b;
  for (const ColumnCondition& c : pred) {
    b.left_idx.push_back(left.RequireColumn(c.left_column));
    b.right_idx.push_back(right.RequireColumn(c.right_column));
    b.ops.push_back(c.op);
    if (c.op != CmpOp::kEq) b.all_equality = false;
  }
  return b;
}

bool Compare(const Value& a, CmpOp op, const Value& b) {
  if (a.is_null() || b.is_null()) return false;  // SQL: NULL never matches
  double x = a.AsDouble();
  double y = b.AsDouble();
  switch (op) {
    case CmpOp::kEq:
      return x == y;
    case CmpOp::kNe:
      return x != y;
    case CmpOp::kLt:
      return x < y;
    case CmpOp::kLe:
      return x <= y;
    case CmpOp::kGt:
      return x > y;
    case CmpOp::kGe:
      return x >= y;
  }
  return false;
}

bool Matches(const BoundPredicate& p, const Row& l, const Row& r) {
  for (size_t i = 0; i < p.ops.size(); ++i) {
    if (!Compare(l[p.left_idx[i]], p.ops[i], r[p.right_idx[i]])) return false;
  }
  return true;
}

/// Hash of the key columns of a row; NULL keys are rejected (return false)
/// because equality predicates never match on NULL.
bool KeyHash(const Row& row, const std::vector<int>& idx, size_t* hash) {
  size_t h = 0x12345;
  for (int i : idx) {
    const Value& v = row[i];
    if (v.is_null()) return false;
    h = h * 1315423911u + v.Hash();
  }
  *hash = h;
  return true;
}

bool KeyEquals(const Row& a, const std::vector<int>& ai, const Row& b,
               const std::vector<int>& bi) {
  for (size_t i = 0; i < ai.size(); ++i) {
    if (!Value::SqlEquals(a[ai[i]], b[bi[i]])) return false;
  }
  return true;
}

/// Index over the right input for equality predicates: hash -> row indexes.
using HashIndex = std::unordered_multimap<size_t, int>;

HashIndex BuildIndex(const Table& right, const std::vector<int>& idx) {
  HashIndex index;
  index.reserve(right.NumRows());
  for (size_t r = 0; r < right.NumRows(); ++r) {
    size_t h;
    if (KeyHash(right.rows()[r], idx, &h)) {
      index.emplace(h, static_cast<int>(r));
    }
  }
  return index;
}

/// Calls `fn(right_row_index)` for every right row matching `left_row`.
template <typename Fn>
void ForEachMatch(const BoundPredicate& p, const Table& left_table,
                  const Row& left_row, const Table& right,
                  const HashIndex* index, Fn fn) {
  (void)left_table;
  if (index != nullptr) {
    size_t h;
    if (!KeyHash(left_row, p.left_idx, &h)) return;
    auto range = index->equal_range(h);
    for (auto it = range.first; it != range.second; ++it) {
      if (KeyEquals(left_row, p.left_idx, right.rows()[it->second],
                    p.right_idx)) {
        fn(it->second);
      }
    }
  } else {
    for (size_t r = 0; r < right.NumRows(); ++r) {
      if (Matches(p, left_row, right.rows()[r])) fn(static_cast<int>(r));
    }
  }
}

std::vector<std::string> ConcatColumns(const Table& a, const Table& b) {
  std::vector<std::string> cols = a.columns();
  cols.insert(cols.end(), b.columns().begin(), b.columns().end());
  return cols;
}

Row ConcatRows(const Row& a, const Row& b) {
  Row out = a;
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

/// A padding row for `table`: NULL everywhere except the default entries.
Row PaddingRow(const Table& table, const DefaultVector& defaults) {
  Row pad(table.NumColumns(), Value::Null());
  for (const DefaultEntry& d : defaults) {
    pad[static_cast<size_t>(table.RequireColumn(d.column))] = d.value;
  }
  return pad;
}

}  // namespace

Table CrossProduct(const Table& left, const Table& right) {
  Table out(ConcatColumns(left, right));
  for (const Row& l : left.rows()) {
    for (const Row& r : right.rows()) out.AddRow(ConcatRows(l, r));
  }
  return out;
}

Table InnerJoin(const Table& left, const Table& right,
                const ExecPredicate& pred) {
  if (pred.empty()) return CrossProduct(left, right);
  BoundPredicate p = Bind(pred, left, right);
  HashIndex index;
  bool use_index = p.all_equality;
  if (use_index) index = BuildIndex(right, p.right_idx);
  Table out(ConcatColumns(left, right));
  for (const Row& l : left.rows()) {
    ForEachMatch(p, left, l, right, use_index ? &index : nullptr,
                 [&](int r) { out.AddRow(ConcatRows(l, right.rows()[r])); });
  }
  return out;
}

Table LeftSemiJoin(const Table& left, const Table& right,
                   const ExecPredicate& pred) {
  BoundPredicate p = Bind(pred, left, right);
  HashIndex index;
  bool use_index = p.all_equality && !pred.empty();
  if (use_index) index = BuildIndex(right, p.right_idx);
  Table out(left.columns());
  for (const Row& l : left.rows()) {
    bool found = pred.empty() && right.NumRows() > 0;
    if (!found) {
      ForEachMatch(p, left, l, right, use_index ? &index : nullptr,
                   [&](int) { found = true; });
    }
    if (found) out.AddRow(l);
  }
  return out;
}

Table LeftAntiJoin(const Table& left, const Table& right,
                   const ExecPredicate& pred) {
  BoundPredicate p = Bind(pred, left, right);
  HashIndex index;
  bool use_index = p.all_equality && !pred.empty();
  if (use_index) index = BuildIndex(right, p.right_idx);
  Table out(left.columns());
  for (const Row& l : left.rows()) {
    bool found = pred.empty() && right.NumRows() > 0;
    if (!found) {
      ForEachMatch(p, left, l, right, use_index ? &index : nullptr,
                   [&](int) { found = true; });
    }
    if (!found) out.AddRow(l);
  }
  return out;
}

Table LeftOuterJoin(const Table& left, const Table& right,
                    const ExecPredicate& pred,
                    const DefaultVector& right_defaults) {
  BoundPredicate p = Bind(pred, left, right);
  HashIndex index;
  bool use_index = p.all_equality && !pred.empty();
  if (use_index) index = BuildIndex(right, p.right_idx);
  Table out(ConcatColumns(left, right));
  Row pad = PaddingRow(right, right_defaults);
  for (const Row& l : left.rows()) {
    bool found = false;
    ForEachMatch(p, left, l, right, use_index ? &index : nullptr, [&](int r) {
      found = true;
      out.AddRow(ConcatRows(l, right.rows()[r]));
    });
    if (pred.empty() && right.NumRows() > 0) {
      // Degenerate predicate: every pair matches (cross semantics).
      for (const Row& r : right.rows()) out.AddRow(ConcatRows(l, r));
      found = true;
    }
    if (!found) out.AddRow(ConcatRows(l, pad));
  }
  return out;
}

Table FullOuterJoin(const Table& left, const Table& right,
                    const ExecPredicate& pred,
                    const DefaultVector& left_defaults,
                    const DefaultVector& right_defaults) {
  BoundPredicate p = Bind(pred, left, right);
  HashIndex index;
  bool use_index = p.all_equality && !pred.empty();
  if (use_index) index = BuildIndex(right, p.right_idx);
  Table out(ConcatColumns(left, right));
  Row right_pad = PaddingRow(right, right_defaults);
  Row left_pad = PaddingRow(left, left_defaults);
  std::vector<bool> right_matched(right.NumRows(), false);
  for (const Row& l : left.rows()) {
    bool found = false;
    ForEachMatch(p, left, l, right, use_index ? &index : nullptr, [&](int r) {
      found = true;
      right_matched[static_cast<size_t>(r)] = true;
      out.AddRow(ConcatRows(l, right.rows()[r]));
    });
    if (!found) out.AddRow(ConcatRows(l, right_pad));
  }
  for (size_t r = 0; r < right.NumRows(); ++r) {
    if (!right_matched[r]) out.AddRow(ConcatRows(left_pad, right.rows()[r]));
  }
  return out;
}

Table GroupJoin(const Table& left, const Table& right,
                const ExecPredicate& pred,
                const std::vector<ExecAggregate>& aggs) {
  BoundPredicate p = Bind(pred, left, right);
  HashIndex index;
  bool use_index = p.all_equality && !pred.empty();
  if (use_index) index = BuildIndex(right, p.right_idx);
  std::vector<BoundAggregate> bound;
  bound.reserve(aggs.size());
  for (const ExecAggregate& a : aggs) bound.push_back(BindAggregate(a, right));
  Table out(left.columns());
  for (const ExecAggregate& a : aggs) out.AddColumn(a.output);
  for (const Row& l : left.rows()) {
    std::vector<int> partners;
    ForEachMatch(p, left, l, right, use_index ? &index : nullptr,
                 [&](int r) { partners.push_back(r); });
    Row row = l;
    for (const BoundAggregate& a : bound) {
      row.push_back(EvaluateAggregate(a, right, partners));
    }
    out.AddRow(std::move(row));
  }
  return out;
}

Table GroupBy(const Table& in, const std::vector<std::string>& group_columns,
              const std::vector<ExecAggregate>& aggs) {
  std::vector<int> key_idx;
  key_idx.reserve(group_columns.size());
  for (const std::string& c : group_columns) {
    key_idx.push_back(in.RequireColumn(c));
  }
  // Group with NULL == NULL: hash NULL as a fixed value, compare with
  // GroupEquals.
  std::unordered_multimap<size_t, int> groups_by_hash;
  std::vector<std::vector<int>> groups;  // row indexes per group
  std::vector<int> representative;       // first row of each group
  for (size_t r = 0; r < in.NumRows(); ++r) {
    const Row& row = in.rows()[r];
    size_t h = 0xabcdef;
    for (int i : key_idx) h = h * 1315423911u + row[i].Hash();
    int group = -1;
    auto range = groups_by_hash.equal_range(h);
    for (auto it = range.first; it != range.second; ++it) {
      const Row& rep = in.rows()[static_cast<size_t>(representative[it->second])];
      bool same = true;
      for (int i : key_idx) {
        if (!Value::GroupEquals(rep[i], row[i])) {
          same = false;
          break;
        }
      }
      if (same) {
        group = it->second;
        break;
      }
    }
    if (group < 0) {
      group = static_cast<int>(groups.size());
      groups.emplace_back();
      representative.push_back(static_cast<int>(r));
      groups_by_hash.emplace(h, group);
    }
    groups[static_cast<size_t>(group)].push_back(static_cast<int>(r));
  }
  std::vector<BoundAggregate> bound;
  bound.reserve(aggs.size());
  for (const ExecAggregate& a : aggs) bound.push_back(BindAggregate(a, in));
  std::vector<std::string> out_cols = group_columns;
  for (const ExecAggregate& a : aggs) out_cols.push_back(a.output);
  Table out(out_cols);
  for (size_t g = 0; g < groups.size(); ++g) {
    Row row;
    row.reserve(out_cols.size());
    const Row& rep = in.rows()[static_cast<size_t>(representative[g])];
    for (int i : key_idx) row.push_back(rep[i]);
    for (const BoundAggregate& a : bound) {
      row.push_back(EvaluateAggregate(a, in, groups[g]));
    }
    out.AddRow(std::move(row));
  }
  return out;
}

Table Select(const Table& in,
             const std::function<bool(const Table&, const Row&)>& pred) {
  Table out(in.columns());
  for (const Row& r : in.rows()) {
    if (pred(in, r)) out.AddRow(r);
  }
  return out;
}

Table Project(const Table& in, const std::vector<std::string>& cols) {
  std::vector<int> idx;
  idx.reserve(cols.size());
  for (const std::string& c : cols) idx.push_back(in.RequireColumn(c));
  Table out(cols);
  for (const Row& r : in.rows()) {
    Row row;
    row.reserve(idx.size());
    for (int i : idx) row.push_back(r[i]);
    out.AddRow(std::move(row));
  }
  return out;
}

Table DistinctProject(const Table& in, const std::vector<std::string>& cols) {
  Table projected = Project(in, cols);
  std::vector<Row> sorted = projected.SortedRows();
  Table out(cols);
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) {
      bool same = true;
      for (size_t c = 0; c < sorted[i].size(); ++c) {
        if (!Value::GroupEquals(sorted[i][c], sorted[i - 1][c])) {
          same = false;
          break;
        }
      }
      if (same) continue;
    }
    out.AddRow(sorted[i]);
  }
  return out;
}

Table UnionAll(const Table& a, const Table& b) {
  Table out(a.columns());
  for (const Row& r : a.rows()) out.AddRow(r);
  std::vector<int> perm;
  perm.reserve(a.NumColumns());
  for (const std::string& c : a.columns()) perm.push_back(b.RequireColumn(c));
  for (const Row& r : b.rows()) {
    Row row;
    row.reserve(perm.size());
    for (int i : perm) row.push_back(r[static_cast<size_t>(i)]);
    out.AddRow(std::move(row));
  }
  return out;
}

Table Map(const Table& in, const std::vector<MapExpr>& exprs) {
  struct BoundExpr {
    const MapExpr* e;
    int arg = -1;
    int arg2 = -1;
    std::vector<int> counts;
  };
  // Expressions may reference the outputs of earlier expressions in the
  // same map (e.g. an avg reconstitution dividing two aggregates the map
  // itself computed), so bind against the incrementally extended schema.
  Table out(in.columns());
  std::vector<BoundExpr> bound;
  bound.reserve(exprs.size());
  for (const MapExpr& e : exprs) {
    BoundExpr b;
    b.e = &e;
    if (!e.arg.empty()) b.arg = out.RequireColumn(e.arg);
    if (!e.arg2.empty()) b.arg2 = out.RequireColumn(e.arg2);
    for (const std::string& c : e.counts) {
      b.counts.push_back(out.RequireColumn(c));
    }
    bound.push_back(std::move(b));
    out.AddColumn(e.output);
  }
  for (const Row& r : in.rows()) {
    Row row = r;
    for (const BoundExpr& b : bound) {
      // Reads go through `row`, which already holds the outputs of the
      // preceding expressions.
      auto count_product = [&]() -> Value {
        double prod = 1;
        bool all_int = true;
        for (int i : b.counts) {
          const Value& v = row[static_cast<size_t>(i)];
          assert(!v.is_null() && "NULL count attribute in map");
          prod *= v.AsDouble();
          all_int &= v.is_int();
        }
        return all_int ? Value::Int(static_cast<int64_t>(prod))
                       : Value::Double(prod);
      };
      switch (b.e->kind) {
        case MapExpr::Kind::kCopy:
          row.push_back(row[static_cast<size_t>(b.arg)]);
          break;
        case MapExpr::Kind::kMulCounts: {
          const Value v = row[static_cast<size_t>(b.arg)];
          if (v.is_null()) {
            row.push_back(Value::Null());
          } else {
            Value prod = count_product();
            double result = v.AsDouble() * prod.AsDouble();
            row.push_back(v.is_int() && prod.is_int()
                              ? Value::Int(static_cast<int64_t>(result))
                              : Value::Double(result));
          }
          break;
        }
        case MapExpr::Kind::kCountProduct:
          row.push_back(count_product());
          break;
        case MapExpr::Kind::kCountIfNotNull: {
          const Value v = row[static_cast<size_t>(b.arg)];
          row.push_back(v.is_null() ? Value::Int(0) : count_product());
          break;
        }
        case MapExpr::Kind::kDiv: {
          const Value num = row[static_cast<size_t>(b.arg)];
          const Value den = row[static_cast<size_t>(b.arg2)];
          if (num.is_null() || den.is_null() || den.AsDouble() == 0) {
            row.push_back(Value::Null());
          } else {
            row.push_back(Value::Double(num.AsDouble() / den.AsDouble()));
          }
          break;
        }
        case MapExpr::Kind::kConstInt:
          row.push_back(Value::Int(b.e->const_value));
          break;
      }
    }
    out.AddRow(std::move(row));
  }
  return out;
}

}  // namespace eadp
