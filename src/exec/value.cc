#include "exec/value.h"

#include <cmath>
#include <functional>

#include "common/strings.h"

namespace eadp {

bool Value::SqlEquals(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return false;
  return a.AsDouble() == b.AsDouble();
}

bool Value::GroupEquals(const Value& a, const Value& b) {
  if (a.is_null() && b.is_null()) return true;
  if (a.is_null() || b.is_null()) return false;
  return a.AsDouble() == b.AsDouble();
}

bool Value::Less(const Value& a, const Value& b) {
  if (a.is_null() != b.is_null()) return a.is_null();
  if (a.is_null()) return false;
  double da = a.AsDouble();
  double db = b.AsDouble();
  if (da != db) return da < db;
  // Tie: order ints before doubles so bag comparison is deterministic.
  return a.is_int() && !b.is_int();
}

size_t Value::Hash() const {
  if (is_null()) return 0x9e3779b9u;
  // Hash by numeric value so Int(3) and Double(3.0) (GroupEquals-equal)
  // collide deliberately.
  double d = AsDouble();
  if (d == 0.0) d = 0.0;  // normalize -0.0
  return std::hash<double>()(d);
}

std::string Value::ToString() const {
  if (is_null()) return "-";
  if (is_int()) return StrFormat("%lld", static_cast<long long>(AsInt()));
  return StrFormat("%g", std::get<double>(v_));
}

}  // namespace eadp
