// Plan execution and canonical query evaluation.
//
// ExecutePlan interprets a plan produced by any of the plan generators
// against an in-memory database; ExecuteCanonical evaluates the *original*
// operator tree followed by the top grouping (the textbook, lazy
// evaluation). The two must agree as bags for every valid plan — this is
// the library's master correctness property and the backbone of the test
// suite.

#ifndef EADP_EXEC_PLAN_EXECUTOR_H_
#define EADP_EXEC_PLAN_EXECUTOR_H_

#include <vector>

#include "algebra/query.h"
#include "exec/operators.h"
#include "exec/table.h"
#include "plangen/plan.h"

namespace eadp {

/// In-memory database: one table per catalog relation (same indexing).
/// Table columns must be named like the catalog attributes.
struct Database {
  std::vector<Table> tables;
};

/// Per-node execution statistics: estimated vs. actual row counts in
/// post-order (children before parents), for estimate-quality reporting.
struct ExecutionStats {
  struct NodeStat {
    std::string label;       ///< operator + predicate/grouping summary
    double estimated = 0;    ///< optimizer's cardinality estimate
    size_t actual = 0;       ///< rows actually produced
  };
  std::vector<NodeStat> nodes;

  /// Sum of actual intermediate result sizes — the "true C_out" of the run.
  double ActualCout() const;
};

/// Executes an optimized plan. The result schema is the query's output
/// schema (grouping attributes, then aggregate outputs). Pass `stats` to
/// collect per-operator estimated-vs-actual row counts.
Table ExecutePlan(const PlanPtr& plan, const Query& query, const Database& db,
                  ExecutionStats* stats = nullptr);

/// Canonical evaluation: original operator tree, then Γ_G;F, then the
/// final divisions (avg reconstitution), projected to the same output
/// schema as ExecutePlan.
Table ExecuteCanonical(const Query& query, const Database& db);

}  // namespace eadp

#endif  // EADP_EXEC_PLAN_EXECUTOR_H_
