// Executable aggregate specifications and their evaluation.
//
// An ExecAggregate is the concrete, executable form of an aggregate after
// the optimizer's rewrites: in addition to the kind/argument/distinct flag
// of the query-level AggregateFunction it carries a list of *multiplier
// columns*. These are the `c : count(*)` attributes introduced by pushed-
// down groupings; duplicate-sensitive aggregates are scaled by their
// product, which implements the ⊗ adjustment of paper Sec. 2.1.3 (and its
// n-ary generalization for nested pushes):
//
//   sum(a)      ⊗ c1..ck  ->  Σ a · c1 · ... · ck       (NULL a contributes 0)
//   count(*)    ⊗ c1..ck  ->  Σ c1 · ... · ck
//   count(a)    ⊗ c1..ck  ->  Σ (a IS NULL ? 0 : c1·...·ck)
//   min/max/·(distinct)   ->  unchanged (duplicate agnostic)

#ifndef EADP_EXEC_AGGREGATE_EVAL_H_
#define EADP_EXEC_AGGREGATE_EVAL_H_

#include <string>
#include <vector>

#include "algebra/aggregate.h"
#include "exec/table.h"

namespace eadp {

/// A concrete aggregate over named columns, ready for evaluation.
struct ExecAggregate {
  std::string output;             ///< result column name
  AggKind kind = AggKind::kCountStar;
  std::string arg;                ///< argument column; empty for count(*)
  bool distinct = false;
  std::vector<std::string> multipliers;  ///< count columns (may be empty)

  /// Plain aggregate without multipliers.
  static ExecAggregate Simple(std::string output, AggKind kind,
                              std::string arg = {}, bool distinct = false) {
    ExecAggregate a;
    a.output = std::move(output);
    a.kind = kind;
    a.arg = std::move(arg);
    a.distinct = distinct;
    return a;
  }
};

/// Bound form of an ExecAggregate: column indexes resolved against a table.
struct BoundAggregate {
  const ExecAggregate* spec = nullptr;
  int arg_idx = -1;                 ///< -1 for count(*)
  std::vector<int> multiplier_idx;
};

/// Resolves column names; aborts on missing columns.
BoundAggregate BindAggregate(const ExecAggregate& spec, const Table& table);

/// Evaluates `agg` over the rows of `table` selected by `row_indices`.
Value EvaluateAggregate(const BoundAggregate& agg, const Table& table,
                        const std::vector<int>& row_indices);

}  // namespace eadp

#endif  // EADP_EXEC_AGGREGATE_EVAL_H_
