// In-memory tables with bag semantics.
//
// A Table is a named-column schema plus a vector of rows. Column names are
// globally meaningful within one query execution: base columns use their
// catalog names ("supplier.s_nationkey"), generated columns (partial
// aggregates, count attributes) use "$"-prefixed names handed out by the
// optimizer. Operators concatenate schemas, mirroring the tuple
// concatenation `◦` of the paper's operator definitions.

#ifndef EADP_EXEC_TABLE_H_
#define EADP_EXEC_TABLE_H_

#include <string>
#include <vector>

#include "exec/value.h"

namespace eadp {

using Row = std::vector<Value>;

/// A bag of rows under a named schema.
class Table {
 public:
  Table() = default;
  explicit Table(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<Row>& rows() const { return rows_; }
  std::vector<Row>* mutable_rows() { return &rows_; }

  size_t NumRows() const { return rows_.size(); }
  size_t NumColumns() const { return columns_.size(); }

  /// Index of column `name`, or -1 if absent.
  int ColumnIndex(const std::string& name) const;

  /// Index of column `name`; aborts if absent (schema bugs are programmer
  /// errors).
  int RequireColumn(const std::string& name) const;

  void AddRow(Row row);

  /// Appends a new column name to the schema (rows must be extended by the
  /// caller or be empty).
  void AddColumn(const std::string& name) { columns_.push_back(name); }

  /// Rows sorted lexicographically by Value::Less — a canonical form for
  /// bag comparison.
  std::vector<Row> SortedRows() const;

  /// Bag equality: same columns (by name, same order not required — rows of
  /// `b` are permuted to match), same multiset of rows under GroupEquals.
  static bool BagEquals(const Table& a, const Table& b);

  /// Order-insensitive digest of schema + row bag (canonically sorted rows
  /// hashed with Value::Hash). Equal tables digest equally regardless of
  /// row order; used by the fuzz driver to summarize oracle results in
  /// divergence reports without dumping whole tables.
  uint64_t ContentHash() const;

  /// Renders an aligned ASCII table (for examples and error messages).
  std::string ToString(size_t max_rows = 50) const;

 private:
  std::vector<std::string> columns_;
  std::vector<Row> rows_;
};

}  // namespace eadp

#endif  // EADP_EXEC_TABLE_H_
