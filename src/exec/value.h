// Runtime values with SQL NULL semantics.
//
// The execution engine exists to *verify* the optimizer: every equivalence
// of the paper and every generated plan is executed on data and compared
// against a canonical evaluation. Values are a small variant over NULL,
// int64 and double; two equality notions are provided:
//   * SqlEquals — predicate semantics: NULL never matches (our join
//     predicates are null-rejecting);
//   * GroupEquals — grouping semantics: two values are equal if they agree
//     in value or are both NULL (Paulley's convention, paper Sec. 2.3).

#ifndef EADP_EXEC_VALUE_H_
#define EADP_EXEC_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace eadp {

/// A runtime value: NULL, 64-bit integer, or double.
class Value {
 public:
  Value() : v_(std::monostate{}) {}  // NULL
  explicit Value(int64_t i) : v_(i) {}
  explicit Value(double d) : v_(d) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t i) { return Value(i); }
  static Value Double(double d) { return Value(d); }

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }

  int64_t AsInt() const { return std::get<int64_t>(v_); }
  double AsDouble() const {
    return is_int() ? static_cast<double>(std::get<int64_t>(v_))
                    : std::get<double>(v_);
  }

  /// Numeric value as double; 0 for NULL (callers must check is_null()).
  double NumericOrZero() const { return is_null() ? 0.0 : AsDouble(); }

  /// Predicate equality: false if either side is NULL.
  static bool SqlEquals(const Value& a, const Value& b);

  /// Grouping equality: NULL equals NULL.
  static bool GroupEquals(const Value& a, const Value& b);

  /// Total order for sorting/canonicalization: NULL first, then numeric
  /// order (ints and doubles compared numerically), ints before doubles on
  /// ties.
  static bool Less(const Value& a, const Value& b);

  /// Hash consistent with GroupEquals.
  size_t Hash() const;

  std::string ToString() const;

 private:
  std::variant<std::monostate, int64_t, double> v_;
};

}  // namespace eadp

#endif  // EADP_EXEC_VALUE_H_
