#include "plangen/plan_serde.h"

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/binio.h"
#include "plangen/plan.h"

namespace eadp {

namespace {

// Enum upper bounds the decoder enforces. Centralized so a new enumerator
// has one place to extend (and the version gets bumped with it).
constexpr uint8_t kMaxPlanOp = static_cast<uint8_t>(PlanOp::kFinalMap);
constexpr uint8_t kMaxAggKind = static_cast<uint8_t>(AggKind::kAvg);
constexpr uint8_t kMaxMapKind = static_cast<uint8_t>(MapExpr::Kind::kConstInt);
constexpr uint8_t kMaxAlgorithm = static_cast<uint8_t>(Algorithm::kIdp);
constexpr int kMaxCacheTier = 2;

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Assigns dense indices to distinct payload pointers in first-encounter
/// order. Ref() returns the wire reference: 0 for null, index + 1
/// otherwise — the same first-encounter discipline on a decoded plan
/// reproduces identical indices, which is what makes re-encoding
/// byte-identical.
template <typename T>
class PtrRegistry {
 public:
  uint32_t Ref(const T* p) {
    if (p == nullptr) return 0;
    auto [it, inserted] = index_.try_emplace(p, order_.size());
    if (inserted) order_.push_back(p);
    return static_cast<uint32_t>(it->second) + 1;
  }
  const std::vector<const T*>& order() const { return order_; }

 private:
  std::vector<const T*> order_;
  std::unordered_map<const T*, size_t> index_;
};

/// KeySets dedup by *content*, not pointer: the decoder interns them
/// (PlanArena::InternKeys), so two content-equal sets from different
/// worker arenas of a parallel build would collapse into one pointer on
/// decode — pointer-keyed dedup would then re-encode one table entry
/// where the original had two, breaking byte-identity.
class KeySetRegistry {
 public:
  uint32_t Ref(const KeySet* p) {
    if (p == nullptr) return 0;
    auto& chain = index_[p->Hash()];
    for (uint32_t idx : chain) {
      if (*order_[idx] == *p) return idx + 1;
    }
    chain.push_back(static_cast<uint32_t>(order_.size()));
    order_.push_back(p);
    return static_cast<uint32_t>(order_.size());
  }
  const std::vector<const KeySet*>& order() const { return order_; }

 private:
  std::vector<const KeySet*> order_;
  std::unordered_map<uint64_t, std::vector<uint32_t>> index_;
};

void PutSet(std::string* out, Bitset128 s) {
  PutVarint64(out, s.low());
  PutVarint64(out, s.high());
}

void PutStr(std::string* out, const std::string& s) {
  PutLengthPrefixed(out, s);
}

void PutKeySet(std::string* out, const KeySet& ks) {
  PutVarint32(out, static_cast<uint32_t>(ks.size()));
  for (AttrSet key : ks) PutSet(out, key);
}

void PutAggregateFunction(std::string* out, const AggregateFunction& f) {
  PutStr(out, f.output);
  out->push_back(static_cast<char>(f.kind));
  PutZigzag(out, f.arg);
  out->push_back(f.distinct ? 1 : 0);
}

void PutCrossing(std::string* out, const CrossingInfo& ci) {
  PutVarint32(out, static_cast<uint32_t>(ci.op_indices.size()));
  for (int idx : ci.op_indices) PutZigzag(out, idx);
  const auto& eqs = ci.predicate.equalities();
  PutVarint32(out, static_cast<uint32_t>(eqs.size()));
  for (const AttrEquality& eq : eqs) {
    PutZigzag(out, eq.left_attr);
    PutZigzag(out, eq.right_attr);
  }
  PutF64(out, ci.selectivity);
  PutVarint32(out, static_cast<uint32_t>(ci.groupjoin_aggs.size()));
  for (const AggregateFunction& f : ci.groupjoin_aggs) {
    PutAggregateFunction(out, f);
  }
}

void PutDefaults(std::string* out, const std::vector<SymbolicDefault>& v) {
  PutVarint32(out, static_cast<uint32_t>(v.size()));
  for (const SymbolicDefault& d : v) {
    PutStr(out, d.column);
    out->push_back(d.one ? 1 : 0);
  }
}

void PutExecAggs(std::string* out, const std::vector<ExecAggregate>& v) {
  PutVarint32(out, static_cast<uint32_t>(v.size()));
  for (const ExecAggregate& a : v) {
    PutStr(out, a.output);
    out->push_back(static_cast<char>(a.kind));
    PutStr(out, a.arg);
    out->push_back(a.distinct ? 1 : 0);
    PutVarint32(out, static_cast<uint32_t>(a.multipliers.size()));
    for (const std::string& m : a.multipliers) PutStr(out, m);
  }
}

void PutFinalMap(std::string* out, const FinalMapInfo& fm) {
  PutVarint32(out, static_cast<uint32_t>(fm.exprs.size()));
  for (const MapExpr& e : fm.exprs) {
    PutStr(out, e.output);
    out->push_back(static_cast<char>(e.kind));
    PutStr(out, e.arg);
    PutStr(out, e.arg2);
    PutVarint32(out, static_cast<uint32_t>(e.counts.size()));
    for (const std::string& c : e.counts) PutStr(out, c);
    PutZigzag(out, e.const_value);
  }
  PutVarint32(out, static_cast<uint32_t>(fm.output_columns.size()));
  for (const std::string& c : fm.output_columns) PutStr(out, c);
}

void PutFdSet(std::string* out, const FdSet& fds) {
  PutVarint32(out, static_cast<uint32_t>(fds.fds().size()));
  for (const FunctionalDependency& fd : fds.fds()) {
    PutSet(out, fd.lhs);
    PutSet(out, fd.rhs);
  }
}

void PutAggState(std::string* out, const PlanAggState& st) {
  PutVarint32(out, static_cast<uint32_t>(st.slots.size()));
  for (const AggSlot& s : st.slots) {
    PutZigzag(out, s.query_index);
    out->push_back(s.partialized ? 1 : 0);
    PutStr(out, s.partial_column);
    PutZigzag(out, s.home_count);
  }
  PutVarint32(out, static_cast<uint32_t>(st.counts.size()));
  for (const CountColumn& c : st.counts) PutStr(out, c.column);
}

void PutStats(std::string* out, const OptimizeStats& s) {
  PutVarint64(out, s.ccp_count);
  PutVarint64(out, s.plans_built);
  PutVarint64(out, s.table_plans);
  PutVarint64(out, s.table_classes);
  PutF64(out, s.optimize_ms);
  out->push_back(static_cast<char>(s.algorithm));
  out->push_back(s.cache_hit ? 1 : 0);
  PutVarint64(out, s.pruned_candidates);
  PutVarint64(out, s.pruned_existing);
  PutF64(out, s.dp_barrier_wait_ms);
  PutZigzag(out, s.dp_workers);
  out->push_back(static_cast<char>(s.cache_tier));
}

/// Postorder walk with pointer dedup: children precede parents, every
/// node appears exactly once (plans are DAGs — finalization steps and
/// parallel builds share subtrees). Deterministic in the plan structure.
void CollectNodes(PlanPtr root, std::vector<PlanPtr>* order,
                  std::unordered_map<PlanPtr, uint32_t>* index) {
  struct Frame {
    PlanPtr node;
    bool expanded;
  };
  std::vector<Frame> stack;
  stack.push_back({root, false});
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    if (index->count(f.node) != 0) continue;
    if (f.expanded) {
      index->emplace(f.node, static_cast<uint32_t>(order->size()));
      order->push_back(f.node);
    } else {
      stack.push_back({f.node, true});
      if (f.node->right != nullptr) stack.push_back({f.node->right, false});
      if (f.node->left != nullptr) stack.push_back({f.node->left, false});
    }
  }
}

}  // namespace

std::string EncodePlan(const OptimizeResult& result) {
  std::string payload;
  PutStats(&payload, result.stats);
  payload.push_back(result.plan != nullptr ? 1 : 0);

  if (result.plan != nullptr) {
    std::vector<PlanPtr> nodes;
    std::unordered_map<PlanPtr, uint32_t> node_index;
    CollectNodes(result.plan, &nodes, &node_index);

    // Register payloads in node order so table order == first-encounter
    // order (the invariant re-encode byte-identity rests on).
    KeySetRegistry keysets;
    PtrRegistry<CrossingInfo> crossings;
    PtrRegistry<std::vector<SymbolicDefault>> defaults;
    PtrRegistry<std::vector<ExecAggregate>> execaggs;
    PtrRegistry<FinalMapInfo> finalmaps;
    PtrRegistry<FdSet> fdsets;
    PtrRegistry<PlanAggState> aggstates;
    for (PlanPtr n : nodes) {
      keysets.Ref(n->keys_);
      crossings.Ref(n->crossing);
      defaults.Ref(n->left_defaults_);
      defaults.Ref(n->right_defaults_);
      execaggs.Ref(n->group_aggs_);
      finalmaps.Ref(n->final_map_);
      fdsets.Ref(n->fds_);
      aggstates.Ref(n->agg_state_);
    }

    PutVarint32(&payload, static_cast<uint32_t>(keysets.order().size()));
    for (const KeySet* ks : keysets.order()) PutKeySet(&payload, *ks);
    PutVarint32(&payload, static_cast<uint32_t>(crossings.order().size()));
    for (const CrossingInfo* ci : crossings.order()) PutCrossing(&payload, *ci);
    PutVarint32(&payload, static_cast<uint32_t>(defaults.order().size()));
    for (const auto* d : defaults.order()) PutDefaults(&payload, *d);
    PutVarint32(&payload, static_cast<uint32_t>(execaggs.order().size()));
    for (const auto* a : execaggs.order()) PutExecAggs(&payload, *a);
    PutVarint32(&payload, static_cast<uint32_t>(finalmaps.order().size()));
    for (const FinalMapInfo* fm : finalmaps.order()) PutFinalMap(&payload, *fm);
    PutVarint32(&payload, static_cast<uint32_t>(fdsets.order().size()));
    for (const FdSet* f : fdsets.order()) PutFdSet(&payload, *f);
    PutVarint32(&payload, static_cast<uint32_t>(aggstates.order().size()));
    for (const PlanAggState* st : aggstates.order()) PutAggState(&payload, *st);

    PutVarint32(&payload, static_cast<uint32_t>(nodes.size()));
    for (PlanPtr n : nodes) {
      payload.push_back(static_cast<char>(n->op));
      PutSet(&payload, n->rels);
      PutZigzag(&payload, n->relation);
      PutVarint32(&payload,
                  n->left == nullptr ? 0 : node_index.at(n->left) + 1);
      PutVarint32(&payload,
                  n->right == nullptr ? 0 : node_index.at(n->right) + 1);
      PutVarint32(&payload, crossings.Ref(n->crossing));
      PutVarint32(&payload, defaults.Ref(n->left_defaults_));
      PutVarint32(&payload, defaults.Ref(n->right_defaults_));
      PutSet(&payload, n->group_by);
      PutVarint32(&payload, execaggs.Ref(n->group_aggs_));
      PutVarint32(&payload, finalmaps.Ref(n->final_map_));
      PutF64(&payload, n->cardinality);
      PutF64(&payload, n->raw_cardinality);
      PutF64(&payload, n->pregroup_cardinality);
      PutF64(&payload, n->cost);
      PutVarint32(&payload, keysets.Ref(n->keys_));
      payload.push_back(n->duplicate_free ? 1 : 0);
      PutVarint32(&payload, fdsets.Ref(n->fds_));
      PutVarint32(&payload, aggstates.Ref(n->agg_state_));
    }
    PutVarint32(&payload, node_index.at(result.plan) + 1);
  }

  std::string blob;
  blob.reserve(16 + payload.size());
  PutFixed32(&blob, kPlanBlobMagic);
  PutFixed32(&blob, kPlanBlobVersion);
  PutFixed32(&blob, Crc32(payload));
  PutFixed32(&blob, static_cast<uint32_t>(payload.size()));
  blob += payload;
  return blob;
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

namespace {

/// A u8 that must be exactly 0 or 1: anything else is rejected so every
/// accepted blob is in canonical form (re-encode byte-identity would
/// otherwise silently normalize a 2 into a 1).
bool ReadBool(BinReader* r) {
  uint8_t v = r->ReadU8();
  if (v > 1) r->Fail();
  return v == 1;
}

uint8_t ReadEnum(BinReader* r, uint8_t max) {
  uint8_t v = r->ReadU8();
  if (v > max) r->Fail();
  return v;
}

Bitset128 ReadSet(BinReader* r) {
  uint64_t low = r->ReadVarint64();
  uint64_t high = r->ReadVarint64();
  return Bitset128((static_cast<Bitset128::Word>(high) << 64) | low);
}

/// Zigzag varint that must fit a (possibly negative) int.
int ReadInt(BinReader* r) {
  int64_t v = r->ReadZigzag();
  if (v < INT32_MIN || v > INT32_MAX) {
    r->Fail();
    return 0;
  }
  return static_cast<int>(v);
}

/// Element count for a sequence whose elements occupy >= 1 byte each: any
/// count exceeding the remaining bytes is structurally impossible, so it
/// is rejected *before* any allocation sized by it.
uint32_t ReadCount(BinReader* r) {
  uint32_t n = r->ReadVarint32();
  if (n > r->remaining()) r->Fail();
  return n;
}

std::string ReadStr(BinReader* r) { return r->ReadLengthPrefixed(); }

/// Table reference: 0 = null, else 1-based index into `table`.
template <typename T>
const T* ReadRef(BinReader* r, const std::vector<const T*>& table) {
  uint32_t ref = r->ReadVarint32();
  if (ref == 0) return nullptr;
  if (ref > table.size()) {
    r->Fail();
    return nullptr;
  }
  return table[ref - 1];
}

bool ReadKeySet(BinReader* r, KeySet* out) {
  uint32_t n = ReadCount(r);
  if (r->failed() || n > kMaxKeysPerPlan) {
    r->Fail();
    return false;
  }
  std::array<AttrSet, kMaxKeysPerPlan> raw{};
  for (uint32_t i = 0; i < n; ++i) raw[i] = ReadSet(r);
  if (r->failed()) return false;
  KeySet ks;
  for (uint32_t i = 0; i < n; ++i) ks.Insert(raw[i]);
  // Canonical-form check: Insert() sorts and minimizes, so a round-tripped
  // KeySet only matches the raw sequence if the encoder wrote it in the
  // canonical (sorted, minimal) form genuine encodes always have.
  if (ks.size() != n) {
    r->Fail();
    return false;
  }
  for (uint32_t i = 0; i < n; ++i) {
    if (ks[i] != raw[i]) {
      r->Fail();
      return false;
    }
  }
  *out = ks;
  return true;
}

AggregateFunction ReadAggregateFunction(BinReader* r) {
  AggregateFunction f;
  f.output = ReadStr(r);
  f.kind = static_cast<AggKind>(ReadEnum(r, kMaxAggKind));
  f.arg = ReadInt(r);
  f.distinct = ReadBool(r);
  return f;
}

CrossingInfo ReadCrossing(BinReader* r) {
  CrossingInfo ci;
  uint32_t nops = ReadCount(r);
  for (uint32_t i = 0; i < nops && r->ok(); ++i) {
    ci.op_indices.push_back(ReadInt(r));
  }
  uint32_t neqs = ReadCount(r);
  std::vector<AttrEquality> eqs;
  for (uint32_t i = 0; i < neqs && r->ok(); ++i) {
    AttrEquality eq;
    eq.left_attr = ReadInt(r);
    eq.right_attr = ReadInt(r);
    eqs.push_back(eq);
  }
  ci.predicate = JoinPredicate(std::move(eqs));
  ci.selectivity = r->ReadF64();
  uint32_t naggs = ReadCount(r);
  for (uint32_t i = 0; i < naggs && r->ok(); ++i) {
    ci.groupjoin_aggs.push_back(ReadAggregateFunction(r));
  }
  return ci;
}

std::vector<SymbolicDefault> ReadDefaults(BinReader* r) {
  std::vector<SymbolicDefault> v;
  uint32_t n = ReadCount(r);
  for (uint32_t i = 0; i < n && r->ok(); ++i) {
    SymbolicDefault d;
    d.column = ReadStr(r);
    d.one = ReadBool(r);
    v.push_back(std::move(d));
  }
  return v;
}

std::vector<ExecAggregate> ReadExecAggs(BinReader* r) {
  std::vector<ExecAggregate> v;
  uint32_t n = ReadCount(r);
  for (uint32_t i = 0; i < n && r->ok(); ++i) {
    ExecAggregate a;
    a.output = ReadStr(r);
    a.kind = static_cast<AggKind>(ReadEnum(r, kMaxAggKind));
    a.arg = ReadStr(r);
    a.distinct = ReadBool(r);
    uint32_t nm = ReadCount(r);
    for (uint32_t j = 0; j < nm && r->ok(); ++j) {
      a.multipliers.push_back(ReadStr(r));
    }
    v.push_back(std::move(a));
  }
  return v;
}

FinalMapInfo ReadFinalMap(BinReader* r) {
  FinalMapInfo fm;
  uint32_t ne = ReadCount(r);
  for (uint32_t i = 0; i < ne && r->ok(); ++i) {
    MapExpr e;
    e.output = ReadStr(r);
    e.kind = static_cast<MapExpr::Kind>(ReadEnum(r, kMaxMapKind));
    e.arg = ReadStr(r);
    e.arg2 = ReadStr(r);
    uint32_t nc = ReadCount(r);
    for (uint32_t j = 0; j < nc && r->ok(); ++j) {
      e.counts.push_back(ReadStr(r));
    }
    e.const_value = r->ReadZigzag();
    fm.exprs.push_back(std::move(e));
  }
  uint32_t ncols = ReadCount(r);
  for (uint32_t i = 0; i < ncols && r->ok(); ++i) {
    fm.output_columns.push_back(ReadStr(r));
  }
  return fm;
}

FdSet ReadFdSet(BinReader* r) {
  FdSet fds;
  uint32_t n = ReadCount(r);
  for (uint32_t i = 0; i < n && r->ok(); ++i) {
    AttrSet lhs = ReadSet(r);
    AttrSet rhs = ReadSet(r);
    fds.Add(lhs, rhs);
  }
  return fds;
}

PlanAggState ReadAggState(BinReader* r) {
  PlanAggState st;
  uint32_t ns = ReadCount(r);
  for (uint32_t i = 0; i < ns && r->ok(); ++i) {
    AggSlot s;
    s.query_index = ReadInt(r);
    s.partialized = ReadBool(r);
    s.partial_column = ReadStr(r);
    s.home_count = ReadInt(r);
    st.slots.push_back(std::move(s));
  }
  uint32_t nc = ReadCount(r);
  for (uint32_t i = 0; i < nc && r->ok(); ++i) {
    st.counts.push_back(CountColumn{ReadStr(r)});
  }
  return st;
}

OptimizeStats ReadStats(BinReader* r) {
  OptimizeStats s;
  s.ccp_count = r->ReadVarint64();
  s.plans_built = r->ReadVarint64();
  s.table_plans = r->ReadVarint64();
  s.table_classes = r->ReadVarint64();
  s.optimize_ms = r->ReadF64();
  s.algorithm = static_cast<Algorithm>(ReadEnum(r, kMaxAlgorithm));
  s.cache_hit = ReadBool(r);
  s.pruned_candidates = r->ReadVarint64();
  s.pruned_existing = r->ReadVarint64();
  s.dp_barrier_wait_ms = r->ReadF64();
  s.dp_workers = ReadInt(r);
  s.cache_tier = ReadEnum(r, kMaxCacheTier);
  return s;
}

bool FailDecode(std::string* error, const char* message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

bool DecodePlan(std::string_view blob, OptimizeResult* out,
                std::string* error) {
  BinReader header(blob);
  if (header.remaining() < 16) return FailDecode(error, "truncated header");
  if (header.ReadFixed32() != kPlanBlobMagic) {
    return FailDecode(error, "bad magic");
  }
  // Version before checksum: a future format is refused as such, never
  // reported as corruption (and never parsed by guesswork).
  if (header.ReadFixed32() != kPlanBlobVersion) {
    return FailDecode(error, "unsupported format version");
  }
  uint32_t crc = header.ReadFixed32();
  uint32_t payload_len = header.ReadFixed32();
  if (payload_len != blob.size() - 16) {
    return FailDecode(error, "payload length mismatch");
  }
  std::string_view payload = blob.substr(16);
  if (Crc32(payload) != crc) return FailDecode(error, "checksum mismatch");

  BinReader r(payload);
  OptimizeResult result;
  result.stats = ReadStats(&r);
  bool has_plan = ReadBool(&r);
  if (r.failed()) return FailDecode(error, "malformed stats block");

  result.arena = std::make_shared<PlanArena>();
  if (has_plan) {
    Arena& arena = result.arena->arena();

    std::vector<const KeySet*> keysets;
    uint32_t n = ReadCount(&r);
    for (uint32_t i = 0; i < n && r.ok(); ++i) {
      KeySet ks;
      if (!ReadKeySet(&r, &ks)) break;
      keysets.push_back(result.arena->InternKeys(ks));
    }
    std::vector<const CrossingInfo*> crossings;
    n = ReadCount(&r);
    for (uint32_t i = 0; i < n && r.ok(); ++i) {
      crossings.push_back(arena.New<CrossingInfo>(ReadCrossing(&r)));
    }
    std::vector<const std::vector<SymbolicDefault>*> defaults;
    n = ReadCount(&r);
    for (uint32_t i = 0; i < n && r.ok(); ++i) {
      defaults.push_back(
          arena.New<std::vector<SymbolicDefault>>(ReadDefaults(&r)));
    }
    std::vector<const std::vector<ExecAggregate>*> execaggs;
    n = ReadCount(&r);
    for (uint32_t i = 0; i < n && r.ok(); ++i) {
      execaggs.push_back(
          arena.New<std::vector<ExecAggregate>>(ReadExecAggs(&r)));
    }
    std::vector<const FinalMapInfo*> finalmaps;
    n = ReadCount(&r);
    for (uint32_t i = 0; i < n && r.ok(); ++i) {
      finalmaps.push_back(arena.New<FinalMapInfo>(ReadFinalMap(&r)));
    }
    std::vector<const FdSet*> fdsets;
    n = ReadCount(&r);
    for (uint32_t i = 0; i < n && r.ok(); ++i) {
      fdsets.push_back(arena.New<FdSet>(ReadFdSet(&r)));
    }
    std::vector<const PlanAggState*> aggstates;
    n = ReadCount(&r);
    for (uint32_t i = 0; i < n && r.ok(); ++i) {
      aggstates.push_back(arena.New<PlanAggState>(ReadAggState(&r)));
    }
    if (r.failed()) return FailDecode(error, "malformed payload table");

    uint32_t node_count = ReadCount(&r);
    if (r.failed() || node_count == 0) {
      return FailDecode(error, "malformed node table");
    }
    std::vector<PlanPtr> nodes;
    nodes.reserve(node_count);
    for (uint32_t i = 0; i < node_count && r.ok(); ++i) {
      PlanNode* pn = result.arena->NewNode();
      pn->op = static_cast<PlanOp>(ReadEnum(&r, kMaxPlanOp));
      pn->rels = ReadSet(&r);
      pn->relation = ReadInt(&r);
      // Postorder invariant: children reference strictly earlier records.
      uint32_t left_ref = r.ReadVarint32();
      uint32_t right_ref = r.ReadVarint32();
      if (left_ref > i || right_ref > i) {
        r.Fail();
        break;
      }
      pn->left = left_ref == 0 ? nullptr : nodes[left_ref - 1];
      pn->right = right_ref == 0 ? nullptr : nodes[right_ref - 1];
      pn->crossing = ReadRef(&r, crossings);
      pn->left_defaults_ = ReadRef(&r, defaults);
      pn->right_defaults_ = ReadRef(&r, defaults);
      pn->group_by = ReadSet(&r);
      pn->group_aggs_ = ReadRef(&r, execaggs);
      pn->final_map_ = ReadRef(&r, finalmaps);
      pn->cardinality = r.ReadF64();
      pn->raw_cardinality = r.ReadF64();
      pn->pregroup_cardinality = r.ReadF64();
      pn->cost = r.ReadF64();
      pn->keys_ = ReadRef(&r, keysets);
      pn->duplicate_free = ReadBool(&r);
      pn->fds_ = ReadRef(&r, fdsets);
      pn->agg_state_ = ReadRef(&r, aggstates);
      nodes.push_back(pn);
    }
    uint32_t root_ref = r.ReadVarint32();
    if (r.failed() || root_ref == 0 || root_ref > nodes.size()) {
      return FailDecode(error, "malformed node table");
    }
    result.plan = nodes[root_ref - 1];
  }
  if (!r.AtEnd()) return FailDecode(error, "trailing bytes");

  *out = std::move(result);
  return true;
}

}  // namespace eadp
