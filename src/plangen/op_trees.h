// PlanBuilder: constructs plan nodes and the OpTrees variants (Fig. 6).
//
// Given two subplans T1, T2 and the set of input operators that cross the
// (S1, S2) cut, OpTrees produces up to four join trees:
//     T1 ◦ T2,  Γ(T1) ◦ T2,  T1 ◦ Γ(T2),  Γ(T1) ◦ Γ(T2),
// where Γ groups on G_i^+ (grouping attributes plus pending join
// attributes). Validity of a pushed grouping (the paper's Valid test)
// combines three checks:
//   * the operator admits the push on that side (Fig. 3: inner and full
//     outer joins on both sides, left outerjoin on both sides — the right
//     side via the generalized outerjoin with defaults — semijoin, antijoin
//     and groupjoin on the left side only);
//   * the affected part of the aggregation vector is decomposable
//     (agg_state.h CanGroup);
//   * NeedsGrouping(G_i^+, T_i) holds — otherwise the grouping is a waste
//     (Fig. 6, lines 10/15/20).
//
// When S1 ∪ S2 covers the whole query, every produced tree is finalized:
// either a top grouping Γ_G is added, or — if G contains a key and the
// input is duplicate-free — the grouping is replaced by a map + projection
// (Eqv. 42).

#ifndef EADP_PLANGEN_OP_TREES_H_
#define EADP_PLANGEN_OP_TREES_H_

#include <vector>

#include "algebra/query.h"
#include "cardinality/estimator.h"
#include "conflict/conflict_detector.h"
#include "cost/cost_model.h"
#include "plangen/agg_state.h"
#include "plangen/plan.h"

namespace eadp {

/// The input operators applied at one csg-cmp-pair. All operators whose SES
/// spans the (S1, S2) cut are applied together (their predicates conjoin
/// and selectivities multiply); at most one of them may be non-inner — it
/// becomes the primary operator and determines the node kind.
struct CrossingOps {
  bool valid = false;
  bool swap = false;  ///< apply with arguments (S2, S1) instead of (S1, S2)
  std::vector<int> ops;  ///< op indexes, primary first
  OpKind primary_kind = OpKind::kJoin;
};

/// Options that alter plan construction (used by ablation benches).
struct BuilderOptions {
  /// Replace an unnecessary top grouping by map + projection (Eqv. 42).
  bool top_grouping_elimination = true;
  /// Maintain full functional-dependency sets on every plan node
  /// (needed by OptimizerOptions::full_fd_dominance).
  bool track_fds = false;
};

class PlanBuilder {
 public:
  PlanBuilder(const Query* query, const ConflictDetector* conflicts,
              const BuilderOptions& options = {});

  /// Leaf plan: table scan of relation `rel`.
  PlanPtr MakeScan(int rel);

  /// Determines the operators crossing the (s1, s2) cut and whether they
  /// can be applied there (conflict rules, orientation, single non-inner).
  CrossingOps FindCrossingOps(RelSet s1, RelSet s2) const;

  /// Builds `left ◦ right` for the crossing operators (orientation must
  /// already match `crossing.swap`).
  PlanPtr MakeJoin(const PlanPtr& left, const PlanPtr& right,
                   const CrossingOps& crossing);

  /// True iff Γ_{G+} may be pushed onto `child` when it becomes the
  /// `left_side` argument of an operator of kind `parent`.
  bool CanPushGrouping(const PlanPtr& child, OpKind parent,
                       bool left_side) const;

  /// Γ_{G+}(child). Precondition: CanPushGrouping.
  PlanPtr MakeGrouping(const PlanPtr& child);

  /// The OpTrees routine of Fig. 6. Appends up to four trees to `out`;
  /// when S1 ∪ S2 covers the query, trees are finalized (top grouping or
  /// Eqv. 42 map).
  void OpTrees(const PlanPtr& t1, const PlanPtr& t2,
               const CrossingOps& crossing, std::vector<PlanPtr>* out);

  /// Adds the top grouping / finalization to a plan covering all relations.
  PlanPtr FinalizeTop(const PlanPtr& t);

  const CardinalityEstimator& estimator() const { return estimator_; }
  uint64_t plans_built() const { return plans_built_; }

 private:
  const Query* query_;
  const ConflictDetector* conflicts_;
  BuilderOptions options_;
  CardinalityEstimator estimator_;
  CostModel cost_model_;
  NameGenerator names_;
  uint64_t plans_built_ = 0;
};

}  // namespace eadp

#endif  // EADP_PLANGEN_OP_TREES_H_
