// PlanBuilder: constructs plan nodes and the OpTrees variants (Fig. 6).
//
// Given two subplans T1, T2 and the set of input operators that cross the
// (S1, S2) cut, OpTrees produces up to four join trees:
//     T1 ◦ T2,  Γ(T1) ◦ T2,  T1 ◦ Γ(T2),  Γ(T1) ◦ Γ(T2),
// where Γ groups on G_i^+ (grouping attributes plus pending join
// attributes). Validity of a pushed grouping (the paper's Valid test)
// combines three checks:
//   * the operator admits the push on that side (Fig. 3: inner and full
//     outer joins on both sides, left outerjoin on both sides — the right
//     side via the generalized outerjoin with defaults — semijoin, antijoin
//     and groupjoin on the left side only);
//   * the affected part of the aggregation vector is decomposable
//     (agg_state.h CanGroup);
//   * NeedsGrouping(G_i^+, T_i) holds — otherwise the grouping is a waste
//     (Fig. 6, lines 10/15/20).
//
// When S1 ∪ S2 covers the whole query, every produced tree is finalized:
// either a top grouping Γ_G is added, or — if G contains a key and the
// input is duplicate-free — the grouping is replaced by a map + projection
// (Eqv. 42).
//
// Memory behaviour (docs/DESIGN.md §6): every node and payload comes from
// the builder's PlanArena. The builder memoizes everything derivable from
// its inputs — crossing-operator payloads per operator list, merged
// aggregation states per input-state pair, outer-join default vectors and
// finalization payloads per aggregation state — so the steady-state DP
// loop (MakeJoin under EA enumeration) performs no heap allocation beyond
// the arena bump for the node itself.

#ifndef EADP_PLANGEN_OP_TREES_H_
#define EADP_PLANGEN_OP_TREES_H_

#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "algebra/query.h"
#include "cardinality/estimator.h"
#include "common/rng.h"
#include "conflict/conflict_detector.h"
#include "cost/cost_model.h"
#include "plangen/agg_state.h"
#include "plangen/plan.h"

namespace eadp {

/// The input operators applied at one csg-cmp-pair. All operators whose SES
/// spans the (S1, S2) cut are applied together (their predicates conjoin
/// and selectivities multiply); at most one of them may be non-inner — it
/// becomes the primary operator and determines the node kind. The payload
/// (`info`) is interned in the builder's arena and shared by every plan
/// node built for this operator list.
struct CrossingOps {
  bool valid = false;
  bool swap = false;  ///< apply with arguments (S2, S1) instead of (S1, S2)
  OpKind primary_kind = OpKind::kJoin;
  const CrossingInfo* info = nullptr;  ///< op indices, predicate, selectivity
};

/// Options that alter plan construction (used by ablation benches).
struct BuilderOptions {
  /// Replace an unnecessary top grouping by map + projection (Eqv. 42).
  bool top_grouping_elimination = true;
  /// Maintain full functional-dependency sets on every plan node
  /// (needed by OptimizerOptions::full_fd_dominance).
  bool track_fds = false;
};

class PlanBuilder {
 public:
  /// Builds plans into `arena`; creates a private arena when none is given
  /// (standalone users — tests, examples — need no ceremony). Optimize()
  /// passes an explicit arena and moves it into OptimizeResult, which is
  /// what keeps the returned plan alive.
  PlanBuilder(const Query* query, const ConflictDetector* conflicts,
              const BuilderOptions& options = {},
              std::shared_ptr<PlanArena> arena = nullptr);

  /// Leaf plan: table scan of relation `rel`.
  PlanPtr MakeScan(int rel);

  /// Determines the operators crossing the (s1, s2) cut and whether they
  /// can be applied there (conflict rules, orientation, single non-inner).
  CrossingOps FindCrossingOps(RelSet s1, RelSet s2);

  /// Builds `left ◦ right` for the crossing operators (orientation must
  /// already match `crossing.swap`).
  PlanPtr MakeJoin(PlanPtr left, PlanPtr right, const CrossingOps& crossing);

  /// True iff Γ_{G+} may be pushed onto `child` when it becomes the
  /// `left_side` argument of an operator of kind `parent`.
  bool CanPushGrouping(PlanPtr child, OpKind parent, bool left_side) const;

  /// Γ_{G+}(child). Precondition: CanPushGrouping.
  PlanPtr MakeGrouping(PlanPtr child);

  /// The OpTrees routine of Fig. 6. Appends up to four trees to `out`;
  /// when S1 ∪ S2 covers the query, trees are finalized (top grouping or
  /// Eqv. 42 map).
  void OpTrees(PlanPtr t1, PlanPtr t2, const CrossingOps& crossing,
               std::vector<PlanPtr>* out);

  /// Adds the top grouping / finalization to a plan covering all relations.
  PlanPtr FinalizeTop(PlanPtr t);

  const CardinalityEstimator& estimator() const { return estimator_; }
  uint64_t plans_built() const { return plans_built_; }
  const std::shared_ptr<PlanArena>& arena() const { return arena_; }

  /// Re-namespaces the generated-column names ("$p…"/"$c…") this builder
  /// emits; must be called before any plan is built. Parallel-DP worker
  /// builders get per-worker namespaces so their plans can merge without
  /// column collisions (see NameGenerator).
  void SetNameSpace(std::string name_space) {
    names_ = NameGenerator(std::move(name_space));
  }

 private:
  PlanNode* NewNode() {
    ++plans_built_;
    return arena_->NewNode();
  }

  /// Interns the crossing payload for `ops` (primary first). `mask` is the
  /// bitset of op indices — queries carry at most 127 operators, so the set
  /// itself is the interning key (the primary, and hence the list order,
  /// is a function of the set: it is the unique non-inner member).
  const CrossingInfo* InternCrossing(Bitset128 mask, const int* ops,
                                     size_t count);
  /// Merged aggregation state of a join, memoized per input-state pair.
  const PlanAggState* MergedState(const PlanAggState* left,
                                  const PlanAggState* right);
  /// Outer-join default vector for a padded side, memoized per state.
  const std::vector<SymbolicDefault>* DefaultsFor(const PlanAggState* state);
  /// Final-grouping aggregate vector, memoized per state.
  const std::vector<ExecAggregate>* FinalAggsFor(const PlanAggState* state);
  /// Final-map payload; `state` is null after a final grouping (divisions
  /// and output columns only), non-null on the Eqv. 42 path.
  const FinalMapInfo* FinalMapFor(const PlanAggState* state);

  struct PtrPairHash {
    size_t operator()(std::pair<const void*, const void*> p) const {
      uint64_t a = Mix64(reinterpret_cast<uintptr_t>(p.first));
      return static_cast<size_t>(
          Mix64(a ^ reinterpret_cast<uintptr_t>(p.second)));
    }
  };

  const Query* query_;
  const ConflictDetector* conflicts_;
  BuilderOptions options_;
  CardinalityEstimator estimator_;
  CostModel cost_model_;
  NameGenerator names_;
  uint64_t plans_built_ = 0;

  std::shared_ptr<PlanArena> arena_;
  /// Op-index bitmask -> interned payload.
  std::unordered_map<Bitset128, const CrossingInfo*, Bitset128::Hasher>
      crossing_interner_;
  /// Leaf aggregation states, one per relation (index = relation id).
  std::vector<const PlanAggState*> leaf_states_;
  std::unordered_map<std::pair<const void*, const void*>,
                     const PlanAggState*, PtrPairHash>
      merge_cache_;
  std::unordered_map<const PlanAggState*, const std::vector<SymbolicDefault>*>
      defaults_cache_;
  std::unordered_map<const PlanAggState*, const std::vector<ExecAggregate>*>
      final_aggs_cache_;
  std::unordered_map<const PlanAggState*, const FinalMapInfo*>
      final_map_cache_;
};

}  // namespace eadp

#endif  // EADP_PLANGEN_OP_TREES_H_
