// Aggregation-state bookkeeping for plans with pushed-down groupings.
//
// Every plan node tracks, per original aggregate of the query whose
// argument lies inside the plan's relations, whether the aggregate is still
// *raw* (to be computed from base attribute values) or has been
// *partialized* by a pushed-down grouping (its partial value lives in a
// generated column). Pushed groupings additionally introduce count(*)
// columns; the live counts of a plan partition (a subset of) its relations,
// and the product of the counts of one row equals the number of original
// join tuples that row represents. This is the operational form of the
// paper's F¹/F² decompositions and the ⊗ adjustment:
//
//   * a raw duplicate-sensitive aggregate is evaluated with ALL live counts
//     as multipliers (F ⊗ c1 ⊗ c2 ...);
//   * a partialized aggregate is re-aggregated with its outer decomposition,
//     scaled by all live counts EXCEPT the one introduced together with it
//     (its "home" count — those multiplicities are already inside the
//     partial value);
//   * count(*) slots are never partialized separately: Σ Π(all counts)
//     computes them directly (the home grouping's count serves as their
//     partial).
//
// Provenance: splittability/decomposability are paper Sec. 2.1.2, the ⊗
// duplicate adjustment is Sec. 2.1.3, and G_i^+ = G_i ∪ J_i is Sec. 3.1.
//
// Invariants maintained by Partialize/Merge and checked by the executor:
//   * every AggSlot's argument attribute lies inside the owning plan's
//     relation set; slots never migrate between plans, they are merged
//     when two subplans join;
//   * each live count partitions a subset of the plan's relations, and
//     no relation is covered by two live counts;
//   * a partialized slot's home_count always refers to a live count of
//     the same plan (BuildGroupingSpec absorbs every previous count into
//     the fresh one — Σ Π old counts — and rehomes all slots there).

#ifndef EADP_PLANGEN_AGG_STATE_H_
#define EADP_PLANGEN_AGG_STATE_H_

#include <string>
#include <vector>

#include "algebra/query.h"
#include "exec/aggregate_eval.h"
#include "exec/operators.h"

namespace eadp {

/// State of one original aggregate (index into Query::aggregates) within a
/// plan. Only slots whose argument attribute is covered by the plan's
/// relations appear; count(*) slots never appear (see file comment).
struct AggSlot {
  int query_index = -1;
  bool partialized = false;
  std::string partial_column;  ///< generated column holding the partial value
  int home_count = -1;         ///< index into PlanAggState::counts
};

/// One live count(*) column introduced by a pushed grouping.
struct CountColumn {
  std::string column;
};

/// Aggregation state of a plan node.
struct PlanAggState {
  std::vector<AggSlot> slots;
  std::vector<CountColumn> counts;

  bool HasCounts() const { return !counts.empty(); }
};

/// Generates unique column names for partials ("$p0") and counts ("$c0").
///
/// Uniqueness is an invariant of one *plan*, not one generator: when two
/// subplans join, their slot/count lists concatenate, so any two
/// generators whose plans can end up merged must draw from disjoint name
/// spaces. Sequential optimization runs one generator per run (DESIGN.md
/// §8); the intra-query parallel DP runs one per worker and separates
/// them with a namespace tag — a tagged generator emits "$p<tag>_<n>"
/// ("$c<tag>_<n>"), which can never collide with the untagged "$p<n>"
/// family or with another tag. Tags must themselves be unique per run
/// (parallel_dp.h derives them from the worker index and, for repeated
/// drivers like kIdp subproblems, a per-invocation round counter).
class NameGenerator {
 public:
  NameGenerator() = default;
  explicit NameGenerator(std::string name_space)
      : suffix_(name_space.empty() ? "" : std::move(name_space) + "_") {}

  std::string FreshPartial() {
    return "$p" + suffix_ + std::to_string(next_++);
  }
  std::string FreshCount() { return "$c" + suffix_ + std::to_string(next_++); }

 private:
  std::string suffix_;
  int next_ = 0;
};

/// Initial state of a leaf plan over relation `rel`: raw slots for every
/// aggregate whose argument belongs to `rel`.
PlanAggState LeafAggState(const Query& query, int rel);

/// State after a join: slot/count lists concatenate (relation sets are
/// disjoint).
PlanAggState MergeAggStates(const PlanAggState& left,
                            const PlanAggState& right);

/// True iff a grouping with grouping attributes `group_by` may be placed
/// over a plan with state `state`: every raw slot whose argument is not a
/// grouping attribute must be decomposable (Def. 2). Partialized slots
/// re-aggregate via sum/min/max and are always fine.
bool CanGroup(const Query& query, const PlanAggState& state, AttrSet group_by);

/// Builds the concrete grouping specification for pushing Γ_{group_by} over
/// a plan with state `state` (paper Fig. 3, right-hand sides):
///   * every raw decomposable slot with argument outside `group_by` is
///     partialized with its inner decomposition, scaled by the old counts;
///   * every partialized slot is re-aggregated with its outer
///     decomposition, scaled by the old counts except its home count;
///   * a fresh count column is added: count(*) scaled by all old counts.
/// Returns the new state (all affected slots homed at the fresh count).
/// Precondition: CanGroup().
PlanAggState BuildGroupingSpec(const Query& query, const PlanAggState& state,
                               AttrSet group_by, NameGenerator* names,
                               std::vector<ExecAggregate>* aggs_out);

/// Builds the final aggregation vector for the top grouping Γ_G: one output
/// per query aggregate, including count(*) slots (Σ Π counts).
std::vector<ExecAggregate> BuildFinalAggregates(const Query& query,
                                                const PlanAggState& state);

/// Builds the final map expressions for the Eqv. 42 path (G contains a key,
/// input duplicate-free): each query aggregate is computed per single row.
std::vector<MapExpr> BuildFinalMap(const Query& query,
                                   const PlanAggState& state);

/// Default vector entries (symbolic) for the generated columns of `state`,
/// used when the plan becomes the null-padded side of an outer join:
/// count columns default to 1, partialized count-like partials to 0, all
/// other partials stay NULL (paper: c:1 and F¹({⊥})).
struct SymbolicDefault {
  std::string column;
  bool one = false;  ///< true -> 1, false -> 0
};
std::vector<SymbolicDefault> OuterJoinDefaults(const Query& query,
                                               const PlanAggState& state);

}  // namespace eadp

#endif  // EADP_PLANGEN_AGG_STATE_H_
