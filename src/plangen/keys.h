// Key inference κ and the NeedsGrouping test (paper Sec. 2.3 and Fig. 7).
//
// Keys of base relations come from the schema; keys of intermediate results
// follow the per-operator rules of Sec. 2.3. A key set is kept minimal
// (no key a superset of another) and bounded in size. Duplicate-freeness is
// tracked alongside: a grouping result is duplicate-free, base relations
// are duplicate-free iff they declare a key (SQL remark in Sec. 3.2), and
// binary operators preserve duplicate-freeness of the surviving sides.

#ifndef EADP_PLANGEN_KEYS_H_
#define EADP_PLANGEN_KEYS_H_

#include <vector>

#include "algebra/predicate.h"
#include "catalog/catalog.h"
#include "common/bitset.h"
#include "plangen/plan.h"

namespace eadp {

/// Result of key inference for one operator application.
struct KeyProperties {
  std::vector<AttrSet> keys;
  bool duplicate_free = false;
};

/// Upper bound on tracked candidate keys per plan (cross-combinations are
/// truncated beyond this; fewer keys is always safe, it only makes
/// NeedsGrouping more conservative).
inline constexpr size_t kMaxKeysPerPlan = 8;

/// True iff some key in `keys` is a subset of `attrs` (i.e. `attrs` is a
/// superkey).
bool HasKeySubset(const std::vector<AttrSet>& keys, AttrSet attrs);

/// κ for a binary operator (paper Sec. 2.3). `plan_op` is the plan node
/// kind; `pred` the combined predicate applied at the node.
KeyProperties ComputeJoinKeys(PlanOp plan_op, const Catalog& catalog,
                              const PlanNode& left, const PlanNode& right,
                              const JoinPredicate& pred);

/// κ for Γ_{group_by}: group_by becomes a key; child keys that survive the
/// projection onto group_by remain keys. The result is duplicate-free.
KeyProperties ComputeGroupingKeys(const PlanNode& child, AttrSet group_by);

/// NeedsGrouping(G, T) of Fig. 7: false iff some key of T is contained in G
/// and T is duplicate-free.
bool NeedsGrouping(AttrSet g, const PlanNode& t);

}  // namespace eadp

#endif  // EADP_PLANGEN_KEYS_H_
