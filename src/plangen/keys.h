// Key inference κ and the NeedsGrouping test (paper Sec. 2.3 and Fig. 7).
//
// Keys of base relations come from the schema; keys of intermediate results
// follow the per-operator rules of Sec. 2.3. A key set is kept minimal
// (no key a superset of another) and bounded in size. Duplicate-freeness is
// tracked alongside: a grouping result is duplicate-free, base relations
// are duplicate-free iff they declare a key (SQL remark in Sec. 3.2), and
// binary operators preserve duplicate-freeness of the surviving sides.
//
// KeySet is the fixed-capacity value type for these bounded minimal key
// sets: it lives on the stack during inference (no heap traffic in the DP
// hot path) and is interned into the PlanArena when attached to a plan
// node, so identical key sets share one pointer and dominance checks can
// compare pointers before contents (see plan.h / docs/DESIGN.md §6).

#ifndef EADP_PLANGEN_KEYS_H_
#define EADP_PLANGEN_KEYS_H_

#include <array>
#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <span>

#include "algebra/predicate.h"
#include "catalog/catalog.h"
#include "common/bitset.h"

namespace eadp {

struct PlanNode;
enum class PlanOp;

/// Upper bound on tracked candidate keys per plan (cross-combinations are
/// truncated beyond this; fewer keys is always safe, it only makes
/// NeedsGrouping more conservative).
inline constexpr size_t kMaxKeysPerPlan = 8;

/// A minimal candidate-key set of at most kMaxKeysPerPlan keys, stored
/// inline and canonically ordered (sorted by word value): Insert() keeps
/// both the minimality invariant (no key a superset of another) and the
/// ordering, so equal key sets have equal representations regardless of
/// insertion order — which is what lets the arena interner dedup them and
/// the dominance test compare pointers. (Truncation at capacity can still
/// make near-equal sets differ; a missed dedup costs a few bytes and a
/// content comparison, never correctness.)
class KeySet {
 public:
  KeySet() = default;
  KeySet(std::initializer_list<AttrSet> keys) {
    for (AttrSet k : keys) Insert(k);
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == kMaxKeysPerPlan; }
  AttrSet operator[](size_t i) const {
    assert(i < size_);
    return keys_[i];
  }
  const AttrSet* data() const { return keys_.data(); }
  const AttrSet* begin() const { return keys_.data(); }
  const AttrSet* end() const { return keys_.data() + size_; }

  /// Minimal-key insert: drops `key` if a subset is already present,
  /// removes present supersets of `key`. No-op when full.
  void Insert(AttrSet key);

  /// Content hash (used by the PlanArena interner).
  uint64_t Hash() const;

  friend bool operator==(const KeySet& a, const KeySet& b) {
    if (a.size_ != b.size_) return false;
    for (size_t i = 0; i < a.size_; ++i) {
      if (a.keys_[i] != b.keys_[i]) return false;
    }
    return true;
  }

 private:
  std::array<AttrSet, kMaxKeysPerPlan> keys_{};
  uint8_t size_ = 0;
};

/// Result of key inference for one operator application. Lives on the
/// stack; the builder interns `keys` when attaching it to a plan node.
struct KeyProperties {
  KeySet keys;
  bool duplicate_free = false;
};

/// True iff some key in `keys` is a subset of `attrs` (i.e. `attrs` is a
/// superkey). Accepts any contiguous key range (KeySet, std::vector).
bool HasKeySubset(std::span<const AttrSet> keys, AttrSet attrs);

/// True iff `a`'s key knowledge subsumes `b`'s: every key of `b` has a
/// subset among `a`'s keys. The semantic twin of the span-based
/// KeysDominate (catalog/functional_dependency.h), specialized for the
/// bounded inline KeySet and written for the dominance-pruning hot loop:
/// the inner subset scan accumulates bitwise instead of branching, so the
/// data-dependent (and for real key sets essentially random) per-key
/// subset outcomes never become branch mispredictions; only the
/// loop-carried "some key of b is uncovered" exit remains a branch, and
/// that one is taken at most once. dp_table_test pins agreement with the
/// span implementation on exhaustive small universes.
inline bool KeySetDominates(const KeySet& a, const KeySet& b) {
  const size_t na = a.size();
  const size_t nb = b.size();
  const AttrSet* ka = a.data();
  const AttrSet* kb = b.data();
  for (size_t j = 0; j < nb; ++j) {
    AttrSet key = kb[j];
    unsigned implied = 0;
    for (size_t i = 0; i < na; ++i) {
      implied |= static_cast<unsigned>(ka[i].IsSubsetOf(key));
    }
    if (implied == 0) return false;
  }
  return true;
}

/// κ for a binary operator (paper Sec. 2.3). `plan_op` is the plan node
/// kind; `pred` the combined predicate applied at the node.
KeyProperties ComputeJoinKeys(PlanOp plan_op, const Catalog& catalog,
                              const PlanNode& left, const PlanNode& right,
                              const JoinPredicate& pred);

/// κ for Γ_{group_by}: group_by becomes a key; child keys that survive the
/// projection onto group_by remain keys. The result is duplicate-free.
KeyProperties ComputeGroupingKeys(const PlanNode& child, AttrSet group_by);

/// NeedsGrouping(G, T) of Fig. 7: false iff some key of T is contained in G
/// and T is duplicate-free.
bool NeedsGrouping(AttrSet g, const PlanNode& t);

}  // namespace eadp

#endif  // EADP_PLANGEN_KEYS_H_
