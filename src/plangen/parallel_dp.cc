#include "plangen/parallel_dp.h"

#include <algorithm>
#include <cassert>

namespace eadp {

ParallelDp::Worker::Worker(const Query* query,
                           const ConflictDetector* conflicts,
                           const OptimizerOptions& options,
                           const DpTable* read_dp, std::string tag)
    : builder(query, conflicts, EffectiveBuilderOptions(options),
              std::make_shared<PlanArena>()),
      combiner(query, &builder, &shard, options.algorithm,
               options.h2_tolerance, read_dp) {
  builder.SetNameSpace(std::move(tag));
  shard.SetDominanceOptions(!options.prune_without_cardinality,
                            !options.prune_without_keys,
                            options.full_fd_dominance);
}

ParallelDp::ParallelDp(const Query* query, const ConflictDetector* conflicts,
                       const OptimizerOptions& options, PlanBuilder* primary,
                       DpTable* dp, int workers, ThreadPool* pool,
                       const std::string& tag_prefix)
    : primary_(primary), dp_(dp), pool_(pool) {
  int w = std::max(workers, 1);
  workers_.reserve(static_cast<size_t>(w));
  for (int i = 0; i < w; ++i) {
    workers_.push_back(std::make_unique<Worker>(
        query, conflicts, options, dp, tag_prefix + std::to_string(i)));
  }
}

void ParallelDp::RunLevels(const std::vector<std::vector<CcpPair>>& levels) {
  assert(!ran_ && "ParallelDp is one-shot (see header)");
  ran_ = true;
  const int w_count = static_cast<int>(workers_.size());
  for (const std::vector<CcpPair>& level : levels) {
    if (level.empty()) continue;
    stats_.ccp_count += level.size();
    if (w_count == 1) {
      for (const CcpPair& p : level) {
        workers_[0]->combiner.Combine(p.s1, p.s2);
      }
    } else {
      // Every worker scans the whole level and takes the pairs whose
      // target class it owns: the scan is a hash+compare per pair, dwarfed
      // by plan construction, and it keeps the pair lists shared and
      // read-only instead of materializing per-worker sublists.
      stats_.barrier_wait_ms +=
          ThreadPool::FanOut(pool_, w_count, [&](int w) {
            Worker& ctx = *workers_[static_cast<size_t>(w)];
            const uint64_t mod = static_cast<uint64_t>(w_count);
            const uint64_t mine = static_cast<uint64_t>(w);
            for (const CcpPair& p : level) {
              if (p.s1.Union(p.s2).Hash() % mod == mine) {
                ctx.combiner.Combine(p.s1, p.s2);
              }
            }
          });
    }
    // Barrier reached: this level's classes are final. Fold them into the
    // merged table so the next level's source reads see them.
    for (std::unique_ptr<Worker>& w : workers_) {
      dp_->AdoptClassesFrom(w->shard);
    }
  }
  for (std::unique_ptr<Worker>& w : workers_) {
    stats_.worker_plans_built += w->builder.plans_built();
    if (w->builder.arena()->nodes_allocated() > 0) {
      primary_->arena()->AdoptSibling(w->builder.arena());
    }
  }
}

}  // namespace eadp
