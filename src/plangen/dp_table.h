// The DP table: plan lists per relation set, with insertion policies.
//
// The basic generator keeps a single plan per plan class (Fig. 5); the
// complete generators keep a list (Fig. 9), optionally filtered by the
// optimality-preserving dominance pruning of Fig. 13: a tree T2 is
// discarded if some T1 has Cost(T1) <= Cost(T2), |T1| <= |T2| and
// FD+(T1) ⊇ FD+(T2) — the FD condition implemented, as the paper suggests,
// by comparing candidate key sets (plus duplicate-freeness).
//
// Storage contract: the table keys directly on RelSet (mixed, not identity-
// hashed — consecutive subset patterns cluster badly otherwise) and the
// per-class vectors are *reference-stable across insertions into other
// classes*: std::unordered_map never invalidates references to values on
// rehash, so generators may hold `const std::vector<PlanPtr>&` to the
// source classes of a csg-cmp-pair while inserting the produced trees into
// the (strictly larger) target class. dp_table_test pins this contract.
//
// Layout: each class keeps, next to its plan-pointer list, structure-of-
// arrays mirrors of exactly the properties the dominance test reads (cost,
// the two chained cardinalities, interned key-set pointer, duplicate-
// freeness). The pruning scans of InsertPruned and the Best() cost scan
// then walk small contiguous columns instead of dereferencing ~144-byte
// PlanNodes — in the EA-Prune steady state the candidate is compared
// against every incumbent of its class twice per insertion attempt, which
// made the pointer-chasing loads the hottest path of the whole exact DP
// (bench_fig16_runtime profiles). The numeric part of the comparison is
// evaluated branch-free (see InsertPruned); the mirrors are maintained by
// every insertion policy so the class is always consistent.
//
// Thread-compatibility: a DpTable is not internally synchronized. The
// intra-query parallel DP (plangen/parallel_dp.h) runs one *shard* table
// per worker for writes while all workers read a shared merged table of
// completed smaller subset sizes; AdoptClassesFrom moves a shard's classes
// into the merged table wholesale at the subset-size barrier.

#ifndef EADP_PLANGEN_DP_TABLE_H_
#define EADP_PLANGEN_DP_TABLE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/bitset.h"
#include "common/rng.h"
#include "plangen/plan.h"

namespace eadp {

/// True iff `a` dominates `b` (same relation set assumed): a is no more
/// expensive, no larger, and retains at least b's key knowledge and
/// duplicate-freeness (Def. 4, with keys for FD+). The cardinality and key
/// criteria can be disabled for ablation experiments; with
/// `use_full_fds`, the unweakened FD-closure comparison of Def. 4 is
/// applied on top (requires BuilderOptions::track_fds).
bool Dominates(const PlanNode& a, const PlanNode& b, bool use_cardinality,
               bool use_keys, bool use_full_fds = false);
inline bool Dominates(const PlanNode& a, const PlanNode& b) {
  return Dominates(a, b, /*use_cardinality=*/true, /*use_keys=*/true);
}

class DpTable {
 public:
  /// Configures the dominance test used by InsertPruned (ablations).
  void SetDominanceOptions(bool use_cardinality, bool use_keys,
                           bool use_full_fds = false) {
    use_cardinality_ = use_cardinality;
    use_keys_ = use_keys;
    use_full_fds_ = use_full_fds;
  }

  /// Pre-sizes the hash table for `expected_classes` plan classes so the
  /// enumeration's insertions don't pay for incremental rehashing.
  void Reserve(size_t expected_classes) { table_.reserve(expected_classes); }

  /// Plans stored for `rels` (empty vector if none). The reference stays
  /// valid across insertions into other classes (see file comment).
  const std::vector<PlanPtr>& Plans(RelSet rels) const;

  /// True if at least one plan is stored for `rels`.
  bool Has(RelSet rels) const { return !Plans(rels).empty(); }

  /// The single best (cheapest) plan for `rels`, or nullptr.
  PlanPtr Best(RelSet rels) const;

  /// Keeps only the cheapest plan per class (BuildPlans / Fig. 5 policy).
  /// Returns true if `plan` was kept.
  bool InsertIfCheaper(RelSet rels, PlanPtr plan);

  /// Appends unconditionally (BuildPlansAll / Fig. 9 policy).
  void Append(RelSet rels, PlanPtr plan);

  /// PruneDominatedPlans of Fig. 13. Returns true if `plan` was kept.
  bool InsertPruned(RelSet rels, PlanPtr plan);

  /// Clears the class and stores exactly `plan` (H2's replacement step).
  void ReplaceSingle(RelSet rels, PlanPtr plan);

  /// Moves every class of `shard` into this table and folds the shard's
  /// pruning counters in; `shard` is left empty (its dominance options are
  /// untouched, so a worker can keep reusing it across barriers). The
  /// parallel DP's subset-size merge: shard classes must be disjoint from
  /// this table's (each class has exactly one owning worker per level —
  /// asserted), so "merging" is a wholesale vector move, never a
  /// re-pruning, which is what keeps parallel class contents bit-identical
  /// to the sequential run's.
  void AdoptClassesFrom(DpTable& shard);

  /// Total number of plans across all classes.
  size_t TotalPlans() const;
  size_t NumClasses() const { return table_.size(); }

  /// Candidates rejected by the dominance test (InsertPruned returning
  /// false) and incumbents evicted by a dominating newcomer, over the
  /// table's lifetime (plus anything adopted from shards).
  uint64_t pruned_candidates() const { return pruned_candidates_; }
  uint64_t pruned_existing() const { return pruned_existing_; }

 private:
  /// One plan class: the plan list plus SoA mirrors of the dominance-
  /// scanned properties (see file comment). `plans` is what Plans()
  /// exposes; the mirrors are kept index-aligned with it.
  struct PlanClass {
    std::vector<PlanPtr> plans;
    std::vector<double> cost;
    std::vector<double> cardinality;
    std::vector<double> raw_cardinality;
    std::vector<const KeySet*> keys;
    std::vector<uint8_t> duplicate_free;

    void PushBack(PlanPtr p);
    void ReplaceAt(size_t i, PlanPtr p);
    void Resize(size_t n);
  };

  /// The class for `rels`, created on demand with pre-reserved capacity
  /// (the complete generators typically keep a handful of plans per class,
  /// so the first few appends shouldn't each reallocate).
  PlanClass& ClassOf(RelSet rels);

  /// The ablation-configurable slow path of InsertPruned (any dominance
  /// option off-default); semantics identical to the fast path.
  bool InsertPrunedGeneric(PlanClass& c, PlanPtr plan);

  std::unordered_map<RelSet, PlanClass, RelSet::Hasher> table_;
  bool use_cardinality_ = true;
  bool use_keys_ = true;
  bool use_full_fds_ = false;
  uint64_t pruned_candidates_ = 0;
  uint64_t pruned_existing_ = 0;
  static const std::vector<PlanPtr> kEmpty;
};

}  // namespace eadp

#endif  // EADP_PLANGEN_DP_TABLE_H_
