// The DP table: plan lists per relation set, with insertion policies.
//
// The basic generator keeps a single plan per plan class (Fig. 5); the
// complete generators keep a list (Fig. 9), optionally filtered by the
// optimality-preserving dominance pruning of Fig. 13: a tree T2 is
// discarded if some T1 has Cost(T1) <= Cost(T2), |T1| <= |T2| and
// FD+(T1) ⊇ FD+(T2) — the FD condition implemented, as the paper suggests,
// by comparing candidate key sets (plus duplicate-freeness).
//
// Storage contract: the table keys directly on RelSet (mixed, not identity-
// hashed — consecutive subset patterns cluster badly otherwise) and the
// per-class vectors are *reference-stable across insertions into other
// classes*: std::unordered_map never invalidates references to values on
// rehash, so generators may hold `const std::vector<PlanPtr>&` to the
// source classes of a csg-cmp-pair while inserting the produced trees into
// the (strictly larger) target class. dp_table_test pins this contract.

#ifndef EADP_PLANGEN_DP_TABLE_H_
#define EADP_PLANGEN_DP_TABLE_H_

#include <unordered_map>
#include <vector>

#include "common/bitset.h"
#include "common/rng.h"
#include "plangen/plan.h"

namespace eadp {

/// True iff `a` dominates `b` (same relation set assumed): a is no more
/// expensive, no larger, and retains at least b's key knowledge and
/// duplicate-freeness (Def. 4, with keys for FD+). The cardinality and key
/// criteria can be disabled for ablation experiments; with
/// `use_full_fds`, the unweakened FD-closure comparison of Def. 4 is
/// applied on top (requires BuilderOptions::track_fds).
bool Dominates(const PlanNode& a, const PlanNode& b, bool use_cardinality,
               bool use_keys, bool use_full_fds = false);
inline bool Dominates(const PlanNode& a, const PlanNode& b) {
  return Dominates(a, b, /*use_cardinality=*/true, /*use_keys=*/true);
}

class DpTable {
 public:
  /// Configures the dominance test used by InsertPruned (ablations).
  void SetDominanceOptions(bool use_cardinality, bool use_keys,
                           bool use_full_fds = false) {
    use_cardinality_ = use_cardinality;
    use_keys_ = use_keys;
    use_full_fds_ = use_full_fds;
  }

  /// Pre-sizes the hash table for `expected_classes` plan classes so the
  /// enumeration's insertions don't pay for incremental rehashing.
  void Reserve(size_t expected_classes) { table_.reserve(expected_classes); }

  /// Plans stored for `rels` (empty vector if none). The reference stays
  /// valid across insertions into other classes (see file comment).
  const std::vector<PlanPtr>& Plans(RelSet rels) const;

  /// True if at least one plan is stored for `rels`.
  bool Has(RelSet rels) const { return !Plans(rels).empty(); }

  /// The single best (cheapest) plan for `rels`, or nullptr.
  PlanPtr Best(RelSet rels) const;

  /// Keeps only the cheapest plan per class (BuildPlans / Fig. 5 policy).
  /// Returns true if `plan` was kept.
  bool InsertIfCheaper(RelSet rels, PlanPtr plan);

  /// Appends unconditionally (BuildPlansAll / Fig. 9 policy).
  void Append(RelSet rels, PlanPtr plan);

  /// PruneDominatedPlans of Fig. 13. Returns true if `plan` was kept.
  bool InsertPruned(RelSet rels, PlanPtr plan);

  /// Clears the class and stores exactly `plan` (H2's replacement step).
  void ReplaceSingle(RelSet rels, PlanPtr plan);

  /// Total number of plans across all classes.
  size_t TotalPlans() const;
  size_t NumClasses() const { return table_.size(); }

 private:
  /// The class list for `rels`, created on demand with pre-reserved
  /// capacity (the complete generators typically keep a handful of plans
  /// per class, so the first few appends shouldn't each reallocate).
  std::vector<PlanPtr>& ClassOf(RelSet rels);

  std::unordered_map<RelSet, std::vector<PlanPtr>, RelSet::Hasher> table_;
  bool use_cardinality_ = true;
  bool use_keys_ = true;
  bool use_full_fds_ = false;
  static const std::vector<PlanPtr> kEmpty;
};

}  // namespace eadp

#endif  // EADP_PLANGEN_DP_TABLE_H_
