// Physical-ish plan trees produced by the plan generators.
//
// A PlanNode is immutable once built and shared between DP-table entries
// (subplans are referenced via shared_ptr). Every node carries the derived
// properties the generators need: relation set, estimated cardinality,
// accumulated C_out cost, candidate keys κ (Sec. 2.3), duplicate-freeness,
// and the aggregation state (see agg_state.h). Outer join nodes carry the
// symbolic default vectors of the generalized outer joins (Eqvs. 7/8).

#ifndef EADP_PLANGEN_PLAN_H_
#define EADP_PLANGEN_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "algebra/operator_tree.h"
#include "algebra/predicate.h"
#include "algebra/query.h"
#include "catalog/functional_dependency.h"
#include "common/bitset.h"
#include "plangen/agg_state.h"

namespace eadp {

/// Plan node kinds. kGroup is a pushed-down grouping; kFinalGroup the top
/// grouping Γ_G; kFinalMap the χ/Π finalization (Eqv. 42 path and avg
/// reconstitution).
enum class PlanOp {
  kScan,
  kJoin,
  kLeftSemi,
  kLeftAnti,
  kLeftOuter,
  kFullOuter,
  kGroupJoin,
  kGroup,
  kFinalGroup,
  kFinalMap,
};

const char* PlanOpName(PlanOp op);

/// Maps an input operator kind to its plan node kind.
PlanOp PlanOpFromOpKind(OpKind kind);

struct PlanNode;
using PlanPtr = std::shared_ptr<const PlanNode>;

struct PlanNode {
  PlanOp op = PlanOp::kScan;
  RelSet rels;

  // kScan
  int relation = -1;

  // Binary operators.
  PlanPtr left;
  PlanPtr right;
  std::vector<int> op_indices;  ///< query ops applied here (primary first)
  JoinPredicate predicate;      ///< conjunction over all applied ops
  double selectivity = 1.0;
  AggregateVector groupjoin_aggs;              ///< primary op kGroupJoin
  std::vector<SymbolicDefault> left_defaults;  ///< kFullOuter
  std::vector<SymbolicDefault> right_defaults; ///< kLeftOuter/kFullOuter

  // kGroup / kFinalGroup.
  AttrSet group_by;
  std::vector<ExecAggregate> group_aggs;

  // kFinalMap.
  std::vector<MapExpr> final_map;
  std::vector<std::string> output_columns;

  // Derived properties.
  double cardinality = 0;
  /// Uncapped independence-product cardinality along inner-join chains.
  /// Key-implied caps (which make estimates consistent with κ) are applied
  /// node-locally on top of this; chaining the *capped* values instead
  /// would make estimates depend on join order and break the optimality of
  /// dominance pruning (see DESIGN.md).
  double raw_cardinality = 0;
  /// Pure independence product over base cardinalities and applied
  /// selectivities, ignoring groupings and preservation semantics. Fully
  /// order-invariant; used as the grouping-invariant upper bound for the
  /// distinct join values that drive semijoin/antijoin match probabilities.
  double pregroup_cardinality = 0;
  double cost = 0;
  std::vector<AttrSet> keys;  ///< minimal candidate keys
  bool duplicate_free = false;
  /// Functional dependencies (populated only when
  /// BuilderOptions::track_fds is set; see plan_fds.h).
  FdSet fds;
  PlanAggState agg_state;

  /// Number of grouping operators that are direct children of this node's
  /// top operator — the paper's Eagerness (Sec. 4.5).
  int Eagerness() const {
    int e = 0;
    if (left && left->op == PlanOp::kGroup) ++e;
    if (right && right->op == PlanOp::kGroup) ++e;
    return e;
  }

  bool IsBinary() const {
    return op != PlanOp::kScan && op != PlanOp::kGroup &&
           op != PlanOp::kFinalGroup && op != PlanOp::kFinalMap;
  }

  /// Pretty-printed plan tree with per-node cost/cardinality.
  std::string ToString(const Catalog& catalog, int indent = 0) const;

  /// Number of operator nodes in the plan.
  int NodeCount() const;

  /// Number of kGroup nodes (pushed groupings) in the plan.
  int PushedGroupingCount() const;
};

}  // namespace eadp

#endif  // EADP_PLANGEN_PLAN_H_
