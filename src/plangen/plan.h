// Physical-ish plan trees produced by the plan generators.
//
// Memory model (docs/DESIGN.md §6): every PlanNode and every side payload
// is allocated from a PlanArena owned by the optimization run; PlanPtr is a
// plain `const PlanNode*` into that arena. Nodes are immutable once built
// and freely shared between DP-table entries — ownership is one object (the
// arena), not per-node refcounts. The node itself is a slim, trivially-
// destructible value: rarely-populated payloads (crossing-operator info,
// outer-join symbolic defaults, grouping aggregates, final-map/output
// columns, FD sets) live behind pointers to arena-interned side structs,
// and the hot derived properties (relation set, cardinalities, C_out cost,
// candidate keys κ of Sec. 2.3, duplicate-freeness) are inline or interned
// (keys) so dominance checks can compare pointers before contents.

#ifndef EADP_PLANGEN_PLAN_H_
#define EADP_PLANGEN_PLAN_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/operator_tree.h"
#include "algebra/predicate.h"
#include "algebra/query.h"
#include "catalog/functional_dependency.h"
#include "common/arena.h"
#include "common/bitset.h"
#include "plangen/agg_state.h"
#include "plangen/keys.h"

namespace eadp {

/// Plan node kinds. kGroup is a pushed-down grouping; kFinalGroup the top
/// grouping Γ_G; kFinalMap the χ/Π finalization (Eqv. 42 path and avg
/// reconstitution).
enum class PlanOp {
  kScan,
  kJoin,
  kLeftSemi,
  kLeftAnti,
  kLeftOuter,
  kFullOuter,
  kGroupJoin,
  kGroup,
  kFinalGroup,
  kFinalMap,
};

const char* PlanOpName(PlanOp op);

/// Maps an input operator kind to its plan node kind.
PlanOp PlanOpFromOpKind(OpKind kind);

struct PlanNode;
using PlanPtr = const PlanNode*;

/// Payload of a binary plan node, interned per distinct crossing-operator
/// list: all of it is a pure function of the applied input operators, so
/// every plan node built for a cut with the same operators shares one
/// instance (and MakeJoin does no predicate/selectivity work at all).
struct CrossingInfo {
  std::vector<int> op_indices;  ///< query ops applied here (primary first)
  JoinPredicate predicate;      ///< conjunction over all applied ops
  double selectivity = 1.0;     ///< product over all applied ops
  AggregateVector groupjoin_aggs;  ///< primary op kGroupJoin
};

/// Payload of a kFinalMap node (shared across plans with the same
/// aggregation state — every finalized plan of a query reuses a handful of
/// these).
struct FinalMapInfo {
  std::vector<MapExpr> exprs;
  std::vector<std::string> output_columns;
};

struct PlanNode {
  PlanOp op = PlanOp::kScan;
  RelSet rels;

  // kScan
  int relation = -1;

  // Binary operators. `crossing` is interned (see CrossingInfo); the
  // outer-join symbolic default vectors (Eqvs. 7/8) are interned per
  // padded-side aggregation state.
  PlanPtr left = nullptr;
  PlanPtr right = nullptr;
  const CrossingInfo* crossing = nullptr;
  const std::vector<SymbolicDefault>* left_defaults_ = nullptr;   ///< kFullOuter
  const std::vector<SymbolicDefault>* right_defaults_ = nullptr;  ///< kLeftOuter/kFullOuter

  // kGroup / kFinalGroup.
  AttrSet group_by;
  const std::vector<ExecAggregate>* group_aggs_ = nullptr;

  // kFinalMap.
  const FinalMapInfo* final_map_ = nullptr;

  // Derived properties.
  double cardinality = 0;
  /// Uncapped independence-product cardinality along inner-join chains.
  /// Key-implied caps (which make estimates consistent with κ) are applied
  /// node-locally on top of this; chaining the *capped* values instead
  /// would make estimates depend on join order and break the optimality of
  /// dominance pruning (see DESIGN.md §3).
  double raw_cardinality = 0;
  /// Pure independence product over base cardinalities and applied
  /// selectivities, ignoring groupings and preservation semantics. Fully
  /// order-invariant; used as the grouping-invariant upper bound for the
  /// distinct join values that drive semijoin/antijoin match probabilities.
  double pregroup_cardinality = 0;
  double cost = 0;
  /// Minimal candidate keys, interned: equal key sets share one pointer
  /// within an arena, so the dominance test compares pointers first.
  const KeySet* keys_ = nullptr;
  bool duplicate_free = false;
  /// Functional dependencies (populated only when
  /// BuilderOptions::track_fds is set; see plan_fds.h).
  const FdSet* fds_ = nullptr;
  /// Aggregation state (see agg_state.h); shared, never copied per node.
  const PlanAggState* agg_state_ = nullptr;

  // Accessors that hide the payload indirection (null pointer == empty).
  const std::vector<int>& op_indices() const;
  const JoinPredicate& predicate() const;
  const AggregateVector& groupjoin_aggs() const;
  const std::vector<SymbolicDefault>& left_defaults() const;
  const std::vector<SymbolicDefault>& right_defaults() const;
  const std::vector<ExecAggregate>& group_aggs() const;
  const std::vector<MapExpr>& final_map() const;
  const std::vector<std::string>& output_columns() const;
  const KeySet& keys() const;
  const FdSet& fds() const;
  const PlanAggState& agg_state() const;

  /// Number of grouping operators that are direct children of this node's
  /// top operator — the paper's Eagerness (Sec. 4.5).
  int Eagerness() const {
    int e = 0;
    if (left && left->op == PlanOp::kGroup) ++e;
    if (right && right->op == PlanOp::kGroup) ++e;
    return e;
  }

  bool IsBinary() const {
    return op != PlanOp::kScan && op != PlanOp::kGroup &&
           op != PlanOp::kFinalGroup && op != PlanOp::kFinalMap;
  }

  /// Pretty-printed plan tree with per-node cost/cardinality.
  std::string ToString(const Catalog& catalog, int indent = 0) const;

  /// Number of operator nodes in the plan.
  int NodeCount() const;

  /// Number of kGroup nodes (pushed groupings) in the plan.
  int PushedGroupingCount() const;
};

/// Owns every PlanNode and side payload of one optimization run. Optimize()
/// hands the arena to OptimizeResult, which keeps the returned plan alive;
/// standalone PlanBuilder users (tests) get one implicitly. Also hosts the
/// KeySet interner: within one arena, equal key sets resolve to the same
/// pointer, which the dominance test exploits.
class PlanArena {
 public:
  PlanArena() = default;
  PlanArena(const PlanArena&) = delete;
  PlanArena& operator=(const PlanArena&) = delete;

  /// A default-constructed node.
  PlanNode* NewNode() {
    ++nodes_;
    return arena_.New<PlanNode>();
  }
  /// A shallow copy of `other` (payload pointers are shared — fine, they
  /// are immutable).
  PlanNode* NewNode(const PlanNode& other) {
    ++nodes_;
    return arena_.New<PlanNode>(other);
  }

  /// Returns the unique arena-owned KeySet equal to `keys`.
  const KeySet* InternKeys(const KeySet& keys);

  /// Ties `sibling`'s lifetime to this arena: plans built by the
  /// intra-query parallel DP mix nodes from per-worker arenas (a node's
  /// children may live in another worker's arena), so the primary arena
  /// handed to OptimizeResult adopts every worker arena — one
  /// shared_ptr<PlanArena> still keeps the entire plan alive, and the
  /// single-arena ownership contract of DESIGN.md §6 is preserved for
  /// callers.
  void AdoptSibling(std::shared_ptr<PlanArena> sibling) {
    siblings_.push_back(std::move(sibling));
  }

  /// Raw arena access for side payloads.
  Arena& arena() { return arena_; }

  size_t nodes_allocated() const { return nodes_; }
  /// Bytes in this arena plus every adopted sibling (so cache accounting
  /// sees the full footprint of a parallel-built plan).
  size_t bytes_used() const {
    size_t n = arena_.bytes_used();
    for (const auto& s : siblings_) n += s->bytes_used();
    return n;
  }

 private:
  Arena arena_;
  /// Content hash -> interned KeySets with that hash (collision chain).
  std::unordered_map<uint64_t, std::vector<const KeySet*>> key_interner_;
  std::vector<std::shared_ptr<PlanArena>> siblings_;
  size_t nodes_ = 0;
};

}  // namespace eadp

#endif  // EADP_PLANGEN_PLAN_H_
