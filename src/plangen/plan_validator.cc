#include "plangen/plan_validator.h"

#include <algorithm>

#include "common/strings.h"

namespace eadp {

namespace {

class Validator {
 public:
  Validator(const Query& query) : query_(query) {}

  std::vector<std::string> Run(const PlanPtr& plan) {
    if (!plan) {
      Fail("plan is null");
      return violations_;
    }
    if (plan->op != PlanOp::kFinalMap) {
      Fail("finalized plan must be rooted at a final map");
    }
    Walk(*plan);

    // Every input operator applied exactly once.
    std::vector<int> counts(query_.ops().size(), 0);
    CountOps(*plan, &counts);
    for (size_t i = 0; i < counts.size(); ++i) {
      if (counts[i] != 1) {
        Fail(StrFormat("operator %zu applied %d times", i, counts[i]));
      }
    }
    return violations_;
  }

 private:
  void Fail(const std::string& message) { violations_.push_back(message); }

  void CountOps(const PlanNode& node, std::vector<int>* counts) {
    for (int i : node.op_indices()) {
      if (i >= 0 && static_cast<size_t>(i) < counts->size()) {
        ++(*counts)[static_cast<size_t>(i)];
      } else {
        Fail(StrFormat("invalid operator index %d", i));
      }
    }
    if (node.left) CountOps(*node.left, counts);
    if (node.right) CountOps(*node.right, counts);
  }

  void Walk(const PlanNode& node) {
    const Catalog& catalog = query_.catalog();
    if (node.cost < 0 || node.cardinality < 0) {
      Fail("negative cost or cardinality");
    }
    switch (node.op) {
      case PlanOp::kScan:
        if (node.relation < 0 || node.relation >= catalog.num_relations()) {
          Fail("scan of invalid relation");
        } else if (node.rels != RelSet::Single(node.relation)) {
          Fail("scan relation set mismatch");
        }
        return;
      case PlanOp::kGroup:
      case PlanOp::kFinalGroup: {
        if (!node.left || node.right) {
          Fail("grouping must have exactly one child");
          return;
        }
        if (node.rels != node.left->rels) {
          Fail("grouping changes the relation set");
        }
        AttrSet own = catalog.AttributesOf(node.rels);
        if (!node.group_by.IsSubsetOf(own)) {
          Fail("grouping attributes outside the covered relations");
        }
        if (node.op == PlanOp::kGroup && node.left->op == PlanOp::kGroup) {
          Fail("grouping directly over grouping");
        }
        if (node.cardinality > node.left->cardinality + 1e-9) {
          Fail("grouping increases cardinality");
        }
        if (!node.duplicate_free) Fail("grouping result not duplicate-free");
        Walk(*node.left);
        return;
      }
      case PlanOp::kFinalMap:
        if (!node.left || node.right) {
          Fail("final map must have exactly one child");
          return;
        }
        if (node.output_columns().empty()) Fail("final map without outputs");
        Walk(*node.left);
        return;
      default:
        break;
    }

    // Binary operators.
    if (!node.left || !node.right) {
      Fail("binary operator without two children");
      return;
    }
    if (node.rels != node.left->rels.Union(node.right->rels)) {
      Fail("relation set is not the union of the children");
    }
    if (node.left->rels.Intersects(node.right->rels)) {
      Fail("children overlap");
    }
    if (node.op_indices().empty()) {
      Fail("binary operator without input operators");
    }
    AttrSet refs = node.predicate().ReferencedAttrs();
    AttrSet own = query_.catalog().AttributesOf(node.rels);
    if (!refs.IsSubsetOf(own)) {
      Fail("predicate references attributes outside the children");
    }
    // Cout bookkeeping: cost = |T| + cost(children).
    double expected =
        node.cardinality + node.left->cost + node.right->cost;
    if (std::abs(node.cost - expected) > 1e-6 * (1 + expected)) {
      Fail(StrFormat("cost %.6g does not match C_out %.6g", node.cost,
                     expected));
    }
    // Outer joins must install defaults for every live count column of the
    // padded side (missing defaults silently corrupt aggregates).
    auto check_defaults = [&](const PlanAggState& state,
                              const std::vector<SymbolicDefault>& defaults,
                              const char* side) {
      for (const CountColumn& c : state.counts) {
        bool found = false;
        for (const SymbolicDefault& d : defaults) {
          if (d.column == c.column && d.one) found = true;
        }
        if (!found) {
          Fail(StrFormat("missing default 1 for count column %s (%s side)",
                         c.column.c_str(), side));
        }
      }
    };
    if (node.op == PlanOp::kLeftOuter || node.op == PlanOp::kFullOuter) {
      check_defaults(node.right->agg_state(), node.right_defaults(), "right");
    }
    if (node.op == PlanOp::kFullOuter) {
      check_defaults(node.left->agg_state(), node.left_defaults(), "left");
    }
    Walk(*node.left);
    Walk(*node.right);
  }

  const Query& query_;
  std::vector<std::string> violations_;
};

}  // namespace

std::vector<std::string> ValidatePlan(const PlanPtr& plan,
                                      const Query& query) {
  Validator v(query);
  return v.Run(plan);
}

}  // namespace eadp
