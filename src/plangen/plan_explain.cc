#include "plangen/plan_explain.h"

#include "common/strings.h"

namespace eadp {

namespace {

std::string NodeLabel(const PlanNode& node, const Catalog& catalog) {
  std::string label = PlanOpName(node.op);
  if (node.op == PlanOp::kScan) {
    label += " " + catalog.relation(node.relation).name;
  } else if (node.op == PlanOp::kGroup || node.op == PlanOp::kFinalGroup) {
    label += " {" + catalog.AttrSetToString(node.group_by) + "}";
  } else if (node.IsBinary() && !node.predicate().empty()) {
    label += " " + node.predicate().ToString(catalog);
  }
  return label;
}

std::string Escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

int EmitDot(const PlanNode& node, const Catalog& catalog, int* next_id,
            std::string* out) {
  int id = (*next_id)++;
  *out += StrFormat(
      "  n%d [shape=box,label=\"%s\\ncard=%.4g cost=%.4g\"%s];\n", id,
      Escape(NodeLabel(node, catalog)).c_str(), node.cardinality, node.cost,
      node.op == PlanOp::kGroup || node.op == PlanOp::kFinalGroup
          ? ",style=filled,fillcolor=lightblue"
          : "");
  if (node.left) {
    int child = EmitDot(*node.left, catalog, next_id, out);
    *out += StrFormat("  n%d -> n%d;\n", id, child);
  }
  if (node.right) {
    int child = EmitDot(*node.right, catalog, next_id, out);
    *out += StrFormat("  n%d -> n%d;\n", id, child);
  }
  return id;
}

void EmitJson(const PlanNode& node, const Catalog& catalog,
              std::string* out) {
  *out += "{\"op\":\"";
  *out += PlanOpName(node.op);
  *out += "\"";
  if (node.op == PlanOp::kScan) {
    *out += ",\"relation\":\"" + catalog.relation(node.relation).name + "\"";
  }
  if (node.IsBinary() && !node.predicate().empty()) {
    *out += ",\"predicate\":\"" + Escape(node.predicate().ToString(catalog)) +
            "\"";
  }
  if (node.op == PlanOp::kGroup || node.op == PlanOp::kFinalGroup) {
    *out += ",\"group_by\":\"" +
            Escape(catalog.AttrSetToString(node.group_by)) + "\"";
  }
  *out += StrFormat(",\"cardinality\":%.6g,\"cost\":%.6g", node.cardinality,
                    node.cost);
  if (node.left || node.right) {
    *out += ",\"children\":[";
    if (node.left) EmitJson(*node.left, catalog, out);
    if (node.right) {
      *out += ",";
      EmitJson(*node.right, catalog, out);
    }
    *out += "]";
  }
  *out += "}";
}

}  // namespace

std::string PlanToDot(const PlanPtr& plan, const Catalog& catalog) {
  std::string out = "digraph plan {\n  rankdir=BT;\n";
  if (plan) {
    int next_id = 0;
    EmitDot(*plan, catalog, &next_id, &out);
  }
  out += "}\n";
  return out;
}

std::string PlanToJson(const PlanPtr& plan, const Catalog& catalog) {
  if (!plan) return "null";
  std::string out;
  EmitJson(*plan, catalog, &out);
  return out;
}

std::string OptimizeStatsToJson(const OptimizeStats& stats) {
  std::string out = "{";
  out += StrFormat("\"algorithm\":\"%s\"", AlgorithmName(stats.algorithm));
  out += StrFormat(",\"ccp_count\":%llu",
                   static_cast<unsigned long long>(stats.ccp_count));
  out += StrFormat(",\"plans_built\":%llu",
                   static_cast<unsigned long long>(stats.plans_built));
  out += StrFormat(",\"table_plans\":%llu",
                   static_cast<unsigned long long>(stats.table_plans));
  out += StrFormat(",\"table_classes\":%llu",
                   static_cast<unsigned long long>(stats.table_classes));
  out += StrFormat(",\"pruned_candidates\":%llu",
                   static_cast<unsigned long long>(stats.pruned_candidates));
  out += StrFormat(",\"pruned_existing\":%llu",
                   static_cast<unsigned long long>(stats.pruned_existing));
  out += StrFormat(",\"dp_workers\":%d", stats.dp_workers);
  out += StrFormat(",\"dp_barrier_wait_ms\":%.3f", stats.dp_barrier_wait_ms);
  out += StrFormat(",\"optimize_ms\":%.3f", stats.optimize_ms);
  out += stats.cache_hit ? ",\"cache_hit\":true" : ",\"cache_hit\":false";
  out += StrFormat(",\"cache_tier\":%d", stats.cache_tier);
  out += stats.replan_avoided ? ",\"replan_avoided\":true"
                              : ",\"replan_avoided\":false";
  out += stats.replan_background ? ",\"replan_background\":true"
                                 : ",\"replan_background\":false";
  out += StrFormat(",\"recosted_cost\":%.17g}", stats.recosted_cost);
  return out;
}

std::string ExplainToJson(const OptimizeResult& result,
                          const Catalog& catalog) {
  return "{\"stats\":" + OptimizeStatsToJson(result.stats) +
         ",\"plan\":" + PlanToJson(result.plan, catalog) + "}";
}

}  // namespace eadp
