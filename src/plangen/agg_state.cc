#include "plangen/agg_state.h"

#include <cassert>

namespace eadp {

namespace {

/// Count columns of `state` as plain string names.
std::vector<std::string> CountNames(const PlanAggState& state) {
  std::vector<std::string> names;
  names.reserve(state.counts.size());
  for (const CountColumn& c : state.counts) names.push_back(c.column);
  return names;
}

/// Count columns except the one at index `skip`.
std::vector<std::string> CountNamesExcept(const PlanAggState& state,
                                          int skip) {
  std::vector<std::string> names;
  for (size_t i = 0; i < state.counts.size(); ++i) {
    if (static_cast<int>(i) != skip) names.push_back(state.counts[i].column);
  }
  return names;
}

const AggregateFunction& Original(const Query& query, const AggSlot& slot) {
  return query.aggregates()[static_cast<size_t>(slot.query_index)];
}

std::string ArgColumn(const Query& query, const AggregateFunction& f) {
  assert(f.arg >= 0);
  return query.catalog().attribute(f.arg).name;
}

bool IsCountLike(AggKind kind) {
  return kind == AggKind::kCount || kind == AggKind::kCountNN;
}

}  // namespace

PlanAggState LeafAggState(const Query& query, int rel) {
  PlanAggState state;
  const AggregateVector& aggs = query.aggregates();
  for (size_t i = 0; i < aggs.size(); ++i) {
    const AggregateFunction& f = aggs[i];
    if (f.arg < 0) continue;  // count(*): handled globally at finalization
    if (query.catalog().RelationOf(f.arg) == rel) {
      AggSlot slot;
      slot.query_index = static_cast<int>(i);
      state.slots.push_back(slot);
    }
  }
  return state;
}

PlanAggState MergeAggStates(const PlanAggState& left,
                            const PlanAggState& right) {
  PlanAggState out = left;
  int offset = static_cast<int>(left.counts.size());
  for (const AggSlot& slot : right.slots) {
    AggSlot adjusted = slot;
    if (adjusted.home_count >= 0) adjusted.home_count += offset;
    out.slots.push_back(adjusted);
  }
  out.counts.insert(out.counts.end(), right.counts.begin(),
                    right.counts.end());
  return out;
}

bool CanGroup(const Query& query, const PlanAggState& state,
              AttrSet group_by) {
  for (const AggSlot& slot : state.slots) {
    if (slot.partialized) continue;
    const AggregateFunction& f = Original(query, slot);
    if (group_by.Contains(f.arg)) continue;  // survives as grouping attr
    if (!IsDecomposable(f)) return false;
  }
  return true;
}

PlanAggState BuildGroupingSpec(const Query& query, const PlanAggState& state,
                               AttrSet group_by, NameGenerator* names,
                               std::vector<ExecAggregate>* aggs_out) {
  assert(CanGroup(query, state, group_by));
  PlanAggState out;
  std::string fresh_count = names->FreshCount();

  for (const AggSlot& slot : state.slots) {
    const AggregateFunction& f = Original(query, slot);
    AggSlot new_slot;
    new_slot.query_index = slot.query_index;

    if (!slot.partialized && group_by.Contains(f.arg)) {
      // The argument survives as a grouping attribute: keep the slot raw.
      // Multiplicities of the collapsed rows are carried by the fresh
      // count (Σ Π old counts), which downstream evaluation applies.
      out.slots.push_back(new_slot);
      continue;
    }

    ExecAggregate agg;
    agg.output = names->FreshPartial();
    if (!slot.partialized) {
      // Partialize: inner decomposition, scaled by all old counts.
      agg.kind = InnerDecomposition(f.kind);
      agg.arg = ArgColumn(query, f);
      agg.multipliers = CountNames(state);
    } else {
      // Re-aggregate an existing partial: outer decomposition, scaled by
      // the old counts except the partial's home count.
      AggKind inner = InnerDecomposition(f.kind);
      agg.kind = OuterDecomposition(inner);
      agg.arg = slot.partial_column;
      if (IsDuplicateAgnostic(f)) {
        // min/max: no scaling needed.
      } else {
        agg.multipliers = CountNamesExcept(state, slot.home_count);
      }
    }
    aggs_out->push_back(agg);

    new_slot.partialized = true;
    new_slot.partial_column = aggs_out->back().output;
    new_slot.home_count = 0;  // the fresh count, inserted below
    out.slots.push_back(new_slot);
  }

  // The fresh count: Σ Π old counts (plain count(*) when no counts live).
  ExecAggregate count_agg;
  count_agg.output = fresh_count;
  count_agg.kind = AggKind::kCountStar;
  count_agg.multipliers = CountNames(state);
  aggs_out->push_back(count_agg);
  out.counts.push_back({fresh_count});
  return out;
}

std::vector<ExecAggregate> BuildFinalAggregates(const Query& query,
                                                const PlanAggState& state) {
  std::vector<ExecAggregate> out;
  const AggregateVector& aggs = query.aggregates();
  for (size_t i = 0; i < aggs.size(); ++i) {
    const AggregateFunction& f = aggs[i];
    ExecAggregate agg;
    agg.output = f.output;

    if (f.arg < 0) {
      // count(*): Σ Π live counts.
      agg.kind = AggKind::kCountStar;
      agg.multipliers = CountNames(state);
      out.push_back(agg);
      continue;
    }

    const AggSlot* slot = nullptr;
    for (const AggSlot& s : state.slots) {
      if (s.query_index == static_cast<int>(i)) {
        slot = &s;
        break;
      }
    }
    assert(slot != nullptr && "aggregate argument not covered by plan");

    if (!slot->partialized) {
      agg.kind = f.kind;
      agg.arg = query.catalog().attribute(f.arg).name;
      agg.distinct = f.distinct;
      if (!IsDuplicateAgnostic(f)) agg.multipliers = CountNames(state);
    } else {
      AggKind inner = InnerDecomposition(f.kind);
      agg.kind = OuterDecomposition(inner);
      agg.arg = slot->partial_column;
      if (!IsDuplicateAgnostic(f)) {
        agg.multipliers = CountNamesExcept(state, slot->home_count);
      }
    }
    out.push_back(agg);
  }
  return out;
}

std::vector<MapExpr> BuildFinalMap(const Query& query,
                                   const PlanAggState& state) {
  std::vector<MapExpr> out;
  const AggregateVector& aggs = query.aggregates();
  std::vector<std::string> all_counts = CountNames(state);
  for (size_t i = 0; i < aggs.size(); ++i) {
    const AggregateFunction& f = aggs[i];
    MapExpr e;
    e.output = f.output;

    if (f.arg < 0) {
      e.kind = MapExpr::Kind::kCountProduct;
      e.counts = all_counts;
      out.push_back(e);
      continue;
    }

    const AggSlot* slot = nullptr;
    for (const AggSlot& s : state.slots) {
      if (s.query_index == static_cast<int>(i)) {
        slot = &s;
        break;
      }
    }
    assert(slot != nullptr);

    std::string arg = slot->partialized
                          ? slot->partial_column
                          : query.catalog().attribute(f.arg).name;
    std::vector<std::string> counts =
        slot->partialized ? CountNamesExcept(state, slot->home_count)
                          : all_counts;

    // A single result row represents Π counts original tuples that all
    // share this row's raw attribute values (see DESIGN.md §2), so:
    if (IsDuplicateAgnostic(f)) {
      if (IsCountLike(f.kind)) {
        // count(distinct a) of identical copies: 0 or 1.
        e.kind = MapExpr::Kind::kCountIfNotNull;
        e.arg = arg;  // counts empty -> product is 1
      } else {
        // min/max/sum(distinct)/avg(distinct) of identical copies: the value.
        e.kind = MapExpr::Kind::kCopy;
        e.arg = arg;
      }
    } else if (IsCountLike(f.kind) && !slot->partialized) {
      e.kind = MapExpr::Kind::kCountIfNotNull;
      e.arg = arg;
      e.counts = counts;
    } else if (f.kind == AggKind::kSum ||
               (slot->partialized && IsCountLike(f.kind))) {
      // sum (raw or partial) and partialized counts scale by the counts.
      e.kind = MapExpr::Kind::kMulCounts;
      e.arg = arg;
      e.counts = counts;
    } else {
      // min/max.
      e.kind = MapExpr::Kind::kCopy;
      e.arg = arg;
    }
    out.push_back(e);
  }
  return out;
}

std::vector<SymbolicDefault> OuterJoinDefaults(const Query& query,
                                               const PlanAggState& state) {
  std::vector<SymbolicDefault> out;
  for (const CountColumn& c : state.counts) {
    out.push_back({c.column, /*one=*/true});
  }
  for (const AggSlot& slot : state.slots) {
    if (!slot.partialized) continue;
    const AggregateFunction& f = Original(query, slot);
    AggKind inner = InnerDecomposition(f.kind);
    switch (DefaultOnNullTuple(inner)) {
      case NullTupleDefault::kOne:
        out.push_back({slot.partial_column, /*one=*/true});
        break;
      case NullTupleDefault::kZero:
        out.push_back({slot.partial_column, /*one=*/false});
        break;
      case NullTupleDefault::kNull:
        break;  // plain NULL padding
    }
  }
  return out;
}

}  // namespace eadp
