#include "plangen/dp_table.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "catalog/functional_dependency.h"
#include "plangen/keys.h"
#include "plangen/plan_fds.h"

namespace eadp {

const std::vector<PlanPtr> DpTable::kEmpty;

namespace {

/// Null key-set pointers (no keys known) read as the empty set, mirroring
/// PlanNode::keys().
const KeySet kNoKeys;
inline const KeySet& KeysOrEmpty(const KeySet* k) {
  return k != nullptr ? *k : kNoKeys;
}

}  // namespace

bool Dominates(const PlanNode& a, const PlanNode& b, bool use_cardinality,
               bool use_keys, bool use_full_fds) {
  if (a.cost > b.cost) return false;
  if (use_cardinality && a.cardinality > b.cardinality) return false;
  // The raw (uncapped) estimate feeds downstream inner-join chains, so it
  // is future-relevant state exactly like the cardinality.
  if (use_cardinality && a.raw_cardinality > b.raw_cardinality) return false;
  if (use_keys) {
    if (!a.duplicate_free && b.duplicate_free) return false;
    // Interned key sets: same pointer means equal contents, so only
    // distinct pointers pay for the pairwise subset comparison.
    if (a.keys_ != b.keys_ && !KeySetDominates(a.keys(), b.keys())) {
      return false;
    }
  }
  if (use_full_fds && !FdsDominate(a.fds(), b.fds())) return false;
  return true;
}

void DpTable::PlanClass::PushBack(PlanPtr p) {
  plans.push_back(p);
  cost.push_back(p->cost);
  cardinality.push_back(p->cardinality);
  raw_cardinality.push_back(p->raw_cardinality);
  keys.push_back(p->keys_);
  duplicate_free.push_back(p->duplicate_free ? 1 : 0);
}

void DpTable::PlanClass::ReplaceAt(size_t i, PlanPtr p) {
  plans[i] = p;
  cost[i] = p->cost;
  cardinality[i] = p->cardinality;
  raw_cardinality[i] = p->raw_cardinality;
  keys[i] = p->keys_;
  duplicate_free[i] = p->duplicate_free ? 1 : 0;
}

void DpTable::PlanClass::Resize(size_t n) {
  plans.resize(n);
  cost.resize(n);
  cardinality.resize(n);
  raw_cardinality.resize(n);
  keys.resize(n);
  duplicate_free.resize(n);
}

const std::vector<PlanPtr>& DpTable::Plans(RelSet rels) const {
  auto it = table_.find(rels);
  return it == table_.end() ? kEmpty : it->second.plans;
}

DpTable::PlanClass& DpTable::ClassOf(RelSet rels) {
  auto [it, inserted] = table_.try_emplace(rels);
  if (inserted) it->second.plans.reserve(4);
  return it->second;
}

PlanPtr DpTable::Best(RelSet rels) const {
  auto it = table_.find(rels);
  if (it == table_.end()) return nullptr;
  const PlanClass& c = it->second;
  size_t n = c.cost.size();
  if (n == 0) return nullptr;
  // Cost-column scan: index arithmetic over one contiguous array, the
  // plan pointer is only fetched once at the end.
  size_t best = 0;
  for (size_t i = 1; i < n; ++i) {
    if (c.cost[i] < c.cost[best]) best = i;
  }
  return c.plans[best];
}

bool DpTable::InsertIfCheaper(RelSet rels, PlanPtr plan) {
  PlanClass& c = ClassOf(rels);
  if (c.plans.empty()) {
    c.PushBack(plan);
    return true;
  }
  if (plan->cost < c.cost[0]) {
    c.ReplaceAt(0, plan);
    return true;
  }
  return false;
}

void DpTable::Append(RelSet rels, PlanPtr plan) {
  ClassOf(rels).PushBack(plan);
}

bool DpTable::InsertPruned(RelSet rels, PlanPtr plan) {
  PlanClass& c = ClassOf(rels);
  if (use_full_fds_ || !use_cardinality_ || !use_keys_) {
    return InsertPrunedGeneric(c, plan);
  }

  // Hot path (default dominance test). Both scans walk the SoA columns;
  // the numeric three-way comparison is evaluated branch-free — `&` over
  // setcc results, no data-dependent jumps — because whether one plan's
  // cost/cardinality triple dominates another's is essentially a coin
  // flip to the branch predictor. Only candidates passing the numeric
  // screen reach the key comparison (same-pointer fast path first: the
  // per-arena interner makes equal key sets pointer-equal). Estimates are
  // never NaN (the estimator clamps to kMaxCardinality and asserts, see
  // DESIGN.md §3), so `<=` here is the exact negation of the `>` early
  // exits in Dominates().
  const double p_cost = plan->cost;
  const double p_card = plan->cardinality;
  const double p_raw = plan->raw_cardinality;
  const KeySet* p_keys = plan->keys_;
  const unsigned p_dup = plan->duplicate_free ? 1 : 0;
  const size_t n = c.plans.size();

  // Pass 1: reject the candidate if some incumbent dominates it.
  for (size_t i = 0; i < n; ++i) {
    unsigned numeric = static_cast<unsigned>(c.cost[i] <= p_cost) &
                       static_cast<unsigned>(c.cardinality[i] <= p_card) &
                       static_cast<unsigned>(c.raw_cardinality[i] <= p_raw);
    // !(!a.dup && b.dup): the incumbent may only lack duplicate-freeness
    // the candidate lacks too.
    unsigned dup_ok = static_cast<unsigned>(c.duplicate_free[i]) | (p_dup ^ 1);
    if ((numeric & dup_ok) != 0) {
      const KeySet* i_keys = c.keys[i];
      if (i_keys == p_keys ||
          KeySetDominates(KeysOrEmpty(i_keys), KeysOrEmpty(p_keys))) {
        ++pruned_candidates_;
        return false;
      }
    }
  }

  // Pass 2: evict incumbents the candidate dominates, compacting all
  // columns in lockstep.
  size_t w = 0;
  for (size_t i = 0; i < n; ++i) {
    unsigned numeric = static_cast<unsigned>(p_cost <= c.cost[i]) &
                       static_cast<unsigned>(p_card <= c.cardinality[i]) &
                       static_cast<unsigned>(p_raw <= c.raw_cardinality[i]);
    unsigned dup_ok = p_dup | (c.duplicate_free[i] ^ 1u);
    bool evict = false;
    if ((numeric & dup_ok) != 0) {
      const KeySet* i_keys = c.keys[i];
      evict = p_keys == i_keys ||
              KeySetDominates(KeysOrEmpty(p_keys), KeysOrEmpty(i_keys));
    }
    if (!evict) {
      if (w != i) {
        c.plans[w] = c.plans[i];
        c.cost[w] = c.cost[i];
        c.cardinality[w] = c.cardinality[i];
        c.raw_cardinality[w] = c.raw_cardinality[i];
        c.keys[w] = c.keys[i];
        c.duplicate_free[w] = c.duplicate_free[i];
      }
      ++w;
    }
  }
  pruned_existing_ += n - w;
  c.Resize(w);
  c.PushBack(plan);
  return true;
}

bool DpTable::InsertPrunedGeneric(PlanClass& c, PlanPtr plan) {
  for (PlanPtr old : c.plans) {
    if (Dominates(*old, *plan, use_cardinality_, use_keys_, use_full_fds_)) {
      ++pruned_candidates_;
      return false;
    }
  }
  size_t w = 0;
  size_t n = c.plans.size();
  for (size_t i = 0; i < n; ++i) {
    if (!Dominates(*plan, *c.plans[i], use_cardinality_, use_keys_,
                   use_full_fds_)) {
      if (w != i) {
        c.plans[w] = c.plans[i];
        c.cost[w] = c.cost[i];
        c.cardinality[w] = c.cardinality[i];
        c.raw_cardinality[w] = c.raw_cardinality[i];
        c.keys[w] = c.keys[i];
        c.duplicate_free[w] = c.duplicate_free[i];
      }
      ++w;
    }
  }
  pruned_existing_ += n - w;
  c.Resize(w);
  c.PushBack(plan);
  return true;
}

void DpTable::ReplaceSingle(RelSet rels, PlanPtr plan) {
  PlanClass& c = ClassOf(rels);
  c.Resize(0);
  c.PushBack(plan);
}

void DpTable::AdoptClassesFrom(DpTable& shard) {
  for (auto& [rels, plan_class] : shard.table_) {
    auto [it, inserted] = table_.try_emplace(rels, std::move(plan_class));
    assert(inserted &&
           "shard classes must be disjoint from the merged table: every "
           "class has exactly one owning worker per subset-size level");
    (void)it;
    (void)inserted;
  }
  shard.table_.clear();
  pruned_candidates_ += shard.pruned_candidates_;
  pruned_existing_ += shard.pruned_existing_;
  shard.pruned_candidates_ = 0;
  shard.pruned_existing_ = 0;
}

size_t DpTable::TotalPlans() const {
  size_t n = 0;
  for (const auto& [_, c] : table_) n += c.plans.size();
  return n;
}

}  // namespace eadp
