#include "plangen/dp_table.h"

#include <algorithm>

#include "catalog/functional_dependency.h"
#include "plangen/plan_fds.h"

namespace eadp {

const std::vector<PlanPtr> DpTable::kEmpty;

bool Dominates(const PlanNode& a, const PlanNode& b, bool use_cardinality,
               bool use_keys, bool use_full_fds) {
  if (a.cost > b.cost) return false;
  if (use_cardinality && a.cardinality > b.cardinality) return false;
  // The raw (uncapped) estimate feeds downstream inner-join chains, so it
  // is future-relevant state exactly like the cardinality.
  if (use_cardinality && a.raw_cardinality > b.raw_cardinality) return false;
  if (use_keys) {
    if (!a.duplicate_free && b.duplicate_free) return false;
    // Interned key sets: same pointer means equal contents, so only
    // distinct pointers pay for the pairwise subset comparison.
    if (a.keys_ != b.keys_ && !KeysDominate(a.keys(), b.keys())) {
      return false;
    }
  }
  if (use_full_fds && !FdsDominate(a.fds(), b.fds())) return false;
  return true;
}

const std::vector<PlanPtr>& DpTable::Plans(RelSet rels) const {
  auto it = table_.find(rels);
  return it == table_.end() ? kEmpty : it->second;
}

std::vector<PlanPtr>& DpTable::ClassOf(RelSet rels) {
  auto [it, inserted] = table_.try_emplace(rels);
  if (inserted) it->second.reserve(4);
  return it->second;
}

PlanPtr DpTable::Best(RelSet rels) const {
  const std::vector<PlanPtr>& plans = Plans(rels);
  PlanPtr best = nullptr;
  for (PlanPtr p : plans) {
    if (!best || p->cost < best->cost) best = p;
  }
  return best;
}

bool DpTable::InsertIfCheaper(RelSet rels, PlanPtr plan) {
  std::vector<PlanPtr>& list = ClassOf(rels);
  if (list.empty()) {
    list.push_back(plan);
    return true;
  }
  if (plan->cost < list[0]->cost) {
    list[0] = plan;
    return true;
  }
  return false;
}

void DpTable::Append(RelSet rels, PlanPtr plan) {
  ClassOf(rels).push_back(plan);
}

bool DpTable::InsertPruned(RelSet rels, PlanPtr plan) {
  std::vector<PlanPtr>& list = ClassOf(rels);
  for (PlanPtr old : list) {
    if (Dominates(*old, *plan, use_cardinality_, use_keys_, use_full_fds_)) {
      return false;
    }
  }
  list.erase(std::remove_if(list.begin(), list.end(),
                            [&](PlanPtr old) {
                              return Dominates(*plan, *old, use_cardinality_,
                                               use_keys_, use_full_fds_);
                            }),
             list.end());
  list.push_back(plan);
  return true;
}

void DpTable::ReplaceSingle(RelSet rels, PlanPtr plan) {
  std::vector<PlanPtr>& list = ClassOf(rels);
  list.clear();
  list.push_back(plan);
}

size_t DpTable::TotalPlans() const {
  size_t n = 0;
  for (const auto& [_, plans] : table_) n += plans.size();
  return n;
}

}  // namespace eadp
