#include "plangen/plan_fds.h"

namespace eadp {

FdSet ScanFds(const Catalog& catalog, int rel) {
  FdSet fds;
  const RelationDef& def = catalog.relation(rel);
  for (AttrSet key : def.keys) {
    fds.Add(key, def.attributes.Minus(key));
  }
  return fds;
}

FdSet JoinFds(PlanOp op, const FdSet& left, const FdSet& right,
              const JoinPredicate& pred) {
  FdSet fds = left;
  switch (op) {
    case PlanOp::kJoin:
      fds.AddAll(right);
      for (const AttrEquality& eq : pred.equalities()) {
        fds.Add(AttrSet::Single(eq.left_attr),
                AttrSet::Single(eq.right_attr));
        fds.Add(AttrSet::Single(eq.right_attr),
                AttrSet::Single(eq.left_attr));
      }
      break;
    case PlanOp::kLeftOuter:
    case PlanOp::kFullOuter:
      // Padded rows agree with each other on the all-NULL side, so both
      // inputs' FDs survive; the join equalities do not (a padded row has
      // a non-NULL key side and a NULL padded side).
      fds.AddAll(right);
      break;
    case PlanOp::kLeftSemi:
    case PlanOp::kLeftAnti:
    case PlanOp::kGroupJoin:
      break;  // left FDs only
    default:
      break;
  }
  return fds;
}

FdSet GroupingFds(const FdSet& child, AttrSet group_by) {
  // Collapsing rows preserves agreement among the surviving attributes;
  // FDs mentioning aggregated-away attributes become vacuous upstream but
  // are kept (they never mis-derive facts about surviving attributes:
  // their left-hand sides can no longer be "contained in" any attribute
  // set the optimizer asks about... they can, via closure chaining — so we
  // restrict to FDs whose attributes all survive).
  FdSet fds;
  for (const FunctionalDependency& fd : child.fds()) {
    if (fd.lhs.IsSubsetOf(group_by)) {
      AttrSet rhs = fd.rhs.Intersect(group_by);
      if (!rhs.empty()) fds.Add(fd.lhs, rhs);
    }
  }
  return fds;
}

bool FdsDominate(const FdSet& a, const FdSet& b) { return a.Covers(b); }

}  // namespace eadp
