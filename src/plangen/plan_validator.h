// Structural plan validation.
//
// A defensive checker used by the test suite (and available to clients):
// verifies that a finalized plan is well-formed with respect to its query —
// every input operator applied exactly once, predicates only over available
// attributes, groupings shaped correctly, outer-join default vectors
// covering every generated column of the padded side, and monotone
// cost/cardinality bookkeeping. Returns human-readable violations instead
// of aborting, so tests can assert emptiness and print the details.
//
// The checks mirror the finalization contract of OpTrees (Fig. 6): every
// generator output must validate cleanly — plan_validator_test asserts
// this for all five algorithms and that corrupted plans are rejected. The
// default-vector check enforces the generalized-outer-join requirement of
// Eqvs. 7/8 (every generated column of the padded side carries a default).

#ifndef EADP_PLANGEN_PLAN_VALIDATOR_H_
#define EADP_PLANGEN_PLAN_VALIDATOR_H_

#include <string>
#include <vector>

#include "algebra/query.h"
#include "plangen/plan.h"

namespace eadp {

/// Validates a finalized plan against its query. Returns the list of
/// violations (empty = valid).
std::vector<std::string> ValidatePlan(const PlanPtr& plan, const Query& query);

}  // namespace eadp

#endif  // EADP_PLANGEN_PLAN_VALIDATOR_H_
