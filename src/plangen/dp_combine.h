// The shared csg-cmp-pair combine step: one implementation of the DP-table
// insertion policies that distinguish the plan generators (Fig. 5 single
// best, Fig. 9 complete lists, Fig. 10/12 heuristic single trees, Fig. 13/14
// dominance pruning).
//
// Both drivers of the dynamic program route every candidate cut through
// this class: the exhaustive generator (plangen.cc) feeds it the
// csg-cmp-pairs of the DPhyp enumeration, and the large-query subsystem
// (large_query.h) feeds it the unit-subset splits of its bounded
// subproblems. Keeping the policy in one place is what makes the kIdp
// subproblems literally "the existing Optimize machinery on a smaller
// universe" rather than a reimplementation.

#ifndef EADP_PLANGEN_DP_COMBINE_H_
#define EADP_PLANGEN_DP_COMBINE_H_

#include <vector>

#include "plangen/dp_table.h"
#include "plangen/op_trees.h"
#include "plangen/plangen.h"

namespace eadp {

class CcpCombiner {
 public:
  /// All pointers are borrowed and must outlive the combiner.
  ///
  /// `read_dp` is the table source classes are looked up in; null (the
  /// sequential case) means "same table as `dp`". The intra-query parallel
  /// DP passes the merged global table as `read_dp` and a per-worker shard
  /// as `dp`: a pair's source classes live in completed smaller levels
  /// (global, read-only during the level), while its target class — which
  /// kH2's InsertHeuristic also *reads* via Best(s) — lives in the shard
  /// of the worker owning that class.
  CcpCombiner(const Query* query, PlanBuilder* builder, DpTable* dp,
              Algorithm algorithm, double h2_tolerance,
              const DpTable* read_dp = nullptr);

  /// Applies the input operators crossing the (s1, s2) cut — if any apply —
  /// and inserts the produced trees into the DP table under the algorithm's
  /// insertion policy. Trees covering the whole query arrive finalized (the
  /// OpTrees contract) and are kept single-best regardless of policy.
  /// Returns true iff plans were built and offered to the table — false
  /// when no operator crosses the cut, the cut is conflict-blocked, or a
  /// source class holds no plans. (The offered plans may still all have
  /// been pruned away by the insertion policy.)
  bool Combine(RelSet s1, RelSet s2);

 private:
  /// BuildPlansH1 keeps the plain cheapest tree; BuildPlansH2 compares with
  /// eagerness-adjusted costs (CompareAdjustedCosts, Fig. 12).
  void InsertHeuristic(RelSet s, PlanPtr plan, bool top);

  const Query* query_;
  PlanBuilder* builder_;
  DpTable* dp_;             ///< target-class reads and all writes
  const DpTable* read_dp_;  ///< source-class reads (== dp_ sequentially)
  Algorithm algorithm_;
  double h2_tolerance_;
  /// Scratch list reused across cuts (OpTrees appends into it) so the DP
  /// loop does not allocate per pair.
  std::vector<PlanPtr> trees_;
};

}  // namespace eadp

#endif  // EADP_PLANGEN_DP_COMBINE_H_
