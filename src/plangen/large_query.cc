#include "plangen/large_query.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "conflict/conflict_detector.h"
#include "hypergraph/dphyp_enumerator.h"
#include "plangen/dp_combine.h"
#include "plangen/dp_table.h"
#include "plangen/parallel_dp.h"

namespace eadp {

namespace {

/// Shared state of one large-query optimization run: the conflict detector,
/// one PlanBuilder (and therefore one arena and one generated-column name
/// space — subplans stitched together later must not collide on "$p"/"$c"
/// columns, see DESIGN.md §8), and the stats bookkeeping.
class LargeQueryRun {
 public:
  LargeQueryRun(const Query& query, const OptimizerOptions& options)
      : query_(query),
        options_(options),
        conflicts_(query),
        builder_(&query, &conflicts_, EffectiveBuilderOptions(options),
                 std::make_shared<PlanArena>()),
        start_(std::chrono::steady_clock::now()) {}

  const Query& query() const { return query_; }
  const OptimizerOptions& options() const { return options_; }
  const ConflictDetector& conflicts() const { return conflicts_; }
  PlanBuilder& builder() { return builder_; }

  void CountCut() { ++cuts_tried_; }
  void AbsorbTableStats(const DpTable& dp) {
    table_plans_ += dp.TotalPlans();
    table_classes_ += dp.NumClasses();
    pruned_candidates_ += dp.pruned_candidates();
    pruned_existing_ += dp.pruned_existing();
  }
  void AbsorbParallelStats(const ParallelDpStats& stats, int workers) {
    worker_plans_built_ += stats.worker_plans_built;
    barrier_wait_ms_ += stats.barrier_wait_ms;
    dp_workers_used_ = std::max(dp_workers_used_, workers);
  }

  /// Pool the parallel DP subproblems fan out on: the injected
  /// OptimizerOptions::dp_pool, or a transient pool created on first use
  /// (one per run, shared by every subproblem — dp_threads W needs W-1
  /// slots since worker 0 is this thread).
  ThreadPool* DpPool() {
    if (options_.dp_pool != nullptr) return options_.dp_pool;
    if (owned_pool_ == nullptr) {
      owned_pool_ =
          std::make_unique<ThreadPool>(std::max(options_.dp_threads, 2) - 1);
    }
    return owned_pool_.get();
  }

  /// Base-relation scans, one unit per relation.
  std::vector<PlanPtr> MakeLeafUnits() {
    std::vector<PlanPtr> units;
    units.reserve(static_cast<size_t>(query_.NumRelations()));
    for (int r : BitsOf(query_.AllRelations())) {
      units.push_back(builder_.MakeScan(r));
    }
    return units;
  }

  /// The plan of the original operator tree (no reordering, no eager
  /// aggregation). Always applicable: every operator is applied at its own
  /// original cut, where the conflict rules trivially hold.
  PlanPtr CanonicalPlan() { return CanonicalRec(query_.root()); }

  /// Finalizes `plan` if it is not already finalized, fills the stats and
  /// hands the arena over.
  OptimizeResult Finish(PlanPtr plan, Algorithm used) {
    if (plan != nullptr && plan->op != PlanOp::kFinalMap) {
      plan = builder_.FinalizeTop(plan);
    }
    OptimizeResult result;
    result.plan = plan;
    result.stats.algorithm = used;
    result.stats.ccp_count = cuts_tried_;
    result.stats.plans_built = builder_.plans_built() + worker_plans_built_;
    result.stats.table_plans = table_plans_;
    result.stats.table_classes = table_classes_;
    result.stats.pruned_candidates = pruned_candidates_;
    result.stats.pruned_existing = pruned_existing_;
    result.stats.dp_barrier_wait_ms = barrier_wait_ms_;
    result.stats.dp_workers = dp_workers_used_;
    result.stats.optimize_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start_)
            .count();
    result.arena = builder_.arena();
    return result;
  }

 private:
  PlanPtr CanonicalRec(const OpTreeNode* node) {
    if (node->is_leaf) return builder_.MakeScan(node->relation);
    PlanPtr l = CanonicalRec(node->left.get());
    PlanPtr r = CanonicalRec(node->right.get());
    if (l == nullptr || r == nullptr) return nullptr;
    CountCut();
    CrossingOps crossing = builder_.FindCrossingOps(l->rels, r->rels);
    if (!crossing.valid) return nullptr;
    PlanPtr t1 = crossing.swap ? r : l;
    PlanPtr t2 = crossing.swap ? l : r;
    return builder_.MakeJoin(t1, t2, crossing);
  }

  const Query& query_;
  const OptimizerOptions& options_;
  ConflictDetector conflicts_;
  PlanBuilder builder_;
  std::chrono::steady_clock::time_point start_;
  std::unique_ptr<ThreadPool> owned_pool_;
  uint64_t cuts_tried_ = 0;
  size_t table_plans_ = 0;
  size_t table_classes_ = 0;
  uint64_t pruned_candidates_ = 0;
  uint64_t pruned_existing_ = 0;
  uint64_t worker_plans_built_ = 0;
  double barrier_wait_ms_ = 0;
  int dp_workers_used_ = 1;
};

struct RelSetPairHash {
  size_t operator()(const std::pair<RelSet, RelSet>& p) const {
    return static_cast<size_t>(Mix64(p.first.Hash() + p.second.Hash()));
  }
};

}  // namespace

OptimizeResult OptimizeGreedy(const Query& query,
                              const OptimizerOptions& options) {
  LargeQueryRun run(query, options);
  std::vector<PlanPtr> units = run.MakeLeafUnits();

  // Cheapest OpTrees combination per unit pair, keyed by the pair's
  // (disjoint, hence distinct) relation sets in canonical order. Merges
  // leave all other units untouched, so cached candidates stay valid
  // across rounds; only pairs involving the freshly merged unit miss.
  std::unordered_map<std::pair<RelSet, RelSet>, PlanPtr, RelSetPairHash>
      candidates;
  candidates.reserve(units.size() * units.size() / 2);
  std::vector<PlanPtr> trees;
  auto candidate = [&](PlanPtr a, PlanPtr b) -> PlanPtr {
    if (b->rels < a->rels) std::swap(a, b);
    auto [it, inserted] = candidates.try_emplace({a->rels, b->rels}, nullptr);
    if (!inserted) return it->second;
    run.CountCut();
    CrossingOps crossing = run.builder().FindCrossingOps(a->rels, b->rels);
    if (!crossing.valid) return nullptr;
    PlanPtr t1 = crossing.swap ? b : a;
    PlanPtr t2 = crossing.swap ? a : b;
    trees.clear();
    run.builder().OpTrees(t1, t2, crossing, &trees);
    PlanPtr best = nullptr;
    for (PlanPtr t : trees) {
      if (best == nullptr || t->cost < best->cost) best = t;
    }
    it->second = best;
    return best;
  };

  int merges = 0;
  while (units.size() > 1) {
    size_t bi = 0, bj = 0;
    PlanPtr best = nullptr;
    // The merge budget (testing/ablation, -1 = unlimited) deliberately
    // routes through the same fallback branch as a conflict-blocked state,
    // so tests can pin the fallback on a genuinely partially-merged run.
    bool budget_left = options.goo_merge_budget < 0 ||
                       merges < options.goo_merge_budget;
    if (budget_left) {
      for (size_t i = 0; i < units.size(); ++i) {
        for (size_t j = i + 1; j < units.size(); ++j) {
          PlanPtr t = candidate(units[i], units[j]);
          if (t != nullptr && (best == nullptr || t->cost < best->cost)) {
            best = t;
            bi = i;
            bj = j;
          }
        }
      }
    }
    if (best == nullptr) {
      // Conflict rules block every remaining pair (or the merge budget is
      // exhausted): give up on greedy merging and fall back to the
      // always-applicable original tree. The successfully merged units are
      // discarded wholesale — audited 2026-07: a partial-merge-preserving
      // fallback has nothing to attach to, because a blocked state means
      // the *pending* operators reject every inter-unit cut, and the
      // canonical rebuild applies every operator at its own original cut,
      // which conflict rules always admit. The discarded units only cost
      // arena memory (already-built nodes stay allocated until the run's
      // arena dies), and the fallback plan is exactly OptimizeOriginal's —
      // validator-clean and cost-equal, pinned by large_query_test. No
      // natural trigger is known for tree-shaped single-predicate queries
      // (a 15k-query sweep over mixed-operator trees never blocked:
      // CD-C's conservative rules only admit merges that keep the
      // remaining ops applicable along the original tree), so the branch
      // is exercised via OptimizerOptions::goo_merge_budget.
      return run.Finish(run.CanonicalPlan(), Algorithm::kGoo);
    }
    units[bi] = best;
    units.erase(units.begin() + static_cast<ptrdiff_t>(bj));
    ++merges;
  }
  return run.Finish(units[0], Algorithm::kGoo);
}

OptimizeResult OptimizeIdp(const Query& query,
                           const OptimizerOptions& options) {
  LargeQueryRun run(query, options);
  std::vector<PlanPtr> units = run.MakeLeafUnits();
  // Clamped: the subset-split DP below enumerates 2^(k+2) unit classes in
  // 32-bit masks, and past ~16 the 3^k split work is absurd anyway.
  int k = std::clamp(options.idp_block_size, 2, 16);
  Algorithm inner = IsExhaustive(options.idp_inner) ? options.idp_inner
                                                    : Algorithm::kEaPrune;

  // Two units are adjacent when some input operator references relations
  // of both — weaker than hypergraph connectivity (a hyperedge side may
  // span several units), which is exactly what lets groups grow across
  // hyperedges whose full side is not yet assembled.
  size_t num_ops = query.ops().size();
  auto adjacent = [&](RelSet a, RelSet b) {
    for (size_t i = 0; i < num_ops; ++i) {
      RelSet ses = run.conflicts().conflicts(static_cast<int>(i)).ses;
      if (ses.Intersects(a) && ses.Intersects(b)) return true;
    }
    return false;
  };

  // Seeds whose subproblem produced no merge; retried only after some
  // other subproblem changes the unit partition.
  std::vector<RelSet> blocked;
  auto is_blocked = [&](RelSet rels) {
    return std::find(blocked.begin(), blocked.end(), rels) != blocked.end();
  };

  // Groups below this size run their split DP sequentially even when
  // dp_threads > 1: a default-sized block (k=6, ~365 splits) is µs-scale
  // work that a fan-out only slows down, while ~3^g/2 splits at g >= 10
  // (~30k pairs) amortize the per-level barriers. Subproblems past the
  // gate route through ParallelDp with per-round worker namespaces so
  // plans from different rounds and workers can stitch without
  // generated-column collisions.
  constexpr int kParallelMinGroup = 10;
  const int dp_workers = std::max(options.dp_threads, 1);
  OptimizerOptions inner_options = options;
  inner_options.algorithm = inner;
  int parallel_round = 0;

  while (units.size() > 1) {
    // Seed: the cheapest-cardinality unit not yet blocked — merging small
    // inputs first mirrors the greedy block selection of IDP1.
    size_t seed = units.size();
    for (size_t i = 0; i < units.size(); ++i) {
      if (is_blocked(units[i]->rels)) continue;
      if (seed == units.size() ||
          units[i]->cardinality < units[seed]->cardinality) {
        seed = i;
      }
    }
    if (seed == units.size()) {
      // Every remaining seed is stuck — let the caller fall back to kGoo.
      return run.Finish(nullptr, Algorithm::kIdp);
    }

    // Grow the group by the smallest-cardinality adjacent unit. The last
    // round gets two units of slack: leaving a 1-2 unit remainder forces a
    // blind top-level stitch exactly where structure matters most (e.g.
    // the closing edge of a cycle), and 3^(k+2) splits are still cheap.
    int limit = static_cast<int>(units.size()) <= k + 2
                    ? static_cast<int>(units.size())
                    : k;
    std::vector<size_t> group = {seed};
    RelSet group_rels = units[seed]->rels;
    while (static_cast<int>(group.size()) < limit) {
      size_t pick = units.size();
      for (size_t j = 0; j < units.size(); ++j) {
        if (units[j]->rels.Intersects(group_rels)) continue;  // in group
        if (!adjacent(group_rels, units[j]->rels)) continue;
        if (pick == units.size() ||
            units[j]->cardinality < units[pick]->cardinality) {
          pick = j;
        }
      }
      if (pick == units.size()) break;
      group.push_back(pick);
      group_rels.UnionWith(units[pick]->rels);
    }
    if (group.size() < 2) {
      blocked.push_back(units[seed]->rels);
      continue;
    }

    // Exact bounded DP over the group: every split of every unit subset,
    // inserted under the inner algorithm's policy. Subset masks are
    // processed in increasing word order, so both sides of a split are
    // complete before the split is tried (the DP prerequisite).
    int g = static_cast<int>(group.size());
    uint32_t full = (uint32_t{1} << g) - 1;
    std::vector<RelSet> class_rels(full + 1);
    for (uint32_t mask = 1; mask <= full; ++mask) {
      uint32_t low = mask & (~mask + 1);
      class_rels[mask] =
          class_rels[mask & (mask - 1)].Union(
              units[group[static_cast<size_t>(std::countr_zero(low))]]->rels);
    }
    DpTable dp;
    dp.SetDominanceOptions(!options.prune_without_cardinality,
                           !options.prune_without_keys,
                           options.full_fd_dominance);
    dp.Reserve(full + 1);
    for (int b = 0; b < g; ++b) {
      dp.Append(class_rels[uint32_t{1} << b], units[group[static_cast<size_t>(b)]]);
    }
    if (dp_workers > 1 && g >= kParallelMinGroup) {
      // Bucket the splits by target relation count — unit relation sets
      // are disjoint and non-empty, so a split's sources always sit at
      // strictly smaller levels, the prerequisite of the parallel
      // schedule. Per-class split order matches the sequential loop (all
      // splits of one mask are contiguous and emitted in the same order),
      // so the table contents are identical (see parallel_dp.h).
      std::vector<std::vector<CcpPair>> levels(
          static_cast<size_t>(query.NumRelations()) + 1);
      for (uint32_t mask = 3; mask <= full; ++mask) {
        if (std::popcount(mask) < 2) continue;
        uint32_t lowest = mask & (~mask + 1);
        auto& level =
            levels[static_cast<size_t>(class_rels[mask].Count())];
        for (uint32_t sub = (mask - 1) & mask; sub != 0;
             sub = (sub - 1) & mask) {
          if ((sub & lowest) == 0) continue;
          uint32_t comp = mask ^ sub;
          if (comp == 0) continue;
          level.push_back({class_rels[sub], class_rels[comp]});
        }
      }
      ParallelDp parallel(&query, &run.conflicts(), inner_options,
                          &run.builder(), &dp, dp_workers, run.DpPool(),
                          "r" + std::to_string(parallel_round++) + "w");
      parallel.RunLevels(levels);
      run.AbsorbParallelStats(parallel.stats(), dp_workers);
      // Cut accounting matches the sequential loop's has-both-sources
      // check: classes are complete when a split reads them, so checking
      // the final table gives the same answer the loop-time check did.
      for (const std::vector<CcpPair>& level : levels) {
        for (const CcpPair& p : level) {
          if (dp.Has(p.s1) && dp.Has(p.s2)) run.CountCut();
        }
      }
    } else {
      CcpCombiner combiner(&query, &run.builder(), &dp, inner,
                           options.h2_tolerance);
      for (uint32_t mask = 3; mask <= full; ++mask) {
        if (std::popcount(mask) < 2) continue;
        uint32_t lowest = mask & (~mask + 1);
        for (uint32_t sub = (mask - 1) & mask; sub != 0;
             sub = (sub - 1) & mask) {
          // Each unordered split once: keep the side with the lowest unit.
          if ((sub & lowest) == 0) continue;
          uint32_t comp = mask ^ sub;
          if (comp == 0) continue;
          if (!dp.Has(class_rels[sub]) || !dp.Has(class_rels[comp])) continue;
          run.CountCut();
          combiner.Combine(class_rels[sub], class_rels[comp]);
        }
      }
    }

    // The winner replaces its units. When conflict rules leave the full
    // group uncombinable, salvage the class that joins the most units
    // (cheapest on ties) so the iteration still makes progress.
    PlanPtr win = dp.Best(class_rels[full]);
    uint32_t win_mask = full;
    if (win == nullptr) {
      int best_count = 1;
      for (uint32_t mask = 3; mask <= full; ++mask) {
        int count = std::popcount(mask);
        if (count < 2) continue;
        PlanPtr p = dp.Best(class_rels[mask]);
        if (p == nullptr) continue;
        if (count > best_count ||
            (count == best_count && win != nullptr && p->cost < win->cost)) {
          win = p;
          win_mask = mask;
          best_count = count;
        }
      }
    }
    run.AbsorbTableStats(dp);
    if (win == nullptr) {
      blocked.push_back(units[seed]->rels);
      continue;
    }

    RelSet covered = class_rels[win_mask];
    std::vector<PlanPtr> next;
    next.reserve(units.size());
    for (PlanPtr u : units) {
      if (!u->rels.IsSubsetOf(covered)) next.push_back(u);
    }
    next.push_back(win);
    units = std::move(next);
    blocked.clear();
  }
  return run.Finish(units[0], Algorithm::kIdp);
}

OptimizeResult OptimizeOriginal(const Query& query,
                                const OptimizerOptions& options) {
  LargeQueryRun run(query, options);
  return run.Finish(run.CanonicalPlan(), options.algorithm);
}

}  // namespace eadp
