// Intra-query parallel dynamic programming: one exact enumeration spread
// across DP workers, cost-identical to the sequential run by construction.
//
// Schedule (DESIGN.md §12): csg-cmp-pairs are materialized bucketed by the
// subset size |S1 ∪ S2| (dphyp_enumerator.h CollectCsgCmpPairsBySize).
// Levels run in ascending order with a barrier between them; within a
// level, every pair is processed by the worker *owning its target class*
// (owner = Hash(S1 ∪ S2) mod W). Each worker builds plans with a private
// PlanBuilder into a private arena and inserts into a private DpTable
// shard; source classes are read from the shared merged table, which holds
// exactly the completed smaller levels. At the barrier, every shard's
// classes move wholesale into the merged table (DpTable::AdoptClassesFrom).
//
// Why this is cost-identical to sequential at any worker count:
//   * DPhyp emits both components of a pair after all of their own
//     sub-pairs, so every source class of a level-k pair lives in a level
//     < k — complete and immutable once level k starts;
//   * the only level-k class a pair touches (kH2 also *reads* its target
//     via Best(S)) is its own union, and all pairs sharing a union go to
//     one worker, which processes them in emission order — so the
//     insertion sequence each class sees is exactly the subsequence of the
//     sequential emission order targeting it;
//   * insertion policies are deterministic functions of (class contents,
//     candidate), and plan construction is a deterministic function of the
//     source plans. By induction over levels — identical singleton scans
//     at the base — every class ends with the same costs/cardinalities/
//     keys sequence as sequentially, hence the same best plan cost.
//     (Generated-column *names* differ — workers draw from per-worker
//     namespaces so merged plans cannot collide — but names carry no cost.)
//
// Memory: worker arenas are adopted as siblings of the primary run arena
// (PlanArena::AdoptSibling), so the single shared_ptr handed to
// OptimizeResult keeps cross-arena plans alive unchanged.
//
// Both exact-DP drivers use this scheduler: the exhaustive generator
// (plangen.cc) over the DPhyp levels of the whole query, and the kIdp
// subproblems (large_query.cc) over their unit-subset splits bucketed by
// relation count — the same source-classes-strictly-smaller argument
// holds there because units are disjoint and non-empty.

#ifndef EADP_PLANGEN_PARALLEL_DP_H_
#define EADP_PLANGEN_PARALLEL_DP_H_

#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "hypergraph/dphyp_enumerator.h"
#include "plangen/dp_combine.h"
#include "plangen/dp_table.h"
#include "plangen/op_trees.h"
#include "plangen/plangen.h"

namespace eadp {

struct ParallelDpStats {
  uint64_t ccp_count = 0;           ///< pairs processed across all levels
  uint64_t worker_plans_built = 0;  ///< plan nodes built by worker builders
  double barrier_wait_ms = 0;       ///< caller blocked on peers, summed
};

/// One parallel DP execution over one merged table. One-shot: construct,
/// RunLevels once, read stats, destroy. On return from RunLevels, `dp`
/// holds every class the enumeration produced and the worker arenas have
/// been adopted into the primary builder's arena.
class ParallelDp {
 public:
  /// All pointers are borrowed. `dp` is the merged table (singleton scans
  /// must already be present); `primary` is the run's main builder, whose
  /// arena adopts the worker arenas. `tag_prefix` + worker index forms
  /// each worker's name-space tag and must be unique per primary builder
  /// across every ParallelDp sharing it (kIdp passes a per-subproblem
  /// prefix). `workers` is clamped to >= 1; `pool` may be null (inline
  /// execution — the degenerate sequential schedule).
  ParallelDp(const Query* query, const ConflictDetector* conflicts,
             const OptimizerOptions& options, PlanBuilder* primary,
             DpTable* dp, int workers, ThreadPool* pool,
             const std::string& tag_prefix);

  /// Processes `levels` (index = |S1 ∪ S2|) in ascending order with a
  /// shard merge after each level.
  void RunLevels(const std::vector<std::vector<CcpPair>>& levels);

  const ParallelDpStats& stats() const { return stats_; }

 private:
  struct Worker {
    Worker(const Query* query, const ConflictDetector* conflicts,
           const OptimizerOptions& options, const DpTable* read_dp,
           std::string tag);

    PlanBuilder builder;
    DpTable shard;
    CcpCombiner combiner;
  };

  PlanBuilder* primary_;
  DpTable* dp_;
  ThreadPool* pool_;
  std::vector<std::unique_ptr<Worker>> workers_;
  ParallelDpStats stats_;
  bool ran_ = false;
};

}  // namespace eadp

#endif  // EADP_PLANGEN_PARALLEL_DP_H_
