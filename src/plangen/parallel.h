// The parallel optimizer subsystem: batched multi-query throughput and the
// concurrent kGoo/kIdp race, on top of common/thread_pool.h.
//
// Concurrency model (DESIGN.md §9): the unit of parallelism is one whole
// optimization run. Every run owns a private PlanArena and builds all of
// its state (ConflictDetector, PlanBuilder, DpTable) from a const Query&,
// so concurrent runs share nothing mutable by construction — the hot path
// takes no locks, and the only synchronization anywhere is the pool's task
// queue and the futures' fan-in.
//
// Determinism is the hard requirement: for every query, the parallel entry
// points produce plans cost-identical to their sequential counterparts.
// OptimizeBatch runs the same per-query facade as a sequential loop would
// (each task is independent and internally deterministic), and the
// concurrent race funnels its two results through the same
// PickAdaptiveWinner policy as the sequential facade — the winner is
// decided by comparing both completed plans, never by completion order.
// parallel_test pins both differentially, under repetition.

#ifndef EADP_PLANGEN_PARALLEL_H_
#define EADP_PLANGEN_PARALLEL_H_

#include <span>
#include <vector>

#include "algebra/query.h"
#include "common/thread_pool.h"
#include "plangen/plangen.h"

namespace eadp {

/// Aggregate serving statistics of one OptimizeBatch call. Latencies are
/// per-query wall-clock optimization times (exact-DP or adaptive race,
/// whatever the facade ran); percentiles use the nearest-rank method.
struct BatchStats {
  int num_queries = 0;
  int num_threads = 1;      ///< pool size actually used (1 == sequential)
  double wall_ms = 0;       ///< end-to-end batch wall clock
  double queries_per_second = 0;  ///< num_queries / wall seconds
  double p50_ms = 0;        ///< median per-query optimization latency
  double p95_ms = 0;        ///< 95th-percentile per-query latency
  double max_ms = 0;        ///< slowest single query
  double total_optimize_ms = 0;  ///< sum of per-query latencies (~CPU time)
  /// Queries served from OptimizerOptions::plan_cache (0 when no cache is
  /// configured). Hit latencies are the probe times, so a warm cache pulls
  /// p50 far below the planning latencies the misses pay.
  int cache_hits = 0;
};

/// Result of one batch: per-query results in input order (each carrying its
/// own arena, exactly as if Optimize had been called in a loop) plus the
/// aggregate stats.
struct BatchResult {
  std::vector<OptimizeResult> results;
  BatchStats stats;
};

/// The serving entry point: plans every query of `queries` through
/// OptimizeAdaptive, one pool task (and one private arena) per query, and
/// returns per-query results plus throughput/latency aggregates.
///
/// `num_threads <= 1` runs the plain sequential loop on the caller's thread
/// — the differential reference. Per-query plan costs are bit-identical
/// across thread counts (parallel_test). Queries inside one task run the
/// *sequential* adaptive facade: with a full batch in flight the pool is
/// already saturated, so racing strategies per query would only add queue
/// pressure, not speed.
///
/// When `options.plan_cache` is set, every task probes/populates that
/// shared cache concurrently (it is sharded and thread-safe); repeated
/// query shapes within or across batches are then planned once and served
/// from memory after — cost-identical to the cache-off run, pinned by
/// plan_cache_concurrency_test.
///
/// \deprecated Thin shim over PlannerSession (plangen/session.h):
/// equivalent to `PlannerSession(options).OptimizeBatch(queries,
/// num_threads)`. Kept for source compatibility; new code should hold a
/// PlannerSession.
BatchResult OptimizeBatch(std::span<const Query> queries,
                          const OptimizerOptions& options, int num_threads);

/// As above, on a caller-owned pool (reused across batches by a serving
/// loop; the call still blocks until the whole batch is planned). A null
/// pool runs sequentially.
///
/// \deprecated Shim over PlannerSession::OptimizeBatch, as above.
BatchResult OptimizeBatch(std::span<const Query> queries,
                          const OptimizerOptions& options, ThreadPool* pool);

/// OptimizeAdaptive with the large-query kGoo/kIdp race run as two
/// genuinely concurrent tasks: kIdp as a pool task, kGoo on the calling
/// thread (one pool slot, no idle caller). Both strategies build into
/// private arenas; the caller waits for *both* results, PickAdaptiveWinner
/// keeps the cheaper plan and the loser's arena is dropped wholesale
/// (DESIGN.md §8 ownership rules — no node of one run ever points into the
/// other's arena). Cost-identical to the sequential facade by
/// construction; wall clock is ~max(t_goo, t_idp) instead of their *sum* —
/// both results must be in hand before the comparison, so the slower
/// strategy bounds latency (a first-finisher-wins scheme would be faster
/// but scheduler-dependent, breaking the determinism contract).
///
/// Falls back to the sequential OptimizeAdaptive when `pool` is null or
/// has fewer than 2 threads (matching the batch entry point's sequential
/// reference path). Queries at or below the exact-DP threshold route to
/// the exact enumeration unchanged — there is no race to parallelize.
/// \deprecated Thin shim over PlannerSession (plangen/session.h):
/// equivalent to `PlannerSession(options).OptimizeConcurrent(query,
/// pool)`, including the cache probe. Kept for source compatibility.
OptimizeResult OptimizeAdaptiveConcurrent(const Query& query,
                                          const OptimizerOptions& options,
                                          ThreadPool* pool);

/// The cache-oblivious core of the concurrent race: exactly
/// OptimizeAdaptiveConcurrent minus the cache probe (any cache pointers
/// in `options` are ignored). This is the `plan_fresh` callback
/// PlannerSession::OptimizeConcurrent hands to the shared probe path.
OptimizeResult OptimizeAdaptiveConcurrentUncached(
    const Query& query, const OptimizerOptions& options, ThreadPool* pool);

}  // namespace eadp

#endif  // EADP_PLANGEN_PARALLEL_H_
