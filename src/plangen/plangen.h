// The five plan generators of the paper (Sec. 4).
//
//   kDphyp   — the baseline: reorders all operators with DPhyp + conflict
//              detection but never pushes grouping; a single top grouping
//              finishes the plan (Fig. 5).
//   kEaAll   — complete enumeration with eager aggregation: keeps every
//              join tree per plan class (BuildPlansAll, Fig. 9).
//              Exponential; optimal.
//   kEaPrune — complete enumeration + optimality-preserving dominance
//              pruning (BuildPlansPrune, Fig. 14 / Fig. 13). Optimal.
//   kH1      — heuristic: single cheapest tree per class, groupings
//              assessed locally (BuildPlansH1, Fig. 10).
//   kH2      — heuristic: like H1 but prefers "more eager" plans within a
//              tolerance factor F (BuildPlansH2, Fig. 12).
//
// Complexity (Sec. 4.3): per csg-cmp-pair, kEaAll does work proportional
// to the product of the kept plan lists — O(2^{2n-1}) tree pairs in the
// worst case — while kDphyp/kH1/kH2 keep O(1) plans per class and the
// pruned table of kEaPrune typically stays small (see bench_complexity).
//
// Invariants: all generators share one enumeration (conflict detection →
// hypergraph → DPhyp), so they consider exactly the same plan classes and
// differ only in the DP-table insertion policy and grouping placement.
// On every query, Cost(kEaPrune) == Cost(kEaAll), and no heuristic or the
// baseline beats that optimum, which itself never exceeds the baseline
// (all three relations pinned by plangen_test).
//
// Beyond the exhaustive enumeration, the large-query subsystem
// (plangen/large_query.h) contributes two strategies for queries past the
// exact-DP wall (~15 relations):
//
//   kGoo     — greedy operator ordering: merges the cheapest valid pair of
//              subplans bottom-up, with eager-aggregation placement decided
//              locally per merge. O(n^2) candidate evaluations; always
//              terminates (falls back to the original operator tree when
//              conflict rules block every remaining pair).
//   kIdp     — iterative dynamic programming (IDP1 style): repeatedly runs
//              the exact insertion policies over bounded unit subproblems
//              (<= OptimizerOptions::idp_block_size units, default policy
//              kEaPrune) and stitches the winners until one plan remains.
//
// OptimizeAdaptive is the production entry point: exact DP up to
// OptimizerOptions::adaptive_exact_relations; above that both large-query
// strategies run and the cheaper plan wins (kGoo doubling as the
// always-terminating fallback). Differential tests pin that the facade is
// cost-identical to kEaPrune on every corpus query where exact DP runs
// (large_query_test).

#ifndef EADP_PLANGEN_PLANGEN_H_
#define EADP_PLANGEN_PLANGEN_H_

#include <cstdint>
#include <memory>
#include <string>

#include "algebra/query.h"
#include "plangen/op_trees.h"
#include "plangen/plan.h"

namespace eadp {

class PersistentPlanCache;
class PlanCache;
class ThreadPool;

enum class Algorithm { kDphyp, kEaAll, kEaPrune, kH1, kH2, kGoo, kIdp };

const char* AlgorithmName(Algorithm a);

/// True for the algorithms that run the exhaustive DPhyp enumeration (the
/// five generators of the paper); false for the large-query strategies.
inline bool IsExhaustive(Algorithm a) {
  return a != Algorithm::kGoo && a != Algorithm::kIdp;
}

/// The plan-identity half of the optimizer configuration: every knob that
/// steers WHICH plan gets built. This is exactly the set the plan-cache
/// key folds in (plan_cache.h's FoldOptionsIntoFingerprint consumes a
/// PlannerKnobs and folds every field — no per-knob exclusion list): two
/// configurations with equal PlannerKnobs may share cache entries, two
/// with different knobs never do. Execution context (pools, cache
/// pointers, serving policy) lives in PlannerContext instead, so adding a
/// context field can never silently cross-serve plans between
/// configurations.
struct PlannerKnobs {
  Algorithm algorithm = Algorithm::kEaPrune;
  /// Tolerance factor F of CompareAdjustedCosts (H2 only).
  double h2_tolerance = 1.03;
  /// Builder options (top-grouping elimination etc.).
  BuilderOptions builder;
  /// Ablation: disable the key criterion in the dominance test (EA-Prune).
  bool prune_without_keys = false;
  /// Ablation: disable the cardinality criterion in the dominance test.
  bool prune_without_cardinality = false;
  /// Use the unweakened FD-closure comparison of Def. 4 in the dominance
  /// test instead of (in addition to) the key-based weakening. More exact,
  /// prunes less, costs closure computations per comparison.
  bool full_fd_dominance = false;

  // ---- Large-query subsystem (plangen/large_query.h) ----

  /// OptimizeAdaptive: queries with at most this many relations run the
  /// exact enumeration with `algorithm`; larger ones run kIdp, with kGoo
  /// as the always-terminating fallback. The default sits safely below the
  /// exhaustive-DP wall for every topology (a 12-clique enumerates in the
  /// low milliseconds; see bench_large_queries).
  int adaptive_exact_relations = 12;
  /// kIdp: maximum number of units (base relations or previously stitched
  /// subplans) per bounded exact subproblem. Each subproblem enumerates
  /// all connected splits of up to this many units (<= 3^k work), so the
  /// knob trades plan quality against optimization time; 6 is the knee of
  /// that curve on the seeded 100-relation workloads (k=7 costs ~3x the
  /// time for plan costs within a few percent — see bench_large_queries).
  int idp_block_size = 6;
  /// kIdp: insertion policy used inside the bounded subproblems (any
  /// exhaustive algorithm; the optimal pruned enumeration by default).
  Algorithm idp_inner = Algorithm::kEaPrune;
  /// kGoo testing/ablation hook: number of greedy merges after which the
  /// run takes its original-tree fallback (-1 = unlimited, the production
  /// setting). The fallback's natural trigger — conflict rules blocking
  /// every remaining unit pair mid-run — has no known witness among
  /// tree-shaped single-predicate queries (see the audit note in
  /// large_query.cc), so the regression tests drive the fallback path
  /// through this cap instead: it funnels a genuinely partially-merged
  /// state through the very same branch.
  int goo_merge_budget = -1;

  // ---- Intra-query parallel DP (plangen/parallel_dp.h) ----

  /// DP workers for one exhaustive enumeration (and for kIdp's bounded
  /// subproblems): csg-cmp-pairs are processed level-by-level over the
  /// subset size |S1 ∪ S2|, spread across this many workers within each
  /// level. 1 (the default) runs the plain sequential DP loop — small
  /// queries pay nothing. Any worker count produces plans cost-identical
  /// to the sequential run (bit-identical DP-table contents by
  /// construction; pinned by parallel_dp_test). Folded into the plan-cache
  /// fingerprint even though parallel plans are cost-identical: generated
  /// column names differ per worker count, so cross-serving would surprise
  /// anything reading plan internals. The pool the workers run on is
  /// execution context (PlannerContext::dp_pool), not plan identity.
  int dp_threads = 1;
};

/// The execution-context half of the optimizer configuration: where the
/// planning runs and which caches serve it — never WHICH plan gets built.
/// Nothing in here is folded into the plan-cache key (the cache's identity
/// must not depend on which cache is probed or which pool plans), which is
/// structural now: the key derives from PlannerKnobs alone, so there is no
/// per-field exclusion list to maintain. In the session API
/// (plangen/session.h) this is the state a PlannerSession owns for its
/// lifetime while per-call knobs travel in PlannerKnobs.
struct PlannerContext {
  // ---- Cross-query plan cache (plangen/plan_cache.h) ----

  /// When set, the facade entry points (OptimizeAdaptive, OptimizeBatch,
  /// OptimizeAdaptiveConcurrent) probe this cache with the query's
  /// canonical fingerprint — extended by the planning-relevant option
  /// knobs, so mixed configurations safely share one cache — before
  /// planning, and populate it after. Hits return the memoized plan
  /// (cost-identical to a fresh run by determinism; pinned
  /// differentially in plan_cache_test) with stats.cache_hit set and
  /// optimize_ms covering only the probe. The cache is thread-safe;
  /// batch planning shares one instance across all pool workers. Not
  /// owned; must outlive the optimization calls. Unsatisfiable results
  /// (null plan) are never cached.
  PlanCache* plan_cache = nullptr;

  /// Disk-backed second cache tier (plangen/persistent_cache.h), probed
  /// when `plan_cache` misses (or alone, if no memory tier is set): hits
  /// decode the stored blob into a fresh arena, are promoted into
  /// `plan_cache`, and report stats.cache_tier == 2. Fresh plans are
  /// written behind. Like plan_cache and dp_pool this is execution
  /// context, not plan identity — both tiers share the same cache key and
  /// neither pointer is folded into it. Not owned; must outlive the
  /// optimization calls.
  PersistentPlanCache* persistent_cache = nullptr;

  /// Pool the extra DP workers run on (worker 0 is the calling thread, so
  /// PlannerKnobs::dp_threads W needs W-1 pool slots). Borrowed, not
  /// owned; may be shared with the batch/race entry points. When null and
  /// dp_threads > 1, Optimize spins up a transient pool for the run.
  ThreadPool* dp_pool = nullptr;

  // ---- Incremental re-optimization under statistics drift ----

  /// Drift tolerance band for serving cached plans whose statistics
  /// overlay no longer matches the probing query's: a drifted hit is
  /// re-costed (cost/recost.h) and served iff
  ///   recost(plan) <= (1 + drift_tolerance) * DriftCostScale * old_cost,
  /// i.e. iff the cached plan is provably within the tolerance of any plan
  /// a full re-run could find. 0 (the default) disables stale serving
  /// entirely — every drifted hit re-plans, preserving the pre-drift
  /// "stats change == different plan run" behavior exactly. Like the cache
  /// pointers this is serving policy, not plan identity: it is NOT folded
  /// into the cache key.
  double drift_tolerance = 0;
  /// When set together with plan_cache, out-of-tolerance drifted hits
  /// re-plan on this pool in the BACKGROUND: the stale plan is served
  /// immediately (stats.replan_background) and the refreshed entry is
  /// swapped in place when the re-plan finishes. When null, out-of-band
  /// drifted hits re-plan inline (the caller waits, stats.cache_tier 0).
  /// Borrowed, not owned; destroy the pool BEFORE the caches it refreshes.
  ThreadPool* replan_pool = nullptr;
};

/// The flat options bag the free-function facade takes: knobs and context
/// in one aggregate (C++17 aggregates-with-bases, so `OptimizerOptions o;
/// o.algorithm = ...; o.plan_cache = ...;` keeps working unchanged across
/// the split). New code should prefer PlannerSession (plangen/session.h),
/// which holds the context for its lifetime and exposes the knobs/context
/// halves explicitly; the split exists so cache-key code can consume
/// exactly the identity half by slicing to the PlannerKnobs base.
struct OptimizerOptions : PlannerKnobs, PlannerContext {};

/// Builder options as the generators actually instantiate them: the
/// full-FD dominance ablation needs FD sets tracked on every node. Used by
/// both the sequential Generator and the parallel DP's worker builders so
/// the two construct plans identically.
inline BuilderOptions EffectiveBuilderOptions(const OptimizerOptions& o) {
  BuilderOptions b = o.builder;
  b.track_fds |= o.full_fd_dominance;
  return b;
}

struct OptimizeStats {
  uint64_t ccp_count = 0;       ///< csg-cmp-pairs (or candidate cuts) tried
  uint64_t plans_built = 0;     ///< plan nodes constructed
  size_t table_plans = 0;       ///< plans in the DP table at the end
  size_t table_classes = 0;     ///< plan classes in the DP table
  double optimize_ms = 0;       ///< wall-clock optimization time
  /// The strategy that actually produced the plan — what OptimizeAdaptive
  /// chose, including a fallback taken mid-flight (e.g. kIdp -> kGoo).
  Algorithm algorithm = Algorithm::kEaPrune;
  /// True iff the result was served from a cache tier (memory or disk);
  /// the other counters then describe the run that originally built the
  /// plan, while optimize_ms is the fingerprint+probe time of *this* call.
  bool cache_hit = false;
  /// Which tier served the result: 0 = planned fresh, 1 = memory tier
  /// (OptimizerOptions::plan_cache), 2 = disk tier (persistent_cache,
  /// including the decode). Implies cache_hit for tiers 1 and 2.
  int cache_tier = 0;
  /// The hit's statistics had drifted, the re-costed cached plan fell
  /// inside the drift_tolerance band, and a full re-plan was skipped.
  /// recosted_cost then carries the plan's cost under the current
  /// statistics (plan->cost keeps the plan-time annotation).
  bool replan_avoided = false;
  /// The hit's statistics had drifted out of tolerance; the stale plan was
  /// served anyway while a background re-plan (OptimizerOptions::
  /// replan_pool) refreshes the entry in place.
  bool replan_background = false;
  /// Root plan cost under the probing query's statistics when the serve
  /// decision re-costed the plan (replan_avoided or replan_background);
  /// 0 otherwise.
  double recosted_cost = 0;

  // DP hot-path counters (exhaustive generators and kIdp subproblems;
  // zero for strategies without a DP table, e.g. kGoo).
  /// Candidate plans rejected by the dominance test at insertion.
  uint64_t pruned_candidates = 0;
  /// Stored plans evicted by a dominating newcomer.
  uint64_t pruned_existing = 0;
  /// Milliseconds the coordinating thread spent blocked on peer DP workers
  /// at subset-size barriers (0 when the DP ran sequentially).
  double dp_barrier_wait_ms = 0;
  /// DP workers the run was configured with (clamped OptimizerOptions::
  /// dp_threads; 1 = sequential).
  int dp_workers = 1;
};

struct OptimizeResult {
  PlanPtr plan = nullptr;  ///< finalized plan (null if unsatisfiable)
  OptimizeStats stats;
  /// Owns every node `plan` points into (the per-optimization arena);
  /// shared so results stay copyable. Executing or inspecting `plan` is
  /// valid exactly as long as some copy of this handle lives.
  std::shared_ptr<PlanArena> arena;
};

/// Runs the selected plan generator over a (canonicalized) query. The
/// exhaustive algorithms enumerate with DPhyp; kGoo/kIdp dispatch into the
/// large-query subsystem.
OptimizeResult Optimize(const Query& query, const OptimizerOptions& options);

/// The adaptive facade: exact enumeration for queries with at most
/// `options.adaptive_exact_relations` relations (using `options.algorithm`;
/// a non-exhaustive value is coerced to kEaPrune); above that both
/// large-query strategies run and the cheaper plan wins (kGoo doubles as
/// the always-terminating fallback when kIdp cannot combine).
/// `result.stats.algorithm` records the strategy that won; its counters
/// and optimize_ms cover both runs.
///
/// \deprecated Thin shim over PlannerSession (plangen/session.h):
/// equivalent to `PlannerSession(options).Optimize(query)`, including the
/// cache probe when options carries cache pointers. Kept so existing
/// call sites and tests stay source-compatible; new code should hold a
/// PlannerSession.
OptimizeResult OptimizeAdaptive(const Query& query,
                                const OptimizerOptions& options);

/// The cache-oblivious core of the adaptive facade: exactly
/// OptimizeAdaptive minus the cache probe — any cache/replan pointers in
/// `options` are ignored, the query is always planned. This is the
/// `plan_fresh` callback PlannerSession::OptimizeImpl hands to
/// OptimizeThroughCache (the one probe/populate path); exposed so other
/// uncached callers (background re-plans, differential references) can
/// name the planning step without shedding the context fields first.
OptimizeResult OptimizeAdaptiveUncached(const Query& query,
                                        const OptimizerOptions& options);

/// Merges the two completed large-query race results into the facade's
/// result: the cheaper plan wins (kIdp on cost ties, matching the
/// sequential facade since PR 3), the loser's counters are folded into the
/// winner's stats, and the loser's arena is dropped wholesale when its
/// OptimizeResult dies. A null plan loses outright (kIdp legitimately
/// returns none on cliques). Shared by the sequential facade and the
/// concurrent race (plangen/parallel.h), so the two are cost-identical by
/// construction rather than by testing alone.
OptimizeResult PickAdaptiveWinner(OptimizeResult idp, OptimizeResult goo);

}  // namespace eadp

#endif  // EADP_PLANGEN_PLANGEN_H_
