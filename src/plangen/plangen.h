// The five plan generators of the paper (Sec. 4).
//
//   kDphyp   — the baseline: reorders all operators with DPhyp + conflict
//              detection but never pushes grouping; a single top grouping
//              finishes the plan (Fig. 5).
//   kEaAll   — complete enumeration with eager aggregation: keeps every
//              join tree per plan class (BuildPlansAll, Fig. 9).
//              Exponential; optimal.
//   kEaPrune — complete enumeration + optimality-preserving dominance
//              pruning (BuildPlansPrune, Fig. 14 / Fig. 13). Optimal.
//   kH1      — heuristic: single cheapest tree per class, groupings
//              assessed locally (BuildPlansH1, Fig. 10).
//   kH2      — heuristic: like H1 but prefers "more eager" plans within a
//              tolerance factor F (BuildPlansH2, Fig. 12).
//
// Complexity (Sec. 4.3): per csg-cmp-pair, kEaAll does work proportional
// to the product of the kept plan lists — O(2^{2n-1}) tree pairs in the
// worst case — while kDphyp/kH1/kH2 keep O(1) plans per class and the
// pruned table of kEaPrune typically stays small (see bench_complexity).
//
// Invariants: all generators share one enumeration (conflict detection →
// hypergraph → DPhyp), so they consider exactly the same plan classes and
// differ only in the DP-table insertion policy and grouping placement.
// On every query, Cost(kEaPrune) == Cost(kEaAll), and no heuristic or the
// baseline beats that optimum, which itself never exceeds the baseline
// (all three relations pinned by plangen_test).

#ifndef EADP_PLANGEN_PLANGEN_H_
#define EADP_PLANGEN_PLANGEN_H_

#include <cstdint>
#include <memory>
#include <string>

#include "algebra/query.h"
#include "plangen/op_trees.h"
#include "plangen/plan.h"

namespace eadp {

enum class Algorithm { kDphyp, kEaAll, kEaPrune, kH1, kH2 };

const char* AlgorithmName(Algorithm a);

struct OptimizerOptions {
  Algorithm algorithm = Algorithm::kEaPrune;
  /// Tolerance factor F of CompareAdjustedCosts (H2 only).
  double h2_tolerance = 1.03;
  /// Builder options (top-grouping elimination etc.).
  BuilderOptions builder;
  /// Ablation: disable the key criterion in the dominance test (EA-Prune).
  bool prune_without_keys = false;
  /// Ablation: disable the cardinality criterion in the dominance test.
  bool prune_without_cardinality = false;
  /// Use the unweakened FD-closure comparison of Def. 4 in the dominance
  /// test instead of (in addition to) the key-based weakening. More exact,
  /// prunes less, costs closure computations per comparison.
  bool full_fd_dominance = false;
};

struct OptimizeStats {
  uint64_t ccp_count = 0;       ///< csg-cmp-pairs enumerated
  uint64_t plans_built = 0;     ///< plan nodes constructed
  size_t table_plans = 0;       ///< plans in the DP table at the end
  size_t table_classes = 0;     ///< plan classes in the DP table
  double optimize_ms = 0;       ///< wall-clock optimization time
};

struct OptimizeResult {
  PlanPtr plan = nullptr;  ///< finalized plan (null if unsatisfiable)
  OptimizeStats stats;
  /// Owns every node `plan` points into (the per-optimization arena);
  /// shared so results stay copyable. Executing or inspecting `plan` is
  /// valid exactly as long as some copy of this handle lives.
  std::shared_ptr<PlanArena> arena;
};

/// Runs the selected plan generator over a (canonicalized) query.
OptimizeResult Optimize(const Query& query, const OptimizerOptions& options);

}  // namespace eadp

#endif  // EADP_PLANGEN_PLANGEN_H_
