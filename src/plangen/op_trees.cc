#include "plangen/op_trees.h"

#include <algorithm>
#include <cassert>

#include "plangen/keys.h"
#include "plangen/plan_fds.h"

namespace eadp {

PlanBuilder::PlanBuilder(const Query* query, const ConflictDetector* conflicts,
                         const BuilderOptions& options,
                         std::shared_ptr<PlanArena> arena)
    : query_(query),
      conflicts_(conflicts),
      options_(options),
      estimator_(&query->catalog()),
      arena_(arena ? std::move(arena) : std::make_shared<PlanArena>()) {
  // Modest pre-sizing keeps the memoization maps from rehashing inside the
  // (timed) enumeration; construction is off the hot path.
  crossing_interner_.reserve(64);
  merge_cache_.reserve(64);
  defaults_cache_.reserve(16);
  final_aggs_cache_.reserve(16);
  final_map_cache_.reserve(16);
}

PlanPtr PlanBuilder::MakeScan(int rel) {
  PlanNode* node = NewNode();
  node->op = PlanOp::kScan;
  node->rels = RelSet::Single(rel);
  node->relation = rel;
  node->cardinality = estimator_.BaseCardinality(rel);
  node->raw_cardinality = node->cardinality;
  node->pregroup_cardinality = node->cardinality;
  node->cost = cost_model_.ScanCost();
  const RelationDef& def = query_->catalog().relation(rel);
  KeySet keys;
  for (AttrSet k : def.keys) keys.Insert(k);
  node->keys_ = arena_->InternKeys(keys);
  node->duplicate_free = def.duplicate_free;
  if (leaf_states_.size() <= static_cast<size_t>(rel)) {
    leaf_states_.resize(static_cast<size_t>(rel) + 1, nullptr);
  }
  const PlanAggState*& leaf = leaf_states_[static_cast<size_t>(rel)];
  if (leaf == nullptr) {
    leaf = arena_->arena().New<PlanAggState>(LeafAggState(*query_, rel));
  }
  node->agg_state_ = leaf;
  if (options_.track_fds) {
    node->fds_ = arena_->arena().New<FdSet>(ScanFds(query_->catalog(), rel));
  }
  return node;
}

const CrossingInfo* PlanBuilder::InternCrossing(Bitset128 mask,
                                                const int* ops,
                                                size_t count) {
  auto [it, inserted] = crossing_interner_.try_emplace(mask, nullptr);
  if (!inserted) return it->second;

  // First time this operator set crosses a cut: build the shared payload.
  const std::vector<QueryOp>& query_ops = query_->ops();
  CrossingInfo* info = arena_->arena().New<CrossingInfo>();
  info->op_indices.assign(ops, ops + count);
  double selectivity = 1;
  for (size_t k = 0; k < count; ++k) {
    const QueryOp& op = query_ops[static_cast<size_t>(ops[k])];
    selectivity *= op.selectivity;
    for (const AttrEquality& eq : op.predicate.equalities()) {
      info->predicate.AddEquality(eq.left_attr, eq.right_attr);
    }
  }
  info->selectivity = selectivity;
  info->groupjoin_aggs =
      query_ops[static_cast<size_t>(ops[0])].groupjoin_aggs;
  it->second = info;
  return info;
}

CrossingOps PlanBuilder::FindCrossingOps(RelSet s1, RelSet s2) {
  CrossingOps out;
  RelSet s = s1.Union(s2);
  const std::vector<QueryOp>& ops = query_->ops();
  assert(ops.size() <= static_cast<size_t>(kBitsetCapacity));
  int primary = -1;
  int crossing[kBitsetCapacity];
  size_t count = 0;
  Bitset128 mask;
  for (size_t i = 0; i < ops.size(); ++i) {
    RelSet ses = conflicts_->conflicts(static_cast<int>(i)).ses;
    if (!ses.Intersects(s1) || !ses.Intersects(s2)) continue;
    // An operator referencing relations outside S stays pending: it is
    // applied at the unique higher cut where its SES is first fully
    // contained (e.g. Q5's cycle-closing c_nationkey = s_nationkey).
    if (!ses.IsSubsetOf(s)) continue;
    if (ops[i].kind != OpKind::kJoin) {
      if (primary >= 0) return out;  // two non-inner operators on one cut
      primary = static_cast<int>(i);
    }
    crossing[count++] = static_cast<int>(i);
    mask.Add(static_cast<int>(i));
  }
  if (count == 0) return out;

  // Primary operator first.
  if (primary >= 0) {
    for (size_t k = 0; k < count; ++k) {
      if (crossing[k] == primary) {
        std::swap(crossing[0], crossing[k]);
        break;
      }
    }
    // Mixed non-inner + extra inner predicates on one cut would need the
    // extra predicates folded into the non-inner operator's semantics;
    // conservatively rejected (cannot occur for tree-shaped queries).
    if (count > 1) return out;
  }
  out.primary_kind = ops[static_cast<size_t>(crossing[0])].kind;

  // Orientation: every crossing operator must be applicable with (a, b) as
  // (left, right) arguments; commutative operators accept either side
  // assignment. A non-commutative primary in the swapped orientation means
  // the plan is built with left = plan(s2) — the swap flag tells the caller.
  auto applicable_all = [&](RelSet a, RelSet b) {
    for (size_t k = 0; k < count; ++k) {
      int i = crossing[k];
      bool ok = conflicts_->Applicable(i, a, b);
      if (!ok && IsCommutative(ops[static_cast<size_t>(i)].kind)) {
        ok = conflicts_->Applicable(i, b, a);
      }
      if (!ok) return false;
    }
    return true;
  };
  if (applicable_all(s1, s2)) {
    out.swap = false;
  } else if (applicable_all(s2, s1)) {
    out.swap = true;
  } else {
    return out;
  }
  out.info = InternCrossing(mask, crossing, count);
  out.valid = true;
  return out;
}

const PlanAggState* PlanBuilder::MergedState(const PlanAggState* left,
                                             const PlanAggState* right) {
  auto [it, inserted] = merge_cache_.try_emplace({left, right}, nullptr);
  if (inserted) {
    it->second =
        arena_->arena().New<PlanAggState>(MergeAggStates(*left, *right));
  }
  return it->second;
}

const std::vector<SymbolicDefault>* PlanBuilder::DefaultsFor(
    const PlanAggState* state) {
  auto [it, inserted] = defaults_cache_.try_emplace(state, nullptr);
  if (inserted) {
    it->second = arena_->arena().New<std::vector<SymbolicDefault>>(
        OuterJoinDefaults(*query_, *state));
  }
  return it->second;
}

PlanPtr PlanBuilder::MakeJoin(PlanPtr left, PlanPtr right,
                              const CrossingOps& crossing) {
  const CrossingInfo& info = *crossing.info;

  PlanNode* node = NewNode();
  node->op = PlanOpFromOpKind(crossing.primary_kind);
  node->rels = left->rels.Union(right->rels);
  node->left = left;
  node->right = right;
  node->crossing = crossing.info;
  double selectivity = info.selectivity;

  // Default vectors for the generalized outer joins: whenever a side that
  // can be null-padded carries generated aggregation columns, pad them with
  // c:1 / F¹({⊥}) instead of NULL (Eqvs. 12/14/15 and DESIGN.md §4).
  if (node->op == PlanOp::kLeftOuter || node->op == PlanOp::kFullOuter) {
    node->right_defaults_ = DefaultsFor(right->agg_state_);
  }
  if (node->op == PlanOp::kFullOuter) {
    node->left_defaults_ = DefaultsFor(left->agg_state_);
  }

  KeyProperties keys = ComputeJoinKeys(node->op, query_->catalog(), *left,
                                       *right, info.predicate);
  node->keys_ = arena_->InternKeys(keys.keys);
  node->duplicate_free = keys.duplicate_free;

  if (node->op == PlanOp::kJoin) {
    // Inner joins chain the uncapped independence product (order
    // invariant) and apply this node's key-implied bound locally.
    node->raw_cardinality = CardinalityEstimator::ClampCard(
        left->raw_cardinality * right->raw_cardinality * selectivity);
    node->cardinality = node->raw_cardinality;
  } else {
    // Semijoin/antijoin match probability is driven by the distinct join
    // values on the right (invariant under grouping of the right side).
    double right_match_distinct = right->cardinality;
    if (node->op == PlanOp::kLeftSemi || node->op == PlanOp::kLeftAnti) {
      // Distinct join values bound by the grouping-invariant product, so
      // grouped and ungrouped right sides estimate the same existence
      // probability.
      AttrSet j2 = info.predicate.ReferencedAttrs().Intersect(
          query_->catalog().AttributesOf(right->rels));
      right_match_distinct =
          estimator_.GroupingCardinality(j2, right->pregroup_cardinality);
    }
    node->cardinality = estimator_.JoinCardinality(
        crossing.primary_kind, left->cardinality, right->cardinality,
        selectivity, right_match_distinct);
  }
  // Keys certify uniqueness: cap the estimate by the key-implied bound so
  // estimates stay consistent with κ (see DESIGN.md §3).
  if (node->duplicate_free) {
    node->cardinality =
        std::min(node->cardinality, estimator_.KeyImpliedBound(node->keys()));
  }
  // Non-inner operators restart the raw chain from their capped estimate.
  if (node->op != PlanOp::kJoin) node->raw_cardinality = node->cardinality;
  // The raw/pregroup chains multiply outside the estimator, so they clamp
  // the same way (factors <= kMaxCardinality keep the product finite).
  node->pregroup_cardinality = CardinalityEstimator::ClampCard(
      left->pregroup_cardinality * right->pregroup_cardinality * selectivity);
  node->cost = cost_model_.BinaryOpCost(node->cardinality, left->cost,
                                        right->cost);

  if (LeftOnlyOutput(crossing.primary_kind)) {
    // Right-side attributes (and any generated columns there) are gone.
    // Queries never aggregate over hidden relations, so the right state
    // must not carry aggregate slots.
    assert(right->agg_state().slots.empty() &&
           "aggregate over a relation hidden by a semi/anti/group join");
    node->agg_state_ = left->agg_state_;
  } else {
    node->agg_state_ = MergedState(left->agg_state_, right->agg_state_);
  }
  if (options_.track_fds) {
    node->fds_ = arena_->arena().New<FdSet>(
        JoinFds(node->op, left->fds(), right->fds(), info.predicate));
  }
  return node;
}

bool PlanBuilder::CanPushGrouping(PlanPtr child, OpKind parent,
                                  bool left_side) const {
  // Fig. 3: semijoin, antijoin and groupjoin admit the push on the left
  // side only; inner/outer joins on both sides (right side of E and both
  // sides of K via the generalized outerjoin with defaults).
  if (!left_side && LeftOnlyOutput(parent)) return false;
  // Grouping a grouping is never useful (its grouping attributes are
  // already a key).
  if (child->op == PlanOp::kGroup) return false;
  // A pending groupjoin must see raw rows on its right side.
  if (query_->PendingGroupJoinRightIntersects(child->rels)) return false;
  AttrSet g_plus = query_->GroupByPlus(child->rels);
  if (!NeedsGrouping(g_plus, *child)) return false;  // waste (Fig. 6)
  return CanGroup(*query_, child->agg_state(), g_plus);
}

PlanPtr PlanBuilder::MakeGrouping(PlanPtr child) {
  PlanNode* node = NewNode();
  node->op = PlanOp::kGroup;
  node->rels = child->rels;
  node->left = child;
  node->group_by = query_->GroupByPlus(child->rels);
  // Grouping specs embed fresh generated column names, so they are unique
  // per grouping node — built directly in the arena, not memoized.
  auto* aggs = arena_->arena().New<std::vector<ExecAggregate>>();
  node->agg_state_ = arena_->arena().New<PlanAggState>(BuildGroupingSpec(
      *query_, child->agg_state(), node->group_by, &names_, aggs));
  node->group_aggs_ = aggs;
  node->cardinality =
      estimator_.GroupingCardinality(node->group_by, child->cardinality);
  KeyProperties keys = ComputeGroupingKeys(*child, node->group_by);
  node->keys_ = arena_->InternKeys(keys.keys);
  node->duplicate_free = true;
  // Inherited child keys contained in G+ may bound the result below the
  // independence estimate.
  node->cardinality =
      std::min(node->cardinality, estimator_.KeyImpliedBound(node->keys()));
  node->raw_cardinality = node->cardinality;  // the chain restarts at a Γ
  node->pregroup_cardinality = child->pregroup_cardinality;
  if (options_.track_fds) {
    node->fds_ = arena_->arena().New<FdSet>(
        GroupingFds(child->fds(), node->group_by));
  }
  node->cost = cost_model_.GroupingCost(node->cardinality, child->cost);
  return node;
}

void PlanBuilder::OpTrees(PlanPtr t1, PlanPtr t2, const CrossingOps& crossing,
                          std::vector<PlanPtr>* out) {
  bool top = t1->rels.Union(t2->rels) == query_->AllRelations();
  auto add = [&](PlanPtr t) { out->push_back(top ? FinalizeTop(t) : t); };

  add(MakeJoin(t1, t2, crossing));

  bool push_left = CanPushGrouping(t1, crossing.primary_kind, true);
  bool push_right = CanPushGrouping(t2, crossing.primary_kind, false);
  PlanPtr g1 = push_left ? MakeGrouping(t1) : nullptr;
  PlanPtr g2 = push_right ? MakeGrouping(t2) : nullptr;

  if (push_left) add(MakeJoin(g1, t2, crossing));
  if (push_right) add(MakeJoin(t1, g2, crossing));
  if (push_left && push_right) add(MakeJoin(g1, g2, crossing));
}

const std::vector<ExecAggregate>* PlanBuilder::FinalAggsFor(
    const PlanAggState* state) {
  auto [it, inserted] = final_aggs_cache_.try_emplace(state, nullptr);
  if (inserted) {
    it->second = arena_->arena().New<std::vector<ExecAggregate>>(
        BuildFinalAggregates(*query_, *state));
  }
  return it->second;
}

const FinalMapInfo* PlanBuilder::FinalMapFor(const PlanAggState* state) {
  auto [it, inserted] = final_map_cache_.try_emplace(state, nullptr);
  if (!inserted) return it->second;

  const Catalog& catalog = query_->catalog();
  FinalMapInfo* fm = arena_->arena().New<FinalMapInfo>();
  // On the Eqv. 42 path (`state` non-null) every aggregate is computed from
  // the single row of its group; after a final grouping (`state` null) the
  // map only reconstitutes avg slots.
  if (state != nullptr) fm->exprs = BuildFinalMap(*query_, *state);
  for (const FinalDivision& div : query_->final_divisions()) {
    MapExpr e;
    e.output = div.output;
    e.kind = MapExpr::Kind::kDiv;
    e.arg = query_->aggregates()[static_cast<size_t>(div.numerator_slot)]
                .output;
    e.arg2 = query_->aggregates()[static_cast<size_t>(div.denominator_slot)]
                 .output;
    fm->exprs.push_back(std::move(e));
  }
  for (int a : BitsOf(query_->group_by())) {
    fm->output_columns.push_back(catalog.attribute(a).name);
  }
  for (const AggregateFunction& f : query_->aggregates()) {
    fm->output_columns.push_back(f.output);
  }
  for (const FinalDivision& div : query_->final_divisions()) {
    fm->output_columns.push_back(div.output);
  }
  it->second = fm;
  return fm;
}

PlanPtr PlanBuilder::FinalizeTop(PlanPtr t) {
  AttrSet g = query_->group_by();

  PlanPtr below = t;
  if (!options_.top_grouping_elimination || NeedsGrouping(g, *t)) {
    PlanNode* group = NewNode();
    group->op = PlanOp::kFinalGroup;
    group->rels = t->rels;
    group->left = t;
    group->group_by = g;
    group->group_aggs_ = FinalAggsFor(t->agg_state_);
    group->cardinality = estimator_.GroupingCardinality(g, t->cardinality);
    group->raw_cardinality = group->cardinality;
    group->pregroup_cardinality = t->pregroup_cardinality;
    group->cost = cost_model_.GroupingCost(group->cardinality, t->cost);
    KeyProperties keys = ComputeGroupingKeys(*t, g);
    group->keys_ = arena_->InternKeys(keys.keys);
    group->duplicate_free = true;
    below = group;
  }

  // Final map: computes aggregates (Eqv. 42 path) or reconstitutes avg
  // slots, then projects to the query's output schema, so all plans (and
  // the canonical evaluation) are comparable.
  PlanNode* map = NewNode();
  map->op = PlanOp::kFinalMap;
  map->rels = below->rels;
  map->left = below;
  map->final_map_ = FinalMapFor(
      below->op == PlanOp::kFinalGroup ? nullptr : below->agg_state_);
  map->cardinality = below->cardinality;
  map->raw_cardinality = below->raw_cardinality;
  map->pregroup_cardinality = below->pregroup_cardinality;
  map->cost = cost_model_.MapCost(below->cost);
  map->keys_ = below->keys_;
  map->duplicate_free = below->duplicate_free;
  return map;
}

}  // namespace eadp
