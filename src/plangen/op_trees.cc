#include "plangen/op_trees.h"

#include <algorithm>
#include <cassert>

#include "plangen/keys.h"
#include "plangen/plan_fds.h"

namespace eadp {

PlanBuilder::PlanBuilder(const Query* query, const ConflictDetector* conflicts,
                         const BuilderOptions& options)
    : query_(query),
      conflicts_(conflicts),
      options_(options),
      estimator_(&query->catalog()) {}

PlanPtr PlanBuilder::MakeScan(int rel) {
  auto node = std::make_shared<PlanNode>();
  node->op = PlanOp::kScan;
  node->rels = RelSet::Single(rel);
  node->relation = rel;
  node->cardinality = estimator_.BaseCardinality(rel);
  node->raw_cardinality = node->cardinality;
  node->pregroup_cardinality = node->cardinality;
  node->cost = cost_model_.ScanCost();
  const RelationDef& def = query_->catalog().relation(rel);
  node->keys = def.keys;
  node->duplicate_free = def.duplicate_free;
  node->agg_state = LeafAggState(*query_, rel);
  if (options_.track_fds) node->fds = ScanFds(query_->catalog(), rel);
  ++plans_built_;
  return node;
}

CrossingOps PlanBuilder::FindCrossingOps(RelSet s1, RelSet s2) const {
  CrossingOps out;
  RelSet s = s1.Union(s2);
  const std::vector<QueryOp>& ops = query_->ops();
  int primary = -1;
  std::vector<int> crossing;
  for (size_t i = 0; i < ops.size(); ++i) {
    RelSet ses = conflicts_->conflicts(static_cast<int>(i)).ses;
    if (!ses.Intersects(s1) || !ses.Intersects(s2)) continue;
    // An operator referencing relations outside S stays pending: it is
    // applied at the unique higher cut where its SES is first fully
    // contained (e.g. Q5's cycle-closing c_nationkey = s_nationkey).
    if (!ses.IsSubsetOf(s)) continue;
    if (ops[i].kind != OpKind::kJoin) {
      if (primary >= 0) return out;  // two non-inner operators on one cut
      primary = static_cast<int>(i);
    }
    crossing.push_back(static_cast<int>(i));
  }
  if (crossing.empty()) return out;

  // Primary operator first.
  if (primary >= 0) {
    for (size_t k = 0; k < crossing.size(); ++k) {
      if (crossing[k] == primary) {
        std::swap(crossing[0], crossing[k]);
        break;
      }
    }
    // Mixed non-inner + extra inner predicates on one cut would need the
    // extra predicates folded into the non-inner operator's semantics;
    // conservatively rejected (cannot occur for tree-shaped queries).
    if (crossing.size() > 1) return out;
  }
  out.primary_kind = ops[static_cast<size_t>(crossing[0])].kind;

  // Orientation: every crossing operator must be applicable with (a, b) as
  // (left, right) arguments; commutative operators accept either side
  // assignment. A non-commutative primary in the swapped orientation means
  // the plan is built with left = plan(s2) — the swap flag tells the caller.
  auto applicable_all = [&](RelSet a, RelSet b) {
    for (int i : crossing) {
      bool ok = conflicts_->Applicable(i, a, b);
      if (!ok && IsCommutative(ops[static_cast<size_t>(i)].kind)) {
        ok = conflicts_->Applicable(i, b, a);
      }
      if (!ok) return false;
    }
    return true;
  };
  if (applicable_all(s1, s2)) {
    out.swap = false;
  } else if (applicable_all(s2, s1)) {
    out.swap = true;
  } else {
    return out;
  }
  out.ops = std::move(crossing);
  out.valid = true;
  return out;
}

PlanPtr PlanBuilder::MakeJoin(const PlanPtr& left, const PlanPtr& right,
                              const CrossingOps& crossing) {
  const std::vector<QueryOp>& ops = query_->ops();
  const QueryOp& primary = ops[static_cast<size_t>(crossing.ops[0])];

  auto node = std::make_shared<PlanNode>();
  node->op = PlanOpFromOpKind(crossing.primary_kind);
  node->rels = left->rels.Union(right->rels);
  node->left = left;
  node->right = right;
  node->op_indices = crossing.ops;
  double selectivity = 1;
  for (int i : crossing.ops) {
    const QueryOp& op = ops[static_cast<size_t>(i)];
    selectivity *= op.selectivity;
    for (const AttrEquality& eq : op.predicate.equalities()) {
      node->predicate.AddEquality(eq.left_attr, eq.right_attr);
    }
  }
  node->selectivity = selectivity;
  node->groupjoin_aggs = primary.groupjoin_aggs;

  // Default vectors for the generalized outer joins: whenever a side that
  // can be null-padded carries generated aggregation columns, pad them with
  // c:1 / F¹({⊥}) instead of NULL (Eqvs. 12/14/15 and DESIGN.md).
  if (node->op == PlanOp::kLeftOuter || node->op == PlanOp::kFullOuter) {
    node->right_defaults = OuterJoinDefaults(*query_, right->agg_state);
  }
  if (node->op == PlanOp::kFullOuter) {
    node->left_defaults = OuterJoinDefaults(*query_, left->agg_state);
  }

  KeyProperties keys = ComputeJoinKeys(node->op, query_->catalog(), *left,
                                       *right, node->predicate);
  node->keys = std::move(keys.keys);
  node->duplicate_free = keys.duplicate_free;

  if (node->op == PlanOp::kJoin) {
    // Inner joins chain the uncapped independence product (order
    // invariant) and apply this node's key-implied bound locally.
    node->raw_cardinality =
        left->raw_cardinality * right->raw_cardinality * selectivity;
    node->cardinality = node->raw_cardinality;
  } else {
    // Semijoin/antijoin match probability is driven by the distinct join
    // values on the right (invariant under grouping of the right side).
    double right_match_distinct = right->cardinality;
    if (node->op == PlanOp::kLeftSemi || node->op == PlanOp::kLeftAnti) {
      // Distinct join values bound by the grouping-invariant product, so
      // grouped and ungrouped right sides estimate the same existence
      // probability.
      AttrSet j2 = node->predicate.ReferencedAttrs().Intersect(
          query_->catalog().AttributesOf(right->rels));
      right_match_distinct =
          estimator_.GroupingCardinality(j2, right->pregroup_cardinality);
    }
    node->cardinality = estimator_.JoinCardinality(
        crossing.primary_kind, left->cardinality, right->cardinality,
        selectivity, right_match_distinct);
  }
  // Keys certify uniqueness: cap the estimate by the key-implied bound so
  // estimates stay consistent with κ (see DESIGN.md).
  if (node->duplicate_free) {
    node->cardinality =
        std::min(node->cardinality, estimator_.KeyImpliedBound(node->keys));
  }
  // Non-inner operators restart the raw chain from their capped estimate.
  if (node->op != PlanOp::kJoin) node->raw_cardinality = node->cardinality;
  node->pregroup_cardinality =
      left->pregroup_cardinality * right->pregroup_cardinality * selectivity;
  node->cost = cost_model_.BinaryOpCost(node->cardinality, left->cost,
                                        right->cost);

  if (LeftOnlyOutput(crossing.primary_kind)) {
    // Right-side attributes (and any generated columns there) are gone.
    // Queries never aggregate over hidden relations, so the right state
    // must not carry aggregate slots.
    assert(right->agg_state.slots.empty() &&
           "aggregate over a relation hidden by a semi/anti/group join");
    node->agg_state = left->agg_state;
  } else {
    node->agg_state = MergeAggStates(left->agg_state, right->agg_state);
  }
  if (options_.track_fds) {
    node->fds = JoinFds(node->op, left->fds, right->fds, node->predicate);
  }
  ++plans_built_;
  return node;
}

bool PlanBuilder::CanPushGrouping(const PlanPtr& child, OpKind parent,
                                  bool left_side) const {
  // Fig. 3: semijoin, antijoin and groupjoin admit the push on the left
  // side only; inner/outer joins on both sides (right side of E and both
  // sides of K via the generalized outerjoin with defaults).
  if (!left_side && LeftOnlyOutput(parent)) return false;
  // Grouping a grouping is never useful (its grouping attributes are
  // already a key).
  if (child->op == PlanOp::kGroup) return false;
  // A pending groupjoin must see raw rows on its right side.
  if (query_->PendingGroupJoinRightIntersects(child->rels)) return false;
  AttrSet g_plus = query_->GroupByPlus(child->rels);
  if (!NeedsGrouping(g_plus, *child)) return false;  // waste (Fig. 6)
  return CanGroup(*query_, child->agg_state, g_plus);
}

PlanPtr PlanBuilder::MakeGrouping(const PlanPtr& child) {
  auto node = std::make_shared<PlanNode>();
  node->op = PlanOp::kGroup;
  node->rels = child->rels;
  node->left = child;
  node->group_by = query_->GroupByPlus(child->rels);
  node->agg_state = BuildGroupingSpec(*query_, child->agg_state,
                                      node->group_by, &names_,
                                      &node->group_aggs);
  node->cardinality =
      estimator_.GroupingCardinality(node->group_by, child->cardinality);
  KeyProperties keys = ComputeGroupingKeys(*child, node->group_by);
  node->keys = std::move(keys.keys);
  node->duplicate_free = true;
  // Inherited child keys contained in G+ may bound the result below the
  // independence estimate.
  node->cardinality =
      std::min(node->cardinality, estimator_.KeyImpliedBound(node->keys));
  node->raw_cardinality = node->cardinality;  // the chain restarts at a Γ
  node->pregroup_cardinality = child->pregroup_cardinality;
  if (options_.track_fds) {
    node->fds = GroupingFds(child->fds, node->group_by);
  }
  node->cost = cost_model_.GroupingCost(node->cardinality, child->cost);
  ++plans_built_;
  return node;
}

void PlanBuilder::OpTrees(const PlanPtr& t1, const PlanPtr& t2,
                          const CrossingOps& crossing,
                          std::vector<PlanPtr>* out) {
  bool top = t1->rels.Union(t2->rels) == query_->AllRelations();
  auto add = [&](PlanPtr t) {
    out->push_back(top ? FinalizeTop(t) : std::move(t));
  };

  add(MakeJoin(t1, t2, crossing));

  bool push_left = CanPushGrouping(t1, crossing.primary_kind, true);
  bool push_right = CanPushGrouping(t2, crossing.primary_kind, false);
  PlanPtr g1 = push_left ? MakeGrouping(t1) : nullptr;
  PlanPtr g2 = push_right ? MakeGrouping(t2) : nullptr;

  if (push_left) add(MakeJoin(g1, t2, crossing));
  if (push_right) add(MakeJoin(t1, g2, crossing));
  if (push_left && push_right) add(MakeJoin(g1, g2, crossing));
}

PlanPtr PlanBuilder::FinalizeTop(const PlanPtr& t) {
  AttrSet g = query_->group_by();
  const Catalog& catalog = query_->catalog();

  PlanPtr below = t;
  if (!options_.top_grouping_elimination || NeedsGrouping(g, *t)) {
    auto group = std::make_shared<PlanNode>();
    group->op = PlanOp::kFinalGroup;
    group->rels = t->rels;
    group->left = t;
    group->group_by = g;
    group->group_aggs = BuildFinalAggregates(*query_, t->agg_state);
    group->cardinality = estimator_.GroupingCardinality(g, t->cardinality);
    group->raw_cardinality = group->cardinality;
    group->pregroup_cardinality = t->pregroup_cardinality;
    group->cost = cost_model_.GroupingCost(group->cardinality, t->cost);
    KeyProperties keys = ComputeGroupingKeys(*t, g);
    group->keys = std::move(keys.keys);
    group->duplicate_free = true;
    ++plans_built_;
    below = group;
  }

  // Final map: on the Eqv. 42 path it computes every aggregate from the
  // single row of its group; after a final grouping it only reconstitutes
  // avg slots. Both paths end with a projection to the query's output
  // schema, so all plans (and the canonical evaluation) are comparable.
  auto map = std::make_shared<PlanNode>();
  map->op = PlanOp::kFinalMap;
  map->rels = below->rels;
  map->left = below;
  if (below->op != PlanOp::kFinalGroup) {
    map->final_map = BuildFinalMap(*query_, below->agg_state);
  }
  for (const FinalDivision& div : query_->final_divisions()) {
    MapExpr e;
    e.output = div.output;
    e.kind = MapExpr::Kind::kDiv;
    e.arg = query_->aggregates()[static_cast<size_t>(div.numerator_slot)]
                .output;
    e.arg2 = query_->aggregates()[static_cast<size_t>(div.denominator_slot)]
                 .output;
    map->final_map.push_back(std::move(e));
  }
  for (int a : BitsOf(g)) map->output_columns.push_back(catalog.attribute(a).name);
  for (const AggregateFunction& f : query_->aggregates()) {
    map->output_columns.push_back(f.output);
  }
  for (const FinalDivision& div : query_->final_divisions()) {
    map->output_columns.push_back(div.output);
  }
  map->cardinality = below->cardinality;
  map->raw_cardinality = below->raw_cardinality;
  map->pregroup_cardinality = below->pregroup_cardinality;
  map->cost = cost_model_.MapCost(below->cost);
  map->keys = below->keys;
  map->duplicate_free = below->duplicate_free;
  ++plans_built_;
  return map;
}

}  // namespace eadp
