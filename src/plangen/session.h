// PlannerSession: the one public entry object of the optimizer facade.
//
// Before the session API the facade was four free functions
// (OptimizeAdaptive, OptimizeAdaptiveConcurrent, OptimizeBatch,
// OptimizeThroughCache), each re-plumbing the same cache/pool/options
// context and each wrapping its planning core in its own copy of the
// cache-probe dance. A PlannerSession binds that context once:
//
//   PlannerSession session(knobs, context);   // or (OptimizerOptions)
//   OptimizeResult r = session.Optimize(query);
//   BatchResult b = session.OptimizeBatch(queries, pool);
//
// Every entry point funnels through one private OptimizeImpl — probe the
// configured cache tiers (plangen/plan_cache.h) when any are attached,
// plan fresh otherwise — so the probe/populate logic exists exactly once.
// The old free functions survive as thin documented shims constructing a
// transient session, which is what keeps every pre-session call site and
// test source-compatible.
//
// The split the session API rests on (plangen/plangen.h): PlannerKnobs is
// plan identity (folded into the cache key wholesale), PlannerContext is
// execution context (caches, pools, serving policy — never folded). A
// session owns one composed OptimizerOptions; knobs() and context() expose
// the halves. Sessions are cheap value objects: copying one copies the
// configuration, not the caches (context pointers are borrowed, exactly as
// in OptimizerOptions — the caches/pools must outlive every session using
// them, and pools must be destroyed before the caches they refresh).
//
// Thread safety: all methods are const and the session holds no mutable
// state, so one session may serve concurrent calls — the underlying
// caches are thread-safe and every optimization run owns a private arena
// (DESIGN.md §9). The serving layer on top (server/optimizer_service.h)
// adds per-session catalogs and admission control; this class is purely
// the planning facade.

#ifndef EADP_PLANGEN_SESSION_H_
#define EADP_PLANGEN_SESSION_H_

#include <functional>
#include <span>

#include "algebra/query.h"
#include "plangen/parallel.h"
#include "plangen/plangen.h"

namespace eadp {

class PlannerSession {
 public:
  /// Default session: default knobs, no caches, no pools — equivalent to
  /// the bare OptimizeAdaptive of PR 3.
  PlannerSession() = default;

  /// Binds knob and context halves explicitly (the server's constructor
  /// path: per-session knobs over process-wide shared context).
  PlannerSession(const PlannerKnobs& knobs, const PlannerContext& context) {
    static_cast<PlannerKnobs&>(options_) = knobs;
    static_cast<PlannerContext&>(options_) = context;
  }

  /// Adopts a flat options bag (the shim path: every pre-session call
  /// site built one of these).
  explicit PlannerSession(const OptimizerOptions& options)
      : options_(options) {}

  const PlannerKnobs& knobs() const { return options_; }
  const PlannerContext& context() const { return options_; }
  /// The composed view (knobs + context), e.g. for forwarding to the
  /// free-function layer.
  const OptimizerOptions& options() const { return options_; }
  PlannerKnobs& mutable_knobs() { return options_; }
  PlannerContext& mutable_context() { return options_; }

  /// Plans one query through the adaptive facade: cache tiers first when
  /// any are attached (exact hits, drift-band serving, background
  /// re-plans — see OptimizeThroughCache), fresh adaptive planning on a
  /// miss. Identical behavior to the OptimizeAdaptive free function.
  OptimizeResult Optimize(const Query& query) const;

  /// As Optimize, but a cache miss runs the large-query kGoo/kIdp race as
  /// two concurrent tasks on `race_pool` (one slot; kGoo runs on the
  /// calling thread). Falls back to the sequential path when the pool is
  /// null/too small or the query routes to exact DP. Cost-identical to
  /// Optimize by construction (PickAdaptiveWinner compares completed
  /// plans, never completion order).
  OptimizeResult OptimizeConcurrent(const Query& query,
                                    ThreadPool* race_pool) const;

  /// Plans every query of `queries`, one pool task (and one private
  /// arena) per query, each through this->Optimize. Returns per-query
  /// results in input order plus throughput/latency aggregates. A null
  /// pool (or one with <= 1 thread) runs the sequential reference loop on
  /// the calling thread; per-query plan costs are identical across thread
  /// counts (parallel_test).
  BatchResult OptimizeBatch(std::span<const Query> queries,
                            ThreadPool* pool) const;

  /// As above on a transient pool of `num_threads` (<= 1 is sequential).
  BatchResult OptimizeBatch(std::span<const Query> queries,
                            int num_threads) const;

 private:
  using PlanFreshFn =
      std::function<OptimizeResult(const Query&, const OptimizerOptions&)>;

  /// THE probe path: every session entry point (and through the shims,
  /// every facade call in the codebase) goes through here. With any cache
  /// tier attached, delegates to OptimizeThroughCache (which calls
  /// `plan_fresh` with the context's cache pointers cleared on a miss);
  /// without one, plans fresh directly.
  OptimizeResult OptimizeImpl(const Query& query,
                              const PlanFreshFn& plan_fresh) const;

  OptimizerOptions options_;
};

}  // namespace eadp

#endif  // EADP_PLANGEN_SESSION_H_
