// Cross-query plan cache: fingerprint -> OptimizeResult memoization
// *across* optimization runs.
//
// The per-run DP tables of the paper memoize subplans within one query;
// under production traffic the same query shapes arrive over and over
// (parameterized application queries, dashboard refreshes), and every
// arrival re-pays the full DP/GOO/IDP cost. This cache closes that gap:
// OptimizeAdaptive probes it with the canonical query fingerprint
// (queries/fingerprint.h) and serves the memoized plan on a hit — turning
// a multi-millisecond optimization into a microsecond-scale probe.
//
// Structure: N independent shards (striped locking), selected by the high
// bits of the fingerprint hash. Each shard is an LRU list + a hash index
// under one mutex, so concurrent probes from the batch planner's thread
// pool contend only when they land on the same shard. Correctness on hit
// never rests on the hash: the shard chain is scanned with the full
// canonical-byte comparison (QueryFingerprint::Matches), so colliding
// fingerprints coexist as separate entries and a collision can never
// serve the wrong plan.
//
// Lifetime (extends the arena ownership rules of DESIGN.md §6): a cached
// plan's nodes live in the PlanArena of the optimization run that built
// it, and the cached OptimizeResult keeps the owning shared_ptr alive.
// Lookups hand out refcounted handles (copies of that OptimizeResult), so
// an entry evicted or invalidated *while a served plan is still in use* —
// the eviction race — only drops the cache's reference; the plan and its
// arena stay valid until the last handle dies. Entries are immutable
// after insertion; first-writer-wins on duplicate inserts (any two
// results for one fingerprint are cost-identical by determinism, so which
// one wins is unobservable through costs).
//
// Statistics drift (DESIGN.md §14): since PR 9 the facade keys entries on
// the STRUCTURAL fingerprint (stats-insensitive) and stores each entry's
// statistics overlay alongside it. A probe whose overlay matches the
// entry's is the classic exact hit. A probe with drifted statistics
// re-costs the cached plan under the current catalog (cost/recost.h) and
// serves it when it stays within OptimizerOptions::drift_tolerance of the
// sensitivity lower bound; out-of-band hits re-plan — inline, or in the
// background on OptimizerOptions::replan_pool with the entry swapped in
// place via Refresh() while the stale plan keeps serving. Invalidate()
// remains the DDL hammer: schema changes (not mere statistics drift) still
// drop everything at once.

#ifndef EADP_PLANGEN_PLAN_CACHE_H_
#define EADP_PLANGEN_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "plangen/plangen.h"
#include "queries/fingerprint.h"

namespace eadp {

struct PlanCacheOptions {
  /// Maximum resident entries across all shards. Distributed evenly;
  /// each shard holds at least one entry, so the effective total is
  /// max(capacity, num_shards) rounded up to a multiple of the shard
  /// count.
  size_t capacity = 1024;
  /// Lock stripes. Rounded up to a power of two; more shards mean less
  /// contention under concurrent batch planning. 8 keeps two concurrent
  /// probes on distinct mutexes 7 times out of 8, and a shard's critical
  /// section is tiny (chain scan + list splice), so queueing behind the
  /// eighth case costs less than the cache lines more stripes would touch.
  int num_shards = 8;
};

/// Aggregate counters, readable at any time (Snapshot). hits/misses count
/// Lookup outcomes; duplicate_inserts are Insert calls that lost the
/// first-writer-wins race; evictions are capacity-driven drops;
/// invalidations are entries dropped by Invalidate(). resident_bytes sums
/// the arena payloads of resident entries — the memory the cache itself
/// keeps alive (handles may keep evicted arenas alive beyond this).
struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t duplicate_inserts = 0;
  uint64_t evictions = 0;
  uint64_t invalidations = 0;
  size_t entries = 0;
  size_t resident_bytes = 0;
  // Drift accounting (facade-reported via RecordDriftOutcome / Refresh).
  /// Structural hits whose statistics overlay no longer matched the probe.
  uint64_t drift_hits = 0;
  /// Drifted hits served after re-costing inside the tolerance band — full
  /// re-plans that never happened.
  uint64_t replans_avoided = 0;
  /// Drifted hits served stale while a background re-plan refreshes the
  /// entry.
  uint64_t replans_background = 0;
  /// Entries swapped in place by Refresh() (background or inline re-plan
  /// completions).
  uint64_t refreshes = 0;

  double HitRate() const {
    uint64_t probes = hits + misses;
    return probes == 0 ? 0.0 : static_cast<double>(hits) / probes;
  }
};

class PlanCache {
 public:
  /// One immutable cached optimization. `result.arena` owns every node
  /// `result.plan` points into; the entry's fingerprint is kept so chain
  /// scans can compare canonical bytes without re-fingerprinting. Under
  /// structural keying `fingerprint` is the structural key and `overlay`
  /// records the statistics the plan was built under — the facade compares
  /// it against the probe's overlay to detect drift. `replan_pending` is
  /// the background-replan dedup flag: the facade CASes it before
  /// enqueuing so one drifted entry triggers at most one in-flight
  /// re-plan. It is the only mutable field; the plan itself never changes
  /// (Refresh swaps in a whole new entry instead).
  struct Entry {
    Entry(QueryFingerprint fp, StatsOverlay ov, OptimizeResult r)
        : fingerprint(std::move(fp)),
          overlay(std::move(ov)),
          result(std::move(r)) {}

    QueryFingerprint fingerprint;
    StatsOverlay overlay;
    OptimizeResult result;
    mutable std::atomic<bool> replan_pending{false};
  };
  /// Refcounted view of an entry: valid (plan, arena and all) for as long
  /// as the handle lives, regardless of eviction or invalidation.
  using Handle = std::shared_ptr<const Entry>;

  explicit PlanCache(const PlanCacheOptions& options = {});

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Probes for `fp`. On a hit the entry moves to the front of its
  /// shard's LRU list and a handle is returned; null on miss. Hit
  /// requires QueryFingerprint::Matches — full canonical equality.
  Handle Lookup(const QueryFingerprint& fp);

  /// Inserts `result` (which must carry the arena owning its plan) under
  /// `fp`, evicting least-recently-used entries of the shard past its
  /// capacity. If an entry with an equal fingerprint already exists the
  /// existing entry is returned unchanged (first-writer-wins) — callers
  /// racing to plan the same shape all end up sharing one entry.
  /// `overlay` records the statistics the plan was built under (empty for
  /// byte-keyed callers, where the fingerprint itself pins the stats).
  Handle Insert(QueryFingerprint fp, OptimizeResult result,
                StatsOverlay overlay = {});

  /// Replaces the entry matching `fp` with a fresh (overlay, result) —
  /// last-writer-wins, the inverse of Insert's first-writer-wins. This is
  /// how completed re-plans land: the stale entry (possibly still serving
  /// through outstanding handles) is unlinked and the new one takes its
  /// LRU slot. Inserts normally when no entry matches (it may have been
  /// evicted or invalidated while the re-plan ran). Counts a refresh
  /// either way.
  Handle Refresh(const QueryFingerprint& fp, StatsOverlay overlay,
                 OptimizeResult result);

  /// Facade-side drift accounting: a structural hit whose overlay
  /// mismatched the probe. `avoided` — served within tolerance without
  /// re-planning; `background` — served stale with a re-plan enqueued.
  /// Both false — the drifted hit fell through to an inline re-plan.
  void RecordDriftOutcome(bool avoided, bool background);

  /// Drops every entry (counted as invalidations). The serving layer's
  /// hook for catalog changes: statistics updates already unreach stale
  /// entries via the fingerprint, but only invalidation frees their
  /// arenas. Outstanding handles remain valid.
  void Invalidate();

  /// Point-in-time aggregate over all shards.
  PlanCacheStats Snapshot() const;

  size_t size() const;
  size_t capacity() const { return shard_capacity_ * shards_.size(); }
  int num_shards() const { return static_cast<int>(shards_.size()); }

 private:
  struct Shard {
    mutable std::mutex mu;
    /// Front = most recently used. Owns the entries (jointly with any
    /// outstanding handles).
    std::list<Handle> lru;
    /// fingerprint.hash -> positions in `lru` with that hash. A vector
    /// chain, because structurally different queries may share a hash
    /// (that is the collision the canonical comparison exists for).
    std::unordered_map<uint64_t, std::vector<std::list<Handle>::iterator>>
        index;
    // Counters, all guarded by mu.
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t inserts = 0;
    uint64_t duplicate_inserts = 0;
    uint64_t evictions = 0;
    uint64_t invalidations = 0;
    size_t resident_bytes = 0;
  };

  Shard& ShardFor(const QueryFingerprint& fp) {
    // The hash's high half picks the shard (supporting up to 2^32
    // stripes), low bits dominate the bucket placement within the
    // shard's index: distinct bit ranges, so shard load stays
    // independent of bucket placement.
    return shards_[(fp.hash >> 32) & (shards_.size() - 1)];
  }

  /// Unlinks the entry at `pos` from `shard` (lru + index + byte
  /// accounting). Caller holds shard.mu and accounts the drop reason.
  static void Unlink(Shard& shard, std::list<Handle>::iterator pos);

  static size_t EntryBytes(const Entry& e);

  std::vector<Shard> shards_;
  size_t shard_capacity_ = 0;

  // Drift counters live cache-wide (not per shard): they are facade
  // outcomes, bumped outside any shard lock.
  std::atomic<uint64_t> drift_hits_{0};
  std::atomic<uint64_t> replans_avoided_{0};
  std::atomic<uint64_t> replans_background_{0};
  std::atomic<uint64_t> refreshes_{0};
};

/// The exact fingerprint OptimizeThroughCache keys its probes with: the
/// canonical query serialization plus the complete PlannerKnobs (the
/// plan-identity half of the configuration; an OptimizerOptions binds
/// directly via its base). Execution context (PlannerContext) is not a
/// parameter — by construction the key cannot depend on cache pointers,
/// pools, or serving policy. Exposed so test drivers (the mutation
/// fuzzer's cache-cross-serving oracle) can probe and reason about the
/// cache with the production key rather than re-deriving it.
QueryFingerprint PlanCacheKey(const Query& query, const PlannerKnobs& knobs);

/// The two-layer cache key: `structural` is the stats-insensitive
/// fingerprint with the complete PlannerKnobs folded in (what the
/// drift-aware facade keys entries on), `overlay` carries the current
/// statistics separately. ComposeFingerprint(key) reproduces the byte
/// content of PlanCacheKey up to layer ordering — the two are distinct
/// key spaces and must not be mixed within one cache.
struct PlanCacheSplitKey {
  QueryFingerprint structural;
  StatsOverlay overlay;
};
PlanCacheSplitKey PlanCacheKeySplit(const Query& query,
                                    const PlannerKnobs& knobs);

/// The probe/populate wrapper behind every cache-aware facade entry point.
/// Since the session redesign the sole caller is
/// PlannerSession::OptimizeImpl (plangen/session.h) — the free functions
/// OptimizeAdaptive / OptimizeAdaptiveConcurrent / OptimizeBatch reach it
/// through their session shims. Fingerprints the
/// query *and the planning-relevant OptimizerOptions knobs* (one cache
/// can serve mixed configurations — the same query under different
/// algorithms/ablations/knobs occupies distinct entries and is never
/// cross-served), then probes tier by tier: the memory cache first
/// (stats.cache_tier = 1 on a hit), then the persistent disk tier
/// (plangen/persistent_cache.h; a hit decodes the stored blob, is
/// promoted into the memory tier, and reports cache_tier = 2). On a full
/// miss it plans fresh via `plan_fresh` — called with both cache
/// pointers cleared so inner facade calls don't re-probe — writes any
/// satisfiable result behind to the disk tier and inserts it into the
/// memory tier. Hits of either tier set stats.cache_hit with optimize_ms
/// = probe (+decode) time. Precondition: at least one of
/// options.plan_cache / options.persistent_cache is non-null.
///
/// Drift handling (DESIGN.md §14): entries are keyed on the structural
/// fingerprint with the statistics overlay stored per entry. A hit whose
/// overlay matches the probe bit-for-bit behaves exactly as above. A
/// drifted hit re-costs the cached plan under the current catalog
/// (RecostPlan) and serves it when recost <= (1 + drift_tolerance) *
/// DriftCostScale * cached cost (stats.replan_avoided, recosted_cost).
/// Out-of-band hits re-plan: on options.replan_pool (requires plan_cache)
/// the stale plan is served immediately (stats.replan_background) and the
/// fresh result later swaps in via PlanCache::Refresh; without a pool the
/// re-plan runs inline and the fresh plan is served (cache_tier = 0).
/// With drift_tolerance = 0 (default) every drifted hit re-plans, which
/// reproduces the PR 8 stats-keyed behavior observationally.
OptimizeResult OptimizeThroughCache(
    const Query& query, const OptimizerOptions& options,
    const std::function<OptimizeResult(const Query&, const OptimizerOptions&)>&
        plan_fresh);

}  // namespace eadp

#endif  // EADP_PLANGEN_PLAN_CACHE_H_
