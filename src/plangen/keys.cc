#include "plangen/keys.h"

#include "catalog/functional_dependency.h"

namespace eadp {

bool HasKeySubset(const std::vector<AttrSet>& keys, AttrSet attrs) {
  for (AttrSet k : keys) {
    if (k.IsSubsetOf(attrs)) return true;
  }
  return false;
}

namespace {

/// Every pair of keys from the two sides forms a key (Sec. 2.3, general
/// case). Truncated at kMaxKeysPerPlan.
std::vector<AttrSet> PairwiseKeyUnions(const std::vector<AttrSet>& a,
                                       const std::vector<AttrSet>& b) {
  std::vector<AttrSet> out;
  for (AttrSet ka : a) {
    for (AttrSet kb : b) {
      InsertMinimalKey(out, ka.Union(kb));
      if (out.size() >= kMaxKeysPerPlan) return out;
    }
  }
  return out;
}

std::vector<AttrSet> MergedKeys(const std::vector<AttrSet>& a,
                                const std::vector<AttrSet>& b) {
  std::vector<AttrSet> out = a;
  for (AttrSet kb : b) {
    InsertMinimalKey(out, kb);
    if (out.size() >= kMaxKeysPerPlan) break;
  }
  return out;
}

}  // namespace

KeyProperties ComputeJoinKeys(PlanOp plan_op, const Catalog& catalog,
                              const PlanNode& left, const PlanNode& right,
                              const JoinPredicate& pred) {
  KeyProperties out;

  // Semijoin, antijoin and groupjoin: κ(e1 ◦ e2) = κ(e1) (Sec. 2.3.4).
  if (plan_op == PlanOp::kLeftSemi || plan_op == PlanOp::kLeftAnti ||
      plan_op == PlanOp::kGroupJoin) {
    out.keys = left.keys;
    out.duplicate_free = left.duplicate_free;
    return out;
  }

  AttrSet refs = pred.ReferencedAttrs();
  AttrSet left_attrs = catalog.AttributesOf(left.rels);
  AttrSet right_attrs = catalog.AttributesOf(right.rels);
  AttrSet j1 = refs.Intersect(left_attrs);
  AttrSet j2 = refs.Intersect(right_attrs);
  bool j1_is_key = left.duplicate_free && HasKeySubset(left.keys, j1);
  bool j2_is_key = right.duplicate_free && HasKeySubset(right.keys, j2);

  out.duplicate_free = left.duplicate_free && right.duplicate_free;

  switch (plan_op) {
    case PlanOp::kJoin:
      // A1 key of e1 -> every e2 row joins at most one e1 row, so e2's keys
      // stay unique in the result, and vice versa (Sec. 2.3.1).
      if (j1_is_key && j2_is_key) {
        out.keys = MergedKeys(left.keys, right.keys);
      } else if (j1_is_key) {
        out.keys = right.keys;
      } else if (j2_is_key) {
        out.keys = left.keys;
      } else {
        out.keys = PairwiseKeyUnions(left.keys, right.keys);
      }
      break;
    case PlanOp::kLeftOuter:
      // A2 key of e2 -> κ(e1) (Sec. 2.3.2); else pairwise unions.
      if (j2_is_key) {
        out.keys = left.keys;
      } else {
        out.keys = PairwiseKeyUnions(left.keys, right.keys);
      }
      break;
    case PlanOp::kFullOuter:
      out.keys = PairwiseKeyUnions(left.keys, right.keys);
      break;
    default:
      break;
  }
  return out;
}

KeyProperties ComputeGroupingKeys(const PlanNode& child, AttrSet group_by) {
  KeyProperties out;
  out.duplicate_free = true;
  for (AttrSet k : child.keys) {
    // Keys fully contained in the grouping attributes remain keys: a key
    // value identifies its input row and therefore its group.
    if (k.IsSubsetOf(group_by)) InsertMinimalKey(out.keys, k);
  }
  InsertMinimalKey(out.keys, group_by);
  return out;
}

bool NeedsGrouping(AttrSet g, const PlanNode& t) {
  return !(t.duplicate_free && HasKeySubset(t.keys, g));
}

}  // namespace eadp
