#include "plangen/keys.h"

#include "common/rng.h"
#include "plangen/plan.h"

namespace eadp {

void KeySet::Insert(AttrSet key) {
  // Minimal-key invariant: drop the insert if a subset is present, remove
  // supersets of the newcomer.
  for (size_t i = 0; i < size_; ++i) {
    if (keys_[i].IsSubsetOf(key)) return;
  }
  size_t w = 0;
  for (size_t i = 0; i < size_; ++i) {
    if (!key.IsSubsetOf(keys_[i])) keys_[w++] = keys_[i];
  }
  size_ = static_cast<uint8_t>(w);
  if (size_ == kMaxKeysPerPlan) return;
  // Keep the storage sorted by word value: equal key *sets* then have
  // equal representations regardless of insertion order, so the arena
  // interner dedups them and the dominance pointer fast path fires.
  size_t pos = size_;
  while (pos > 0 && key < keys_[pos - 1]) {
    keys_[pos] = keys_[pos - 1];
    --pos;
  }
  keys_[pos] = key;
  ++size_;
}

uint64_t KeySet::Hash() const {
  // Mixed fold over the (canonically ordered) key words; collisions are
  // resolved by content comparison in the interner.
  uint64_t h = size_;
  for (size_t i = 0; i < size_; ++i) {
    h = Mix64(keys_[i].Hash() + h);
  }
  return h;
}

bool HasKeySubset(std::span<const AttrSet> keys, AttrSet attrs) {
  for (AttrSet k : keys) {
    if (k.IsSubsetOf(attrs)) return true;
  }
  return false;
}

namespace {

/// Every pair of keys from the two sides forms a key (Sec. 2.3, general
/// case). Truncated at kMaxKeysPerPlan.
KeySet PairwiseKeyUnions(const KeySet& a, const KeySet& b) {
  KeySet out;
  for (AttrSet ka : a) {
    for (AttrSet kb : b) {
      out.Insert(ka.Union(kb));
      if (out.full()) return out;
    }
  }
  return out;
}

KeySet MergedKeys(const KeySet& a, const KeySet& b) {
  KeySet out = a;
  for (AttrSet kb : b) {
    out.Insert(kb);
    if (out.full()) break;
  }
  return out;
}

}  // namespace

KeyProperties ComputeJoinKeys(PlanOp plan_op, const Catalog& catalog,
                              const PlanNode& left, const PlanNode& right,
                              const JoinPredicate& pred) {
  KeyProperties out;

  // Semijoin, antijoin and groupjoin: κ(e1 ◦ e2) = κ(e1) (Sec. 2.3.4).
  if (plan_op == PlanOp::kLeftSemi || plan_op == PlanOp::kLeftAnti ||
      plan_op == PlanOp::kGroupJoin) {
    out.keys = left.keys();
    out.duplicate_free = left.duplicate_free;
    return out;
  }

  AttrSet refs = pred.ReferencedAttrs();
  AttrSet left_attrs = catalog.AttributesOf(left.rels);
  AttrSet right_attrs = catalog.AttributesOf(right.rels);
  AttrSet j1 = refs.Intersect(left_attrs);
  AttrSet j2 = refs.Intersect(right_attrs);
  bool j1_is_key = left.duplicate_free && HasKeySubset(left.keys(), j1);
  bool j2_is_key = right.duplicate_free && HasKeySubset(right.keys(), j2);

  out.duplicate_free = left.duplicate_free && right.duplicate_free;

  switch (plan_op) {
    case PlanOp::kJoin:
      // A1 key of e1 -> every e2 row joins at most one e1 row, so e2's keys
      // stay unique in the result, and vice versa (Sec. 2.3.1).
      if (j1_is_key && j2_is_key) {
        out.keys = MergedKeys(left.keys(), right.keys());
      } else if (j1_is_key) {
        out.keys = right.keys();
      } else if (j2_is_key) {
        out.keys = left.keys();
      } else {
        out.keys = PairwiseKeyUnions(left.keys(), right.keys());
      }
      break;
    case PlanOp::kLeftOuter:
      // A2 key of e2 -> κ(e1) (Sec. 2.3.2); else pairwise unions.
      if (j2_is_key) {
        out.keys = left.keys();
      } else {
        out.keys = PairwiseKeyUnions(left.keys(), right.keys());
      }
      break;
    case PlanOp::kFullOuter:
      out.keys = PairwiseKeyUnions(left.keys(), right.keys());
      break;
    default:
      break;
  }
  return out;
}

KeyProperties ComputeGroupingKeys(const PlanNode& child, AttrSet group_by) {
  KeyProperties out;
  out.duplicate_free = true;
  for (AttrSet k : child.keys()) {
    // Keys fully contained in the grouping attributes remain keys: a key
    // value identifies its input row and therefore its group.
    if (k.IsSubsetOf(group_by)) out.keys.Insert(k);
  }
  out.keys.Insert(group_by);
  return out;
}

bool NeedsGrouping(AttrSet g, const PlanNode& t) {
  return !(t.duplicate_free && HasKeySubset(t.keys(), g));
}

}  // namespace eadp
