#include "plangen/plan_cache.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <optional>
#include <utility>

#include "common/thread_pool.h"
#include "cost/recost.h"
#include "plangen/persistent_cache.h"
#include "queries/mutation.h"

namespace eadp {

namespace {

/// Extends a query fingerprint with the complete PlannerKnobs — every
/// field, no exclusion list — so one cache can serve mixed configurations
/// without ever crossing them: the same query planned under kEaPrune and
/// under a pruning ablation (or another idp_block_size, tolerance, ...)
/// gets two distinct entries. Execution context (cache pointers, pools,
/// drift_tolerance) never reaches this function at all: the knobs/context
/// split in plangen.h puts it in PlannerContext, which the key does not
/// consume — the per-knob "excluded from the key" special-casing this
/// function used to carry is now a type-level property. Appends bytes
/// only, through the same CanonicalWriter the query half uses (the two
/// halves of a cache key must never desynchronize their encodings); the
/// caller hashes the finished canonical form once.
void FoldOptionsIntoFingerprint(const PlannerKnobs& knobs,
                                QueryFingerprint* fp) {
  // Tripwire: adding a field to PlannerKnobs changes its size and fails
  // this assert. Every knob is plan identity by definition of the struct
  // (execution context belongs in PlannerContext instead), so the fix is
  // always: fold the new field below, then update the expected size.
  static_assert(sizeof(PlannerKnobs) == 48,
                "PlannerKnobs changed: fold the new knob into the cache "
                "key below, then update this size");
  CanonicalWriter w(&fp->canonical);
  w.U8(0xfe);  // options-block marker (query serializations start fields
               // right after the version byte; this delimits the suffix)
  w.U8(static_cast<uint8_t>(knobs.algorithm));
  w.F64(knobs.h2_tolerance);
  w.U8(knobs.builder.top_grouping_elimination ? 1 : 0);
  w.U8(knobs.builder.track_fds ? 1 : 0);
  w.U8(knobs.prune_without_keys ? 1 : 0);
  w.U8(knobs.prune_without_cardinality ? 1 : 0);
  w.U8(knobs.full_fd_dominance ? 1 : 0);
  w.I32(knobs.adaptive_exact_relations);
  w.I32(knobs.idp_block_size);
  w.U8(static_cast<uint8_t>(knobs.idp_inner));
  w.I32(knobs.goo_merge_budget);
  // dp_threads is folded even though parallel plans are cost-identical to
  // sequential ones: generated-column names differ per worker count, so
  // cross-serving would surprise anything reading plan internals.
  w.I32(knobs.dp_threads);
}

}  // namespace

PlanCache::PlanCache(const PlanCacheOptions& options) {
  size_t shards = std::bit_ceil(static_cast<size_t>(
      std::max(options.num_shards, 1)));
  shards_ = std::vector<Shard>(shards);
  // Ceil-divide so the shard total never undercuts the requested capacity;
  // at least one entry per shard so tiny capacities still cache.
  shard_capacity_ = std::max<size_t>(
      1, (std::max<size_t>(options.capacity, 1) + shards - 1) / shards);
}

size_t PlanCache::EntryBytes(const Entry& e) {
  size_t n = sizeof(Entry) + e.fingerprint.canonical.size();
  if (e.result.arena != nullptr) n += e.result.arena->bytes_used();
  return n;
}

void PlanCache::Unlink(Shard& shard, std::list<Handle>::iterator pos) {
  const Entry& entry = **pos;
  shard.resident_bytes -= EntryBytes(entry);
  auto chain_it = shard.index.find(entry.fingerprint.hash);
  auto& chain = chain_it->second;
  chain.erase(std::find(chain.begin(), chain.end(), pos));
  if (chain.empty()) shard.index.erase(chain_it);
  shard.lru.erase(pos);
}

PlanCache::Handle PlanCache::Lookup(const QueryFingerprint& fp) {
  Shard& shard = ShardFor(fp);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto chain_it = shard.index.find(fp.hash);
  if (chain_it != shard.index.end()) {
    for (auto pos : chain_it->second) {
      const Entry& entry = **pos;
      // The load-bearing comparison: hash equality got us here, but only
      // canonical-byte equality may serve the plan.
      if (entry.fingerprint.hash2 == fp.hash2 &&
          entry.fingerprint.Matches(fp)) {
        shard.lru.splice(shard.lru.begin(), shard.lru, pos);
        ++shard.hits;
        return *pos;
      }
    }
  }
  ++shard.misses;
  return nullptr;
}

PlanCache::Handle PlanCache::Insert(QueryFingerprint fp,
                                    OptimizeResult result,
                                    StatsOverlay overlay) {
  Shard& shard = ShardFor(fp);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto chain_it = shard.index.find(fp.hash);
  if (chain_it != shard.index.end()) {
    for (auto pos : chain_it->second) {
      if ((*pos)->fingerprint.hash2 == fp.hash2 &&
          (*pos)->fingerprint.Matches(fp)) {
        // First writer wins; concurrent planners of one shape share its
        // entry. Freshen recency — a duplicate insert is evidence of use.
        shard.lru.splice(shard.lru.begin(), shard.lru, pos);
        ++shard.duplicate_inserts;
        return *pos;
      }
    }
  }
  Handle handle = std::make_shared<Entry>(std::move(fp), std::move(overlay),
                                          std::move(result));
  shard.lru.push_front(handle);
  shard.index[handle->fingerprint.hash].push_back(shard.lru.begin());
  shard.resident_bytes += EntryBytes(*handle);
  ++shard.inserts;
  while (shard.lru.size() > shard_capacity_) {
    Unlink(shard, std::prev(shard.lru.end()));
    ++shard.evictions;
  }
  return handle;
}

PlanCache::Handle PlanCache::Refresh(const QueryFingerprint& fp,
                                     StatsOverlay overlay,
                                     OptimizeResult result) {
  refreshes_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = ShardFor(fp);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto chain_it = shard.index.find(fp.hash);
  if (chain_it != shard.index.end()) {
    for (auto pos : chain_it->second) {
      if ((*pos)->fingerprint.hash2 == fp.hash2 &&
          (*pos)->fingerprint.Matches(fp)) {
        // Swap in place: the stale entry is unlinked (outstanding handles
        // keep it and its arena alive) and the fresh one takes the MRU
        // slot. Last-writer-wins — the whole point is replacing stale
        // statistics, so the newest result must land.
        Unlink(shard, pos);
        break;
      }
    }
  }
  Handle handle = std::make_shared<Entry>(fp, std::move(overlay),
                                          std::move(result));
  shard.lru.push_front(handle);
  shard.index[handle->fingerprint.hash].push_back(shard.lru.begin());
  shard.resident_bytes += EntryBytes(*handle);
  while (shard.lru.size() > shard_capacity_) {
    Unlink(shard, std::prev(shard.lru.end()));
    ++shard.evictions;
  }
  return handle;
}

void PlanCache::RecordDriftOutcome(bool avoided, bool background) {
  drift_hits_.fetch_add(1, std::memory_order_relaxed);
  if (avoided) replans_avoided_.fetch_add(1, std::memory_order_relaxed);
  if (background) {
    replans_background_.fetch_add(1, std::memory_order_relaxed);
  }
}

void PlanCache::Invalidate() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.invalidations += shard.lru.size();
    shard.index.clear();
    shard.lru.clear();
    shard.resident_bytes = 0;
  }
}

PlanCacheStats PlanCache::Snapshot() const {
  PlanCacheStats stats;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    stats.hits += shard.hits;
    stats.misses += shard.misses;
    stats.inserts += shard.inserts;
    stats.duplicate_inserts += shard.duplicate_inserts;
    stats.evictions += shard.evictions;
    stats.invalidations += shard.invalidations;
    stats.entries += shard.lru.size();
    stats.resident_bytes += shard.resident_bytes;
  }
  stats.drift_hits = drift_hits_.load(std::memory_order_relaxed);
  stats.replans_avoided = replans_avoided_.load(std::memory_order_relaxed);
  stats.replans_background =
      replans_background_.load(std::memory_order_relaxed);
  stats.refreshes = refreshes_.load(std::memory_order_relaxed);
  return stats;
}

size_t PlanCache::size() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.lru.size();
  }
  return n;
}

QueryFingerprint PlanCacheKey(const Query& query,
                              const PlannerKnobs& knobs) {
  QueryFingerprint fp = FingerprintQueryUnhashed(query);
  FoldOptionsIntoFingerprint(knobs, &fp);
  RehashFingerprint(&fp);
  return fp;
}

PlanCacheSplitKey PlanCacheKeySplit(const Query& query,
                                    const PlannerKnobs& knobs) {
  PlanCacheSplitKey key;
  SplitFingerprint split = FingerprintQuerySplitUnhashed(query);
  key.structural = std::move(split.structural);
  key.overlay = std::move(split.overlay);
  FoldOptionsIntoFingerprint(knobs, &key.structural);
  RehashFingerprint(&key.structural);
  return key;
}

namespace {

/// Claims the entry's replan flag and enqueues a full re-plan of `query`
/// on options.replan_pool; the completed result swaps into both tiers via
/// Refresh/Put. Returns true when the stale entry may keep serving (a
/// re-plan is now — or already was — in flight); false when background
/// re-planning is unavailable and the caller must re-plan inline.
///
/// The task snapshots the query by value (QuerySpec::FromQuery) and
/// copies `plan_fresh`: the caller's stack frame is long gone when the
/// task runs. Lifetime contract (plangen.h): the pool must be destroyed
/// before the caches, never the reverse — the pool's destructor drains
/// queued tasks, each of which touches both caches.
bool StartBackgroundReplan(
    const Query& query, const OptimizerOptions& options,
    const QueryFingerprint& fp, const StatsOverlay& overlay,
    const PlanCache::Handle& entry,
    const std::function<OptimizeResult(const Query&,
                                       const OptimizerOptions&)>&
        plan_fresh) {
  if (options.replan_pool == nullptr || options.plan_cache == nullptr ||
      entry == nullptr) {
    return false;
  }
  // Synthetic queries (no operator tree) cannot be snapshotted for
  // deferred re-planning; fall back to inline.
  if (query.root() == nullptr) return false;
  bool expected = false;
  if (!entry->replan_pending.compare_exchange_strong(expected, true)) {
    // A re-plan for this entry is already in flight: keep serving stale,
    // enqueue nothing.
    return true;
  }
  auto snapshot = std::make_shared<QuerySpec>(QuerySpec::FromQuery(query));
  OptimizerOptions uncached = options;
  uncached.plan_cache = nullptr;
  uncached.persistent_cache = nullptr;
  uncached.replan_pool = nullptr;
  PlanCache* l1 = options.plan_cache;
  PersistentPlanCache* l2 = options.persistent_cache;
  options.replan_pool->Submit(
      [snapshot, uncached, l1, l2, fp, overlay, entry, plan_fresh] {
        Query q = snapshot->ToQuery();
        OptimizeResult fresh = plan_fresh(q, uncached);
        if (fresh.plan != nullptr) {
          if (l2 != nullptr) l2->Put(fp, overlay, fresh);
          l1->Refresh(fp, overlay, std::move(fresh));
        }
        // Clear the flag on the (now unlinked) stale entry last: should
        // the Refresh have raced an eviction, a later drifted hit on a
        // re-inserted entry starts from a fresh flag anyway.
        entry->replan_pending.store(false);
      });
  return true;
}

}  // namespace

OptimizeResult OptimizeThroughCache(
    const Query& query, const OptimizerOptions& options,
    const std::function<OptimizeResult(const Query&, const OptimizerOptions&)>&
        plan_fresh) {
  auto start = std::chrono::steady_clock::now();
  auto elapsed_ms = [&start] {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
  };
  PlanCacheSplitKey key = PlanCacheKeySplit(query, options);
  const QueryFingerprint& fp = key.structural;
  // Set on the first drifted structural hit: the fresh plan must then
  // *replace* the stale entry (Refresh), not lose to it (Insert's
  // first-writer-wins).
  bool drifted = false;

  // A structural hit whose overlay mismatches the probe: re-cost the
  // cached plan under the current catalog, serve within the tolerance
  // band, otherwise try to hand the re-plan to the background pool while
  // the stale plan keeps serving. nullopt = caller must re-plan inline.
  auto serve_drifted =
      [&](const OptimizeResult& cached, const StatsOverlay& stored, int tier,
          const PlanCache::Handle& entry) -> std::optional<OptimizeResult> {
    drifted = true;
    double recosted = 0;
    bool within = false;
    if (cached.plan != nullptr) {
      RecostResult rc = RecostPlan(cached.plan, query);
      if (rc.ok) {
        recosted = rc.cost;
        // cached cost × scale lower-bounds the fresh optimum under the
        // probe's statistics (cost/recost.h); a re-plan can beat the
        // re-costed cached plan by at most the gap to that bound.
        double scale = DriftCostScale(stored, key.overlay);
        within = options.drift_tolerance > 0 && scale > 0 &&
                 rc.cost <=
                     (1.0 + options.drift_tolerance) * scale *
                         cached.plan->cost;
      }
    }
    bool background =
        !within &&
        StartBackgroundReplan(query, options, fp, key.overlay, entry,
                              plan_fresh);
    if (options.plan_cache != nullptr) {
      options.plan_cache->RecordDriftOutcome(within, background);
    }
    if (!within && !background) return std::nullopt;
    OptimizeResult result = cached;
    result.stats.cache_hit = true;
    result.stats.cache_tier = tier;
    result.stats.replan_avoided = within;
    result.stats.replan_background = background;
    result.stats.recosted_cost = recosted;
    result.stats.optimize_ms = elapsed_ms();
    return result;
  };

  if (options.plan_cache != nullptr) {
    if (PlanCache::Handle hit = options.plan_cache->Lookup(fp)) {
      if (SameStats(hit->overlay, key.overlay)) {
        // Exact hit — statistics unchanged since the entry was built.
        // Copying the cached OptimizeResult copies its arena shared_ptr,
        // so the served plan stays alive past eviction without the handle.
        OptimizeResult result = hit->result;
        result.stats.cache_hit = true;
        result.stats.cache_tier = 1;
        result.stats.optimize_ms = elapsed_ms();
        return result;
      }
      if (std::optional<OptimizeResult> served =
              serve_drifted(hit->result, hit->overlay, 1, hit)) {
        return *served;
      }
    }
  }
  if (options.persistent_cache != nullptr) {
    StatsOverlay stored;
    OptimizeResult revived;
    if (options.persistent_cache->Get(fp, &stored, &revived)) {
      if (SameStats(stored, key.overlay)) {
        // Promote into the memory tier so the shape's next arrival is a
        // probe, not a disk read + decode. The promoted copy is what we
        // serve now (its arena is shared), matching the L1-hit path.
        revived.stats.cache_hit = true;
        revived.stats.cache_tier = 2;
        revived.stats.optimize_ms = elapsed_ms();
        if (options.plan_cache != nullptr && revived.plan != nullptr) {
          options.plan_cache->Insert(fp, revived, stored);
        }
        return revived;
      }
      // Drifted disk hit: promote the stale plan first (background
      // re-planning needs an L1 entry to dedup on; Insert returns the
      // existing entry if a drifted L1 resident beat us here).
      PlanCache::Handle promoted;
      if (options.plan_cache != nullptr && revived.plan != nullptr) {
        promoted = options.plan_cache->Insert(fp, revived, stored);
      }
      if (std::optional<OptimizeResult> served =
              serve_drifted(revived, stored, 2, promoted)) {
        return *served;
      }
    }
  }
  OptimizerOptions uncached = options;
  uncached.plan_cache = nullptr;
  uncached.persistent_cache = nullptr;
  uncached.replan_pool = nullptr;
  OptimizeResult result = plan_fresh(query, uncached);
  // Unsatisfiable queries stay uncached: a null plan carries no arena to
  // keep alive and costs nothing to rediscover.
  if (result.plan != nullptr) {
    // Write-behind to disk first: Put copies what it needs, Insert moves.
    if (options.persistent_cache != nullptr) {
      options.persistent_cache->Put(fp, key.overlay, result);
    }
    if (options.plan_cache != nullptr) {
      if (drifted) {
        // Inline re-plan of a drifted entry: the fresh result replaces
        // the stale one.
        options.plan_cache->Refresh(fp, std::move(key.overlay), result);
      } else {
        options.plan_cache->Insert(fp, result, std::move(key.overlay));
      }
    }
  }
  return result;
}

}  // namespace eadp
