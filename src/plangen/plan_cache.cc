#include "plangen/plan_cache.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <utility>

#include "plangen/persistent_cache.h"

namespace eadp {

namespace {

/// Extends a query fingerprint with every OptimizerOptions knob that
/// steers planning, so one cache can serve mixed configurations without
/// ever crossing them: the same query planned under kEaPrune and under a
/// pruning ablation (or another idp_block_size, tolerance, ...) gets two
/// distinct entries. plan_cache itself is deliberately excluded — the
/// cache's identity must not depend on which cache is probed. Appends
/// bytes only, through the same CanonicalWriter the query half uses (the
/// two halves of a cache key must never desynchronize their encodings);
/// the caller hashes the finished canonical form once.
void FoldOptionsIntoFingerprint(const OptimizerOptions& options,
                                QueryFingerprint* fp) {
  // Tripwire: adding a field to OptimizerOptions changes its size and
  // fails this assert. If the new field steers planning, fold it below
  // (a missed knob would silently cross-serve plans between
  // configurations); either way, update the expected size deliberately.
  // (72 = the 64 bytes of PR 5 plus the persistent_cache pointer, which
  // is excluded from the key like plan_cache and dp_pool — both tiers
  // must agree on one key for promotion to be coherent.)
  static_assert(sizeof(OptimizerOptions) == 72,
                "OptimizerOptions changed: fold any new planning-relevant "
                "knob into the cache key below, then update this size");
  CanonicalWriter w(&fp->canonical);
  w.U8(0xfe);  // options-block marker (query serializations start fields
               // right after the version byte; this delimits the suffix)
  w.U8(static_cast<uint8_t>(options.algorithm));
  w.F64(options.h2_tolerance);
  w.U8(options.builder.top_grouping_elimination ? 1 : 0);
  w.U8(options.builder.track_fds ? 1 : 0);
  w.U8(options.prune_without_keys ? 1 : 0);
  w.U8(options.prune_without_cardinality ? 1 : 0);
  w.U8(options.full_fd_dominance ? 1 : 0);
  w.I32(options.adaptive_exact_relations);
  w.I32(options.idp_block_size);
  w.U8(static_cast<uint8_t>(options.idp_inner));
  w.I32(options.goo_merge_budget);
  // dp_threads is folded even though parallel plans are cost-identical to
  // sequential ones: generated-column names differ per worker count, so
  // cross-serving would surprise anything reading plan internals. dp_pool
  // is excluded like plan_cache itself — execution context, not identity.
  w.I32(options.dp_threads);
}

}  // namespace

PlanCache::PlanCache(const PlanCacheOptions& options) {
  size_t shards = std::bit_ceil(static_cast<size_t>(
      std::max(options.num_shards, 1)));
  shards_ = std::vector<Shard>(shards);
  // Ceil-divide so the shard total never undercuts the requested capacity;
  // at least one entry per shard so tiny capacities still cache.
  shard_capacity_ = std::max<size_t>(
      1, (std::max<size_t>(options.capacity, 1) + shards - 1) / shards);
}

size_t PlanCache::EntryBytes(const Entry& e) {
  size_t n = sizeof(Entry) + e.fingerprint.canonical.size();
  if (e.result.arena != nullptr) n += e.result.arena->bytes_used();
  return n;
}

void PlanCache::Unlink(Shard& shard, std::list<Handle>::iterator pos) {
  const Entry& entry = **pos;
  shard.resident_bytes -= EntryBytes(entry);
  auto chain_it = shard.index.find(entry.fingerprint.hash);
  auto& chain = chain_it->second;
  chain.erase(std::find(chain.begin(), chain.end(), pos));
  if (chain.empty()) shard.index.erase(chain_it);
  shard.lru.erase(pos);
}

PlanCache::Handle PlanCache::Lookup(const QueryFingerprint& fp) {
  Shard& shard = ShardFor(fp);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto chain_it = shard.index.find(fp.hash);
  if (chain_it != shard.index.end()) {
    for (auto pos : chain_it->second) {
      const Entry& entry = **pos;
      // The load-bearing comparison: hash equality got us here, but only
      // canonical-byte equality may serve the plan.
      if (entry.fingerprint.hash2 == fp.hash2 &&
          entry.fingerprint.Matches(fp)) {
        shard.lru.splice(shard.lru.begin(), shard.lru, pos);
        ++shard.hits;
        return *pos;
      }
    }
  }
  ++shard.misses;
  return nullptr;
}

PlanCache::Handle PlanCache::Insert(QueryFingerprint fp,
                                    OptimizeResult result) {
  Shard& shard = ShardFor(fp);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto chain_it = shard.index.find(fp.hash);
  if (chain_it != shard.index.end()) {
    for (auto pos : chain_it->second) {
      if ((*pos)->fingerprint.hash2 == fp.hash2 &&
          (*pos)->fingerprint.Matches(fp)) {
        // First writer wins; concurrent planners of one shape share its
        // entry. Freshen recency — a duplicate insert is evidence of use.
        shard.lru.splice(shard.lru.begin(), shard.lru, pos);
        ++shard.duplicate_inserts;
        return *pos;
      }
    }
  }
  Handle handle =
      std::make_shared<Entry>(Entry{std::move(fp), std::move(result)});
  shard.lru.push_front(handle);
  shard.index[handle->fingerprint.hash].push_back(shard.lru.begin());
  shard.resident_bytes += EntryBytes(*handle);
  ++shard.inserts;
  while (shard.lru.size() > shard_capacity_) {
    Unlink(shard, std::prev(shard.lru.end()));
    ++shard.evictions;
  }
  return handle;
}

void PlanCache::Invalidate() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.invalidations += shard.lru.size();
    shard.index.clear();
    shard.lru.clear();
    shard.resident_bytes = 0;
  }
}

PlanCacheStats PlanCache::Snapshot() const {
  PlanCacheStats stats;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    stats.hits += shard.hits;
    stats.misses += shard.misses;
    stats.inserts += shard.inserts;
    stats.duplicate_inserts += shard.duplicate_inserts;
    stats.evictions += shard.evictions;
    stats.invalidations += shard.invalidations;
    stats.entries += shard.lru.size();
    stats.resident_bytes += shard.resident_bytes;
  }
  return stats;
}

size_t PlanCache::size() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.lru.size();
  }
  return n;
}

QueryFingerprint PlanCacheKey(const Query& query,
                              const OptimizerOptions& options) {
  QueryFingerprint fp = FingerprintQueryUnhashed(query);
  FoldOptionsIntoFingerprint(options, &fp);
  RehashFingerprint(&fp);
  return fp;
}

OptimizeResult OptimizeThroughCache(
    const Query& query, const OptimizerOptions& options,
    const std::function<OptimizeResult(const Query&, const OptimizerOptions&)>&
        plan_fresh) {
  auto start = std::chrono::steady_clock::now();
  auto elapsed_ms = [&start] {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
  };
  QueryFingerprint fp = PlanCacheKey(query, options);
  if (options.plan_cache != nullptr) {
    if (PlanCache::Handle hit = options.plan_cache->Lookup(fp)) {
      // Copying the cached OptimizeResult copies its arena shared_ptr, so
      // the served plan stays alive past eviction without the handle.
      OptimizeResult result = hit->result;
      result.stats.cache_hit = true;
      result.stats.cache_tier = 1;
      result.stats.optimize_ms = elapsed_ms();
      return result;
    }
  }
  if (options.persistent_cache != nullptr) {
    OptimizeResult revived;
    if (options.persistent_cache->Get(fp, &revived)) {
      // Promote into the memory tier so the shape's next arrival is a
      // probe, not a disk read + decode. The promoted copy is what we
      // serve now (its arena is shared), matching the L1-hit path.
      revived.stats.cache_hit = true;
      revived.stats.cache_tier = 2;
      revived.stats.optimize_ms = elapsed_ms();
      if (options.plan_cache != nullptr && revived.plan != nullptr) {
        options.plan_cache->Insert(fp, revived);
      }
      return revived;
    }
  }
  OptimizerOptions uncached = options;
  uncached.plan_cache = nullptr;
  uncached.persistent_cache = nullptr;
  OptimizeResult result = plan_fresh(query, uncached);
  // Unsatisfiable queries stay uncached: a null plan carries no arena to
  // keep alive and costs nothing to rediscover.
  if (result.plan != nullptr) {
    // Write-behind to disk first: Put copies what it needs, Insert moves.
    if (options.persistent_cache != nullptr) {
      options.persistent_cache->Put(fp, result);
    }
    if (options.plan_cache != nullptr) {
      options.plan_cache->Insert(std::move(fp), result);
    }
  }
  return result;
}

}  // namespace eadp
