#include "plangen/dp_combine.h"

#include <cassert>
#include <utility>

namespace eadp {

CcpCombiner::CcpCombiner(const Query* query, PlanBuilder* builder,
                         DpTable* dp, Algorithm algorithm,
                         double h2_tolerance, const DpTable* read_dp)
    : query_(query),
      builder_(builder),
      dp_(dp),
      read_dp_(read_dp != nullptr ? read_dp : dp),
      algorithm_(algorithm),
      h2_tolerance_(h2_tolerance) {
  assert(algorithm_ != Algorithm::kGoo && algorithm_ != Algorithm::kIdp &&
         "CcpCombiner implements the DP insertion policies; the large-query "
         "strategies are drivers on top of them (large_query.h)");
}

bool CcpCombiner::Combine(RelSet s1, RelSet s2) {
  CrossingOps crossing = builder_->FindCrossingOps(s1, s2);
  if (!crossing.valid) return false;
  RelSet a = crossing.swap ? s2 : s1;
  RelSet b = crossing.swap ? s1 : s2;
  RelSet s = s1.Union(s2);
  bool top = s == query_->AllRelations();

  switch (algorithm_) {
    case Algorithm::kDphyp: {
      PlanPtr t1 = read_dp_->Best(a);
      PlanPtr t2 = read_dp_->Best(b);
      if (!t1 || !t2) return false;
      dp_->InsertIfCheaper(s, builder_->MakeJoin(t1, t2, crossing));
      break;
    }
    case Algorithm::kH1:
    case Algorithm::kH2: {
      PlanPtr t1 = read_dp_->Best(a);
      PlanPtr t2 = read_dp_->Best(b);
      if (!t1 || !t2) return false;
      trees_.clear();
      builder_->OpTrees(t1, t2, crossing, &trees_);
      for (PlanPtr t : trees_) InsertHeuristic(s, t, top);
      break;
    }
    case Algorithm::kEaAll:
    case Algorithm::kEaPrune: {
      // References stay valid while inserting: the target class `s` is
      // strictly larger than `a` and `b`, and unordered_map rehashing
      // never invalidates references to values (pinned by dp_table_test).
      const std::vector<PlanPtr>& plans_a = read_dp_->Plans(a);
      const std::vector<PlanPtr>& plans_b = read_dp_->Plans(b);
      if (plans_a.empty() || plans_b.empty()) return false;
      for (PlanPtr t1 : plans_a) {
        for (PlanPtr t2 : plans_b) {
          trees_.clear();
          builder_->OpTrees(t1, t2, crossing, &trees_);
          for (PlanPtr t : trees_) {
            if (top) {
              // InsertTopLevelPlan: single best complete plan.
              dp_->InsertIfCheaper(s, t);
            } else if (algorithm_ == Algorithm::kEaAll) {
              dp_->Append(s, t);
            } else {
              dp_->InsertPruned(s, t);
            }
          }
        }
      }
      break;
    }
    case Algorithm::kGoo:
    case Algorithm::kIdp:
      return false;  // unreachable (constructor assert)
  }
  return true;
}

void CcpCombiner::InsertHeuristic(RelSet s, PlanPtr plan, bool top) {
  if (algorithm_ == Algorithm::kH1) {
    dp_->InsertIfCheaper(s, std::move(plan));
    return;
  }
  PlanPtr old = dp_->Best(s);
  if (!old) {
    dp_->Append(s, std::move(plan));
    return;
  }
  double f = h2_tolerance_;
  bool better;
  if (top || plan->Eagerness() == old->Eagerness()) {
    better = plan->cost < old->cost;
  } else if (plan->Eagerness() < old->Eagerness()) {
    better = f * plan->cost < old->cost;
  } else {
    better = plan->cost < f * old->cost;
  }
  if (better) dp_->ReplaceSingle(s, std::move(plan));
}

}  // namespace eadp
