#include "plangen/parallel.h"

#include <future>
#include <utility>

#include "plangen/large_query.h"
#include "plangen/plan_cache.h"
#include "plangen/session.h"

namespace eadp {

BatchResult OptimizeBatch(std::span<const Query> queries,
                          const OptimizerOptions& options, ThreadPool* pool) {
  // Shim (see parallel.h): the batch loop lives on PlannerSession so the
  // per-query cache probe is the session's single OptimizeImpl path.
  return PlannerSession(options).OptimizeBatch(queries, pool);
}

BatchResult OptimizeBatch(std::span<const Query> queries,
                          const OptimizerOptions& options, int num_threads) {
  return PlannerSession(options).OptimizeBatch(queries, num_threads);
}

OptimizeResult OptimizeAdaptiveConcurrent(const Query& query,
                                          const OptimizerOptions& options,
                                          ThreadPool* pool) {
  // Shim: the session probes the cache (once) and races on a miss.
  return PlannerSession(options).OptimizeConcurrent(query, pool);
}

OptimizeResult OptimizeAdaptiveConcurrentUncached(
    const Query& query, const OptimizerOptions& options, ThreadPool* pool) {
  if (pool == nullptr || pool->num_threads() < 2 ||
      query.NumRelations() <= options.adaptive_exact_relations) {
    return OptimizeAdaptiveUncached(query, options);
  }
  // Both strategies read the same const Query and build into private
  // arenas. kIdp goes to the pool; kGoo runs on the calling thread — the
  // caller would only park on the futures anyway, so running one strategy
  // inline takes a single pool slot and keeps the caller productive.
  // Waiting for *both* results before picking makes the outcome
  // independent of completion order.
  std::future<OptimizeResult> idp_future =
      pool->Submit([&query, &options] { return OptimizeIdp(query, options); });
  OptimizeResult goo;
  try {
    goo = OptimizeGreedy(query, options);
  } catch (...) {
    // Never abandon the in-flight task: it reads caller-owned query state
    // that an unwinding caller may destroy.
    idp_future.wait();
    throw;
  }
  return PickAdaptiveWinner(idp_future.get(), std::move(goo));
}

}  // namespace eadp
