#include "plangen/parallel.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <future>
#include <utility>

#include "plangen/large_query.h"
#include "plangen/plan_cache.h"

namespace eadp {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Nearest-rank percentile of an already-sorted sample (q in (0, 1]).
double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  rank = std::clamp<size_t>(rank, 1, sorted.size());
  return sorted[rank - 1];
}

BatchStats AggregateStats(std::vector<double> latencies, double wall_ms,
                          int num_threads) {
  BatchStats stats;
  stats.num_queries = static_cast<int>(latencies.size());
  stats.num_threads = num_threads;
  stats.wall_ms = wall_ms;
  if (wall_ms > 0) {
    stats.queries_per_second =
        static_cast<double>(stats.num_queries) / (wall_ms / 1000.0);
  }
  for (double ms : latencies) stats.total_optimize_ms += ms;
  std::sort(latencies.begin(), latencies.end());
  stats.p50_ms = Percentile(latencies, 0.50);
  stats.p95_ms = Percentile(latencies, 0.95);
  stats.max_ms = latencies.empty() ? 0 : latencies.back();
  return stats;
}

}  // namespace

BatchResult OptimizeBatch(std::span<const Query> queries,
                          const OptimizerOptions& options, ThreadPool* pool) {
  BatchResult batch;
  size_t n = queries.size();
  batch.results.resize(n);
  std::vector<double> latencies(n, 0.0);
  Clock::time_point start = Clock::now();

  auto plan_one = [&options, &queries, &batch, &latencies](size_t i) {
    Clock::time_point q_start = Clock::now();
    batch.results[i] = OptimizeAdaptive(queries[i], options);
    latencies[i] = MsSince(q_start);
  };

  int threads = 1;
  if (pool == nullptr || pool->num_threads() <= 1) {
    // Sequential reference path: same per-query facade, same order.
    for (size_t i = 0; i < n; ++i) plan_one(i);
  } else {
    threads = pool->num_threads();
    // One task per query; every task writes only its own slot of
    // `results`/`latencies` (sized above, never resized while in flight),
    // so the futures' fan-in is the only synchronization needed.
    std::vector<std::future<void>> futures;
    futures.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      futures.push_back(pool->Submit([&plan_one, i] { plan_one(i); }));
    }
    // Join *every* future before any rethrow: tasks capture this frame's
    // locals, so unwinding while some are still queued or running would
    // leave them executing against a dead frame (the pool's drain-on-
    // destruct guarantees queued tasks run, which here would be UB, and a
    // caller-owned pool would race the unwound stack directly).
    std::exception_ptr first_error;
    for (std::future<void>& f : futures) {
      try {
        f.get();
      } catch (...) {
        if (first_error == nullptr) first_error = std::current_exception();
      }
    }
    if (first_error != nullptr) std::rethrow_exception(first_error);
  }

  batch.stats = AggregateStats(std::move(latencies), MsSince(start), threads);
  for (const OptimizeResult& r : batch.results) {
    if (r.stats.cache_hit) ++batch.stats.cache_hits;
  }
  return batch;
}

BatchResult OptimizeBatch(std::span<const Query> queries,
                          const OptimizerOptions& options, int num_threads) {
  if (num_threads <= 1) return OptimizeBatch(queries, options, nullptr);
  ThreadPool pool(num_threads);
  return OptimizeBatch(queries, options, &pool);
}

OptimizeResult OptimizeAdaptiveConcurrent(const Query& query,
                                          const OptimizerOptions& options,
                                          ThreadPool* pool) {
  if (options.plan_cache != nullptr || options.persistent_cache != nullptr) {
    // Probe before racing: a hit saves both strategies, and the shared
    // wrapper clears both cache pointers so the fallback path below (which
    // funnels into OptimizeAdaptive) cannot double-probe or double-insert.
    return OptimizeThroughCache(
        query, options, [pool](const Query& q, const OptimizerOptions& o) {
          return OptimizeAdaptiveConcurrent(q, o, pool);
        });
  }
  if (pool == nullptr || pool->num_threads() < 2 ||
      query.NumRelations() <= options.adaptive_exact_relations) {
    return OptimizeAdaptive(query, options);
  }
  // Both strategies read the same const Query and build into private
  // arenas. kIdp goes to the pool; kGoo runs on the calling thread — the
  // caller would only park on the futures anyway, so running one strategy
  // inline takes a single pool slot and keeps the caller productive.
  // Waiting for *both* results before picking makes the outcome
  // independent of completion order.
  std::future<OptimizeResult> idp_future =
      pool->Submit([&query, &options] { return OptimizeIdp(query, options); });
  OptimizeResult goo;
  try {
    goo = OptimizeGreedy(query, options);
  } catch (...) {
    // Never abandon the in-flight task: it reads caller-owned query state
    // that an unwinding caller may destroy.
    idp_future.wait();
    throw;
  }
  return PickAdaptiveWinner(idp_future.get(), std::move(goo));
}

}  // namespace eadp
