// Functional-dependency tracking through plan operators.
//
// The dominance test of Sec. 4.6 compares FD closures: FD+(T1) ⊇ FD+(T2).
// The paper weakens this to candidate-key comparison "in an actual
// implementation"; this module provides the unweakened variant as an
// optimizer option (OptimizerOptions::full_fd_dominance), used by the
// pruning ablation to quantify what the weakening costs.
//
// Derivation rules (sound under the NULL-equals-NULL convention of
// Sec. 2.3):
//   * scan:        every declared key k yields k -> A(R);
//   * inner join:  both inputs' FDs survive; each equality a = b adds
//                  a -> b and b -> a;
//   * outer joins: both inputs' FDs survive (padded rows agree on the
//                  all-NULL side), but the equality FDs do NOT (unmatched
//                  rows violate them);
//   * semi/anti/groupjoin: left FDs survive;
//   * grouping:    FDs among surviving attributes survive (collapsing rows
//                  preserves agreement).

#ifndef EADP_PLANGEN_PLAN_FDS_H_
#define EADP_PLANGEN_PLAN_FDS_H_

#include "algebra/predicate.h"
#include "catalog/catalog.h"
#include "catalog/functional_dependency.h"
#include "plangen/plan.h"

namespace eadp {

/// FDs of a base relation scan.
FdSet ScanFds(const Catalog& catalog, int rel);

/// FDs of a binary operator result.
FdSet JoinFds(PlanOp op, const FdSet& left, const FdSet& right,
              const JoinPredicate& pred);

/// FDs of Γ_{group_by}(child).
FdSet GroupingFds(const FdSet& child, AttrSet group_by);

/// True iff `a`'s FD closure covers `b`'s (FD+(a) ⊇ FD+(b)).
bool FdsDominate(const FdSet& a, const FdSet& b);

}  // namespace eadp

#endif  // EADP_PLANGEN_PLAN_FDS_H_
