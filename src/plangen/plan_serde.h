// Versioned, checksummed binary plan encoding: OptimizeResult <-> bytes.
//
// The arena memory model (DESIGN.md §6) is what makes plans serializable
// at all: a plan is a DAG of slim value nodes plus a handful of immutable
// interned payloads, all owned by one arena — no back-pointers, no
// external state, no destructor order. The encoding exploits exactly
// that shape:
//
//   * nodes are written in postorder as *records with index references* —
//     the serialized form of an arena-relative offset: child and payload
//     fields hold small table indices (0 = null, else index + 1) instead
//     of pointers, so decode is one fresh PlanArena plus an index fix-up
//     pass, never a pointer relocation;
//   * every interned payload (CrossingInfo, KeySet, FdSet, PlanAggState,
//     outer-join default vectors, grouping aggregate vectors, final maps)
//     is written once into a per-kind dedup table, in first-encounter
//     order of the node walk — shared payloads stay shared through a
//     round trip, and n plans of one query class don't multiply their
//     common payloads on disk;
//   * doubles travel by bit pattern, so cost/cardinality are *bit*-equal
//     after decode — the property the differential round-trip battery
//     (plan_serde_test) pins via explain-JSON string equality.
//
// Self-containment and safety: a blob carries magic, format version, a
// CRC-32 over the payload and the payload length. The decoder checks the
// version *before* the checksum (a format bump refuses cleanly instead of
// reading garbage), verifies the CRC (any single-byte corruption is
// caught), and then parses with a bounds-checked reader that validates
// every enum, every count and every index — arbitrary bytes are rejected
// with an error message, never undefined behavior (bit-flip/truncation
// sweeps under ASan pin this).
//
// Determinism: encoding is a pure function of the plan structure —
// encode(decode(blob)) == blob byte-for-byte. This is what makes blobs
// usable as cache values across processes (plangen/persistent_cache.h)
// and, later, as wire format for shipping plans between optimizer
// daemons.

#ifndef EADP_PLANGEN_PLAN_SERDE_H_
#define EADP_PLANGEN_PLAN_SERDE_H_

#include <string>
#include <string_view>

#include "plangen/plangen.h"

namespace eadp {

/// First bytes of every plan blob ("EPLN" little-endian).
inline constexpr uint32_t kPlanBlobMagic = 0x4e4c5045u;
/// Current format version. Bump on any layout change; decoders refuse
/// other versions cleanly (no cross-version guessing).
inline constexpr uint32_t kPlanBlobVersion = 1;

/// Serializes `result` (stats + plan tree; the plan may be null for an
/// unsatisfiable result) into a self-contained blob. Deterministic:
/// structurally identical results encode to identical bytes.
std::string EncodePlan(const OptimizeResult& result);

/// Decodes a blob produced by EncodePlan into a fresh PlanArena. On
/// success returns true and fills `*out` (plan null iff encoded as null).
/// On any malformed input — wrong magic, version skew, checksum mismatch,
/// truncation, out-of-range enum/index/count, trailing bytes — returns
/// false, leaves `*out` untouched, and (if non-null) sets `*error` to a
/// short diagnostic. Never exhibits UB regardless of input bytes.
bool DecodePlan(std::string_view blob, OptimizeResult* out,
                std::string* error = nullptr);

}  // namespace eadp

#endif  // EADP_PLANGEN_PLAN_SERDE_H_
