#include "plangen/persistent_cache.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/binio.h"
#include "plangen/plan_cache.h"
#include "plangen/plan_serde.h"

namespace eadp {

namespace {

constexpr uint32_t kSegmentMagic = 0x47455345u;  // "ESEG"
// Version 2 (PR 9): records carry the statistics overlay between key and
// blob. Version-1 segments are skipped wholesale by the version check.
constexpr uint32_t kSegmentVersion = 2;
constexpr uint64_t kSegmentHeaderBytes = 8;
// crc + key_len + overlay_len + blob_len
constexpr uint64_t kRecordHeaderBytes = 16;

std::string SegmentName(uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "segment-%06llu.log",
                static_cast<unsigned long long>(id));
  return buf;
}

/// Parses "segment-NNNNNN.log" -> id; false for any other name.
bool ParseSegmentName(const char* name, uint64_t* id) {
  static constexpr char kPrefix[] = "segment-";
  static constexpr char kSuffix[] = ".log";
  size_t len = std::strlen(name);
  if (len <= sizeof(kPrefix) - 1 + sizeof(kSuffix) - 1) return false;
  if (std::strncmp(name, kPrefix, sizeof(kPrefix) - 1) != 0) return false;
  if (std::strcmp(name + len - (sizeof(kSuffix) - 1), kSuffix) != 0) {
    return false;
  }
  uint64_t v = 0;
  for (const char* p = name + sizeof(kPrefix) - 1;
       p != name + len - (sizeof(kSuffix) - 1); ++p) {
    if (*p < '0' || *p > '9') return false;
    v = v * 10 + static_cast<uint64_t>(*p - '0');
  }
  *id = v;
  return true;
}

bool ReadExact(int fd, uint64_t offset, void* dst, size_t n) {
  size_t done = 0;
  while (done < n) {
    ssize_t r = ::pread(fd, static_cast<char*>(dst) + done, n - done,
                        static_cast<off_t>(offset + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;  // EOF short of n
    done += static_cast<size_t>(r);
  }
  return true;
}

bool WriteExact(int fd, uint64_t offset, const void* src, size_t n) {
  size_t done = 0;
  while (done < n) {
    ssize_t r = ::pwrite(fd, static_cast<const char*>(src) + done, n - done,
                         static_cast<off_t>(offset + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<size_t>(r);
  }
  return true;
}

/// CRC over everything after the crc word: all three length fields and
/// all three byte ranges, so a record is accepted or rejected as a unit.
uint32_t RecordCrc(uint32_t key_len, uint32_t overlay_len, uint32_t blob_len,
                   std::string_view key, std::string_view overlay,
                   std::string_view blob) {
  char lens[12];
  std::memcpy(lens, &key_len, 4);
  std::memcpy(lens + 4, &overlay_len, 4);
  std::memcpy(lens + 8, &blob_len, 4);
  uint32_t crc = Crc32(lens, sizeof(lens));
  crc = Crc32(key.data(), key.size(), crc);
  crc = Crc32(overlay.data(), overlay.size(), crc);
  crc = Crc32(blob.data(), blob.size(), crc);
  return crc;
}

}  // namespace

std::unique_ptr<PersistentPlanCache> PersistentPlanCache::Open(
    const PersistentCacheOptions& options, std::string* error) {
  auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return nullptr;
  };
  if (options.directory.empty()) return fail("directory not set");
  if (::mkdir(options.directory.c_str(), 0755) != 0 && errno != EEXIST) {
    return fail("cannot create " + options.directory + ": " +
                std::strerror(errno));
  }

  DIR* dir = ::opendir(options.directory.c_str());
  if (dir == nullptr) {
    return fail("cannot open " + options.directory + ": " +
                std::strerror(errno));
  }
  std::vector<uint64_t> ids;
  while (struct dirent* ent = ::readdir(dir)) {
    uint64_t id;
    if (ParseSegmentName(ent->d_name, &id)) ids.push_back(id);
  }
  ::closedir(dir);
  std::sort(ids.begin(), ids.end());

  std::unique_ptr<PersistentPlanCache> cache(
      new PersistentPlanCache(options));
  for (size_t i = 0; i < ids.size(); ++i) {
    bool newest = i + 1 == ids.size();
    std::string path = options.directory + "/" + SegmentName(ids[i]);
    // Only the newest segment may need tail truncation or appends; older
    // ones are immutable history.
    int fd = ::open(path.c_str(), newest ? O_RDWR : O_RDONLY);
    if (fd < 0) {
      ++cache->stats_.skipped_segments;
      ++cache->stats_.io_errors;
      continue;
    }
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      ++cache->stats_.skipped_segments;
      ++cache->stats_.io_errors;
      continue;
    }
    Segment seg;
    seg.id = ids[i];
    seg.fd = fd;
    seg.size = static_cast<uint64_t>(st.st_size);
    seg.writable = newest;
    cache->segments_.push_back(seg);
    ++cache->stats_.segments;
    cache->stats_.bytes_on_disk += seg.size;
    cache->RecoverSegment(static_cast<uint32_t>(cache->segments_.size() - 1),
                          newest);
  }

  // Resume appends in the newest segment when it recovered clean and has
  // room; otherwise the first Put rolls a fresh one.
  if (!cache->segments_.empty()) {
    Segment& last = cache->segments_.back();
    if (last.writable && last.size < options.max_segment_bytes) {
      cache->active_segment_ = static_cast<int>(cache->segments_.size() - 1);
    }
  }
  // Everything but the active segment is sealed history — serve it via
  // mmap (pread stays the fallback when a map fails).
  for (size_t i = 0; i < cache->segments_.size(); ++i) {
    if (static_cast<int>(i) != cache->active_segment_) {
      cache->MapSegmentLocked(cache->segments_[i]);
    }
  }

  if (options.write_behind) {
    cache->writer_ = std::thread(&PersistentPlanCache::WriterLoop,
                                 cache.get());
  }
  return cache;
}

void PersistentPlanCache::RecoverSegment(uint32_t seg_index, bool is_newest) {
  Segment& seg = segments_[seg_index];
  uint64_t good_end = 0;

  // Header: a wrong magic or an unknown version means the segment belongs
  // to another format — skip it wholesale, index nothing, never append.
  char header[kSegmentHeaderBytes];
  uint32_t magic = 0, version = 0;
  bool header_ok = seg.size >= kSegmentHeaderBytes &&
                   ReadExact(seg.fd, 0, header, sizeof(header));
  if (header_ok) {
    std::memcpy(&magic, header, 4);
    std::memcpy(&version, header + 4, 4);
  }
  if (!header_ok || magic != kSegmentMagic || version != kSegmentVersion) {
    if (header_ok && magic == kSegmentMagic && version != kSegmentVersion) {
      // Version-skewed but well-formed: leave it alone entirely.
      seg.writable = false;
      ++stats_.skipped_segments;
      return;
    }
    if (is_newest && seg.writable) {
      // A torn header can only be our own crashed first write: reset the
      // file to a clean empty segment.
      if (seg.size > 0) ++stats_.torn_records_dropped;
      uint32_t m = kSegmentMagic, v = kSegmentVersion;
      char fresh[kSegmentHeaderBytes];
      std::memcpy(fresh, &m, 4);
      std::memcpy(fresh + 4, &v, 4);
      if (::ftruncate(seg.fd, 0) == 0 &&
          WriteExact(seg.fd, 0, fresh, sizeof(fresh))) {
        stats_.bytes_on_disk += kSegmentHeaderBytes - seg.size;
        seg.size = kSegmentHeaderBytes;
      } else {
        seg.writable = false;
        ++stats_.io_errors;
      }
      return;
    }
    seg.writable = false;
    ++stats_.skipped_segments;
    return;
  }
  good_end = kSegmentHeaderBytes;

  // Record scan: stop at the first violation; everything before it is
  // servable history.
  bool torn = false;
  while (good_end < seg.size) {
    char rec_header[kRecordHeaderBytes];
    if (seg.size - good_end < kRecordHeaderBytes ||
        !ReadExact(seg.fd, good_end, rec_header, sizeof(rec_header))) {
      torn = true;
      break;
    }
    uint32_t crc, key_len, overlay_len, blob_len;
    std::memcpy(&crc, rec_header, 4);
    std::memcpy(&key_len, rec_header + 4, 4);
    std::memcpy(&overlay_len, rec_header + 8, 4);
    std::memcpy(&blob_len, rec_header + 12, 4);
    uint64_t body =
        static_cast<uint64_t>(key_len) + overlay_len + blob_len;
    if (seg.size - good_end - kRecordHeaderBytes < body) {
      torn = true;
      break;
    }
    std::string key(key_len, '\0');
    std::string overlay_bytes(overlay_len, '\0');
    std::string blob(blob_len, '\0');
    if (!ReadExact(seg.fd, good_end + kRecordHeaderBytes, key.data(),
                   key_len) ||
        !ReadExact(seg.fd, good_end + kRecordHeaderBytes + key_len,
                   overlay_bytes.data(), overlay_len) ||
        !ReadExact(seg.fd,
                   good_end + kRecordHeaderBytes + key_len + overlay_len,
                   blob.data(), blob_len) ||
        RecordCrc(key_len, overlay_len, blob_len, key, overlay_bytes,
                  blob) != crc) {
      torn = true;
      break;
    }
    // A CRC-valid record with an unparseable overlay never leaves our
    // writer; treat it like any other violation and stop the scan here.
    StatsOverlay overlay;
    if (!ParseOverlay(overlay_bytes, &overlay)) {
      torn = true;
      break;
    }
    QueryFingerprint fp;
    fp.canonical = std::move(key);
    RehashFingerprint(&fp);
    Location loc;
    loc.hash2 = fp.hash2;
    loc.overlay_hash = OverlayHash(overlay);
    loc.segment = seg_index;
    loc.offset = good_end;
    loc.key_len = key_len;
    loc.overlay_len = overlay_len;
    loc.blob_len = blob_len;
    // Newest record wins on duplicate keys: the scan runs in append
    // order, so a later record for an indexed key is a statistics-drift
    // update and the index moves to it.
    bool superseded = false;
    auto& chain = index_[fp.hash];
    for (Location& existing : chain) {
      if (existing.hash2 == fp.hash2) {
        existing = loc;
        superseded = true;
        ++stats_.superseded_records;
        break;
      }
    }
    if (!superseded) {
      chain.push_back(loc);
      ++stats_.records;
    }
    good_end += kRecordHeaderBytes + body;
  }

  if (torn) {
    ++stats_.torn_records_dropped;
    if (is_newest && seg.writable && ::ftruncate(seg.fd, good_end) == 0) {
      stats_.bytes_on_disk -= seg.size - good_end;
      seg.size = good_end;
    } else {
      // Mid-history corruption (or failed truncate): serve the prefix,
      // never append after the hole.
      seg.writable = false;
      if (is_newest) ++stats_.io_errors;
    }
  }
}

PersistentPlanCache::~PersistentPlanCache() {
  if (writer_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    queue_cv_.notify_all();
    writer_.join();  // drains the queue before exiting
  }
  for (Segment& seg : segments_) {
    if (seg.map != nullptr) ::munmap(seg.map, seg.map_len);
    if (seg.fd >= 0) {
      if (seg.writable) ::fdatasync(seg.fd);
      ::close(seg.fd);
    }
  }
}

void PersistentPlanCache::MapSegmentLocked(Segment& seg) {
  if (seg.map != nullptr || seg.fd < 0 || seg.size == 0) return;
  void* map = ::mmap(nullptr, seg.size, PROT_READ, MAP_SHARED, seg.fd, 0);
  if (map == MAP_FAILED) return;  // pread fallback keeps serving
  seg.map = map;
  seg.map_len = seg.size;
  ++stats_.mmap_segments;
}

bool PersistentPlanCache::ContainsLocked(uint64_t hash, uint64_t hash2,
                                         uint64_t overlay_hash) const {
  // hash + hash2 (128 bits) stand in for the full key here: a collision
  // merely suppresses a redundant Put or shadows a duplicate record —
  // never serves a wrong plan, because Get always compares key bytes.
  // The overlay hash narrows the duplicate to "same key, same
  // statistics"; a Put under drifted statistics must go through (it is
  // the update).
  auto it = index_.find(hash);
  if (it != index_.end()) {
    for (const Location& loc : it->second) {
      if (loc.hash2 == hash2 && loc.overlay_hash == overlay_hash) {
        return true;
      }
    }
  }
  auto pend = pending_hashes_.find(hash);
  if (pend != pending_hashes_.end()) {
    for (const auto& [h2, oh] : pend->second) {
      if (h2 == hash2 && oh == overlay_hash) return true;
    }
  }
  return false;
}

bool PersistentPlanCache::Get(const QueryFingerprint& fp,
                              StatsOverlay* overlay, OptimizeResult* out) {
  struct Candidate {
    int fd;
    const char* map;  ///< base of the segment mapping, null = pread
    size_t map_len;
    uint64_t offset;
    uint32_t key_len;
    uint32_t overlay_len;
    uint32_t blob_len;
  };
  std::vector<Candidate> candidates;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(fp.hash);
    if (it != index_.end()) {
      for (const Location& loc : it->second) {
        if (loc.hash2 == fp.hash2 && loc.key_len == fp.canonical.size()) {
          const Segment& seg = segments_[loc.segment];
          candidates.push_back({seg.fd, static_cast<const char*>(seg.map),
                                seg.map_len, loc.offset, loc.key_len,
                                loc.overlay_len, loc.blob_len});
        }
      }
    }
  }
  // I/O and decode run without the lock: records are immutable, fds stay
  // open and maps stay mapped for the cache's lifetime. `used_pread`
  // latches when any byte of the current candidate came through the pread
  // fallback — the serve-path attribution behind mmap_serves/pread_serves.
  bool used_pread = false;
  auto read_at = [&used_pread](const Candidate& c, uint64_t offset, char* dst,
                               size_t n) {
    if (c.map != nullptr && offset + n <= c.map_len) {
      std::memcpy(dst, c.map + offset, n);
      return true;
    }
    used_pread = true;
    return ReadExact(c.fd, offset, dst, n);
  };
  for (const Candidate& c : candidates) {
    used_pread = false;
    std::string key(c.key_len, '\0');
    if (!read_at(c, c.offset + kRecordHeaderBytes, key.data(), c.key_len) ||
        key != fp.canonical) {
      continue;  // hash collision (or unreadable record): not our key
    }
    std::string overlay_bytes(c.overlay_len, '\0');
    std::string blob(c.blob_len, '\0');
    bool read_ok =
        read_at(c, c.offset + kRecordHeaderBytes + c.key_len,
                overlay_bytes.data(), c.overlay_len) &&
        read_at(c, c.offset + kRecordHeaderBytes + c.key_len + c.overlay_len,
                blob.data(), c.blob_len);
    StatsOverlay parsed;
    OptimizeResult decoded;
    if (read_ok && ParseOverlay(overlay_bytes, &parsed) &&
        DecodePlan(blob, &decoded)) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.hits;
      if (used_pread) {
        ++stats_.pread_serves;
      } else {
        ++stats_.mmap_serves;
      }
      if (overlay != nullptr) *overlay = std::move(parsed);
      *out = std::move(decoded);
      return true;
    }
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.decode_failures;
    // Keep scanning: an unlikely same-128-bit-hash sibling may still hold
    // a good record.
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.misses;
  return false;
}

void PersistentPlanCache::Put(const QueryFingerprint& fp,
                              const StatsOverlay& overlay,
                              const OptimizeResult& result) {
  PendingWrite w;
  w.hash = fp.hash;
  w.hash2 = fp.hash2;
  w.overlay_hash = OverlayHash(overlay);
  w.key = fp.canonical;
  AppendOverlay(overlay, &w.overlay);
  w.blob = EncodePlan(result);
  bool inline_append = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (ContainsLocked(fp.hash, fp.hash2, w.overlay_hash)) {
      ++stats_.duplicate_puts;
      return;
    }
    ++stats_.puts;
    pending_hashes_[w.hash].emplace_back(w.hash2, w.overlay_hash);
    if (options_.write_behind && !stop_) {
      queue_.push_back(std::move(w));
    } else {
      inline_append = true;
    }
  }
  if (inline_append) {
    AppendRecord(w);
  } else {
    queue_cv_.notify_one();
  }
}

int PersistentPlanCache::EnsureActiveSegmentLocked(size_t record_bytes) {
  (void)record_bytes;  // a record may overshoot the cap by itself; the
                       // cap bounds *when we roll*, not record size
  if (active_segment_ >= 0) {
    Segment& seg = segments_[active_segment_];
    if (seg.writable && seg.size < options_.max_segment_bytes) {
      return active_segment_;
    }
    // Rolling over: the outgoing active segment is sealed from here on —
    // switch its reads to mmap.
    MapSegmentLocked(seg);
  }
  uint64_t id = segments_.empty() ? 0 : segments_.back().id + 1;
  std::string path = options_.directory + "/" + SegmentName(id);
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_EXCL, 0644);
  if (fd < 0) return -1;
  char header[kSegmentHeaderBytes];
  uint32_t m = kSegmentMagic, v = kSegmentVersion;
  std::memcpy(header, &m, 4);
  std::memcpy(header + 4, &v, 4);
  if (!WriteExact(fd, 0, header, sizeof(header))) {
    ::close(fd);
    return -1;
  }
  Segment seg;
  seg.id = id;
  seg.fd = fd;
  seg.size = kSegmentHeaderBytes;
  seg.writable = true;
  segments_.push_back(seg);
  ++stats_.segments;
  stats_.bytes_on_disk += kSegmentHeaderBytes;
  active_segment_ = static_cast<int>(segments_.size() - 1);
  return active_segment_;
}

void PersistentPlanCache::AppendRecord(const PendingWrite& w) {
  uint32_t key_len = static_cast<uint32_t>(w.key.size());
  uint32_t overlay_len = static_cast<uint32_t>(w.overlay.size());
  uint32_t blob_len = static_cast<uint32_t>(w.blob.size());
  std::string record;
  record.reserve(kRecordHeaderBytes + w.key.size() + w.overlay.size() +
                 w.blob.size());
  PutFixed32(&record, RecordCrc(key_len, overlay_len, blob_len, w.key,
                                w.overlay, w.blob));
  PutFixed32(&record, key_len);
  PutFixed32(&record, overlay_len);
  PutFixed32(&record, blob_len);
  record += w.key;
  record += w.overlay;
  record += w.blob;

  std::lock_guard<std::mutex> lock(mu_);
  auto drop_pending = [&] {
    auto it = pending_hashes_.find(w.hash);
    if (it != pending_hashes_.end()) {
      auto& v = it->second;
      v.erase(std::find(v.begin(), v.end(),
                        std::make_pair(w.hash2, w.overlay_hash)));
      if (v.empty()) pending_hashes_.erase(it);
    }
  };
  int seg_index = EnsureActiveSegmentLocked(record.size());
  if (seg_index < 0) {
    ++stats_.io_errors;
    drop_pending();
    return;
  }
  Segment& seg = segments_[seg_index];
  uint64_t offset = seg.size;
  if (!WriteExact(seg.fd, offset, record.data(), record.size())) {
    // Roll back a partial append so the log stays parseable; if even that
    // fails, retire the segment — the scan-until-violation recovery would
    // still cope, but no new record may land after the hole.
    if (::ftruncate(seg.fd, static_cast<off_t>(offset)) != 0) {
      seg.writable = false;
    }
    ++stats_.io_errors;
    drop_pending();
    return;
  }
  seg.size += record.size();
  stats_.bytes_on_disk += record.size();
  ++stats_.appended_records;
  // Index only now, with the record fully on disk: a Get racing this
  // append misses (and replans) instead of reading a half-written record.
  // Newest wins on an already-indexed key — this append is then the
  // statistics-drift update for that key.
  Location loc;
  loc.hash2 = w.hash2;
  loc.overlay_hash = w.overlay_hash;
  loc.segment = static_cast<uint32_t>(seg_index);
  loc.offset = offset;
  loc.key_len = key_len;
  loc.overlay_len = overlay_len;
  loc.blob_len = blob_len;
  bool superseded = false;
  auto& chain = index_[w.hash];
  for (Location& existing : chain) {
    if (existing.hash2 == w.hash2) {
      existing = loc;
      superseded = true;
      ++stats_.superseded_records;
      break;
    }
  }
  if (!superseded) {
    chain.push_back(loc);
    ++stats_.records;
  }
  drop_pending();
}

void PersistentPlanCache::WriterLoop() {
  for (;;) {
    PendingWrite w;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) break;  // stop_ set and fully drained
      w = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    AppendRecord(w);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) drain_cv_.notify_all();
    }
  }
}

void PersistentPlanCache::Flush() {
  int fd = -1;
  {
    std::unique_lock<std::mutex> lock(mu_);
    drain_cv_.wait(lock, [&] { return queue_.empty() && in_flight_ == 0; });
    if (active_segment_ >= 0) fd = segments_[active_segment_].fd;
  }
  if (fd >= 0) ::fdatasync(fd);
}

PersistentCacheStats PersistentPlanCache::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::string CacheTierStatsToJson(const PlanCache* l1,
                                 const PersistentPlanCache* l2) {
  auto field = [](std::string* out, const char* name, uint64_t v,
                  bool first = false) {
    if (!first) *out += ',';
    *out += '"';
    *out += name;
    *out += "\":";
    *out += std::to_string(v);
  };
  std::string out = "{\"l1\":";
  if (l1 != nullptr) {
    PlanCacheStats s = l1->Snapshot();
    out += '{';
    field(&out, "hits", s.hits, /*first=*/true);
    field(&out, "misses", s.misses);
    field(&out, "inserts", s.inserts);
    field(&out, "evictions", s.evictions);
    field(&out, "entries", s.entries);
    field(&out, "resident_bytes", s.resident_bytes);
    field(&out, "drift_hits", s.drift_hits);
    field(&out, "replans_avoided", s.replans_avoided);
    field(&out, "replans_background", s.replans_background);
    field(&out, "refreshes", s.refreshes);
    out += '}';
  } else {
    out += "null";
  }
  out += ",\"l2\":";
  if (l2 != nullptr) {
    PersistentCacheStats s = l2->Snapshot();
    out += '{';
    field(&out, "hits", s.hits, /*first=*/true);
    field(&out, "misses", s.misses);
    field(&out, "puts", s.puts);
    field(&out, "duplicate_puts", s.duplicate_puts);
    field(&out, "decode_failures", s.decode_failures);
    field(&out, "torn_records_dropped", s.torn_records_dropped);
    field(&out, "skipped_segments", s.skipped_segments);
    field(&out, "io_errors", s.io_errors);
    field(&out, "superseded_records", s.superseded_records);
    field(&out, "records", s.records);
    field(&out, "segments", s.segments);
    field(&out, "mmap_segments", s.mmap_segments);
    field(&out, "mmap_serves", s.mmap_serves);
    field(&out, "pread_serves", s.pread_serves);
    field(&out, "bytes_on_disk", s.bytes_on_disk);
    out += '}';
  } else {
    out += "null";
  }
  out += '}';
  return out;
}

}  // namespace eadp
