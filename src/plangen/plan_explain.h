// Plan explanation: Graphviz and machine-readable exports.
//
// ToDot renders a plan as a Graphviz digraph (operators as boxes annotated
// with predicate/grouping, estimated cardinality and accumulated C_out);
// ToJson produces a compact JSON document with the same information for
// downstream tooling.
//
// Invariants: both renderings are pure functions of the plan — no plan
// mutation, and output is deterministic (node identifiers come from a
// preorder walk, never from pointer values), so goldens can be diffed.

#ifndef EADP_PLANGEN_PLAN_EXPLAIN_H_
#define EADP_PLANGEN_PLAN_EXPLAIN_H_

#include <string>

#include "catalog/catalog.h"
#include "plangen/plan.h"
#include "plangen/plangen.h"

namespace eadp {

/// Graphviz dot rendering of the plan.
std::string PlanToDot(const PlanPtr& plan, const Catalog& catalog);

/// JSON rendering: {"op": ..., "card": ..., "cost": ..., "children": [...]}.
std::string PlanToJson(const PlanPtr& plan, const Catalog& catalog);

/// JSON rendering of one run's OptimizeStats, including the DP hot-path
/// counters (csg-cmp-pairs tried, dominance prunes, barrier wait, worker
/// count). Counter fields are deterministic for a fixed query + options;
/// only the *_ms fields vary run to run (plan_explain_test pins the
/// counters through this rendering).
std::string OptimizeStatsToJson(const OptimizeStats& stats);

/// The full explain document: {"stats": <OptimizeStatsToJson>,
/// "plan": <PlanToJson>}.
std::string ExplainToJson(const OptimizeResult& result, const Catalog& catalog);

}  // namespace eadp

#endif  // EADP_PLANGEN_PLAN_EXPLAIN_H_
