// Plan explanation: Graphviz and machine-readable exports.
//
// ToDot renders a plan as a Graphviz digraph (operators as boxes annotated
// with predicate/grouping, estimated cardinality and accumulated C_out);
// ToJson produces a compact JSON document with the same information for
// downstream tooling.
//
// Invariants: both renderings are pure functions of the plan — no plan
// mutation, and output is deterministic (node identifiers come from a
// preorder walk, never from pointer values), so goldens can be diffed.

#ifndef EADP_PLANGEN_PLAN_EXPLAIN_H_
#define EADP_PLANGEN_PLAN_EXPLAIN_H_

#include <string>

#include "catalog/catalog.h"
#include "plangen/plan.h"

namespace eadp {

/// Graphviz dot rendering of the plan.
std::string PlanToDot(const PlanPtr& plan, const Catalog& catalog);

/// JSON rendering: {"op": ..., "card": ..., "cost": ..., "children": [...]}.
std::string PlanToJson(const PlanPtr& plan, const Catalog& catalog);

}  // namespace eadp

#endif  // EADP_PLANGEN_PLAN_EXPLAIN_H_
