#include "plangen/plangen.h"

#include <algorithm>
#include <chrono>

#include "conflict/conflict_detector.h"
#include "hypergraph/dphyp_enumerator.h"
#include "plangen/dp_table.h"

namespace eadp {

const char* AlgorithmName(Algorithm a) {
  switch (a) {
    case Algorithm::kDphyp:
      return "DPhyp";
    case Algorithm::kEaAll:
      return "EA-All";
    case Algorithm::kEaPrune:
      return "EA-Prune";
    case Algorithm::kH1:
      return "H1";
    case Algorithm::kH2:
      return "H2";
  }
  return "?";
}

namespace {

class Generator {
 public:
  Generator(const Query& query, const OptimizerOptions& options)
      : query_(query),
        options_(options),
        conflicts_(query),
        builder_(&query, &conflicts_, BuilderWithFds(options),
                 std::make_shared<PlanArena>()) {
    dp_.SetDominanceOptions(!options.prune_without_cardinality,
                            !options.prune_without_keys,
                            options.full_fd_dominance);
    // Sized for the worst case (every connected subgraph becomes a class),
    // capped so large queries don't pre-pay for classes the enumeration
    // may never reach — past the cap the table grows geometrically anyway.
    int n = query.NumRelations();
    dp_.Reserve(size_t{1} << std::min(n, 12));
  }

  static BuilderOptions BuilderWithFds(const OptimizerOptions& options) {
    BuilderOptions b = options.builder;
    b.track_fds |= options.full_fd_dominance;
    return b;
  }

  OptimizeResult Run() {
    auto start = std::chrono::steady_clock::now();
    OptimizeResult result;

    RelSet all = query_.AllRelations();
    for (int r : BitsOf(all)) {
      dp_.Append(RelSet::Single(r), builder_.MakeScan(r));
    }

    result.stats.ccp_count = EnumerateCsgCmpPairs(
        conflicts_.hypergraph(),
        [this](RelSet s1, RelSet s2) { OnCcp(s1, s2); });

    if (all.Count() == 1) {
      result.plan = builder_.FinalizeTop(dp_.Best(all));
    } else if (options_.algorithm == Algorithm::kDphyp) {
      // The baseline adds the single top grouping after join ordering.
      PlanPtr joins = dp_.Best(all);
      if (joins) result.plan = builder_.FinalizeTop(joins);
    } else {
      // The eager-aggregation generators finalize at insertion time.
      result.plan = dp_.Best(all);
    }

    result.stats.plans_built = builder_.plans_built();
    result.stats.table_plans = dp_.TotalPlans();
    result.stats.table_classes = dp_.NumClasses();
    result.stats.optimize_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    // Hand the node storage to the caller; the DP table's raw pointers die
    // with this Generator.
    result.arena = builder_.arena();
    return result;
  }

 private:
  void OnCcp(RelSet s1, RelSet s2) {
    CrossingOps crossing = builder_.FindCrossingOps(s1, s2);
    if (!crossing.valid) return;
    RelSet a = crossing.swap ? s2 : s1;
    RelSet b = crossing.swap ? s1 : s2;
    RelSet s = s1.Union(s2);
    bool top = s == query_.AllRelations();

    switch (options_.algorithm) {
      case Algorithm::kDphyp: {
        PlanPtr t1 = dp_.Best(a);
        PlanPtr t2 = dp_.Best(b);
        if (!t1 || !t2) return;
        dp_.InsertIfCheaper(s, builder_.MakeJoin(t1, t2, crossing));
        break;
      }
      case Algorithm::kH1:
      case Algorithm::kH2: {
        PlanPtr t1 = dp_.Best(a);
        PlanPtr t2 = dp_.Best(b);
        if (!t1 || !t2) return;
        trees_.clear();
        builder_.OpTrees(t1, t2, crossing, &trees_);
        for (PlanPtr t : trees_) InsertHeuristic(s, t, top);
        break;
      }
      case Algorithm::kEaAll:
      case Algorithm::kEaPrune: {
        // References stay valid while inserting: the target class `s` is
        // strictly larger than `a` and `b`, and unordered_map rehashing
        // never invalidates references to values (pinned by dp_table_test).
        const std::vector<PlanPtr>& plans_a = dp_.Plans(a);
        const std::vector<PlanPtr>& plans_b = dp_.Plans(b);
        for (PlanPtr t1 : plans_a) {
          for (PlanPtr t2 : plans_b) {
            trees_.clear();
            builder_.OpTrees(t1, t2, crossing, &trees_);
            for (PlanPtr t : trees_) {
              if (top) {
                // InsertTopLevelPlan: single best complete plan.
                dp_.InsertIfCheaper(s, t);
              } else if (options_.algorithm == Algorithm::kEaAll) {
                dp_.Append(s, t);
              } else {
                dp_.InsertPruned(s, t);
              }
            }
          }
        }
        break;
      }
    }
  }

  /// BuildPlansH1 keeps the plain cheapest tree; BuildPlansH2 compares with
  /// eagerness-adjusted costs (CompareAdjustedCosts, Fig. 12).
  void InsertHeuristic(RelSet s, PlanPtr plan, bool top) {
    if (options_.algorithm == Algorithm::kH1) {
      dp_.InsertIfCheaper(s, std::move(plan));
      return;
    }
    PlanPtr old = dp_.Best(s);
    if (!old) {
      dp_.Append(s, std::move(plan));
      return;
    }
    double f = options_.h2_tolerance;
    bool better;
    if (top || plan->Eagerness() == old->Eagerness()) {
      better = plan->cost < old->cost;
    } else if (plan->Eagerness() < old->Eagerness()) {
      better = f * plan->cost < old->cost;
    } else {
      better = plan->cost < f * old->cost;
    }
    if (better) dp_.ReplaceSingle(s, std::move(plan));
  }

  const Query& query_;
  const OptimizerOptions& options_;
  ConflictDetector conflicts_;
  PlanBuilder builder_;
  DpTable dp_;
  /// Scratch list reused across csg-cmp-pairs (OpTrees appends into it) so
  /// the enumeration loop does not allocate per pair.
  std::vector<PlanPtr> trees_;
};

}  // namespace

OptimizeResult Optimize(const Query& query, const OptimizerOptions& options) {
  Generator gen(query, options);
  return gen.Run();
}

}  // namespace eadp
