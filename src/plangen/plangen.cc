#include "plangen/plangen.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <utility>

#include "common/thread_pool.h"
#include "conflict/conflict_detector.h"
#include "hypergraph/dphyp_enumerator.h"
#include "plangen/dp_combine.h"
#include "plangen/dp_table.h"
#include "plangen/large_query.h"
#include "plangen/parallel_dp.h"
#include "plangen/plan_cache.h"
#include "plangen/session.h"

namespace eadp {

const char* AlgorithmName(Algorithm a) {
  switch (a) {
    case Algorithm::kDphyp:
      return "DPhyp";
    case Algorithm::kEaAll:
      return "EA-All";
    case Algorithm::kEaPrune:
      return "EA-Prune";
    case Algorithm::kH1:
      return "H1";
    case Algorithm::kH2:
      return "H2";
    case Algorithm::kGoo:
      return "GOO";
    case Algorithm::kIdp:
      return "IDP";
  }
  return "?";
}

namespace {

class Generator {
 public:
  Generator(const Query& query, const OptimizerOptions& options)
      : query_(query),
        options_(options),
        conflicts_(query),
        builder_(&query, &conflicts_, EffectiveBuilderOptions(options),
                 std::make_shared<PlanArena>()),
        combiner_(&query, &builder_, &dp_, options.algorithm,
                  options.h2_tolerance) {
    dp_.SetDominanceOptions(!options.prune_without_cardinality,
                            !options.prune_without_keys,
                            options.full_fd_dominance);
    // Sized for the worst case (every connected subgraph becomes a class),
    // capped so large queries don't pre-pay for classes the enumeration
    // may never reach — past the cap the table grows geometrically anyway.
    int n = query.NumRelations();
    dp_.Reserve(size_t{1} << std::min(n, 12));
  }

  OptimizeResult Run() {
    auto start = std::chrono::steady_clock::now();
    OptimizeResult result;
    result.stats.algorithm = options_.algorithm;

    RelSet all = query_.AllRelations();
    for (int r : BitsOf(all)) {
      dp_.Append(RelSet::Single(r), builder_.MakeScan(r));
    }

    uint64_t worker_plans_built = 0;
    const int dp_workers = std::max(options_.dp_threads, 1);
    if (dp_workers > 1 && all.Count() >= 3) {
      // Intra-query parallel DP (parallel_dp.h): levels over |S1 ∪ S2|
      // with per-worker shards, cost-identical to the sequential loop
      // below at any worker count. A transient pool is spun up when the
      // caller didn't inject one (FanOut runs worker 0 on this thread, so
      // W workers need W-1 pool slots).
      ThreadPool* pool = options_.dp_pool;
      std::unique_ptr<ThreadPool> local_pool;
      if (pool == nullptr) {
        local_pool = std::make_unique<ThreadPool>(dp_workers - 1);
        pool = local_pool.get();
      }
      std::vector<std::vector<CcpPair>> levels;
      result.stats.ccp_count =
          CollectCsgCmpPairsBySize(conflicts_.hypergraph(), &levels);
      ParallelDp parallel(&query_, &conflicts_, options_, &builder_, &dp_,
                          dp_workers, pool, "w");
      parallel.RunLevels(levels);
      worker_plans_built = parallel.stats().worker_plans_built;
      result.stats.dp_barrier_wait_ms = parallel.stats().barrier_wait_ms;
      result.stats.dp_workers = dp_workers;
    } else {
      result.stats.ccp_count = EnumerateCsgCmpPairs(
          conflicts_.hypergraph(),
          [this](RelSet s1, RelSet s2) { combiner_.Combine(s1, s2); });
    }

    if (all.Count() == 1) {
      result.plan = builder_.FinalizeTop(dp_.Best(all));
    } else if (options_.algorithm == Algorithm::kDphyp) {
      // The baseline adds the single top grouping after join ordering.
      PlanPtr joins = dp_.Best(all);
      if (joins) result.plan = builder_.FinalizeTop(joins);
    } else {
      // The eager-aggregation generators finalize at insertion time.
      result.plan = dp_.Best(all);
    }

    result.stats.plans_built = builder_.plans_built() + worker_plans_built;
    result.stats.table_plans = dp_.TotalPlans();
    result.stats.table_classes = dp_.NumClasses();
    result.stats.pruned_candidates = dp_.pruned_candidates();
    result.stats.pruned_existing = dp_.pruned_existing();
    result.stats.optimize_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    // Hand the node storage to the caller; the DP table's raw pointers die
    // with this Generator.
    result.arena = builder_.arena();
    return result;
  }

 private:
  const Query& query_;
  const OptimizerOptions& options_;
  ConflictDetector conflicts_;
  PlanBuilder builder_;
  DpTable dp_;
  CcpCombiner combiner_;
};

}  // namespace

OptimizeResult Optimize(const Query& query, const OptimizerOptions& options) {
  switch (options.algorithm) {
    case Algorithm::kGoo:
      return OptimizeGreedy(query, options);
    case Algorithm::kIdp:
      return OptimizeIdp(query, options);
    default: {
      Generator gen(query, options);
      return gen.Run();
    }
  }
}

OptimizeResult OptimizeAdaptive(const Query& query,
                                const OptimizerOptions& options) {
  // Shim (see plangen.h): the session's OptimizeImpl is the one cache
  // probe/populate path; a transient session over `options` reproduces the
  // pre-session behavior exactly.
  return PlannerSession(options).Optimize(query);
}

OptimizeResult OptimizeAdaptiveUncached(const Query& query,
                                        const OptimizerOptions& options) {
  if (query.NumRelations() <= options.adaptive_exact_relations) {
    OptimizerOptions exact = options;
    if (!IsExhaustive(exact.algorithm)) exact.algorithm = Algorithm::kEaPrune;
    return Optimize(query, exact);
  }
  // Run both large-query strategies and keep the cheaper plan: kGoo costs
  // O(n^2) crossing probes (single-digit ms at n=100), so racing it against
  // kIdp buys a guaranteed `adaptive <= min(kIdp, kGoo)` cost for free and
  // covers the topologies where bounded subproblems cannot combine at all
  // (e.g. cliques, whose prefix-shaped SES sets defeat group selection).
  // The concurrent variant of this race lives in plangen/parallel.h; both
  // funnel through PickAdaptiveWinner.
  OptimizeResult idp = OptimizeIdp(query, options);
  OptimizeResult goo = OptimizeGreedy(query, options);
  return PickAdaptiveWinner(std::move(idp), std::move(goo));
}

OptimizeResult PickAdaptiveWinner(OptimizeResult idp, OptimizeResult goo) {
  if (idp.plan == nullptr) return goo;
  if (goo.plan == nullptr) return idp;
  bool goo_wins = goo.plan->cost < idp.plan->cost;
  OptimizeResult result = goo_wins ? std::move(goo) : std::move(idp);
  const OptimizeResult& loser = goo_wins ? idp : goo;  // the unmoved one
  // The facade's cost is both runs, not just the winner's.
  result.stats.optimize_ms += loser.stats.optimize_ms;
  result.stats.ccp_count += loser.stats.ccp_count;
  result.stats.plans_built += loser.stats.plans_built;
  return result;
}

}  // namespace eadp
