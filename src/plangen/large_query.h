// Large-query plan generation: greedy operator ordering (GOO) and
// iterative dynamic programming (IDP), the strategies behind the
// OptimizeAdaptive facade (plangen.h).
//
// The exhaustive generators enumerate every csg-cmp-pair of the query
// hypergraph, which hits a wall around 15 relations on dense graphs. The
// classic ways past that wall, reproduced here on top of the existing
// machinery (ConflictDetector, PlanBuilder, DpTable, CcpCombiner):
//
//   OptimizeGreedy (kGoo) — maintains one subplan per partition block
//     ("unit"), starting from the base-relation scans, and repeatedly
//     merges the pair of units whose cheapest OpTrees combination has the
//     lowest cost. Eager-aggregation placement is decided locally per
//     merge: OpTrees offers T1 ◦ T2, Γ(T1) ◦ T2, T1 ◦ Γ(T2), Γ(T1) ◦ Γ(T2)
//     and the greedy step simply takes the cheapest (PlanAggState carries
//     the bookkeeping). Candidate merges are cached per unit pair and only
//     pairs touching the merged unit are re-evaluated, so a full run costs
//     O(n^2) crossing-operator probes. When conflict rules block every
//     remaining pair, the run falls back to the original operator tree —
//     which is always applicable — so kGoo terminates with a valid plan on
//     every satisfiable query.
//
//   OptimizeIdp (kIdp) — IDP1-style iterative DP: greedily selects a
//     connected group of at most OptimizerOptions::idp_block_size units
//     (smallest-cardinality seed, grown by smallest-cardinality adjacent
//     units), runs an exact bounded DP over that group — every split of
//     every unit subset, routed through the same CcpCombiner insertion
//     policies as the exhaustive generators (default kEaPrune, i.e.
//     dominance-pruned plan lists) — and replaces the group by the winning
//     subplan. Repeating until one unit remains stitches the winners into
//     a complete plan. Each subproblem uses a fresh DpTable; losing
//     subproblem plans are dropped wholesale when it dies. See
//     docs/DESIGN.md §8 for the stitching invariants.
//
//   OptimizeOriginal — the plan of the input operator tree itself (no
//     reordering, no eager aggregation, single top grouping). Cheap,
//     always valid; the terminal fallback and the "how bad is no
//     optimization" baseline.
//
// All three return plans that pass plan_validator and execute to the
// canonical result (large_query_test); kGoo/kIdp costs are bounded below
// by the kEaPrune optimum, which the differential tests pin on every
// corpus query small enough to enumerate exhaustively.

#ifndef EADP_PLANGEN_LARGE_QUERY_H_
#define EADP_PLANGEN_LARGE_QUERY_H_

#include "algebra/query.h"
#include "plangen/plangen.h"

namespace eadp {

/// Greedy operator ordering. Never fails on satisfiable queries (falls
/// back to the original tree when greedy merging gets stuck).
OptimizeResult OptimizeGreedy(const Query& query,
                              const OptimizerOptions& options);

/// Iterative DP with bounded exact subproblems. Returns a null plan only
/// when conflict rules leave no unit group combinable (OptimizeAdaptive
/// then falls back to kGoo).
OptimizeResult OptimizeIdp(const Query& query, const OptimizerOptions& options);

/// The unoptimized plan: the query's own operator tree, finalized with the
/// single top grouping. Null only if some original cut admits no operator
/// (cannot happen for queries built from operator trees). There is no
/// Algorithm member for the unoptimized baseline, so
/// `result.stats.algorithm` is left at the caller's `options.algorithm` —
/// callers reporting on it should label the result themselves.
OptimizeResult OptimizeOriginal(const Query& query,
                                const OptimizerOptions& options);

}  // namespace eadp

#endif  // EADP_PLANGEN_LARGE_QUERY_H_
