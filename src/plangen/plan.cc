#include "plangen/plan.h"

#include "common/strings.h"

namespace eadp {

const char* PlanOpName(PlanOp op) {
  switch (op) {
    case PlanOp::kScan:
      return "scan";
    case PlanOp::kJoin:
      return "join";
    case PlanOp::kLeftSemi:
      return "lsemi";
    case PlanOp::kLeftAnti:
      return "lanti";
    case PlanOp::kLeftOuter:
      return "louter";
    case PlanOp::kFullOuter:
      return "fouter";
    case PlanOp::kGroupJoin:
      return "groupjoin";
    case PlanOp::kGroup:
      return "group";
    case PlanOp::kFinalGroup:
      return "final-group";
    case PlanOp::kFinalMap:
      return "final-map";
  }
  return "?";
}

PlanOp PlanOpFromOpKind(OpKind kind) {
  switch (kind) {
    case OpKind::kJoin:
      return PlanOp::kJoin;
    case OpKind::kLeftSemi:
      return PlanOp::kLeftSemi;
    case OpKind::kLeftAnti:
      return PlanOp::kLeftAnti;
    case OpKind::kLeftOuter:
      return PlanOp::kLeftOuter;
    case OpKind::kFullOuter:
      return PlanOp::kFullOuter;
    case OpKind::kGroupJoin:
      return PlanOp::kGroupJoin;
  }
  return PlanOp::kJoin;
}

namespace {

// Shared empties behind the accessors: a null payload pointer reads as an
// empty payload, so consumers never branch on presence.
const CrossingInfo kNoCrossing;
const std::vector<SymbolicDefault> kNoDefaults;
const std::vector<ExecAggregate> kNoAggs;
const FinalMapInfo kNoFinalMap;
const KeySet kNoKeys;
const FdSet kNoFds;
const PlanAggState kNoAggState;

}  // namespace

const std::vector<int>& PlanNode::op_indices() const {
  return (crossing ? *crossing : kNoCrossing).op_indices;
}

const JoinPredicate& PlanNode::predicate() const {
  return (crossing ? *crossing : kNoCrossing).predicate;
}

const AggregateVector& PlanNode::groupjoin_aggs() const {
  return (crossing ? *crossing : kNoCrossing).groupjoin_aggs;
}

const std::vector<SymbolicDefault>& PlanNode::left_defaults() const {
  return left_defaults_ ? *left_defaults_ : kNoDefaults;
}

const std::vector<SymbolicDefault>& PlanNode::right_defaults() const {
  return right_defaults_ ? *right_defaults_ : kNoDefaults;
}

const std::vector<ExecAggregate>& PlanNode::group_aggs() const {
  return group_aggs_ ? *group_aggs_ : kNoAggs;
}

const std::vector<MapExpr>& PlanNode::final_map() const {
  return (final_map_ ? *final_map_ : kNoFinalMap).exprs;
}

const std::vector<std::string>& PlanNode::output_columns() const {
  return (final_map_ ? *final_map_ : kNoFinalMap).output_columns;
}

const KeySet& PlanNode::keys() const { return keys_ ? *keys_ : kNoKeys; }

const FdSet& PlanNode::fds() const { return fds_ ? *fds_ : kNoFds; }

const PlanAggState& PlanNode::agg_state() const {
  return agg_state_ ? *agg_state_ : kNoAggState;
}

std::string PlanNode::ToString(const Catalog& catalog, int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string s = pad + PlanOpName(op);
  if (op == PlanOp::kScan) {
    s += " " + catalog.relation(relation).name;
  } else if (op == PlanOp::kGroup || op == PlanOp::kFinalGroup) {
    s += " by {" + catalog.AttrSetToString(group_by) + "}";
  } else if (IsBinary() && !predicate().empty()) {
    s += " [" + predicate().ToString(catalog) + "]";
  }
  s += StrFormat("  (card=%.6g cost=%.6g)", cardinality, cost);
  s += "\n";
  if (left) s += left->ToString(catalog, indent + 1);
  if (right) s += right->ToString(catalog, indent + 1);
  return s;
}

int PlanNode::NodeCount() const {
  int n = 1;
  if (left) n += left->NodeCount();
  if (right) n += right->NodeCount();
  return n;
}

int PlanNode::PushedGroupingCount() const {
  int n = op == PlanOp::kGroup ? 1 : 0;
  if (left) n += left->PushedGroupingCount();
  if (right) n += right->PushedGroupingCount();
  return n;
}

const KeySet* PlanArena::InternKeys(const KeySet& keys) {
  std::vector<const KeySet*>& bucket = key_interner_[keys.Hash()];
  for (const KeySet* k : bucket) {
    if (*k == keys) return k;
  }
  const KeySet* owned = arena_.New<KeySet>(keys);
  bucket.push_back(owned);
  return owned;
}

}  // namespace eadp
