#include "plangen/plan.h"

#include "common/strings.h"

namespace eadp {

const char* PlanOpName(PlanOp op) {
  switch (op) {
    case PlanOp::kScan:
      return "scan";
    case PlanOp::kJoin:
      return "join";
    case PlanOp::kLeftSemi:
      return "lsemi";
    case PlanOp::kLeftAnti:
      return "lanti";
    case PlanOp::kLeftOuter:
      return "louter";
    case PlanOp::kFullOuter:
      return "fouter";
    case PlanOp::kGroupJoin:
      return "groupjoin";
    case PlanOp::kGroup:
      return "group";
    case PlanOp::kFinalGroup:
      return "final-group";
    case PlanOp::kFinalMap:
      return "final-map";
  }
  return "?";
}

PlanOp PlanOpFromOpKind(OpKind kind) {
  switch (kind) {
    case OpKind::kJoin:
      return PlanOp::kJoin;
    case OpKind::kLeftSemi:
      return PlanOp::kLeftSemi;
    case OpKind::kLeftAnti:
      return PlanOp::kLeftAnti;
    case OpKind::kLeftOuter:
      return PlanOp::kLeftOuter;
    case OpKind::kFullOuter:
      return PlanOp::kFullOuter;
    case OpKind::kGroupJoin:
      return PlanOp::kGroupJoin;
  }
  return PlanOp::kJoin;
}

std::string PlanNode::ToString(const Catalog& catalog, int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string s = pad + PlanOpName(op);
  if (op == PlanOp::kScan) {
    s += " " + catalog.relation(relation).name;
  } else if (op == PlanOp::kGroup || op == PlanOp::kFinalGroup) {
    s += " by {" + catalog.AttrSetToString(group_by) + "}";
  } else if (IsBinary() && !predicate.empty()) {
    s += " [" + predicate.ToString(catalog) + "]";
  }
  s += StrFormat("  (card=%.6g cost=%.6g)", cardinality, cost);
  s += "\n";
  if (left) s += left->ToString(catalog, indent + 1);
  if (right) s += right->ToString(catalog, indent + 1);
  return s;
}

int PlanNode::NodeCount() const {
  int n = 1;
  if (left) n += left->NodeCount();
  if (right) n += right->NodeCount();
  return n;
}

int PlanNode::PushedGroupingCount() const {
  int n = op == PlanOp::kGroup ? 1 : 0;
  if (left) n += left->PushedGroupingCount();
  if (right) n += right->PushedGroupingCount();
  return n;
}

}  // namespace eadp
