// Disk-backed second plan-cache tier: canonical fingerprint -> plan blob.
//
// The PR 5 memory cache (plangen/plan_cache.h) dies with the process, so
// every restart re-pays the full planning warm-up. This tier persists
// encoded plans (plangen/plan_serde.h) in append-only log segments so a
// restarted process re-serves its steady-state working set from disk
// within the first few queries (bench_persistent_cache measures the
// recovery curve).
//
// On-disk layout: a directory of `segment-NNNNNN.log` files. Each segment
// starts with a fixed header (magic + segment-format version); records
// follow back to back (format version 2):
//
//   [u32 crc][u32 key_len][u32 overlay_len][u32 blob_len]
//   [key bytes][overlay bytes][blob bytes]
//
// `key` is the canonical cache-key fingerprint — since PR 9 the
// STRUCTURAL fingerprint with options folded in (the equality witness,
// stored in full so hash collisions can never serve a wrong plan, same
// rule as the memory tier); `overlay` is the AppendOverlay encoding of
// the statistics the plan was built under (empty-overlay encoding for
// byte-keyed callers); `blob` is the EncodePlan output. The crc covers
// the three length words and all three byte ranges, so a torn write
// anywhere in a record is detected as a unit. Version-1 segments (no
// overlay field) are skipped wholesale on open, like any other
// version-skewed segment.
//
// One servable record per key, newest wins: a re-plan under drifted
// statistics appends a new record for the same structural key and the
// index moves to it (the superseded record remains on disk as history
// and re-supersedes naturally on recovery, which scans in append order).
// Duplicate suppression is per (key, overlay): re-Putting the same plan
// under the same statistics is dropped, a Put under new statistics is an
// update.
//
// Crash recovery: Open() scans every segment sequentially and indexes
// records until the first length/CRC violation. A bad tail in the newest
// segment is the signature of a crash mid-append; the file is truncated
// at the last good record so subsequent appends extend a clean log.
// Everything before the torn record still serves bit-identical plans
// (persistent_cache_test pins this). A segment with an unknown
// header version is skipped wholesale — never parsed by guesswork,
// never deleted (a newer-format writer may own it).
//
// Write path: Put() appends through a background writer thread
// (write-behind; Flush() drains and fdatasyncs). The in-memory index is
// updated only *after* a record is fully on disk — between Put and
// append completion the entry is simply not found, which is safe
// (callers replan; duplicate Puts are suppressed). Get() decodes into a
// fresh arena per hit, so served plans share nothing mutable.
//
// Read path: sealed segments (every segment except the active one — they
// are immutable by construction) are mmap'd read-only and served by
// memcpy; the active segment, and any segment whose mmap failed, falls
// back to pread. Maps live until the cache is destroyed, so concurrent
// Gets never race an unmap.
//
// Coherence with the memory tier: both tiers key on the same canonical
// fingerprint; OptimizeThroughCache probes memory first, then disk
// (promoting disk hits into memory), and write-behinds fresh plans into
// both. See DESIGN.md §13.
//
// Thread safety: all public methods are safe to call concurrently.

#ifndef EADP_PLANGEN_PERSISTENT_CACHE_H_
#define EADP_PLANGEN_PERSISTENT_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "plangen/plangen.h"
#include "queries/fingerprint.h"

namespace eadp {

struct PersistentCacheOptions {
  /// Segment directory. Created if missing (one level). Required.
  std::string directory;
  /// Appends roll over to a fresh segment once the active one exceeds
  /// this. Smaller segments bound the blast radius of a torn tail.
  size_t max_segment_bytes = 8u << 20;
  /// true: Put() enqueues to a background writer thread (production —
  /// planning never blocks on disk). false: Put() appends synchronously
  /// before returning (deterministic tests, single-shot tools).
  bool write_behind = true;
};

/// Aggregate counters (Snapshot). hits/misses count Get outcomes; a Get
/// whose stored blob fails to decode (foreign corruption that slipped
/// past the record CRC — in practice only seen in fault-injection tests)
/// counts as decode_failures *and* misses. puts are accepted Put calls;
/// duplicate_puts were suppressed as already present or in flight.
/// torn_records_dropped / skipped_segments describe what Open() refused;
/// io_errors are failed appends (record dropped, cache still serves).
struct PersistentCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t puts = 0;
  uint64_t duplicate_puts = 0;
  uint64_t decode_failures = 0;
  uint64_t appended_records = 0;
  uint64_t torn_records_dropped = 0;
  uint64_t skipped_segments = 0;
  uint64_t io_errors = 0;
  /// Index moves to a newer record for an already-indexed key (a re-plan
  /// under drifted statistics landed).
  uint64_t superseded_records = 0;
  size_t records = 0;        ///< indexed, servable records
  size_t segments = 0;       ///< segment files attached (incl. skipped)
  size_t mmap_segments = 0;  ///< sealed segments served via mmap
  size_t bytes_on_disk = 0;  ///< sum of attached segment file sizes
  /// Which read path served each hit: a hit whose record bytes all came
  /// from a mapped sealed segment counts as mmap_serves; any hit that
  /// touched the pread fallback (active segment, failed map, or a record
  /// straddling the mapped prefix) counts as pread_serves. The two sum to
  /// `hits`. Warm reopened caches serve via mmap (Open maps every sealed
  /// segment; pinned by persistent_cache_test).
  uint64_t mmap_serves = 0;
  uint64_t pread_serves = 0;

  double HitRate() const {
    uint64_t probes = hits + misses;
    return probes == 0 ? 0.0 : static_cast<double>(hits) / probes;
  }
};

class PersistentPlanCache {
 public:
  /// Opens (or creates) the cache under `options.directory`: scans every
  /// segment, truncates a torn tail, builds the index. Returns null and
  /// sets `*error` if the directory cannot be created/read. Recovered
  /// state is visible in Snapshot() immediately.
  static std::unique_ptr<PersistentPlanCache> Open(
      const PersistentCacheOptions& options, std::string* error = nullptr);

  /// Flushes pending writes, fdatasyncs, closes all segments.
  ~PersistentPlanCache();

  PersistentPlanCache(const PersistentPlanCache&) = delete;
  PersistentPlanCache& operator=(const PersistentPlanCache&) = delete;

  /// Probes for `fp` (full canonical-byte comparison against the stored
  /// key, hashes only route). On a hit, decodes the blob into a fresh
  /// arena in `*out`, parses the stored statistics overlay into
  /// `*overlay` (when non-null) and returns true; false on miss or
  /// decode failure. The newest record for the key is served.
  bool Get(const QueryFingerprint& fp, StatsOverlay* overlay,
           OptimizeResult* out);
  bool Get(const QueryFingerprint& fp, OptimizeResult* out) {
    return Get(fp, nullptr, out);
  }

  /// Persists `result` under `fp` with the statistics `overlay` it was
  /// built under (write-behind by default; see options). Suppressed if a
  /// record with an equal key *and* equal overlay is already stored or
  /// queued; an equal key under different statistics appends an updating
  /// record (newest wins). Null plans are accepted — an unsatisfiable
  /// verdict is as expensive to recompute as a plan.
  void Put(const QueryFingerprint& fp, const StatsOverlay& overlay,
           const OptimizeResult& result);
  void Put(const QueryFingerprint& fp, const OptimizeResult& result) {
    Put(fp, StatsOverlay{}, result);
  }

  /// Blocks until every Put accepted so far is on disk (index updated),
  /// then fdatasyncs the active segment. The durability barrier for
  /// handing the directory to another process.
  void Flush();

  PersistentCacheStats Snapshot() const;

  const std::string& directory() const { return options_.directory; }

 private:
  struct Location {
    uint64_t hash2 = 0;
    uint64_t overlay_hash = 0;  ///< duplicate suppression per (key, stats)
    uint32_t segment = 0;  ///< index into segments_
    uint64_t offset = 0;   ///< of the record header (crc word)
    uint32_t key_len = 0;
    uint32_t overlay_len = 0;
    uint32_t blob_len = 0;
  };
  struct Segment {
    uint64_t id = 0;
    int fd = -1;
    uint64_t size = 0;  ///< valid bytes (post tail-truncation)
    bool writable = false;
    /// Read-only mapping of a sealed segment; null = serve via pread.
    void* map = nullptr;
    size_t map_len = 0;
  };
  struct PendingWrite {
    uint64_t hash = 0;
    uint64_t hash2 = 0;
    uint64_t overlay_hash = 0;
    std::string key;
    std::string overlay;  ///< AppendOverlay encoding
    std::string blob;
  };

  explicit PersistentPlanCache(PersistentCacheOptions options)
      : options_(std::move(options)) {}

  /// Scans one attached segment, indexing records and truncating a torn
  /// tail when `is_newest`.
  void RecoverSegment(uint32_t seg_index, bool is_newest);

  /// True iff `hash`/`hash2` with the same overlay is indexed or queued
  /// (the duplicate a Put would be). Caller holds mu_.
  bool ContainsLocked(uint64_t hash, uint64_t hash2,
                      uint64_t overlay_hash) const;

  /// Maps a sealed segment read-only (idempotent; failure leaves the
  /// pread fallback in place). Caller holds mu_.
  void MapSegmentLocked(Segment& seg);

  /// Appends one record to the active segment (rolling over if needed)
  /// and indexes it. Runs on the writer thread, or inline when
  /// write_behind is off.
  void AppendRecord(const PendingWrite& w);

  /// Ensures an active writable segment with room for `record_bytes`.
  /// Returns its index into segments_, or -1 on I/O failure. Caller
  /// holds mu_.
  int EnsureActiveSegmentLocked(size_t record_bytes);

  void WriterLoop();

  PersistentCacheOptions options_;

  mutable std::mutex mu_;
  std::vector<Segment> segments_;
  int active_segment_ = -1;  ///< index into segments_; -1 = none yet
  /// Cache-key hash -> records with that hash (hash2 pre-filters, the
  /// stored key bytes decide).
  std::unordered_map<uint64_t, std::vector<Location>> index_;
  /// (hash2, overlay_hash) of queued-but-unwritten records (duplicate
  /// suppression over the write-behind gap).
  std::unordered_map<uint64_t, std::vector<std::pair<uint64_t, uint64_t>>>
      pending_hashes_;
  PersistentCacheStats stats_;

  // Write-behind machinery.
  std::deque<PendingWrite> queue_;
  std::condition_variable queue_cv_;  ///< signals the writer: work/stop
  std::condition_variable drain_cv_;  ///< signals Flush: queue drained
  size_t in_flight_ = 0;              ///< records popped but not yet indexed
  bool stop_ = false;
  std::thread writer_;
};

/// Renders the combined tier statistics as a JSON object:
/// {"l1": {...}|null, "l2": {...}|null} with hit/miss/promotion counters.
/// Companion to OptimizeStatsToJson for serving-layer introspection.
std::string CacheTierStatsToJson(const PlanCache* l1,
                                 const PersistentPlanCache* l2);

}  // namespace eadp

#endif  // EADP_PLANGEN_PERSISTENT_CACHE_H_
