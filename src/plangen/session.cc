#include "plangen/session.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <future>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "plangen/plan_cache.h"

namespace eadp {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Nearest-rank percentile of an already-sorted sample (q in (0, 1]).
double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  rank = std::clamp<size_t>(rank, 1, sorted.size());
  return sorted[rank - 1];
}

BatchStats AggregateStats(std::vector<double> latencies, double wall_ms,
                          int num_threads) {
  BatchStats stats;
  stats.num_queries = static_cast<int>(latencies.size());
  stats.num_threads = num_threads;
  stats.wall_ms = wall_ms;
  if (wall_ms > 0) {
    stats.queries_per_second =
        static_cast<double>(stats.num_queries) / (wall_ms / 1000.0);
  }
  for (double ms : latencies) stats.total_optimize_ms += ms;
  std::sort(latencies.begin(), latencies.end());
  stats.p50_ms = Percentile(latencies, 0.50);
  stats.p95_ms = Percentile(latencies, 0.95);
  stats.max_ms = latencies.empty() ? 0 : latencies.back();
  return stats;
}

}  // namespace

OptimizeResult PlannerSession::OptimizeImpl(
    const Query& query, const PlanFreshFn& plan_fresh) const {
  if (options_.plan_cache != nullptr || options_.persistent_cache != nullptr) {
    // The one probe/populate path: tiered lookup, drift-band serving,
    // background re-plans; plan_fresh runs on a miss with the context's
    // cache pointers cleared so inner facade calls can't re-probe.
    return OptimizeThroughCache(query, options_, plan_fresh);
  }
  return plan_fresh(query, options_);
}

OptimizeResult PlannerSession::Optimize(const Query& query) const {
  return OptimizeImpl(query, &OptimizeAdaptiveUncached);
}

OptimizeResult PlannerSession::OptimizeConcurrent(const Query& query,
                                                  ThreadPool* race_pool) const {
  return OptimizeImpl(
      query, [race_pool](const Query& q, const OptimizerOptions& o) {
        return OptimizeAdaptiveConcurrentUncached(q, o, race_pool);
      });
}

BatchResult PlannerSession::OptimizeBatch(std::span<const Query> queries,
                                          ThreadPool* pool) const {
  BatchResult batch;
  size_t n = queries.size();
  batch.results.resize(n);
  std::vector<double> latencies(n, 0.0);
  Clock::time_point start = Clock::now();

  auto plan_one = [this, &queries, &batch, &latencies](size_t i) {
    Clock::time_point q_start = Clock::now();
    batch.results[i] = Optimize(queries[i]);
    latencies[i] = MsSince(q_start);
  };

  int threads = 1;
  if (pool == nullptr || pool->num_threads() <= 1) {
    // Sequential reference path: same per-query facade, same order.
    for (size_t i = 0; i < n; ++i) plan_one(i);
  } else {
    threads = pool->num_threads();
    // One task per query; every task writes only its own slot of
    // `results`/`latencies` (sized above, never resized while in flight),
    // so the futures' fan-in is the only synchronization needed.
    std::vector<std::future<void>> futures;
    futures.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      futures.push_back(pool->Submit([&plan_one, i] { plan_one(i); }));
    }
    // Join *every* future before any rethrow: tasks capture this frame's
    // locals, so unwinding while some are still queued or running would
    // leave them executing against a dead frame (the pool's drain-on-
    // destruct guarantees queued tasks run, which here would be UB, and a
    // caller-owned pool would race the unwound stack directly).
    std::exception_ptr first_error;
    for (std::future<void>& f : futures) {
      try {
        f.get();
      } catch (...) {
        if (first_error == nullptr) first_error = std::current_exception();
      }
    }
    if (first_error != nullptr) std::rethrow_exception(first_error);
  }

  batch.stats = AggregateStats(std::move(latencies), MsSince(start), threads);
  for (const OptimizeResult& r : batch.results) {
    if (r.stats.cache_hit) ++batch.stats.cache_hits;
  }
  return batch;
}

BatchResult PlannerSession::OptimizeBatch(std::span<const Query> queries,
                                          int num_threads) const {
  if (num_threads <= 1) return OptimizeBatch(queries, nullptr);
  ThreadPool pool(num_threads);
  return OptimizeBatch(queries, &pool);
}

}  // namespace eadp
