#include "queries/query_generator.h"

#include <cassert>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "queries/random_tree.h"

namespace eadp {

namespace {

/// Per-relation attribute ids assigned by the generator.
struct RelAttrs {
  int join_attr = -1;   ///< "Rk.j"
  int group_attr = -1;  ///< "Rk.g"
  int value_attr = -1;  ///< "Rk.v"
};

/// Relations whose attributes reach the root (right subtrees of semi/anti/
/// group joins are hidden).
RelSet VisibleRelations(const OpTreeNode& node) {
  if (node.is_leaf) return RelSet::Single(node.relation);
  RelSet left = VisibleRelations(*node.left);
  if (LeftOnlyOutput(node.kind)) return left;
  return left.Union(VisibleRelations(*node.right));
}

OpKind PickOperator(const GeneratorOptions& o, Rng& rng) {
  if (o.inner_joins_only) return OpKind::kJoin;
  double weights[6] = {o.w_join,      o.w_left_outer, o.w_full_outer,
                       o.w_left_semi, o.w_left_anti,  o.w_groupjoin};
  switch (rng.PickWeighted(weights, 6)) {
    case 0:
      return OpKind::kJoin;
    case 1:
      return OpKind::kLeftOuter;
    case 2:
      return OpKind::kFullOuter;
    case 3:
      return OpKind::kLeftSemi;
    case 4:
      return OpKind::kLeftAnti;
    default:
      return OpKind::kGroupJoin;
  }
}

double LogUniform(Rng& rng, double lo, double hi) {
  return std::exp(rng.UniformDouble(std::log(lo), std::log(hi)));
}

/// Converts a TreeShape into an operator tree, assigning operators and
/// predicates bottom-up.
std::unique_ptr<OpTreeNode> BuildOperatorTree(
    const TreeShape& shape, const GeneratorOptions& options,
    const Catalog& catalog, const std::vector<RelAttrs>& attrs, Rng& rng) {
  if (shape.is_leaf) return OpTreeNode::Leaf(shape.leaf_index);
  auto left = BuildOperatorTree(*shape.left, options, catalog, attrs, rng);
  auto right = BuildOperatorTree(*shape.right, options, catalog, attrs, rng);

  // Predicate between a random *visible* relation of each subtree —
  // relations hidden below semi/anti/group joins provide no attributes to
  // the operators above them.
  RelSet left_rels = VisibleRelations(*left);
  RelSet right_rels = VisibleRelations(*right);
  auto pick_rel = [&](RelSet rels) {
    std::vector<int> members;
    for (int r : BitsOf(rels)) members.push_back(r);
    return members[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(members.size()) - 1))];
  };
  int rl = pick_rel(left_rels);
  int rr = pick_rel(right_rels);
  JoinPredicate pred;
  pred.AddEquality(attrs[static_cast<size_t>(rl)].join_attr,
                   attrs[static_cast<size_t>(rr)].join_attr);

  OpKind kind = PickOperator(options, rng);
  double d_left = catalog.DistinctOf(attrs[static_cast<size_t>(rl)].join_attr);
  double d_right =
      catalog.DistinctOf(attrs[static_cast<size_t>(rr)].join_attr);
  double selectivity =
      LogUniform(rng, options.sel_jitter_min, options.sel_jitter_max) /
      std::max(d_left, d_right);
  auto node = OpTreeNode::Binary(kind, std::move(left), std::move(right),
                                 std::move(pred), selectivity);
  if (kind == OpKind::kGroupJoin) {
    // F̂ for the groupjoin: count the partners and sum a right-side value.
    AggregateFunction cnt;
    cnt.kind = AggKind::kCountStar;
    node->groupjoin_aggs.push_back(cnt);
    AggregateFunction sum;
    sum.kind = AggKind::kSum;
    sum.arg = attrs[static_cast<size_t>(rr)].value_attr;
    node->groupjoin_aggs.push_back(sum);
  }
  return node;
}

/// Tail of the structured-topology path: random grouping attributes and
/// aggregates over the given per-relation candidate attributes, then
/// FromTree + Canonicalize. `group_attrs`/`value_attrs` are indexed by
/// relation; only visible relations contribute. The random-tree path
/// keeps its own near-identical tail: its draw sequence is pinned by
/// seeded tests and benches and must not change, and it additionally
/// groups by a join attribute with probability 0.25 (Eqv. 42 coverage).
Query FinishQuery(const GeneratorOptions& options, Rng& rng, Catalog catalog,
                  std::unique_ptr<OpTreeNode> root,
                  const std::vector<int>& group_attrs,
                  const std::vector<int>& value_attrs) {
  RelSet visible = VisibleRelations(*root);
  std::vector<int> visible_rels;
  for (int r : BitsOf(visible)) visible_rels.push_back(r);
  auto pick_visible = [&]() {
    return visible_rels[static_cast<size_t>(rng.UniformInt(
        0, static_cast<int64_t>(visible_rels.size()) - 1))];
  };

  AttrSet group_by;
  int num_group = static_cast<int>(rng.UniformInt(
      1, std::min<int64_t>(3, static_cast<int64_t>(visible_rels.size()))));
  for (int i = 0; i < num_group; ++i) {
    group_by.Add(group_attrs[static_cast<size_t>(pick_visible())]);
  }

  AggregateVector aggregates;
  AggregateFunction cnt;
  cnt.output = "cnt";
  cnt.kind = AggKind::kCountStar;
  aggregates.push_back(cnt);
  int num_aggs = static_cast<int>(rng.UniformInt(1, 3));
  for (int i = 0; i < num_aggs; ++i) {
    AggregateFunction f;
    f.output = StrFormat("a%d", i);
    f.arg = value_attrs[static_cast<size_t>(pick_visible())];
    if (rng.Bernoulli(options.distinct_agg_probability)) {
      f.kind = AggKind::kCount;
      f.distinct = true;
    } else if (rng.Bernoulli(options.avg_agg_probability)) {
      f.kind = AggKind::kAvg;
    } else {
      switch (rng.UniformInt(0, 3)) {
        case 0:
          f.kind = AggKind::kSum;
          break;
        case 1:
          f.kind = AggKind::kMin;
          break;
        case 2:
          f.kind = AggKind::kMax;
          break;
        default:
          f.kind = AggKind::kCount;
          break;
      }
    }
    aggregates.push_back(f);
  }

  Query query = Query::FromTree(std::move(catalog), std::move(root), group_by,
                                std::move(aggregates));
  query.Canonicalize();
  return query;
}

/// The structured large-query path: a left-deep tree of inner joins whose
/// predicates form the requested topology. One attribute per relation (it
/// serves as join, grouping and aggregation attribute) keeps 100-relation
/// queries inside the 128-attribute universe, and join-attribute distinct
/// counts stay within a decade of the cardinality so that the chained
/// independence products of 100-way joins cannot overflow a double
/// (|R| * sel <= ~10 per join step).
Query GenerateStructuredQuery(const GeneratorOptions& options, uint64_t seed) {
  Rng rng(seed);
  int n = options.num_relations;
  assert(n >= 2 && n <= 100);

  assert(n * (1 + options.extra_attrs_per_relation) <= kBitsetCapacity &&
         "schema exceeds the 128-attribute universe");

  Catalog catalog;
  std::vector<int> attrs(static_cast<size_t>(n));
  std::vector<int> group_attrs(static_cast<size_t>(n));
  std::vector<int> value_attrs(static_cast<size_t>(n));
  for (int r = 0; r < n; ++r) {
    double card = std::floor(
        LogUniform(rng, options.min_cardinality, options.max_cardinality));
    int rel = catalog.AddRelation(StrFormat("R%d", r), card);
    bool keyed = rng.Bernoulli(options.key_probability);
    double distinct =
        keyed ? card
              : std::max(2.0, std::floor(LogUniform(rng, card / 10, card)));
    attrs[static_cast<size_t>(r)] =
        catalog.AddAttribute(rel, StrFormat("R%d.a", r), distinct);
    if (keyed) {
      catalog.DeclareKey(rel, AttrSet::Single(attrs[static_cast<size_t>(r)]));
    }
    // With no extras the join attribute doubles as grouping and
    // aggregation attribute (historical schema, zero extra RNG draws);
    // extras spread those roles over a wider relation.
    group_attrs[static_cast<size_t>(r)] = attrs[static_cast<size_t>(r)];
    value_attrs[static_cast<size_t>(r)] = attrs[static_cast<size_t>(r)];
    for (int x = 0; x < options.extra_attrs_per_relation; ++x) {
      double extra_distinct =
          std::max(2.0, std::floor(LogUniform(rng, card / 50, card)));
      int a = catalog.AddAttribute(rel, StrFormat("R%d.x%d", r, x),
                                   extra_distinct);
      if (x == 0) group_attrs[static_cast<size_t>(r)] = a;
      value_attrs[static_cast<size_t>(r)] = a;
    }
  }

  auto edge_selectivity = [&](int ra, int rb) {
    double da = catalog.DistinctOf(attrs[static_cast<size_t>(ra)]);
    double db = catalog.DistinctOf(attrs[static_cast<size_t>(rb)]);
    return LogUniform(rng, options.sel_jitter_min, options.sel_jitter_max) /
           std::max(da, db);
  };
  auto add_edge = [&](JoinPredicate* pred, double* sel, int ra, int rb) {
    pred->AddEquality(attrs[static_cast<size_t>(ra)],
                      attrs[static_cast<size_t>(rb)]);
    *sel *= edge_selectivity(ra, rb);
  };
  // Per-edge mode: the edge becomes its own inner-join operator instead
  // of a further conjunct (same RNG draw — one jitter per edge either
  // way, so seeded catalogs and selectivities stay identical).
  auto add_extra_edge = [&](std::vector<ExtraPredicate>* extras, int ra,
                            int rb) {
    ExtraPredicate extra;
    extra.predicate.AddEquality(attrs[static_cast<size_t>(ra)],
                                attrs[static_cast<size_t>(rb)]);
    extra.selectivity = edge_selectivity(ra, rb);
    extras->push_back(std::move(extra));
  };
  assert((!options.per_edge_predicates ||
          options.topology != QueryTopology::kClique || n <= 16) &&
         "per-edge clique: n(n-1)/2 operators must fit the 128-operator "
         "universe");

  std::unique_ptr<OpTreeNode> root = OpTreeNode::Leaf(0);
  for (int i = 1; i < n; ++i) {
    JoinPredicate pred;
    double sel = 1.0;
    std::vector<ExtraPredicate> extras;
    switch (options.topology) {
      case QueryTopology::kChain:
        add_edge(&pred, &sel, i - 1, i);
        break;
      case QueryTopology::kStar:
        add_edge(&pred, &sel, 0, i);
        break;
      case QueryTopology::kCycle:
        add_edge(&pred, &sel, i - 1, i);
        // The last operator also carries the cycle-closing equality (a
        // 2-cycle would duplicate the chain edge — stays a chain).
        if (i == n - 1 && n > 2) {
          if (options.per_edge_predicates) {
            add_extra_edge(&extras, 0, i);
          } else {
            add_edge(&pred, &sel, 0, i);
          }
        }
        break;
      case QueryTopology::kClique:
        for (int j = 0; j < i; ++j) {
          if (options.per_edge_predicates && j > 0) {
            add_extra_edge(&extras, j, i);
          } else {
            add_edge(&pred, &sel, j, i);
          }
        }
        break;
      case QueryTopology::kSnowflake:
        // 3-ary fact/dimension hierarchy rooted at R0: each relation
        // joins its parent, which the left-deep build has already placed.
        add_edge(&pred, &sel, (i - 1) / 3, i);
        break;
      case QueryTopology::kRandomTree:
        assert(false && "structured path called with kRandomTree");
        break;
    }
    auto node = OpTreeNode::Binary(OpKind::kJoin, std::move(root),
                                   OpTreeNode::Leaf(i), std::move(pred), sel);
    node->extra_predicates = std::move(extras);
    root = std::move(node);
  }

  return FinishQuery(options, rng, std::move(catalog), std::move(root),
                     group_attrs, value_attrs);
}

}  // namespace

const char* TopologyName(QueryTopology t) {
  switch (t) {
    case QueryTopology::kRandomTree:
      return "random-tree";
    case QueryTopology::kChain:
      return "chain";
    case QueryTopology::kStar:
      return "star";
    case QueryTopology::kCycle:
      return "cycle";
    case QueryTopology::kClique:
      return "clique";
    case QueryTopology::kSnowflake:
      return "snowflake";
  }
  return "?";
}

GeneratorOptions OuterHeavyOptions(int num_relations) {
  GeneratorOptions o;
  o.num_relations = num_relations;
  o.topology = QueryTopology::kRandomTree;
  o.w_join = 0.15;
  o.w_left_outer = 0.25;
  o.w_full_outer = 0.20;
  o.w_left_semi = 0.10;
  o.w_left_anti = 0.10;
  o.w_groupjoin = 0.20;
  return o;
}

GeneratorOptions ManyAttributeOptions(QueryTopology topology,
                                      int num_relations) {
  assert(topology != QueryTopology::kRandomTree &&
         "many-attribute preset applies to the structured topologies");
  assert(num_relations <= 32);
  GeneratorOptions o;
  o.num_relations = num_relations;
  o.topology = topology;
  o.extra_attrs_per_relation = 3;
  return o;
}

Query GenerateRandomQuery(const GeneratorOptions& options, uint64_t seed) {
  if (options.topology != QueryTopology::kRandomTree) {
    return GenerateStructuredQuery(options, seed);
  }
  Rng rng(seed);
  int n = options.num_relations;
  assert(n >= 2 && n <= 20);

  Catalog catalog;
  std::vector<RelAttrs> attrs(static_cast<size_t>(n));
  for (int r = 0; r < n; ++r) {
    double card = std::floor(
        LogUniform(rng, options.min_cardinality, options.max_cardinality));
    int rel = catalog.AddRelation(StrFormat("R%d", r), card);
    RelAttrs& a = attrs[static_cast<size_t>(r)];
    bool keyed = rng.Bernoulli(options.key_probability);
    // Join attributes are fairly distinct (foreign-key-like fanouts of a
    // few); grouping attributes collapse by a modest factor. Aggressive
    // collapse factors make the DPhyp-vs-EA gap astronomically large; these
    // ranges reproduce the paper's moderate growth (Fig. 15).
    double join_distinct =
        keyed ? card
              : std::max(2.0, std::floor(LogUniform(rng, card / 50, card)));
    double group_distinct =
        std::max(2.0, std::floor(LogUniform(rng, card / 50, card)));
    a.join_attr =
        catalog.AddAttribute(rel, StrFormat("R%d.j", r), join_distinct);
    a.group_attr =
        catalog.AddAttribute(rel, StrFormat("R%d.g", r), group_distinct);
    a.value_attr = catalog.AddAttribute(rel, StrFormat("R%d.v", r),
                                        std::max(2.0, card / 2));
    if (keyed) {
      catalog.DeclareKey(rel, AttrSet::Single(a.join_attr));
    }
  }

  uint64_t shapes = NumBinaryTrees(n);
  uint64_t rank = static_cast<uint64_t>(
      rng.UniformInt(0, static_cast<int64_t>(shapes - 1)));
  std::unique_ptr<TreeShape> shape = UnrankBinaryTree(n, rank);
  std::unique_ptr<OpTreeNode> root =
      BuildOperatorTree(*shape, options, catalog, attrs, rng);

  // Grouping attributes and aggregates reference visible relations only.
  RelSet visible = VisibleRelations(*root);
  std::vector<int> visible_rels;
  for (int r : BitsOf(visible)) visible_rels.push_back(r);
  auto pick_visible = [&]() {
    return visible_rels[static_cast<size_t>(rng.UniformInt(
        0, static_cast<int64_t>(visible_rels.size()) - 1))];
  };

  AttrSet group_by;
  int num_group = static_cast<int>(rng.UniformInt(
      1, std::min<int64_t>(3, static_cast<int64_t>(visible_rels.size()))));
  for (int i = 0; i < num_group; ++i) {
    group_by.Add(attrs[static_cast<size_t>(pick_visible())].group_attr);
  }
  // Occasionally group by a join attribute as well: when it is (or
  // becomes, through a pushed grouping) a key of a duplicate-free result,
  // the top grouping can be eliminated (Eqv. 42).
  if (rng.Bernoulli(0.25)) {
    group_by.Add(attrs[static_cast<size_t>(pick_visible())].join_attr);
  }

  AggregateVector aggregates;
  AggregateFunction cnt;
  cnt.output = "cnt";
  cnt.kind = AggKind::kCountStar;
  aggregates.push_back(cnt);
  int num_aggs = static_cast<int>(rng.UniformInt(1, 3));
  for (int i = 0; i < num_aggs; ++i) {
    AggregateFunction f;
    f.output = StrFormat("a%d", i);
    f.arg = attrs[static_cast<size_t>(pick_visible())].value_attr;
    if (rng.Bernoulli(options.distinct_agg_probability)) {
      f.kind = AggKind::kCount;
      f.distinct = true;
    } else if (rng.Bernoulli(options.avg_agg_probability)) {
      f.kind = AggKind::kAvg;
    } else {
      switch (rng.UniformInt(0, 3)) {
        case 0:
          f.kind = AggKind::kSum;
          break;
        case 1:
          f.kind = AggKind::kMin;
          break;
        case 2:
          f.kind = AggKind::kMax;
          break;
        default:
          f.kind = AggKind::kCount;
          break;
      }
    }
    aggregates.push_back(f);
  }

  Query query = Query::FromTree(std::move(catalog), std::move(root), group_by,
                                std::move(aggregates));
  query.Canonicalize();
  return query;
}

}  // namespace eadp
