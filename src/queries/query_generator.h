// Random query workload generator (paper Sec. 5).
//
// Reproduces the evaluation workload: random binary operator trees
// (unranked uniformly), random operators on the internal nodes, random
// equality join predicates, random grouping attributes, and random
// cardinalities and selectivities. Every relation carries a join attribute,
// a grouping attribute and a value attribute; aggregates draw from
// count(*), sum, min, max, count, avg and occasionally non-decomposable
// count(distinct) — the latter exercises the Valid-test rejections.

#ifndef EADP_QUERIES_QUERY_GENERATOR_H_
#define EADP_QUERIES_QUERY_GENERATOR_H_

#include <cstdint>

#include "algebra/query.h"

namespace eadp {

/// Shape of the generated query graph.
///
///   kRandomTree — the paper's workload: unranked uniform binary operator
///                 trees with a random operator mix (2..20 relations).
///   kChain/kStar/kCycle/kClique/kSnowflake — structured large-query
///                 topologies (inner joins only, one join attribute per
///                 relation) used by the large-query subsystem; up to 100
///                 relations. The topology names the *predicate* structure:
///                 a chain links consecutive relations, a star links every
///                 relation to R0, a cycle closes the chain with an
///                 R0 = R_{n-1} equality on the last operator, a clique
///                 carries all n(n-1)/2 pairwise equalities (operator i
///                 conjoins the i equalities linking R_i to every earlier
///                 relation), and a snowflake links R_i to its parent
///                 R_{(i-1)/3} — a 3-ary fact/dimension hierarchy, the
///                 star-with-branches shape of warehouse schemas.
enum class QueryTopology {
  kRandomTree,
  kChain,
  kStar,
  kCycle,
  kClique,
  kSnowflake,
};

const char* TopologyName(QueryTopology t);

struct GeneratorOptions {
  int num_relations = 5;

  /// Query-graph shape; the structured topologies ignore the operator mix
  /// (inner joins only) and the per-relation group/value attributes (each
  /// relation carries a single attribute so that 100-relation queries fit
  /// the 128-attribute universe).
  QueryTopology topology = QueryTopology::kRandomTree;

  /// Operator mix (weights; normalized internally).
  double w_join = 0.60;
  double w_left_outer = 0.14;
  double w_full_outer = 0.10;
  double w_left_semi = 0.06;
  double w_left_anti = 0.05;
  double w_groupjoin = 0.05;

  /// Base relation cardinalities drawn log-uniformly from this range.
  double min_cardinality = 10;
  double max_cardinality = 100000;

  /// Predicate selectivity for R.a = S.b is jitter / max(d(a), d(b)) with
  /// the jitter drawn log-uniformly from this range. Keeping the jitter at
  /// most 1 keeps selectivities consistent with distinct counts and key
  /// declarations (an equality can never retain more than one partner per
  /// distinct value of the larger side), which in turn keeps cardinality
  /// estimates consistent across join orders — a prerequisite for the
  /// optimality of dominance pruning (see DESIGN.md §5).
  double sel_jitter_min = 0.3;
  double sel_jitter_max = 1.0;

  /// Probability that a relation declares its join attribute as key.
  double key_probability = 0.5;

  /// Probability of a count(distinct v) aggregate (non-decomposable).
  double distinct_agg_probability = 0.10;
  /// Probability of an avg aggregate (canonicalized by the optimizer).
  double avg_agg_probability = 0.10;

  /// Inner joins only (baseline workloads / sanity checks).
  bool inner_joins_only = false;

  /// Structured topologies only: extra non-join attributes per relation
  /// ("Rk.x0", "Rk.x1", ...) that become grouping/aggregation candidates.
  /// The default of 0 keeps the historical one-attribute-per-relation
  /// schema *and* the historical RNG draw sequence (seeded workloads are
  /// pinned by tests and benches); n·(1 + extra) must stay within the
  /// 128-attribute universe.
  int extra_attrs_per_relation = 0;

  /// Structured topologies only: emit one *operator* per predicate edge
  /// instead of conjoining a relation's edges into its tree operator.
  /// Affects kClique (operator i historically conjoins all i equalities
  /// linking R_i to the prefix, which welds the hypergraph into a
  /// left-deep prefix chain — the enumerator never sees the dense graph)
  /// and kCycle's closing edge. With this on, every equality becomes its
  /// own inner-join operator (OpTreeNode::extra_predicates), so a clique
  /// query carries n(n-1)/2 single-equality hyperedges and enumerates
  /// densely. RNG draw order, catalog and selectivity product are
  /// unchanged — only the operator structure differs. A per-edge clique
  /// requires n <= 16 (n(n-1)/2 operators must fit the 128-operator
  /// bitset universe).
  bool per_edge_predicates = false;
};

/// Preset: a random-tree workload whose operator mix is dominated by outer
/// joins and groupjoins — the mix where the conflict detector, the default
/// vectors of generalized outer joins, and the adaptive facade's fallbacks
/// are actually exercised (the default mix is ~84% inner/outer join).
GeneratorOptions OuterHeavyOptions(int num_relations);

/// Preset: a structured topology with `extra_attrs_per_relation = 3`, so
/// grouping sets and aggregation vectors draw from wide schemas instead of
/// the single shared attribute. Requires num_relations <= 32 (4 attributes
/// per relation in a 128-attribute universe).
GeneratorOptions ManyAttributeOptions(QueryTopology topology,
                                      int num_relations);

/// Generates a random query; deterministic in (options, seed). The result
/// is already canonicalized (avg split into sum/countNN). Random trees
/// support 2..20 relations, the structured topologies 2..100.
Query GenerateRandomQuery(const GeneratorOptions& options, uint64_t seed);

}  // namespace eadp

#endif  // EADP_QUERIES_QUERY_GENERATOR_H_
