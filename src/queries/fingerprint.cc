#include "queries/fingerprint.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/hash.h"

namespace eadp {

namespace {

void WriteAggs(CanonicalWriter& w, const AggregateVector& aggs) {
  w.U32(static_cast<uint32_t>(aggs.size()));
  for (const AggregateFunction& f : aggs) {
    w.U8(static_cast<uint8_t>(f.kind));
    w.I32(f.arg);
    w.U8(f.distinct ? 1 : 0);
    // Output labels name the result schema the query asked for; see the
    // header for why they are fingerprinted (unlike relation names).
    w.Str(f.output);
  }
}

}  // namespace

void RehashFingerprint(QueryFingerprint* fp) {
  fp->hash = HashBytes(fp->canonical.data(), fp->canonical.size(),
                       /*seed=*/0x243f6a8885a308d3ull);
  fp->hash2 = HashBytes(fp->canonical.data(), fp->canonical.size(),
                        /*seed=*/0x13198a2e03707344ull);
}

QueryFingerprint FingerprintQuery(const Query& query) {
  QueryFingerprint fp = FingerprintQueryUnhashed(query);
  RehashFingerprint(&fp);
  return fp;
}

QueryFingerprint FingerprintQueryUnhashed(const Query& query) {
  QueryFingerprint fp;
  // Typical canonical forms are a few hundred bytes (one 100-relation
  // clique reaches ~60 KiB through its n(n-1)/2 predicate equalities);
  // reserving avoids the early doubling steps.
  fp.canonical.reserve(256);
  CanonicalWriter w(&fp.canonical);

  w.U8(1);  // serialization version

  // --- Catalog: statistics and key structure, no names. ---
  const Catalog& catalog = query.catalog();
  w.U32(static_cast<uint32_t>(catalog.num_relations()));
  w.U32(static_cast<uint32_t>(catalog.num_attributes()));
  for (int r = 0; r < catalog.num_relations(); ++r) {
    const RelationDef& rel = catalog.relation(r);
    w.F64(rel.cardinality);
    w.U8(rel.duplicate_free ? 1 : 0);
    w.Set(rel.attributes);
    // Keys in declaration-order-insensitive form: the set of keys is what
    // the key machinery consumes, not the order they were declared in.
    std::vector<AttrSet> keys = rel.keys;
    std::sort(keys.begin(), keys.end());
    w.U32(static_cast<uint32_t>(keys.size()));
    for (AttrSet key : keys) w.Set(key);
  }
  for (int a = 0; a < catalog.num_attributes(); ++a) {
    const AttributeDef& attr = catalog.attribute(a);
    w.I32(attr.relation);
    w.F64(attr.distinct);
  }

  // --- Top grouping and aggregation vector. ---
  w.Set(query.group_by());
  WriteAggs(w, query.aggregates());
  w.U32(static_cast<uint32_t>(query.final_divisions().size()));
  for (const FinalDivision& div : query.final_divisions()) {
    w.Str(div.output);
    w.I32(div.numerator_slot);
    w.I32(div.denominator_slot);
  }

  // --- Flattened operators: topology, kinds, predicates. ---
  // left_rels/right_rels are the original subtree relation sets, which
  // together with the flattening order encode the input tree's shape —
  // exactly the structure the conflict detector derives its reorderability
  // rules from.
  w.U32(static_cast<uint32_t>(query.ops().size()));
  for (const QueryOp& op : query.ops()) {
    w.U8(static_cast<uint8_t>(op.kind));
    w.F64(op.selectivity);
    w.Set(op.left_rels);
    w.Set(op.right_rels);
    w.U32(static_cast<uint32_t>(op.predicate.equalities().size()));
    for (const AttrEquality& eq : op.predicate.equalities()) {
      w.I32(eq.left_attr);
      w.I32(eq.right_attr);
    }
    WriteAggs(w, op.groupjoin_aggs);
  }
  return fp;
}

}  // namespace eadp
