#include "queries/fingerprint.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/hash.h"

namespace eadp {

namespace {

/// First byte of a canonical overlay serialization. Distinct from the
/// structural version byte (2), the options-block marker (0xfe,
/// plan_cache.cc) and the synthetic-test prefix (0xff), so every composed
/// key region is self-identifying.
constexpr uint8_t kOverlayMarker = 0xfd;

void WriteAggs(CanonicalWriter& w, const AggregateVector& aggs) {
  w.U32(static_cast<uint32_t>(aggs.size()));
  for (const AggregateFunction& f : aggs) {
    w.U8(static_cast<uint8_t>(f.kind));
    w.I32(f.arg);
    w.U8(f.distinct ? 1 : 0);
    // Output labels name the result schema the query asked for; see the
    // header for why they are fingerprinted (unlike relation names).
    w.Str(f.output);
  }
}

/// Bitwise equality of two double vectors (the statistic comparison:
/// the fingerprint distinguishes every value the cost model can, so the
/// drift test must too).
bool BitsEqual(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  return a.empty() ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

}  // namespace

void RehashFingerprint(QueryFingerprint* fp) {
  fp->hash = HashBytes(fp->canonical.data(), fp->canonical.size(),
                       /*seed=*/0x243f6a8885a308d3ull);
  fp->hash2 = HashBytes(fp->canonical.data(), fp->canonical.size(),
                        /*seed=*/0x13198a2e03707344ull);
}

SplitFingerprint FingerprintQuerySplitUnhashed(const Query& query) {
  SplitFingerprint split;
  QueryFingerprint& fp = split.structural;
  StatsOverlay& overlay = split.overlay;
  // Typical canonical forms are a few hundred bytes (one 100-relation
  // clique reaches ~60 KiB through its n(n-1)/2 predicate equalities);
  // reserving avoids the early doubling steps.
  fp.canonical.reserve(256);
  CanonicalWriter w(&fp.canonical);

  w.U8(2);  // structural serialization version (1 = pre-split combined)

  // --- Catalog: shape and key structure, no names, no statistics. ---
  const Catalog& catalog = query.catalog();
  overlay.catalog_id = catalog.catalog_id();
  overlay.stats_epoch = catalog.stats_epoch();
  w.U32(static_cast<uint32_t>(catalog.num_relations()));
  w.U32(static_cast<uint32_t>(catalog.num_attributes()));
  overlay.rel_cardinality.reserve(catalog.num_relations());
  for (int r = 0; r < catalog.num_relations(); ++r) {
    const RelationDef& rel = catalog.relation(r);
    overlay.rel_cardinality.push_back(rel.cardinality);
    w.U8(rel.duplicate_free ? 1 : 0);
    w.Set(rel.attributes);
    // Keys in declaration-order-insensitive form: the set of keys is what
    // the key machinery consumes, not the order they were declared in.
    std::vector<AttrSet> keys = rel.keys;
    std::sort(keys.begin(), keys.end());
    w.U32(static_cast<uint32_t>(keys.size()));
    for (AttrSet key : keys) w.Set(key);
  }
  overlay.attr_distinct.reserve(catalog.num_attributes());
  for (int a = 0; a < catalog.num_attributes(); ++a) {
    const AttributeDef& attr = catalog.attribute(a);
    overlay.attr_distinct.push_back(attr.distinct);
    w.I32(attr.relation);
  }

  // --- Top grouping and aggregation vector. ---
  w.Set(query.group_by());
  WriteAggs(w, query.aggregates());
  w.U32(static_cast<uint32_t>(query.final_divisions().size()));
  for (const FinalDivision& div : query.final_divisions()) {
    w.Str(div.output);
    w.I32(div.numerator_slot);
    w.I32(div.denominator_slot);
  }

  // --- Flattened operators: topology, kinds, predicates. ---
  // left_rels/right_rels are the original subtree relation sets, which
  // together with the flattening order encode the input tree's shape —
  // exactly the structure the conflict detector derives its reorderability
  // rules from.
  w.U32(static_cast<uint32_t>(query.ops().size()));
  overlay.op_selectivity.reserve(query.ops().size());
  for (const QueryOp& op : query.ops()) {
    overlay.op_selectivity.push_back(op.selectivity);
    w.U8(static_cast<uint8_t>(op.kind));
    w.Set(op.left_rels);
    w.Set(op.right_rels);
    w.U32(static_cast<uint32_t>(op.predicate.equalities().size()));
    for (const AttrEquality& eq : op.predicate.equalities()) {
      w.I32(eq.left_attr);
      w.I32(eq.right_attr);
    }
    WriteAggs(w, op.groupjoin_aggs);
  }
  return split;
}

SplitFingerprint FingerprintQuerySplit(const Query& query) {
  SplitFingerprint split = FingerprintQuerySplitUnhashed(query);
  RehashFingerprint(&split.structural);
  return split;
}

void AppendOverlay(const StatsOverlay& overlay, std::string* out) {
  CanonicalWriter w(out);
  w.U8(kOverlayMarker);
  w.U32(static_cast<uint32_t>(overlay.rel_cardinality.size()));
  for (double v : overlay.rel_cardinality) w.F64(v);
  w.U32(static_cast<uint32_t>(overlay.attr_distinct.size()));
  for (double v : overlay.attr_distinct) w.F64(v);
  w.U32(static_cast<uint32_t>(overlay.op_selectivity.size()));
  for (double v : overlay.op_selectivity) w.F64(v);
}

bool ParseOverlay(std::string_view bytes, StatsOverlay* out) {
  size_t pos = 0;
  auto read_u32 = [&](uint32_t* v) {
    if (bytes.size() - pos < sizeof(*v)) return false;
    std::memcpy(v, bytes.data() + pos, sizeof(*v));
    pos += sizeof(*v);
    return true;
  };
  auto read_f64s = [&](std::vector<double>* vec) {
    uint32_t n = 0;
    if (!read_u32(&n)) return false;
    if ((bytes.size() - pos) / sizeof(double) < n) return false;
    vec->resize(n);
    if (n > 0) std::memcpy(vec->data(), bytes.data() + pos, n * sizeof(double));
    pos += n * sizeof(double);
    return true;
  };
  if (bytes.empty() || static_cast<uint8_t>(bytes[0]) != kOverlayMarker) {
    return false;
  }
  pos = 1;
  StatsOverlay parsed;
  if (!read_f64s(&parsed.rel_cardinality) ||
      !read_f64s(&parsed.attr_distinct) ||
      !read_f64s(&parsed.op_selectivity) || pos != bytes.size()) {
    return false;
  }
  *out = std::move(parsed);
  return true;
}

bool SameStats(const StatsOverlay& a, const StatsOverlay& b) {
  // Selectivities live on the query's operators, not the catalog, so the
  // epoch hint says nothing about them: always compare.
  if (!BitsEqual(a.op_selectivity, b.op_selectivity)) return false;
  if (a.catalog_id != 0 && a.catalog_id == b.catalog_id &&
      a.stats_epoch == b.stats_epoch) {
    // Same catalog instance at the same epoch: the mutator contract says
    // the catalog statistics cannot have changed. Shapes still must agree
    // (same structural class implies they do).
    return a.rel_cardinality.size() == b.rel_cardinality.size() &&
           a.attr_distinct.size() == b.attr_distinct.size();
  }
  return BitsEqual(a.rel_cardinality, b.rel_cardinality) &&
         BitsEqual(a.attr_distinct, b.attr_distinct);
}

uint64_t OverlayHash(const StatsOverlay& overlay) {
  std::string bytes;
  bytes.reserve(13 + 8 * (overlay.rel_cardinality.size() +
                          overlay.attr_distinct.size() +
                          overlay.op_selectivity.size()));
  AppendOverlay(overlay, &bytes);
  return HashBytes(bytes.data(), bytes.size(),
                   /*seed=*/0xa4093822299f31d0ull);
}

QueryFingerprint ComposeFingerprint(const QueryFingerprint& structural,
                                    const StatsOverlay& overlay) {
  QueryFingerprint fp;
  fp.canonical = structural.canonical;
  AppendOverlay(overlay, &fp.canonical);
  RehashFingerprint(&fp);
  return fp;
}

QueryFingerprint FingerprintQuery(const Query& query) {
  QueryFingerprint fp = FingerprintQueryUnhashed(query);
  RehashFingerprint(&fp);
  return fp;
}

QueryFingerprint FingerprintQueryUnhashed(const Query& query) {
  SplitFingerprint split = FingerprintQuerySplitUnhashed(query);
  QueryFingerprint fp = std::move(split.structural);
  AppendOverlay(split.overlay, &fp.canonical);
  return fp;
}

}  // namespace eadp
