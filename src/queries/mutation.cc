#include "queries/mutation.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/strings.h"
#include "queries/fingerprint.h"
#include "queries/tpch.h"

namespace eadp {

namespace {

/// Relations whose attributes reach the top of `node`'s subtree (right
/// subtrees of semi/anti/group joins are hidden above the operator). Same
/// rule Query::FromTree applies to the flattened form.
RelSet VisibleRels(const OpTreeNode& node) {
  if (node.is_leaf) return RelSet::Single(node.relation);
  RelSet left = VisibleRels(*node.left);
  if (LeftOnlyOutput(node.kind)) return left;
  return left.Union(VisibleRels(*node.right));
}

void CollectInternal(OpTreeNode* node, std::vector<OpTreeNode*>* out) {
  if (node == nullptr || node->is_leaf) return;
  out->push_back(node);
  CollectInternal(node->left.get(), out);
  CollectInternal(node->right.get(), out);
}

/// Every owning slot holding an internal node, root slot included —
/// rotations replace the subtree a slot owns.
void CollectInternalSlots(std::unique_ptr<OpTreeNode>* slot,
                          std::vector<std::unique_ptr<OpTreeNode>*>* out) {
  if (*slot == nullptr || (*slot)->is_leaf) return;
  out->push_back(slot);
  CollectInternalSlots(&(*slot)->left, out);
  CollectInternalSlots(&(*slot)->right, out);
}

int PickAttr(AttrSet attrs, Rng* rng) {
  std::vector<int> members;
  for (int a : BitsOf(attrs)) members.push_back(a);
  if (members.empty()) return -1;
  return members[static_cast<size_t>(
      rng->UniformInt(0, static_cast<int64_t>(members.size()) - 1))];
}

double LogUniform(Rng* rng, double lo, double hi) {
  return std::exp(rng->UniformDouble(std::log(lo), std::log(hi)));
}

/// Re-orients every equality so that left_attr comes from the left
/// subtree's visible relations and right_attr from the right's — the
/// convention the generator establishes and CheckSpecValid enforces.
/// Structural mutations (rotations, child swaps) break the orientation;
/// this repairs it where possible. False when some equality references an
/// attribute no longer available on either side (the mutation must then
/// be rejected).
bool NormalizePredicates(const Catalog& catalog, OpTreeNode* node) {
  if (node == nullptr || node->is_leaf) return true;
  if (!NormalizePredicates(catalog, node->left.get())) return false;
  if (!NormalizePredicates(catalog, node->right.get())) return false;
  AttrSet left = catalog.AttributesOf(VisibleRels(*node->left));
  AttrSet right = catalog.AttributesOf(VisibleRels(*node->right));
  std::vector<AttrEquality> eqs = node->predicate.equalities();
  for (AttrEquality& eq : eqs) {
    if (eq.left_attr < 0 || eq.right_attr < 0) return false;
    if (left.Contains(eq.left_attr) && right.Contains(eq.right_attr)) continue;
    if (left.Contains(eq.right_attr) && right.Contains(eq.left_attr)) {
      std::swap(eq.left_attr, eq.right_attr);
      continue;
    }
    return false;
  }
  node->predicate = JoinPredicate(std::move(eqs));
  return true;
}

// ---------------------------------------------------------------------------
// Operator implementations. Each edits the spec freely; ApplyMutation owns
// the clone-validate-or-discard protocol, so rejection here just means
// returning false at any point.
// ---------------------------------------------------------------------------

OpTreeNode* PickInternal(QuerySpec* spec, Rng* rng,
                         bool (*candidate)(const OpTreeNode&)) {
  std::vector<OpTreeNode*> nodes;
  CollectInternal(spec->root.get(), &nodes);
  std::vector<OpTreeNode*> matching;
  for (OpTreeNode* n : nodes) {
    if (candidate(*n)) matching.push_back(n);
  }
  if (matching.empty()) return nullptr;
  return matching[static_cast<size_t>(
      rng->UniformInt(0, static_cast<int64_t>(matching.size()) - 1))];
}

bool SwapJoinKind(QuerySpec* spec, Rng* rng) {
  OpTreeNode* node = PickInternal(spec, rng, [](const OpTreeNode& n) {
    return n.kind == OpKind::kJoin || n.kind == OpKind::kLeftOuter ||
           n.kind == OpKind::kFullOuter;
  });
  if (node == nullptr) return false;
  OpKind all[3] = {OpKind::kJoin, OpKind::kLeftOuter, OpKind::kFullOuter};
  OpKind others[2];
  int k = 0;
  for (OpKind kind : all) {
    if (kind != node->kind) others[k++] = kind;
  }
  node->kind = others[rng->UniformInt(0, 1)];
  return true;
}

bool ToggleSemiAnti(QuerySpec* spec, Rng* rng) {
  OpTreeNode* node = PickInternal(spec, rng, [](const OpTreeNode& n) {
    return n.kind == OpKind::kLeftSemi || n.kind == OpKind::kLeftAnti;
  });
  if (node == nullptr) return false;
  node->kind = node->kind == OpKind::kLeftSemi ? OpKind::kLeftAnti
                                               : OpKind::kLeftSemi;
  return true;
}

bool ToggleGroupJoin(QuerySpec* spec, Rng* rng) {
  OpTreeNode* node = PickInternal(spec, rng, [](const OpTreeNode& n) {
    return n.kind == OpKind::kJoin || n.kind == OpKind::kGroupJoin;
  });
  if (node == nullptr) return false;
  if (node->kind == OpKind::kGroupJoin) {
    node->kind = OpKind::kJoin;
    node->groupjoin_aggs.clear();
    return true;
  }
  node->kind = OpKind::kGroupJoin;
  AggregateFunction cnt;
  cnt.kind = AggKind::kCountStar;
  node->groupjoin_aggs.push_back(cnt);
  int arg = PickAttr(
      spec->catalog.AttributesOf(VisibleRels(*node->right)), rng);
  if (arg >= 0) {
    AggregateFunction sum;
    sum.kind = AggKind::kSum;
    sum.arg = arg;
    node->groupjoin_aggs.push_back(sum);
  }
  return true;
}

bool PerturbSelectivity(QuerySpec* spec, Rng* rng) {
  OpTreeNode* node =
      PickInternal(spec, rng, [](const OpTreeNode&) { return true; });
  if (node == nullptr) return false;
  double factor = LogUniform(rng, 0.2, 5.0);
  double perturbed =
      std::clamp(node->selectivity * factor, 1e-12, 1.0);
  if (perturbed == node->selectivity) return false;  // clamped into place
  node->selectivity = perturbed;
  return true;
}

bool PerturbCardinality(QuerySpec* spec, Rng* rng) {
  return ApplyStatsDrift(&spec->catalog, rng);
}

bool AddGroupBy(QuerySpec* spec, Rng* rng) {
  AttrSet visible = spec->catalog.AttributesOf(VisibleRels(*spec->root));
  int attr = PickAttr(visible.Minus(spec->group_by), rng);
  if (attr < 0) return false;
  spec->group_by.Add(attr);
  return true;
}

bool DropGroupBy(QuerySpec* spec, Rng* rng) {
  if (spec->group_by.Count() < 2) return false;
  int attr = PickAttr(spec->group_by, rng);
  spec->group_by.Remove(attr);
  return true;
}

bool AddAggregate(QuerySpec* spec, Rng* rng) {
  int arg = PickAttr(spec->catalog.AttributesOf(VisibleRels(*spec->root)),
                     rng);
  if (arg < 0) return false;
  AggregateFunction f;
  f.arg = arg;
  switch (rng->UniformInt(0, 5)) {
    case 0:
      f.kind = AggKind::kSum;
      break;
    case 1:
      f.kind = AggKind::kMin;
      break;
    case 2:
      f.kind = AggKind::kMax;
      break;
    case 3:
      f.kind = AggKind::kCount;
      break;
    case 4:
      f.kind = AggKind::kCount;
      f.distinct = true;  // non-decomposable: exercises Valid rejections
      break;
    default:
      f.kind = AggKind::kAvg;  // canonicalized into sum/countNN + division
      break;
  }
  // A fresh output label: part of the result schema, so it must not
  // collide with existing outputs (or their "$sum"/"$cnt" avg halves).
  for (int i = static_cast<int>(spec->aggregates.size());; ++i) {
    std::string name = StrFormat("mz%d", i);
    bool taken = false;
    for (const AggregateFunction& g : spec->aggregates) {
      if (g.output == name) taken = true;
    }
    if (!taken) {
      f.output = name;
      break;
    }
  }
  spec->aggregates.push_back(std::move(f));
  return true;
}

bool DropAggregate(QuerySpec* spec, Rng* rng) {
  if (spec->aggregates.size() < 2) return false;
  size_t idx = static_cast<size_t>(rng->UniformInt(
      0, static_cast<int64_t>(spec->aggregates.size()) - 1));
  spec->aggregates.erase(spec->aggregates.begin() +
                         static_cast<ptrdiff_t>(idx));
  return true;
}

bool SwapChildren(QuerySpec* spec, Rng* rng) {
  OpTreeNode* node = PickInternal(spec, rng, [](const OpTreeNode& n) {
    return IsCommutative(n.kind);
  });
  if (node == nullptr) return false;
  std::swap(node->left, node->right);
  return NormalizePredicates(spec->catalog, spec->root.get());
}

bool RotateSubtree(QuerySpec* spec, Rng* rng) {
  std::vector<std::unique_ptr<OpTreeNode>*> slots;
  CollectInternalSlots(&spec->root, &slots);
  std::vector<std::unique_ptr<OpTreeNode>*> candidates;
  for (auto* slot : slots) {
    if (!(*slot)->left->is_leaf || !(*slot)->right->is_leaf) {
      candidates.push_back(slot);
    }
  }
  if (candidates.empty()) return false;
  std::unique_ptr<OpTreeNode>* slot = candidates[static_cast<size_t>(
      rng->UniformInt(0, static_cast<int64_t>(candidates.size()) - 1))];
  OpTreeNode* p = slot->get();
  bool can_right = !p->left->is_leaf;   // P(L(A,B),C) -> L(A, P(B,C))
  bool can_left = !p->right->is_leaf;   // P(A, R(B,C)) -> R(P(A,B), C)
  bool rotate_right =
      can_right && (!can_left || rng->UniformInt(0, 1) == 0);
  std::unique_ptr<OpTreeNode> parent = std::move(*slot);
  if (rotate_right) {
    std::unique_ptr<OpTreeNode> pivot = std::move(parent->left);
    parent->left = std::move(pivot->right);
    pivot->right = std::move(parent);
    *slot = std::move(pivot);
  } else {
    std::unique_ptr<OpTreeNode> pivot = std::move(parent->right);
    parent->right = std::move(pivot->left);
    pivot->left = std::move(parent);
    *slot = std::move(pivot);
  }
  // The moved predicates may now reference attributes outside their new
  // subtrees; repair orientations, reject irreparable rotations.
  return NormalizePredicates(spec->catalog, spec->root.get());
}

bool ConjoinPredicate(QuerySpec* spec, Rng* rng) {
  OpTreeNode* node =
      PickInternal(spec, rng, [](const OpTreeNode&) { return true; });
  if (node == nullptr) return false;
  AttrSet left = spec->catalog.AttributesOf(VisibleRels(*node->left));
  AttrSet right = spec->catalog.AttributesOf(VisibleRels(*node->right));
  for (int attempt = 0; attempt < 8; ++attempt) {
    int a = PickAttr(left, rng);
    int b = PickAttr(right, rng);
    if (a < 0 || b < 0) return false;
    bool duplicate = false;
    for (const AttrEquality& eq : node->predicate.equalities()) {
      if (eq.left_attr == a && eq.right_attr == b) duplicate = true;
    }
    if (duplicate) continue;
    node->predicate.AddEquality(a, b);
    // Selectivity of the extra equality, generator-style: jitter over the
    // larger distinct count keeps the estimate consistent with the
    // declared statistics.
    double d = std::max(spec->catalog.DistinctOf(a),
                        spec->catalog.DistinctOf(b));
    node->selectivity = std::clamp(
        node->selectivity * LogUniform(rng, 0.3, 1.0) / d, 1e-12, 1.0);
    return true;
  }
  return false;
}

bool DropPredicate(QuerySpec* spec, Rng* rng) {
  OpTreeNode* node = PickInternal(spec, rng, [](const OpTreeNode& n) {
    return n.predicate.equalities().size() >= 2;
  });
  if (node == nullptr) return false;
  std::vector<AttrEquality> eqs = node->predicate.equalities();
  size_t idx = static_cast<size_t>(
      rng->UniformInt(0, static_cast<int64_t>(eqs.size()) - 1));
  eqs.erase(eqs.begin() + static_cast<ptrdiff_t>(idx));
  node->predicate = JoinPredicate(std::move(eqs));
  // Fewer conjuncts retain more rows.
  node->selectivity =
      std::clamp(node->selectivity * LogUniform(rng, 2.0, 50.0), 1e-12, 1.0);
  return true;
}

bool ApplyImpl(MutationOp op, QuerySpec* spec, Rng* rng) {
  switch (op) {
    case MutationOp::kIdentity:
      return true;
    case MutationOp::kSwapJoinKind:
      return SwapJoinKind(spec, rng);
    case MutationOp::kToggleSemiAnti:
      return ToggleSemiAnti(spec, rng);
    case MutationOp::kToggleGroupJoin:
      return ToggleGroupJoin(spec, rng);
    case MutationOp::kPerturbSelectivity:
      return PerturbSelectivity(spec, rng);
    case MutationOp::kPerturbCardinality:
      return PerturbCardinality(spec, rng);
    case MutationOp::kAddGroupBy:
      return AddGroupBy(spec, rng);
    case MutationOp::kDropGroupBy:
      return DropGroupBy(spec, rng);
    case MutationOp::kAddAggregate:
      return AddAggregate(spec, rng);
    case MutationOp::kDropAggregate:
      return DropAggregate(spec, rng);
    case MutationOp::kSwapChildren:
      return SwapChildren(spec, rng);
    case MutationOp::kRotateSubtree:
      return RotateSubtree(spec, rng);
    case MutationOp::kConjoinPredicate:
      return ConjoinPredicate(spec, rng);
    case MutationOp::kDropPredicate:
      return DropPredicate(spec, rng);
  }
  return false;
}

void CheckLeafCoverage(const OpTreeNode& node, std::vector<int>* counts,
                       std::vector<std::string>* violations) {
  if (node.is_leaf) {
    if (node.relation < 0 ||
        node.relation >= static_cast<int>(counts->size())) {
      violations->push_back(
          StrFormat("leaf references unknown relation %d", node.relation));
      return;
    }
    ++(*counts)[static_cast<size_t>(node.relation)];
    return;
  }
  if (node.left == nullptr || node.right == nullptr) {
    violations->push_back("internal node with a missing child");
    return;
  }
  CheckLeafCoverage(*node.left, counts, violations);
  CheckLeafCoverage(*node.right, counts, violations);
}

void CheckOperators(const Catalog& catalog, const OpTreeNode& node,
                    std::vector<std::string>* violations) {
  if (node.is_leaf) return;
  CheckOperators(catalog, *node.left, violations);
  CheckOperators(catalog, *node.right, violations);

  AttrSet left = catalog.AttributesOf(VisibleRels(*node.left));
  AttrSet right = catalog.AttributesOf(VisibleRels(*node.right));
  if (node.predicate.empty()) {
    violations->push_back(StrFormat("%s without a predicate",
                                    OpKindName(node.kind)));
  }
  for (const AttrEquality& eq : node.predicate.equalities()) {
    // Orientation is free (the TPC-H skeletons write some equalities
    // "right = left"); what must hold is that the two attributes come
    // from opposite subtrees and are visible there.
    bool in_range = eq.left_attr >= 0 &&
                    eq.left_attr < catalog.num_attributes() &&
                    eq.right_attr >= 0 &&
                    eq.right_attr < catalog.num_attributes();
    bool pairs_subtrees =
        in_range &&
        ((left.Contains(eq.left_attr) && right.Contains(eq.right_attr)) ||
         (left.Contains(eq.right_attr) && right.Contains(eq.left_attr)));
    if (!pairs_subtrees) {
      violations->push_back(StrFormat(
          "predicate equality %d = %d does not pair a left-visible with a "
          "right-visible attribute",
          eq.left_attr, eq.right_attr));
    }
  }
  if (!std::isfinite(node.selectivity) || node.selectivity <= 0 ||
      node.selectivity > 1) {
    violations->push_back(
        StrFormat("selectivity %g outside (0, 1]", node.selectivity));
  }
  // Extra conjuncts (operator_tree.h) are split into separate inner-join
  // operators, which is only an equivalence for inner joins.
  if (!node.extra_predicates.empty() && node.kind != OpKind::kJoin) {
    violations->push_back(StrFormat("%s carries extra predicates",
                                    OpKindName(node.kind)));
  }
  for (const ExtraPredicate& extra : node.extra_predicates) {
    if (extra.predicate.empty()) {
      violations->push_back("empty extra predicate");
    }
    for (const AttrEquality& eq : extra.predicate.equalities()) {
      bool in_range = eq.left_attr >= 0 &&
                      eq.left_attr < catalog.num_attributes() &&
                      eq.right_attr >= 0 &&
                      eq.right_attr < catalog.num_attributes();
      bool pairs_subtrees =
          in_range &&
          ((left.Contains(eq.left_attr) && right.Contains(eq.right_attr)) ||
           (left.Contains(eq.right_attr) && right.Contains(eq.left_attr)));
      if (!pairs_subtrees) {
        violations->push_back(StrFormat(
            "extra-predicate equality %d = %d does not pair a left-visible "
            "with a right-visible attribute",
            eq.left_attr, eq.right_attr));
      }
    }
    if (!std::isfinite(extra.selectivity) || extra.selectivity <= 0 ||
        extra.selectivity > 1) {
      violations->push_back(StrFormat("extra-predicate selectivity %g "
                                      "outside (0, 1]",
                                      extra.selectivity));
    }
  }
  if (node.kind == OpKind::kGroupJoin) {
    if (node.groupjoin_aggs.empty()) {
      violations->push_back("groupjoin without aggregates");
    }
    for (const AggregateFunction& f : node.groupjoin_aggs) {
      if (f.kind == AggKind::kCountStar) continue;
      if (f.arg < 0 || f.arg >= catalog.num_attributes() ||
          !right.Contains(f.arg)) {
        violations->push_back(StrFormat(
            "groupjoin aggregate argument %d not from the right subtree",
            f.arg));
      }
    }
  } else if (!node.groupjoin_aggs.empty()) {
    violations->push_back(
        StrFormat("%s carries groupjoin aggregates", OpKindName(node.kind)));
  }
}

}  // namespace

std::unique_ptr<OpTreeNode> CloneTree(const OpTreeNode& node) {
  auto copy = std::make_unique<OpTreeNode>();
  copy->is_leaf = node.is_leaf;
  copy->relation = node.relation;
  copy->kind = node.kind;
  copy->predicate = node.predicate;
  copy->selectivity = node.selectivity;
  copy->groupjoin_aggs = node.groupjoin_aggs;
  copy->extra_predicates = node.extra_predicates;
  if (node.left != nullptr) copy->left = CloneTree(*node.left);
  if (node.right != nullptr) copy->right = CloneTree(*node.right);
  return copy;
}

QuerySpec QuerySpec::Clone() const {
  QuerySpec copy;
  copy.catalog = catalog;
  copy.root = root == nullptr ? nullptr : CloneTree(*root);
  copy.group_by = group_by;
  copy.aggregates = aggregates;
  return copy;
}

Query QuerySpec::ToQuery() const {
  Query q = Query::FromTree(catalog, CloneTree(*root), group_by, aggregates);
  q.Canonicalize();
  return q;
}

QuerySpec QuerySpec::FromQuery(const Query& query) {
  assert(query.root() != nullptr);
  QuerySpec spec;
  spec.catalog = query.catalog();
  spec.root = CloneTree(*query.root());
  spec.group_by = query.group_by();
  // Fold the avg canonicalization back: every FinalDivision marks a
  // sum/countNN pair that was one avg slot. Reconstructing the kAvg keeps
  // the spec at the pre-canonical level, so ToQuery's Canonicalize re-splits
  // identically and the no-mutation round trip is fingerprint-exact —
  // without this, mutants of avg-bearing seeds (TPC-H Q1) would silently
  // drop the reconstitution and change the result schema.
  std::vector<int> numerator_of(query.aggregates().size(), -1);
  for (size_t d = 0; d < query.final_divisions().size(); ++d) {
    numerator_of[static_cast<size_t>(
        query.final_divisions()[d].numerator_slot)] = static_cast<int>(d);
  }
  for (size_t i = 0; i < query.aggregates().size(); ++i) {
    if (numerator_of[i] >= 0) {
      const FinalDivision& div =
          query.final_divisions()[static_cast<size_t>(numerator_of[i])];
      AggregateFunction avg;
      avg.output = div.output;
      avg.kind = AggKind::kAvg;
      avg.arg = query.aggregates()[i].arg;
      spec.aggregates.push_back(std::move(avg));
      assert(div.denominator_slot == static_cast<int>(i) + 1);
      ++i;  // skip the countNN half
      continue;
    }
    spec.aggregates.push_back(query.aggregates()[i]);
  }
  return spec;
}

const char* MutationOpName(MutationOp op) {
  switch (op) {
    case MutationOp::kIdentity:
      return "identity";
    case MutationOp::kSwapJoinKind:
      return "swap-join-kind";
    case MutationOp::kToggleSemiAnti:
      return "toggle-semi-anti";
    case MutationOp::kToggleGroupJoin:
      return "toggle-groupjoin";
    case MutationOp::kPerturbSelectivity:
      return "perturb-selectivity";
    case MutationOp::kPerturbCardinality:
      return "perturb-cardinality";
    case MutationOp::kAddGroupBy:
      return "add-groupby";
    case MutationOp::kDropGroupBy:
      return "drop-groupby";
    case MutationOp::kAddAggregate:
      return "add-aggregate";
    case MutationOp::kDropAggregate:
      return "drop-aggregate";
    case MutationOp::kSwapChildren:
      return "swap-children";
    case MutationOp::kRotateSubtree:
      return "rotate-subtree";
    case MutationOp::kConjoinPredicate:
      return "conjoin-predicate";
    case MutationOp::kDropPredicate:
      return "drop-predicate";
  }
  return "?";
}

bool ParseMutationOp(const std::string& name, MutationOp* op) {
  for (MutationOp candidate : AllMutationOps()) {
    if (name == MutationOpName(candidate)) {
      *op = candidate;
      return true;
    }
  }
  if (name == MutationOpName(MutationOp::kIdentity)) {
    *op = MutationOp::kIdentity;
    return true;
  }
  return false;
}

const std::vector<MutationOp>& AllMutationOps() {
  static const std::vector<MutationOp> ops = {
      MutationOp::kSwapJoinKind,      MutationOp::kToggleSemiAnti,
      MutationOp::kToggleGroupJoin,   MutationOp::kPerturbSelectivity,
      MutationOp::kPerturbCardinality, MutationOp::kAddGroupBy,
      MutationOp::kDropGroupBy,       MutationOp::kAddAggregate,
      MutationOp::kDropAggregate,     MutationOp::kSwapChildren,
      MutationOp::kRotateSubtree,     MutationOp::kConjoinPredicate,
      MutationOp::kDropPredicate,
  };
  return ops;
}

std::vector<std::string> CheckSpecValid(const QuerySpec& spec) {
  std::vector<std::string> violations;
  const Catalog& catalog = spec.catalog;
  if (spec.root == nullptr) {
    violations.push_back("no operator tree");
    return violations;
  }
  for (int r = 0; r < catalog.num_relations(); ++r) {
    double card = catalog.relation(r).cardinality;
    if (!std::isfinite(card) || card < 1) {
      violations.push_back(
          StrFormat("relation %d cardinality %g not finite/positive", r,
                    card));
    }
  }
  for (int a = 0; a < catalog.num_attributes(); ++a) {
    double distinct = catalog.DistinctOf(a);
    if (!std::isfinite(distinct) || distinct < 1) {
      violations.push_back(StrFormat(
          "attribute %d distinct count %g not finite/positive", a, distinct));
    }
  }

  std::vector<int> counts(static_cast<size_t>(catalog.num_relations()), 0);
  CheckLeafCoverage(*spec.root, &counts, &violations);
  for (int r = 0; r < catalog.num_relations(); ++r) {
    if (counts[static_cast<size_t>(r)] != 1) {
      violations.push_back(StrFormat("relation %d appears %d times as a leaf",
                                     r, counts[static_cast<size_t>(r)]));
    }
  }
  CheckOperators(catalog, *spec.root, &violations);

  AttrSet visible = catalog.AttributesOf(VisibleRels(*spec.root));
  if (spec.group_by.empty()) {
    violations.push_back("empty grouping attribute set");
  }
  if (!spec.group_by.IsSubsetOf(visible)) {
    violations.push_back("grouping attribute not visible at the root");
  }
  if (spec.aggregates.empty()) {
    violations.push_back("empty aggregation vector");
  }
  for (const AggregateFunction& f : spec.aggregates) {
    if (f.kind == AggKind::kCountStar) {
      if (f.arg != -1) violations.push_back("count(*) with an argument");
      continue;
    }
    if (f.arg < 0 || f.arg >= catalog.num_attributes() ||
        !visible.Contains(f.arg)) {
      violations.push_back(StrFormat(
          "aggregate argument %d not visible at the root", f.arg));
    }
    if (f.kind == AggKind::kAvg && f.distinct) {
      violations.push_back("avg(distinct) is not supported");
    }
  }
  return violations;
}

bool ApplyStatsDrift(Catalog* catalog, Rng* rng) {
  int r =
      static_cast<int>(rng->UniformInt(0, catalog->num_relations() - 1));
  const RelationDef& rel = catalog->relation(r);
  double factor = LogUniform(rng, 0.2, 5.0);
  double card = std::max(2.0, std::floor(rel.cardinality * factor));
  if (card == rel.cardinality) return false;
  // Keep the statistics internally consistent: no attribute exceeds the
  // new cardinality in distinct values, and key attributes keep their
  // distinct count equal to it (a key has one row per value).
  AttrSet key_attrs;
  for (const AttrSet& key : rel.keys) key_attrs.UnionWith(key);
  catalog->SetCardinality(r, card);
  for (int a : BitsOf(rel.attributes)) {
    double distinct = key_attrs.Contains(a)
                          ? card
                          : std::min(catalog->DistinctOf(a), card);
    catalog->SetDistinct(a, distinct);
  }
  return true;
}

bool ApplyMutation(MutationOp op, QuerySpec* spec, Rng* rng) {
  if (op == MutationOp::kIdentity) return true;
  QuerySpec mutated = spec->Clone();
  if (!ApplyImpl(op, &mutated, rng)) return false;
  if (!CheckSpecValid(mutated).empty()) return false;
  // The fingerprint-moving guarantee, enforced rather than assumed: a
  // "mutation" that lands on a structurally identical query (possible in
  // principle for future operators, impossible to debug downstream when a
  // cache test assumes distinctness) counts as rejected.
  if (FingerprintQuery(mutated.ToQuery()).canonical ==
      FingerprintQuery(spec->ToQuery()).canonical) {
    return false;
  }
  *spec = std::move(mutated);
  return true;
}

MutationEngine::MutationEngine(QuerySpec seed_spec, uint64_t seed)
    : spec_(std::move(seed_spec)), rng_(seed) {
  assert(CheckSpecValid(spec_).empty() && "seed spec must be valid");
}

bool MutationEngine::Step(int attempts) {
  const std::vector<MutationOp>& ops = AllMutationOps();
  for (int i = 0; i < attempts; ++i) {
    MutationStep step;
    step.op = ops[static_cast<size_t>(
        rng_.UniformInt(0, static_cast<int64_t>(ops.size()) - 1))];
    step.seed = rng_.Next();
    Rng sub(step.seed);
    if (ApplyMutation(step.op, &spec_, &sub)) {
      chain_.push_back(step);
      return true;
    }
  }
  return false;
}

QuerySpec MutationEngine::Replay(const QuerySpec& seed_spec,
                                 const std::vector<MutationStep>& chain,
                                 size_t prefix_len) {
  QuerySpec spec = seed_spec.Clone();
  assert(prefix_len <= chain.size());
  for (size_t i = 0; i < prefix_len; ++i) {
    Rng sub(chain[i].seed);
    bool applied = ApplyMutation(chain[i].op, &spec, &sub);
    assert(applied && "recorded chains replay deterministically");
    (void)applied;
  }
  return spec;
}

// ---------------------------------------------------------------------------
// Seeds + corpus format.
// ---------------------------------------------------------------------------

namespace {

bool TopologyFromName(const std::string& name, QueryTopology* t) {
  for (QueryTopology candidate :
       {QueryTopology::kRandomTree, QueryTopology::kChain,
        QueryTopology::kStar, QueryTopology::kCycle, QueryTopology::kClique,
        QueryTopology::kSnowflake}) {
    if (name == TopologyName(candidate)) {
      *t = candidate;
      return true;
    }
  }
  return false;
}

}  // namespace

Query MaterializeSeed(const FuzzSeed& seed) {
  if (seed.kind == "tpch") {
    if (seed.tpch == "ex") return MakeTpchEx();
    if (seed.tpch == "q1") return MakeTpchQ1();
    if (seed.tpch == "q3") return MakeTpchQ3();
    if (seed.tpch == "q5") return MakeTpchQ5();
    if (seed.tpch == "q10") return MakeTpchQ10();
    if (seed.tpch == "q18") return MakeTpchQ18();
    assert(false && "unknown tpch seed");
  }
  assert(seed.kind == "gen");
  GeneratorOptions gen;
  gen.topology = seed.topology;
  gen.num_relations = seed.num_relations;
  if (seed.preset == "inner") {
    gen.inner_joins_only = true;
  } else if (seed.preset == "outer") {
    gen = OuterHeavyOptions(seed.num_relations);
    gen.topology = seed.topology;
  } else if (seed.preset == "manyattr") {
    gen = ManyAttributeOptions(seed.topology, seed.num_relations);
  } else {
    assert(seed.preset == "default");
  }
  return GenerateRandomQuery(gen, seed.seed);
}

std::string FormatCorpusEntry(const CorpusEntry& entry) {
  std::string line;
  if (entry.seed.kind == "tpch") {
    line = StrFormat("tpch %s :", entry.seed.tpch.c_str());
  } else {
    line = StrFormat("gen %s %d %s %llu :",
                     TopologyName(entry.seed.topology),
                     entry.seed.num_relations, entry.seed.preset.c_str(),
                     static_cast<unsigned long long>(entry.seed.seed));
  }
  for (const MutationStep& step : entry.chain) {
    line += StrFormat(" %s:%llu", MutationOpName(step.op),
                      static_cast<unsigned long long>(step.seed));
  }
  return line;
}

bool ParseCorpusEntry(const std::string& line, CorpusEntry* entry,
                      std::string* error) {
  error->clear();
  std::istringstream in(line);
  std::string token;
  if (!(in >> token) || token[0] == '#') return false;  // blank/comment

  CorpusEntry parsed;
  parsed.seed.kind = token;
  if (token == "tpch") {
    if (!(in >> parsed.seed.tpch)) {
      *error = "tpch seed without a query name";
      return false;
    }
    const std::string& q = parsed.seed.tpch;
    if (q != "ex" && q != "q1" && q != "q3" && q != "q5" && q != "q10" &&
        q != "q18") {
      *error = "unknown tpch query: " + q;
      return false;
    }
  } else if (token == "gen") {
    std::string topology;
    if (!(in >> topology >> parsed.seed.num_relations >> parsed.seed.preset >>
          parsed.seed.seed)) {
      *error = "gen seed needs: <topology> <n> <preset> <seed>";
      return false;
    }
    if (!TopologyFromName(topology, &parsed.seed.topology)) {
      *error = "unknown topology: " + topology;
      return false;
    }
    if (parsed.seed.preset != "default" && parsed.seed.preset != "inner" &&
        parsed.seed.preset != "outer" && parsed.seed.preset != "manyattr") {
      *error = "unknown preset: " + parsed.seed.preset;
      return false;
    }
  } else {
    *error = "unknown seed kind: " + token;
    return false;
  }

  if (!(in >> token) || token != ":") {
    *error = "expected ':' between seed and chain";
    return false;
  }
  while (in >> token) {
    size_t colon = token.rfind(':');
    if (colon == std::string::npos) {
      *error = "chain step without ':': " + token;
      return false;
    }
    MutationStep step;
    if (!ParseMutationOp(token.substr(0, colon), &step.op)) {
      *error = "unknown mutation operator: " + token.substr(0, colon);
      return false;
    }
    try {
      step.seed = std::stoull(token.substr(colon + 1));
    } catch (...) {
      *error = "bad sub-seed in: " + token;
      return false;
    }
    parsed.chain.push_back(step);
  }
  *entry = std::move(parsed);
  return true;
}

}  // namespace eadp
