// Canonical query fingerprints for cross-query plan caching.
//
// A fingerprint identifies everything about a query that the optimizer's
// outcome depends on — operator-tree topology, operator kinds, predicate
// structure, catalog cardinalities/selectivities/distinct counts/keys,
// grouping attributes and the aggregation vector — while deliberately
// excluding relation and attribute *names*: two queries that differ only
// in how their relations are called (same shapes, same statistics) plan
// identically, so they must fingerprint identically for the plan cache
// (plangen/plan_cache.h) to reuse work across them. Plans reference
// relations and attributes by index, never by name, so a plan built for
// one query of a fingerprint class is valid — and cost-identical — for
// every member of the class.
//
// The fingerprint is a canonical byte serialization of that structural
// core plus a 128-bit hash of it. The hash routes cache probes (shard +
// bucket selection); the canonical bytes are the *equality witness*: a
// cache hit is only served after a full byte comparison, so hash
// collisions can never surface a structurally different query's plan (the
// why-equality-is-mandatory discussion lives in docs/DESIGN.md §10).
//
// What IS part of the fingerprint, in serialization order:
//   * per relation (in catalog order): cardinality, duplicate-freeness,
//     owned-attribute bitmask, declared keys (sorted);
//   * per attribute (in catalog order): owning relation, distinct count;
//   * the grouping attribute set G;
//   * the aggregation vector F, *including* output column labels — they
//     name the query's result schema (part of what the plan produces),
//     not a relation, so excluding them could serve a plan whose output
//     columns are labeled differently than the query asked for;
//   * the avg-reconstitution final divisions;
//   * every flattened operator: kind, selectivity, original left/right
//     subtree relation sets (the tree topology), predicate equalities as
//     (attr, attr) index pairs, groupjoin aggregate vectors.
//
// Attribute and relation *indices* are structural, not naming: they encode
// which relation owns which attribute and how predicates wire them
// together. Two queries match only if their catalogs enumerate relations
// and attributes in the same order — the canonical order a parser or
// generator produces deterministically.
//
// Two-layer form (drift-aware caching, DESIGN.md §14): the fingerprint
// factors into a STRUCTURAL layer (everything above except the statistic
// values — shapes, predicates, keys, attribute wiring, agg labels) and a
// STATS OVERLAY (the relation cardinalities, attribute distinct counts and
// operator selectivities, in the same canonical order). The combined
// fingerprint is the pure composition `structural bytes + overlay bytes`,
// so combined equality still holds exactly when both structure and
// statistics are bit-equal — the PR 5/PR 8 cache semantics are a special
// case. Drift-aware caches key on the structural layer and keep the
// overlay per entry, so a statistics change moves the overlay but not the
// key, and a cached plan can be re-costed instead of becoming unreachable.

#ifndef EADP_QUERIES_FINGERPRINT_H_
#define EADP_QUERIES_FINGERPRINT_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "algebra/query.h"

namespace eadp {

/// Little-endian fixed-width serializer into a canonical byte string.
/// Shared by the query fingerprint (fingerprint.cc) and the plan cache's
/// OptimizerOptions suffix (plan_cache.cc): both halves of a cache key
/// must come from the *same* encoder, or a future encoding change could
/// silently desynchronize them and turn every probe into a miss.
/// Doubles are serialized by bit pattern: the fingerprint must
/// distinguish every value the cost model can distinguish, exactly.
class CanonicalWriter {
 public:
  explicit CanonicalWriter(std::string* out) : out_(out) {}

  void U8(uint8_t v) { out_->push_back(static_cast<char>(v)); }

  void U32(uint32_t v) { Raw(&v, sizeof(v)); }

  void U64(uint64_t v) { Raw(&v, sizeof(v)); }

  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }

  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }

  void Set(Bitset128 s) {
    U64(s.low());
    U64(s.high());
  }

  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }

 private:
  void Raw(const void* data, size_t n) {
    out_->append(static_cast<const char*>(data), n);
  }

  std::string* out_;
};

/// The fingerprint of one query: a canonical structural serialization and
/// a 128-bit hash of it (two independently seeded 64-bit halves).
/// `Matches` is the only correctness-bearing comparison — it compares the
/// canonical bytes, so it stays exact even when hashes collide (the
/// collision tests force exactly that).
struct QueryFingerprint {
  uint64_t hash = 0;       ///< primary hash: cache shard + bucket routing
  uint64_t hash2 = 0;      ///< independent second hash: cheap pre-filter
  std::string canonical;   ///< canonical byte serialization (the witness)

  /// Full structural equality: byte-exact canonical forms. Never trusts
  /// the hashes.
  bool Matches(const QueryFingerprint& other) const {
    return canonical == other.canonical;
  }
};

/// The statistics layer of a query fingerprint: every estimator input the
/// structural layer deliberately omits, in canonical (catalog / flattening)
/// order. Two overlays of one structural class describe the same plan
/// space under different statistics.
struct StatsOverlay {
  std::vector<double> rel_cardinality;  ///< per relation, catalog order
  std::vector<double> attr_distinct;    ///< per attribute, catalog order
  std::vector<double> op_selectivity;   ///< per flattened op, query order
  /// Identity hints (never serialized, never part of equality *semantics*):
  /// the catalog instance + epoch the overlay was captured from. When both
  /// match, SameStats skips the catalog-stat byte comparison — the epoch
  /// contract (catalog/catalog.h) guarantees the values cannot have moved.
  uint64_t catalog_id = 0;
  uint64_t stats_epoch = 0;
};

/// A fingerprint factored into its two layers. `structural.canonical` is
/// the stats-insensitive witness (serialization version 2); the overlay
/// carries the statistics that version 1 interleaved.
struct SplitFingerprint {
  QueryFingerprint structural;
  StatsOverlay overlay;
};

/// Computes the two-layer fingerprint: hashed structural layer + captured
/// overlay (including the catalog id/epoch hints).
SplitFingerprint FingerprintQuerySplit(const Query& query);

/// As FingerprintQuerySplit but with structural hashes left at 0, for
/// callers composing a longer key (options block, overlay) before hashing
/// once.
SplitFingerprint FingerprintQuerySplitUnhashed(const Query& query);

/// Appends the canonical overlay serialization (marker byte 0xfd, then the
/// three counted F64 vectors) to `*out`. This is BOTH the combined-key
/// suffix and the on-disk overlay encoding — one encoder, so the two can
/// never desynchronize.
void AppendOverlay(const StatsOverlay& overlay, std::string* out);

/// Parses bytes produced by AppendOverlay. Returns false (leaving *out
/// untouched) on any malformed input. Identity hints come back as 0 —
/// serialized overlays have no live catalog to point at.
bool ParseOverlay(std::string_view bytes, StatsOverlay* out);

/// Bit-exact statistic equality: every cardinality/distinct/selectivity
/// identical by bit pattern (and equal vector shapes). Uses the
/// catalog-id/epoch fast path for the catalog-derived vectors when both
/// hints are present; selectivities are query-side and always compared.
bool SameStats(const StatsOverlay& a, const StatsOverlay& b);

/// 64-bit hash of the canonical overlay bytes (duplicate suppression in
/// the persistent tier; never a correctness witness).
uint64_t OverlayHash(const StatsOverlay& overlay);

/// Pure composition: combined = structural bytes + overlay bytes, hashed.
/// Combined equality == structural equality AND bit-equal statistics —
/// exactly the pre-split fingerprint contract.
QueryFingerprint ComposeFingerprint(const QueryFingerprint& structural,
                                    const StatsOverlay& overlay);

/// Computes the canonical fingerprint of `query`. Deterministic in the
/// query's structure; invariant under renaming relations and attributes.
/// Cost is linear in the query size (a few microseconds at 100 relations —
/// see bench_plan_cache), so probing a cache with it is always worthwhile.
/// Defined as ComposeFingerprint(FingerprintQuerySplit(query)): statistics
/// changes still move this fingerprint.
QueryFingerprint FingerprintQuery(const Query& query);

/// As FingerprintQuery but leaves hash/hash2 at 0: for callers that
/// append their own suffix to `canonical` (the plan cache's
/// OptimizerOptions block) before hashing once via RehashFingerprint —
/// hashing the bytes twice would double the cost of every probe.
QueryFingerprint FingerprintQueryUnhashed(const Query& query);

/// (Re)computes hash/hash2 from the current canonical bytes. The single
/// place the fingerprint hash seeds live.
void RehashFingerprint(QueryFingerprint* fp);

}  // namespace eadp

#endif  // EADP_QUERIES_FINGERPRINT_H_
