#include "queries/data_generator.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/rng.h"

namespace eadp {

Database GenerateDatabase(const Query& query, uint64_t seed,
                          const DataOptions& options) {
  const Catalog& catalog = query.catalog();
  Rng rng(seed);
  Database db;
  db.tables.resize(static_cast<size_t>(catalog.num_relations()));

  for (int r = 0; r < catalog.num_relations(); ++r) {
    const RelationDef& def = catalog.relation(r);
    std::vector<std::string> columns;
    std::vector<int> attr_ids;
    AttrSet key_attrs;
    for (AttrSet k : def.keys) key_attrs.UnionWith(k);
    for (int a : BitsOf(def.attributes)) {
      columns.push_back(catalog.attribute(a).name);
      attr_ids.push_back(a);
    }
    Table table(columns);
    int rows = static_cast<int>(
        rng.UniformInt(options.min_rows, options.max_rows));

    // Unique values for key columns: a shuffled permutation of 0..rows-1.
    // Keys therefore also land in the small shared join domain, so
    // key-to-foreign-key joins find partners.
    std::vector<std::vector<int64_t>> key_values(attr_ids.size());
    for (size_t c = 0; c < attr_ids.size(); ++c) {
      if (!key_attrs.Contains(attr_ids[c])) continue;
      std::vector<int64_t>& vals = key_values[c];
      vals.resize(static_cast<size_t>(rows));
      std::iota(vals.begin(), vals.end(), 0);
      for (size_t i = vals.size(); i > 1; --i) {
        std::swap(vals[i - 1],
                  vals[static_cast<size_t>(rng.UniformInt(
                      0, static_cast<int64_t>(i) - 1))]);
      }
    }

    for (int i = 0; i < rows; ++i) {
      Row row;
      row.reserve(attr_ids.size());
      for (size_t c = 0; c < attr_ids.size(); ++c) {
        if (key_attrs.Contains(attr_ids[c])) {
          row.push_back(Value::Int(key_values[c][static_cast<size_t>(i)]));
        } else if (rng.Bernoulli(options.null_probability)) {
          row.push_back(Value::Null());
        } else {
          row.push_back(
              Value::Int(rng.UniformInt(0, options.value_domain - 1)));
        }
      }
      table.AddRow(std::move(row));
    }
    db.tables[static_cast<size_t>(r)] = std::move(table);
  }
  return db;
}

}  // namespace eadp
