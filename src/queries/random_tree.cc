#include "queries/random_tree.h"

#include <cassert>

namespace eadp {

uint64_t CatalanNumber(int n) {
  assert(n >= 0 && n <= 33);
  // C(0) = 1, C(n+1) = C(n) * 2(2n+1) / (n+2); exact in 64-bit for n <= 33.
  uint64_t c = 1;
  for (int i = 0; i < n; ++i) {
    c = c * 2 * (2 * static_cast<uint64_t>(i) + 1) / (static_cast<uint64_t>(i) + 2);
  }
  return c;
}

uint64_t NumBinaryTrees(int leaves) {
  assert(leaves >= 1);
  return CatalanNumber(leaves - 1);
}

std::unique_ptr<TreeShape> UnrankBinaryTree(int leaves, uint64_t rank,
                                            int first_leaf) {
  assert(leaves >= 1);
  assert(rank < NumBinaryTrees(leaves));
  auto node = std::make_unique<TreeShape>();
  if (leaves == 1) {
    node->is_leaf = true;
    node->leaf_index = first_leaf;
    return node;
  }
  // Decompose by the number of leaves k in the left subtree:
  // #shapes with left size k = C(k-1) * C(n-k-1).
  for (int k = 1; k < leaves; ++k) {
    uint64_t left_shapes = NumBinaryTrees(k);
    uint64_t right_shapes = NumBinaryTrees(leaves - k);
    uint64_t block = left_shapes * right_shapes;
    if (rank < block) {
      uint64_t left_rank = rank / right_shapes;
      uint64_t right_rank = rank % right_shapes;
      node->left = UnrankBinaryTree(k, left_rank, first_leaf);
      node->right = UnrankBinaryTree(leaves - k, right_rank, first_leaf + k);
      return node;
    }
    rank -= block;
  }
  assert(false && "rank out of range");
  return node;
}

}  // namespace eadp
