// TPC-H workload pieces (paper Sec. 1 and Sec. 5.4).
//
// Provides the introduction's example query Ex and the join/grouping
// skeletons of TPC-H Q3, Q5 and Q10 as optimizer inputs with scale-factor-1
// statistics, plus a miniature data generator so Ex can be *executed* to
// demonstrate the runtime gap the paper reports (2140 ms vs 1.51 ms on
// HyPer; our interpreter reproduces the plan-shape-induced gap).
//
// Selections of the original SQL (date ranges, segment predicates) are
// folded into pre-scaled base cardinalities, the standard trick when a plan
// generator has no selection placement; aggregate arguments that are
// arithmetic expressions (l_extendedprice * (1 - l_discount)) are stood in
// by the bare column, which does not affect plan shape.

#ifndef EADP_QUERIES_TPCH_H_
#define EADP_QUERIES_TPCH_H_

#include "algebra/query.h"
#include "exec/plan_executor.h"

namespace eadp {

/// The introduction's example:
///   select ns.n_name, nc.n_name, count(*)
///   from (nation ns join supplier s on ns.n_nationkey = s.s_nationkey)
///        full outer join
///        (nation nc join customer c on nc.n_nationkey = c.c_nationkey)
///        on ns.n_nationkey = nc.n_nationkey
///   group by ns.n_name, nc.n_name
Query MakeTpchEx();

/// TPC-H Q3 skeleton: customer ⋈ orders ⋈ lineitem,
/// group by o_orderkey, o_orderdate, o_shippriority.
Query MakeTpchQ3();

/// TPC-H Q5 skeleton: region ⋈ nation ⋈ customer ⋈ orders ⋈ lineitem ⋈
/// supplier with the n_nationkey = c_nationkey = s_nationkey cycle,
/// group by n_name.
Query MakeTpchQ5();

/// TPC-H Q10 skeleton: customer ⋈ orders ⋈ lineitem ⋈ nation,
/// group by c_custkey, c_name, n_name.
Query MakeTpchQ10();

/// TPC-H Q1 skeleton: a single-relation aggregation query over lineitem
/// (group by returnflag/linestatus; sums and averages). Exercises the
/// n = 1 path and avg canonicalization; there is no join order to pick,
/// so all generators must emit the same plan.
Query MakeTpchQ1();

/// TPC-H Q18 skeleton with the quantity subquery unnested into a
/// groupjoin: (orders Z_{o_orderkey = l_orderkey} lineitem_sub) joined
/// with customer and lineitem, group by c_custkey, o_orderkey. The
/// HAVING filter of the original is omitted (this library places no
/// selections); the groupjoin reordering is what matters here (paper
/// Sec. 3, Others block).
Query MakeTpchQ18();

/// Miniature database for MakeTpchEx(): `scale` = 1 gives 25 nations,
/// 40·scale suppliers and 600·scale customers with TPC-H-like foreign-key
/// fan-out. Deterministic in `seed`.
Database MakeExDatabase(const Query& ex_query, int scale, uint64_t seed);

/// Miniature database for any of the TPC-H skeleton queries: every
/// relation gets round(cardinality · scale_fraction) rows (at least 2);
/// declared keys get unique values; foreign keys (matched by TPC-H column
/// suffix, e.g. o_custkey -> c_custkey) draw from the parent's key range,
/// so joins have realistic fan-out. Deterministic in `seed`.
Database MakeTpchMiniDatabase(const Query& query, double scale_fraction,
                              uint64_t seed);

}  // namespace eadp

#endif  // EADP_QUERIES_TPCH_H_
