// Random data generation for correctness testing.
//
// Generates a small in-memory database matching a query's catalog. Declared
// keys are honored (unique values); non-key columns draw from small domains
// so joins actually match, include NULLs (exercising the null-rejecting
// predicate semantics and outer join padding), and include duplicates
// (exercising the duplicate-sensitivity machinery). Cardinalities are
// intentionally tiny — these tables feed the bag-semantics interpreter that
// cross-checks optimizer plans against canonical evaluation.

#ifndef EADP_QUERIES_DATA_GENERATOR_H_
#define EADP_QUERIES_DATA_GENERATOR_H_

#include <cstdint>

#include "algebra/query.h"
#include "exec/plan_executor.h"

namespace eadp {

struct DataOptions {
  int min_rows = 0;
  int max_rows = 10;
  /// Domain for non-key columns: values in [0, value_domain).
  int value_domain = 5;
  /// NULL probability for non-key columns.
  double null_probability = 0.15;
};

/// Generates tables for every relation of the query's catalog.
Database GenerateDatabase(const Query& query, uint64_t seed,
                          const DataOptions& options = {});

}  // namespace eadp

#endif  // EADP_QUERIES_DATA_GENERATOR_H_
