// Mutation-based differential fuzzing over algebra trees (ROADMAP item 5).
//
// The seeded workloads (queries/query_generator.h, queries/tpch.h) cover
// the topologies the paper evaluates; the layered optimizer stack — exact
// DP, GOO, IDP, the adaptive facade and the fingerprint-keyed plan cache —
// diverges, when it diverges, on *adversarial* shapes none of those seeds
// produce. This module manufactures such shapes deterministically: a set
// of composable mutation operators over a decomposed query (catalog +
// operator tree + grouping + aggregation vector), each producing a mutant
// that either passes the structural validity rules the plan generators
// assume (CheckSpecValid) or is rejected cleanly with the input untouched,
// plus a seeded engine that drives N-step mutation chains and records them
// as replayable (operator, sub-seed) pairs.
//
// The contract every operator honors:
//   * deterministic — the result is a pure function of (input spec,
//     operator, sub-seed); chains replay bit-identically, which is what
//     makes divergence minimization (replay the shortest failing prefix)
//     and the committed regression corpus (tests/corpus/) possible;
//   * validity-preserving or cleanly rejected — an applied mutation yields
//     a spec with no CheckSpecValid violations; an inapplicable one (no
//     candidate site, or every candidate would break an invariant such as
//     visibility of grouping attributes above a semijoin) returns false
//     and leaves the spec unchanged;
//   * fingerprint-moving — an applied mutation changes the canonical query
//     fingerprint (queries/fingerprint.h): mutants are genuinely new cache
//     identities, which is what lets the fuzz driver assert that
//     near-identical mutants never cross-serve from the plan cache.
//
// The operator/executor split follows the mutation-testing harnesses in
// the related work (one operator = one unit-testable transformation; the
// engine only sequences them). See docs/DESIGN.md §11.

#ifndef EADP_QUERIES_MUTATION_H_
#define EADP_QUERIES_MUTATION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "algebra/query.h"
#include "common/rng.h"
#include "queries/query_generator.h"

namespace eadp {

/// Deep copy of an operator tree (Query owns its tree as unique_ptr, so
/// mutation works on explicit clones).
std::unique_ptr<OpTreeNode> CloneTree(const OpTreeNode& node);

/// A decomposed, mutable representation of one query: exactly the four
/// ingredients Query::FromTree consumes. Mutations edit this form; ToQuery
/// re-flattens and canonicalizes, so a round trip with no mutation yields
/// a byte-identical canonical fingerprint (pinned by mutation_test).
struct QuerySpec {
  Catalog catalog;
  std::unique_ptr<OpTreeNode> root;
  AttrSet group_by;
  AggregateVector aggregates;

  QuerySpec Clone() const;
  Query ToQuery() const;

  /// Decomposes an existing (canonicalized) query. The query must still
  /// carry its original operator tree (Query::root()).
  static QuerySpec FromQuery(const Query& query);
};

/// The mutation operators. Each is deterministic in (spec, sub-seed) and
/// either applies (returns true, spec now valid and fingerprint-distinct)
/// or rejects (returns false, spec untouched).
enum class MutationOp {
  kIdentity,           ///< no-op; exists to pin fingerprint stability
  kSwapJoinKind,       ///< inner <-> left outer <-> full outer
  kToggleSemiAnti,     ///< left semijoin <-> left antijoin
  kToggleGroupJoin,    ///< inner join <-> groupjoin (aggs added/dropped)
  kPerturbSelectivity, ///< scale one operator's selectivity (clamped (0,1])
  kPerturbCardinality, ///< scale one relation's cardinality + distincts
  kAddGroupBy,         ///< add a visible attribute to G
  kDropGroupBy,        ///< drop a grouping attribute (keeps |G| >= 1)
  kAddAggregate,       ///< append an aggregate over a visible attribute
  kDropAggregate,      ///< drop an aggregate (keeps |F| >= 1)
  kSwapChildren,       ///< commute a commutative operator's subtrees
  kRotateSubtree,      ///< re-root: left or right rotation at a node
  kConjoinPredicate,   ///< add an equality to an operator's conjunction
  kDropPredicate,      ///< drop an equality (keeps >= 1 per operator)
};

const char* MutationOpName(MutationOp op);

/// Parses MutationOpName output back; false if `name` is unknown. Used by
/// the corpus file format.
bool ParseMutationOp(const std::string& name, MutationOp* op);

/// Every operator the engine draws from (kIdentity excluded: it never
/// produces a new mutant).
const std::vector<MutationOp>& AllMutationOps();

/// Structural validity rules the plan generators and the executor assume
/// of an input query; returns human-readable violations (empty = valid):
///   * every base relation appears exactly once as a leaf;
///   * every operator's predicate is a non-empty conjunction whose
///     equalities pair an attribute visible in the left subtree with one
///     visible in the right subtree (left/right in that order), with a
///     finite selectivity in (0, 1];
///   * groupjoins carry a non-empty aggregate vector whose arguments come
///     from the right subtree's visible relations; other operators carry
///     none;
///   * the grouping attributes and top-level aggregate arguments reference
///     relations visible at the root (right sides of semi/anti/group joins
///     are hidden above the operator);
///   * G and F are non-empty; catalog statistics are finite and positive.
std::vector<std::string> CheckSpecValid(const QuerySpec& spec);

/// Applies `op` to `spec` with randomness drawn from `rng`. On success the
/// spec is mutated in place and true is returned; on rejection the spec is
/// byte-identical to before and false is returned. Deterministic in
/// (spec, op, rng state).
bool ApplyMutation(MutationOp op, QuerySpec* spec, Rng* rng);

/// Statistics-drift operator for the post-planning oracles: perturbs one
/// relation's cardinality (log-uniform factor in [0.2, 5]) and repairs its
/// attributes' distinct counts to stay internally consistent (keys keep
/// distinct == cardinality, non-keys are capped at it). Unlike the
/// MutationOp operators this edits a *Catalog* in place, typically after
/// planning: the query structure is untouched, so the structural
/// fingerprint layer is unchanged while the stats overlay moves
/// (queries/fingerprint.h) — exactly what drives the plan cache's
/// drifted-hit re-cost/tolerance path. kPerturbCardinality is this same
/// transformation applied pre-planning through the validity pipeline.
/// Deterministic in (catalog, rng state); false when the drawn factor
/// rounds the cardinality back onto its old value (catalog untouched).
bool ApplyStatsDrift(Catalog* catalog, Rng* rng);

/// One replayable step of a mutation chain: ApplyMutation(op, spec,
/// Rng(seed)) — the sub-seed makes each step independent of how many
/// rejected attempts preceded it.
struct MutationStep {
  MutationOp op = MutationOp::kIdentity;
  uint64_t seed = 0;
};

/// Drives seeded N-step mutation chains from a seed spec. Step() draws
/// (operator, sub-seed) pairs until one applies and records it; the
/// accumulated chain replays bit-identically via Replay, which is what the
/// fuzz driver's divergence minimization and the committed corpus rely on.
class MutationEngine {
 public:
  MutationEngine(QuerySpec seed_spec, uint64_t seed);

  /// Attempts one mutation. False when `attempts` successive draws all
  /// reject (a fully saturated spec — rare, but e.g. a single-relation
  /// query admits only a handful of operators).
  bool Step(int attempts = 24);

  const QuerySpec& spec() const { return spec_; }
  const std::vector<MutationStep>& chain() const { return chain_; }

  /// Replays `chain` (or a prefix of it) on a fresh clone of `seed_spec`.
  /// Every step must apply — chains only come from Step(), which records
  /// applied mutations exclusively; a non-applying step aborts.
  static QuerySpec Replay(const QuerySpec& seed_spec,
                          const std::vector<MutationStep>& chain,
                          size_t prefix_len);

 private:
  QuerySpec spec_;
  Rng rng_;
  std::vector<MutationStep> chain_;
};

// ---------------------------------------------------------------------------
// Replayable seeds + the corpus text format (tests/corpus/*.corpus).
// ---------------------------------------------------------------------------

/// A replayable description of a seed query: either a generator workload
/// ("gen": topology + size + preset + seed) or a fixed TPC-H skeleton
/// ("tpch": query name).
struct FuzzSeed {
  std::string kind = "gen";  ///< "gen" | "tpch"

  // kind == "gen"
  QueryTopology topology = QueryTopology::kRandomTree;
  int num_relations = 5;
  /// "default" | "inner" | "outer" (outer/groupjoin-heavy mix) |
  /// "manyattr" (extra attributes per relation, structured topologies).
  std::string preset = "default";
  uint64_t seed = 1;

  // kind == "tpch": "ex" | "q1" | "q3" | "q5" | "q10" | "q18"
  std::string tpch = "ex";
};

/// Materializes the seed query (already canonicalized). Aborts on an
/// unknown kind/preset/tpch name — corpus entries are validated by
/// ParseCorpusEntry before they get here.
Query MaterializeSeed(const FuzzSeed& seed);

/// One committed regression-corpus entry: a seed and the mutation chain
/// that produced the survivor.
struct CorpusEntry {
  std::string name;  ///< short human label (file stem by convention)
  FuzzSeed seed;
  std::vector<MutationStep> chain;
};

/// Serializes to the single-line corpus format:
///   gen <topology> <n> <preset> <seed> : <op>:<subseed> <op>:<subseed> ...
///   tpch <name> : <op>:<subseed> ...
/// Sub-seeds are decimal; '#'-prefixed lines and blank lines are comments.
std::string FormatCorpusEntry(const CorpusEntry& entry);

/// Parses one line of the corpus format. Returns false (with *error set)
/// on malformed input; comment/blank lines return false with empty error.
bool ParseCorpusEntry(const std::string& line, CorpusEntry* entry,
                      std::string* error);

}  // namespace eadp

#endif  // EADP_QUERIES_MUTATION_H_
