#include "queries/tpch.h"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "common/rng.h"

namespace eadp {

namespace {

/// Attribute handles for building the TPC-H queries.
struct TpchAttrs {
  int ns_nationkey, ns_name;
  int s_suppkey, s_nationkey;
  int nc_nationkey, nc_name;
  int c_custkey, c_nationkey;
};

}  // namespace

Query MakeTpchEx() {
  Catalog catalog;
  // Relation order: nation_s(0), supplier(1), nation_c(2), customer(3).
  int nation_s = catalog.AddRelation("nation_s", 25);
  int supplier = catalog.AddRelation("supplier", 10000);
  int nation_c = catalog.AddRelation("nation_c", 25);
  int customer = catalog.AddRelation("customer", 150000);

  TpchAttrs a;
  a.ns_nationkey = catalog.AddAttribute(nation_s, "ns.n_nationkey", 25);
  a.ns_name = catalog.AddAttribute(nation_s, "ns.n_name", 25);
  a.s_suppkey = catalog.AddAttribute(supplier, "s.s_suppkey", 10000);
  a.s_nationkey = catalog.AddAttribute(supplier, "s.s_nationkey", 25);
  a.nc_nationkey = catalog.AddAttribute(nation_c, "nc.n_nationkey", 25);
  a.nc_name = catalog.AddAttribute(nation_c, "nc.n_name", 25);
  a.c_custkey = catalog.AddAttribute(customer, "c.c_custkey", 150000);
  a.c_nationkey = catalog.AddAttribute(customer, "c.c_nationkey", 25);

  catalog.DeclareKey(nation_s, AttrSet::Single(a.ns_nationkey));
  catalog.DeclareKey(supplier, AttrSet::Single(a.s_suppkey));
  catalog.DeclareKey(nation_c, AttrSet::Single(a.nc_nationkey));
  catalog.DeclareKey(customer, AttrSet::Single(a.c_custkey));

  JoinPredicate p_ns_s;
  p_ns_s.AddEquality(a.ns_nationkey, a.s_nationkey);
  auto left = OpTreeNode::Binary(OpKind::kJoin, OpTreeNode::Leaf(nation_s),
                                 OpTreeNode::Leaf(supplier), p_ns_s,
                                 1.0 / 25);

  JoinPredicate p_nc_c;
  p_nc_c.AddEquality(a.nc_nationkey, a.c_nationkey);
  auto right = OpTreeNode::Binary(OpKind::kJoin, OpTreeNode::Leaf(nation_c),
                                  OpTreeNode::Leaf(customer), p_nc_c,
                                  1.0 / 25);

  JoinPredicate p_outer;
  p_outer.AddEquality(a.ns_nationkey, a.nc_nationkey);
  auto root = OpTreeNode::Binary(OpKind::kFullOuter, std::move(left),
                                 std::move(right), p_outer, 1.0 / 25);

  AttrSet group_by;
  group_by.Add(a.ns_name);
  group_by.Add(a.nc_name);

  AggregateVector aggs;
  AggregateFunction cnt;
  cnt.output = "cnt";
  cnt.kind = AggKind::kCountStar;
  aggs.push_back(cnt);

  Query q = Query::FromTree(std::move(catalog), std::move(root), group_by,
                            std::move(aggs));
  q.Canonicalize();
  return q;
}

Query MakeTpchQ3() {
  Catalog catalog;
  // Unfiltered SF-1 statistics (the selections of the SQL query do not
  // change which groupings can be pushed; the paper's rel. cost of 0.65
  // reproduces from the raw table sizes).
  int customer = catalog.AddRelation("customer", 150000);
  int orders = catalog.AddRelation("orders", 1500000);
  int lineitem = catalog.AddRelation("lineitem", 6001215);

  int c_custkey = catalog.AddAttribute(customer, "c_custkey", 150000);
  int o_orderkey = catalog.AddAttribute(orders, "o_orderkey", 1500000);
  int o_custkey = catalog.AddAttribute(orders, "o_custkey", 100000);
  int o_orderdate = catalog.AddAttribute(orders, "o_orderdate", 2406);
  int o_shippriority = catalog.AddAttribute(orders, "o_shippriority", 1);
  int l_orderkey = catalog.AddAttribute(lineitem, "l_orderkey", 1500000);
  int l_extendedprice =
      catalog.AddAttribute(lineitem, "l_extendedprice", 900000);
  (void)o_orderdate;
  (void)o_shippriority;

  catalog.DeclareKey(customer, AttrSet::Single(c_custkey));
  catalog.DeclareKey(orders, AttrSet::Single(o_orderkey));

  JoinPredicate p_co;
  p_co.AddEquality(c_custkey, o_custkey);
  auto co = OpTreeNode::Binary(OpKind::kJoin, OpTreeNode::Leaf(customer),
                               OpTreeNode::Leaf(orders), p_co, 1.0 / 150000);

  JoinPredicate p_ol;
  p_ol.AddEquality(o_orderkey, l_orderkey);
  auto root = OpTreeNode::Binary(OpKind::kJoin, std::move(co),
                                 OpTreeNode::Leaf(lineitem), p_ol,
                                 1.0 / 1500000);

  AttrSet group_by;
  group_by.Add(o_orderkey);
  group_by.Add(o_orderdate);
  group_by.Add(o_shippriority);

  AggregateVector aggs;
  AggregateFunction revenue;
  revenue.output = "revenue";
  revenue.kind = AggKind::kSum;
  revenue.arg = l_extendedprice;
  aggs.push_back(revenue);

  Query q = Query::FromTree(std::move(catalog), std::move(root), group_by,
                            std::move(aggs));
  q.Canonicalize();
  return q;
}

Query MakeTpchQ5() {
  Catalog catalog;
  // Unfiltered SF-1 statistics.
  int region = catalog.AddRelation("region", 5);
  int nation = catalog.AddRelation("nation", 25);
  int customer = catalog.AddRelation("customer", 150000);
  int orders = catalog.AddRelation("orders", 1500000);
  int lineitem = catalog.AddRelation("lineitem", 6001215);
  int supplier = catalog.AddRelation("supplier", 10000);

  int r_regionkey = catalog.AddAttribute(region, "r_regionkey", 5);
  int n_nationkey = catalog.AddAttribute(nation, "n_nationkey", 25);
  int n_regionkey = catalog.AddAttribute(nation, "n_regionkey", 5);
  int n_name = catalog.AddAttribute(nation, "n_name", 25);
  int c_custkey = catalog.AddAttribute(customer, "c_custkey", 150000);
  int c_nationkey = catalog.AddAttribute(customer, "c_nationkey", 25);
  int o_orderkey = catalog.AddAttribute(orders, "o_orderkey", 1500000);
  int o_custkey = catalog.AddAttribute(orders, "o_custkey", 100000);
  int l_orderkey = catalog.AddAttribute(lineitem, "l_orderkey", 1500000);
  int l_suppkey = catalog.AddAttribute(lineitem, "l_suppkey", 10000);
  int l_extendedprice =
      catalog.AddAttribute(lineitem, "l_extendedprice", 900000);
  int s_suppkey = catalog.AddAttribute(supplier, "s_suppkey", 10000);
  int s_nationkey = catalog.AddAttribute(supplier, "s_nationkey", 25);
  (void)n_name;

  catalog.DeclareKey(region, AttrSet::Single(r_regionkey));
  catalog.DeclareKey(nation, AttrSet::Single(n_nationkey));
  catalog.DeclareKey(customer, AttrSet::Single(c_custkey));
  catalog.DeclareKey(orders, AttrSet::Single(o_orderkey));
  catalog.DeclareKey(supplier, AttrSet::Single(s_suppkey));

  // ((((region ⋈ nation) ⋈ customer) ⋈ orders) ⋈ lineitem) ⋈ supplier,
  // where the supplier join carries both l_suppkey = s_suppkey and the
  // cycle-closing c_nationkey = s_nationkey ... the latter is modelled as a
  // separate predicate on the same cut via the supplier join predicate
  // (conjunction), matching Q5's semantics.
  JoinPredicate p_rn;
  p_rn.AddEquality(r_regionkey, n_regionkey);
  auto rn = OpTreeNode::Binary(OpKind::kJoin, OpTreeNode::Leaf(region),
                               OpTreeNode::Leaf(nation), p_rn, 1.0 / 5);

  JoinPredicate p_nc;
  p_nc.AddEquality(n_nationkey, c_nationkey);
  auto rnc = OpTreeNode::Binary(OpKind::kJoin, std::move(rn),
                                OpTreeNode::Leaf(customer), p_nc, 1.0 / 25);

  JoinPredicate p_co;
  p_co.AddEquality(c_custkey, o_custkey);
  auto rnco = OpTreeNode::Binary(OpKind::kJoin, std::move(rnc),
                                 OpTreeNode::Leaf(orders), p_co,
                                 1.0 / 150000);

  JoinPredicate p_ol;
  p_ol.AddEquality(o_orderkey, l_orderkey);
  auto rncol = OpTreeNode::Binary(OpKind::kJoin, std::move(rnco),
                                  OpTreeNode::Leaf(lineitem), p_ol,
                                  1.0 / 1500000);

  JoinPredicate p_ls;
  p_ls.AddEquality(l_suppkey, s_suppkey);
  p_ls.AddEquality(c_nationkey, s_nationkey);
  auto root = OpTreeNode::Binary(OpKind::kJoin, std::move(rncol),
                                 OpTreeNode::Leaf(supplier), p_ls,
                                 (1.0 / 10000) * (1.0 / 25));

  AttrSet group_by;
  group_by.Add(n_name);

  AggregateVector aggs;
  AggregateFunction revenue;
  revenue.output = "revenue";
  revenue.kind = AggKind::kSum;
  revenue.arg = l_extendedprice;
  aggs.push_back(revenue);

  Query q = Query::FromTree(std::move(catalog), std::move(root), group_by,
                            std::move(aggs));
  q.Canonicalize();
  return q;
}

Query MakeTpchQ10() {
  Catalog catalog;
  // Unfiltered SF-1 statistics.
  int customer = catalog.AddRelation("customer", 150000);
  int orders = catalog.AddRelation("orders", 1500000);
  int lineitem = catalog.AddRelation("lineitem", 6001215);
  int nation = catalog.AddRelation("nation", 25);

  int c_custkey = catalog.AddAttribute(customer, "c_custkey", 150000);
  int c_nationkey = catalog.AddAttribute(customer, "c_nationkey", 25);
  int c_name = catalog.AddAttribute(customer, "c_name", 150000);
  int o_orderkey = catalog.AddAttribute(orders, "o_orderkey", 1500000);
  int o_custkey = catalog.AddAttribute(orders, "o_custkey", 100000);
  int l_orderkey = catalog.AddAttribute(lineitem, "l_orderkey", 1500000);
  int l_extendedprice =
      catalog.AddAttribute(lineitem, "l_extendedprice", 900000);
  int n_nationkey = catalog.AddAttribute(nation, "n_nationkey", 25);
  int n_name = catalog.AddAttribute(nation, "n_name", 25);
  (void)c_name;

  catalog.DeclareKey(customer, AttrSet::Single(c_custkey));
  catalog.DeclareKey(orders, AttrSet::Single(o_orderkey));
  catalog.DeclareKey(nation, AttrSet::Single(n_nationkey));

  JoinPredicate p_co;
  p_co.AddEquality(c_custkey, o_custkey);
  auto co = OpTreeNode::Binary(OpKind::kJoin, OpTreeNode::Leaf(customer),
                               OpTreeNode::Leaf(orders), p_co, 1.0 / 150000);

  JoinPredicate p_ol;
  p_ol.AddEquality(o_orderkey, l_orderkey);
  auto col = OpTreeNode::Binary(OpKind::kJoin, std::move(co),
                                OpTreeNode::Leaf(lineitem), p_ol,
                                1.0 / 1500000);

  JoinPredicate p_cn;
  p_cn.AddEquality(c_nationkey, n_nationkey);
  auto root = OpTreeNode::Binary(OpKind::kJoin, std::move(col),
                                 OpTreeNode::Leaf(nation), p_cn, 1.0 / 25);

  AttrSet group_by;
  group_by.Add(c_custkey);
  group_by.Add(c_name);
  group_by.Add(n_name);

  AggregateVector aggs;
  AggregateFunction revenue;
  revenue.output = "revenue";
  revenue.kind = AggKind::kSum;
  revenue.arg = l_extendedprice;
  aggs.push_back(revenue);

  Query q = Query::FromTree(std::move(catalog), std::move(root), group_by,
                            std::move(aggs));
  q.Canonicalize();
  return q;
}

Query MakeTpchQ1() {
  Catalog catalog;
  int lineitem = catalog.AddRelation("lineitem", 6001215);
  int l_returnflag = catalog.AddAttribute(lineitem, "l_returnflag", 3);
  int l_linestatus = catalog.AddAttribute(lineitem, "l_linestatus", 2);
  int l_quantity = catalog.AddAttribute(lineitem, "l_quantity", 50);
  int l_extendedprice =
      catalog.AddAttribute(lineitem, "l_extendedprice", 900000);
  int l_discount = catalog.AddAttribute(lineitem, "l_discount", 11);

  auto root = OpTreeNode::Leaf(lineitem);

  AttrSet group_by;
  group_by.Add(l_returnflag);
  group_by.Add(l_linestatus);

  AggregateVector aggs;
  auto add = [&](const char* name, AggKind kind, int arg) {
    AggregateFunction f;
    f.output = name;
    f.kind = kind;
    f.arg = arg;
    aggs.push_back(f);
  };
  add("sum_qty", AggKind::kSum, l_quantity);
  add("sum_base_price", AggKind::kSum, l_extendedprice);
  add("avg_qty", AggKind::kAvg, l_quantity);
  add("avg_price", AggKind::kAvg, l_extendedprice);
  add("avg_disc", AggKind::kAvg, l_discount);
  AggregateFunction cnt;
  cnt.output = "count_order";
  cnt.kind = AggKind::kCountStar;
  aggs.push_back(cnt);

  Query q = Query::FromTree(std::move(catalog), std::move(root), group_by,
                            std::move(aggs));
  q.Canonicalize();
  return q;
}

Query MakeTpchQ18() {
  Catalog catalog;
  int customer = catalog.AddRelation("customer", 150000);
  int orders = catalog.AddRelation("orders", 1500000);
  // Two logical copies of lineitem: the subquery side feeding the
  // groupjoin and the outer-query side.
  int lineitem_sub = catalog.AddRelation("lineitem_sub", 6001215);
  int lineitem = catalog.AddRelation("lineitem", 6001215);

  int c_custkey = catalog.AddAttribute(customer, "c_custkey", 150000);
  int o_orderkey = catalog.AddAttribute(orders, "o_orderkey", 1500000);
  int o_custkey = catalog.AddAttribute(orders, "o_custkey", 100000);
  int o_orderdate = catalog.AddAttribute(orders, "o_orderdate", 2406);
  int ls_orderkey = catalog.AddAttribute(lineitem_sub, "ls_orderkey", 1500000);
  int ls_quantity = catalog.AddAttribute(lineitem_sub, "ls_quantity", 50);
  int l_orderkey = catalog.AddAttribute(lineitem, "l_orderkey", 1500000);
  int l_quantity = catalog.AddAttribute(lineitem, "l_quantity", 50);
  (void)o_orderdate;

  catalog.DeclareKey(customer, AttrSet::Single(c_custkey));
  catalog.DeclareKey(orders, AttrSet::Single(o_orderkey));

  // orders Z_{o_orderkey = ls_orderkey; q:sum(ls_quantity)} lineitem_sub
  JoinPredicate p_gj;
  p_gj.AddEquality(o_orderkey, ls_orderkey);
  auto gj = OpTreeNode::Binary(OpKind::kGroupJoin, OpTreeNode::Leaf(orders),
                               OpTreeNode::Leaf(lineitem_sub), p_gj,
                               1.0 / 1500000);
  AggregateFunction q_sum;
  q_sum.output = "q";
  q_sum.kind = AggKind::kSum;
  q_sum.arg = ls_quantity;
  gj->groupjoin_aggs.push_back(q_sum);

  JoinPredicate p_co;
  p_co.AddEquality(c_custkey, o_custkey);
  auto co = OpTreeNode::Binary(OpKind::kJoin, std::move(gj),
                               OpTreeNode::Leaf(customer), p_co,
                               1.0 / 150000);

  JoinPredicate p_ol;
  p_ol.AddEquality(o_orderkey, l_orderkey);
  auto root = OpTreeNode::Binary(OpKind::kJoin, std::move(co),
                                 OpTreeNode::Leaf(lineitem), p_ol,
                                 1.0 / 1500000);

  AttrSet group_by;
  group_by.Add(c_custkey);
  group_by.Add(o_orderkey);

  AggregateVector aggs;
  AggregateFunction total;
  total.output = "total_qty";
  total.kind = AggKind::kSum;
  total.arg = l_quantity;
  aggs.push_back(total);

  Query q = Query::FromTree(std::move(catalog), std::move(root), group_by,
                            std::move(aggs));
  q.Canonicalize();
  return q;
}

Database MakeTpchMiniDatabase(const Query& query, double scale_fraction,
                              uint64_t seed) {
  const Catalog& catalog = query.catalog();
  Rng rng(seed);
  Database db;
  db.tables.resize(static_cast<size_t>(catalog.num_relations()));

  // Row counts per relation.
  std::vector<int> rows(static_cast<size_t>(catalog.num_relations()));
  for (int r = 0; r < catalog.num_relations(); ++r) {
    rows[static_cast<size_t>(r)] = std::max(
        2, static_cast<int>(catalog.relation(r).cardinality * scale_fraction));
  }

  // Foreign keys by TPC-H column suffix: the attribute "o_custkey" draws
  // from the key range of the relation whose *key* ends in "custkey".
  auto suffix = [](const std::string& name) {
    size_t pos = name.find('_');
    return pos == std::string::npos ? name : name.substr(pos + 1);
  };
  std::unordered_map<std::string, int> key_range;  // suffix -> parent rows
  for (int r = 0; r < catalog.num_relations(); ++r) {
    for (AttrSet key : catalog.relation(r).keys) {
      if (key.Count() != 1) continue;
      key_range[suffix(catalog.attribute(key.Lowest()).name)] =
          rows[static_cast<size_t>(r)];
    }
  }

  for (int r = 0; r < catalog.num_relations(); ++r) {
    const RelationDef& def = catalog.relation(r);
    AttrSet key_attrs;
    for (AttrSet k : def.keys) key_attrs.UnionWith(k);
    std::vector<std::string> columns;
    std::vector<int> attr_ids;
    for (int a : BitsOf(def.attributes)) {
      columns.push_back(catalog.attribute(a).name);
      attr_ids.push_back(a);
    }
    Table table(columns);
    int n = rows[static_cast<size_t>(r)];
    for (int i = 0; i < n; ++i) {
      Row row;
      row.reserve(attr_ids.size());
      for (int a : attr_ids) {
        const std::string& name = catalog.attribute(a).name;
        if (key_attrs.Contains(a)) {
          row.push_back(Value::Int(i));  // unique key values
          continue;
        }
        auto it = key_range.find(suffix(name));
        if (it != key_range.end()) {
          row.push_back(Value::Int(rng.UniformInt(0, it->second - 1)));
          continue;
        }
        double d = catalog.DistinctOf(a);
        int64_t domain =
            std::max<int64_t>(2, std::min<int64_t>(static_cast<int64_t>(d),
                                                   std::max(2, n)));
        row.push_back(Value::Int(rng.UniformInt(0, domain - 1)));
      }
      table.AddRow(std::move(row));
    }
    db.tables[static_cast<size_t>(r)] = std::move(table);
  }
  return db;
}

Database MakeExDatabase(const Query& ex_query, int scale, uint64_t seed) {
  const Catalog& catalog = ex_query.catalog();
  Rng rng(seed);
  Database db;
  db.tables.resize(4);

  int num_nations = 25;
  int num_suppliers = 40 * scale;
  int num_customers = 600 * scale;

  // nation_s(ns.n_nationkey, ns.n_name)
  Table nation_s({catalog.attribute(0).name, catalog.attribute(1).name});
  for (int i = 0; i < num_nations; ++i) {
    nation_s.AddRow({Value::Int(i), Value::Int(100 + i)});
  }
  db.tables[0] = nation_s;

  // supplier(s.s_suppkey, s.s_nationkey)
  Table supplier({catalog.attribute(2).name, catalog.attribute(3).name});
  for (int i = 0; i < num_suppliers; ++i) {
    supplier.AddRow(
        {Value::Int(i), Value::Int(rng.UniformInt(0, num_nations - 1))});
  }
  db.tables[1] = supplier;

  // nation_c(nc.n_nationkey, nc.n_name)
  Table nation_c({catalog.attribute(4).name, catalog.attribute(5).name});
  for (int i = 0; i < num_nations; ++i) {
    nation_c.AddRow({Value::Int(i), Value::Int(100 + i)});
  }
  db.tables[2] = nation_c;

  // customer(c.c_custkey, c.c_nationkey)
  Table customer({catalog.attribute(6).name, catalog.attribute(7).name});
  for (int i = 0; i < num_customers; ++i) {
    customer.AddRow(
        {Value::Int(i), Value::Int(rng.UniformInt(0, num_nations - 1))});
  }
  db.tables[3] = customer;
  return db;
}

}  // namespace eadp
