// Uniform random binary trees via unranking.
//
// The paper's evaluation generates operator trees by unranking random
// binary trees (Liebehenschel's lexicographic Dyck-word generation). We
// implement the equivalent Catalan-decomposition unranking: the shapes of
// binary trees with n leaves are counted by C(n-1); decomposing a uniform
// rank r < C(n-1) by left-subtree size yields a uniformly distributed
// shape. Ranks are drawn uniformly by the workload generator, which gives
// the same distribution as unranking a uniform lexicographic index.

#ifndef EADP_QUERIES_RANDOM_TREE_H_
#define EADP_QUERIES_RANDOM_TREE_H_

#include <cstdint>
#include <memory>

namespace eadp {

/// Shape of a binary tree; leaves carry their left-to-right index.
struct TreeShape {
  bool is_leaf = false;
  int leaf_index = -1;  ///< set for leaves, in left-to-right order
  std::unique_ptr<TreeShape> left;
  std::unique_ptr<TreeShape> right;

  int NumLeaves() const {
    return is_leaf ? 1 : left->NumLeaves() + right->NumLeaves();
  }
};

/// Catalan number C(n) (n <= 33 fits in uint64_t).
uint64_t CatalanNumber(int n);

/// Number of binary tree shapes with `leaves` leaves: C(leaves - 1).
uint64_t NumBinaryTrees(int leaves);

/// The `rank`-th binary tree with `leaves` leaves
/// (0 <= rank < NumBinaryTrees(leaves)). Leaf indexes are assigned left to
/// right starting at `first_leaf`.
std::unique_ptr<TreeShape> UnrankBinaryTree(int leaves, uint64_t rank,
                                            int first_leaf = 0);

}  // namespace eadp

#endif  // EADP_QUERIES_RANDOM_TREE_H_
