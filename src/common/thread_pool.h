// A fixed-size thread pool with task futures.
//
// The optimizer's unit of concurrency is one whole optimization run: every
// run owns a private PlanArena (DESIGN.md §6), so runs share nothing by
// construction and the pool needs no work stealing, no task priorities and
// no locks beyond the queue mutex. plangen/parallel.h builds both the
// batched multi-query entry point and the concurrent kGoo/kIdp race of the
// adaptive facade on top of this (DESIGN.md §9).
//
// Semantics:
//   * Submit(f) enqueues `f` and returns a std::future for its result.
//     Tasks *start* in submission order (FIFO queue); completion order is
//     up to the scheduler.
//   * Exceptions thrown by a task are captured into its future
//     (std::packaged_task semantics) and rethrown at .get().
//   * The destructor drains the queue: every task submitted before
//     destruction runs to completion, so futures obtained from Submit
//     never go broken. (A pool that discards queued tasks turns shutdown
//     into a race against its own callers; draining makes teardown
//     deterministic. thread_pool_test pins this.)
//   * num_threads is clamped to >= 1. A size-1 pool is a valid serial
//     executor — callers that need strict sequential semantics (e.g. the
//     adaptive race fallback) should simply not go through the pool.

#ifndef EADP_COMMON_THREAD_POOL_H_
#define EADP_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace eadp {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains every queued task, then joins the workers (see file comment).
  ~ThreadPool();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Number of tasks submitted over the pool's lifetime (test/stats hook).
  uint64_t tasks_submitted() const;

  /// Enqueues `f` for execution and returns the future of its result.
  /// Thread-safe; tasks may themselves submit further tasks, but must not
  /// block on futures of tasks queued *behind* them (classic pool
  /// deadlock — the optimizer's fan-out/fan-in callers never need to).
  template <typename F>
  auto Submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    // packaged_task is move-only; std::function requires copyable targets,
    // so the task lives behind a shared_ptr.
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    Enqueue([task]() { (*task)(); });
    return future;
  }

  /// Fan-out/fan-in helper: invokes `fn(w)` for every worker index w in
  /// [0, workers), waits for all of them, and returns the barrier wait —
  /// the milliseconds the *calling thread* spent blocked on peers after
  /// finishing its own share (the parallel DP surfaces this per-run, see
  /// OptimizeStats::dp_barrier_wait_ms). Worker 0 runs inline on the
  /// calling thread; workers 1.. are pool tasks, so a fan-out of W needs
  /// only W-1 pool slots and the caller never idles. With a null pool or
  /// workers <= 1, every index runs inline in ascending order — the
  /// degenerate sequential schedule. Exceptions from any worker are
  /// rethrown (first one wins) only after every worker has finished:
  /// unwinding while peers still run would destroy state they read.
  static double FanOut(ThreadPool* pool, int workers,
                       const std::function<void(int)>& fn);

 private:
  void Enqueue(std::function<void()> job);
  void WorkerLoop();

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  uint64_t submitted_ = 0;
  bool shutdown_ = false;
};

}  // namespace eadp

#endif  // EADP_COMMON_THREAD_POOL_H_
