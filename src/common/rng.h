// Deterministic pseudo-random number generation.
//
// All randomized components (workload generator, data generator, property
// tests) take an explicit seed so every experiment is reproducible bit for
// bit. We use xoshiro256** seeded via splitmix64 — fast, high quality, and
// header-light compared to <random> engines.

#ifndef EADP_COMMON_RNG_H_
#define EADP_COMMON_RNG_H_

#include <cassert>
#include <cstdint>

namespace eadp {

/// splitmix64 finalizer: a fast, well-distributed 64-bit mixer. Used to
/// seed the RNG below and as the hash mixer for word-sized keys (relation
/// sets, pointers) whose raw bit patterns cluster badly.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Deterministic RNG (xoshiro256**).
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// True with probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Picks an index in [0, n) proportionally to `weights` (size n).
  int PickWeighted(const double* weights, int n);

 private:
  uint64_t s_[4];
};

}  // namespace eadp

#endif  // EADP_COMMON_RNG_H_
