// Deterministic pseudo-random number generation.
//
// All randomized components (workload generator, data generator, property
// tests) take an explicit seed so every experiment is reproducible bit for
// bit. We use xoshiro256** seeded via splitmix64 — fast, high quality, and
// header-light compared to <random> engines.

#ifndef EADP_COMMON_RNG_H_
#define EADP_COMMON_RNG_H_

#include <cassert>
#include <cstdint>

#include "common/hash.h"  // Mix64, re-exported for existing includers

namespace eadp {

/// Deterministic RNG (xoshiro256**).
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// True with probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Picks an index in [0, n) proportionally to `weights` (size n).
  int PickWeighted(const double* weights, int n);

 private:
  uint64_t s_[4];
};

}  // namespace eadp

#endif  // EADP_COMMON_RNG_H_
