#include "common/strings.h"

#include <cstdio>

namespace eadp {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace eadp
