// Byte-level binary I/O primitives for the durable encodings: varints, a
// software CRC-32, and a bounds-checked reader.
//
// CanonicalWriter (queries/fingerprint.h) serializes *identity* — fixed
// width, because a fingerprint must distinguish everything the optimizer
// distinguishes and nothing else. The encodings here serialize *storage*
// (plan blobs, persistent-cache records), where compactness and corruption
// detection matter instead: varints shrink the small integers that dominate
// plan payloads, and every durable artifact carries a CRC-32 so a flipped
// bit or torn write is rejected, never decoded.
//
// BinReader is the decoding discipline (grounded in embag-style record
// parsing): every read is bounds-checked against the buffer, failure
// latches (all subsequent reads return zero values), and the caller checks
// ok() once at the end — so a decoder over adversarial bytes can be written
// as straight-line code with no UB on any input, which the bit-flip and
// truncation sweeps of plan_serde_test assert under ASan.

#ifndef EADP_COMMON_BINIO_H_
#define EADP_COMMON_BINIO_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace eadp {

// ---------------------------------------------------------------------------
// Varints (LEB128) and zigzag, appended to a std::string.
// ---------------------------------------------------------------------------

inline void PutVarint64(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

inline void PutVarint32(std::string* out, uint32_t v) {
  PutVarint64(out, v);
}

/// Zigzag maps small negative values to small varints (-1 -> 1, 1 -> 2):
/// plan payloads carry -1 sentinels (null relation, count(*) argument)
/// that plain two's complement would blow up to ten bytes.
inline uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

inline int64_t ZigzagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

inline void PutZigzag(std::string* out, int64_t v) {
  PutVarint64(out, ZigzagEncode(v));
}

inline void PutFixed32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

inline void PutFixed64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

/// Bit-pattern double: storage encodings round-trip every value the cost
/// model can produce exactly, like the fingerprint does.
inline void PutF64(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutFixed64(out, bits);
}

inline void PutLengthPrefixed(std::string* out, std::string_view s) {
  PutVarint64(out, s.size());
  out->append(s.data(), s.size());
}

// ---------------------------------------------------------------------------
// CRC-32 (the reflected 0xEDB88320 polynomial, zlib-compatible), table
// driven. Guarantees: any single-bit error and any error burst confined to
// 32 consecutive bits is detected — which is why the adversarial decode
// tests may flip *any* byte of a blob and assert rejection.
// ---------------------------------------------------------------------------

namespace binio_internal {

inline const std::array<uint32_t, 256>& Crc32Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace binio_internal

/// One-shot CRC-32 of a byte range. Chainable: pass a previous result as
/// `seed` to extend (seed 0 starts a fresh checksum).
inline uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0) {
  const auto& table = binio_internal::Crc32Table();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xffffffffu;
  for (size_t i = 0; i < size; ++i) {
    c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

inline uint32_t Crc32(std::string_view s, uint32_t seed = 0) {
  return Crc32(s.data(), s.size(), seed);
}

// ---------------------------------------------------------------------------
// Bounds-checked reader over an immutable byte buffer.
// ---------------------------------------------------------------------------

/// Reads never touch memory past the buffer: a failed read (truncation,
/// malformed varint) latches failed() and every subsequent read returns a
/// zero value, so decoders are straight-line code that checks ok() at
/// checkpoints. Fail() is also the decoder's rejection hook for semantic
/// violations (bad enum value, index out of range).
class BinReader {
 public:
  explicit BinReader(std::string_view data) : data_(data) {}

  bool ok() const { return !failed_; }
  bool failed() const { return failed_; }
  /// Marks the buffer malformed; the position stops advancing.
  void Fail() { failed_ = true; }

  size_t remaining() const { return failed_ ? 0 : data_.size() - pos_; }
  size_t position() const { return pos_; }
  /// True iff every byte was consumed and nothing failed — decoders
  /// require this, so trailing garbage is rejected like truncation.
  bool AtEnd() const { return !failed_ && pos_ == data_.size(); }

  uint8_t ReadU8() {
    if (!Require(1)) return 0;
    return static_cast<uint8_t>(data_[pos_++]);
  }

  uint32_t ReadFixed32() {
    if (!Require(4)) return 0;
    uint32_t v;
    std::memcpy(&v, data_.data() + pos_, 4);
    pos_ += 4;
    return v;
  }

  uint64_t ReadFixed64() {
    if (!Require(8)) return 0;
    uint64_t v;
    std::memcpy(&v, data_.data() + pos_, 8);
    pos_ += 8;
    return v;
  }

  double ReadF64() {
    uint64_t bits = ReadFixed64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  /// LEB128; rejects varints longer than 10 bytes or with set bits beyond
  /// the 64th (non-canonical encodings of overlong inputs).
  uint64_t ReadVarint64() {
    uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (!Require(1)) return 0;
      uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
      uint64_t payload = byte & 0x7fu;
      if (shift == 63 && payload > 1) {  // would overflow 64 bits
        Fail();
        return 0;
      }
      v |= payload << shift;
      if ((byte & 0x80u) == 0) return v;
    }
    Fail();  // 10th byte still had the continuation bit
    return 0;
  }

  /// Varint that must fit 32 bits.
  uint32_t ReadVarint32() {
    uint64_t v = ReadVarint64();
    if (v > 0xffffffffull) {
      Fail();
      return 0;
    }
    return static_cast<uint32_t>(v);
  }

  int64_t ReadZigzag() { return ZigzagDecode(ReadVarint64()); }

  /// A length-prefixed byte string; the length is validated against the
  /// remaining buffer before any copy.
  std::string ReadLengthPrefixed() {
    uint64_t n = ReadVarint64();
    if (failed_ || n > remaining()) {
      Fail();
      return {};
    }
    std::string s(data_.substr(pos_, static_cast<size_t>(n)));
    pos_ += static_cast<size_t>(n);
    return s;
  }

  /// Raw view of the next `n` bytes (no copy); empty view on underrun.
  std::string_view ReadBytes(size_t n) {
    if (!Require(n)) return {};
    std::string_view v = data_.substr(pos_, n);
    pos_ += n;
    return v;
  }

 private:
  bool Require(size_t n) {
    if (failed_ || data_.size() - pos_ < n) {
      failed_ = true;
      return false;
    }
    return true;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace eadp

#endif  // EADP_COMMON_BINIO_H_
