// Small fixed-capacity bitsets used throughout the optimizer.
//
// The plan generator manipulates sets of relations and sets of attributes.
// Queries in this library are bounded to 128 relations and 128 attributes
// per "attribute universe", which keeps both kinds of sets in a single
// 128-bit word (`unsigned __int128`). This is the same representation
// DPhyp-style enumerators use in practice — subset enumeration,
// neighborhood computation and csg-cmp-pair counting all reduce to a
// handful of bit tricks — and the double-word carry/borrow arithmetic those
// tricks need ("lowest bit", "next subset") compiles to two or three
// instructions on every 64-bit target. The 128-bit capacity is what lets
// the large-query subsystem (plangen/large_query.h) represent 100-relation
// queries in the same plan structures as the exact enumeration.

#ifndef EADP_COMMON_BITSET_H_
#define EADP_COMMON_BITSET_H_

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <string>

#include "common/hash.h"

// The whole library leans on C++20 <bit> (std::popcount, std::countr_zero).
// Guard explicitly: under an older -std= the errors otherwise surface as
// dozens of confusing "not a member of std" failures across every TU.
#if !defined(__cpp_lib_bitops) || __cpp_lib_bitops < 201907L
#error "eadp requires C++20 bit operations; compile with -std=c++20 or newer"
#endif
// The 128-bit storage relies on the GCC/Clang extension type.
#if !defined(__SIZEOF_INT128__)
#error "eadp requires the __int128 extension (GCC or Clang on a 64-bit target)"
#endif

namespace eadp {

/// Number of elements a Bitset128 can hold.
inline constexpr int kBitsetCapacity = 128;

/// A set over the universe {0, ..., 127}, stored in one 128-bit word.
///
/// Used both for sets of relation indices (`RelSet`) and sets of attribute
/// indices (`AttrSet`). All operations are O(1) except the iteration helpers,
/// which are O(popcount).
class Bitset128 {
 public:
  using Word = unsigned __int128;

  constexpr Bitset128() : bits_(0) {}
  constexpr explicit Bitset128(Word bits) : bits_(bits) {}

  /// The set {i}.
  static constexpr Bitset128 Single(int i) {
    assert(i >= 0 && i < kBitsetCapacity);
    return Bitset128(Word{1} << i);
  }

  /// The set {0, ..., n-1}.
  static constexpr Bitset128 FirstN(int n) {
    assert(n >= 0 && n <= kBitsetCapacity);
    return n == kBitsetCapacity ? Bitset128(~Word{0})
                                : Bitset128((Word{1} << n) - 1);
  }

  static constexpr Bitset128 Empty() { return Bitset128(); }

  constexpr Word bits() const { return bits_; }
  /// The two 64-bit halves.
  constexpr uint64_t low() const { return static_cast<uint64_t>(bits_); }
  constexpr uint64_t high() const { return static_cast<uint64_t>(bits_ >> 64); }

  /// Mixed (not identity) 64-bit content hash: the sets of one query
  /// differ in a few low bits, which identity hashing would pile into a
  /// handful of buckets. The single definition all hash tables keyed on
  /// bitsets share (DpTable, the builder interners, KeySet::Hash).
  ///
  /// The low word enters the final mixer via addition rather than its own
  /// mix round; audited for the n > 64 regime (sets differing only in bits
  /// 64–127, subset families straddling the word boundary) and measured
  /// indistinguishable from an ideal hash — Mix64(high) decorrelates the
  /// high word before the sum and the outer Mix64 avalanches it, and a
  /// second round bought nothing. bitset_test (Bitset128Hash.*) pins the
  /// bucket distribution.
  constexpr uint64_t Hash() const { return Mix64(low() + Mix64(high())); }

  /// Ready-made functor for unordered containers keyed on bitsets.
  struct Hasher {
    size_t operator()(Bitset128 s) const {
      return static_cast<size_t>(s.Hash());
    }
  };

  constexpr bool empty() const { return bits_ == 0; }
  constexpr int Count() const {
    return std::popcount(low()) + std::popcount(high());
  }

  constexpr bool Contains(int i) const { return (bits_ >> i) & 1; }
  constexpr bool ContainsAll(Bitset128 other) const {
    return (bits_ & other.bits_) == other.bits_;
  }
  constexpr bool Intersects(Bitset128 other) const {
    return (bits_ & other.bits_) != 0;
  }
  constexpr bool IsSubsetOf(Bitset128 other) const {
    return other.ContainsAll(*this);
  }

  constexpr Bitset128 Union(Bitset128 o) const {
    return Bitset128(bits_ | o.bits_);
  }
  constexpr Bitset128 Intersect(Bitset128 o) const {
    return Bitset128(bits_ & o.bits_);
  }
  constexpr Bitset128 Minus(Bitset128 o) const {
    return Bitset128(bits_ & ~o.bits_);
  }

  constexpr void Add(int i) { bits_ |= Word{1} << i; }
  constexpr void Remove(int i) { bits_ &= ~(Word{1} << i); }
  constexpr void UnionWith(Bitset128 o) { bits_ |= o.bits_; }

  /// Index of the lowest set bit. Undefined on the empty set.
  constexpr int Lowest() const {
    assert(!empty());
    uint64_t lo = low();
    return lo != 0 ? std::countr_zero(lo) : 64 + std::countr_zero(high());
  }

  /// The set containing only the lowest element. Undefined on the empty set.
  constexpr Bitset128 LowestBit() const {
    assert(!empty());
    return Bitset128(bits_ & (~bits_ + 1));
  }

  /// All elements strictly below i: {0, ..., i-1}.
  static constexpr Bitset128 Below(int i) { return FirstN(i); }

  friend constexpr bool operator==(Bitset128 a, Bitset128 b) {
    return a.bits_ == b.bits_;
  }
  friend constexpr bool operator!=(Bitset128 a, Bitset128 b) {
    return a.bits_ != b.bits_;
  }
  /// Arbitrary total order (by word value); used for map keys.
  friend constexpr bool operator<(Bitset128 a, Bitset128 b) {
    return a.bits_ < b.bits_;
  }

  /// Renders as e.g. "{0,3,5}".
  std::string ToString() const;

 private:
  Word bits_;
};

using RelSet = Bitset128;
using AttrSet = Bitset128;

/// Iterates over the elements of a Bitset128 in increasing order.
///
///   for (int i : BitsOf(set)) { ... }
class BitsOf {
 public:
  explicit BitsOf(Bitset128 s) : bits_(s.bits()) {}

  class Iterator {
   public:
    explicit Iterator(Bitset128::Word bits) : bits_(bits) {}
    int operator*() const { return Bitset128(bits_).Lowest(); }
    Iterator& operator++() {
      bits_ &= bits_ - 1;
      return *this;
    }
    bool operator!=(const Iterator& o) const { return bits_ != o.bits_; }

   private:
    Bitset128::Word bits_;
  };

  Iterator begin() const { return Iterator(bits_); }
  Iterator end() const { return Iterator(0); }

 private:
  Bitset128::Word bits_;
};

/// Enumerates all non-empty proper-or-improper subsets of `super` in
/// increasing word order. Standard "subset of a mask" trick:
///
///   for (Bitset128 s : SubsetsOf(super)) { ... }
///
/// Yields 2^|super| - 1 sets (the empty set is skipped).
class SubsetsOf {
 public:
  using Word = Bitset128::Word;

  explicit SubsetsOf(Bitset128 super) : mask_(super.bits()) {}

  class Iterator {
   public:
    Iterator(Word sub, Word mask, bool done)
        : sub_(sub), mask_(mask), done_(done) {}
    Bitset128 operator*() const { return Bitset128(sub_); }
    Iterator& operator++() {
      if (sub_ == mask_) {
        done_ = true;
      } else {
        sub_ = (sub_ - mask_) & mask_;
      }
      return *this;
    }
    bool operator!=(const Iterator& o) const {
      return done_ != o.done_ || (!done_ && sub_ != o.sub_);
    }

   private:
    Word sub_;
    Word mask_;
    bool done_;
  };

  Iterator begin() const {
    if (mask_ == 0) return end();
    Word first = (0 - mask_) & mask_;  // lowest bit of mask
    return Iterator(first, mask_, false);
  }
  Iterator end() const { return Iterator(0, mask_, true); }

 private:
  Word mask_;
};

}  // namespace eadp

#endif  // EADP_COMMON_BITSET_H_
