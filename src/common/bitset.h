// Small fixed-capacity bitsets used throughout the optimizer.
//
// The plan generator manipulates sets of relations and sets of attributes.
// Queries in this library are bounded to 64 relations and 64 attributes per
// "attribute universe", which keeps both kinds of sets in a single machine
// word. This is the same representation DPhyp-style enumerators use in
// practice; subset enumeration, neighborhood computation and csg-cmp-pair
// counting all reduce to a handful of bit tricks.

#ifndef EADP_COMMON_BITSET_H_
#define EADP_COMMON_BITSET_H_

#include <bit>
#include <cassert>
#include <cstdint>
#include <string>

// The whole library leans on C++20 <bit> (std::popcount, std::countr_zero).
// Guard explicitly: under an older -std= the errors otherwise surface as
// dozens of confusing "not a member of std" failures across every TU.
#if !defined(__cpp_lib_bitops) || __cpp_lib_bitops < 201907L
#error "eadp requires C++20 bit operations; compile with -std=c++20 or newer"
#endif

namespace eadp {

/// A set over the universe {0, ..., 63}, stored in one machine word.
///
/// Used both for sets of relation indices (`RelSet`) and sets of attribute
/// indices (`AttrSet`). All operations are O(1) except the iteration helpers,
/// which are O(popcount).
class Bitset64 {
 public:
  constexpr Bitset64() : bits_(0) {}
  constexpr explicit Bitset64(uint64_t bits) : bits_(bits) {}

  /// The set {i}.
  static constexpr Bitset64 Single(int i) {
    assert(i >= 0 && i < 64);
    return Bitset64(uint64_t{1} << i);
  }

  /// The set {0, ..., n-1}.
  static constexpr Bitset64 FirstN(int n) {
    assert(n >= 0 && n <= 64);
    return n == 64 ? Bitset64(~uint64_t{0})
                   : Bitset64((uint64_t{1} << n) - 1);
  }

  static constexpr Bitset64 Empty() { return Bitset64(); }

  constexpr uint64_t bits() const { return bits_; }
  constexpr bool empty() const { return bits_ == 0; }
  constexpr int Count() const { return std::popcount(bits_); }

  constexpr bool Contains(int i) const { return (bits_ >> i) & 1; }
  constexpr bool ContainsAll(Bitset64 other) const {
    return (bits_ & other.bits_) == other.bits_;
  }
  constexpr bool Intersects(Bitset64 other) const {
    return (bits_ & other.bits_) != 0;
  }
  constexpr bool IsSubsetOf(Bitset64 other) const {
    return other.ContainsAll(*this);
  }

  constexpr Bitset64 Union(Bitset64 o) const { return Bitset64(bits_ | o.bits_); }
  constexpr Bitset64 Intersect(Bitset64 o) const {
    return Bitset64(bits_ & o.bits_);
  }
  constexpr Bitset64 Minus(Bitset64 o) const {
    return Bitset64(bits_ & ~o.bits_);
  }

  constexpr void Add(int i) { bits_ |= uint64_t{1} << i; }
  constexpr void Remove(int i) { bits_ &= ~(uint64_t{1} << i); }
  constexpr void UnionWith(Bitset64 o) { bits_ |= o.bits_; }

  /// Index of the lowest set bit. Undefined on the empty set.
  constexpr int Lowest() const {
    assert(!empty());
    return std::countr_zero(bits_);
  }

  /// The set containing only the lowest element. Undefined on the empty set.
  constexpr Bitset64 LowestBit() const {
    assert(!empty());
    return Bitset64(bits_ & (~bits_ + 1));
  }

  /// All elements strictly below i: {0, ..., i-1}.
  static constexpr Bitset64 Below(int i) { return FirstN(i); }

  friend constexpr bool operator==(Bitset64 a, Bitset64 b) {
    return a.bits_ == b.bits_;
  }
  friend constexpr bool operator!=(Bitset64 a, Bitset64 b) {
    return a.bits_ != b.bits_;
  }
  /// Arbitrary total order (by word value); used for map keys.
  friend constexpr bool operator<(Bitset64 a, Bitset64 b) {
    return a.bits_ < b.bits_;
  }

  /// Renders as e.g. "{0,3,5}".
  std::string ToString() const;

 private:
  uint64_t bits_;
};

using RelSet = Bitset64;
using AttrSet = Bitset64;

/// Iterates over the elements of a Bitset64 in increasing order.
///
///   for (int i : BitsOf(set)) { ... }
class BitsOf {
 public:
  explicit BitsOf(Bitset64 s) : bits_(s.bits()) {}

  class Iterator {
   public:
    explicit Iterator(uint64_t bits) : bits_(bits) {}
    int operator*() const { return std::countr_zero(bits_); }
    Iterator& operator++() {
      bits_ &= bits_ - 1;
      return *this;
    }
    bool operator!=(const Iterator& o) const { return bits_ != o.bits_; }

   private:
    uint64_t bits_;
  };

  Iterator begin() const { return Iterator(bits_); }
  Iterator end() const { return Iterator(0); }

 private:
  uint64_t bits_;
};

/// Enumerates all non-empty proper-or-improper subsets of `super` in
/// increasing word order. Standard "subset of a mask" trick:
///
///   for (Bitset64 s : SubsetsOf(super)) { ... }
///
/// Yields 2^|super| - 1 sets (the empty set is skipped).
class SubsetsOf {
 public:
  explicit SubsetsOf(Bitset64 super) : mask_(super.bits()) {}

  class Iterator {
   public:
    Iterator(uint64_t sub, uint64_t mask, bool done)
        : sub_(sub), mask_(mask), done_(done) {}
    Bitset64 operator*() const { return Bitset64(sub_); }
    Iterator& operator++() {
      if (sub_ == mask_) {
        done_ = true;
      } else {
        sub_ = (sub_ - mask_) & mask_;
      }
      return *this;
    }
    bool operator!=(const Iterator& o) const {
      return done_ != o.done_ || (!done_ && sub_ != o.sub_);
    }

   private:
    uint64_t sub_;
    uint64_t mask_;
    bool done_;
  };

  Iterator begin() const {
    if (mask_ == 0) return end();
    uint64_t first = (0 - mask_) & mask_;  // lowest bit of mask
    return Iterator(first, mask_, false);
  }
  Iterator end() const { return Iterator(0, mask_, true); }

 private:
  uint64_t mask_;
};

}  // namespace eadp

#endif  // EADP_COMMON_BITSET_H_
