// Tiny string helpers (GCC 12 lacks <format>, so we keep a snprintf shim).

#ifndef EADP_COMMON_STRINGS_H_
#define EADP_COMMON_STRINGS_H_

#include <cstdarg>
#include <string>
#include <vector>

namespace eadp {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins the elements of `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep);

}  // namespace eadp

#endif  // EADP_COMMON_STRINGS_H_
