#include "common/bitset.h"

#include <sstream>

namespace eadp {

std::string Bitset128::ToString() const {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (int i : BitsOf(*this)) {
    if (!first) os << ',';
    os << i;
    first = false;
  }
  os << '}';
  return os.str();
}

}  // namespace eadp
