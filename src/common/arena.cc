#include "common/arena.h"

#include <algorithm>
#include <cassert>

namespace eadp {

Arena::Arena() {
  AddBlock(kMinBlockSize);
  // Touch every page now: first-write faults belong to construction, not
  // to the first (often timed) allocations.
  std::fill(ptr_, end_, 0);
}

void* Arena::AllocateBytes(size_t size, size_t align) {
  assert(align != 0 && (align & (align - 1)) == 0 && "align: power of two");
  assert(align <= alignof(std::max_align_t));
  if (size == 0) size = 1;
  uintptr_t p = reinterpret_cast<uintptr_t>(ptr_);
  uintptr_t aligned = (p + (align - 1)) & ~uintptr_t(align - 1);
  if (ptr_ == nullptr ||
      aligned + size > reinterpret_cast<uintptr_t>(end_)) {
    AddBlock(size + align - 1);
    p = reinterpret_cast<uintptr_t>(ptr_);
    aligned = (p + (align - 1)) & ~uintptr_t(align - 1);
  }
  ptr_ = reinterpret_cast<char*>(aligned + size);
  bytes_used_ += size;
  return reinterpret_cast<void*>(aligned);
}

void Arena::AddBlock(size_t min_size) {
  size_t size = std::max(next_block_size_, min_size);
  next_block_size_ = std::min(next_block_size_ * 2, kMaxBlockSize);
  Block block;
  // for_overwrite: a value-initializing make_unique would memset every
  // block, a measurable tax on small optimizations' first allocations.
  block.data = std::make_unique_for_overwrite<char[]>(size);
  block.size = size;
  ptr_ = block.data.get();
  end_ = ptr_ + size;
  blocks_.push_back(std::move(block));
}

void Arena::RunCleanups() {
  // Reverse order: later objects may reference earlier ones.
  for (auto it = cleanups_.rbegin(); it != cleanups_.rend(); ++it) {
    it->destroy(it->object);
  }
  cleanups_.clear();
}

void Arena::Reset() {
  RunCleanups();
  if (blocks_.empty()) {
    bytes_used_ = 0;
    return;
  }
  // Keep the largest block so a reused arena stops hitting the system
  // allocator once it has grown to its steady-state size.
  auto largest = std::max_element(
      blocks_.begin(), blocks_.end(),
      [](const Block& a, const Block& b) { return a.size < b.size; });
  Block keep = std::move(*largest);
  blocks_.clear();
  ptr_ = keep.data.get();
  end_ = ptr_ + keep.size;
  blocks_.push_back(std::move(keep));
  bytes_used_ = 0;
}

}  // namespace eadp
