#include "common/thread_pool.h"

#include <algorithm>

namespace eadp {

ThreadPool::ThreadPool(int num_threads) {
  int n = std::max(num_threads, 1);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  // Workers only exit once the queue is empty (see WorkerLoop), so every
  // task submitted before this point still runs.
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

uint64_t ThreadPool::tasks_submitted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return submitted_;
}

void ThreadPool::Enqueue(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(job));
    ++submitted_;
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown_ && drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    // Run outside the lock. A throwing job would terminate the worker (and
    // the process); Submit wraps everything in a packaged_task, which
    // captures exceptions into the future instead.
    job();
  }
}

}  // namespace eadp
