#include "common/thread_pool.h"

#include <algorithm>
#include <chrono>

namespace eadp {

ThreadPool::ThreadPool(int num_threads) {
  int n = std::max(num_threads, 1);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  // Workers only exit once the queue is empty (see WorkerLoop), so every
  // task submitted before this point still runs.
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

uint64_t ThreadPool::tasks_submitted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return submitted_;
}

void ThreadPool::Enqueue(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(job));
    ++submitted_;
  }
  cv_.notify_one();
}

double ThreadPool::FanOut(ThreadPool* pool, int workers,
                          const std::function<void(int)>& fn) {
  if (pool == nullptr || workers <= 1) {
    for (int w = 0; w < std::max(workers, 1); ++w) fn(w);
    return 0;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(static_cast<size_t>(workers - 1));
  for (int w = 1; w < workers; ++w) {
    futures.push_back(pool->Submit([&fn, w] { fn(w); }));
  }
  std::exception_ptr first_error;
  try {
    fn(0);
  } catch (...) {
    first_error = std::current_exception();
  }
  auto barrier_start = std::chrono::steady_clock::now();
  // Join every future before any rethrow (peers read caller-owned state).
  for (std::future<void>& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (first_error == nullptr) first_error = std::current_exception();
    }
  }
  if (first_error != nullptr) std::rethrow_exception(first_error);
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - barrier_start)
      .count();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown_ && drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    // Run outside the lock. A throwing job would terminate the worker (and
    // the process); Submit wraps everything in a packaged_task, which
    // captures exceptions into the future instead.
    job();
  }
}

}  // namespace eadp
