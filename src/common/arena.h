// Bump-pointer arena allocation.
//
// The plan generators allocate hundreds of thousands of small, immutable
// objects per Optimize() call (plan nodes, interned property payloads) and
// free them all at once when the optimization's result is dropped. A bump
// allocator turns each allocation into a pointer increment, keeps related
// objects dense in memory, and replaces per-object ownership (shared_ptr
// refcount traffic) with a single lifetime: the arena's.
//
// Objects with non-trivial destructors are supported — New() registers a
// cleanup that runs on Reset()/destruction — but the hot path should stick
// to trivially-destructible types, which cost nothing beyond their bytes.
// See docs/DESIGN.md §6 for the plan-memory ownership rules built on top.

#ifndef EADP_COMMON_ARENA_H_
#define EADP_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace eadp {

class Arena {
 public:
  /// Eagerly reserves (and touches) the first block: optimizer arenas are
  /// constructed off the hot path, so the initial system allocation and
  /// its page faults happen before the first timed allocation.
  Arena();
  ~Arena() { RunCleanups(); }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Raw storage, aligned to `align` (a power of two, at most
  /// alignof(std::max_align_t)). Never returns null.
  void* AllocateBytes(size_t size, size_t align);

  /// Constructs a T in the arena. Non-trivially-destructible types get a
  /// cleanup entry so their destructor runs at Reset()/arena destruction;
  /// trivially-destructible types cost only their bytes.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    void* mem = AllocateBytes(sizeof(T), alignof(T));
    T* obj = new (mem) T(std::forward<Args>(args)...);
    if constexpr (!std::is_trivially_destructible_v<T>) {
      cleanups_.push_back({[](void* p) { static_cast<T*>(p)->~T(); }, obj});
    }
    return obj;
  }

  /// Destroys every object and recycles the largest block, so a reused
  /// arena reaches steady state without further system allocations.
  void Reset();

  /// Payload bytes handed out since construction/Reset.
  size_t bytes_used() const { return bytes_used_; }
  /// Total block capacity currently held.
  size_t bytes_reserved() const {
    size_t n = 0;
    for (const Block& b : blocks_) n += b.size;
    return n;
  }
  size_t num_blocks() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t size = 0;
  };
  struct Cleanup {
    void (*destroy)(void*);
    void* object;
  };

  void RunCleanups();
  void AddBlock(size_t min_size);

  static constexpr size_t kMinBlockSize = 1u << 14;   // 16 KiB
  static constexpr size_t kMaxBlockSize = 1u << 20;   // 1 MiB

  std::vector<Block> blocks_;
  std::vector<Cleanup> cleanups_;
  char* ptr_ = nullptr;   ///< bump pointer into the active (last) block
  char* end_ = nullptr;   ///< end of the active block
  size_t next_block_size_ = kMinBlockSize;
  size_t bytes_used_ = 0;
};

}  // namespace eadp

#endif  // EADP_COMMON_ARENA_H_
