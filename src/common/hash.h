// The 64-bit mixer shared by hashing and RNG seeding, plus the byte-string
// hash used for query fingerprints.

#ifndef EADP_COMMON_HASH_H_
#define EADP_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace eadp {

/// splitmix64 finalizer: a fast, well-distributed 64-bit mixer. Used to
/// seed the RNG (common/rng.h) and as the hash mixer for word-sized keys
/// (relation sets, pointers) whose raw bit patterns cluster badly.
inline constexpr uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Order-dependent combination of two 64-bit hashes: mixes `h` before
/// xoring in `v` so that HashCombine(a, b) != HashCombine(b, a) and chains
/// of combines keep avalanching.
inline constexpr uint64_t HashCombine(uint64_t h, uint64_t v) {
  return Mix64(h ^ Mix64(v));
}

/// Hash of an arbitrary byte string, seeded. Chained Mix64 over 8-byte
/// little-endian chunks with a length-absorbing tail — not cryptographic,
/// but well distributed and stable across platforms of the same
/// endianness. Distinct seeds give effectively independent hash functions,
/// which is how the query fingerprint derives its 128 bits.
inline uint64_t HashBytes(const void* data, size_t size, uint64_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = Mix64(seed ^ (uint64_t{size} * 0x9e3779b97f4a7c15ull));
  size_t n = size;
  while (n >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    h = HashCombine(h, chunk);
    p += 8;
    n -= 8;
  }
  if (n > 0) {
    uint64_t tail = 0;
    std::memcpy(&tail, p, n);
    h = HashCombine(h, tail);
  }
  return Mix64(h);
}

}  // namespace eadp

#endif  // EADP_COMMON_HASH_H_
