// The 64-bit mixer shared by hashing and RNG seeding.

#ifndef EADP_COMMON_HASH_H_
#define EADP_COMMON_HASH_H_

#include <cstdint>

namespace eadp {

/// splitmix64 finalizer: a fast, well-distributed 64-bit mixer. Used to
/// seed the RNG (common/rng.h) and as the hash mixer for word-sized keys
/// (relation sets, pointers) whose raw bit patterns cluster badly.
inline constexpr uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace eadp

#endif  // EADP_COMMON_HASH_H_
