#include "common/rng.h"

#include <bit>

namespace eadp {

Rng::Rng(uint64_t seed) {
  // splitmix64 sequence over the seed: Mix64 already adds the golden-ratio
  // increment, so stepping the state and mixing it yields the classic
  // SplitMix64 stream bit for bit.
  uint64_t x = seed;
  for (auto& s : s_) {
    s = Mix64(x);
    x += 0x9e3779b97f4a7c15ULL;
  }
  // Avoid the all-zero state (xoshiro's single fixed point).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t v;
  do {
    v = Next();
  } while (v >= limit);
  return lo + static_cast<int64_t>(v % range);
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

int Rng::PickWeighted(const double* weights, int n) {
  double total = 0;
  for (int i = 0; i < n; ++i) total += weights[i];
  double r = UniformDouble() * total;
  for (int i = 0; i < n; ++i) {
    r -= weights[i];
    if (r <= 0) return i;
  }
  return n - 1;
}

}  // namespace eadp
