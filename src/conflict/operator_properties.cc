#include "conflict/operator_properties.h"

namespace eadp {

namespace {
// Index order must match the checks below.
constexpr int Index(OpKind k) {
  switch (k) {
    case OpKind::kJoin:
      return 0;
    case OpKind::kLeftSemi:
      return 1;
    case OpKind::kLeftAnti:
      return 2;
    case OpKind::kLeftOuter:
      return 3;
    case OpKind::kFullOuter:
      return 4;
    case OpKind::kGroupJoin:
      return 5;
  }
  return 0;
}

// Rows: operator a (lower in the tree); columns: operator b (upper).
// Operators whose result hides the attributes p_b would need (semijoin,
// antijoin, groupjoin as `a` under assoc; see header) yield structurally
// ill-formed rewrites and are encoded as false.
//
//                       B  N  T  E  K  Z
constexpr bool kAssoc[6][6] = {
    /* B */ {true, true, true, true, false, true},
    /* N */ {false, false, false, false, false, false},
    /* T */ {false, false, false, false, false, false},
    /* E */ {false, false, false, true, false, false},
    /* K */ {false, false, false, true, true, false},
    /* Z */ {false, false, false, false, false, false},
};

//                       B  N  T  E  K  Z
constexpr bool kLeftAsscom[6][6] = {
    /* B */ {true, true, true, true, false, true},
    /* N */ {true, true, true, true, false, true},
    /* T */ {true, true, true, true, false, true},
    /* E */ {true, true, true, true, false, true},
    /* K */ {false, false, false, false, true, false},
    /* Z */ {true, true, true, true, false, true},
};

//                       B  N  T  E  K  Z
constexpr bool kRightAsscom[6][6] = {
    /* B */ {true, false, false, false, false, false},
    /* N */ {false, false, false, false, false, false},
    /* T */ {false, false, false, false, false, false},
    /* E */ {false, false, false, false, false, false},
    /* K */ {false, false, false, false, true, false},
    /* Z */ {false, false, false, false, false, false},
};
}  // namespace

bool OpAssoc(OpKind a, OpKind b) { return kAssoc[Index(a)][Index(b)]; }

bool OpLeftAsscom(OpKind a, OpKind b) {
  return kLeftAsscom[Index(a)][Index(b)];
}

bool OpRightAsscom(OpKind a, OpKind b) {
  return kRightAsscom[Index(a)][Index(b)];
}

}  // namespace eadp
