#include "conflict/conflict_detector.h"

#include <cassert>

#include "common/strings.h"
#include "conflict/operator_properties.h"

namespace eadp {

ConflictDetector::ConflictDetector(const Query& query)
    : graph_(query.catalog().num_relations()) {
  const Catalog& catalog = query.catalog();
  const std::vector<QueryOp>& ops = query.ops();
  conflicts_.resize(ops.size());

  // First pass: syntactic eligibility sets. SES: relations referenced by
  // the predicate; a groupjoin additionally references its aggregate
  // arguments (right side).
  for (size_t i = 0; i < ops.size(); ++i) {
    const QueryOp& o = ops[i];
    OperatorConflicts& c = conflicts_[i];
    c.ses = catalog.RelationsOf(o.predicate.ReferencedAttrs());
    for (const AggregateFunction& f : o.groupjoin_aggs) {
      if (f.arg >= 0) c.ses.Add(catalog.RelationOf(f.arg));
    }
    // Degenerate predicates (none in our workloads): anchor each side.
    if (!c.ses.Intersects(o.left_rels)) c.ses.Add(o.left_rels.Lowest());
    if (!c.ses.Intersects(o.right_rels)) c.ses.Add(o.right_rels.Lowest());
    c.left_ses = c.ses.Intersect(o.left_rels);
    c.right_ses = c.ses.Intersect(o.right_rels);
  }

  // Second pass: CD-C conflict rules against every operator in the two
  // subtrees of each operator.
  for (size_t i = 0; i < ops.size(); ++i) {
    const QueryOp& o = ops[i];
    OperatorConflicts& c = conflicts_[i];
    for (size_t j = 0; j < ops.size(); ++j) {
      if (j == i) continue;
      const QueryOp& oa = ops[j];
      RelSet oa_rels = oa.Relations();
      RelSet oa_ses = conflicts_[j].ses;
      if (oa_rels.IsSubsetOf(o.left_rels)) {
        // Left nesting (e1 oa e2) o e3.
        if (!OpAssoc(oa.kind, o.kind)) {
          c.rules.push_back({oa.right_rels, oa_ses.Intersect(oa.left_rels)});
        }
        if (!OpLeftAsscom(oa.kind, o.kind)) {
          c.rules.push_back({oa.left_rels, oa_ses.Intersect(oa.right_rels)});
        }
      } else if (oa_rels.IsSubsetOf(o.right_rels)) {
        // Right nesting e1 o (e2 oa e3).
        if (!OpAssoc(o.kind, oa.kind)) {
          c.rules.push_back({oa.left_rels, oa_ses.Intersect(oa.right_rels)});
        }
        if (!OpRightAsscom(o.kind, oa.kind)) {
          c.rules.push_back({oa.right_rels, oa_ses.Intersect(oa.left_rels)});
        }
      }
    }
  }

  for (size_t i = 0; i < ops.size(); ++i) {
    graph_.AddEdge(conflicts_[i].left_ses, conflicts_[i].right_ses,
                   static_cast<int>(i));
  }
}

bool ConflictDetector::Applicable(int op_index, RelSet s1, RelSet s2) const {
  const OperatorConflicts& c = conflicts_[op_index];
  if (!c.left_ses.IsSubsetOf(s1) || !c.right_ses.IsSubsetOf(s2)) return false;
  RelSet s = s1.Union(s2);
  for (const ConflictRule& r : c.rules) {
    if (r.cond.Intersects(s) && !r.required.IsSubsetOf(s)) return false;
  }
  return true;
}

std::string ConflictDetector::ToString(const Query& query) const {
  std::string out;
  for (size_t i = 0; i < conflicts_.size(); ++i) {
    const OperatorConflicts& c = conflicts_[i];
    out += StrFormat("op %zu (%s): SES=%s", i,
                     OpKindName(query.ops()[i].kind), c.ses.ToString().c_str());
    for (const ConflictRule& r : c.rules) {
      out += " [" + r.cond.ToString() + "->" + r.required.ToString() + "]";
    }
    out += "\n";
  }
  return out;
}

}  // namespace eadp
