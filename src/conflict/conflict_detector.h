// Conflict detector: builds the query hypergraph and the applicability test.
//
// Implements the rule-based detector CD-C of Moerkotte, Fender & Eich
// (SIGMOD 2013). For every operator o of the input tree it derives
// conflict rules from the assoc/l-asscom/r-asscom properties of o against
// every operator in its subtrees. A rule `cond -> required` states: a plan
// class S that intersects `cond` may apply o only if it also contains all
// of `required`. The syntactic eligibility sets (SES) of the operators
// become the hyperedges that drive the DPhyp enumerator; the rules are
// checked by Applicable().

#ifndef EADP_CONFLICT_CONFLICT_DETECTOR_H_
#define EADP_CONFLICT_CONFLICT_DETECTOR_H_

#include <string>
#include <vector>

#include "algebra/query.h"
#include "hypergraph/hypergraph.h"

namespace eadp {

/// One conflict rule: if the candidate set intersects `cond`, it must
/// contain all of `required`.
struct ConflictRule {
  RelSet cond;
  RelSet required;
};

/// Per-operator conflict information.
struct OperatorConflicts {
  RelSet ses;        ///< syntactic eligibility set
  RelSet left_ses;   ///< SES ∩ T(left(o))
  RelSet right_ses;  ///< SES ∩ T(right(o))
  std::vector<ConflictRule> rules;
};

/// Runs CD-C over a query and answers applicability questions.
class ConflictDetector {
 public:
  explicit ConflictDetector(const Query& query);

  const Hypergraph& hypergraph() const { return graph_; }
  const OperatorConflicts& conflicts(int op_index) const {
    return conflicts_[op_index];
  }

  /// True iff operator `op_index` may be applied with left argument plans
  /// over S1 and right argument plans over S2 (orientation as given; the
  /// caller handles commutativity by swapping).
  bool Applicable(int op_index, RelSet s1, RelSet s2) const;

  std::string ToString(const Query& query) const;

 private:
  std::vector<OperatorConflicts> conflicts_;
  Hypergraph graph_;
};

}  // namespace eadp

#endif  // EADP_CONFLICT_CONFLICT_DETECTOR_H_
