// Reorderability properties of the binary operators.
//
// The conflict detector derives its rules from three properties of operator
// pairs (Moerkotte, Fender & Eich, "On the Correct and Complete Enumeration
// of the Core Search Space", SIGMOD 2013):
//
//   assoc(a, b):     (e1 a e2) b e3  ≡  e1 a (e2 b e3)      p_a on (e1,e2),
//                                                           p_b on (e2,e3)
//   l-asscom(a, b):  (e1 a e2) b e3  ≡  (e1 b e3) a e2      p_b on (e1,e3)
//   r-asscom(a, b):  e1 a (e2 b e3)  ≡  e2 b (e1 a e3)      p_a on (e1,e3)
//
// Several entries hold only when the predicates involved reject NULLs on
// the relevant side; all predicates in this library are conjunctions of
// equalities, which reject NULLs, so those conditional entries are encoded
// as enabled. Entries we could not certify from the SIGMOD'13 paper are
// conservatively disabled: a missing `true` can only shrink the explored
// search space, never admit an incorrect plan (see DESIGN.md §7).

#ifndef EADP_CONFLICT_OPERATOR_PROPERTIES_H_
#define EADP_CONFLICT_OPERATOR_PROPERTIES_H_

#include "algebra/operator_tree.h"

namespace eadp {

/// assoc(a, b) assuming null-rejecting predicates.
bool OpAssoc(OpKind a, OpKind b);

/// l-asscom(a, b) assuming null-rejecting predicates.
bool OpLeftAsscom(OpKind a, OpKind b);

/// r-asscom(a, b) assuming null-rejecting predicates.
bool OpRightAsscom(OpKind a, OpKind b);

}  // namespace eadp

#endif  // EADP_CONFLICT_OPERATOR_PROPERTIES_H_
