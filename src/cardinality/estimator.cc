#include "cardinality/estimator.h"

namespace eadp {

double CardinalityEstimator::GroupingCardinality(AttrSet group_attrs,
                                                 double input_card) const {
  input_card = ClampCard(input_card);
  if (input_card <= 1) return input_card;
  // Schema functional dependencies: if a declared key of relation R is
  // contained in the grouping attributes, R's other attributes are
  // functionally determined and contribute no extra combinations
  // (e.g. grouping by {o_orderkey, o_orderdate}: the key o_orderkey
  // determines o_orderdate).
  AttrSet effective = group_attrs;
  for (int r : BitsOf(catalog_->RelationsOf(group_attrs))) {
    const RelationDef& def = catalog_->relation(r);
    for (AttrSet key : def.keys) {
      if (key.IsSubsetOf(group_attrs)) {
        effective = effective.Minus(def.attributes.Minus(key));
        break;
      }
    }
  }
  double combinations = 1;
  for (int a : BitsOf(effective)) {
    combinations *= DistinctInCard(a, input_card);
    if (combinations >= input_card) return input_card;
  }
  return std::min(combinations, input_card);
}

double CardinalityEstimator::JoinCardinality(OpKind kind, double left_card,
                                             double right_card,
                                             double selectivity,
                                             double right_match_distinct) const {
  // Clamp the inputs before forming products: with both sides at most
  // kMaxCardinality and selectivity <= 1, `inner` stays <= 1e300 (finite),
  // so the kFullOuter subtractions below can never see inf and produce NaN
  // — the failure mode that motivates the whole clamping discipline.
  left_card = ClampCard(left_card);
  right_card = ClampCard(right_card);
  double inner = left_card * right_card * selectivity;
  if (right_match_distinct < 0) right_match_distinct = right_card;
  switch (kind) {
    case OpKind::kJoin:
      return ClampCard(inner);
    case OpKind::kLeftSemi: {
      // P(left tuple has >= 1 partner) ~ min(1, sel * #distinct right join
      // values) — invariant under grouping of the right side.
      double match_prob = std::min(1.0, selectivity * right_match_distinct);
      return left_card * match_prob;
    }
    case OpKind::kLeftAnti: {
      double match_prob = std::min(1.0, selectivity * right_match_distinct);
      return left_card * (1.0 - match_prob);
    }
    case OpKind::kLeftOuter:
      // Matched pairs plus one row for every unmatched left tuple.
      return ClampCard(std::max(inner, left_card));
    case OpKind::kFullOuter: {
      double unmatched_left = std::max(0.0, left_card - inner);
      double unmatched_right = std::max(0.0, right_card - inner);
      return ClampCard(inner + unmatched_left + unmatched_right);
    }
    case OpKind::kGroupJoin:
      return left_card;  // exactly one output row per left tuple
  }
  return ClampCard(inner);
}

double CardinalityEstimator::KeyImpliedBound(
    std::span<const AttrSet> keys) const {
  double bound = kMaxCardinality;
  for (AttrSet key : keys) {
    double combinations = 1;
    for (int a : BitsOf(key)) {
      combinations *= catalog_->DistinctOf(a);
      if (combinations >= kMaxCardinality) break;  // saturated
    }
    bound = std::min(bound, combinations);
  }
  return ClampCard(bound);
}

}  // namespace eadp
