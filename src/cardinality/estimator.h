// Cardinality estimation.
//
// The plan generators need estimates for (a) join results under the
// independence assumption with per-predicate selectivities, (b) the output
// of a grouping operator, i.e. the number of distinct value combinations of
// the grouping attributes in the input. Distinct counts are taken from the
// catalog and capped by the input cardinality (the standard uniformity
// model). The paper's random workloads draw cardinalities and selectivities
// directly (Sec. 5), which this estimator consumes as-is.
//
// Overflow discipline: every estimate is clamped to the finite ceiling
// kMaxCardinality, and no non-finite value ever escapes the estimator
// (asserted). Independence products along deep join chains otherwise reach
// inf in well under 128 relations (e.g. 40 joins growing 10^8x each), and
// one inf poisons everything downstream — kFullOuter's unmatched-side
// subtraction turns it into NaN, and NaN costs make every plan comparison
// false, silently corrupting DP-table pruning. Callers that chain products
// *outside* the estimator (the raw/pregroup chains of op_trees.cc) apply
// the same clamp via ClampCard. estimator_test pins the previously
// overflowing chain.

#ifndef EADP_CARDINALITY_ESTIMATOR_H_
#define EADP_CARDINALITY_ESTIMATOR_H_

#include <algorithm>
#include <cassert>
#include <cmath>
#include <span>
#include <vector>

#include "algebra/operator_tree.h"
#include "catalog/catalog.h"

namespace eadp {

class CardinalityEstimator {
 public:
  /// Finite ceiling on every cardinality estimate. Chosen so the *product
  /// of two clamped values times a selectivity* (at most 1e300) is still a
  /// normal double — the estimator's formulas may form one such product
  /// before re-clamping, and intermediate inf is exactly what the clamp
  /// exists to prevent. Orders of magnitude above any consistent estimate
  /// (the seeded 100-relation workloads peak around 1e105), so plans only
  /// saturate when their true estimate is already astronomically bad.
  static constexpr double kMaxCardinality = 1e150;

  /// Clamps a chained product into [0, kMaxCardinality]. Inputs must not
  /// be NaN: operands clamped to kMaxCardinality can never produce one
  /// (inf - inf needs a factor >= 1e300), so a NaN here means a caller
  /// chained an unclamped value — assert, don't launder.
  static double ClampCard(double card) {
    assert(!std::isnan(card) && "NaN cardinality reached the estimator");
    return std::min(card, kMaxCardinality);
  }
  explicit CardinalityEstimator(const Catalog* catalog) : catalog_(catalog) {}

  /// Base relation cardinality.
  double BaseCardinality(int rel) const {
    return catalog_->relation(rel).cardinality;
  }

  /// Distinct values of attribute `a` within an expression of cardinality
  /// `card`: min(d(a), card).
  double DistinctInCard(int attr, double card) const {
    return std::min(catalog_->DistinctOf(attr), std::max(card, 1.0));
  }

  /// Output cardinality of Γ over `group_attrs` applied to an input of
  /// cardinality `input_card`: min(|e|, Π_a min(d(a), |e|)).
  double GroupingCardinality(AttrSet group_attrs, double input_card) const;

  /// Output cardinality of `kind` with the given input cardinalities and
  /// combined predicate selectivity. For semijoins and antijoins the match
  /// probability depends on the number of *distinct* join values on the
  /// right (`right_match_distinct`), not the raw row count — grouping the
  /// right side must not change existence semantics or its estimate.
  double JoinCardinality(OpKind kind, double left_card, double right_card,
                         double selectivity,
                         double right_match_distinct = -1) const;

  /// Upper bound on a duplicate-free result's cardinality implied by its
  /// candidate keys: min over keys of Π d(attr), clamped to
  /// kMaxCardinality. Keys certify uniqueness, so no consistent estimate
  /// may exceed this bound. kMaxCardinality (not infinity) is returned for
  /// an empty key span, keeping `min(estimate, bound)` a no-op there while
  /// still never handing callers a non-finite value.
  double KeyImpliedBound(std::span<const AttrSet> keys) const;

 private:
  const Catalog* catalog_;
};

}  // namespace eadp

#endif  // EADP_CARDINALITY_ESTIMATOR_H_
