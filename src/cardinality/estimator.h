// Cardinality estimation.
//
// The plan generators need estimates for (a) join results under the
// independence assumption with per-predicate selectivities, (b) the output
// of a grouping operator, i.e. the number of distinct value combinations of
// the grouping attributes in the input. Distinct counts are taken from the
// catalog and capped by the input cardinality (the standard uniformity
// model). The paper's random workloads draw cardinalities and selectivities
// directly (Sec. 5), which this estimator consumes as-is.

#ifndef EADP_CARDINALITY_ESTIMATOR_H_
#define EADP_CARDINALITY_ESTIMATOR_H_

#include <algorithm>
#include <span>
#include <vector>

#include "algebra/operator_tree.h"
#include "catalog/catalog.h"

namespace eadp {

class CardinalityEstimator {
 public:
  explicit CardinalityEstimator(const Catalog* catalog) : catalog_(catalog) {}

  /// Base relation cardinality.
  double BaseCardinality(int rel) const {
    return catalog_->relation(rel).cardinality;
  }

  /// Distinct values of attribute `a` within an expression of cardinality
  /// `card`: min(d(a), card).
  double DistinctInCard(int attr, double card) const {
    return std::min(catalog_->DistinctOf(attr), std::max(card, 1.0));
  }

  /// Output cardinality of Γ over `group_attrs` applied to an input of
  /// cardinality `input_card`: min(|e|, Π_a min(d(a), |e|)).
  double GroupingCardinality(AttrSet group_attrs, double input_card) const;

  /// Output cardinality of `kind` with the given input cardinalities and
  /// combined predicate selectivity. For semijoins and antijoins the match
  /// probability depends on the number of *distinct* join values on the
  /// right (`right_match_distinct`), not the raw row count — grouping the
  /// right side must not change existence semantics or its estimate.
  double JoinCardinality(OpKind kind, double left_card, double right_card,
                         double selectivity,
                         double right_match_distinct = -1) const;

  /// Upper bound on a duplicate-free result's cardinality implied by its
  /// candidate keys: min over keys of Π d(attr). Keys certify uniqueness,
  /// so no consistent estimate may exceed this bound.
  double KeyImpliedBound(std::span<const AttrSet> keys) const;

 private:
  const Catalog* catalog_;
};

}  // namespace eadp

#endif  // EADP_CARDINALITY_ESTIMATOR_H_
