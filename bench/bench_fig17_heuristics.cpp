// Figure 17: plan cost of H1 and H2 (F = 1.01/1.03/1.05/1.1) relative to
// the optimum (EA-Prune).
//
// Expected shape: all heuristics close to 1.0 and far below DPhyp's
// relative cost; H2 with a moderate tolerance (paper: F = 1.03) tends to
// beat H1; quality degrades again for too-large F.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"

using namespace eadp;

int main(int argc, char** argv) {
  int queries = BenchQueries(argc, argv, 30);
  const int max_rels = 11;
  const double factors[] = {1.01, 1.03, 1.05, 1.1};

  std::printf("Figure 17: plan cost relative to EA-Prune "
              "(%d queries/size)\n", queries);
  std::printf("%4s %10s %10s %10s %10s %10s %12s\n", "rels", "H1",
              "H2:1.01", "H2:1.03", "H2:1.05", "H2:1.1", "worst(H2:1.03)");

  for (int n = 3; n <= max_rels; ++n) {
    double h1_sum = 0;
    double h2_sum[4] = {0, 0, 0, 0};
    double h2_103_max = 0;
    for (int i = 0; i < queries; ++i) {
      Query q = BenchQuery(n, static_cast<uint64_t>(n) * 300000 + i);
      double best = RunAlgorithm(q, Algorithm::kEaPrune).cost;
      h1_sum += RunAlgorithm(q, Algorithm::kH1).cost / best;
      for (int fi = 0; fi < 4; ++fi) {
        double ratio =
            RunAlgorithm(q, Algorithm::kH2, factors[fi]).cost / best;
        h2_sum[fi] += ratio;
        if (fi == 1) h2_103_max = std::max(h2_103_max, ratio);
      }
    }
    std::printf("%4d %10.4f %10.4f %10.4f %10.4f %10.4f %12.2f\n", n,
                h1_sum / queries, h2_sum[0] / queries, h2_sum[1] / queries,
                h2_sum[2] / queries, h2_sum[3] / queries, h2_103_max);
  }
  std::printf("\n(paper: H2 with F=1.03 within ~7%% of the optimum at 13 "
              "relations; worst case 9.7x)\n");
  return 0;
}
