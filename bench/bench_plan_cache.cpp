// Cross-query plan-cache throughput: a seeded 1000-query stream whose
// shapes repeat with Zipf frequencies (rank-r shape appears with
// probability ∝ 1/r), planned through OptimizeBatch at 1/4/8 threads with
// the cache off, cold (first pass populates) and warm (steady state).
//
// This is the serving scenario the cache exists for: production traffic
// re-sends the same query shapes with Zipf-like skew, so after warm-up
// almost every arrival is a fingerprint probe instead of a DP/GOO/IDP
// run. Reported per thread count: median batch wall clock, qps, p50
// per-query latency and hit rate for each cache mode, plus the
// steady-state median-latency improvement (cache-off p50 / warm p50) —
// the headline number, expected well above 5x (a probe is microseconds;
// planning the pool's shapes is tens of microseconds to milliseconds).
//
// Determinism guard on the side (like bench_parallel): per-query plan
// costs with the cache on — cold and warm — must be bit-identical to the
// cache-off run; the bench hard-fails on divergence.
//
// Machine-readable records (EADP_BENCH_JSON, see bench_util.h): per
// thread count and cache mode, wall median_ms + qps/p50/hit-rate values,
// plus the steady-state speedup, folded into BENCH_results.json by
// scripts/bench.sh.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "plangen/parallel.h"
#include "plangen/plan_cache.h"

using namespace eadp;

namespace {

constexpr int kStreamLength = 1000;
constexpr int kDistinctShapes = 64;

/// Shape rank -> generator config. Shapes span both facade paths: mostly
/// exact-DP random trees (n = 5..10), with every 8th shape a large
/// structured query (chain/star alternating, n = 16/24).
Query ShapeQuery(int shape) {
  GeneratorOptions gen;
  if (shape % 8 == 7) {
    gen.topology = (shape % 16 == 15) ? QueryTopology::kStar
                                      : QueryTopology::kChain;
    gen.num_relations = 16 + 8 * ((shape / 16) % 2);
  } else {
    gen.num_relations = 5 + shape % 6;
  }
  return GenerateRandomQuery(gen, 5000 + static_cast<uint64_t>(shape));
}

/// The seeded Zipf(1.0) stream over shape ranks: rank r (1-based) drawn
/// with probability (1/r) / H_k. Inverse-CDF sampling off one Rng keeps
/// the stream identical across runs, thread counts and cache modes.
std::vector<int> ZipfStream() {
  std::vector<double> cdf(kDistinctShapes);
  double h = 0;
  for (int r = 0; r < kDistinctShapes; ++r) {
    h += 1.0 / (r + 1);
    cdf[r] = h;
  }
  Rng rng(42);
  std::vector<int> stream(kStreamLength);
  for (int i = 0; i < kStreamLength; ++i) {
    double u = rng.UniformDouble() * h;
    int lo = 0, hi = kDistinctShapes - 1;
    while (lo < hi) {
      int mid = (lo + hi) / 2;
      if (cdf[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    stream[i] = lo;
  }
  return stream;
}

std::vector<Query> StreamQueries(const std::vector<int>& stream) {
  std::vector<Query> queries;
  queries.reserve(stream.size());
  for (int shape : stream) queries.push_back(ShapeQuery(shape));
  return queries;
}

struct ModeResult {
  double wall_ms = 0;
  double qps = 0;
  double p50_ms = 0;
  double hit_rate = 0;
};

}  // namespace

int main(int argc, char** argv) {
  int reps = BenchQueries(argc, argv, 3);
  BenchJsonWriter json("plan_cache");

  std::vector<int> stream = ZipfStream();
  std::vector<Query> queries = StreamQueries(stream);
  int distinct_in_stream = 0;
  {
    std::vector<bool> seen(kDistinctShapes, false);
    for (int s : stream) {
      if (!seen[s]) {
        seen[s] = true;
        ++distinct_in_stream;
      }
    }
  }

  OptimizerOptions options;

  // Reference pass: sequential, cache off. Also the per-query cost oracle
  // for the determinism guard.
  BatchResult reference = OptimizeBatch(queries, options, 1);
  auto guard = [&reference, &queries](const BatchResult& r, const char* what) {
    for (size_t i = 0; i < queries.size(); ++i) {
      double want =
          reference.results[i].plan ? reference.results[i].plan->cost : -1;
      double got = r.results[i].plan ? r.results[i].plan->cost : -1;
      if (got != want) {
        std::fprintf(stderr, "FATAL: query %zu cost %g != reference %g (%s)\n",
                     i, got, want, what);
        std::exit(1);
      }
    }
  };

  std::printf("plan-cache throughput: %d-query Zipf stream over %d shapes "
              "(%d reach the stream), median over %d runs\n",
              kStreamLength, kDistinctShapes, distinct_in_stream, reps);
  std::printf("%8s %6s  %10s %10s %10s %9s\n", "threads", "cache", "wall ms",
              "qps", "p50 ms", "hit rate");

  double off_p50_1thread = 0;
  double warm_p50_1thread = 0;
  for (int threads : {1, 4, 8}) {
    ModeResult modes[3];  // off, cold, warm
    const char* names[3] = {"off", "cold", "warm"};
    std::vector<double> wall[3], qps[3], p50[3], hit[3];
    for (int rep = 0; rep < reps; ++rep) {
      // Fresh cache per rep: "cold" measures the populate pass, "warm"
      // the steady state the serving tier lives in.
      PlanCache cache;
      OptimizerOptions cached = options;
      cached.plan_cache = &cache;

      BatchResult off = OptimizeBatch(queries, options, threads);
      PlanCacheStats before = cache.Snapshot();
      BatchResult cold = OptimizeBatch(queries, cached, threads);
      PlanCacheStats mid = cache.Snapshot();
      BatchResult warm = OptimizeBatch(queries, cached, threads);
      PlanCacheStats after = cache.Snapshot();
      guard(off, "cache off");
      guard(cold, "cache cold");
      guard(warm, "cache warm");

      const BatchResult* rs[3] = {&off, &cold, &warm};
      double hit_rates[3] = {
          0,
          static_cast<double>(mid.hits - before.hits) / kStreamLength,
          static_cast<double>(after.hits - mid.hits) / kStreamLength};
      for (int m = 0; m < 3; ++m) {
        wall[m].push_back(rs[m]->stats.wall_ms);
        qps[m].push_back(rs[m]->stats.queries_per_second);
        p50[m].push_back(rs[m]->stats.p50_ms);
        hit[m].push_back(hit_rates[m]);
      }
    }
    for (int m = 0; m < 3; ++m) {
      modes[m] = {Median(wall[m]), Median(qps[m]), Median(p50[m]),
                  Median(hit[m])};
      std::printf("%8d %6s  %10.1f %10.1f %10.4f %8.1f%%\n", threads,
                  names[m], modes[m].wall_ms, modes[m].qps, modes[m].p50_ms,
                  100 * modes[m].hit_rate);
      std::string prefix = "zipf1000/threads=" + std::to_string(threads) +
                           "/cache=" + names[m];
      json.RecordMs(prefix + "/wall", modes[m].wall_ms);
      json.RecordValue(prefix + "/qps", modes[m].qps);
      json.RecordValue(prefix + "/p50_ms", modes[m].p50_ms);
      if (m > 0) json.RecordValue(prefix + "/hit_rate", modes[m].hit_rate);
    }
    if (threads == 1) {
      off_p50_1thread = modes[0].p50_ms;
      warm_p50_1thread = modes[2].p50_ms;
    }
  }

  double speedup = warm_p50_1thread > 0 ? off_p50_1thread / warm_p50_1thread
                                        : 0;
  std::printf("\nsteady-state median-latency improvement (1 thread, "
              "off p50 / warm p50): %.1fx\n", speedup);
  json.RecordValue("zipf1000/steady_state_p50_speedup", speedup);
  if (speedup < 5.0) {
    std::fprintf(stderr, "FATAL: steady-state p50 improvement %.2fx < 5x\n",
                 speedup);
    return 1;
  }
  return 0;
}
