// Cold-start recovery with the disk-backed plan-cache tier: how fast a
// *restarted* process returns to steady-state serving, with and without
// the persistent tier (plangen/persistent_cache.h).
//
// The stream is bench_plan_cache's seeded Zipf(1.0) mix (1000 queries
// over 64 shapes). Phases, per rep in a fresh cache directory:
//
//   populate   — memory + disk tier, full stream: the steady state a
//                long-running server reaches (and write-behinds to disk);
//   warm       — first 100 stream queries again against the warm memory
//                tier: the steady-state hit-rate yardstick;
//   restart/no-disk — fresh memory cache, no disk tier, first 100
//                queries: every shape is re-planned from scratch;
//   restart/disk — fresh memory cache + the REOPENED disk tier (index
//                rebuilt from the segment logs, like a real process
//                restart), first 100 queries: hits come from disk and
//                get promoted.
//
// Headline + hard gate: within the first 100 post-restart queries, the
// disk tier must serve >= 90% of the warm-tier hit rate (the ISSUE's
// recovery bar). Reported alongside: wall clock of the restart window
// with/without the tier (the cold-start tax the tier removes) and the
// on-disk footprint.
//
// Machine-readable records (EADP_BENCH_JSON, see bench_util.h) fold into
// BENCH_results.json via scripts/bench.sh; only the wall-clock medians
// gate in scripts/bench_gate.py.

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "plangen/persistent_cache.h"
#include "plangen/plan_cache.h"
#include "queries/query_generator.h"

using namespace eadp;

namespace {

constexpr int kStreamLength = 1000;
constexpr int kDistinctShapes = 64;
constexpr int kRestartWindow = 100;

/// Shape rank -> generator config (identical to bench_plan_cache so the
/// two benches measure the same serving workload).
Query ShapeQuery(int shape) {
  GeneratorOptions gen;
  if (shape % 8 == 7) {
    gen.topology = (shape % 16 == 15) ? QueryTopology::kStar
                                      : QueryTopology::kChain;
    gen.num_relations = 16 + 8 * ((shape / 16) % 2);
  } else {
    gen.num_relations = 5 + shape % 6;
  }
  return GenerateRandomQuery(gen, 5000 + static_cast<uint64_t>(shape));
}

std::vector<int> ZipfStream() {
  std::vector<double> cdf(kDistinctShapes);
  double h = 0;
  for (int r = 0; r < kDistinctShapes; ++r) {
    h += 1.0 / (r + 1);
    cdf[r] = h;
  }
  Rng rng(42);
  std::vector<int> stream(kStreamLength);
  for (int i = 0; i < kStreamLength; ++i) {
    double u = rng.UniformDouble() * h;
    int lo = 0, hi = kDistinctShapes - 1;
    while (lo < hi) {
      int mid = (lo + hi) / 2;
      if (cdf[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    stream[i] = lo;
  }
  return stream;
}

struct WindowResult {
  double wall_ms = 0;
  double hit_rate = 0;   ///< any tier
  double disk_hits = 0;  ///< served from tier 2
};

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Plans the first `window` stream queries through `options`, counting
/// cache-served results.
WindowResult PlanWindow(const std::vector<Query>& queries, int window,
                        const OptimizerOptions& options) {
  WindowResult r;
  Clock::time_point start = Clock::now();
  int hits = 0, disk = 0;
  for (int i = 0; i < window; ++i) {
    OptimizeResult result = OptimizeAdaptive(queries[i], options);
    if (result.plan == nullptr) {
      std::fprintf(stderr, "FATAL: query %d produced no plan\n", i);
      std::exit(1);
    }
    if (result.stats.cache_hit) ++hits;
    if (result.stats.cache_tier == 2) ++disk;
  }
  r.wall_ms = MsSince(start);
  r.hit_rate = static_cast<double>(hits) / window;
  r.disk_hits = disk;
  return r;
}

void RemoveTree(const std::string& dir) {
  // Segments only, one level deep — exactly what the cache writes.
  std::string cmd = "rm -rf '" + dir + "'";
  if (std::system(cmd.c_str()) != 0) {
    std::fprintf(stderr, "warning: could not remove %s\n", dir.c_str());
  }
}

std::unique_ptr<PersistentPlanCache> OpenOrDie(
    const PersistentCacheOptions& opts) {
  std::string error;
  auto cache = PersistentPlanCache::Open(opts, &error);
  if (cache == nullptr) {
    std::fprintf(stderr, "FATAL: cannot open %s: %s\n",
                 opts.directory.c_str(), error.c_str());
    std::exit(1);
  }
  return cache;
}

}  // namespace

int main(int argc, char** argv) {
  int reps = BenchQueries(argc, argv, 3);
  BenchJsonWriter json("persistent_cache");

  std::vector<int> stream = ZipfStream();
  std::vector<Query> queries;
  queries.reserve(stream.size());
  for (int shape : stream) queries.push_back(ShapeQuery(shape));

  char root_template[] = "/tmp/eadp_bench_pcache_XXXXXX";
  const char* root = mkdtemp(root_template);
  if (root == nullptr) {
    std::fprintf(stderr, "FATAL: mkdtemp failed\n");
    return 1;
  }

  std::printf("persistent-cache cold start: %d-query Zipf stream, restart "
              "window = first %d queries, median over %d runs\n",
              kStreamLength, kRestartWindow, reps);

  std::vector<double> populate_ms, warm_rate, nodisk_ms, nodisk_rate;
  std::vector<double> disk_ms, disk_rate, disk_tier2, disk_bytes;
  for (int rep = 0; rep < reps; ++rep) {
    PersistentCacheOptions popts;
    popts.directory = std::string(root) + "/rep" + std::to_string(rep);
    popts.write_behind = true;

    WindowResult warm;
    {
      // Long-running server: populate both tiers over the full stream,
      // then measure the steady-state yardstick.
      auto l2 = OpenOrDie(popts);
      PlanCache l1;
      OptimizerOptions options;
      options.plan_cache = &l1;
      options.persistent_cache = l2.get();
      Clock::time_point start = Clock::now();
      for (const Query& q : queries) {
        if (OptimizeAdaptive(q, options).plan == nullptr) {
          std::fprintf(stderr, "FATAL: no plan in populate phase\n");
          return 1;
        }
      }
      populate_ms.push_back(MsSince(start));
      warm = PlanWindow(queries, kRestartWindow, options);
      l2->Flush();
      disk_bytes.push_back(
          static_cast<double>(l2->Snapshot().bytes_on_disk));
    }  // server "stops": both tiers destroyed, segments stay on disk
    warm_rate.push_back(warm.hit_rate);

    {
      // Restart WITHOUT the disk tier: the pre-PR cold start.
      PlanCache l1;
      OptimizerOptions options;
      options.plan_cache = &l1;
      WindowResult w = PlanWindow(queries, kRestartWindow, options);
      nodisk_ms.push_back(w.wall_ms);
      nodisk_rate.push_back(w.hit_rate);
    }
    {
      // Restart WITH the disk tier: reopen rebuilds the index from the
      // segment logs, exactly as a new process would.
      auto l2 = OpenOrDie(popts);
      PlanCache l1;
      OptimizerOptions options;
      options.plan_cache = &l1;
      options.persistent_cache = l2.get();
      WindowResult w = PlanWindow(queries, kRestartWindow, options);
      disk_ms.push_back(w.wall_ms);
      disk_rate.push_back(w.hit_rate);
      disk_tier2.push_back(w.disk_hits);
    }
  }
  RemoveTree(root);

  double warm = Median(warm_rate);
  double with_disk = Median(disk_rate);
  double without_disk = Median(nodisk_rate);
  double tax_ms = Median(nodisk_ms);
  double recovered_ms = Median(disk_ms);

  std::printf("%24s  %10s %10s %10s\n", "phase", "wall ms", "hit rate",
              "tier-2 hits");
  std::printf("%24s  %10.1f %9.1f%% %10s\n", "populate (1000 q)",
              Median(populate_ms), 0.0, "-");
  std::printf("%24s  %10s %9.1f%% %10s\n", "steady state (warm)", "-",
              100 * warm, "-");
  std::printf("%24s  %10.1f %9.1f%% %10s\n", "restart, no disk tier",
              tax_ms, 100 * without_disk, "0");
  std::printf("%24s  %10.1f %9.1f%% %10.0f\n", "restart, disk tier",
              recovered_ms, 100 * with_disk, Median(disk_tier2));
  std::printf("on-disk footprint: %.1f KiB in segment logs\n",
              Median(disk_bytes) / 1024.0);
  double speedup = recovered_ms > 0 ? tax_ms / recovered_ms : 0;
  std::printf("cold-start wall-clock tax removed: %.1fx (%0.1f ms -> %0.1f "
              "ms over the %d-query window)\n",
              speedup, tax_ms, recovered_ms, kRestartWindow);

  json.RecordMs("zipf1000/populate/wall", Median(populate_ms));
  json.RecordMs("restart100/no_disk/wall", tax_ms);
  json.RecordMs("restart100/disk/wall", recovered_ms);
  json.RecordValue("zipf1000/warm_hit_rate", warm);
  json.RecordValue("restart100/no_disk/hit_rate", without_disk);
  json.RecordValue("restart100/disk/hit_rate", with_disk);
  json.RecordValue("restart100/disk/tier2_hits", Median(disk_tier2));
  json.RecordValue("restart100/cold_start_speedup", speedup);
  json.RecordValue("disk/footprint_bytes", Median(disk_bytes));

  // The ISSUE's recovery bar: a restarted process must serve >= 90% of
  // the warm-tier hit rate within its first 100 queries.
  if (warm > 0 && with_disk < 0.9 * warm) {
    std::fprintf(stderr,
                 "FATAL: restart hit rate %.1f%% < 90%% of warm %.1f%%\n",
                 100 * with_disk, 100 * warm);
    return 1;
  }
  return 0;
}
