// Table 2: optimization time and plan cost for the intro example Ex and
// TPC-H Q3, Q5, Q10, for EA(-Prune), H1, H2 and DPhyp.
//
// Expected shape: Ex benefits most (rel. cost ~6e-4 in the paper), Q5
// least (~0.9); relative optimization times EA/DPhyp > 1 everywhere,
// largest for Q5 (most join orderings).

#include <cstdio>

#include "bench/bench_util.h"
#include "queries/tpch.h"

using namespace eadp;

namespace {

struct BenchRow {
  const char* name;
  Query query;
};

double MedianMs(const Query& q, Algorithm a) {
  // Warm up once, then take the median of 9 (stable against CI noise).
  RunAlgorithm(q, a);
  std::vector<double> ms;
  for (int i = 0; i < 9; ++i) ms.push_back(RunAlgorithm(q, a).ms);
  return Median(std::move(ms));
}

}  // namespace

int main() {
  BenchRow rows[] = {{"Ex", MakeTpchEx()},
                {"Q3", MakeTpchQ3()},
                {"Q5", MakeTpchQ5()},
                {"Q10", MakeTpchQ10()}};
  BenchJsonWriter json("table2_tpch");

  std::printf("Table 2: optimization time and plan cost, TPC-H queries\n\n");
  std::printf("%-22s", "");
  for (const BenchRow& r : rows) std::printf("%12s", r.name);
  std::printf("\n");

  double ea_ms[4];
  double h1_ms[4];
  double h2_ms[4];
  double dp_ms[4];
  double ea_cost[4];
  double h1_cost[4];
  double h2_cost[4];
  double dp_cost[4];
  for (int i = 0; i < 4; ++i) {
    const Query& q = rows[i].query;
    ea_ms[i] = MedianMs(q, Algorithm::kEaPrune);
    h1_ms[i] = MedianMs(q, Algorithm::kH1);
    h2_ms[i] = MedianMs(q, Algorithm::kH2);
    dp_ms[i] = MedianMs(q, Algorithm::kDphyp);
    std::string name = rows[i].name;
    json.RecordMs("EA-Prune/" + name, ea_ms[i]);
    json.RecordMs("H1/" + name, h1_ms[i]);
    json.RecordMs("H2/" + name, h2_ms[i]);
    json.RecordMs("DPhyp/" + name, dp_ms[i]);
    ea_cost[i] = RunAlgorithm(q, Algorithm::kEaPrune).cost;
    h1_cost[i] = RunAlgorithm(q, Algorithm::kH1).cost;
    h2_cost[i] = RunAlgorithm(q, Algorithm::kH2).cost;
    dp_cost[i] = RunAlgorithm(q, Algorithm::kDphyp).cost;
  }

  auto print_row = [&](const char* label, const double* v,
                       const char* fmt = "%12.3f") {
    std::printf("%-22s", label);
    for (int i = 0; i < 4; ++i) std::printf(fmt, v[i]);
    std::printf("\n");
  };
  print_row("Time EA [ms]", ea_ms);
  print_row("Time H1 [ms]", h1_ms);
  print_row("Time H2 [ms]", h2_ms);
  print_row("Time DPhyp [ms]", dp_ms);

  double rel_time_ea[4];
  double rel_time_h1[4];
  double rel_time_h2[4];
  double rel_cost_ea[4];
  double rel_cost_h1[4];
  double rel_cost_h2[4];
  for (int i = 0; i < 4; ++i) {
    rel_time_ea[i] = ea_ms[i] / dp_ms[i];
    rel_time_h1[i] = h1_ms[i] / dp_ms[i];
    rel_time_h2[i] = h2_ms[i] / dp_ms[i];
    rel_cost_ea[i] = ea_cost[i] / dp_cost[i];
    rel_cost_h1[i] = h1_cost[i] / dp_cost[i];
    rel_cost_h2[i] = h2_cost[i] / dp_cost[i];
  }
  print_row("Rel. Time EA/DPhyp", rel_time_ea);
  print_row("Rel. Time H1/DPhyp", rel_time_h1);
  print_row("Rel. Time H2/DPhyp", rel_time_h2);
  print_row("Rel. Cost EA/DPhyp", rel_cost_ea, "%12.2e");
  print_row("Rel. Cost H1/DPhyp", rel_cost_h1, "%12.2e");
  print_row("Rel. Cost H2/DPhyp", rel_cost_h2, "%12.2e");

  std::printf("\n(paper: rel. cost 6.1e-4 / 0.65 / 0.9 / 0.58 for "
              "Ex/Q3/Q5/Q10 under EA; all rel. times > 1)\n");
  return 0;
}
