// Sec. 4.3 complexity claim: BuildPlansAll runs in O(2^{2n-1} · #ccp) —
// the DP-table lists grow multiplicatively, so the *work per csg-cmp-pair*
// (plan nodes built / ccp) must itself grow exponentially with n for
// EA-All, while EA-Prune's dominance pruning and the single-plan
// heuristics keep it polynomial-ish. This bench prints the measured
// factors.
//
// Machine-readable records (EADP_BENCH_JSON): per-size median optimize
// times per algorithm, plus the deterministic plans-built-per-ccp counters
// (those catch algorithmic regressions that wall-clock noise would hide).

#include <cstdio>

#include "bench/bench_util.h"

using namespace eadp;

int main(int argc, char** argv) {
  int queries = BenchQueries(argc, argv, 20);
  const int max_rels_all = 8;
  const int max_rels = 11;
  BenchJsonWriter json("complexity");

  std::printf("Complexity: plan nodes built per csg-cmp-pair "
              "(%d queries/size)\n\n", queries);
  std::printf("%4s %10s %14s %14s %14s %14s\n", "rels", "#ccp(avg)",
              "EA-All/ccp", "EA-Prune/ccp", "H1/ccp", "DPhyp/ccp");

  for (int n = 3; n <= max_rels; ++n) {
    double ccp = 0;
    double built_all = 0;
    double built_prune = 0;
    double built_h1 = 0;
    double built_dphyp = 0;
    std::vector<double> prune_ms;
    std::vector<double> all_ms;
    for (int i = 0; i < queries; ++i) {
      Query q = BenchQuery(n, static_cast<uint64_t>(n) * 700000 + i);
      OptimizerOptions options;
      options.algorithm = Algorithm::kEaPrune;
      OptimizeResult prune = Optimize(q, options);
      ccp += static_cast<double>(prune.stats.ccp_count);
      built_prune += static_cast<double>(prune.stats.plans_built);
      prune_ms.push_back(prune.stats.optimize_ms);
      options.algorithm = Algorithm::kH1;
      built_h1 += static_cast<double>(Optimize(q, options).stats.plans_built);
      options.algorithm = Algorithm::kDphyp;
      built_dphyp +=
          static_cast<double>(Optimize(q, options).stats.plans_built);
      if (n <= max_rels_all) {
        options.algorithm = Algorithm::kEaAll;
        OptimizeResult all = Optimize(q, options);
        built_all += static_cast<double>(all.stats.plans_built);
        all_ms.push_back(all.stats.optimize_ms);
      }
    }
    ccp /= queries;
    std::string size = "/n=" + std::to_string(n);
    json.RecordMs("EA-Prune" + size, Median(prune_ms));
    json.RecordValue("EA-Prune/plans_per_ccp" + size,
                     built_prune / queries / ccp);
    json.RecordValue("H1/plans_per_ccp" + size, built_h1 / queries / ccp);
    json.RecordValue("DPhyp/plans_per_ccp" + size,
                     built_dphyp / queries / ccp);
    std::printf("%4d %10.1f ", n, ccp);
    if (n <= max_rels_all) {
      json.RecordMs("EA-All" + size, Median(all_ms));
      json.RecordValue("EA-All/plans_per_ccp" + size,
                       built_all / queries / ccp);
      std::printf("%14.1f ", built_all / queries / ccp);
    } else {
      std::printf("%14s ", "-");
    }
    std::printf("%14.2f %14.2f %14.2f\n", built_prune / queries / ccp,
                built_h1 / queries / ccp, built_dphyp / queries / ccp);
  }
  std::printf("\n(expected: the EA-All column grows exponentially in n — "
              "Sec. 4.3's O(2^{2n-1}#ccp); EA-Prune grows slowly; H1 is a "
              "small constant ~4-5; DPhyp ~1)\n");
  return 0;
}
