// Large-query benchmark: optimization runtime and plan cost of the
// large-query strategies (GOO, IDP, the adaptive facade) and the
// unoptimized original tree over seeded chain/star/cycle/clique topologies
// at n in {20, 30, 50, 100}.
//
// Expected shape: both strategies stay in the low milliseconds across the
// whole range (the exhaustive generators are infeasible everywhere here),
// IDP wins on chains/stars where bounded exact subproblems capture most of
// the join order, GOO wins on cycles and is the only planner for cliques
// (whose prefix-shaped SES sets defeat IDP's group selection), and both
// beat the original tree's cost by orders of magnitude.
//
// Machine-readable records (EADP_BENCH_JSON, see bench_util.h): per-case
// median runtime (median_ms) and median plan cost (value), folded into
// BENCH_results.json by scripts/bench.sh.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "plangen/large_query.h"

using namespace eadp;

int main(int argc, char** argv) {
  int queries = BenchQueries(argc, argv, 5);
  BenchJsonWriter json("large_queries");

  std::printf("Large queries: median optimization runtime [ms] and median "
              "plan cost (%d queries/case)\n", queries);
  std::printf("%-8s %4s  %10s %10s %10s | %12s %12s %12s %12s\n", "topology",
              "n", "GOO ms", "IDP ms", "adapt ms", "GOO cost", "IDP cost",
              "adapt cost", "orig cost");

  for (QueryTopology t : {QueryTopology::kChain, QueryTopology::kStar,
                          QueryTopology::kCycle, QueryTopology::kClique}) {
    for (int n : {20, 30, 50, 100}) {
      std::vector<double> goo_ms, idp_ms, adapt_ms;
      std::vector<double> goo_cost, idp_cost, adapt_cost, orig_cost;
      for (int i = 0; i < queries; ++i) {
        GeneratorOptions gen;
        gen.topology = t;
        gen.num_relations = n;
        Query q = GenerateRandomQuery(
            gen, static_cast<uint64_t>(n) * 1000 + static_cast<uint64_t>(i));

        OptimizerOptions options;
        options.algorithm = Algorithm::kGoo;
        OptimizeResult goo = Optimize(q, options);
        goo_ms.push_back(goo.stats.optimize_ms);
        if (goo.plan) goo_cost.push_back(goo.plan->cost);

        options.algorithm = Algorithm::kIdp;
        OptimizeResult idp = Optimize(q, options);
        if (idp.plan) {
          idp_ms.push_back(idp.stats.optimize_ms);
          idp_cost.push_back(idp.plan->cost);
        }

        auto start = std::chrono::steady_clock::now();
        OptimizeResult adaptive = OptimizeAdaptive(q, OptimizerOptions{});
        adapt_ms.push_back(std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count());
        if (adaptive.plan) adapt_cost.push_back(adaptive.plan->cost);

        OptimizeResult original = OptimizeOriginal(q, OptimizerOptions{});
        if (original.plan) orig_cost.push_back(original.plan->cost);
      }

      std::string prefix =
          std::string(TopologyName(t)) + "/n=" + std::to_string(n);
      json.RecordMs("GOO/" + prefix, Median(goo_ms));
      if (!idp_ms.empty()) json.RecordMs("IDP/" + prefix, Median(idp_ms));
      json.RecordMs("adaptive/" + prefix, Median(adapt_ms));
      json.RecordValue("GOO-cost/" + prefix, Median(goo_cost));
      if (!idp_cost.empty()) {
        json.RecordValue("IDP-cost/" + prefix, Median(idp_cost));
      }
      json.RecordValue("adaptive-cost/" + prefix, Median(adapt_cost));
      json.RecordValue("original-cost/" + prefix, Median(orig_cost));

      auto cell = [](const std::vector<double>& v) {
        return v.empty() ? -1.0 : Median(v);
      };
      std::printf("%-8s %4d  %10.3f %10.3f %10.3f | %12.5g %12.5g %12.5g "
                  "%12.5g\n",
                  TopologyName(t), n, cell(goo_ms), cell(idp_ms),
                  cell(adapt_ms), cell(goo_cost), cell(idp_cost),
                  cell(adapt_cost), cell(orig_cost));
    }
  }
  std::printf("\n(IDP '-1' cells: no plan — conflict-blocked groups, the "
              "adaptive facade falls back to GOO)\n");
  return 0;
}
