// Intra-query parallel DP: one exact-DP optimization sharded across the
// thread pool (subset-size levels, per-worker DpTable shards — see
// src/plangen/parallel_dp.h), measured on topologies spanning the ccp
// density range. Star is the dense case: every subset containing the hub
// is connected, so n=14 carries ~53k csg-cmp-pairs (~65 ms sequential) —
// enough work per level to feed several cores. Cycle n=14 (~365 ccps)
// and clique n=12 are the sparse end: the generator's clique conjoins
// operator i's equalities into one predicate, whose SES becomes a
// hyperedge covering the whole prefix, forcing the left-deep order
// (ccp = n-1) — so it measures pure sharding overhead, not scaling.
// Workers 1/2/4/8; workers=1 is the untouched sequential
// enumeration path, so it doubles as the baseline AND as the determinism
// reference: the bench aborts loudly if any parallel run's plan cost
// differs bit-for-bit from the sequential one.
//
// Reported per (query, workers): median optimize wall clock, speedup over
// workers=1, and the median barrier wait (time the coordinating thread
// spent blocked on the level barrier — high values mean skewed shards,
// not contention). Expected shape: near-linear to the physical core
// count, flat beyond; on a single-core host every worker count lands near
// 1.0x (barrier wait then measures pure scheduling overhead).
//
// Machine-readable records (EADP_BENCH_JSON, see bench_util.h): wall
// medians as "<query>/workers=N" median_ms rows — bench_gate.py gates
// only workers=1 (multi-worker wall clock measures core topology, not
// code; see MULTITHREAD_CASE there) — plus speedup and barrier-wait
// `value` rows, which never gate.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/thread_pool.h"

using namespace eadp;

namespace {

struct Workload {
  const char* name;
  QueryTopology topology;
  int num_relations;
};

Query MakeWorkload(const Workload& w) {
  GeneratorOptions gen;
  gen.topology = w.topology;
  gen.num_relations = w.num_relations;
  return GenerateRandomQuery(gen, 42);
}

}  // namespace

int main(int argc, char** argv) {
  int reps = BenchQueries(argc, argv, 5);
  BenchJsonWriter json("parallel_dp");

  const Workload workloads[] = {
      {"star12", QueryTopology::kStar, 12},
      {"star14", QueryTopology::kStar, 14},
      {"cycle14", QueryTopology::kCycle, 14},
      {"clique12", QueryTopology::kClique, 12},
  };
  const int worker_counts[] = {1, 2, 4, 8};

  unsigned cores = std::thread::hardware_concurrency();
  std::printf("Intra-query parallel DP (DPhyp, %d reps; host has %u "
              "hardware threads)\n", reps, cores);
  std::printf("%-10s %8s %12s %10s %14s\n", "query", "workers", "median_ms",
              "speedup", "barrier_ms");

  for (const Workload& w : workloads) {
    Query q = MakeWorkload(w);
    // One shared pool across worker counts: FanOut uses the first W-1
    // slots, so timing excludes thread spawn/teardown.
    ThreadPool pool(7);
    double seq_median = 0;
    double seq_cost = 0;
    for (int workers : worker_counts) {
      OptimizerOptions options;
      options.algorithm = Algorithm::kDphyp;
      options.dp_threads = workers;
      options.dp_pool = workers > 1 ? &pool : nullptr;
      std::vector<double> ms;
      std::vector<double> barrier_ms;
      double cost = 0;
      for (int r = 0; r < reps; ++r) {
        OptimizeResult res = Optimize(q, options);
        ms.push_back(res.stats.optimize_ms);
        barrier_ms.push_back(res.stats.dp_barrier_wait_ms);
        cost = res.plan ? res.plan->cost : 0;
      }
      double median = Median(ms);
      if (workers == 1) {
        seq_median = median;
        seq_cost = cost;
      } else if (cost != seq_cost) {
        std::fprintf(stderr,
                     "FATAL: %s workers=%d cost %.17g != sequential %.17g\n",
                     w.name, workers, cost, seq_cost);
        return 1;
      }
      double speedup = median > 0 ? seq_median / median : 0;
      std::string case_name =
          std::string(w.name) + "/workers=" + std::to_string(workers);
      json.RecordMs(case_name, median);
      if (workers > 1) {
        json.RecordValue(case_name + "/speedup", speedup);
      }
      json.RecordValue(case_name + "/barrier_ms", Median(barrier_ms));
      std::printf("%-10s %8d %12.4f %9.2fx %14.4f\n", w.name, workers,
                  median, speedup, Median(barrier_ms));
    }
  }
  std::printf("\n(expected: near-linear to the physical core count, ~1.0x "
              "beyond; single-core hosts stay ~1.0x throughout)\n");
  return 0;
}
