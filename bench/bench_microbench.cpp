// Component microbenchmarks (google-benchmark): enumerator, conflict
// detector, plan generators, and the execution engine's grouping.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "conflict/conflict_detector.h"
#include "exec/operators.h"
#include "hypergraph/dphyp_enumerator.h"
#include "queries/data_generator.h"

using namespace eadp;

namespace {

void BM_DphypChain(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Hypergraph g(n);
  for (int i = 0; i + 1 < n; ++i) {
    g.AddEdge(RelSet::Single(i), RelSet::Single(i + 1), i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountCsgCmpPairs(g));
  }
}
BENCHMARK(BM_DphypChain)->Arg(10)->Arg(15)->Arg(20);

void BM_DphypClique(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Hypergraph g(n);
  int e = 0;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      g.AddEdge(RelSet::Single(i), RelSet::Single(j), e++);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountCsgCmpPairs(g));
  }
}
BENCHMARK(BM_DphypClique)->Arg(8)->Arg(10)->Arg(12);

void BM_ConflictDetector(benchmark::State& state) {
  Query q = BenchQuery(static_cast<int>(state.range(0)), 1);
  for (auto _ : state) {
    ConflictDetector cd(q);
    benchmark::DoNotOptimize(cd.hypergraph().edges().size());
  }
}
BENCHMARK(BM_ConflictDetector)->Arg(5)->Arg(10)->Arg(20);

void BM_Optimize(benchmark::State& state, Algorithm a) {
  Query q = BenchQuery(static_cast<int>(state.range(0)), 2);
  OptimizerOptions options;
  options.algorithm = a;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Optimize(q, options).plan);
  }
}
BENCHMARK_CAPTURE(BM_Optimize, dphyp, Algorithm::kDphyp)->Arg(5)->Arg(10);
BENCHMARK_CAPTURE(BM_Optimize, h1, Algorithm::kH1)->Arg(5)->Arg(10);
BENCHMARK_CAPTURE(BM_Optimize, h2, Algorithm::kH2)->Arg(5)->Arg(10);
BENCHMARK_CAPTURE(BM_Optimize, ea_prune, Algorithm::kEaPrune)->Arg(5)->Arg(8);

void BM_GroupByExec(benchmark::State& state) {
  int rows = static_cast<int>(state.range(0));
  Table t({"g", "a"});
  for (int i = 0; i < rows; ++i) {
    t.AddRow({Value::Int(i % 50), Value::Int(i)});
  }
  std::vector<ExecAggregate> aggs = {
      ExecAggregate::Simple("s", AggKind::kSum, "a"),
      ExecAggregate::Simple("c", AggKind::kCountStar)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(GroupBy(t, {"g"}, aggs).NumRows());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_GroupByExec)->Arg(1000)->Arg(10000);

void BM_HashJoinExec(benchmark::State& state) {
  int rows = static_cast<int>(state.range(0));
  Table l({"x"});
  Table r({"y"});
  for (int i = 0; i < rows; ++i) {
    l.AddRow({Value::Int(i % 100)});
    r.AddRow({Value::Int(i % 100)});
  }
  ExecPredicate pred = {{"x", "y", CmpOp::kEq}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(InnerJoin(l, r, pred).NumRows());
  }
}
BENCHMARK(BM_HashJoinExec)->Arg(300)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
