// Figure 16: optimization runtime of DPhyp, EA-Prune, EA-All and H1 per
// relation count (log-scale in the paper).
//
// Expected shape: EA-All explodes first (paper: >1 s at 7-8 relations),
// EA-Prune extends the feasible range by ~3 relations, H1 tracks DPhyp
// within a small constant factor (paper: ~2.6x), DPhyp stays fastest.

#include <cstdio>

#include "bench/bench_util.h"

using namespace eadp;

int main(int argc, char** argv) {
  int queries = BenchQueries(argc, argv, 20);
  const int max_rels = 15;
  const int max_rels_prune = 11;
  const int max_rels_all = 8;

  std::printf("Figure 16: average optimization runtime [ms] "
              "(%d queries/size)\n", queries);
  std::printf("%4s %12s %12s %12s %12s %10s\n", "rels", "DPhyp", "H1",
              "EA-Prune", "EA-All", "H1/DPhyp");

  for (int n = 3; n <= max_rels; ++n) {
    double dphyp_ms = 0;
    double h1_ms = 0;
    double prune_ms = 0;
    double all_ms = 0;
    for (int i = 0; i < queries; ++i) {
      Query q = BenchQuery(n, static_cast<uint64_t>(n) * 200000 + i);
      dphyp_ms += RunAlgorithm(q, Algorithm::kDphyp).ms;
      h1_ms += RunAlgorithm(q, Algorithm::kH1).ms;
      if (n <= max_rels_prune) prune_ms += RunAlgorithm(q, Algorithm::kEaPrune).ms;
      if (n <= max_rels_all) all_ms += RunAlgorithm(q, Algorithm::kEaAll).ms;
    }
    auto avg = [&](double total, bool enabled) {
      return enabled ? total / queries : -1.0;
    };
    double d = avg(dphyp_ms, true);
    double h = avg(h1_ms, true);
    double p = avg(prune_ms, n <= max_rels_prune);
    double a = avg(all_ms, n <= max_rels_all);
    std::printf("%4d %12.4f %12.4f ", n, d, h);
    if (p >= 0) {
      std::printf("%12.4f ", p);
    } else {
      std::printf("%12s ", "-");
    }
    if (a >= 0) {
      std::printf("%12.4f ", a);
    } else {
      std::printf("%12s ", "-");
    }
    std::printf("%10.2f\n", h / d);
  }
  std::printf("\n(paper: EA-All feasible to ~7, EA-Prune to ~10-11, H1 a "
              "constant ~2.6x over DPhyp)\n");
  return 0;
}
