// Figure 16: optimization runtime of DPhyp, EA-Prune, EA-All and H1 per
// relation count (log-scale in the paper).
//
// Expected shape: EA-All explodes first (paper: >1 s at 7-8 relations),
// EA-Prune extends the feasible range by ~3 relations, H1 tracks DPhyp
// within a small constant factor (paper: ~2.6x), DPhyp stays fastest.
//
// Extension beyond the paper: a DPhyp workers=4 column (intra-query
// parallel DP, src/plangen/parallel_dp.h) for the sizes with enough
// csg-cmp-pairs to shard (n >= 10). Its wall medians are recorded as
// ".../workers=4" rows, which bench_gate.py treats as core-count-
// sensitive (reported, never gated).
//
// The printed table reports averages (comparable with the paper's plots);
// the machine-readable records (EADP_BENCH_JSON, see bench_util.h) report
// per-size *medians*, which are robust against scheduler noise.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/thread_pool.h"

using namespace eadp;

int main(int argc, char** argv) {
  int queries = BenchQueries(argc, argv, 20);
  const int max_rels = 15;
  const int max_rels_prune = 11;
  const int max_rels_all = 8;
  const int min_rels_workers = 10;
  BenchJsonWriter json("fig16_runtime");
  ThreadPool pool(3);

  std::printf("Figure 16: average optimization runtime [ms] "
              "(%d queries/size)\n", queries);
  std::printf("%4s %12s %12s %12s %12s %12s %10s\n", "rels", "DPhyp", "H1",
              "EA-Prune", "EA-All", "DPhyp(w=4)", "H1/DPhyp");

  for (int n = 3; n <= max_rels; ++n) {
    std::vector<double> dphyp_ms;
    std::vector<double> h1_ms;
    std::vector<double> prune_ms;
    std::vector<double> all_ms;
    std::vector<double> dphyp_w4_ms;
    for (int i = 0; i < queries; ++i) {
      Query q = BenchQuery(n, static_cast<uint64_t>(n) * 200000 + i);
      dphyp_ms.push_back(RunAlgorithm(q, Algorithm::kDphyp).ms);
      h1_ms.push_back(RunAlgorithm(q, Algorithm::kH1).ms);
      if (n <= max_rels_prune) {
        prune_ms.push_back(RunAlgorithm(q, Algorithm::kEaPrune).ms);
      }
      if (n <= max_rels_all) {
        all_ms.push_back(RunAlgorithm(q, Algorithm::kEaAll).ms);
      }
      if (n >= min_rels_workers) {
        OptimizerOptions options;
        options.algorithm = Algorithm::kDphyp;
        options.dp_threads = 4;
        options.dp_pool = &pool;
        dphyp_w4_ms.push_back(Optimize(q, options).stats.optimize_ms);
      }
    }
    auto avg = [](const std::vector<double>& v) {
      if (v.empty()) return -1.0;
      double total = 0;
      for (double x : v) total += x;
      return total / static_cast<double>(v.size());
    };
    auto record = [&](const char* alg, const std::vector<double>& v) {
      if (!v.empty()) {
        json.RecordMs(std::string(alg) + "/n=" + std::to_string(n),
                      Median(v));
      }
    };
    record("DPhyp", dphyp_ms);
    record("H1", h1_ms);
    record("EA-Prune", prune_ms);
    record("EA-All", all_ms);
    if (!dphyp_w4_ms.empty()) {
      json.RecordMs("DPhyp/n=" + std::to_string(n) + "/workers=4",
                    Median(dphyp_w4_ms));
    }
    double d = avg(dphyp_ms);
    double h = avg(h1_ms);
    double p = avg(prune_ms);
    double a = avg(all_ms);
    double w4 = avg(dphyp_w4_ms);
    std::printf("%4d %12.4f %12.4f ", n, d, h);
    if (p >= 0) {
      std::printf("%12.4f ", p);
    } else {
      std::printf("%12s ", "-");
    }
    if (a >= 0) {
      std::printf("%12.4f ", a);
    } else {
      std::printf("%12s ", "-");
    }
    if (w4 >= 0) {
      std::printf("%12.4f ", w4);
    } else {
      std::printf("%12s ", "-");
    }
    std::printf("%10.2f\n", h / d);
  }
  std::printf("\n(paper: EA-All feasible to ~7, EA-Prune to ~10-11, H1 a "
              "constant ~2.6x over DPhyp)\n");
  return 0;
}
