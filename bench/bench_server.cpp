// Serving-tier throughput: an in-process PlanServer (loopback TCP, the
// full frame protocol end to end) driven by the seeded Zipf load
// generator at 1/4/8 concurrent connections. This is bench_plan_cache's
// serving scenario moved across a socket: each connection is a session
// with its own Zipf(1.0) working set, one cold pass fills the shared
// tiered cache, and the measured warm pass is steady-state traffic —
// p50/p99 per-query latency and aggregate qps per connection count.
//
// Two hard gates ride along (the bench fails, not just reports):
//   - warm hit rate >= 0.95: the server's warm-cache behaviour must stay
//     within 5 points of the in-process bench_plan_cache warm rate (~1.0);
//   - cost_mismatches == 0: every served plan's root cost is compared
//     bit-for-bit against a local uncached OptimizeAdaptive of the same
//     spec line, so any cross-session serve or codec corruption fails.
//
// Machine-readable records (EADP_BENCH_JSON, see bench_util.h): wall
// median_ms per connection count plus qps/p50/p99/hit-rate values.
// conns>1 rows are core-count-sensitive and excluded from the CI gate by
// the same regex that excludes threads>1 rows (scripts/bench_gate.py).

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "server/load_client.h"
#include "server/optimizer_service.h"
#include "server/plan_server.h"

using namespace eadp;

int main(int argc, char** argv) {
  int reps = BenchQueries(argc, argv, 3);
  BenchJsonWriter json("server");

  ServiceOptions service_options;
  service_options.pool_threads = 8;
  service_options.max_inflight = 64;
  OptimizerService service(service_options);
  PlanServer server(&service, PlanServerOptions{});
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "FATAL: server start failed: %s\n", error.c_str());
    return 1;
  }

  std::printf("plan-server throughput: loopback TCP, Zipf(1.0) over 64 "
              "shapes/conn, 500 warm queries/conn, median over %d runs\n",
              reps);
  std::printf("%6s  %10s %10s %10s %10s %9s\n", "conns", "wall ms", "qps",
              "p50 ms", "p99 ms", "hit rate");

  bool failed = false;
  for (int conns : {1, 4, 8}) {
    std::vector<double> wall, qps, p50, p99, hit;
    for (int rep = 0; rep < reps; ++rep) {
      LoadOptions load;
      load.port = server.port();
      load.connections = conns;
      // Verifying costs re-plans every shape locally; once (rep 0) pins
      // correctness, later reps measure the serving path alone.
      load.verify_costs = (rep == 0);
      bool ok = false;
      LoadReport report = RunLoad(load, &ok);
      if (!ok || report.errors != 0 || report.cost_mismatches != 0) {
        std::fprintf(stderr,
                     "FATAL: conns=%d rep=%d ok=%d errors=%llu "
                     "cost_mismatches=%llu\n",
                     conns, rep, ok ? 1 : 0,
                     static_cast<unsigned long long>(report.errors),
                     static_cast<unsigned long long>(report.cost_mismatches));
        failed = true;
        break;
      }
      wall.push_back(report.wall_ms);
      qps.push_back(report.qps);
      p50.push_back(report.p50_ms);
      p99.push_back(report.p99_ms);
      hit.push_back(report.hit_rate);
    }
    if (failed) break;
    double hit_rate = Median(hit);
    std::printf("%6d  %10.1f %10.1f %10.4f %10.4f %8.1f%%\n", conns,
                Median(wall), Median(qps), Median(p50), Median(p99),
                100 * hit_rate);
    std::string prefix = "zipf/conns=" + std::to_string(conns);
    json.RecordMs(prefix + "/wall", Median(wall));
    json.RecordValue(prefix + "/qps", Median(qps));
    json.RecordValue(prefix + "/p50_ms", Median(p50));
    json.RecordValue(prefix + "/p99_ms", Median(p99));
    json.RecordValue(prefix + "/hit_rate", hit_rate);
    if (hit_rate < 0.95) {
      std::fprintf(stderr,
                   "FATAL: conns=%d warm hit rate %.3f < 0.95 (in-process "
                   "warm rate is ~1.0; the server tier must stay within 5 "
                   "points)\n",
                   conns, hit_rate);
      failed = true;
      break;
    }
  }

  server.Shutdown();
  return failed ? 1 : 0;
}
