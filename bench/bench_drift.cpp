// Serving under statistics drift (DESIGN.md §14): a seeded 1000-query
// Zipf stream over a pool of shapes whose catalog statistics drift gently
// (~3% of arrivals perturb the arriving shape's cardinalities), planned
// through the drift-aware cache in two modes over the *identical* stream:
//
//   strict   — drift_tolerance 0: every drifted hit re-plans inline (the
//              stats-keyed baseline behavior);
//   tolerant — drift_tolerance 0.5: drifted hits are re-costed
//              (cost/recost.h) and served when within the band of the
//              sensitivity lower bound, so most full re-plans never run.
//
// Reported per mode: p50/p95 per-query latency, drifted hits, full
// re-plans (cache refreshes) and re-plans avoided; the headline is the
// avoided fraction — the bench hard-fails below 70% — and the re-plan
// ratio tolerant/strict. A determinism guard forces a strict end-of-stream
// probe of every shape in both modes and requires bit-identical costs:
// serving within the band must not degrade final plan quality.
//
// Machine-readable records (EADP_BENCH_JSON, bench_util.h): per mode
// p50 latency, re-plan and drift counters, plus the avoided fraction,
// folded into BENCH_results.json by scripts/bench.sh.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "plangen/plan_cache.h"
#include "queries/mutation.h"

using namespace eadp;

namespace {

constexpr int kStreamLength = 1000;
constexpr int kShapes = 24;
constexpr double kDriftProbability = 0.03;

/// One stream arrival: shape rank, plus the seed of its drift draw (0 =
/// no drift). Pre-materialized so both modes replay the identical stream,
/// including identical catalog perturbations.
struct Event {
  int shape = 0;
  uint64_t drift_seed = 0;
};

/// Gentle drift (same operator as tests/drift_test.cpp): one relation's
/// cardinality scaled by a few percent, distinct counts repaired to stay
/// consistent (keys keep distinct == cardinality).
void DriftGently(Catalog* catalog, Rng* rng) {
  int r = static_cast<int>(rng->UniformInt(0, catalog->num_relations() - 1));
  const RelationDef& rel = catalog->relation(r);
  double card =
      std::max(2.0, rel.cardinality * rng->UniformDouble(0.96, 1.04));
  if (card == rel.cardinality) card += 1.0;
  AttrSet key_attrs;
  for (const AttrSet& key : rel.keys) key_attrs.UnionWith(key);
  catalog->SetCardinality(r, card);
  for (int a : BitsOf(rel.attributes)) {
    double distinct = key_attrs.Contains(a)
                          ? card
                          : std::min(catalog->DistinctOf(a), card);
    catalog->SetDistinct(a, distinct);
  }
}

std::vector<QuerySpec> ShapePool() {
  std::vector<QuerySpec> specs;
  for (int s = 0; s < kShapes; ++s) {
    GeneratorOptions gen;
    gen.num_relations = 5 + s % 4;
    specs.push_back(QuerySpec::FromQuery(
        GenerateRandomQuery(gen, 9000 + static_cast<uint64_t>(s))));
  }
  return specs;
}

/// Zipf(1.1) stream with per-event drift seeds, identical across modes.
std::vector<Event> DriftingStream() {
  std::vector<double> weights(kShapes);
  for (int s = 0; s < kShapes; ++s) {
    weights[static_cast<size_t>(s)] = 1.0 / std::pow(s + 1.0, 1.1);
  }
  Rng rng(77);
  std::vector<Event> stream(kStreamLength);
  for (Event& e : stream) {
    e.shape = rng.PickWeighted(weights.data(), kShapes);
    e.drift_seed = rng.Bernoulli(kDriftProbability) ? rng.Next() | 1 : 0;
  }
  return stream;
}

struct ModeRun {
  std::vector<double> latency_ms;
  PlanCacheStats stats;
  std::vector<double> final_costs;  ///< strict end-of-stream probe per shape
};

ModeRun RunMode(const std::vector<Event>& stream, double tolerance) {
  std::vector<QuerySpec> specs = ShapePool();  // fresh replicas per mode
  PlanCache cache;
  OptimizerOptions options;
  options.plan_cache = &cache;
  options.drift_tolerance = tolerance;

  ModeRun run;
  run.latency_ms.reserve(stream.size());
  for (const Event& e : stream) {
    QuerySpec& spec = specs[static_cast<size_t>(e.shape)];
    if (e.drift_seed != 0) {
      Rng drift_rng(e.drift_seed);
      DriftGently(&spec.catalog, &drift_rng);
    }
    Query q = spec.ToQuery();
    auto t0 = std::chrono::steady_clock::now();
    OptimizeResult r = OptimizeAdaptive(q, options);
    auto t1 = std::chrono::steady_clock::now();
    if (r.plan == nullptr) {
      std::fprintf(stderr, "FATAL: no plan for shape %d\n", e.shape);
      std::exit(1);
    }
    run.latency_ms.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  run.stats = cache.Snapshot();

  // End-of-stream quality: force a strict re-plan of every shape under
  // its final statistics.
  OptimizerOptions strict = options;
  strict.drift_tolerance = 0;
  for (QuerySpec& spec : specs) {
    OptimizeResult r = OptimizeAdaptive(spec.ToQuery(), strict);
    run.final_costs.push_back(r.plan ? r.plan->cost : -1);
  }
  return run;
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

}  // namespace

int main(int argc, char** argv) {
  int reps = BenchQueries(argc, argv, 3);
  BenchJsonWriter json("drift");

  std::vector<Event> stream = DriftingStream();
  int drift_events = 0;
  for (const Event& e : stream) drift_events += e.drift_seed != 0 ? 1 : 0;
  std::printf("drift serving: %d-query Zipf stream over %d shapes, "
              "%d drift events, median over %d runs\n",
              kStreamLength, kShapes, drift_events, reps);

  const char* names[2] = {"strict", "tolerant"};
  const double tolerances[2] = {0.0, 0.5};
  double p50[2] = {0, 0};
  PlanCacheStats stats[2];
  std::vector<double> final_costs[2];
  for (int m = 0; m < 2; ++m) {
    std::vector<double> p50s, p95s;
    ModeRun last;
    for (int rep = 0; rep < reps; ++rep) {
      last = RunMode(stream, tolerances[m]);
      p50s.push_back(Percentile(last.latency_ms, 0.5));
      p95s.push_back(Percentile(last.latency_ms, 0.95));
    }
    p50[m] = Median(p50s);
    stats[m] = last.stats;  // counters are deterministic across reps
    final_costs[m] = last.final_costs;
    std::printf("  %-8s p50 %.4f ms  p95 %.4f ms  drifted hits %llu  "
                "replans %llu  avoided %llu\n",
                names[m], p50[m], Median(p95s),
                static_cast<unsigned long long>(stats[m].drift_hits),
                static_cast<unsigned long long>(stats[m].refreshes),
                static_cast<unsigned long long>(stats[m].replans_avoided));
    std::string prefix = std::string("drift1000/mode=") + names[m];
    json.RecordMs(prefix + "/p50", p50[m]);
    json.RecordValue(prefix + "/drift_hits",
                     static_cast<double>(stats[m].drift_hits));
    json.RecordValue(prefix + "/replans",
                     static_cast<double>(stats[m].refreshes));
  }

  // Equal final quality: strict end-of-stream probes must agree bit for
  // bit across modes (the shapes saw identical drift in both runs).
  for (int s = 0; s < kShapes; ++s) {
    if (final_costs[0][static_cast<size_t>(s)] !=
        final_costs[1][static_cast<size_t>(s)]) {
      std::fprintf(stderr,
                   "FATAL: shape %d final cost %.17g (strict) != %.17g "
                   "(tolerant)\n",
                   s, final_costs[0][static_cast<size_t>(s)],
                   final_costs[1][static_cast<size_t>(s)]);
      return 1;
    }
  }

  double avoided_fraction =
      stats[1].drift_hits == 0
          ? 0
          : static_cast<double>(stats[1].replans_avoided) /
                static_cast<double>(stats[1].drift_hits);
  double replan_ratio =
      stats[0].refreshes == 0
          ? 0
          : static_cast<double>(stats[1].refreshes) /
                static_cast<double>(stats[0].refreshes);
  std::printf("\nre-plans avoided (tolerant): %.1f%% of %llu drifted hits; "
              "full re-plans tolerant/strict: %.2f\n",
              100 * avoided_fraction,
              static_cast<unsigned long long>(stats[1].drift_hits),
              replan_ratio);
  json.RecordValue("drift1000/avoided_fraction", avoided_fraction);
  json.RecordValue("drift1000/replan_ratio", replan_ratio);
  if (avoided_fraction < 0.7) {
    std::fprintf(stderr, "FATAL: avoided fraction %.2f < 0.7\n",
                 avoided_fraction);
    return 1;
  }
  return 0;
}
