// Figure 18: runtime of H2 relative to H1.
//
// Expected shape: ratio close to 1, often slightly below — H2 considers
// fewer plans because eager groupings turn grouping attributes into keys,
// making upper groupings obsolete, which outweighs the extra eagerness
// bookkeeping (paper Sec. 5.3).

#include <cstdio>

#include "bench/bench_util.h"

using namespace eadp;

int main(int argc, char** argv) {
  int queries = BenchQueries(argc, argv, 30);
  const int max_rels = 15;

  std::printf("Figure 18: H2 runtime relative to H1 (%d queries/size)\n",
              queries);
  std::printf("%4s %12s %12s %12s\n", "rels", "H1 [ms]", "H2 [ms]",
              "H2/H1");
  for (int n = 3; n <= max_rels; ++n) {
    double h1_ms = 0;
    double h2_ms = 0;
    for (int i = 0; i < queries; ++i) {
      Query q = BenchQuery(n, static_cast<uint64_t>(n) * 400000 + i);
      h1_ms += RunAlgorithm(q, Algorithm::kH1).ms;
      h2_ms += RunAlgorithm(q, Algorithm::kH2, 1.03).ms;
    }
    std::printf("%4d %12.4f %12.4f %12.3f\n", n, h1_ms / queries,
                h2_ms / queries, h2_ms / h1_ms);
  }
  std::printf("\n(paper: nearly identical, H2 often marginally faster)\n");
  return 0;
}
