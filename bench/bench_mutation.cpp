// Mutation-harness throughput: how fast the fuzzer's inner loop runs.
//
// Two measurements over a seeded pool of generator/TPC-H seeds:
//   1. mutate: MutationEngine::Step chains (clone + operator + validity
//      check + fingerprint), reported as mutants/sec — the cost of
//      producing one checkable mutant.
//   2. oracle: the full per-mutant oracle stack from tests/fuzz_util.h
//      (all strategies + validator + exec cross-check + cache-warm
//      probe), reported as mutants/sec — the end-to-end fuzz rate that
//      sizes the CI budget (EADP_FUZZ_MUTANTS over a 10-minute box).
//
// Not part of the bench-regression gate: the oracle rate tracks the
// optimizer strategies it sweeps, so it moves whenever they do; this
// binary exists to recalibrate fuzz budgets after such changes.

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "plangen/plan_cache.h"
#include "queries/mutation.h"
#include "tests/fuzz_util.h"

using namespace eadp;

namespace {

std::vector<FuzzSeed> BenchSeedPool() {
  std::vector<FuzzSeed> pool;
  for (const char* name : {"ex", "q3", "q5"}) {
    FuzzSeed s;
    s.kind = "tpch";
    s.tpch = name;
    pool.push_back(s);
  }
  for (int n = 4; n <= 7; ++n) {
    FuzzSeed s;
    s.kind = "gen";
    s.topology = QueryTopology::kRandomTree;
    s.num_relations = n;
    s.seed = 100 + static_cast<uint64_t>(n);
    pool.push_back(s);
  }
  return pool;
}

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const int mutants = BenchQueries(argc, argv, 400);
  const std::vector<FuzzSeed> pool = BenchSeedPool();
  BenchJsonWriter json("mutation");

  std::printf("bench_mutation: %d mutants per phase, pool of %zu seeds\n\n",
              mutants, pool.size());

  // Phase 1: pure mutation chains (no planning).
  {
    double t0 = NowMs();
    int produced = 0;
    for (int i = 0; produced < mutants; ++i) {
      const FuzzSeed& seed = pool[static_cast<size_t>(i) % pool.size()];
      MutationEngine engine(QuerySpec::FromQuery(MaterializeSeed(seed)),
                            0xbe9c0 + static_cast<uint64_t>(i));
      for (int s = 0; s < 4 && produced < mutants; ++s) {
        if (engine.Step()) ++produced;
      }
    }
    double ms = NowMs() - t0;
    double rate = produced / (ms / 1000.0);
    std::printf("  mutate : %8.1f mutants/sec  (%d mutants, %.1f ms)\n",
                rate, produced, ms);
    json.RecordValue("mutate_per_sec", rate);
  }

  // Phase 2: full oracle stack per mutant (the real fuzz inner loop).
  {
    PlanCache cache;
    FuzzOracleOptions oracle;
    oracle.cache = &cache;
    double t0 = NowMs();
    int checked = 0;
    int failures = 0;
    for (int i = 0; checked < mutants; ++i) {
      const FuzzSeed& seed = pool[static_cast<size_t>(i) % pool.size()];
      MutationEngine engine(QuerySpec::FromQuery(MaterializeSeed(seed)),
                            0xface + static_cast<uint64_t>(i));
      for (int s = 0; s < 2; ++s) engine.Step();
      FuzzOracleReport report = CheckMutant(engine.spec().ToQuery(), oracle);
      failures += static_cast<int>(report.failures.size());
      ++checked;
    }
    double ms = NowMs() - t0;
    double rate = checked / (ms / 1000.0);
    std::printf("  oracle : %8.1f mutants/sec  (%d mutants, %.1f ms, %d failures)\n",
                rate, checked, ms, failures);
    json.RecordValue("oracle_per_sec", rate);
    if (failures != 0) {
      std::printf("\nFAIL: oracle divergences during bench — run scripts/fuzz.sh\n");
      return 1;
    }
  }

  return 0;
}
