// Figure 15: average plan cost of DPhyp (no eager aggregation) relative to
// EA-All / EA-Prune, over random operator trees per relation count.
//
// Expected shape (paper): ratio 1.0x at 3 relations growing to ~18x at 13,
// with extreme outliers (the paper saw 17,500x once); EA-All and EA-Prune
// produce identical costs (the pruning is optimality-preserving).

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"

using namespace eadp;

int main(int argc, char** argv) {
  int queries = BenchQueries(argc, argv, 30);
  const int min_rels = 3;
  const int max_rels = 12;       // EA-Prune reference
  const int max_rels_all = 7;    // EA-All cross-check bound

  std::printf("Figure 15: relative plan cost DPhyp vs EA-Prune "
              "(%d queries/size)\n", queries);
  std::printf("%4s %14s %14s %14s %10s\n", "rels", "rel.cost(avg)",
              "rel.cost(max)", "EAall==EAprune", "eager[%]");

  for (int n = min_rels; n <= max_rels; ++n) {
    double ratio_sum = 0;
    double ratio_max = 0;
    int eager_plans = 0;
    bool all_equal = true;
    for (int i = 0; i < queries; ++i) {
      Query q = BenchQuery(n, static_cast<uint64_t>(n) * 100000 + i);
      RunResult prune = RunAlgorithm(q, Algorithm::kEaPrune);
      RunResult dphyp = RunAlgorithm(q, Algorithm::kDphyp);
      if (n <= max_rels_all) {
        RunResult all = RunAlgorithm(q, Algorithm::kEaAll);
        if (std::abs(all.cost - prune.cost) > 1e-6 * (1 + prune.cost)) {
          all_equal = false;
        }
      }
      double ratio = dphyp.cost / prune.cost;
      ratio_sum += ratio;
      ratio_max = std::max(ratio_max, ratio);
      OptimizerOptions opts;
      opts.algorithm = Algorithm::kEaPrune;
      OptimizeResult r = Optimize(q, opts);
      if (r.plan->PushedGroupingCount() > 0) ++eager_plans;
    }
    std::printf("%4d %14.2f %14.1f %14s %9.0f%%\n", n, ratio_sum / queries,
                ratio_max,
                n <= max_rels_all ? (all_equal ? "yes" : "NO!") : "-",
                100.0 * eager_plans / queries);
  }
  std::printf("\n(paper: ratio grows with the number of relations, ~18x at "
              "13 relations, outliers far above)\n");
  return 0;
}
