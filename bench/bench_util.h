// Shared workload driver for the paper-figure benchmarks.
//
// Each bench binary regenerates one table/figure of the evaluation
// (Sec. 5): random operator trees per relation count, optimized with the
// relevant algorithms, reporting average relative plan costs or runtimes.
// Sample counts default to laptop-scale (the paper used 10,000 queries per
// size) and can be raised via the environment variable EADP_BENCH_QUERIES
// or argv[1].

#ifndef EADP_BENCH_BENCH_UTIL_H_
#define EADP_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "plangen/plangen.h"
#include "queries/query_generator.h"

namespace eadp {

inline int BenchQueries(int argc, char** argv, int fallback) {
  if (argc > 1) {
    int v = std::atoi(argv[1]);
    if (v > 0) return v;
  }
  const char* env = std::getenv("EADP_BENCH_QUERIES");
  if (env != nullptr) {
    int v = std::atoi(env);
    if (v > 0) return v;
  }
  return fallback;
}

/// Cost and runtime of one algorithm over one query.
struct RunResult {
  double cost = 0;
  double ms = 0;
  size_t table_plans = 0;
};

inline RunResult RunAlgorithm(const Query& q, Algorithm a,
                              double h2_tolerance = 1.03) {
  OptimizerOptions options;
  options.algorithm = a;
  options.h2_tolerance = h2_tolerance;
  OptimizeResult r = Optimize(q, options);
  RunResult out;
  out.cost = r.plan ? r.plan->cost : 0;
  out.ms = r.stats.optimize_ms;
  out.table_plans = r.stats.table_plans;
  return out;
}

inline Query BenchQuery(int num_relations, uint64_t seed) {
  GeneratorOptions gen;
  gen.num_relations = num_relations;
  return GenerateRandomQuery(gen, seed);
}

/// Median of a sample set (0 when empty). Used for the machine-readable
/// perf records: medians are robust against scheduler noise, unlike the
/// means the human-readable tables print.
inline double Median(std::vector<double> v) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  size_t m = v.size() / 2;
  return v.size() % 2 == 1 ? v[m] : 0.5 * (v[m - 1] + v[m]);
}

/// Machine-readable perf records: when EADP_BENCH_JSON names a file, each
/// Record*() call appends one JSON object per line (JSONL). scripts/bench.sh
/// sets the variable and assembles the lines into BENCH_results.json so the
/// perf trajectory is tracked across PRs. No-op when the variable is unset,
/// so interactive bench runs are unaffected.
class BenchJsonWriter {
 public:
  explicit BenchJsonWriter(const char* suite)
      : suite_(suite), path_(std::getenv("EADP_BENCH_JSON")) {}

  /// Records a wall-clock measurement (median over the suite's samples).
  void RecordMs(const std::string& case_name, double median_ms) {
    Append(case_name, "median_ms", median_ms);
  }

  /// Records a deterministic counter (e.g. plan nodes built per ccp) that
  /// tracks algorithmic — rather than wall-clock — regressions.
  void RecordValue(const std::string& case_name, double value) {
    Append(case_name, "value", value);
  }

 private:
  void Append(const std::string& case_name, const char* key, double v) {
    if (path_ == nullptr) return;
    FILE* f = std::fopen(path_, "a");
    if (f == nullptr) return;
    std::fprintf(f, "{\"suite\":\"%s\",\"case\":\"%s\",\"%s\":%.6g}\n",
                 suite_, case_name.c_str(), key, v);
    std::fclose(f);
  }

  const char* suite_;
  const char* path_;
};

}  // namespace eadp

#endif  // EADP_BENCH_BENCH_UTIL_H_
