// Shared workload driver for the paper-figure benchmarks.
//
// Each bench binary regenerates one table/figure of the evaluation
// (Sec. 5): random operator trees per relation count, optimized with the
// relevant algorithms, reporting average relative plan costs or runtimes.
// Sample counts default to laptop-scale (the paper used 10,000 queries per
// size) and can be raised via the environment variable EADP_BENCH_QUERIES
// or argv[1].

#ifndef EADP_BENCH_BENCH_UTIL_H_
#define EADP_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "plangen/plangen.h"
#include "queries/query_generator.h"

namespace eadp {

inline int BenchQueries(int argc, char** argv, int fallback) {
  if (argc > 1) {
    int v = std::atoi(argv[1]);
    if (v > 0) return v;
  }
  const char* env = std::getenv("EADP_BENCH_QUERIES");
  if (env != nullptr) {
    int v = std::atoi(env);
    if (v > 0) return v;
  }
  return fallback;
}

/// Cost and runtime of one algorithm over one query.
struct RunResult {
  double cost = 0;
  double ms = 0;
  size_t table_plans = 0;
};

inline RunResult RunAlgorithm(const Query& q, Algorithm a,
                              double h2_tolerance = 1.03) {
  OptimizerOptions options;
  options.algorithm = a;
  options.h2_tolerance = h2_tolerance;
  OptimizeResult r = Optimize(q, options);
  RunResult out;
  out.cost = r.plan ? r.plan->cost : 0;
  out.ms = r.stats.optimize_ms;
  out.table_plans = r.stats.table_plans;
  return out;
}

inline Query BenchQuery(int num_relations, uint64_t seed) {
  GeneratorOptions gen;
  gen.num_relations = num_relations;
  return GenerateRandomQuery(gen, seed);
}

}  // namespace eadp

#endif  // EADP_BENCH_BENCH_UTIL_H_
