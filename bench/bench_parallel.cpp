// Parallel-optimizer throughput: OptimizeBatch over a seeded 100-query
// mixed-topology batch (random operator trees below the exact-DP
// threshold, chain/star/cycle/clique above it) at 1/2/4/8 threads.
//
// Reported per thread count: median batch wall clock, queries/sec, p50/p95
// per-query latency, and the throughput speedup over the single-thread
// run. The single-thread run is the sequential reference loop, so the
// bench double-checks the determinism contract on the side: per-query
// plan costs must be bit-identical across all thread counts (the bench
// aborts loudly if not — a wrong answer delivered quickly is not a
// result). Expected shape: near-linear scaling while threads <= physical
// cores (each task is an independent single-threaded optimization with
// arena-private memory), flat beyond; on a single-core host every thread
// count necessarily lands near 1.0x.
//
// Machine-readable records (EADP_BENCH_JSON, see bench_util.h): per thread
// count, wall median_ms plus qps / p50 / p95 / speedup values, folded into
// BENCH_results.json by scripts/bench.sh.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "plangen/parallel.h"

using namespace eadp;

namespace {

/// The seeded batch: 20 random operator trees (n = 6..10, exact DP) and 80
/// structured large queries (4 topologies x n in {16, 24, 40, 64} x 5
/// seeds) — 100 queries mixing both facade paths.
std::vector<Query> SeededBatch() {
  std::vector<Query> batch;
  for (int i = 0; i < 20; ++i) {
    GeneratorOptions gen;
    gen.num_relations = 6 + i % 5;
    batch.push_back(GenerateRandomQuery(gen, static_cast<uint64_t>(i)));
  }
  for (QueryTopology t : {QueryTopology::kChain, QueryTopology::kStar,
                          QueryTopology::kCycle, QueryTopology::kClique}) {
    for (int n : {16, 24, 40, 64}) {
      for (uint64_t seed = 0; seed < 5; ++seed) {
        GeneratorOptions gen;
        gen.topology = t;
        gen.num_relations = n;
        batch.push_back(GenerateRandomQuery(gen, 1000 + seed));
      }
    }
  }
  return batch;
}

}  // namespace

int main(int argc, char** argv) {
  int reps = BenchQueries(argc, argv, 5);
  BenchJsonWriter json("parallel");

  std::vector<Query> batch = SeededBatch();
  OptimizerOptions options;

  // Scaling is bounded by the machine: record the core count next to the
  // throughput numbers so a 1.0x curve on a 1-core host reads as what it
  // is, not as a regression.
  json.RecordValue("host/hardware_concurrency",
                   static_cast<double>(std::thread::hardware_concurrency()));

  // Reference costs (and a warm-up) from one sequential run.
  BatchResult reference = OptimizeBatch(batch, options, 1);

  std::printf("OptimizeBatch: %zu-query seeded mixed-topology batch, "
              "median over %d runs\n", batch.size(), reps);
  std::printf("%8s  %10s %10s %10s %10s %10s\n", "threads", "wall ms", "qps",
              "p50 ms", "p95 ms", "speedup");

  double qps_single = 0;
  for (int threads : {1, 2, 4, 8}) {
    std::vector<double> wall, qps, p50, p95;
    for (int rep = 0; rep < reps; ++rep) {
      BatchResult r = OptimizeBatch(batch, options, threads);
      wall.push_back(r.stats.wall_ms);
      qps.push_back(r.stats.queries_per_second);
      p50.push_back(r.stats.p50_ms);
      p95.push_back(r.stats.p95_ms);
      // Determinism guard: a parallel run that returns different plans is
      // wrong, whatever its throughput says.
      for (size_t i = 0; i < batch.size(); ++i) {
        double want = reference.results[i].plan->cost;
        double got = r.results[i].plan ? r.results[i].plan->cost : -1;
        if (got != want) {
          std::fprintf(stderr,
                       "FATAL: query %zu cost %g != sequential %g at %d "
                       "threads\n", i, got, want, threads);
          return 1;
        }
      }
    }
    double qps_med = Median(qps);
    if (threads == 1) qps_single = qps_med;
    double speedup = qps_single > 0 ? qps_med / qps_single : 0;
    std::printf("%8d  %10.1f %10.1f %10.3f %10.3f %9.2fx\n", threads,
                Median(wall), qps_med, Median(p50), Median(p95), speedup);

    std::string prefix = "batch100/threads=" + std::to_string(threads);
    json.RecordMs(prefix + "/wall", Median(wall));
    json.RecordValue(prefix + "/qps", qps_med);
    json.RecordValue(prefix + "/p50_ms", Median(p50));
    json.RecordValue(prefix + "/p95_ms", Median(p95));
    json.RecordValue(prefix + "/speedup", speedup);
  }
  std::printf("\n(speedup = qps / single-thread qps; bounded by physical "
              "cores — this host has %u)\n",
              std::thread::hardware_concurrency());
  return 0;
}
