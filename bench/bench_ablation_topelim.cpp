// Ablation: value of the top-grouping elimination (Eqv. 42; op_trees.h).
// With elimination, plans whose pushed groupings make G a key skip the
// final Γ entirely (the paper's Fig. 11 discussion: cost 9 -> 7).

#include <cstdio>

#include "bench/bench_util.h"

using namespace eadp;

int main(int argc, char** argv) {
  int queries = BenchQueries(argc, argv, 50);
  const int max_rels = 9;

  std::printf("Ablation: top-grouping elimination (Eqv. 42) "
              "(%d queries/size)\n\n", queries);
  std::printf("%4s %14s %14s %12s %14s\n", "rels", "cost(with)",
              "cost(without)", "avg ratio", "eliminated[%]");

  for (int n = 3; n <= max_rels; ++n) {
    double with_sum = 0;
    double without_sum = 0;
    double ratio_sum = 0;
    int eliminated = 0;
    for (int i = 0; i < queries; ++i) {
      Query q = BenchQuery(n, static_cast<uint64_t>(n) * 600000 + i);
      OptimizerOptions with_elim;
      with_elim.algorithm = Algorithm::kEaPrune;
      OptimizerOptions without_elim = with_elim;
      without_elim.builder.top_grouping_elimination = false;
      OptimizeResult a = Optimize(q, with_elim);
      OptimizeResult b = Optimize(q, without_elim);
      with_sum += a.plan->cost;
      without_sum += b.plan->cost;
      ratio_sum += a.plan->cost / b.plan->cost;
      // Elimination fired if the finalized plan has no kFinalGroup node.
      const PlanNode* below = a.plan->left;
      if (below != nullptr && below->op != PlanOp::kFinalGroup) ++eliminated;
    }
    std::printf("%4d %14.4g %14.4g %12.4f %13.0f%%\n", n,
                with_sum / queries, without_sum / queries,
                ratio_sum / queries, 100.0 * eliminated / queries);
  }
  std::printf("\n(expected: ratio <= 1; elimination fires whenever pushed "
              "groupings turn G into a key of a duplicate-free result)\n");
  return 0;
}
