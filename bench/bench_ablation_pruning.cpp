// Ablation (DESIGN.md §5): which criteria of the dominance test (Def. 4)
// carry the optimality guarantee, and what each costs in DP-table size.
//
//   full-fd     — cost + cardinality + keys + FD closure (unweakened Def. 4)
//   keys        — cost + cardinality + keys (the paper's recommended
//                 weakening; the library default)
//   no-keys     — cost + cardinality
//   cost-only   — cost alone (classic Bellman pruning; NOT optimal here)

#include <cstdio>

#include "bench/bench_util.h"

using namespace eadp;

namespace {

struct Variant {
  const char* name;
  bool full_fds;
  bool without_keys;
  bool without_cardinality;
};

}  // namespace

int main(int argc, char** argv) {
  int queries = BenchQueries(argc, argv, 40);
  const Variant variants[] = {
      {"full-fd", true, false, false},
      {"keys", false, false, false},
      {"no-keys", false, true, false},
      {"cost-only", false, true, true},
  };
  constexpr int kNumVariants = 4;
  const int max_rels = 9;

  std::printf("Ablation: dominance-pruning criteria (%d queries/size)\n\n",
              queries);
  std::printf("%4s", "rels");
  for (const Variant& v : variants) {
    std::printf(" | %9s: plans    ms  subopt%%", v.name);
  }
  std::printf("\n");

  for (int n = 4; n <= max_rels; ++n) {
    double plans[kNumVariants] = {};
    double ms[kNumVariants] = {};
    int subopt[kNumVariants] = {};
    for (int i = 0; i < queries; ++i) {
      Query q = BenchQuery(n, static_cast<uint64_t>(n) * 500000 + i);
      double best = -1;
      for (int v = 0; v < kNumVariants; ++v) {
        OptimizerOptions options;
        options.algorithm = Algorithm::kEaPrune;
        options.full_fd_dominance = variants[v].full_fds;
        options.prune_without_keys = variants[v].without_keys;
        options.prune_without_cardinality = variants[v].without_cardinality;
        OptimizeResult r = Optimize(q, options);
        // "keys" (the library default) is the optimality reference.
        if (v == 1) best = r.plan->cost;
        plans[v] += static_cast<double>(r.stats.table_plans);
        ms[v] += r.stats.optimize_ms;
        if (best > 0 && r.plan->cost > best * (1 + 1e-9)) ++subopt[v];
      }
      // Recheck variant 0 against the reference computed at v == 1.
      OptimizerOptions fd;
      fd.algorithm = Algorithm::kEaPrune;
      fd.full_fd_dominance = true;
      if (Optimize(q, fd).plan->cost > best * (1 + 1e-9)) ++subopt[0];
    }
    std::printf("%4d", n);
    for (int v = 0; v < kNumVariants; ++v) {
      std::printf(" | %16.1f %6.3f %7.1f%%", plans[v] / queries,
                  ms[v] / queries, 100.0 * subopt[v] / queries);
    }
    std::printf("\n");
  }
  std::printf(
      "\n(expected: full-fd and keys keep optimality — subopt%% = 0 — with "
      "full-fd retaining slightly more plans; cost-only prunes hardest and "
      "loses optimality)\n");
  return 0;
}
