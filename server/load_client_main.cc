// load_client: seeded Zipf traffic against a plan server.
//
//   load_client --port P [--host H] [--connections N] [--queries N]
//               [--shapes N] [--theta F] [--seed N] [--no-verify]
//   load_client --port P --replay '<corpus line>'
//
// Load mode prints the LoadReport JSON and exits 0 when every exchange
// succeeded AND every served cost matched its local reference. Replay
// mode plans one corpus-entry line in a throwaway session and prints the
// server's stats JSON — the scripts/fuzz.sh bridge.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "server/load_client.h"

int main(int argc, char** argv) {
  eadp::LoadOptions options;
  std::string replay_line;
  bool replay = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--host") {
      options.host = next();
    } else if (arg == "--port") {
      options.port = std::atoi(next());
    } else if (arg == "--connections") {
      options.connections = std::atoi(next());
    } else if (arg == "--queries") {
      options.queries_per_connection = std::atoi(next());
    } else if (arg == "--shapes") {
      options.shapes = std::atoi(next());
    } else if (arg == "--theta") {
      options.zipf_theta = std::atof(next());
    } else if (arg == "--seed") {
      options.seed = static_cast<uint64_t>(std::atoll(next()));
    } else if (arg == "--no-verify") {
      options.verify_costs = false;
    } else if (arg == "--replay") {
      replay = true;
      replay_line = next();
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }
  if (options.port <= 0) {
    std::fprintf(stderr, "--port is required\n");
    return 2;
  }

  if (replay) {
    return eadp::RunReplay(options.host, options.port, replay_line) ? 0 : 1;
  }

  bool ok = false;
  eadp::LoadReport report = eadp::RunLoad(options, &ok);
  std::printf("%s\n", report.ToJson().c_str());
  return (ok && report.errors == 0 && report.cost_mismatches == 0) ? 0 : 1;
}
