// plan_server: stand-alone optimizer daemon.
//
//   plan_server [--host H] [--port P] [--pool-threads N]
//               [--max-inflight N] [--cache-capacity N]
//               [--persistent-dir DIR] [--drift-tolerance F]
//               [--replan-threads N]
//
// Prints "listening on <port>" once ready (port 0 binds ephemerally — the
// line is how scripts learn the kernel's pick) and serves until a client
// sends kShutdown or the process is killed.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "server/optimizer_service.h"
#include "server/plan_server.h"

int main(int argc, char** argv) {
  eadp::ServiceOptions service_options;
  eadp::PlanServerOptions server_options;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--host") {
      server_options.host = next();
    } else if (arg == "--port") {
      server_options.port = std::atoi(next());
    } else if (arg == "--pool-threads") {
      service_options.pool_threads = std::atoi(next());
    } else if (arg == "--max-inflight") {
      service_options.max_inflight = std::atoi(next());
    } else if (arg == "--cache-capacity") {
      service_options.cache_capacity =
          static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--persistent-dir") {
      service_options.persistent_dir = next();
    } else if (arg == "--drift-tolerance") {
      service_options.drift_tolerance = std::atof(next());
    } else if (arg == "--replan-threads") {
      service_options.replan_threads = std::atoi(next());
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  eadp::OptimizerService service(service_options);
  eadp::PlanServer server(&service, server_options);
  std::string error;
  if (!server.Listen(&error)) {
    std::fprintf(stderr, "listen failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("listening on %d\n", server.port());
  std::fflush(stdout);
  server.Serve();
  server.Shutdown();
  return 0;
}
