// The planning server's wire protocol: length-prefixed binary frames over
// TCP (ROADMAP item 1; DESIGN.md §15).
//
// Frame layout (all fixed-width integers little-endian, matching
// common/binio.h):
//
//   [u32 len][u8 opcode][u32 crc][payload]
//
// `len` counts everything after itself (opcode + crc + payload, so len >=
// 5); `crc` is the CRC-32 of the payload bytes (the zlib polynomial binio
// uses for every durable artifact — a flipped bit on the wire is rejected,
// never decoded). Frames are bounded by kMaxFrameBytes: an oversized
// header cannot be resynchronized past (the stream offset of the next
// frame is untrusted), so the connection closes after an error reply;
// every other malformed frame (bad CRC, unknown opcode, short payload) is
// answered with an error frame and the connection keeps serving — pinned
// by server_test's hostile-frame battery and the fuzz sweep.
//
// Payload encodings reuse the binio idioms end to end: length-prefixed
// strings, varints/zigzag for counts and knobs, F64 bit patterns for
// statistics. Queries travel as the fuzzer's replayable corpus-entry lines
// ("gen <topology> <n> <preset> <seed> : <op>:<subseed>...", see
// queries/mutation.h) — the same (seed, chain) reproducer format
// scripts/fuzz.sh emits, which is what lets production request logs feed
// the fuzz corpus and fuzz reproducers replay against a live server
// (ROADMAP item 5). Plans travel as plangen/plan_serde blobs, bit-identical
// to what an in-process caller would encode.
//
// The codec is exposed at two levels: buffer-level Append/DecodeFrame
// (pure functions over byte strings — what the frame fuzz sweep drives)
// and fd-level Read/WriteFrame for the server and client loops.

#ifndef EADP_SERVER_PROTOCOL_H_
#define EADP_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/binio.h"
#include "plangen/plangen.h"

namespace eadp {

/// Hard ceiling on one frame (len field), requests and responses alike.
/// Plan blobs for the largest generator workloads are tens of kilobytes;
/// 8 MiB leaves two orders of magnitude of headroom while bounding what a
/// hostile length prefix can make the server allocate.
inline constexpr size_t kMaxFrameBytes = 8u << 20;

/// Bytes of frame overhead after the length prefix: opcode + payload CRC.
inline constexpr size_t kFrameHeaderBytes = 1 + 4;

// ---------------------------------------------------------------------------
// Opcodes and error codes.
// ---------------------------------------------------------------------------

/// Request opcodes (client -> server). Responses set the high bit.
enum class Opcode : uint8_t {
  // Requests.
  kOpenSession = 0x01,   ///< LP name + knobs block -> kOk
  kSetStats = 0x02,      ///< LP name + LP spec + varint rel + F64 card -> kOk
  kOptimize = 0x03,      ///< LP name + LP spec -> kPlanBlob, kStatsJson
  kOptimizeBatch = 0x04, ///< LP name + varint n + n×LP spec
                         ///<   -> n×(kPlanBlob, kStatsJson), kBatchDone
  kInvalidateCache = 0x05,  ///< (empty) -> kOk; drops the shared L1
  kStats = 0x06,         ///< LP name (may be empty) -> kStatsJson
  kCloseSession = 0x07,  ///< LP name -> kOk
  kShutdown = 0x08,      ///< (empty) -> kOk, then the server loop stops

  // Responses.
  kOk = 0x81,        ///< empty payload
  kError = 0x82,     ///< u8 ErrorCode + LP message
  kPlanBlob = 0x83,  ///< raw EncodePlan bytes
  kStatsJson = 0x84, ///< UTF-8 JSON document
  kBatchDone = 0x85, ///< varint count of streamed (blob, stats) pairs
};

bool IsRequestOpcode(uint8_t op);

enum class ErrorCode : uint8_t {
  kNone = 0,
  kMalformedFrame = 1,  ///< frame shorter than the header
  kBadOpcode = 2,
  kBadCrc = 3,
  kOversized = 4,       ///< len > max; the connection closes after this
  kBackpressure = 5,    ///< admission queue full — retry later
  kNoSuchSession = 6,
  kSessionExists = 7,
  kBadRequest = 8,      ///< payload undecodable or semantically invalid
  kPlanFailed = 9,      ///< optimizer produced no plan
  kShuttingDown = 10,
};

const char* ErrorCodeName(ErrorCode code);

// ---------------------------------------------------------------------------
// Buffer-level codec (pure; fuzz-sweepable).
// ---------------------------------------------------------------------------

struct Frame {
  uint8_t opcode = 0;
  std::string payload;
};

enum class DecodeStatus {
  kOk,        ///< one frame decoded; *consumed advanced past it
  kNeedMore,  ///< buffer holds a frame prefix; read more bytes
  kTooShort,  ///< len < header size — frame skipped, stream still in sync
  kBadCrc,    ///< payload checksum mismatch — frame skipped, stream in sync
  kOversized, ///< len > max_frame — stream offset untrusted, close the
              ///< connection after the error reply
};

/// Appends one encoded frame to `out`.
void AppendFrame(std::string* out, Opcode opcode, std::string_view payload);

/// Decodes the first frame of `buf`. On kOk fills `*frame`; on every
/// status except kNeedMore/kOversized sets `*consumed` to the bytes to
/// drop from the buffer (the whole malformed frame for kTooShort/kBadCrc,
/// so the caller can reply with an error and keep decoding the stream).
/// kNeedMore and kOversized set *consumed = 0. Never reads past
/// buf.size(); total-function over arbitrary bytes (fuzz-swept).
DecodeStatus DecodeFrame(std::string_view buf, size_t max_frame_bytes,
                         Frame* frame, size_t* consumed);

// ---------------------------------------------------------------------------
// Payload encodings.
// ---------------------------------------------------------------------------

/// Knobs block: versioned so a server can refuse a skewed client cleanly.
/// Encodes every PlannerKnobs field (the plan-identity half of the
/// configuration; execution context never crosses the wire — it is the
/// server's own).
void AppendKnobs(std::string* out, const PlannerKnobs& knobs);

/// Decodes a knobs block; false on version skew, truncation, or
/// out-of-range enum values. On failure `*knobs` is untouched.
bool ReadKnobs(BinReader* r, PlannerKnobs* knobs);

struct OpenSessionRequest {
  std::string session;
  PlannerKnobs knobs;
};

struct SetStatsRequest {
  std::string session;
  std::string spec_line;  ///< corpus-entry line naming the query
  uint32_t relation = 0;  ///< relation index within the query
  double cardinality = 0;
};

struct OptimizeRequest {
  std::string session;
  std::string spec_line;
};

struct OptimizeBatchRequest {
  std::string session;
  std::vector<std::string> spec_lines;
};

struct ErrorResponse {
  ErrorCode code = ErrorCode::kNone;
  std::string message;
};

std::string EncodeOpenSession(const OpenSessionRequest& req);
bool DecodeOpenSession(std::string_view payload, OpenSessionRequest* req);

std::string EncodeSetStats(const SetStatsRequest& req);
bool DecodeSetStats(std::string_view payload, SetStatsRequest* req);

std::string EncodeOptimize(const OptimizeRequest& req);
bool DecodeOptimize(std::string_view payload, OptimizeRequest* req);

std::string EncodeOptimizeBatch(const OptimizeBatchRequest& req);
bool DecodeOptimizeBatch(std::string_view payload, OptimizeBatchRequest* req);

std::string EncodeError(ErrorCode code, std::string_view message);
bool DecodeError(std::string_view payload, ErrorResponse* out);

// ---------------------------------------------------------------------------
// fd-level framing (blocking sockets).
// ---------------------------------------------------------------------------

enum class ReadStatus {
  kOk,
  kEof,       ///< clean close between frames
  kTorn,      ///< connection died mid-frame
  kOversized, ///< length prefix exceeded max_frame_bytes
};

/// Reads one frame from `fd` (blocking until a whole frame, EOF, or an
/// error). A frame failing CRC or shorter than its header is returned
/// with status kOk and `*decode` set accordingly — transport succeeded,
/// the *frame* is bad, and the caller decides the reply.
ReadStatus ReadFrame(int fd, size_t max_frame_bytes, Frame* frame,
                     DecodeStatus* decode);

/// Writes one frame; false when the peer is gone (EPIPE etc.).
bool WriteFrame(int fd, Opcode opcode, std::string_view payload);

}  // namespace eadp

#endif  // EADP_SERVER_PROTOCOL_H_
