// Client side of the plan-server protocol: a blocking TCP connection with
// typed RPC helpers over the server/protocol.h frames.
//
// One ClientConnection is one protocol stream; helpers run one
// request/response exchange each and surface server-side failures as the
// decoded ErrorResponse (transport failures return false with
// error.code == kNone). The raw Send/SendRaw/Recv layer stays public so
// the hostile-frame tests and the fuzz sweep can speak malformed bytes
// through the same socket plumbing the well-behaved helpers use.

#ifndef EADP_SERVER_CLIENT_H_
#define EADP_SERVER_CLIENT_H_

#include <memory>
#include <string>
#include <string_view>

#include "plangen/plangen.h"
#include "server/protocol.h"

namespace eadp {

class ClientConnection {
 public:
  /// Connects to host:port; null with *error set on failure.
  static std::unique_ptr<ClientConnection> Connect(const std::string& host,
                                                   int port,
                                                   std::string* error);
  ~ClientConnection();

  ClientConnection(const ClientConnection&) = delete;
  ClientConnection& operator=(const ClientConnection&) = delete;

  // ---- Frame layer (hostile-input tests drive this directly) ----

  bool Send(Opcode opcode, std::string_view payload);
  /// Ships arbitrary bytes verbatim — torn frames, bad CRCs, garbage.
  bool SendRaw(std::string_view bytes);
  ReadStatus Recv(Frame* frame, DecodeStatus* decode);

  // ---- RPC helpers (one exchange each) ----
  // True on the expected success reply; false with *err filled from the
  // server's error frame (or err->code == kNone on a transport failure).

  bool OpenSession(const std::string& name, const PlannerKnobs& knobs,
                   ErrorResponse* err);
  bool CloseSession(const std::string& name, ErrorResponse* err);
  bool SetStats(const SetStatsRequest& req, ErrorResponse* err);
  /// On success fills the decoded plan (`*result`) and the server's stats
  /// JSON; either out-param may be null.
  bool Optimize(const std::string& session, const std::string& spec_line,
                OptimizeResult* result, std::string* stats_json,
                ErrorResponse* err);
  bool InvalidateCache(ErrorResponse* err);
  bool StatsJson(const std::string& session, std::string* json,
                 ErrorResponse* err);
  /// kShutdown: kOk reply, then the server stops serving.
  bool Shutdown(ErrorResponse* err);

  int fd() const { return fd_; }

 private:
  explicit ClientConnection(int fd) : fd_(fd) {}

  /// Sends `opcode`+`payload`, reads one reply frame, dispatches: the
  /// expected opcode returns true with the payload in *reply; an error
  /// frame decodes into *err and returns false.
  bool Roundtrip(Opcode opcode, std::string_view payload, Opcode expected,
                 std::string* reply, ErrorResponse* err);

  int fd_ = -1;
};

}  // namespace eadp

#endif  // EADP_SERVER_CLIENT_H_
