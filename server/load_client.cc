#include "server/load_client.h"

#include <algorithm>
#include <barrier>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "queries/mutation.h"
#include "server/client.h"

namespace eadp {

namespace {

using Clock = std::chrono::steady_clock;

double MsBetween(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

double Percentile(std::vector<double>* values, double p) {
  if (values->empty()) return 0;
  std::sort(values->begin(), values->end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(values->size()));
  if (idx >= values->size()) idx = values->size() - 1;
  return (*values)[idx];
}

/// Inverse-CDF Zipf(theta) over ranks [0, n): rank 0 is the hottest.
class ZipfPicker {
 public:
  ZipfPicker(int n, double theta) : cdf_(static_cast<size_t>(n)) {
    double total = 0;
    for (int k = 0; k < n; ++k) {
      total += 1.0 / std::pow(static_cast<double>(k + 1), theta);
      cdf_[static_cast<size_t>(k)] = total;
    }
    for (double& c : cdf_) c /= total;
  }

  int Pick(Rng* rng) const {
    double u = rng->UniformDouble();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end()) --it;
    return static_cast<int>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

bool ParseCacheHit(const std::string& stats_json) {
  return stats_json.find("\"cache_hit\":true") != std::string::npos;
}

struct ConnOutcome {
  uint64_t queries = 0;
  uint64_t hits = 0;
  uint64_t errors = 0;
  uint64_t cost_mismatches = 0;
  std::vector<double> latencies_ms;
};

}  // namespace

std::string LoadSpecLine(int conn, int shape) {
  CorpusEntry entry;
  entry.seed.kind = "gen";
  entry.seed.preset = "default";
  // bench_plan_cache's mix: mostly small random trees with a chain-16 and
  // a star-24 salted into every 8 shapes; seeds disjoint per connection
  // so cross-session serves are detectable by cost mismatch.
  if (shape % 8 == 7) {
    bool chain = (shape / 8) % 2 == 0;
    entry.seed.topology =
        chain ? QueryTopology::kChain : QueryTopology::kStar;
    entry.seed.num_relations = chain ? 16 : 24;
  } else {
    entry.seed.topology = QueryTopology::kRandomTree;
    entry.seed.num_relations = 5 + shape % 6;
  }
  entry.seed.seed = 5000 + 1000 * static_cast<uint64_t>(conn) +
                    static_cast<uint64_t>(shape);
  return FormatCorpusEntry(entry);
}

LoadReport RunLoad(const LoadOptions& options, bool* ok) {
  const int conns = std::max(1, options.connections);
  std::vector<ConnOutcome> outcomes(static_cast<size_t>(conns));
  std::vector<std::thread> threads;
  std::atomic<int> connect_failures{0};
  // Main thread participates: t0 is taken when every connection has
  // finished its cold pass, so wall/qps cover only the warm phase.
  std::barrier sync(conns + 1);

  for (int c = 0; c < conns; ++c) {
    threads.emplace_back([&, c] {
      ConnOutcome& out = outcomes[static_cast<size_t>(c)];
      std::string error;
      auto conn = ClientConnection::Connect(options.host, options.port,
                                            &error);
      bool usable = conn != nullptr;
      if (!usable) connect_failures.fetch_add(1);

      // A session left over from a previous run against the same server
      // (bench_server reps) is fine: same name, same deterministic knobs
      // and working set, so kSessionExists is idempotent success.
      const std::string session = "s" + std::to_string(c);
      ErrorResponse err;
      if (usable && !conn->OpenSession(session, options.knobs, &err) &&
          err.code != ErrorCode::kSessionExists) {
        ++out.errors;
        usable = false;
      }

      std::vector<std::string> lines;
      lines.reserve(static_cast<size_t>(options.shapes));
      for (int s = 0; s < options.shapes; ++s) {
        lines.push_back(LoadSpecLine(c, s));
      }

      // Cold pass: fill the cache and pin served costs against a local
      // uncached reference run of the identical spec line.
      if (usable) {
        for (const std::string& line : lines) {
          OptimizeResult served;
          std::string stats_json;
          if (!conn->Optimize(session, line, &served, &stats_json, &err)) {
            ++out.errors;
            continue;
          }
          if (options.verify_costs) {
            CorpusEntry entry;
            std::string perr;
            if (!ParseCorpusEntry(line, &entry, &perr)) {
              ++out.errors;
              continue;
            }
            Query query = MaterializeSeed(entry.seed);
            OptimizerOptions local;
            static_cast<PlannerKnobs&>(local) = options.knobs;
            OptimizeResult reference =
                OptimizeAdaptiveUncached(query, local);
            bool match =
                (served.plan == nullptr) == (reference.plan == nullptr) &&
                (served.plan == nullptr ||
                 served.plan->cost == reference.plan->cost);
            if (!match) ++out.cost_mismatches;
          }
        }
      }

      sync.arrive_and_wait();

      // Warm pass: Zipf-popular repeats, measured per query.
      if (usable) {
        Rng rng(options.seed + static_cast<uint64_t>(c));
        ZipfPicker zipf(options.shapes, options.zipf_theta);
        out.latencies_ms.reserve(
            static_cast<size_t>(options.queries_per_connection));
        for (int q = 0; q < options.queries_per_connection; ++q) {
          const std::string& line =
              lines[static_cast<size_t>(zipf.Pick(&rng))];
          std::string stats_json;
          Clock::time_point t0 = Clock::now();
          if (!conn->Optimize(session, line, nullptr, &stats_json, &err)) {
            ++out.errors;
            continue;
          }
          out.latencies_ms.push_back(MsBetween(t0, Clock::now()));
          ++out.queries;
          if (ParseCacheHit(stats_json)) ++out.hits;
        }
      }
    });
  }

  sync.arrive_and_wait();
  Clock::time_point warm_start = Clock::now();
  for (std::thread& t : threads) t.join();
  Clock::time_point warm_end = Clock::now();

  LoadReport report;
  report.connections = conns;
  std::vector<double> all_latencies;
  for (ConnOutcome& out : outcomes) {
    report.queries += out.queries;
    report.hits += out.hits;
    report.errors += out.errors;
    report.cost_mismatches += out.cost_mismatches;
    all_latencies.insert(all_latencies.end(), out.latencies_ms.begin(),
                         out.latencies_ms.end());
  }
  report.wall_ms = MsBetween(warm_start, warm_end);
  report.p50_ms = Percentile(&all_latencies, 0.50);
  report.p99_ms = Percentile(&all_latencies, 0.99);
  report.qps = report.wall_ms > 0
                   ? static_cast<double>(report.queries) /
                         (report.wall_ms / 1000.0)
                   : 0;
  report.hit_rate = report.queries > 0
                        ? static_cast<double>(report.hits) /
                              static_cast<double>(report.queries)
                        : 0;
  if (ok) *ok = connect_failures.load() == 0;
  return report;
}

std::string LoadReport::ToJson() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"connections\":%d,\"queries\":%llu,\"hits\":%llu,"
      "\"errors\":%llu,\"cost_mismatches\":%llu,\"p50_ms\":%.4f,"
      "\"p99_ms\":%.4f,\"qps\":%.1f,\"wall_ms\":%.2f,\"hit_rate\":%.4f}",
      connections, static_cast<unsigned long long>(queries),
      static_cast<unsigned long long>(hits),
      static_cast<unsigned long long>(errors),
      static_cast<unsigned long long>(cost_mismatches), p50_ms, p99_ms, qps,
      wall_ms, hit_rate);
  return buf;
}

bool RunReplay(const std::string& host, int port,
               const std::string& spec_line) {
  std::string error;
  auto conn = ClientConnection::Connect(host, port, &error);
  if (!conn) {
    std::fprintf(stderr, "replay: %s\n", error.c_str());
    return false;
  }
  ErrorResponse err;
  if (!conn->OpenSession("replay", PlannerKnobs{}, &err) &&
      err.code != ErrorCode::kSessionExists) {
    std::fprintf(stderr, "replay: open session failed: %s (%s)\n",
                 err.message.c_str(), ErrorCodeName(err.code));
    return false;
  }
  std::string stats_json;
  if (!conn->Optimize("replay", spec_line, nullptr, &stats_json, &err)) {
    std::fprintf(stderr, "replay: optimize failed: %s (%s)\n",
                 err.message.c_str(), ErrorCodeName(err.code));
    return false;
  }
  std::printf("%s\n", stats_json.c_str());
  return true;
}

}  // namespace eadp
