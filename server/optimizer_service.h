// OptimizerService: named planning sessions over process-wide shared
// context — the optimizer-as-a-service core (DESIGN.md §15).
//
// One service owns the expensive process-wide state exactly once: the
// tiered plan cache (memory L1, optional persistent L2), the planning
// thread pool requests execute on, and the optional background re-plan
// pool. Each named session layers the cheap per-client state on top: a
// PlannerSession binding the client's PlannerKnobs to the shared context,
// plus the session's own catalogs — queries are named by replayable
// corpus-entry lines (queries/mutation.h) and materialized lazily, so a
// SetStats call mutates one session's catalog without any other session
// observing it. Isolation across sessions is structural: the shared cache
// keys on (structural fingerprint + stats overlay + knobs), so two
// sessions only ever share an entry when their queries, statistics, and
// knobs all agree — which is exactly when sharing is correct
// (server_test pins that divergent stats never cross-serve).
//
// Admission control: TryAdmit/Release bound the planning work in flight
// across all connections (ServiceOptions::max_inflight). The transport
// (server/plan_server.h) admits before submitting to pool() and replies
// kBackpressure when the bound is hit — planning never queues unboundedly
// behind a flood of connections.
//
// Thread safety: all public methods are safe to call concurrently.
// Per-session calls serialize on the session's mutex (a SetStats can
// never race a concurrent Optimize of the same session); distinct
// sessions proceed in parallel, throttled only by admission and the pool.

#ifndef EADP_SERVER_OPTIMIZER_SERVICE_H_
#define EADP_SERVER_OPTIMIZER_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "algebra/query.h"
#include "common/thread_pool.h"
#include "plangen/persistent_cache.h"
#include "plangen/plan_cache.h"
#include "plangen/session.h"
#include "server/protocol.h"

namespace eadp {

struct ServiceOptions {
  /// Planning workers; transport handlers submit admitted requests here.
  int pool_threads = 4;
  /// Admission bound: planning requests in flight across all sessions.
  /// Excess requests are refused with kBackpressure, never queued.
  int max_inflight = 32;
  /// Shared memory-tier capacity (entries).
  size_t cache_capacity = 4096;
  /// When non-empty, opens a persistent second tier in this directory.
  std::string persistent_dir;
  /// Drift-band serving tolerance shared by every session (see
  /// PlannerContext::drift_tolerance).
  double drift_tolerance = 0;
  /// > 0 spawns a background re-plan pool of this many threads for
  /// out-of-tolerance drifted hits.
  int replan_threads = 0;
  /// Upper bound a spec line's num_relations is accepted at — the
  /// server-side lid on how much planning work one request can name.
  int max_relations = 100;
};

/// Outcome of a service call; `code == kNone` means success and the wire
/// layer forwards any other code verbatim as an error frame.
struct ServiceStatus {
  ErrorCode code = ErrorCode::kNone;
  std::string message;

  bool ok() const { return code == ErrorCode::kNone; }
  static ServiceStatus Ok() { return {}; }
  static ServiceStatus Error(ErrorCode c, std::string m) {
    return {c, std::move(m)};
  }
};

class OptimizerService {
 public:
  explicit OptimizerService(const ServiceOptions& options);
  ~OptimizerService();

  OptimizerService(const OptimizerService&) = delete;
  OptimizerService& operator=(const OptimizerService&) = delete;

  /// Creates a named session with the given knobs over the shared
  /// context. kSessionExists if the name is taken.
  ServiceStatus OpenSession(const std::string& name,
                            const PlannerKnobs& knobs);

  /// Drops a session and its materialized queries. The shared cache keeps
  /// any entries the session populated (they are keyed by content, not by
  /// session). kNoSuchSession if unknown.
  ServiceStatus CloseSession(const std::string& name);

  /// Overrides one relation's cardinality in the named session's
  /// materialization of `spec_line` (materializing it first if needed) and
  /// repairs the relation's attribute distinct counts to stay internally
  /// consistent (key attributes track the cardinality; non-key distincts
  /// are capped at it) — the ApplyStatsDrift repair rule. Only this
  /// session's catalog moves; the structural fingerprint is unchanged
  /// while the stats overlay drifts.
  ServiceStatus SetStats(const SetStatsRequest& req);

  /// Plans `spec_line` in the named session (materializing it first if
  /// needed), through the shared cache tiers. Runs on the calling thread —
  /// the transport is responsible for admission and for running this on
  /// pool(). kBadRequest on an unparsable/out-of-bounds line, kPlanFailed
  /// if planning throws.
  ServiceStatus Optimize(const std::string& session,
                         const std::string& spec_line, OptimizeResult* out);

  /// Drops every entry of the shared memory tier (persistent tier
  /// untouched — it is the durable record).
  void InvalidateCache();

  /// JSON introspection document. Empty `session` renders the global view
  /// (session count, in-flight, totals, CacheTierStatsToJson of the shared
  /// tiers); a session name renders that session's counters.
  ServiceStatus StatsJson(const std::string& session, std::string* out);

  // ---- Admission (used by the transport around pool() submission) ----

  /// Reserves one in-flight slot; false when max_inflight are taken (the
  /// caller replies kBackpressure and does NOT submit).
  bool TryAdmit();
  void Release();
  int inflight() const { return inflight_.load(std::memory_order_relaxed); }

  ThreadPool* pool() { return &pool_; }
  PlanCache* plan_cache() { return plan_cache_.get(); }
  PersistentPlanCache* persistent_cache() { return persistent_cache_.get(); }
  const ServiceOptions& options() const { return options_; }
  size_t session_count() const;

 private:
  struct SessionState {
    std::mutex mu;  ///< serializes all calls into this session
    PlannerSession planner;
    /// spec line -> materialized query (the session's catalogs live here;
    /// SetStats mutates these in place).
    std::unordered_map<std::string, Query> queries;
    uint64_t optimizes = 0;
    uint64_t cache_hits = 0;
    uint64_t stats_overrides = 0;
  };

  /// Registry lookup; null + status set when unknown.
  std::shared_ptr<SessionState> Find(const std::string& name,
                                     ServiceStatus* status) const;

  /// Parses, bounds, and materializes `spec_line` into `state->queries`
  /// (no-op if already present). Caller holds state->mu. Returns the
  /// resident query or null with *status set (kBadRequest).
  Query* MaterializeLocked(SessionState* state, const std::string& spec_line,
                           ServiceStatus* status);

  const ServiceOptions options_;

  // Caches are declared before the pools: pools are destroyed first, so a
  // background re-plan can never outlive the cache it refreshes.
  std::unique_ptr<PlanCache> plan_cache_;
  std::unique_ptr<PersistentPlanCache> persistent_cache_;  ///< may be null

  mutable std::mutex mu_;  ///< guards sessions_
  std::map<std::string, std::shared_ptr<SessionState>> sessions_;

  std::atomic<int> inflight_{0};
  std::atomic<uint64_t> total_optimizes_{0};
  std::atomic<uint64_t> total_rejected_{0};

  std::unique_ptr<ThreadPool> replan_pool_;  ///< may be null
  ThreadPool pool_;
};

}  // namespace eadp

#endif  // EADP_SERVER_OPTIMIZER_SERVICE_H_
