#include "server/plan_server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "plangen/plan_explain.h"
#include "plangen/plan_serde.h"

namespace eadp {

PlanServer::PlanServer(OptimizerService* service,
                       const PlanServerOptions& options)
    : service_(service), options_(options) {}

PlanServer::~PlanServer() { Shutdown(); }

bool PlanServer::Listen(std::string* error) {
  if (options_.adopted_listen_fd >= 0) {
    listen_fd_ = options_.adopted_listen_fd;
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      if (error) *error = "socket: " + std::string(strerror(errno));
      return false;
    }
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(options_.port));
    if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
      if (error) *error = "bad host: " + options_.host;
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 64) != 0) {
      if (error) *error = "bind/listen: " + std::string(strerror(errno));
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }
  return true;
}

void PlanServer::Serve() {
  while (!stop_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stop_.load(std::memory_order_acquire)) break;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // listener is gone; nothing left to accept
    }
    // Request/response framing with multi-frame replies: Nagle + delayed
    // ACK would add ~40ms to every exchange.
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (stop_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    conn_fds_.insert(fd);
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    handlers_.emplace_back([this, fd] { HandleConnection(fd); });
  }
}

bool PlanServer::Start(std::string* error) {
  if (!Listen(error)) return false;
  serve_thread_ = std::thread([this] { Serve(); });
  return true;
}

void PlanServer::RequestStop() {
  stop_.store(true, std::memory_order_release);
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
}

void PlanServer::Shutdown() {
  RequestStop();
  if (serve_thread_.joinable()) serve_thread_.join();
  std::vector<std::thread> handlers;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    handlers = std::move(handlers_);
    handlers_.clear();
  }
  for (std::thread& t : handlers) {
    if (t.joinable()) t.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

namespace {

bool WriteError(int fd, ErrorCode code, std::string_view message) {
  return WriteFrame(fd, Opcode::kError, EncodeError(code, message));
}

}  // namespace

int PlanServer::HandleOptimize(int fd, const std::string& session,
                               const std::string& spec_line) {
  if (!service_->TryAdmit()) {
    return WriteError(fd, ErrorCode::kBackpressure,
                      "planning in-flight bound reached, retry")
               ? 0
               : -1;
  }
  OptimizeResult result;
  ServiceStatus status;
  // The handler thread blocks on the pool future — admission already
  // bounded how many handlers can be here, so the pool queue is bounded
  // by max_inflight.
  auto future = service_->pool()->Submit(
      [&] { return service_->Optimize(session, spec_line, &result); });
  status = future.get();
  service_->Release();
  if (!status.ok()) {
    return WriteError(fd, status.code, status.message) ? 0 : -1;
  }
  if (!WriteFrame(fd, Opcode::kPlanBlob, EncodePlan(result))) return -1;
  return WriteFrame(fd, Opcode::kStatsJson,
                    OptimizeStatsToJson(result.stats))
             ? 1
             : -1;
}

void PlanServer::HandleConnection(int fd) {
  for (;;) {
    Frame frame;
    DecodeStatus decode = DecodeStatus::kOk;
    ReadStatus rs = ReadFrame(fd, options_.max_frame_bytes, &frame, &decode);
    if (rs == ReadStatus::kEof || rs == ReadStatus::kTorn) break;
    if (rs == ReadStatus::kOversized) {
      // The next frame's offset derives from the hostile length — the
      // stream cannot be resynchronized, so this connection is done.
      WriteError(fd, ErrorCode::kOversized, "frame exceeds size bound");
      break;
    }
    if (decode == DecodeStatus::kTooShort) {
      if (!WriteError(fd, ErrorCode::kMalformedFrame,
                      "frame shorter than header")) {
        break;
      }
      continue;
    }
    if (decode == DecodeStatus::kBadCrc) {
      if (!WriteError(fd, ErrorCode::kBadCrc, "payload checksum mismatch")) {
        break;
      }
      continue;
    }
    if (!IsRequestOpcode(frame.opcode)) {
      if (!WriteError(fd, ErrorCode::kBadOpcode,
                      "unknown opcode " + std::to_string(frame.opcode))) {
        break;
      }
      continue;
    }

    bool alive = true;
    switch (static_cast<Opcode>(frame.opcode)) {
      case Opcode::kOpenSession: {
        OpenSessionRequest req;
        if (!DecodeOpenSession(frame.payload, &req)) {
          alive = WriteError(fd, ErrorCode::kBadRequest,
                             "undecodable OpenSession payload");
          break;
        }
        ServiceStatus st = service_->OpenSession(req.session, req.knobs);
        alive = st.ok() ? WriteFrame(fd, Opcode::kOk, {})
                        : WriteError(fd, st.code, st.message);
        break;
      }
      case Opcode::kSetStats: {
        SetStatsRequest req;
        if (!DecodeSetStats(frame.payload, &req)) {
          alive = WriteError(fd, ErrorCode::kBadRequest,
                             "undecodable SetStats payload");
          break;
        }
        ServiceStatus st = service_->SetStats(req);
        alive = st.ok() ? WriteFrame(fd, Opcode::kOk, {})
                        : WriteError(fd, st.code, st.message);
        break;
      }
      case Opcode::kOptimize: {
        OptimizeRequest req;
        if (!DecodeOptimize(frame.payload, &req)) {
          alive = WriteError(fd, ErrorCode::kBadRequest,
                             "undecodable Optimize payload");
          break;
        }
        alive = HandleOptimize(fd, req.session, req.spec_line) >= 0;
        break;
      }
      case Opcode::kOptimizeBatch: {
        OptimizeBatchRequest req;
        if (!DecodeOptimizeBatch(frame.payload, &req)) {
          alive = WriteError(fd, ErrorCode::kBadRequest,
                             "undecodable OptimizeBatch payload");
          break;
        }
        uint64_t streamed = 0;
        for (const std::string& line : req.spec_lines) {
          int one = HandleOptimize(fd, req.session, line);
          if (one < 0) {
            alive = false;
            break;
          }
          streamed += static_cast<uint64_t>(one);
        }
        if (alive) {
          std::string payload;
          PutVarint64(&payload, streamed);
          alive = WriteFrame(fd, Opcode::kBatchDone, payload);
        }
        break;
      }
      case Opcode::kInvalidateCache: {
        service_->InvalidateCache();
        alive = WriteFrame(fd, Opcode::kOk, {});
        break;
      }
      case Opcode::kStats: {
        BinReader r(frame.payload);
        std::string name = r.ReadLengthPrefixed();
        if (!r.AtEnd()) {
          alive = WriteError(fd, ErrorCode::kBadRequest,
                             "undecodable Stats payload");
          break;
        }
        std::string json;
        ServiceStatus st = service_->StatsJson(name, &json);
        alive = st.ok() ? WriteFrame(fd, Opcode::kStatsJson, json)
                        : WriteError(fd, st.code, st.message);
        break;
      }
      case Opcode::kCloseSession: {
        BinReader r(frame.payload);
        std::string name = r.ReadLengthPrefixed();
        if (!r.AtEnd() || name.empty()) {
          alive = WriteError(fd, ErrorCode::kBadRequest,
                             "undecodable CloseSession payload");
          break;
        }
        ServiceStatus st = service_->CloseSession(name);
        alive = st.ok() ? WriteFrame(fd, Opcode::kOk, {})
                        : WriteError(fd, st.code, st.message);
        break;
      }
      case Opcode::kShutdown: {
        WriteFrame(fd, Opcode::kOk, {});
        RequestStop();  // wakes Serve(); never joins (we ARE a handler)
        alive = false;
        break;
      }
      default:
        alive = WriteError(fd, ErrorCode::kBadOpcode, "unhandled opcode");
        break;
    }
    if (!alive) break;
  }
  std::lock_guard<std::mutex> lock(conn_mu_);
  conn_fds_.erase(fd);
  ::close(fd);
}

}  // namespace eadp
