// PlanServer: the TCP daemon over OptimizerService (DESIGN.md §15).
//
// One blocking accept loop, one handler thread per connection, the frame
// protocol of server/protocol.h. The handler loop is deliberately dumb:
// decode a frame, dispatch to the service, write the reply — all policy
// (admission, session isolation, query materialization) lives in
// OptimizerService, so the transport is testable against hostile bytes
// without a planner in sight and the service is testable without sockets.
//
// Error containment, pinned by server_test's hostile-frame battery:
//   * a frame shorter than its header, failing its CRC, or carrying an
//     unknown opcode gets an error frame and the connection KEEPS serving
//     (the length prefix kept the stream in sync);
//   * an oversized length prefix gets an error frame and the connection
//     closes (the next frame's offset is untrusted);
//   * an undecodable request payload is kBadRequest, connection survives;
//   * planning requests admit against the service's in-flight bound
//     before touching the pool; refusal is kBackpressure, never a queue.
//
// Batch streaming: kOptimizeBatch answers with a (kPlanBlob, kStatsJson)
// pair per successfully planned line IN ORDER, a kError frame for a line
// that fails (the batch continues), and a final kBatchDone whose payload
// is the varint count of streamed pairs.
//
// Shutdown: a kShutdown frame replies kOk, stops the accept loop, and
// wakes every connection; Shutdown() does the same from the owning
// process. Both paths end with every handler joined, so destruction is
// deterministic. The listener can adopt a pre-bound fd
// (PlanServerOptions::adopted_listen_fd) — how the fork-based round-trip
// test hands a kernel-chosen port from parent to child.

#ifndef EADP_SERVER_PLAN_SERVER_H_
#define EADP_SERVER_PLAN_SERVER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "server/optimizer_service.h"
#include "server/protocol.h"

namespace eadp {

struct PlanServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read the outcome from port().
  int port = 0;
  size_t max_frame_bytes = kMaxFrameBytes;
  /// >= 0 adopts this already-bound, already-listening socket instead of
  /// binding host:port (ownership transfers; the server closes it).
  int adopted_listen_fd = -1;
};

class PlanServer {
 public:
  PlanServer(OptimizerService* service, const PlanServerOptions& options);
  /// Shutdown() + join everything.
  ~PlanServer();

  PlanServer(const PlanServer&) = delete;
  PlanServer& operator=(const PlanServer&) = delete;

  /// Binds + listens (or adopts the configured fd). False with *error set
  /// on failure. After success port() is the actual bound port.
  bool Listen(std::string* error);

  /// Accept loop on the calling thread; returns once shutdown was
  /// requested (by Shutdown() or a kShutdown frame) and the loop drained.
  /// Requires Listen() first.
  void Serve();

  /// Listen() + Serve() on a background thread. False on listen failure.
  bool Start(std::string* error);

  /// Stops accepting, wakes and joins every connection handler (and the
  /// Serve thread if Start() spawned one). Idempotent; safe from any
  /// thread except a connection handler.
  void Shutdown();

  int port() const { return port_; }
  uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }

 private:
  void HandleConnection(int fd);
  /// Flags stop and wakes the accept loop (handler-safe: joins nothing).
  void RequestStop();
  /// One planning request: admit -> run on the service pool -> stream
  /// blob + stats (or an error frame). Returns 1 for a streamed
  /// (blob, stats) pair, 0 for an error frame the peer accepted, -1 when
  /// the peer stopped reading (the connection ends).
  int HandleOptimize(int fd, const std::string& session,
                     const std::string& spec_line);

  OptimizerService* service_;
  PlanServerOptions options_;

  std::atomic<bool> stop_{false};
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread serve_thread_;  ///< set by Start()

  std::mutex conn_mu_;  ///< guards conn_fds_ and handlers_
  std::set<int> conn_fds_;
  std::vector<std::thread> handlers_;

  std::atomic<uint64_t> connections_accepted_{0};
};

}  // namespace eadp

#endif  // EADP_SERVER_PLAN_SERVER_H_
