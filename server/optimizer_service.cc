#include "server/optimizer_service.h"

#include <algorithm>
#include <utility>

#include "common/bitset.h"
#include "common/rng.h"
#include "queries/mutation.h"

namespace eadp {

OptimizerService::OptimizerService(const ServiceOptions& options)
    : options_(options),
      plan_cache_(std::make_unique<PlanCache>(PlanCacheOptions{
          .capacity = options.cache_capacity > 0 ? options.cache_capacity
                                                 : size_t{1},
      })),
      pool_(options.pool_threads) {
  if (!options_.persistent_dir.empty()) {
    PersistentCacheOptions pc;
    pc.directory = options_.persistent_dir;
    // A service that cannot open its disk tier still serves from memory —
    // degraded, not dead (the tier is a cache, not the source of truth).
    persistent_cache_ = PersistentPlanCache::Open(pc);
  }
  if (options_.replan_threads > 0) {
    replan_pool_ = std::make_unique<ThreadPool>(options_.replan_threads);
  }
}

OptimizerService::~OptimizerService() = default;

ServiceStatus OptimizerService::OpenSession(const std::string& name,
                                            const PlannerKnobs& knobs) {
  auto state = std::make_shared<SessionState>();
  PlannerContext context;
  context.plan_cache = plan_cache_.get();
  context.persistent_cache = persistent_cache_.get();
  context.drift_tolerance = options_.drift_tolerance;
  context.replan_pool = replan_pool_.get();
  // dp_pool stays null: the request pool runs whole optimizations, and
  // nesting DP workers onto it could deadlock a full pool against itself.
  // dp_threads > 1 sessions spin transient pools per run instead.
  state->planner = PlannerSession(knobs, context);

  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = sessions_.emplace(name, std::move(state));
  (void)it;
  if (!inserted) {
    return ServiceStatus::Error(ErrorCode::kSessionExists,
                                "session already open: " + name);
  }
  return ServiceStatus::Ok();
}

ServiceStatus OptimizerService::CloseSession(const std::string& name) {
  std::shared_ptr<SessionState> victim;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(name);
    if (it == sessions_.end()) {
      return ServiceStatus::Error(ErrorCode::kNoSuchSession,
                                  "no such session: " + name);
    }
    victim = std::move(it->second);
    sessions_.erase(it);
  }
  // An in-flight Optimize may still hold the state via its shared_ptr;
  // the state dies when the last holder releases it.
  std::lock_guard<std::mutex> lock(victim->mu);
  return ServiceStatus::Ok();
}

std::shared_ptr<OptimizerService::SessionState> OptimizerService::Find(
    const std::string& name, ServiceStatus* status) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(name);
  if (it == sessions_.end()) {
    *status = ServiceStatus::Error(ErrorCode::kNoSuchSession,
                                   "no such session: " + name);
    return nullptr;
  }
  return it->second;
}

Query* OptimizerService::MaterializeLocked(SessionState* state,
                                           const std::string& spec_line,
                                           ServiceStatus* status) {
  auto it = state->queries.find(spec_line);
  if (it != state->queries.end()) return &it->second;

  CorpusEntry entry;
  std::string error;
  if (!ParseCorpusEntry(spec_line, &entry, &error)) {
    *status = ServiceStatus::Error(
        ErrorCode::kBadRequest,
        error.empty() ? "blank/comment line is not a query" : error);
    return nullptr;
  }
  if (entry.seed.kind == "gen" &&
      (entry.seed.num_relations < 2 ||
       entry.seed.num_relations > options_.max_relations)) {
    *status = ServiceStatus::Error(
        ErrorCode::kBadRequest,
        "num_relations out of bounds: " +
            std::to_string(entry.seed.num_relations));
    return nullptr;
  }

  Query query = MaterializeSeed(entry.seed);
  if (!entry.chain.empty()) {
    QuerySpec spec = QuerySpec::FromQuery(query);
    // Deliberately NOT MutationEngine::Replay: that contract aborts on a
    // non-applying step (its chains come from Step() and always apply),
    // while a wire client can send any chain — a bad one must be an error
    // frame, not a dead server.
    for (const MutationStep& step : entry.chain) {
      Rng rng(step.seed);
      if (!ApplyMutation(step.op, &spec, &rng)) {
        *status = ServiceStatus::Error(
            ErrorCode::kBadRequest,
            std::string("mutation step does not apply: ") +
                MutationOpName(step.op) + ":" + std::to_string(step.seed));
        return nullptr;
      }
    }
    query = spec.ToQuery();
  }
  auto [ins, inserted] = state->queries.emplace(spec_line, std::move(query));
  (void)inserted;
  return &ins->second;
}

ServiceStatus OptimizerService::SetStats(const SetStatsRequest& req) {
  ServiceStatus status;
  std::shared_ptr<SessionState> state = Find(req.session, &status);
  if (!state) return status;

  std::lock_guard<std::mutex> lock(state->mu);
  Query* query = MaterializeLocked(state.get(), req.spec_line, &status);
  if (!query) return status;

  Catalog* catalog = query->mutable_catalog();
  if (static_cast<int>(req.relation) >= catalog->num_relations()) {
    return ServiceStatus::Error(
        ErrorCode::kBadRequest,
        "relation index out of range: " + std::to_string(req.relation));
  }
  int r = static_cast<int>(req.relation);
  double card = std::max(1.0, std::floor(req.cardinality));
  const RelationDef& rel = catalog->relation(r);
  // The ApplyStatsDrift repair rule: key attributes track the new
  // cardinality exactly, non-key distincts are capped at it.
  AttrSet key_attrs;
  for (const AttrSet& key : rel.keys) key_attrs.UnionWith(key);
  catalog->SetCardinality(r, card);
  for (int a : BitsOf(rel.attributes)) {
    double distinct = key_attrs.Contains(a)
                          ? card
                          : std::min(catalog->DistinctOf(a), card);
    catalog->SetDistinct(a, distinct);
  }
  ++state->stats_overrides;
  return ServiceStatus::Ok();
}

ServiceStatus OptimizerService::Optimize(const std::string& session,
                                         const std::string& spec_line,
                                         OptimizeResult* out) {
  ServiceStatus status;
  std::shared_ptr<SessionState> state = Find(session, &status);
  if (!state) return status;

  std::lock_guard<std::mutex> lock(state->mu);
  Query* query = MaterializeLocked(state.get(), spec_line, &status);
  if (!query) return status;

  try {
    *out = state->planner.Optimize(*query);
  } catch (const std::exception& e) {
    return ServiceStatus::Error(ErrorCode::kPlanFailed, e.what());
  }
  ++state->optimizes;
  if (out->stats.cache_hit) ++state->cache_hits;
  total_optimizes_.fetch_add(1, std::memory_order_relaxed);
  return ServiceStatus::Ok();
}

void OptimizerService::InvalidateCache() { plan_cache_->Invalidate(); }

namespace {

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out->push_back(' ');
    } else {
      out->push_back(c);
    }
  }
  out->push_back('"');
}

}  // namespace

ServiceStatus OptimizerService::StatsJson(const std::string& session,
                                          std::string* out) {
  if (session.empty()) {
    std::string json = "{\"sessions\":" + std::to_string(session_count()) +
                       ",\"inflight\":" + std::to_string(inflight()) +
                       ",\"optimizes\":" +
                       std::to_string(
                           total_optimizes_.load(std::memory_order_relaxed)) +
                       ",\"rejected\":" +
                       std::to_string(
                           total_rejected_.load(std::memory_order_relaxed)) +
                       ",\"cache\":" +
                       CacheTierStatsToJson(plan_cache_.get(),
                                            persistent_cache_.get()) +
                       "}";
    *out = std::move(json);
    return ServiceStatus::Ok();
  }
  ServiceStatus status;
  std::shared_ptr<SessionState> state = Find(session, &status);
  if (!state) return status;
  std::lock_guard<std::mutex> lock(state->mu);
  std::string json = "{\"session\":";
  AppendJsonString(&json, session);
  json += ",\"optimizes\":" + std::to_string(state->optimizes) +
          ",\"cache_hits\":" + std::to_string(state->cache_hits) +
          ",\"stats_overrides\":" + std::to_string(state->stats_overrides) +
          ",\"queries_materialized\":" +
          std::to_string(state->queries.size()) + "}";
  *out = std::move(json);
  return ServiceStatus::Ok();
}

bool OptimizerService::TryAdmit() {
  int cur = inflight_.load(std::memory_order_relaxed);
  while (cur < options_.max_inflight) {
    if (inflight_.compare_exchange_weak(cur, cur + 1,
                                        std::memory_order_acq_rel)) {
      return true;
    }
  }
  total_rejected_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void OptimizerService::Release() {
  inflight_.fetch_sub(1, std::memory_order_acq_rel);
}

size_t OptimizerService::session_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

}  // namespace eadp
