#include "server/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "plangen/plan_serde.h"

namespace eadp {

std::unique_ptr<ClientConnection> ClientConnection::Connect(
    const std::string& host, int port, std::string* error) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error) *error = "socket: " + std::string(strerror(errno));
    return nullptr;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error) *error = "bad host: " + host;
    ::close(fd);
    return nullptr;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error) *error = "connect: " + std::string(strerror(errno));
    ::close(fd);
    return nullptr;
  }
  // The workload is strict request/response; Nagle only adds latency.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<ClientConnection>(new ClientConnection(fd));
}

ClientConnection::~ClientConnection() {
  if (fd_ >= 0) ::close(fd_);
}

bool ClientConnection::Send(Opcode opcode, std::string_view payload) {
  return WriteFrame(fd_, opcode, payload);
}

bool ClientConnection::SendRaw(std::string_view bytes) {
  size_t put = 0;
  while (put < bytes.size()) {
    ssize_t w =
        ::send(fd_, bytes.data() + put, bytes.size() - put, MSG_NOSIGNAL);
    if (w > 0) {
      put += static_cast<size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

ReadStatus ClientConnection::Recv(Frame* frame, DecodeStatus* decode) {
  return ReadFrame(fd_, kMaxFrameBytes, frame, decode);
}

bool ClientConnection::Roundtrip(Opcode opcode, std::string_view payload,
                                 Opcode expected, std::string* reply,
                                 ErrorResponse* err) {
  *err = ErrorResponse{};
  if (!Send(opcode, payload)) return false;
  Frame frame;
  DecodeStatus decode = DecodeStatus::kOk;
  if (Recv(&frame, &decode) != ReadStatus::kOk ||
      decode != DecodeStatus::kOk) {
    return false;
  }
  if (frame.opcode == static_cast<uint8_t>(Opcode::kError)) {
    DecodeError(frame.payload, err);
    return false;
  }
  if (frame.opcode != static_cast<uint8_t>(expected)) return false;
  if (reply) *reply = std::move(frame.payload);
  return true;
}

bool ClientConnection::OpenSession(const std::string& name,
                                   const PlannerKnobs& knobs,
                                   ErrorResponse* err) {
  OpenSessionRequest req{name, knobs};
  return Roundtrip(Opcode::kOpenSession, EncodeOpenSession(req), Opcode::kOk,
                   nullptr, err);
}

bool ClientConnection::CloseSession(const std::string& name,
                                    ErrorResponse* err) {
  std::string payload;
  PutLengthPrefixed(&payload, name);
  return Roundtrip(Opcode::kCloseSession, payload, Opcode::kOk, nullptr,
                   err);
}

bool ClientConnection::SetStats(const SetStatsRequest& req,
                                ErrorResponse* err) {
  return Roundtrip(Opcode::kSetStats, EncodeSetStats(req), Opcode::kOk,
                   nullptr, err);
}

bool ClientConnection::Optimize(const std::string& session,
                                const std::string& spec_line,
                                OptimizeResult* result,
                                std::string* stats_json, ErrorResponse* err) {
  OptimizeRequest req{session, spec_line};
  std::string blob;
  if (!Roundtrip(Opcode::kOptimize, EncodeOptimize(req), Opcode::kPlanBlob,
                 &blob, err)) {
    return false;
  }
  // The stats frame follows the blob unconditionally on the success path.
  Frame frame;
  DecodeStatus decode = DecodeStatus::kOk;
  if (Recv(&frame, &decode) != ReadStatus::kOk ||
      decode != DecodeStatus::kOk ||
      frame.opcode != static_cast<uint8_t>(Opcode::kStatsJson)) {
    return false;
  }
  if (stats_json) *stats_json = std::move(frame.payload);
  if (result && !DecodePlan(blob, result)) return false;
  return true;
}

bool ClientConnection::InvalidateCache(ErrorResponse* err) {
  return Roundtrip(Opcode::kInvalidateCache, {}, Opcode::kOk, nullptr, err);
}

bool ClientConnection::StatsJson(const std::string& session,
                                 std::string* json, ErrorResponse* err) {
  std::string payload;
  PutLengthPrefixed(&payload, session);
  return Roundtrip(Opcode::kStats, payload, Opcode::kStatsJson, json, err);
}

bool ClientConnection::Shutdown(ErrorResponse* err) {
  return Roundtrip(Opcode::kShutdown, {}, Opcode::kOk, nullptr, err);
}

}  // namespace eadp
