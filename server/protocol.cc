#include "server/protocol.h"

#include <errno.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace eadp {

bool IsRequestOpcode(uint8_t op) {
  return op >= static_cast<uint8_t>(Opcode::kOpenSession) &&
         op <= static_cast<uint8_t>(Opcode::kShutdown);
}

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kNone:
      return "none";
    case ErrorCode::kMalformedFrame:
      return "malformed-frame";
    case ErrorCode::kBadOpcode:
      return "bad-opcode";
    case ErrorCode::kBadCrc:
      return "bad-crc";
    case ErrorCode::kOversized:
      return "oversized";
    case ErrorCode::kBackpressure:
      return "backpressure";
    case ErrorCode::kNoSuchSession:
      return "no-such-session";
    case ErrorCode::kSessionExists:
      return "session-exists";
    case ErrorCode::kBadRequest:
      return "bad-request";
    case ErrorCode::kPlanFailed:
      return "plan-failed";
    case ErrorCode::kShuttingDown:
      return "shutting-down";
  }
  return "?";
}

void AppendFrame(std::string* out, Opcode opcode, std::string_view payload) {
  PutFixed32(out, static_cast<uint32_t>(kFrameHeaderBytes + payload.size()));
  out->push_back(static_cast<char>(opcode));
  PutFixed32(out, Crc32(payload));
  out->append(payload.data(), payload.size());
}

DecodeStatus DecodeFrame(std::string_view buf, size_t max_frame_bytes,
                         Frame* frame, size_t* consumed) {
  *consumed = 0;
  if (buf.size() < 4) return DecodeStatus::kNeedMore;
  uint32_t len;
  std::memcpy(&len, buf.data(), 4);
  if (len > max_frame_bytes) return DecodeStatus::kOversized;
  if (buf.size() < 4 + static_cast<size_t>(len)) return DecodeStatus::kNeedMore;
  if (len < kFrameHeaderBytes) {
    // The stream stays in sync (we know where the next frame starts);
    // only this frame is unusable.
    *consumed = 4 + len;
    return DecodeStatus::kTooShort;
  }
  std::string_view body = buf.substr(4, len);
  uint32_t crc;
  std::memcpy(&crc, body.data() + 1, 4);
  std::string_view payload = body.substr(kFrameHeaderBytes);
  *consumed = 4 + len;
  if (Crc32(payload) != crc) return DecodeStatus::kBadCrc;
  frame->opcode = static_cast<uint8_t>(body[0]);
  frame->payload.assign(payload.data(), payload.size());
  return DecodeStatus::kOk;
}

// ---------------------------------------------------------------------------
// Payload encodings.
// ---------------------------------------------------------------------------

namespace {

/// Version byte of the knobs block; bump on any layout change so skewed
/// clients are refused cleanly instead of mis-parsed.
constexpr uint8_t kKnobsVersion = 1;

constexpr uint8_t kMaxAlgorithm = static_cast<uint8_t>(Algorithm::kIdp);

bool ReadAlgorithm(BinReader* r, Algorithm* out) {
  uint8_t v = r->ReadU8();
  if (r->failed() || v > kMaxAlgorithm) return false;
  *out = static_cast<Algorithm>(v);
  return true;
}

bool ReadBool(BinReader* r, bool* out) {
  uint8_t v = r->ReadU8();
  if (r->failed() || v > 1) return false;
  *out = v != 0;
  return true;
}

bool ReadI32(BinReader* r, int* out) {
  int64_t v = r->ReadZigzag();
  if (r->failed() || v < INT32_MIN || v > INT32_MAX) return false;
  *out = static_cast<int>(v);
  return true;
}

}  // namespace

void AppendKnobs(std::string* out, const PlannerKnobs& knobs) {
  out->push_back(static_cast<char>(kKnobsVersion));
  out->push_back(static_cast<char>(knobs.algorithm));
  PutF64(out, knobs.h2_tolerance);
  out->push_back(knobs.builder.top_grouping_elimination ? 1 : 0);
  out->push_back(knobs.builder.track_fds ? 1 : 0);
  out->push_back(knobs.prune_without_keys ? 1 : 0);
  out->push_back(knobs.prune_without_cardinality ? 1 : 0);
  out->push_back(knobs.full_fd_dominance ? 1 : 0);
  PutZigzag(out, knobs.adaptive_exact_relations);
  PutZigzag(out, knobs.idp_block_size);
  out->push_back(static_cast<char>(knobs.idp_inner));
  PutZigzag(out, knobs.goo_merge_budget);
  PutZigzag(out, knobs.dp_threads);
}

bool ReadKnobs(BinReader* r, PlannerKnobs* knobs) {
  if (r->ReadU8() != kKnobsVersion || r->failed()) return false;
  PlannerKnobs k;
  double h2 = 0;
  if (!ReadAlgorithm(r, &k.algorithm)) return false;
  h2 = r->ReadF64();
  // Reject NaN/inf tolerances: they would poison cost comparisons.
  if (r->failed() || !(h2 > 0) || !(h2 < 1e9)) return false;
  k.h2_tolerance = h2;
  if (!ReadBool(r, &k.builder.top_grouping_elimination) ||
      !ReadBool(r, &k.builder.track_fds) ||
      !ReadBool(r, &k.prune_without_keys) ||
      !ReadBool(r, &k.prune_without_cardinality) ||
      !ReadBool(r, &k.full_fd_dominance) ||
      !ReadI32(r, &k.adaptive_exact_relations) ||
      !ReadI32(r, &k.idp_block_size)) {
    return false;
  }
  if (!ReadAlgorithm(r, &k.idp_inner) || !IsExhaustive(k.idp_inner)) {
    return false;
  }
  if (!ReadI32(r, &k.goo_merge_budget) || !ReadI32(r, &k.dp_threads)) {
    return false;
  }
  // Bound the planning-effort knobs to sane server-side ranges: a hostile
  // client must not be able to request unbounded exact DP or worker fleets.
  if (k.adaptive_exact_relations < 1 || k.adaptive_exact_relations > 16 ||
      k.idp_block_size < 2 || k.idp_block_size > 8 || k.dp_threads < 1 ||
      k.dp_threads > 64 || k.goo_merge_budget < -1) {
    return false;
  }
  *knobs = k;
  return true;
}

std::string EncodeOpenSession(const OpenSessionRequest& req) {
  std::string out;
  PutLengthPrefixed(&out, req.session);
  AppendKnobs(&out, req.knobs);
  return out;
}

bool DecodeOpenSession(std::string_view payload, OpenSessionRequest* req) {
  BinReader r(payload);
  OpenSessionRequest parsed;
  parsed.session = r.ReadLengthPrefixed();
  if (r.failed() || parsed.session.empty() || parsed.session.size() > 256) {
    return false;
  }
  if (!ReadKnobs(&r, &parsed.knobs) || !r.AtEnd()) return false;
  *req = std::move(parsed);
  return true;
}

std::string EncodeSetStats(const SetStatsRequest& req) {
  std::string out;
  PutLengthPrefixed(&out, req.session);
  PutLengthPrefixed(&out, req.spec_line);
  PutVarint32(&out, req.relation);
  PutF64(&out, req.cardinality);
  return out;
}

bool DecodeSetStats(std::string_view payload, SetStatsRequest* req) {
  BinReader r(payload);
  SetStatsRequest parsed;
  parsed.session = r.ReadLengthPrefixed();
  parsed.spec_line = r.ReadLengthPrefixed();
  parsed.relation = r.ReadVarint32();
  parsed.cardinality = r.ReadF64();
  if (!r.AtEnd() || parsed.session.empty() || parsed.spec_line.empty()) {
    return false;
  }
  if (!(parsed.cardinality >= 1) || !(parsed.cardinality < 1e15)) {
    return false;  // finite, positive — the catalog invariant
  }
  *req = std::move(parsed);
  return true;
}

std::string EncodeOptimize(const OptimizeRequest& req) {
  std::string out;
  PutLengthPrefixed(&out, req.session);
  PutLengthPrefixed(&out, req.spec_line);
  return out;
}

bool DecodeOptimize(std::string_view payload, OptimizeRequest* req) {
  BinReader r(payload);
  OptimizeRequest parsed;
  parsed.session = r.ReadLengthPrefixed();
  parsed.spec_line = r.ReadLengthPrefixed();
  if (!r.AtEnd() || parsed.session.empty() || parsed.spec_line.empty()) {
    return false;
  }
  *req = std::move(parsed);
  return true;
}

std::string EncodeOptimizeBatch(const OptimizeBatchRequest& req) {
  std::string out;
  PutLengthPrefixed(&out, req.session);
  PutVarint64(&out, req.spec_lines.size());
  for (const std::string& line : req.spec_lines) {
    PutLengthPrefixed(&out, line);
  }
  return out;
}

bool DecodeOptimizeBatch(std::string_view payload,
                         OptimizeBatchRequest* req) {
  BinReader r(payload);
  OptimizeBatchRequest parsed;
  parsed.session = r.ReadLengthPrefixed();
  uint64_t n = r.ReadVarint64();
  // Count bound: each line costs at least one length byte, so any count
  // beyond the payload size is a lie; 4096 bounds the honest case.
  if (r.failed() || parsed.session.empty() || n > 4096 || n > r.remaining()) {
    return false;
  }
  parsed.spec_lines.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    parsed.spec_lines.push_back(r.ReadLengthPrefixed());
    if (r.failed() || parsed.spec_lines.back().empty()) return false;
  }
  if (!r.AtEnd()) return false;
  *req = std::move(parsed);
  return true;
}

std::string EncodeError(ErrorCode code, std::string_view message) {
  std::string out;
  out.push_back(static_cast<char>(code));
  PutLengthPrefixed(&out, message);
  return out;
}

bool DecodeError(std::string_view payload, ErrorResponse* out) {
  BinReader r(payload);
  uint8_t code = r.ReadU8();
  std::string message = r.ReadLengthPrefixed();
  if (!r.AtEnd() || code > static_cast<uint8_t>(ErrorCode::kShuttingDown)) {
    return false;
  }
  out->code = static_cast<ErrorCode>(code);
  out->message = std::move(message);
  return true;
}

// ---------------------------------------------------------------------------
// fd-level framing.
// ---------------------------------------------------------------------------

namespace {

/// Reads exactly `n` bytes; 0 = ok, 1 = clean EOF before any byte,
/// -1 = error or EOF mid-read.
int ReadFull(int fd, char* dst, size_t n) {
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::read(fd, dst + got, n - got);
    if (r > 0) {
      got += static_cast<size_t>(r);
      continue;
    }
    if (r == 0) return got == 0 ? 1 : -1;
    if (errno == EINTR) continue;
    return -1;
  }
  return 0;
}

bool WriteAll(int fd, const char* src, size_t n) {
  size_t put = 0;
  while (put < n) {
    // MSG_NOSIGNAL: a peer that closed mid-reply must surface as EPIPE,
    // not kill the server with SIGPIPE.
    ssize_t w = ::send(fd, src + put, n - put, MSG_NOSIGNAL);
    if (w > 0) {
      put += static_cast<size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace

ReadStatus ReadFrame(int fd, size_t max_frame_bytes, Frame* frame,
                     DecodeStatus* decode) {
  char len_buf[4];
  int r = ReadFull(fd, len_buf, 4);
  if (r == 1) return ReadStatus::kEof;
  if (r != 0) return ReadStatus::kTorn;
  uint32_t len;
  std::memcpy(&len, len_buf, 4);
  if (len > max_frame_bytes) return ReadStatus::kOversized;
  std::string body(len, '\0');
  if (len > 0 && ReadFull(fd, body.data(), len) != 0) {
    return ReadStatus::kTorn;
  }
  if (len < kFrameHeaderBytes) {
    *decode = DecodeStatus::kTooShort;
    return ReadStatus::kOk;
  }
  uint32_t crc;
  std::memcpy(&crc, body.data() + 1, 4);
  std::string_view payload(body.data() + kFrameHeaderBytes,
                           body.size() - kFrameHeaderBytes);
  if (Crc32(payload) != crc) {
    *decode = DecodeStatus::kBadCrc;
    return ReadStatus::kOk;
  }
  frame->opcode = static_cast<uint8_t>(body[0]);
  frame->payload.assign(payload.data(), payload.size());
  *decode = DecodeStatus::kOk;
  return ReadStatus::kOk;
}

bool WriteFrame(int fd, Opcode opcode, std::string_view payload) {
  std::string buf;
  buf.reserve(4 + kFrameHeaderBytes + payload.size());
  AppendFrame(&buf, opcode, payload);
  return WriteAll(fd, buf.data(), buf.size());
}

}  // namespace eadp
