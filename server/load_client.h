// Seeded Zipf load generator against a live plan server.
//
// N connections, each its own session (named "s<i>") over its own shape
// working set — shape seeds are disjoint across connections (seed
// 5000 + 1000*conn + shape), so any cross-session cache serve would show
// up as a plan for a query the session never asked about. The generator
// verifies exactly that: every served blob is decoded and its root cost
// compared bit-for-bit against a local uncached OptimizeAdaptive run of
// the same spec line under the same knobs; `cost_mismatches` stays 0 on a
// correct server (acceptance-gated in bench_server).
//
// The shape mix mirrors bench_plan_cache so the warm hit-rate numbers are
// comparable tier for tier: mostly small random trees (5–10 relations)
// with a chain-16 and a star-24 salted in every 8 shapes, popularity
// Zipf(theta)-distributed over the shapes. Each connection runs one cold
// pass (every shape once — cache fill + cost verification) and then the
// measured warm pass; reported latency/throughput covers only the warm
// pass, with all connections driving concurrently between two barriers.

#ifndef EADP_SERVER_LOAD_CLIENT_H_
#define EADP_SERVER_LOAD_CLIENT_H_

#include <cstdint>
#include <string>

#include "plangen/plangen.h"

namespace eadp {

struct LoadOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  int connections = 8;
  /// Warm-pass queries per connection.
  int queries_per_connection = 500;
  /// Shapes per connection's working set.
  int shapes = 64;
  double zipf_theta = 1.0;
  uint64_t seed = 42;
  PlannerKnobs knobs;
  /// Re-plan every shape locally (uncached) and compare served costs
  /// bit-for-bit. Costs one local optimization per shape per connection.
  bool verify_costs = true;
};

struct LoadReport {
  int connections = 0;
  uint64_t queries = 0;     ///< warm-pass queries completed
  uint64_t hits = 0;        ///< warm-pass serves with stats cache_hit
  uint64_t errors = 0;      ///< failed exchanges (any pass)
  uint64_t cost_mismatches = 0;  ///< served cost != local reference cost
  double p50_ms = 0;        ///< warm-pass per-query latency percentiles
  double p99_ms = 0;
  double qps = 0;           ///< aggregate warm-pass throughput
  double wall_ms = 0;       ///< warm-pass wall clock
  double hit_rate = 0;      ///< hits / queries

  std::string ToJson() const;
};

/// Runs the full load shape described above. `ok` is false when setup
/// failed outright (no connection could be established).
LoadReport RunLoad(const LoadOptions& options, bool* ok = nullptr);

/// One-shot replay: opens a throwaway session, plans `spec_line` once,
/// prints the server's stats JSON to stdout. The scripts/fuzz.sh bridge —
/// a fuzz reproducer line replays against a live server unchanged.
/// Returns false on connection/protocol/plan failure.
bool RunReplay(const std::string& host, int port,
               const std::string& spec_line);

/// The deterministic spec line connection `conn` uses for `shape` (shared
/// with bench_server and the isolation tests).
std::string LoadSpecLine(int conn, int shape);

}  // namespace eadp

#endif  // EADP_SERVER_LOAD_CLIENT_H_
