// Large-query demo: optimize seeded 50- and 100-relation queries with the
// large-query strategies and the adaptive facade.
//
//   $ ./large_query [n]
//
// Exhaustive DPhyp enumeration is hopeless at this scale (a 100-clique has
// ~3^100 csg-cmp-pairs); the large-query subsystem plans such queries in
// milliseconds. The demo prints, per topology: the cost and time of GOO
// (greedy operator ordering), IDP (iterative DP), the unoptimized original
// tree, and what OptimizeAdaptive chose — plus the plan_validator verdict
// for every produced plan.

#include <cstdio>
#include <cstdlib>

#include "plangen/large_query.h"
#include "plangen/plan_validator.h"
#include "plangen/plangen.h"
#include "queries/query_generator.h"

using namespace eadp;

int main(int argc, char** argv) {
  int n = argc > 1 ? std::atoi(argv[1]) : 100;
  if (n < 2 || n > 100) {
    std::fprintf(stderr, "usage: %s [relations (2..100)]\n", argv[0]);
    return 1;
  }

  for (QueryTopology t : {QueryTopology::kChain, QueryTopology::kStar,
                          QueryTopology::kCycle, QueryTopology::kClique}) {
    GeneratorOptions gen;
    gen.topology = t;
    gen.num_relations = n;
    Query query = GenerateRandomQuery(gen, /*seed=*/1);
    std::printf("== %s, n=%d ==\n", TopologyName(t), n);

    auto report = [&](const char* label, const OptimizeResult& r) {
      if (r.plan == nullptr) {
        std::printf("  %-9s no plan\n", label);
        return;
      }
      size_t violations = ValidatePlan(r.plan, query).size();
      std::printf(
          "  %-9s cost=%-12.6g %8.2f ms  %6llu cuts  groupings pushed=%d  "
          "validator: %s\n",
          label, r.plan->cost, r.stats.optimize_ms,
          static_cast<unsigned long long>(r.stats.ccp_count),
          r.plan->PushedGroupingCount(), violations == 0 ? "ok" : "VIOLATED");
    };

    OptimizerOptions options;
    options.algorithm = Algorithm::kGoo;
    report("GOO", Optimize(query, options));
    options.algorithm = Algorithm::kIdp;
    report("IDP", Optimize(query, options));
    report("original", OptimizeOriginal(query, OptimizerOptions{}));

    OptimizeResult adaptive = OptimizeAdaptive(query, OptimizerOptions{});
    std::printf("  adaptive picked %s:\n", AlgorithmName(adaptive.stats.algorithm));
    report("", adaptive);
  }
  return 0;
}
