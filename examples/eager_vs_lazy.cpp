// Walks through the paper's Fig. 11 / Table 1 example: why Bellman's
// principle of optimality fails once grouping placement enters the search
// space, and why H1's local decision misses the optimum.

#include <cstdio>

#include "exec/operators.h"
#include "plangen/plangen.h"

using namespace eadp;

namespace {

Value I(int64_t v) { return Value::Int(v); }

void Show(const char* title, const Table& t) {
  std::printf("%s (%zu rows):\n%s\n", title, t.NumRows(),
              t.ToString().c_str());
}

}  // namespace

int main() {
  // The three relations of Fig. 11.
  Table r0({"R0.a", "R0.b"});
  r0.AddRow({I(0), I(0)});
  r0.AddRow({I(1), I(0)});
  r0.AddRow({I(2), I(1)});
  r0.AddRow({I(3), I(1)});
  Table r1({"R1.c", "R1.d"});
  r1.AddRow({I(0), I(1)});
  r1.AddRow({I(1), I(0)});
  r1.AddRow({I(2), I(1)});
  r1.AddRow({I(3), I(1)});
  r1.AddRow({I(4), I(4)});
  Table r2({"R2.e", "R2.f"});
  r2.AddRow({I(0), I(0)});
  r2.AddRow({I(1), I(1)});
  r2.AddRow({I(2), I(3)});
  r2.AddRow({I(3), I(4)});

  ExecPredicate p_de = {{"R1.d", "R2.e", CmpOp::kEq}};
  ExecPredicate p_af = {{"R0.a", "R2.f", CmpOp::kEq}};

  std::printf("==== Lazy plan: Γ_{R1.d}(R0 ⋈ (R1 ⋈ R2)) ====\n\n");
  Table e12 = InnerJoin(r1, r2, p_de);
  Show("R1 ⋈ R2", e12);
  Table e012 = InnerJoin(r0, e12, p_af);
  Show("R0 ⋈ (R1 ⋈ R2)", e012);
  Table lazy = GroupBy(e012, {"R1.d"},
                       {ExecAggregate::Simple("d'", AggKind::kCountStar)});
  Show("Γ_{R1.d; d':count(*)}", lazy);
  double lazy_cost = static_cast<double>(e12.NumRows() + e012.NumRows() +
                                         lazy.NumRows());
  std::printf("C_out = %zu + %zu + %zu = %.0f   (Table 1: 10)\n\n",
              e12.NumRows(), e012.NumRows(), lazy.NumRows(), lazy_cost);

  std::printf("==== Eager plan: grouping pushed into R1 ====\n\n");
  Table r1g = GroupBy(r1, {"R1.d"},
                      {ExecAggregate::Simple("d'", AggKind::kCountStar)});
  Show("Γ_{R1.d; d':count(*)}(R1)", r1g);
  Table e12e = InnerJoin(r1g, r2, p_de);
  Show("Γ(R1) ⋈ R2", e12e);
  Table e012e = InnerJoin(r0, e12e, p_af);
  Show("R0 ⋈ (Γ(R1) ⋈ R2)", e012e);
  Table eager = GroupBy(e012e, {"R1.d"},
                        {ExecAggregate::Simple("d''", AggKind::kSum, "d'")});
  Show("Γ_{R1.d; d'':sum(d')}", eager);
  std::printf("C_out with final grouping    = 3 + 2 + 2 + 2 = 9\n");
  std::printf("C_out with Eqv. 42 projection = 3 + 2 + 2     = 7\n");
  std::printf("(R1.d is a key of the last join result, so the grouping "
              "degenerates to a projection)\n\n");

  std::printf("==== What the plan generators do ====\n\n");
  Catalog catalog;
  int rel0 = catalog.AddRelation("R0", 4);
  int a = catalog.AddAttribute(rel0, "R0.a", 4);
  int rel1 = catalog.AddRelation("R1", 5);
  int d = catalog.AddAttribute(rel1, "R1.d", 3);
  int rel2 = catalog.AddRelation("R2", 4);
  int e = catalog.AddAttribute(rel2, "R2.e", 4);
  int f = catalog.AddAttribute(rel2, "R2.f", 4);
  catalog.DeclareKey(rel0, AttrSet::Single(a));
  catalog.DeclareKey(rel2, AttrSet::Single(e));

  JoinPredicate pred_de;
  pred_de.AddEquality(d, e);
  auto lower = OpTreeNode::Binary(OpKind::kJoin, OpTreeNode::Leaf(rel1),
                                  OpTreeNode::Leaf(rel2), pred_de, 0.2);
  JoinPredicate pred_af;
  pred_af.AddEquality(a, f);
  auto root = OpTreeNode::Binary(OpKind::kJoin, OpTreeNode::Leaf(rel0),
                                 std::move(lower), pred_af, 0.25);
  AttrSet g;
  g.Add(d);
  AggregateVector aggs(1);
  aggs[0].output = "d'";
  aggs[0].kind = AggKind::kCountStar;
  Query query = Query::FromTree(std::move(catalog), std::move(root), g,
                                std::move(aggs));

  for (Algorithm alg : {Algorithm::kEaPrune, Algorithm::kH1, Algorithm::kH2}) {
    OptimizerOptions options;
    options.algorithm = alg;
    options.h2_tolerance = 1.5;
    OptimizeResult r = Optimize(query, options);
    std::printf("%-8s -> cost %.4g, pushed groupings: %d\n",
                AlgorithmName(alg), r.plan->cost,
                r.plan->PushedGroupingCount());
  }
  std::printf("\nH1 keeps only the locally cheapest tree per class — the\n"
              "eager subplan (grouping 3 + join 2.4 = 5.4 > 4) is discarded\n"
              "even though it wins globally: Bellman's principle does not\n"
              "hold for grouping placement (paper Sec. 4.4).\n");
  return 0;
}
