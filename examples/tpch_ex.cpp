// The paper's introduction example (Sec. 1): a full outerjoin between
// (nation ⋈ supplier) and (nation ⋈ customer), grouped by the two nation
// names. Reorderings of grouping with outer joins were previously unknown,
// so classic optimizers leave the grouping on top; this library pushes it
// below the outerjoin on both sides.
//
// The example optimizes the query with and without eager aggregation,
// executes both plans on generated TPC-H-like data, and reports the
// runtime gap (the paper measured 2140 ms vs 1.51 ms on HyPer).

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "plangen/plangen.h"
#include "queries/tpch.h"

using namespace eadp;

namespace {

double TimeMs(const PlanPtr& plan, const Query& query, const Database& db,
              size_t* out_rows) {
  auto start = std::chrono::steady_clock::now();
  Table result = ExecutePlan(plan, query, db);
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  *out_rows = result.NumRows();
  return ms;
}

}  // namespace

int main(int argc, char** argv) {
  int scale = argc > 1 ? std::atoi(argv[1]) : 8;

  Query query = MakeTpchEx();
  std::printf("TPC-H example query (paper Sec. 1):\n%s\n",
              query.ToString().c_str());

  OptimizerOptions options;
  options.algorithm = Algorithm::kDphyp;
  OptimizeResult lazy = Optimize(query, options);
  options.algorithm = Algorithm::kEaPrune;
  OptimizeResult eager = Optimize(query, options);

  std::printf("baseline plan (DPhyp, no eager aggregation), C_out=%.4g:\n%s\n",
              lazy.plan->cost, lazy.plan->ToString(query.catalog()).c_str());
  std::printf("eager plan (EA-Prune), C_out=%.4g:\n%s\n", eager.plan->cost,
              eager.plan->ToString(query.catalog()).c_str());
  std::printf("estimated cost ratio: %.1fx\n\n",
              lazy.plan->cost / eager.plan->cost);

  Database db = MakeExDatabase(query, scale, /*seed=*/1);
  std::printf("executing on mini TPC-H data (scale %d: %zu suppliers, %zu "
              "customers)...\n",
              scale, db.tables[1].NumRows(), db.tables[3].NumRows());

  size_t rows_lazy = 0;
  size_t rows_eager = 0;
  double ms_lazy = TimeMs(lazy.plan, query, db, &rows_lazy);
  double ms_eager = TimeMs(eager.plan, query, db, &rows_eager);

  Table reference = ExecuteCanonical(query, db);
  ExecutionStats lazy_stats;
  ExecutionStats eager_stats;
  Table lazy_result = ExecutePlan(lazy.plan, query, db, &lazy_stats);
  Table eager_result = ExecutePlan(eager.plan, query, db, &eager_stats);
  bool ok = Table::BagEquals(lazy_result, reference) &&
            Table::BagEquals(eager_result, reference);

  std::printf("  baseline execution: %8.2f ms (%zu rows)\n", ms_lazy,
              rows_lazy);
  std::printf("  eager execution:    %8.2f ms (%zu rows)\n", ms_eager,
              rows_eager);
  std::printf("  speedup:            %8.1fx\n", ms_lazy / ms_eager);
  std::printf("  results identical:  %s\n", ok ? "yes" : "NO (bug!)");

  std::printf("\nper-operator actual rows (eager plan):\n");
  for (const auto& n : eager_stats.nodes) {
    std::printf("  %-60s %10zu rows\n", n.label.c_str(), n.actual);
  }
  std::printf("actual C_out: eager %.0f vs baseline %.0f (%.0fx)\n",
              eager_stats.ActualCout(), lazy_stats.ActualCout(),
              lazy_stats.ActualCout() /
                  std::max(1.0, eager_stats.ActualCout()));
  std::printf("\n(the paper reports 2140 ms vs 1.51 ms on HyPer at SF 1 — "
              "the shape, a grouping-induced orders-of-magnitude gap, "
              "reproduces here)\n");
  return ok ? 0 : 1;
}
