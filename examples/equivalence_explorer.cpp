// Walks through the paper's Fig. 4: Eqv. 10 (inner join) and Eqv. 12
// (full outerjoin with defaults), printing every intermediate relation of
// the worked example.

#include <cstdio>

#include "exec/operators.h"

using namespace eadp;

namespace {

Value I(int64_t v) { return Value::Int(v); }

void Show(const char* title, const Table& t) {
  std::printf("%s:\n%s\n", title, t.ToString().c_str());
}

}  // namespace

int main() {
  // e1 and e2 of Fig. 4, including the rows "below the line" used by the
  // full outerjoin example.
  Table e1({"g1", "j1", "a1"});
  e1.AddRow({I(1), I(1), I(2)});
  e1.AddRow({I(1), I(2), I(4)});
  e1.AddRow({I(1), I(2), I(8)});
  Table e1x = e1;
  e1x.AddRow({I(2), I(7), I(16)});  // extra row without join partner

  Table e2({"g2", "j2", "a2"});
  e2.AddRow({I(1), I(1), I(2)});
  e2.AddRow({I(1), I(1), I(4)});
  e2.AddRow({I(1), I(2), I(8)});
  Table e2x = e2;
  e2x.AddRow({I(3), I(9), I(32)});

  ExecPredicate pred = {{"j1", "j2", CmpOp::kEq}};
  std::vector<ExecAggregate> lazy_f = {
      ExecAggregate::Simple("c", AggKind::kCountStar),
      ExecAggregate::Simple("b1", AggKind::kSum, "a1"),
      ExecAggregate::Simple("b2", AggKind::kSum, "a2")};

  std::printf("================ Eqv. 10: inner join ================\n\n");
  Show("e1", e1);
  Show("e2", e2);
  Table e3 = InnerJoin(e1, e2, pred);
  Show("e3 = e1 ⋈_{j1=j2} e2", e3);
  Show("e5 = Γ_{g1,g2;F}(e3)   [lazy: the left-hand side]",
       GroupBy(e3, {"g1", "g2"}, lazy_f));

  Table e4 = GroupBy(e1, {"g1", "j1"},
                     {ExecAggregate::Simple("c1", AggKind::kCountStar),
                      ExecAggregate::Simple("b1p", AggKind::kSum, "a1")});
  Show("e4 = Γ_{g1,j1; c1:count(*), b1':sum(a1)}(e1)   [eager inner]", e4);
  Table e6 = InnerJoin(e4, e2, pred);
  Show("e6 = e4 ⋈_{j1=j2} e2", e6);
  ExecAggregate b2;
  b2.output = "b2";
  b2.kind = AggKind::kSum;
  b2.arg = "a2";
  b2.multipliers = {"c1"};  // F2 ⊗ c1 = sum(c1 * a2)
  Table e7 = GroupBy(e6, {"g1", "g2"},
                     {ExecAggregate::Simple("c", AggKind::kSum, "c1"),
                      ExecAggregate::Simple("b1", AggKind::kSum, "b1p"), b2});
  Show("e7 = Γ_{g1,g2; c:sum(c1), b1:sum(b1'), b2:sum(c1*a2)}(e6)", e7);
  std::printf("e5 == e7: the eager side reproduces the lazy result.\n\n");

  std::printf("============ Eqv. 12: full outerjoin with defaults "
              "============\n\n");
  Show("e1 (with extra row)", e1x);
  Show("e2 (with extra row)", e2x);
  Table k = FullOuterJoin(e1x, e2x, pred);
  Show("e3' = e1 ⟗_{j1=j2} e2", k);
  Show("e5' = Γ_{g1,g2;F}(e3')", GroupBy(k, {"g1", "g2"}, lazy_f));

  Table e4x = GroupBy(e1x, {"g1", "j1"},
                      {ExecAggregate::Simple("c1", AggKind::kCountStar),
                       ExecAggregate::Simple("b1p", AggKind::kSum, "a1")});
  Show("e4' = Γ_{g1,j1; F11∘c1}(e1)", e4x);
  // Defaults for left-side columns on right-orphan rows: c1 := 1,
  // b1' := F11({⊥}) = NULL (Eqv. 12).
  DefaultVector left_defaults = {{"c1", I(1)}};
  Table e6x = FullOuterJoin(e4x, e2x, pred, left_defaults, DefaultVector{});
  Show("e6' = e4' ⟗^{F11({⊥}),c1:1;-}_{j1=j2} e2   [note c1=1 on the "
       "orphan row]",
       e6x);
  Table e7x = GroupBy(e6x, {"g1", "g2"},
                      {ExecAggregate::Simple("c", AggKind::kSum, "c1"),
                       ExecAggregate::Simple("b1", AggKind::kSum, "b1p"), b2});
  Show("e7' = Γ_{g1,g2; (F2⊗c1)∘F21}(e6')", e7x);
  std::printf("e5' == e7': without the default c1:=1 the orphan right row "
              "would be lost from count and b2.\n");
  return 0;
}
