// Renders the optimized plans of the TPC-H skeleton queries as Graphviz
// dot (written to stdout, one digraph per query) together with a JSON
// summary — fodder for documentation and visual inspection:
//
//   ./plan_gallery | csplit - '/^digraph/' '{*}'   # split into .dot files

#include <cstdio>

#include "plangen/plan_explain.h"
#include "plangen/plangen.h"
#include "queries/tpch.h"

using namespace eadp;

namespace {

void Show(const char* name, const Query& query) {
  OptimizerOptions options;
  options.algorithm = Algorithm::kEaPrune;
  OptimizeResult ea = Optimize(query, options);
  options.algorithm = Algorithm::kDphyp;
  OptimizeResult baseline = Optimize(query, options);

  std::printf("// ===== %s: EA-Prune plan (C_out=%.4g, %d pushed groupings; "
              "baseline C_out=%.4g)\n",
              name, ea.plan->cost, ea.plan->PushedGroupingCount(),
              baseline.plan->cost);
  std::printf("%s\n", PlanToDot(ea.plan, query.catalog()).c_str());
  std::printf("// JSON: %s\n\n", PlanToJson(ea.plan, query.catalog()).c_str());
}

}  // namespace

int main() {
  Show("Ex", MakeTpchEx());
  Show("Q1", MakeTpchQ1());
  Show("Q3", MakeTpchQ3());
  Show("Q5", MakeTpchQ5());
  Show("Q10", MakeTpchQ10());
  Show("Q18", MakeTpchQ18());
  return 0;
}
