// Quickstart: build a query against the public API, optimize it with all
// five plan generators, and print the resulting plans.
//
//   $ ./quickstart
//
// The query: orders ⟕ lineitems ON order_id, GROUP BY orders.region with
// sum(lineitems.amount) and count(*). Classic eager aggregation cannot
// push the grouping below the outer join; the equivalences of the paper
// can — the grouped right side is joined with a generalized outer join
// whose default vector pads unmatched orders with count 1 / NULL partials
// (Eqv. 14).

#include <cstdio>

#include "plangen/plangen.h"

using namespace eadp;

int main() {
  // 1. Describe the schema: relations, attributes (with distinct-value
  //    estimates), and keys.
  Catalog catalog;
  int orders = catalog.AddRelation("orders", 100000);
  int o_region = catalog.AddAttribute(orders, "orders.region", 50);
  int o_id = catalog.AddAttribute(orders, "orders.order_id", 100000);
  int lineitems = catalog.AddRelation("lineitems", 5000000);
  int l_order = catalog.AddAttribute(lineitems, "lineitems.order_id", 100000);
  int l_amount = catalog.AddAttribute(lineitems, "lineitems.amount", 100000);
  catalog.DeclareKey(orders, AttrSet::Single(o_id));

  // 2. Build the operator tree: orders ⟕_{order_id} lineitems.
  JoinPredicate pred;
  pred.AddEquality(o_id, l_order);
  auto root = OpTreeNode::Binary(OpKind::kLeftOuter, OpTreeNode::Leaf(orders),
                                 OpTreeNode::Leaf(lineitems), pred,
                                 1.0 / 100000);

  // 3. Grouping and aggregation: group by region, sum(amount), count(*).
  AttrSet group_by;
  group_by.Add(o_region);
  AggregateVector aggs(2);
  aggs[0].output = "total";
  aggs[0].kind = AggKind::kSum;
  aggs[0].arg = l_amount;
  aggs[1].output = "cnt";
  aggs[1].kind = AggKind::kCountStar;

  Query query = Query::FromTree(std::move(catalog), std::move(root), group_by,
                                std::move(aggs));
  query.Canonicalize();

  // 4. Optimize with every algorithm and compare.
  std::printf("query:\n%s\n", query.ToString().c_str());
  for (Algorithm a : {Algorithm::kDphyp, Algorithm::kEaAll,
                      Algorithm::kEaPrune, Algorithm::kH1, Algorithm::kH2}) {
    OptimizerOptions options;
    options.algorithm = a;
    OptimizeResult result = Optimize(query, options);
    std::printf("=== %-8s  cost=%.6g  (%.3f ms, %llu plans built)\n",
                AlgorithmName(a), result.plan->cost,
                result.stats.optimize_ms,
                static_cast<unsigned long long>(result.stats.plans_built));
    std::printf("%s\n", result.plan->ToString(query.catalog()).c_str());
  }
  std::printf(
      "The eager plans group the 5M lineitems down to 100k order totals\n"
      "*before* the outer join; the default vector (count := 1, partial\n"
      "sum := NULL) keeps orders without lineitems correct. The baseline\n"
      "pays the full 5M-row join.\n");
  return 0;
}
