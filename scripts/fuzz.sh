#!/usr/bin/env sh
# Local entry point for the mutation fuzzer (ctest label "fuzz").
#
# Usage:
#   scripts/fuzz.sh [build-dir]             run the fuzz sweeps
#   scripts/fuzz.sh replay '<corpus-line>'  replay one (seed, chain) line
#
# Environment:
#   EADP_FUZZ_MUTANTS    override the mutant budget (default self-scales:
#                        600 sanitized, 1200 at -O0, 5000 optimized)
#   EADP_FUZZ_REPRO_DIR  where minimized reproducers are written on
#                        divergence (default: <build-dir>/fuzz-repro)
#
# On divergence the driver prints — and writes to EADP_FUZZ_REPRO_DIR —
# minimized corpus lines of the form
#   gen <topology> <n> <preset> <seed> : <op>:<subseed> ...
# Replay one with:
#   scripts/fuzz.sh replay 'gen star 5 default 4898 : swap-children:123'
# and, once confirmed, fold it into tests/corpus/mutation.corpus so the
# tier-1 replay test pins it.
set -eu

cd "$(dirname "$0")/.."

if [ "${1:-}" = "replay" ]; then
  [ -n "${2:-}" ] || { echo "usage: scripts/fuzz.sh replay '<corpus-line>'" >&2; exit 2; }
  BUILD_DIR="${3:-build}"
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j "$(nproc 2>/dev/null || echo 4)" --target mutation_fuzz_test
  EADP_FUZZ_REPLAY="$2" \
    "$BUILD_DIR"/tests/mutation_fuzz_test --gtest_filter='MutationFuzz.ReplayFromEnv'
  status=$?
  # Corpus lines double as plan-server request specs: the same line can be
  # replayed through the full wire protocol against a live server.
  echo ""
  echo "replay against a live plan server with:"
  echo "  $BUILD_DIR/server/load_client --port <port> --replay '$2'"
  exit $status
fi

BUILD_DIR="${1:-build}"
cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$(nproc 2>/dev/null || echo 4)" --target mutation_fuzz_test server_fuzz_test
REPRO_DIR="${EADP_FUZZ_REPRO_DIR:-$BUILD_DIR/fuzz-repro}"
mkdir -p "$REPRO_DIR"
cd "$BUILD_DIR"
if EADP_FUZZ_REPRO_DIR="$REPRO_DIR" ctest -L fuzz --output-on-failure; then
  echo "fuzz: clean sweep (budget ${EADP_FUZZ_MUTANTS:-default})"
else
  status=$?
  echo ""
  echo "fuzz: divergences found; minimized reproducers in $REPRO_DIR"
  for f in "$REPRO_DIR"/*.corpus; do
    [ -e "$f" ] || continue
    grep -v '^#' "$f" | while IFS= read -r line; do
      [ -n "$line" ] && echo "  scripts/fuzz.sh replay '$line'"
    done
  done
  exit $status
fi
