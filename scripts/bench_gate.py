#!/usr/bin/env python3
"""CI bench-regression gate.

Compares a fresh benchmark run (the JSONL emitted via EADP_BENCH_JSON)
against the committed perf trajectory in BENCH_results.json and fails on
regressions beyond a guard band.

CI runners and developer machines differ in raw speed, so absolute medians
are not comparable across hosts. The gate therefore normalizes: it
computes the geometric-mean ratio (fresh / committed) over all matched
median_ms cases — the host-speed scale factor — and flags a case only when
its own ratio exceeds that scale by more than the guard band (default
±30%). A uniform slowdown (slower runner) passes; a *relative* slowdown of
specific cases (an actual regression) fails. Only wall-clock `median_ms`
records gate; `value` records (qps, speedups, hit rates, host properties)
are host-bound by nature and are reported but never gate.

Usage:
  scripts/bench_gate.py FRESH.jsonl [BENCH_results.json]
      [--section current] [--band 0.30] [--min-ms 0.05]

Exit status: 0 clean, 1 regression(s), 2 usage/matching problems.
"""

import argparse
import json
import math
import re
import sys

# Sentinel distinguishing "no host filter" from "rows with host == None"
# (pre-stamping rows have no host field; a section full of them must
# still gate as one coherent host, not fall back to a multi-host blend).
ANY_HOST = object()

# Multithreaded wall-clock cases measure core topology as much as code: a
# threads=8 batch is ~flat on a 1-core recording host but ~4x faster on a
# 4-core runner, which would deflate the host scale factor and push every
# single-thread case toward the band edge. Gate only thread-independent
# cases (threads=1 / workers=1 / conns=1 rows stay in). "threads=" names
# the batch/race benches' pool size, "workers=" the intra-query parallel
# DP's worker count (bench_parallel_dp, fig16 workers sweep), "conns=" the
# plan server's concurrent connection count (bench_server).
MULTITHREAD_CASE = re.compile(r"(?:threads|workers|conns)=(\d+)")


def core_count_sensitive(case):
    m = MULTITHREAD_CASE.search(case)
    return m is not None and int(m.group(1)) > 1


def load_jsonl(path):
    rows = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


def median_map(rows, host=ANY_HOST):
    """(suite, case) -> median_ms, restricted to one host unless ANY_HOST
    (host=None selects exactly the host-less pre-stamping rows). Core-
    count-sensitive cases are dropped. Later rows win, matching bench.sh's
    same-(suite,case,host) replacement semantics."""
    out = {}
    for r in rows:
        if "median_ms" not in r or core_count_sensitive(r["case"]):
            continue
        if host is not ANY_HOST and r.get("host") != host:
            continue
        out[(r["suite"], r["case"])] = r["median_ms"]
    return out


def pick_baseline_host(rows, requested):
    """bench.sh keeps one row per (suite, case, host), so a section may
    mix hosts of different speeds; normalizing against a blend would skew
    every per-case ratio by the inter-host speed gap. Gate against ONE
    host's rows: the requested one, or the host with the most median_ms
    rows (ties broken lexicographically for determinism)."""
    if requested:
        return requested
    counts = {}
    for r in rows:
        if "median_ms" in r:
            host = r.get("host")
            counts[host] = counts.get(host, 0) + 1
    if not counts:
        return None
    return sorted(counts.items(), key=lambda kv: (-kv[1], str(kv[0])))[0][0]


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("fresh", help="JSONL from the CI bench run")
    ap.add_argument("committed", nargs="?", default="BENCH_results.json")
    ap.add_argument("--section", default="current",
                    help="BENCH_results.json section to gate against")
    ap.add_argument("--host", default=None,
                    help="gate against this host's committed rows only "
                         "(default: the host with the most rows)")
    ap.add_argument("--band", type=float, default=0.30,
                    help="guard band around the host-scale factor")
    ap.add_argument("--min-ms", type=float, default=0.05,
                    help="ignore cases whose committed median is below this "
                         "(1-rep micro-medians are scheduler noise)")
    args = ap.parse_args()

    fresh = median_map(load_jsonl(args.fresh))
    with open(args.committed) as f:
        doc = json.load(f)
    if args.section not in doc:
        print(f"error: no '{args.section}' section in {args.committed}")
        return 2
    rows = doc[args.section]["results"]
    host = pick_baseline_host(rows, args.host)
    committed = median_map(rows, host)
    print(f"gating against committed host: {host}")

    matched = []
    for key in sorted(fresh.keys() & committed.keys()):
        base = committed[key]
        if base < args.min_ms or fresh[key] <= 0:
            continue
        matched.append((key, base, fresh[key], fresh[key] / base))
    if len(matched) < 3:
        print(f"error: only {len(matched)} comparable cases "
              f"(fresh={len(fresh)}, committed={len(committed)}) — "
              "gate cannot estimate the host scale factor")
        return 2

    scale = math.exp(sum(math.log(r) for _, _, _, r in matched)
                     / len(matched))
    print(f"{len(matched)} matched median_ms cases; host scale factor "
          f"{scale:.3f}x (fresh/committed geomean), guard band "
          f"±{args.band:.0%}\n")

    regressions, improvements = [], []
    for key, base, cur, ratio in matched:
        rel = ratio / scale
        tag = ""
        if rel > 1 + args.band:
            regressions.append(key)
            tag = "  << REGRESSION"
        elif rel < 1 - args.band:
            improvements.append(key)
            tag = "  (improved)"
        print(f"  {key[0]}/{key[1]}: {base:.4f} -> {cur:.4f} ms  "
              f"(x{ratio:.2f} raw, x{rel:.2f} normalized){tag}")

    print(f"\n{len(regressions)} regression(s), "
          f"{len(improvements)} improvement(s) beyond the band")
    if regressions:
        print("FAIL: cases slower than the committed trajectory after "
              "host-speed normalization:")
        for suite, case in regressions:
            print(f"  - {suite}/{case}")
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
