#!/usr/bin/env sh
# Perf-trajectory tracking: runs the perf-relevant benches
# (bench_fig16_runtime, bench_complexity, bench_table2_tpch,
# bench_large_queries, bench_parallel, bench_parallel_dp,
# bench_plan_cache, bench_persistent_cache, bench_drift,
# bench_server) with JSON recording enabled
# and folds the results into BENCH_results.json at the
# repo root. Folding merges by (suite, case, host): re-running replaces a
# row's previous measurement from the same host instead of dropping the
# rest of the section or accumulating duplicates.
#
# Usage: scripts/bench.sh [--baseline] [--label TEXT] [build-dir]
#
#   --baseline   write the run into the "baseline" section (done once,
#                before a perf-relevant change); the default writes the
#                "current" section, preserving the recorded baseline.
#   --label      free-text description stored with the run.
#
# Tunables: EADP_BENCH_QUERIES (queries per size, default 10).
# Records are medians — see bench_util.h BenchJsonWriter.
set -eu

cd "$(dirname "$0")/.."

SECTION=current
LABEL=""
while [ $# -gt 0 ]; do
  case "$1" in
    --baseline) SECTION=baseline; shift ;;
    --label) LABEL="$2"; shift 2 ;;
    *) break ;;
  esac
done
BUILD_DIR="${1:-build}"
QUERIES="${EADP_BENCH_QUERIES:-10}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j "$JOBS" \
  --target bench_fig16_runtime bench_complexity bench_table2_tpch \
           bench_large_queries bench_parallel bench_parallel_dp \
           bench_plan_cache bench_persistent_cache bench_drift \
           bench_server >/dev/null

JSONL="$(mktemp)"
trap 'rm -f "$JSONL"' EXIT

echo "== bench_fig16_runtime ($QUERIES queries/size) =="
EADP_BENCH_JSON="$JSONL" EADP_BENCH_QUERIES="$QUERIES" \
  "$BUILD_DIR/bench/bench_fig16_runtime"
echo
echo "== bench_complexity ($QUERIES queries/size) =="
EADP_BENCH_JSON="$JSONL" EADP_BENCH_QUERIES="$QUERIES" \
  "$BUILD_DIR/bench/bench_complexity"
echo
echo "== bench_table2_tpch =="
EADP_BENCH_JSON="$JSONL" "$BUILD_DIR/bench/bench_table2_tpch"
echo
echo "== bench_large_queries =="
EADP_BENCH_JSON="$JSONL" "$BUILD_DIR/bench/bench_large_queries"
echo
echo "== bench_parallel (throughput scaling; bounded by physical cores) =="
EADP_BENCH_JSON="$JSONL" "$BUILD_DIR/bench/bench_parallel"
echo
echo "== bench_parallel_dp (intra-query DP sharding; bounded by physical cores) =="
EADP_BENCH_JSON="$JSONL" "$BUILD_DIR/bench/bench_parallel_dp"
echo
echo "== bench_plan_cache (Zipf-stream hit rates; cache off/cold/warm) =="
EADP_BENCH_JSON="$JSONL" "$BUILD_DIR/bench/bench_plan_cache"
echo
echo "== bench_persistent_cache (cold-start recovery via the disk tier) =="
EADP_BENCH_JSON="$JSONL" "$BUILD_DIR/bench/bench_persistent_cache"
echo
echo "== bench_drift (re-plans avoided under a drifting Zipf stream) =="
EADP_BENCH_JSON="$JSONL" "$BUILD_DIR/bench/bench_drift"
echo
echo "== bench_server (loopback plan server; 1/4/8 Zipf connections) =="
EADP_BENCH_JSON="$JSONL" "$BUILD_DIR/bench/bench_server"

# Fold the JSONL records into BENCH_results.json ({"baseline": run,
# "current": run}). Each record is stamped with the measuring host and
# *merged* into the section: a new measurement replaces the existing
# (suite, case, host) row, rows from other hosts/suites are preserved, and
# repeated runs never accumulate duplicates. Prints a baseline-vs-current
# comparison when both sections are present.
SECTION="$SECTION" LABEL="$LABEL" QUERIES="$QUERIES" JSONL="$JSONL" \
python3 - <<'EOF'
import json, os, datetime, platform

out_path = "BENCH_results.json"
doc = {}
if os.path.exists(out_path):
    with open(out_path) as f:
        doc = json.load(f)

host = platform.node() or "unknown"
results = []
with open(os.environ["JSONL"]) as f:
    for line in f:
        line = line.strip()
        if line:
            rec = json.loads(line)
            rec["host"] = host
            results.append(rec)

# Merge into the section keyed by (suite, case, host): same-key rows are
# replaced (last occurrence of this run wins), everything else survives.
# Rows from before host stamping existed adopt the folding host, so the
# first re-run replaces them instead of leaving host-less duplicates.
section = doc.get(os.environ["SECTION"], {})
merged = {}
for rec in section.get("results", []):
    merged[(rec["suite"], rec["case"], rec.get("host", host))] = rec
for rec in results:
    merged[(rec["suite"], rec["case"], rec["host"])] = rec

doc[os.environ["SECTION"]] = {
    "label": os.environ["LABEL"] or section.get("label") or os.environ["SECTION"],
    "date": datetime.date.today().isoformat(),
    "queries_per_size": int(os.environ["QUERIES"]),
    "results": list(merged.values()),
}
with open(out_path, "w") as f:
    json.dump(doc, f, indent=1)
    f.write("\n")
print(f"wrote {out_path} [{os.environ['SECTION']}] "
      f"({len(results)} new records from {host}, "
      f"{len(merged)} total in section)")

if "baseline" in doc and "current" in doc:
    # Compare this host's rows only: sections can hold one row per
    # (suite, case, host), and cross-host ratios measure machines, not
    # code. Host-less rows predate stamping and are treated as local.
    def by_case(section):
        return {(r["suite"], r["case"]): r for r in section["results"]
                if r.get("host", host) == host}
    base = by_case(doc["baseline"])
    cur = by_case(doc["current"])
    print(f"\nbaseline -> current (median_ms, host {host}):")
    ratios = []
    for key in sorted(base.keys() & cur.keys()):
        b, c = base[key], cur[key]
        if "median_ms" not in b or "median_ms" not in c:
            continue
        bm, cm = b["median_ms"], c["median_ms"]
        if bm <= 0:
            continue
        ratios.append(cm / bm)
        print(f"  {key[0]}/{key[1]}: {bm:.4f} -> {cm:.4f}  ({cm / bm:.2f}x)")
    if ratios:
        gmean = 1.0
        for r in ratios:
            gmean *= r
        gmean **= 1.0 / len(ratios)
        print(f"\ngeometric-mean time ratio current/baseline: {gmean:.3f} "
              f"({len(ratios)} cases; < 1.0 is faster)")
EOF
