// Frame-decoder fuzz sweeps (label "fuzz"): the wire codec must be a
// total function over arbitrary bytes — decode never crashes, never reads
// out of bounds (ASan-checked in CI), never accepts a payload whose CRC
// does not hold, and a live server survives sustained garbage without
// giving up well-formed service. Companion to the mutation-based
// differential fuzzer (mutation_fuzz_test): that one attacks the planner,
// this one attacks the transport.

#include <cstdlib>
#include <string>

#include "gtest/gtest.h"
#include "common/rng.h"
#include "server/client.h"
#include "server/optimizer_service.h"
#include "server/plan_server.h"
#include "server/protocol.h"

namespace eadp {
namespace {

int BudgetFromEnv(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  int parsed = std::atoi(v);
  return parsed > 0 ? parsed : fallback;
}

std::string RandomBytes(Rng* rng, size_t max_len) {
  size_t len = static_cast<size_t>(rng->UniformInt(
      0, static_cast<int64_t>(max_len)));
  std::string s(len, '\0');
  for (char& c : s) c = static_cast<char>(rng->Next() & 0xff);
  return s;
}

// Arbitrary buffers through DecodeFrame: totality + the consumed
// contract (never past the buffer, 0 exactly for kNeedMore/kOversized).
TEST(ServerFuzz, DecodeFrameIsTotalOverRandomBytes) {
  const int budget = BudgetFromEnv("EADP_FUZZ_FRAMES", 20000);
  Rng rng(20260809);
  for (int i = 0; i < budget; ++i) {
    std::string buf = RandomBytes(&rng, 64);
    Frame frame;
    size_t consumed = 1234567;
    DecodeStatus status = DecodeFrame(buf, 1 << 16, &frame, &consumed);
    ASSERT_LE(consumed, buf.size());
    if (status == DecodeStatus::kNeedMore ||
        status == DecodeStatus::kOversized) {
      ASSERT_EQ(consumed, 0u);
    } else {
      ASSERT_GT(consumed, 0u);
    }
    if (status == DecodeStatus::kOk) {
      // An accepted frame's payload must re-verify against its CRC.
      std::string reencoded;
      AppendFrame(&reencoded, static_cast<Opcode>(frame.opcode),
                  frame.payload);
      ASSERT_EQ(reencoded, buf.substr(0, consumed));
    }
  }
}

// Every single-bit corruption of a valid frame either still decodes to
// a CRC-consistent frame (flips confined to the length prefix or opcode
// can do that) or is rejected — silent payload corruption never passes.
TEST(ServerFuzz, BitFlippedFramesNeverServeCorruptPayloads) {
  OpenSessionRequest open{"fuzz-session", PlannerKnobs{}};
  const std::string payloads[] = {
      std::string(), std::string("gen chain 5 default 3 :"),
      EncodeOpenSession(open),
      EncodeError(ErrorCode::kBackpressure, "busy")};
  for (const std::string& payload : payloads) {
    std::string frame_bytes;
    AppendFrame(&frame_bytes, Opcode::kOptimize, payload);
    for (size_t bit = 0; bit < frame_bytes.size() * 8; ++bit) {
      std::string mutated = frame_bytes;
      mutated[bit / 8] ^= static_cast<char>(1u << (bit % 8));
      Frame frame;
      size_t consumed = 0;
      DecodeStatus status =
          DecodeFrame(mutated, kMaxFrameBytes, &frame, &consumed);
      if (status != DecodeStatus::kOk) continue;
      ASSERT_EQ(Crc32(frame.payload),
                Crc32(std::string_view(mutated).substr(
                    4 + kFrameHeaderBytes, frame.payload.size())))
          << "bit " << bit;
      // A flip outside the payload+CRC region leaves the payload intact.
      if (bit >= (4 + kFrameHeaderBytes) * 8) {
        FAIL() << "payload/CRC flip at bit " << bit << " decoded kOk";
      }
    }
  }
}

// Request payload decoders over random and bit-flipped bytes: reject or
// produce in-contract values, never crash.
TEST(ServerFuzz, RequestDecodersAreTotal) {
  const int budget = BudgetFromEnv("EADP_FUZZ_PAYLOADS", 20000);
  Rng rng(97);
  OpenSessionRequest open_seed{"s", PlannerKnobs{}};
  SetStatsRequest stats_seed{"s", "gen chain 4 default 1 :", 1, 64.0};
  OptimizeBatchRequest batch_seed{"s", {"a", "b", "c"}};
  const std::string seeds[] = {
      EncodeOpenSession(open_seed), EncodeSetStats(stats_seed),
      EncodeOptimize(OptimizeRequest{"s", "line"}),
      EncodeOptimizeBatch(batch_seed), EncodeError(ErrorCode::kBadCrc, "x")};
  for (int i = 0; i < budget; ++i) {
    std::string payload;
    if (i % 2 == 0) {
      payload = RandomBytes(&rng, 96);
    } else {
      payload = seeds[static_cast<size_t>(rng.UniformInt(0, 4))];
      if (!payload.empty()) {
        size_t bit = static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(payload.size() * 8 - 1)));
        payload[bit / 8] ^= static_cast<char>(1u << (bit % 8));
      }
    }
    OpenSessionRequest open;
    if (DecodeOpenSession(payload, &open)) {
      ASSERT_FALSE(open.session.empty());
      ASSERT_LE(open.session.size(), 256u);
      ASSERT_GE(open.knobs.dp_threads, 1);
      ASSERT_LE(open.knobs.dp_threads, 64);
    }
    SetStatsRequest set_stats;
    if (DecodeSetStats(payload, &set_stats)) {
      ASSERT_GE(set_stats.cardinality, 1.0);
      ASSERT_LT(set_stats.cardinality, 1e15);
    }
    OptimizeRequest optimize;
    (void)DecodeOptimize(payload, &optimize);
    OptimizeBatchRequest batch;
    if (DecodeOptimizeBatch(payload, &batch)) {
      ASSERT_LE(batch.spec_lines.size(), 4096u);
    }
    ErrorResponse error;
    (void)DecodeError(payload, &error);
  }
}

// A live server under sustained garbage: random byte blasts (reconnecting
// whenever the server rightly closes) never wedge it — a well-formed
// exchange still succeeds afterward.
TEST(ServerFuzz, LiveServerSurvivesGarbageStreams) {
  OptimizerService service(ServiceOptions{});
  PlanServer server(&service, PlanServerOptions{});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  // One throwaway connection per blast, abandoned without reading: the
  // garbage may be an incomplete frame the server (correctly) keeps
  // waiting on, so reading a reply could block forever. Dropping the
  // connection forces the handler down its torn-read / error-write exit
  // paths instead — including writes against a closed peer (the EPIPE
  // path that must never SIGPIPE the server).
  const int budget = BudgetFromEnv("EADP_FUZZ_GARBAGE", 300);
  Rng rng(4242);
  for (int i = 0; i < budget; ++i) {
    auto conn = ClientConnection::Connect("127.0.0.1", server.port(),
                                          &error);
    ASSERT_NE(conn, nullptr) << error;
    conn->SendRaw(RandomBytes(&rng, 48));
  }

  auto clean = ClientConnection::Connect("127.0.0.1", server.port(), &error);
  ASSERT_NE(clean, nullptr) << error;
  ErrorResponse err;
  ASSERT_TRUE(clean->OpenSession("post-garbage", PlannerKnobs{}, &err))
      << err.message;
  OptimizeResult result;
  ASSERT_TRUE(clean->Optimize("post-garbage", "gen chain 5 default 9 :",
                              &result, nullptr, &err))
      << err.message;
  EXPECT_NE(result.plan, nullptr);
  server.Shutdown();
}

}  // namespace
}  // namespace eadp
