#include "common/rng.h"

#include <gtest/gtest.h>

#include <vector>

namespace eadp {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 9);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(3, 3), 3);
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(11);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 4000; ++i) {
    ++counts[static_cast<size_t>(rng.UniformInt(0, 3))];
  }
  for (int c : counts) EXPECT_GT(c, 800);  // roughly uniform
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(Rng, PickWeightedRespectsZeroWeight) {
  Rng rng(19);
  double weights[3] = {1.0, 0.0, 1.0};
  for (int i = 0; i < 200; ++i) {
    EXPECT_NE(rng.PickWeighted(weights, 3), 1);
  }
}

TEST(Rng, PickWeightedRoughProportions) {
  Rng rng(23);
  double weights[2] = {3.0, 1.0};
  int first = 0;
  for (int i = 0; i < 4000; ++i) {
    if (rng.PickWeighted(weights, 2) == 0) ++first;
  }
  EXPECT_GT(first, 2700);
  EXPECT_LT(first, 3300);
}

}  // namespace
}  // namespace eadp
