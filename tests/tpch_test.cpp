// TPC-H queries (Sec. 1 and Sec. 5.4): plan shapes, cost relations, and
// executable verification of the intro example Ex.

#include "queries/tpch.h"

#include <gtest/gtest.h>

#include "plangen/plangen.h"

namespace eadp {
namespace {

OptimizerOptions Opts(Algorithm a) {
  OptimizerOptions o;
  o.algorithm = a;
  return o;
}

TEST(TpchEx, EagerAggregationWinsBigBelowTheFullOuterJoin) {
  Query q = MakeTpchEx();
  OptimizeResult ea = Optimize(q, Opts(Algorithm::kEaPrune));
  OptimizeResult baseline = Optimize(q, Opts(Algorithm::kDphyp));
  ASSERT_NE(ea.plan, nullptr);
  ASSERT_NE(baseline.plan, nullptr);

  // The paper reports orders of magnitude (Sec. 1: 2140 ms -> 1.51 ms).
  // In C_out terms with SF-1 statistics, the eager plan must be at least
  // 100x cheaper.
  EXPECT_LT(ea.plan->cost * 100, baseline.plan->cost)
      << "eager:\n"
      << ea.plan->ToString(q.catalog()) << "baseline:\n"
      << baseline.plan->ToString(q.catalog());
  // Grouping is pushed below the full outerjoin on both sides.
  EXPECT_GE(ea.plan->PushedGroupingCount(), 2)
      << ea.plan->ToString(q.catalog());
}

TEST(TpchEx, ExecutedPlansAgreeOnMiniData) {
  Query q = MakeTpchEx();
  Database db = MakeExDatabase(q, /*scale=*/2, /*seed=*/42);
  OptimizeResult ea = Optimize(q, Opts(Algorithm::kEaPrune));
  OptimizeResult baseline = Optimize(q, Opts(Algorithm::kDphyp));
  Table got_ea = ExecutePlan(ea.plan, q, db);
  Table got_base = ExecutePlan(baseline.plan, q, db);
  Table want = ExecuteCanonical(q, db);
  EXPECT_TRUE(Table::BagEquals(got_ea, want)) << got_ea.ToString();
  EXPECT_TRUE(Table::BagEquals(got_base, want)) << got_base.ToString();
  // Every (supplier-nation x customer-nation) pair with both sides
  // populated appears, 25x25 at this scale plus possible orphan rows.
  EXPECT_GE(want.NumRows(), 25u);
}

TEST(TpchEx, HeuristicsAlsoFindTheEagerPlan) {
  // Ex benefits most (Table 2: all eager algorithms reach rel. cost
  // 6.1e-4); even H1's local comparison fires here because the groupings
  // pay off immediately below the outer join.
  Query q = MakeTpchEx();
  double base = Optimize(q, Opts(Algorithm::kDphyp)).plan->cost;
  double ea = Optimize(q, Opts(Algorithm::kEaPrune)).plan->cost;
  double h1 = Optimize(q, Opts(Algorithm::kH1)).plan->cost;
  double h2 = Optimize(q, Opts(Algorithm::kH2)).plan->cost;
  EXPECT_NEAR(h1, ea, 1e-6 * ea);
  EXPECT_NEAR(h2, ea, 1e-6 * ea);
  EXPECT_LT(ea / base, 0.01);
}

TEST(TpchQ3, EagerAggregationHelps) {
  Query q = MakeTpchQ3();
  double base = Optimize(q, Opts(Algorithm::kDphyp)).plan->cost;
  double ea = Optimize(q, Opts(Algorithm::kEaPrune)).plan->cost;
  // Table 2: rel. cost EA/DPhyp = 0.65 for Q3 — meaningful but not
  // dramatic. Accept anything clearly below 1.
  EXPECT_LT(ea, base);
  EXPECT_GT(ea, base * 0.05);
}

TEST(TpchQ5, SmallestGain) {
  Query q = MakeTpchQ5();
  OptimizeResult base = Optimize(q, Opts(Algorithm::kDphyp));
  OptimizeResult ea = Optimize(q, Opts(Algorithm::kEaPrune));
  ASSERT_NE(base.plan, nullptr);
  ASSERT_NE(ea.plan, nullptr);
  // Table 2: 0.9 — close to no gain.
  EXPECT_LE(ea.plan->cost, base.plan->cost * (1 + 1e-9));
  EXPECT_GT(ea.plan->cost, base.plan->cost * 0.3);
}

TEST(TpchQ10, GainPresent) {
  Query q = MakeTpchQ10();
  double base = Optimize(q, Opts(Algorithm::kDphyp)).plan->cost;
  double ea = Optimize(q, Opts(Algorithm::kEaPrune)).plan->cost;
  EXPECT_LT(ea, base);
}

TEST(TpchAll, OptimizationIsFastEnough) {
  // Table 2 reports sub-3ms optimization times; allow generous slack for
  // CI machines but catch pathological blowups.
  std::vector<Query> queries;
  queries.push_back(MakeTpchEx());
  queries.push_back(MakeTpchQ3());
  queries.push_back(MakeTpchQ5());
  queries.push_back(MakeTpchQ10());
  for (const Query& q : queries) {
    OptimizeResult r = Optimize(q, Opts(Algorithm::kEaPrune));
    EXPECT_LT(r.stats.optimize_ms, 500.0);
  }
}

TEST(TpchAll, EaTimeExceedsBaselineTime) {
  // Rel. Time EA/DPhyp > 1 in Table 2 (EA explores more).
  Query q = MakeTpchQ5();
  OptimizeResult ea = Optimize(q, Opts(Algorithm::kEaPrune));
  OptimizeResult base = Optimize(q, Opts(Algorithm::kDphyp));
  EXPECT_GE(ea.stats.plans_built, base.stats.plans_built);
}

}  // namespace
}  // namespace eadp
