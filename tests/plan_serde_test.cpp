// Byte-level pins for the binary plan encoding (plangen/plan_serde.h):
//
//   * round trips — encode→decode→re-encode byte-identity, recursive
//     bitwise equality of every node field (cost/cardinality doubles by
//     bit pattern, keys by content, payloads by value), explain-JSON
//     string equality and validator-cleanness, across the full small
//     differential corpus × all strategies, the TPC-H seeds, n >= 20
//     GOO/IDP plans, FD-tracking plans and parallel-DP (multi-arena)
//     plans;
//   * adversarial decodes — every single-byte corruption of a blob is
//     rejected (CRC or structure), every truncated prefix is rejected,
//     version skew refuses cleanly, random garbage never exhibits UB
//     (the sweeps run unchanged under the ASan/UBSan CI legs);
//   * binio primitives — varint/zigzag round trips and the CRC-32 check
//     vector.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/binio.h"
#include "plangen/plan_explain.h"
#include "plangen/plan_serde.h"
#include "plangen/plan_validator.h"
#include "plangen/plangen.h"
#include "queries/query_generator.h"
#include "queries/tpch.h"
#include "tests/test_util.h"

namespace eadp {
namespace {

// ---------------------------------------------------------------------------
// Corpus (mirrors large_query_test's differential corpus).
// ---------------------------------------------------------------------------

std::vector<Query> SmallCorpus() {
  std::vector<Query> corpus;
  for (QueryTopology t :
       {QueryTopology::kChain, QueryTopology::kStar, QueryTopology::kCycle,
        QueryTopology::kClique}) {
    for (int n = 2; n <= 9; ++n) {
      for (uint64_t seed = 0; seed < 3; ++seed) {
        GeneratorOptions gen;
        gen.topology = t;
        gen.num_relations = n;
        corpus.push_back(GenerateRandomQuery(gen, seed));
      }
    }
  }
  for (uint64_t seed = 0; seed < 10; ++seed) {
    GeneratorOptions gen;
    gen.num_relations = 3 + static_cast<int>(seed % 4);
    corpus.push_back(GenerateRandomQuery(gen, seed));
    gen.num_relations = 5 + static_cast<int>(seed % 4);
    gen.inner_joins_only = true;
    corpus.push_back(GenerateRandomQuery(gen, seed + 500));
  }
  return corpus;
}

std::vector<Query> TpchSeeds() {
  std::vector<Query> seeds;
  seeds.push_back(MakeTpchEx());
  seeds.push_back(MakeTpchQ1());
  seeds.push_back(MakeTpchQ3());
  seeds.push_back(MakeTpchQ5());
  seeds.push_back(MakeTpchQ10());
  seeds.push_back(MakeTpchQ18());
  return seeds;
}

// ---------------------------------------------------------------------------
// Recursive bitwise plan equality.
// ---------------------------------------------------------------------------

bool BitEqual(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

/// Field-by-field equality of two plan trees: doubles by bit pattern,
/// interned payloads by value. Reports the first divergence.
void ExpectTreesEqual(PlanPtr a, PlanPtr b, const std::string& label) {
  ASSERT_EQ(a == nullptr, b == nullptr) << label;
  if (a == nullptr) return;
  ASSERT_EQ(a->op, b->op) << label;
  EXPECT_EQ(a->rels, b->rels) << label;
  EXPECT_EQ(a->relation, b->relation) << label;
  EXPECT_TRUE(BitEqual(a->cardinality, b->cardinality)) << label;
  EXPECT_TRUE(BitEqual(a->raw_cardinality, b->raw_cardinality)) << label;
  EXPECT_TRUE(BitEqual(a->pregroup_cardinality, b->pregroup_cardinality))
      << label;
  EXPECT_TRUE(BitEqual(a->cost, b->cost)) << label;
  EXPECT_EQ(a->duplicate_free, b->duplicate_free) << label;
  EXPECT_EQ(a->group_by, b->group_by) << label;
  EXPECT_TRUE(a->keys() == b->keys()) << label;

  // Crossing payload.
  EXPECT_EQ(a->op_indices(), b->op_indices()) << label;
  const auto& ae = a->predicate().equalities();
  const auto& be = b->predicate().equalities();
  ASSERT_EQ(ae.size(), be.size()) << label;
  for (size_t i = 0; i < ae.size(); ++i) {
    EXPECT_EQ(ae[i].left_attr, be[i].left_attr) << label;
    EXPECT_EQ(ae[i].right_attr, be[i].right_attr) << label;
  }
  if (a->crossing != nullptr || b->crossing != nullptr) {
    ASSERT_TRUE(a->crossing != nullptr && b->crossing != nullptr) << label;
    EXPECT_TRUE(BitEqual(a->crossing->selectivity, b->crossing->selectivity))
        << label;
  }
  const auto& aga = a->groupjoin_aggs();
  const auto& bga = b->groupjoin_aggs();
  ASSERT_EQ(aga.size(), bga.size()) << label;
  for (size_t i = 0; i < aga.size(); ++i) {
    EXPECT_EQ(aga[i].output, bga[i].output) << label;
    EXPECT_EQ(aga[i].kind, bga[i].kind) << label;
    EXPECT_EQ(aga[i].arg, bga[i].arg) << label;
    EXPECT_EQ(aga[i].distinct, bga[i].distinct) << label;
  }

  // Outer-join defaults.
  auto expect_defaults_equal = [&](const std::vector<SymbolicDefault>& x,
                                   const std::vector<SymbolicDefault>& y) {
    ASSERT_EQ(x.size(), y.size()) << label;
    for (size_t i = 0; i < x.size(); ++i) {
      EXPECT_EQ(x[i].column, y[i].column) << label;
      EXPECT_EQ(x[i].one, y[i].one) << label;
    }
  };
  expect_defaults_equal(a->left_defaults(), b->left_defaults());
  expect_defaults_equal(a->right_defaults(), b->right_defaults());

  // Grouping aggregates.
  const auto& agg = a->group_aggs();
  const auto& bgg = b->group_aggs();
  ASSERT_EQ(agg.size(), bgg.size()) << label;
  for (size_t i = 0; i < agg.size(); ++i) {
    EXPECT_EQ(agg[i].output, bgg[i].output) << label;
    EXPECT_EQ(agg[i].kind, bgg[i].kind) << label;
    EXPECT_EQ(agg[i].arg, bgg[i].arg) << label;
    EXPECT_EQ(agg[i].distinct, bgg[i].distinct) << label;
    EXPECT_EQ(agg[i].multipliers, bgg[i].multipliers) << label;
  }

  // Final map.
  const auto& afm = a->final_map();
  const auto& bfm = b->final_map();
  ASSERT_EQ(afm.size(), bfm.size()) << label;
  for (size_t i = 0; i < afm.size(); ++i) {
    EXPECT_EQ(afm[i].output, bfm[i].output) << label;
    EXPECT_EQ(afm[i].kind, bfm[i].kind) << label;
    EXPECT_EQ(afm[i].arg, bfm[i].arg) << label;
    EXPECT_EQ(afm[i].arg2, bfm[i].arg2) << label;
    EXPECT_EQ(afm[i].counts, bfm[i].counts) << label;
    EXPECT_EQ(afm[i].const_value, bfm[i].const_value) << label;
  }
  EXPECT_EQ(a->output_columns(), b->output_columns()) << label;

  // FDs and aggregation state.
  const auto& afd = a->fds().fds();
  const auto& bfd = b->fds().fds();
  ASSERT_EQ(afd.size(), bfd.size()) << label;
  for (size_t i = 0; i < afd.size(); ++i) {
    EXPECT_TRUE(afd[i] == bfd[i]) << label;
  }
  const PlanAggState& ast = a->agg_state();
  const PlanAggState& bst = b->agg_state();
  ASSERT_EQ(ast.slots.size(), bst.slots.size()) << label;
  for (size_t i = 0; i < ast.slots.size(); ++i) {
    EXPECT_EQ(ast.slots[i].query_index, bst.slots[i].query_index) << label;
    EXPECT_EQ(ast.slots[i].partialized, bst.slots[i].partialized) << label;
    EXPECT_EQ(ast.slots[i].partial_column, bst.slots[i].partial_column)
        << label;
    EXPECT_EQ(ast.slots[i].home_count, bst.slots[i].home_count) << label;
  }
  ASSERT_EQ(ast.counts.size(), bst.counts.size()) << label;
  for (size_t i = 0; i < ast.counts.size(); ++i) {
    EXPECT_EQ(ast.counts[i].column, bst.counts[i].column) << label;
  }

  ExpectTreesEqual(a->left, b->left, label);
  ExpectTreesEqual(a->right, b->right, label);
}

/// The full round-trip contract for one optimization result.
void ExpectRoundTrips(const OptimizeResult& fresh, const Query& query,
                      const std::string& label) {
  std::string blob = EncodePlan(fresh);
  OptimizeResult revived;
  std::string error;
  ASSERT_TRUE(DecodePlan(blob, &revived, &error)) << label << ": " << error;
  ASSERT_EQ(revived.plan == nullptr, fresh.plan == nullptr) << label;

  // Explain-bit-identity: stats and the plan rendering, as one string.
  EXPECT_EQ(ExplainToJson(revived, query.catalog()),
            ExplainToJson(fresh, query.catalog()))
      << label;

  if (fresh.plan != nullptr) {
    ExpectTreesEqual(fresh.plan, revived.plan, label);
    std::vector<std::string> violations = ValidatePlan(revived.plan, query);
    EXPECT_TRUE(violations.empty())
        << label << ": revived plan has " << violations.size()
        << " violations, first: " << violations.front();
  }

  // Determinism: re-encoding the revived result reproduces the blob.
  EXPECT_EQ(EncodePlan(revived), blob) << label << ": re-encode diverged";
}

// ---------------------------------------------------------------------------
// Round trips
// ---------------------------------------------------------------------------

TEST(PlanSerdeRoundTrip, CorpusAllStrategies) {
  std::vector<Query> corpus = SmallCorpus();
  int checked = 0;
  for (size_t qi = 0; qi < corpus.size(); ++qi) {
    const Query& q = corpus[qi];
    std::vector<Algorithm> algorithms = {Algorithm::kDphyp, Algorithm::kEaPrune,
                                         Algorithm::kH1, Algorithm::kH2,
                                         Algorithm::kGoo, Algorithm::kIdp};
    // kEaAll keeps every join tree per class — exponential, so cap it.
    if (q.NumRelations() <= 6) algorithms.push_back(Algorithm::kEaAll);
    for (Algorithm a : algorithms) {
      OptimizerOptions opts;
      opts.algorithm = a;
      OptimizeResult r = Optimize(q, opts);
      if (r.plan == nullptr) continue;  // kIdp may legitimately bail
      ExpectRoundTrips(r, q,
                       "corpus[" + std::to_string(qi) + "] " +
                           AlgorithmName(a));
      ++checked;
    }
    // The adaptive facade (production entry point).
    OptimizerOptions adaptive;
    OptimizeResult r = OptimizeAdaptive(q, adaptive);
    ASSERT_NE(r.plan, nullptr) << "corpus[" << qi << "]";
    ExpectRoundTrips(r, q, "corpus[" + std::to_string(qi) + "] adaptive");
    ++checked;
  }
  EXPECT_GT(checked, 500);
}

TEST(PlanSerdeRoundTrip, TpchSeeds) {
  std::vector<Query> seeds = TpchSeeds();
  for (size_t i = 0; i < seeds.size(); ++i) {
    for (Algorithm a : {Algorithm::kEaPrune, Algorithm::kDphyp}) {
      OptimizerOptions opts;
      opts.algorithm = a;
      OptimizeResult r = Optimize(seeds[i], opts);
      ASSERT_NE(r.plan, nullptr) << "tpch[" << i << "]";
      ExpectRoundTrips(r, seeds[i],
                       "tpch[" + std::to_string(i) + "] " + AlgorithmName(a));
    }
    OptimizerOptions adaptive;
    OptimizeResult r = OptimizeAdaptive(seeds[i], adaptive);
    ASSERT_NE(r.plan, nullptr);
    ExpectRoundTrips(r, seeds[i], "tpch[" + std::to_string(i) + "] adaptive");
  }
}

TEST(PlanSerdeRoundTrip, LargeQueryStrategies) {
  for (int n : {20, 30}) {
    for (QueryTopology t : {QueryTopology::kChain, QueryTopology::kStar}) {
      GeneratorOptions gen;
      gen.topology = t;
      gen.num_relations = n;
      Query q = GenerateRandomQuery(gen, /*seed=*/1);
      for (Algorithm a : {Algorithm::kGoo, Algorithm::kIdp}) {
        OptimizerOptions opts;
        opts.algorithm = a;
        OptimizeResult r = Optimize(q, opts);
        if (r.plan == nullptr) continue;
        ExpectRoundTrips(r, q,
                         std::string("large n=") + std::to_string(n) + " " +
                             AlgorithmName(a));
      }
      OptimizerOptions adaptive;
      OptimizeResult r = OptimizeAdaptive(q, adaptive);
      ASSERT_NE(r.plan, nullptr);
      ExpectRoundTrips(r, q, "large n=" + std::to_string(n) + " adaptive");
    }
  }
}

TEST(PlanSerdeRoundTrip, FdTrackingPlans) {
  // full_fd_dominance forces FD sets onto every node — the fds_ payload
  // table must round-trip too.
  GeneratorOptions gen;
  gen.topology = QueryTopology::kChain;
  gen.num_relations = 6;
  Query q = GenerateRandomQuery(gen, /*seed=*/2);
  OptimizerOptions opts;
  opts.full_fd_dominance = true;
  OptimizeResult r = Optimize(q, opts);
  ASSERT_NE(r.plan, nullptr);
  ExpectRoundTrips(r, q, "fd-tracking");
}

TEST(PlanSerdeRoundTrip, ParallelDpMultiArenaPlans) {
  // dp_threads > 1 builds nodes in per-worker arenas (adopted as
  // siblings): the encoder must handle payload pointers from any arena,
  // including content-equal KeySets interned separately per worker.
  GeneratorOptions gen;
  gen.topology = QueryTopology::kStar;
  gen.num_relations = 10;
  Query q = GenerateRandomQuery(gen, /*seed=*/3);
  OptimizerOptions opts;
  opts.dp_threads = 4;
  OptimizeResult r = Optimize(q, opts);
  ASSERT_NE(r.plan, nullptr);
  ExpectRoundTrips(r, q, "parallel-dp");
}

TEST(PlanSerdeRoundTrip, OuterJoinAndGroupJoinPlans) {
  for (OpKind kind : {OpKind::kLeftOuter, OpKind::kFullOuter,
                      OpKind::kGroupJoin, OpKind::kLeftSemi}) {
    TwoRelSpec spec;
    spec.kind = kind;
    Query q = MakeTwoRelQuery(spec);
    OptimizerOptions opts;
    OptimizeResult r = Optimize(q, opts);
    ASSERT_NE(r.plan, nullptr) << OpKindName(kind);
    ExpectRoundTrips(r, q, OpKindName(kind));
  }
}

TEST(PlanSerdeRoundTrip, NullPlanResult) {
  // Unsatisfiable results (null plan) are legal cache values: the stats
  // block still round-trips exactly.
  OptimizeResult r;
  r.stats.ccp_count = 17;
  r.stats.optimize_ms = 1.25;
  r.stats.algorithm = Algorithm::kGoo;
  std::string blob = EncodePlan(r);
  OptimizeResult revived;
  std::string error;
  ASSERT_TRUE(DecodePlan(blob, &revived, &error)) << error;
  EXPECT_EQ(revived.plan, nullptr);
  EXPECT_EQ(revived.stats.ccp_count, 17u);
  EXPECT_EQ(revived.stats.algorithm, Algorithm::kGoo);
  EXPECT_EQ(OptimizeStatsToJson(revived.stats), OptimizeStatsToJson(r.stats));
  EXPECT_EQ(EncodePlan(revived), blob);
}

TEST(PlanSerdeRoundTrip, InternedPayloadsStayShared) {
  // The dedup tables must preserve object sharing: equal keys_ pointers
  // in the original map to equal pointers in the revived plan (decode
  // re-interns), so blob size stays linear in *distinct* payloads.
  TwoRelSpec spec;
  Query q = MakeTwoRelQuery(spec);
  OptimizeResult r = Optimize(q, OptimizerOptions{});
  ASSERT_NE(r.plan, nullptr);
  std::string blob = EncodePlan(r);
  OptimizeResult revived;
  ASSERT_TRUE(DecodePlan(blob, &revived));

  auto count_distinct_keys = [](PlanPtr root) {
    std::vector<const KeySet*> seen;
    auto visit = [&](auto&& self, PlanPtr n) -> void {
      if (n == nullptr) return;
      if (n->keys_ != nullptr &&
          std::find(seen.begin(), seen.end(), n->keys_) == seen.end()) {
        seen.push_back(n->keys_);
      }
      self(self, n->left);
      self(self, n->right);
    };
    visit(visit, root);
    return seen.size();
  };
  EXPECT_EQ(count_distinct_keys(revived.plan), count_distinct_keys(r.plan));
}

// ---------------------------------------------------------------------------
// Adversarial decodes
// ---------------------------------------------------------------------------

std::string SmallBlob() {
  TwoRelSpec spec;
  Query q = MakeTwoRelQuery(spec);
  OptimizeResult r = Optimize(q, OptimizerOptions{});
  EXPECT_NE(r.plan, nullptr);
  return EncodePlan(r);
}

TEST(PlanSerdeAdversarial, EveryByteFlipRejected) {
  std::string blob = SmallBlob();
  OptimizeResult out;
  for (size_t i = 0; i < blob.size(); ++i) {
    for (uint8_t mask : {uint8_t{0x01}, uint8_t{0x80}, uint8_t{0xff}}) {
      std::string corrupt = blob;
      corrupt[i] = static_cast<char>(corrupt[i] ^ mask);
      // Header flips hit magic/version/length checks; the crc word and
      // every payload byte hit the checksum (CRC-32 detects any burst
      // confined to 32 bits, so a single-byte flip can never pass).
      EXPECT_FALSE(DecodePlan(corrupt, &out))
          << "byte " << i << " mask " << static_cast<int>(mask)
          << " accepted";
    }
  }
}

TEST(PlanSerdeAdversarial, EveryTruncationRejected) {
  std::string blob = SmallBlob();
  OptimizeResult out;
  for (size_t len = 0; len < blob.size(); ++len) {
    std::string error;
    EXPECT_FALSE(DecodePlan(std::string_view(blob.data(), len), &out, &error))
        << "prefix of " << len << " bytes accepted";
  }
  // Extension is rejected too (the header length field pins the size).
  EXPECT_FALSE(DecodePlan(blob + '\0', &out));
}

TEST(PlanSerdeAdversarial, VersionSkewRefusedCleanly) {
  std::string blob = SmallBlob();
  // Bump the version *and* nothing else: the decoder must identify the
  // skew as such — before the checksum — rather than report corruption.
  uint32_t skew = kPlanBlobVersion + 1;
  std::string future = blob;
  std::memcpy(future.data() + 4, &skew, 4);
  OptimizeResult out;
  std::string error;
  EXPECT_FALSE(DecodePlan(future, &out, &error));
  EXPECT_EQ(error, "unsupported format version");
}

TEST(PlanSerdeAdversarial, TrailingPayloadBytesRejected) {
  // Corruption *below* the checksum: append a byte inside the payload and
  // re-seal magic/version/crc/len — the structural layer must still
  // reject (every accepted blob is fully consumed).
  std::string blob = SmallBlob();
  std::string payload(blob.substr(16));
  payload.push_back('\0');
  std::string reborn;
  PutFixed32(&reborn, kPlanBlobMagic);
  PutFixed32(&reborn, kPlanBlobVersion);
  PutFixed32(&reborn, Crc32(payload));
  PutFixed32(&reborn, static_cast<uint32_t>(payload.size()));
  reborn += payload;
  OptimizeResult out;
  std::string error;
  EXPECT_FALSE(DecodePlan(reborn, &out, &error));
  EXPECT_EQ(error, "trailing bytes");
}

TEST(PlanSerdeAdversarial, ResealedGarbagePayloadRejected) {
  // Valid header + checksum over garbage: exercises every bounds/enum
  // check in the payload parser (the CRC no longer saves the decoder).
  uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  OptimizeResult out;
  for (int trial = 0; trial < 200; ++trial) {
    std::string payload;
    size_t len = next() % 160;
    for (size_t i = 0; i < len; ++i) {
      payload.push_back(static_cast<char>(next() & 0xff));
    }
    std::string blob;
    PutFixed32(&blob, kPlanBlobMagic);
    PutFixed32(&blob, kPlanBlobVersion);
    PutFixed32(&blob, Crc32(payload));
    PutFixed32(&blob, static_cast<uint32_t>(payload.size()));
    blob += payload;
    // Must never crash; acceptance would require a byte-exact valid
    // encoding, which random bytes do not produce.
    EXPECT_FALSE(DecodePlan(blob, &out)) << "trial " << trial;
  }
}

TEST(PlanSerdeAdversarial, RawGarbageRejected) {
  uint64_t state = 42;
  auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 16;
  };
  OptimizeResult out;
  for (int trial = 0; trial < 500; ++trial) {
    std::string blob;
    size_t len = next() % 64;
    for (size_t i = 0; i < len; ++i) {
      blob.push_back(static_cast<char>(next() & 0xff));
    }
    EXPECT_FALSE(DecodePlan(blob, &out));
  }
}

// ---------------------------------------------------------------------------
// binio primitives
// ---------------------------------------------------------------------------

TEST(BinIo, VarintRoundTrip) {
  std::string buf;
  std::vector<uint64_t> values = {0,    1,    127,        128,
                                  300,  16383, 16384,     UINT32_MAX,
                                  1ull << 40, UINT64_MAX};
  for (uint64_t v : values) PutVarint64(&buf, v);
  BinReader r(buf);
  for (uint64_t v : values) EXPECT_EQ(r.ReadVarint64(), v);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BinIo, ZigzagRoundTrip) {
  std::string buf;
  std::vector<int64_t> values = {0, -1, 1, -2, 63, -64, INT32_MIN,
                                 INT32_MAX, INT64_MIN, INT64_MAX};
  for (int64_t v : values) PutZigzag(&buf, v);
  BinReader r(buf);
  for (int64_t v : values) EXPECT_EQ(r.ReadZigzag(), v);
  EXPECT_TRUE(r.AtEnd());
  // Small negatives stay small on the wire (the reason zigzag exists).
  std::string neg;
  PutZigzag(&neg, -1);
  EXPECT_EQ(neg.size(), 1u);
}

TEST(BinIo, Crc32CheckVector) {
  // The canonical CRC-32 test vector ("123456789" -> 0xCBF43926) pins the
  // polynomial and reflection; chained == one-shot pins the seeding.
  EXPECT_EQ(Crc32("123456789"), 0xcbf43926u);
  uint32_t chained = Crc32(std::string_view("12345"));
  chained = Crc32(std::string_view("6789"), chained);
  EXPECT_EQ(chained, 0xcbf43926u);
}

TEST(BinIo, OverlongVarintRejected) {
  // 11 continuation bytes can encode nothing valid in 64 bits.
  std::string buf(11, static_cast<char>(0x80));
  BinReader r(buf);
  r.ReadVarint64();
  EXPECT_TRUE(r.failed());
}

TEST(BinIo, ReaderLatchesOnUnderrun) {
  std::string buf = "\x01";
  BinReader r(buf);
  EXPECT_EQ(r.ReadFixed32(), 0u);  // underrun: 4 > 1
  EXPECT_TRUE(r.failed());
  EXPECT_EQ(r.ReadU8(), 0u);  // latched: even in-bounds reads now fail
  EXPECT_EQ(r.remaining(), 0u);
}

}  // namespace
}  // namespace eadp
