// Top-grouping elimination for outer joins (appendix A.2.6 / A.4.6):
// when G functionally determines the grouped side's key, the outer
// grouping of the eager equivalences degenerates to a map over single-row
// groups — Eqvs. 56–64 (left outerjoin) and 83–91 (full outerjoin),
// sampled at the execution level.

#include <gtest/gtest.h>

#include "exec/operators.h"

namespace eadp {
namespace {

Value I(int64_t v) { return Value::Int(v); }

/// e1 with unique j1 (a key) — every (g1, j1) group is a single row.
Table KeyedLeft() {
  Table t({"g1", "j1", "a1"});
  t.AddRow({I(1), I(1), I(2)});
  t.AddRow({I(1), I(2), I(4)});
  t.AddRow({I(2), I(3), I(8)});
  t.AddRow({I(2), I(7), Value::Null()});
  return t;
}

Table RightSide() {
  Table t({"g2", "j2", "a2"});
  t.AddRow({I(1), I(1), I(3)});
  t.AddRow({I(1), I(1), I(5)});
  t.AddRow({I(2), I(2), I(7)});
  t.AddRow({I(3), I(9), I(9)});
  return t;
}

ExecPredicate Pred() { return {{"j1", "j2", CmpOp::kEq}}; }

// Eqv. 60-style: ΓG;F(e1 E e2) with the right side pre-aggregated into
// counts; since G = {g1, j1} ⊇ key(e1) and the grouped-right join gives at
// most one partner per left row, the outer grouping collapses to a map.
TEST(TopElimination, Eqv60LeftOuterCountScaling) {
  Table e1 = KeyedLeft();
  Table e2 = RightSide();
  // Reference: lazy evaluation.
  std::vector<ExecAggregate> f = {
      ExecAggregate::Simple("c", AggKind::kCountStar),
      ExecAggregate::Simple("s1", AggKind::kSum, "a1")};
  Table reference = GroupBy(LeftOuterJoin(e1, e2, Pred()), {"g1", "j1"}, f);

  // Eager: Γ_{j2; c2:count(*)}(e2), outer join with default c2 := 1, then
  // the top grouping replaced by χ (Eqv. 42): per row, c = c2 and
  // s1 = a1 * c2.
  Table grouped = GroupBy(e2, {"j2"},
                          {ExecAggregate::Simple("c2", AggKind::kCountStar)});
  DefaultVector defaults = {{"c2", I(1)}};
  Table joined = LeftOuterJoin(e1, grouped, Pred(), defaults);
  std::vector<MapExpr> exprs;
  MapExpr c;
  c.output = "c";
  c.kind = MapExpr::Kind::kCountProduct;
  c.counts = {"c2"};
  exprs.push_back(c);
  MapExpr s1;
  s1.output = "s1";
  s1.kind = MapExpr::Kind::kMulCounts;
  s1.arg = "a1";
  s1.counts = {"c2"};
  exprs.push_back(s1);
  Table mapped = Project(Map(joined, exprs), {"g1", "j1", "c", "s1"});
  EXPECT_TRUE(Table::BagEquals(reference, mapped))
      << reference.ToString() << mapped.ToString();
}

// Eqv. 87-style: the same elimination below a FULL outerjoin needs the
// count default on the right-orphan rows and a NULL-grouped row for them.
TEST(TopElimination, Eqv87FullOuterCountScaling) {
  Table e1 = KeyedLeft();
  Table e2 = RightSide();
  std::vector<ExecAggregate> f = {
      ExecAggregate::Simple("c", AggKind::kCountStar),
      ExecAggregate::Simple("s1", AggKind::kSum, "a1")};
  Table reference = GroupBy(FullOuterJoin(e1, e2, Pred()), {"g1", "j1"}, f);

  Table grouped = GroupBy(e2, {"j2"},
                          {ExecAggregate::Simple("c2", AggKind::kCountStar)});
  DefaultVector defaults = {{"c2", I(1)}};
  Table joined =
      FullOuterJoin(e1, grouped, Pred(), DefaultVector{}, defaults);
  // Right-orphan rows have g1/j1 NULL: they form ONE group under
  // NULL-equals-NULL... but only if at most one such row exists. Here the
  // grouped right side produces a single unmatched j2 group (j2 = 9), so
  // the single-row-group precondition of Eqv. 42 still holds and the map
  // remains valid.
  std::vector<MapExpr> exprs;
  MapExpr c;
  c.output = "c";
  c.kind = MapExpr::Kind::kCountProduct;
  c.counts = {"c2"};
  exprs.push_back(c);
  MapExpr s1;
  s1.output = "s1";
  s1.kind = MapExpr::Kind::kMulCounts;
  s1.arg = "a1";
  s1.counts = {"c2"};
  exprs.push_back(s1);
  Table mapped = Project(Map(joined, exprs), {"g1", "j1", "c", "s1"});
  EXPECT_TRUE(Table::BagEquals(reference, mapped))
      << reference.ToString() << mapped.ToString();
}

// Eqv. 58-style (F pushed entirely, no counts needed): with G containing
// the key, Γ_{G+;F}(e1) E e2 followed by projection equals the lazy side
// when F is the left side's own aggregate.
TEST(TopElimination, Eqv58GroupLeftThenProject) {
  Table e1 = KeyedLeft();
  Table e2 = RightSide();
  // F = min(a1): left-only, duplicate agnostic.
  std::vector<ExecAggregate> f = {
      ExecAggregate::Simple("m", AggKind::kMin, "a1")};
  Table reference = GroupBy(LeftOuterJoin(e1, e2, Pred()), {"g1", "j1"}, f);

  // Γ_{g1,j1;F}(e1): groups are single rows (j1 is a key), then the join
  // may duplicate them — but G = {g1, j1} ⊇ key, so distinct projection
  // restores single rows per group.
  Table grouped = GroupBy(e1, {"g1", "j1"},
                          {ExecAggregate::Simple("m", AggKind::kMin, "a1")});
  Table joined = LeftOuterJoin(grouped, e2, Pred());
  Table projected = DistinctProject(joined, {"g1", "j1", "m"});
  EXPECT_TRUE(Table::BagEquals(reference, projected))
      << reference.ToString() << projected.ToString();
}

}  // namespace
}  // namespace eadp
