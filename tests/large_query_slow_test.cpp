// Broad, exec-backed validation of the large-query subsystem — the deep
// sweeps behind large_query_test's smoke coverage. Registered under the
// ctest label "slow": tier-1 stays fast, CI runs this suite in its own
// timeout-guarded job (.github/workflows/ci.yml).
//
// The master property, extended to the new strategies: every plan kGoo and
// kIdp produce computes exactly the canonical result — and therefore the
// kDphyp baseline's rows — on randomized data. Eager-aggregation placement
// differs wildly between the strategies (that is the point), so row-level
// agreement exercises the whole ⊗ adjustment machinery on stitched plans.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "plangen/large_query.h"
#include "plangen/plan_validator.h"
#include "plangen/plangen.h"
#include "queries/data_generator.h"
#include "queries/query_generator.h"
#include "tests/test_util.h"

namespace eadp {
namespace {

std::vector<QueryTopology> StructuredTopologies() {
  return {QueryTopology::kChain, QueryTopology::kStar, QueryTopology::kCycle,
          QueryTopology::kClique};
}

class MixedOperatorSweep : public ::testing::TestWithParam<int> {};

TEST_P(MixedOperatorSweep, StrategiesMatchBaselineAndCanonicalRows) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  GeneratorOptions gen;
  gen.num_relations = 3 + static_cast<int>(seed % 4);  // 3..6
  Query query = GenerateRandomQuery(gen, seed);
  Database db = GenerateDatabase(query, seed * 31 + 5);

  OptimizerOptions options;
  options.algorithm = Algorithm::kDphyp;
  OptimizeResult baseline = Optimize(query, options);
  ASSERT_NE(baseline.plan, nullptr);
  Table baseline_rows = ExecutePlan(baseline.plan, query, db);

  for (Algorithm a : {Algorithm::kGoo, Algorithm::kIdp}) {
    options.algorithm = a;
    OptimizeResult r = Optimize(query, options);
    if (a == Algorithm::kIdp && r.plan == nullptr) continue;
    ASSERT_NE(r.plan, nullptr) << AlgorithmName(a);
    EXPECT_TRUE(ValidatePlan(r.plan, query).empty()) << AlgorithmName(a);
    std::string message;
    EXPECT_TRUE(PlanMatchesCanonical(r.plan, query, db, &message))
        << AlgorithmName(a) << " vs canonical on seed " << seed << "\n"
        << message;
    Table got = ExecutePlan(r.plan, query, db);
    EXPECT_TRUE(Table::BagEquals(got, baseline_rows))
        << AlgorithmName(a) << " vs kDphyp on seed " << seed << "\n"
        << r.plan->ToString(query.catalog());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MixedOperatorSweep, ::testing::Range(0, 60));

class TopologyExecSweep : public ::testing::TestWithParam<int> {};

TEST_P(TopologyExecSweep, StructuredTopologiesComputeCanonicalRows) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  for (QueryTopology t : StructuredTopologies()) {
    for (int n : {4, 6, 8}) {
      GeneratorOptions gen;
      gen.topology = t;
      gen.num_relations = n;
      Query query = GenerateRandomQuery(gen, seed);
      Database db = GenerateDatabase(query, seed * 17 + 3);
      for (Algorithm a :
           {Algorithm::kGoo, Algorithm::kIdp, Algorithm::kEaPrune}) {
        OptimizerOptions options;
        options.algorithm = a;
        OptimizeResult r = Optimize(query, options);
        if (a == Algorithm::kIdp && r.plan == nullptr) continue;
        ASSERT_NE(r.plan, nullptr)
            << AlgorithmName(a) << " " << TopologyName(t) << " n=" << n;
        std::string message;
        EXPECT_TRUE(PlanMatchesCanonical(r.plan, query, db, &message))
            << AlgorithmName(a) << " " << TopologyName(t) << " n=" << n
            << " seed " << seed << "\n"
            << message;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopologyExecSweep, ::testing::Range(0, 10));

TEST(LargeQuerySlowDifferential, DeepSeededRatioSweep) {
  // The wider, deeper version of the tier-1 differential test: more seeds
  // and n up to 10, where the exact optimum is still computable but kIdp
  // stitches across several subproblems.
  //
  // Three ratios against the exact optimum:
  //   * the facade in large-query mode (exact threshold forced to 0) —
  //     the production-relevant quality, tightly bounded;
  //   * kGoo alone — tightly bounded;
  //   * kIdp alone — logged, loosely bounded: on cycles the bounded
  //     subproblem optimizes the open arc without seeing the closing
  //     edge, which can cost ~50x (exactly the case the facade's min()
  //     over both strategies exists for; see DESIGN.md §8).
  double worst_idp = 1, worst_goo = 1, worst_facade = 1;
  for (QueryTopology t : StructuredTopologies()) {
    for (int n = 2; n <= 10; ++n) {
      for (uint64_t seed = 0; seed < 10; ++seed) {
        GeneratorOptions gen;
        gen.topology = t;
        gen.num_relations = n;
        Query query = GenerateRandomQuery(gen, seed);
        OptimizerOptions options;
        OptimizeResult exact = Optimize(query, options);
        OptimizeResult adaptive = OptimizeAdaptive(query, options);
        ASSERT_NE(exact.plan, nullptr);
        ASSERT_NE(adaptive.plan, nullptr);
        EXPECT_EQ(adaptive.plan->cost, exact.plan->cost);
        double optimum = exact.plan->cost;
        if (optimum <= 0) continue;

        OptimizerOptions forced = options;
        forced.adaptive_exact_relations = 0;
        OptimizeResult facade = OptimizeAdaptive(query, forced);
        ASSERT_NE(facade.plan, nullptr);
        worst_facade = std::max(worst_facade, facade.plan->cost / optimum);

        options.algorithm = Algorithm::kGoo;
        OptimizeResult goo = Optimize(query, options);
        ASSERT_NE(goo.plan, nullptr);
        worst_goo = std::max(worst_goo, goo.plan->cost / optimum);
        options.algorithm = Algorithm::kIdp;
        OptimizeResult idp = Optimize(query, options);
        if (idp.plan != nullptr) {
          worst_idp = std::max(worst_idp, idp.plan->cost / optimum);
        }
      }
    }
  }
  std::printf("[deep sweep] worst facade/optimum = %.3f, worst kGoo/optimum "
              "= %.3f, worst kIdp/optimum = %.3f\n",
              worst_facade, worst_goo, worst_idp);
  EXPECT_LE(worst_facade, 6.0);
  EXPECT_LE(worst_goo, 6.0);
  EXPECT_LE(worst_idp, 100.0);
}

TEST(LargeQuerySlowScale, RepeatedHundredRelationRunsStayValid) {
  // Several seeds per topology at n in {30, 60, 100}: strategies keep
  // producing validator-clean plans as the stitching depth grows.
  for (QueryTopology t : StructuredTopologies()) {
    for (int n : {30, 60, 100}) {
      for (uint64_t seed = 0; seed < 3; ++seed) {
        GeneratorOptions gen;
        gen.topology = t;
        gen.num_relations = n;
        Query query = GenerateRandomQuery(gen, seed);
        OptimizeResult adaptive = OptimizeAdaptive(query, OptimizerOptions{});
        ASSERT_NE(adaptive.plan, nullptr) << TopologyName(t) << " n=" << n;
        EXPECT_TRUE(ValidatePlan(adaptive.plan, query).empty())
            << TopologyName(t) << " n=" << n << " seed=" << seed;
        EXPECT_TRUE(std::isfinite(adaptive.plan->cost));
      }
    }
  }
}

}  // namespace
}  // namespace eadp
