#include "plangen/plan_explain.h"

#include <gtest/gtest.h>

#include "common/strings.h"
#include "plangen/plangen.h"
#include "queries/tpch.h"

namespace eadp {
namespace {

OptimizeResult OptimizeEx() {
  Query q = MakeTpchEx();
  OptimizerOptions opt;
  opt.algorithm = Algorithm::kEaPrune;
  return Optimize(q, opt);
}

TEST(PlanExplain, DotContainsEveryNodeAndEdges) {
  Query q = MakeTpchEx();
  OptimizerOptions opt;
  opt.algorithm = Algorithm::kEaPrune;
  OptimizeResult r = Optimize(q, opt);
  std::string dot = PlanToDot(r.plan, q.catalog());
  EXPECT_NE(dot.find("digraph plan"), std::string::npos);
  EXPECT_NE(dot.find("fouter"), std::string::npos);
  EXPECT_NE(dot.find("supplier"), std::string::npos);
  EXPECT_NE(dot.find("customer"), std::string::npos);
  // One node line per plan node.
  int node_count = r.plan->NodeCount();
  int lines = 0;
  for (size_t pos = 0; (pos = dot.find("[shape=box", pos)) != std::string::npos;
       ++pos) {
    ++lines;
  }
  EXPECT_EQ(lines, node_count);
  // Edges: every non-root node has exactly one parent.
  int edges = 0;
  for (size_t pos = 0; (pos = dot.find(" -> ", pos)) != std::string::npos;
       ++pos) {
    ++edges;
  }
  EXPECT_EQ(edges, node_count - 1);
}

TEST(PlanExplain, JsonIsBalancedAndContainsCosts) {
  Query q = MakeTpchEx();
  OptimizerOptions opt;
  opt.algorithm = Algorithm::kEaPrune;
  OptimizeResult r = Optimize(q, opt);
  std::string json = PlanToJson(r.plan, q.catalog());
  int depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_NE(json.find("\"cost\":"), std::string::npos);
  EXPECT_NE(json.find("\"cardinality\":"), std::string::npos);
  EXPECT_NE(json.find("\"children\":"), std::string::npos);
}

TEST(PlanExplain, NullPlan) {
  Catalog c;
  EXPECT_EQ(PlanToJson(nullptr, c), "null");
  EXPECT_NE(PlanToDot(nullptr, c).find("digraph"), std::string::npos);
}

TEST(PlanExplain, GroupNodesHighlighted) {
  OptimizeResult r = OptimizeEx();
  Query q = MakeTpchEx();
  std::string dot = PlanToDot(r.plan, q.catalog());
  // Ex pushes groupings: the dot output marks them.
  EXPECT_NE(dot.find("lightblue"), std::string::npos);
}

// Pins the stats JSON rendering: the DP hot-path counters (ccps seen,
// dominance prunes, worker count) are deterministic for a fixed query +
// options and must round-trip into the explain document exactly. The
// *_ms fields vary run to run, so the pin matches field presence and
// the counter values, not the full string.
TEST(PlanExplain, StatsJsonPinsHotPathCounters) {
  Query q = MakeTpchEx();
  OptimizerOptions opt;
  opt.algorithm = Algorithm::kEaPrune;
  OptimizeResult r = Optimize(q, opt);
  std::string json = OptimizeStatsToJson(r.stats);

  EXPECT_NE(json.find("\"algorithm\":\"EA-Prune\""), std::string::npos) << json;
  EXPECT_NE(json.find(StrFormat("\"ccp_count\":%llu",
                                static_cast<unsigned long long>(
                                    r.stats.ccp_count))),
            std::string::npos)
      << json;
  EXPECT_NE(json.find(StrFormat("\"plans_built\":%llu",
                                static_cast<unsigned long long>(
                                    r.stats.plans_built))),
            std::string::npos)
      << json;
  EXPECT_NE(json.find(StrFormat("\"pruned_candidates\":%llu",
                                static_cast<unsigned long long>(
                                    r.stats.pruned_candidates))),
            std::string::npos)
      << json;
  EXPECT_NE(json.find(StrFormat("\"pruned_existing\":%llu",
                                static_cast<unsigned long long>(
                                    r.stats.pruned_existing))),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"dp_workers\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dp_barrier_wait_ms\":0.000"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"optimize_ms\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"cache_hit\":false"), std::string::npos) << json;

  // Sequential and parallel runs of the same query must agree on every
  // counter; only dp_workers (and the wall-clock fields) may differ.
  OptimizerOptions par = opt;
  par.dp_threads = 4;
  OptimizeResult rp = Optimize(q, par);
  EXPECT_EQ(rp.stats.ccp_count, r.stats.ccp_count);
  EXPECT_EQ(rp.stats.plans_built, r.stats.plans_built);
  EXPECT_EQ(rp.stats.pruned_candidates, r.stats.pruned_candidates);
  EXPECT_EQ(rp.stats.pruned_existing, r.stats.pruned_existing);
  std::string par_json = OptimizeStatsToJson(rp.stats);
  EXPECT_NE(par_json.find("\"dp_workers\":4"), std::string::npos) << par_json;

  // The full explain document nests stats + plan and stays balanced.
  std::string doc = ExplainToJson(r, q.catalog());
  EXPECT_EQ(doc.find("{\"stats\":{"), 0u) << doc;
  EXPECT_NE(doc.find(",\"plan\":{"), std::string::npos) << doc;
  int depth = 0;
  for (char c : doc) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

}  // namespace
}  // namespace eadp
