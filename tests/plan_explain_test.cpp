#include "plangen/plan_explain.h"

#include <gtest/gtest.h>

#include "plangen/plangen.h"
#include "queries/tpch.h"

namespace eadp {
namespace {

OptimizeResult OptimizeEx() {
  Query q = MakeTpchEx();
  OptimizerOptions opt;
  opt.algorithm = Algorithm::kEaPrune;
  return Optimize(q, opt);
}

TEST(PlanExplain, DotContainsEveryNodeAndEdges) {
  Query q = MakeTpchEx();
  OptimizerOptions opt;
  opt.algorithm = Algorithm::kEaPrune;
  OptimizeResult r = Optimize(q, opt);
  std::string dot = PlanToDot(r.plan, q.catalog());
  EXPECT_NE(dot.find("digraph plan"), std::string::npos);
  EXPECT_NE(dot.find("fouter"), std::string::npos);
  EXPECT_NE(dot.find("supplier"), std::string::npos);
  EXPECT_NE(dot.find("customer"), std::string::npos);
  // One node line per plan node.
  int node_count = r.plan->NodeCount();
  int lines = 0;
  for (size_t pos = 0; (pos = dot.find("[shape=box", pos)) != std::string::npos;
       ++pos) {
    ++lines;
  }
  EXPECT_EQ(lines, node_count);
  // Edges: every non-root node has exactly one parent.
  int edges = 0;
  for (size_t pos = 0; (pos = dot.find(" -> ", pos)) != std::string::npos;
       ++pos) {
    ++edges;
  }
  EXPECT_EQ(edges, node_count - 1);
}

TEST(PlanExplain, JsonIsBalancedAndContainsCosts) {
  Query q = MakeTpchEx();
  OptimizerOptions opt;
  opt.algorithm = Algorithm::kEaPrune;
  OptimizeResult r = Optimize(q, opt);
  std::string json = PlanToJson(r.plan, q.catalog());
  int depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_NE(json.find("\"cost\":"), std::string::npos);
  EXPECT_NE(json.find("\"cardinality\":"), std::string::npos);
  EXPECT_NE(json.find("\"children\":"), std::string::npos);
}

TEST(PlanExplain, NullPlan) {
  Catalog c;
  EXPECT_EQ(PlanToJson(nullptr, c), "null");
  EXPECT_NE(PlanToDot(nullptr, c).find("digraph"), std::string::npos);
}

TEST(PlanExplain, GroupNodesHighlighted) {
  OptimizeResult r = OptimizeEx();
  Query q = MakeTpchEx();
  std::string dot = PlanToDot(r.plan, q.catalog());
  // Ex pushes groupings: the dot output marks them.
  EXPECT_NE(dot.find("lightblue"), std::string::npos);
}

}  // namespace
}  // namespace eadp
