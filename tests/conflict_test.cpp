// Conflict detector: applicability of reorderings around non-inner joins.

#include "conflict/conflict_detector.h"

#include <gtest/gtest.h>

#include "conflict/operator_properties.h"

namespace eadp {
namespace {

RelSet Set(std::initializer_list<int> xs) {
  RelSet s;
  for (int x : xs) s.Add(x);
  return s;
}

/// Builds a 3-relation left-deep query (R0 op0 R1) op1 R2 with predicates
/// R0.j = R1.j and R1.j = R2.j (op1's predicate between R1 and R2).
Query ThreeRelQuery(OpKind op0, OpKind op1) {
  Catalog catalog;
  std::vector<int> j(3);
  for (int r = 0; r < 3; ++r) {
    int rel = catalog.AddRelation("R" + std::to_string(r), 100);
    j[static_cast<size_t>(r)] =
        catalog.AddAttribute(rel, "R" + std::to_string(r) + ".j", 10);
  }
  JoinPredicate p01;
  p01.AddEquality(j[0], j[1]);
  auto lower = OpTreeNode::Binary(op0, OpTreeNode::Leaf(0), OpTreeNode::Leaf(1),
                                  p01, 0.1);
  JoinPredicate p12;
  p12.AddEquality(j[1], j[2]);
  auto root = OpTreeNode::Binary(op1, std::move(lower), OpTreeNode::Leaf(2),
                                 p12, 0.1);
  AttrSet g;
  g.Add(j[0]);
  AggregateVector aggs;
  AggregateFunction cnt;
  cnt.output = "cnt";
  cnt.kind = AggKind::kCountStar;
  aggs.push_back(cnt);
  return Query::FromTree(std::move(catalog), std::move(root), g, aggs);
}

TEST(OperatorProperties, InnerJoinFullyReorderable) {
  EXPECT_TRUE(OpAssoc(OpKind::kJoin, OpKind::kJoin));
  EXPECT_TRUE(OpLeftAsscom(OpKind::kJoin, OpKind::kJoin));
  EXPECT_TRUE(OpRightAsscom(OpKind::kJoin, OpKind::kJoin));
}

TEST(OperatorProperties, OuterJoinRestrictions) {
  EXPECT_FALSE(OpAssoc(OpKind::kLeftOuter, OpKind::kJoin));
  EXPECT_TRUE(OpAssoc(OpKind::kLeftOuter, OpKind::kLeftOuter));
  EXPECT_FALSE(OpAssoc(OpKind::kJoin, OpKind::kFullOuter));
  EXPECT_TRUE(OpAssoc(OpKind::kFullOuter, OpKind::kFullOuter));
  EXPECT_TRUE(OpLeftAsscom(OpKind::kFullOuter, OpKind::kFullOuter));
  EXPECT_TRUE(OpRightAsscom(OpKind::kFullOuter, OpKind::kFullOuter));
  EXPECT_FALSE(OpRightAsscom(OpKind::kJoin, OpKind::kLeftOuter));
}

TEST(ConflictDetector, InnerChainAllOrdersAllowed) {
  Query q = ThreeRelQuery(OpKind::kJoin, OpKind::kJoin);
  ConflictDetector cd(q);
  // op 1 joins R1-R2: applicable before the R0-R1 join.
  EXPECT_TRUE(cd.Applicable(1, Set({1}), Set({2})));
  EXPECT_TRUE(cd.Applicable(1, Set({0, 1}), Set({2})));
  EXPECT_TRUE(cd.Applicable(0, Set({0}), Set({1})));
}

TEST(ConflictDetector, OuterJoinBelowJoinBlocksEarlyJoin) {
  // (R0 E R1) B R2: ¬assoc(E, B) forbids joining R1 with R2 before R0 is
  // present (the padded R1 side must not be filtered early).
  Query q = ThreeRelQuery(OpKind::kLeftOuter, OpKind::kJoin);
  ConflictDetector cd(q);
  EXPECT_FALSE(cd.Applicable(1, Set({1}), Set({2})));
  EXPECT_TRUE(cd.Applicable(1, Set({0, 1}), Set({2})));
}

TEST(ConflictDetector, JoinBelowFullOuterBlocksEarlyOuter) {
  // (R0 B R1) K R2: ¬assoc(B, K) forbids the full outerjoin against R1
  // alone.
  Query q = ThreeRelQuery(OpKind::kJoin, OpKind::kFullOuter);
  ConflictDetector cd(q);
  EXPECT_FALSE(cd.Applicable(1, Set({1}), Set({2})));
  EXPECT_TRUE(cd.Applicable(1, Set({0, 1}), Set({2})));
  // Applicable is orientation-strict (the operator's original left SES must
  // be within the first argument); commutativity is the plan builder's job.
  EXPECT_FALSE(cd.Applicable(1, Set({2}), Set({1})));
  EXPECT_FALSE(cd.Applicable(1, Set({2}), Set({0, 1})));
}

TEST(ConflictDetector, SesOrientationMatters) {
  Query q = ThreeRelQuery(OpKind::kJoin, OpKind::kLeftOuter);
  ConflictDetector cd(q);
  // op 1 is R0R1 E R2 with predicate R1-R2: left SES {1} must be within the
  // left argument.
  EXPECT_TRUE(cd.Applicable(1, Set({0, 1}), Set({2})));
  EXPECT_FALSE(cd.Applicable(1, Set({2}), Set({0, 1})));
}

TEST(ConflictDetector, HypergraphEdgesMatchSes) {
  Query q = ThreeRelQuery(OpKind::kLeftOuter, OpKind::kJoin);
  ConflictDetector cd(q);
  const Hypergraph& g = cd.hypergraph();
  ASSERT_EQ(g.edges().size(), 2u);
  EXPECT_EQ(g.edges()[0].left, Set({0}));
  EXPECT_EQ(g.edges()[0].right, Set({1}));
  EXPECT_EQ(g.edges()[1].left, Set({1}));
  EXPECT_EQ(g.edges()[1].right, Set({2}));
}

TEST(ConflictDetector, OriginalTreeAlwaysConstructible) {
  // Whatever the operators, applying them in original nesting order must
  // pass the applicability test.
  for (OpKind op0 : {OpKind::kJoin, OpKind::kLeftOuter, OpKind::kFullOuter,
                     OpKind::kLeftSemi, OpKind::kLeftAnti}) {
    for (OpKind op1 : {OpKind::kJoin, OpKind::kLeftOuter,
                       OpKind::kFullOuter, OpKind::kLeftSemi}) {
      Query q = ThreeRelQuery(op0, op1);
      ConflictDetector cd(q);
      EXPECT_TRUE(cd.Applicable(0, Set({0}), Set({1})))
          << OpKindName(op0) << "/" << OpKindName(op1);
      EXPECT_TRUE(cd.Applicable(1, Set({0, 1}), Set({2})))
          << OpKindName(op0) << "/" << OpKindName(op1);
    }
  }
}

TEST(ConflictDetector, GroupJoinSesIncludesAggregateArgs) {
  // A groupjoin whose aggregate reads R2.v: SES must include R2 even if the
  // predicate only references R1... construct (R0 Z (R1 B R2)).
  Catalog catalog;
  int j0 = catalog.AddAttribute(catalog.AddRelation("R0", 10), "R0.j", 5);
  int r1 = catalog.AddRelation("R1", 10);
  int j1 = catalog.AddAttribute(r1, "R1.j", 5);
  int r2 = catalog.AddRelation("R2", 10);
  int j2 = catalog.AddAttribute(r2, "R2.j", 5);
  int v2 = catalog.AddAttribute(r2, "R2.v", 5);

  JoinPredicate p12;
  p12.AddEquality(j1, j2);
  auto right = OpTreeNode::Binary(OpKind::kJoin, OpTreeNode::Leaf(1),
                                  OpTreeNode::Leaf(2), p12, 0.2);
  JoinPredicate p01;
  p01.AddEquality(j0, j1);
  auto root = OpTreeNode::Binary(OpKind::kGroupJoin, OpTreeNode::Leaf(0),
                                 std::move(right), p01, 0.2);
  AggregateFunction sum;
  sum.kind = AggKind::kSum;
  sum.arg = v2;
  root->groupjoin_aggs.push_back(sum);

  AttrSet g;
  g.Add(j0);
  Query q = Query::FromTree(std::move(catalog), std::move(root), g, {});
  ConflictDetector cd(q);
  EXPECT_TRUE(cd.conflicts(1).ses.Contains(2));
  // The groupjoin cannot be applied between R0 and R1 alone: its aggregate
  // needs R2.
  EXPECT_FALSE(cd.Applicable(1, Set({0}), Set({1})));
  EXPECT_TRUE(cd.Applicable(1, Set({0}), Set({1, 2})));
}

}  // namespace
}  // namespace eadp
