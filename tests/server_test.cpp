// The optimizer-as-a-service stack (server/): frame codec totality, the
// hostile-frame battery (a malformed frame must never kill the connection
// loop, except the oversized case where closing IS the contract), session
// isolation under divergent statistics, deterministic backpressure at the
// admission bound, and the fork-based round trip pinning that a plan
// served over the wire is bit-identical to an in-process run.

#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <netinet/in.h>

#include <chrono>
#include <cstring>
#include <future>
#include <string>
#include <thread>

#include "gtest/gtest.h"
#include "plangen/plan_serde.h"
#include "queries/mutation.h"
#include "server/client.h"
#include "server/load_client.h"
#include "server/optimizer_service.h"
#include "server/plan_server.h"
#include "server/protocol.h"

#if defined(__SANITIZE_THREAD__)
#define EADP_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define EADP_TSAN 1
#endif
#endif

namespace eadp {
namespace {

// ---------------------------------------------------------------------------
// Frame codec (pure, no sockets).
// ---------------------------------------------------------------------------

TEST(ServerProtocol, FrameRoundTripAndStreamSync) {
  std::string buf;
  AppendFrame(&buf, Opcode::kOptimize, "payload-one");
  AppendFrame(&buf, Opcode::kStats, "");

  Frame frame;
  size_t consumed = 0;
  ASSERT_EQ(DecodeFrame(buf, kMaxFrameBytes, &frame, &consumed),
            DecodeStatus::kOk);
  EXPECT_EQ(frame.opcode, static_cast<uint8_t>(Opcode::kOptimize));
  EXPECT_EQ(frame.payload, "payload-one");
  std::string rest = buf.substr(consumed);
  ASSERT_EQ(DecodeFrame(rest, kMaxFrameBytes, &frame, &consumed),
            DecodeStatus::kOk);
  EXPECT_EQ(frame.opcode, static_cast<uint8_t>(Opcode::kStats));
  EXPECT_TRUE(frame.payload.empty());
  EXPECT_EQ(consumed, rest.size());
}

TEST(ServerProtocol, DecodePrefixNeedsMore) {
  std::string buf;
  AppendFrame(&buf, Opcode::kOk, "abcdef");
  Frame frame;
  size_t consumed = 99;
  for (size_t n = 0; n < buf.size(); ++n) {
    EXPECT_EQ(DecodeFrame(std::string_view(buf).substr(0, n), kMaxFrameBytes,
                          &frame, &consumed),
              DecodeStatus::kNeedMore)
        << "prefix length " << n;
    EXPECT_EQ(consumed, 0u);
  }
}

TEST(ServerProtocol, TooShortFrameSkipsAndStaysInSync) {
  // len = 2 < header size 5: the frame is garbage, but its extent is
  // known, so the decoder must skip exactly past it.
  std::string buf;
  PutFixed32(&buf, 2);
  buf.push_back('x');
  buf.push_back('y');
  AppendFrame(&buf, Opcode::kOk, "next");

  Frame frame;
  size_t consumed = 0;
  ASSERT_EQ(DecodeFrame(buf, kMaxFrameBytes, &frame, &consumed),
            DecodeStatus::kTooShort);
  ASSERT_EQ(consumed, 4u + 2u);
  ASSERT_EQ(DecodeFrame(std::string_view(buf).substr(consumed),
                        kMaxFrameBytes, &frame, &consumed),
            DecodeStatus::kOk);
  EXPECT_EQ(frame.payload, "next");
}

TEST(ServerProtocol, BadCrcSkipsAndStaysInSync) {
  std::string buf;
  AppendFrame(&buf, Opcode::kOptimize, "corrupt-me");
  buf.back() ^= 0x40;  // flip a payload bit
  size_t bad_len = buf.size();
  AppendFrame(&buf, Opcode::kOk, "clean");

  Frame frame;
  size_t consumed = 0;
  ASSERT_EQ(DecodeFrame(buf, kMaxFrameBytes, &frame, &consumed),
            DecodeStatus::kBadCrc);
  ASSERT_EQ(consumed, bad_len);
  ASSERT_EQ(DecodeFrame(std::string_view(buf).substr(consumed),
                        kMaxFrameBytes, &frame, &consumed),
            DecodeStatus::kOk);
  EXPECT_EQ(frame.payload, "clean");
}

TEST(ServerProtocol, OversizedFrameRefusesWithoutConsuming) {
  std::string buf;
  PutFixed32(&buf, static_cast<uint32_t>(kMaxFrameBytes) + 1);
  buf += "whatever";
  Frame frame;
  size_t consumed = 7;
  EXPECT_EQ(DecodeFrame(buf, kMaxFrameBytes, &frame, &consumed),
            DecodeStatus::kOversized);
  EXPECT_EQ(consumed, 0u);
}

TEST(ServerProtocol, KnobsRoundTrip) {
  PlannerKnobs knobs;
  knobs.algorithm = Algorithm::kH2;
  knobs.h2_tolerance = 1.5;
  knobs.builder.top_grouping_elimination = false;
  knobs.builder.track_fds = true;
  knobs.prune_without_keys = true;
  knobs.full_fd_dominance = true;
  knobs.adaptive_exact_relations = 9;
  knobs.idp_block_size = 4;
  knobs.idp_inner = Algorithm::kEaAll;
  knobs.goo_merge_budget = 7;
  knobs.dp_threads = 3;

  std::string bytes;
  AppendKnobs(&bytes, knobs);
  BinReader reader(bytes);
  PlannerKnobs decoded;
  ASSERT_TRUE(ReadKnobs(&reader, &decoded));
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(decoded.algorithm, knobs.algorithm);
  EXPECT_EQ(decoded.h2_tolerance, knobs.h2_tolerance);
  EXPECT_EQ(decoded.builder.top_grouping_elimination,
            knobs.builder.top_grouping_elimination);
  EXPECT_EQ(decoded.builder.track_fds, knobs.builder.track_fds);
  EXPECT_EQ(decoded.prune_without_keys, knobs.prune_without_keys);
  EXPECT_EQ(decoded.full_fd_dominance, knobs.full_fd_dominance);
  EXPECT_EQ(decoded.adaptive_exact_relations, knobs.adaptive_exact_relations);
  EXPECT_EQ(decoded.idp_block_size, knobs.idp_block_size);
  EXPECT_EQ(decoded.idp_inner, knobs.idp_inner);
  EXPECT_EQ(decoded.goo_merge_budget, knobs.goo_merge_budget);
  EXPECT_EQ(decoded.dp_threads, knobs.dp_threads);
}

TEST(ServerProtocol, KnobsRejectHostileValues) {
  auto reject = [](auto&& mutate) {
    PlannerKnobs knobs;
    std::string bytes;
    AppendKnobs(&bytes, knobs);
    mutate(&bytes);
    BinReader reader(bytes);
    PlannerKnobs sink;
    sink.dp_threads = -123;  // canary: untouched on failure
    EXPECT_FALSE(ReadKnobs(&reader, &sink));
    EXPECT_EQ(sink.dp_threads, -123);
  };
  reject([](std::string* b) { (*b)[0] = 99; });          // version skew
  reject([](std::string* b) { (*b)[1] = 42; });          // bad algorithm
  reject([](std::string* b) { b->pop_back(); });         // truncation
  // dp_threads = 65: parses but violates the server-side bound.
  reject([](std::string* b) { b->back() = static_cast<char>(65 << 1); });
}

TEST(ServerProtocol, RequestRoundTripsRejectTrailingGarbage) {
  OpenSessionRequest open{"sess", PlannerKnobs{}};
  std::string p = EncodeOpenSession(open);
  OpenSessionRequest open2;
  ASSERT_TRUE(DecodeOpenSession(p, &open2));
  EXPECT_EQ(open2.session, "sess");
  p.push_back('!');
  EXPECT_FALSE(DecodeOpenSession(p, &open2));

  SetStatsRequest stats{"s", "gen chain 4 default 1 :", 2, 4096.0};
  std::string sp = EncodeSetStats(stats);
  SetStatsRequest stats2;
  ASSERT_TRUE(DecodeSetStats(sp, &stats2));
  EXPECT_EQ(stats2.relation, 2u);
  EXPECT_EQ(stats2.cardinality, 4096.0);

  OptimizeBatchRequest batch{"s", {"line-a", "line-b"}};
  std::string bp = EncodeOptimizeBatch(batch);
  OptimizeBatchRequest batch2;
  ASSERT_TRUE(DecodeOptimizeBatch(bp, &batch2));
  ASSERT_EQ(batch2.spec_lines.size(), 2u);
  EXPECT_EQ(batch2.spec_lines[1], "line-b");

  std::string ep = EncodeError(ErrorCode::kBackpressure, "busy");
  ErrorResponse err;
  ASSERT_TRUE(DecodeError(ep, &err));
  EXPECT_EQ(err.code, ErrorCode::kBackpressure);
  EXPECT_EQ(err.message, "busy");
}

// ---------------------------------------------------------------------------
// Live-server fixture.
// ---------------------------------------------------------------------------

class PlanServerTest : public ::testing::Test {
 protected:
  void StartServer(const ServiceOptions& service_options) {
    service_ = std::make_unique<OptimizerService>(service_options);
    PlanServerOptions options;
    server_ = std::make_unique<PlanServer>(service_.get(), options);
    std::string error;
    ASSERT_TRUE(server_->Start(&error)) << error;
  }

  std::unique_ptr<ClientConnection> Connect() {
    std::string error;
    auto conn = ClientConnection::Connect("127.0.0.1", server_->port(),
                                          &error);
    EXPECT_NE(conn, nullptr) << error;
    return conn;
  }

  void TearDown() override {
    if (server_) server_->Shutdown();
  }

  std::unique_ptr<OptimizerService> service_;
  std::unique_ptr<PlanServer> server_;
};

ErrorCode ExpectErrorFrame(ClientConnection* conn) {
  Frame frame;
  DecodeStatus decode = DecodeStatus::kOk;
  if (conn->Recv(&frame, &decode) != ReadStatus::kOk ||
      decode != DecodeStatus::kOk ||
      frame.opcode != static_cast<uint8_t>(Opcode::kError)) {
    return ErrorCode::kNone;
  }
  ErrorResponse err;
  if (!DecodeError(frame.payload, &err)) return ErrorCode::kNone;
  return err.code;
}

TEST_F(PlanServerTest, HostileFramesSurviveTheConnection) {
  StartServer(ServiceOptions{});
  auto conn = Connect();
  ASSERT_NE(conn, nullptr);

  // Frame shorter than its header.
  std::string torn;
  PutFixed32(&torn, 3);
  torn += "abc";
  ASSERT_TRUE(conn->SendRaw(torn));
  EXPECT_EQ(ExpectErrorFrame(conn.get()), ErrorCode::kMalformedFrame);

  // Valid frame with a flipped payload bit.
  std::string corrupt;
  AppendFrame(&corrupt, Opcode::kOptimize, "gen chain 4 default 1 :");
  corrupt.back() ^= 0x01;
  ASSERT_TRUE(conn->SendRaw(corrupt));
  EXPECT_EQ(ExpectErrorFrame(conn.get()), ErrorCode::kBadCrc);

  // Unknown opcode, valid CRC.
  std::string unknown;
  AppendFrame(&unknown, static_cast<Opcode>(0x42), "???");
  ASSERT_TRUE(conn->SendRaw(unknown));
  EXPECT_EQ(ExpectErrorFrame(conn.get()), ErrorCode::kBadOpcode);

  // Undecodable payload under a valid request opcode.
  std::string bad_payload;
  AppendFrame(&bad_payload, Opcode::kOpenSession, "\xff\xff\xff");
  ASSERT_TRUE(conn->SendRaw(bad_payload));
  EXPECT_EQ(ExpectErrorFrame(conn.get()), ErrorCode::kBadRequest);

  // The SAME connection still serves a well-formed exchange.
  ErrorResponse err;
  ASSERT_TRUE(conn->OpenSession("survivor", PlannerKnobs{}, &err))
      << err.message;
  OptimizeResult result;
  ASSERT_TRUE(conn->Optimize("survivor", "gen chain 5 default 7 :", &result,
                             nullptr, &err))
      << err.message;
  EXPECT_NE(result.plan, nullptr);
}

TEST_F(PlanServerTest, OversizedFrameClosesAfterError) {
  StartServer(ServiceOptions{});
  auto conn = Connect();
  ASSERT_NE(conn, nullptr);

  std::string huge;
  PutFixed32(&huge, static_cast<uint32_t>(kMaxFrameBytes) + 1);
  ASSERT_TRUE(conn->SendRaw(huge));
  EXPECT_EQ(ExpectErrorFrame(conn.get()), ErrorCode::kOversized);

  Frame frame;
  DecodeStatus decode = DecodeStatus::kOk;
  EXPECT_EQ(conn->Recv(&frame, &decode), ReadStatus::kEof);
}

TEST_F(PlanServerTest, SessionsIsolateDivergentStatistics) {
  StartServer(ServiceOptions{});
  auto conn = Connect();
  ASSERT_NE(conn, nullptr);
  const std::string line = "gen chain 6 default 11 :";

  ErrorResponse err;
  ASSERT_TRUE(conn->OpenSession("a", PlannerKnobs{}, &err));
  ASSERT_TRUE(conn->OpenSession("b", PlannerKnobs{}, &err));

  OptimizeResult a1, b1;
  ASSERT_TRUE(conn->Optimize("a", line, &a1, nullptr, &err));
  ASSERT_TRUE(conn->Optimize("b", line, &b1, nullptr, &err));
  ASSERT_NE(a1.plan, nullptr);
  ASSERT_NE(b1.plan, nullptr);
  // Identical catalogs: sharing one cache entry is correct, costs agree.
  EXPECT_EQ(a1.plan->cost, b1.plan->cost);

  // Drift session a's statistics only.
  SetStatsRequest drift{"a", line, 0, 1000000.0};
  ASSERT_TRUE(conn->SetStats(drift, &err)) << err.message;

  OptimizeResult a2, b2;
  std::string a2_stats;
  ASSERT_TRUE(conn->Optimize("a", line, &a2, &a2_stats, &err));
  ASSERT_TRUE(conn->Optimize("b", line, &b2, nullptr, &err));
  ASSERT_NE(a2.plan, nullptr);
  ASSERT_NE(b2.plan, nullptr);
  // a re-planned under the drifted overlay (no stale cross-serve)...
  EXPECT_EQ(a2_stats.find("\"cache_hit\":true"), std::string::npos)
      << a2_stats;
  EXPECT_NE(a2.plan->cost, a1.plan->cost);
  // ...while b keeps being served its original statistics' plan.
  EXPECT_EQ(b2.plan->cost, b1.plan->cost);

  // And b's cost matches a local uncached reference run bit for bit.
  CorpusEntry entry;
  std::string perr;
  ASSERT_TRUE(ParseCorpusEntry(line, &entry, &perr)) << perr;
  OptimizeResult reference =
      OptimizeAdaptiveUncached(MaterializeSeed(entry.seed),
                               OptimizerOptions{});
  ASSERT_NE(reference.plan, nullptr);
  EXPECT_EQ(b2.plan->cost, reference.plan->cost);
}

TEST_F(PlanServerTest, BadSpecLinesAreRequestErrors) {
  StartServer(ServiceOptions{});
  auto conn = Connect();
  ASSERT_NE(conn, nullptr);
  ErrorResponse err;
  ASSERT_TRUE(conn->OpenSession("s", PlannerKnobs{}, &err));

  EXPECT_FALSE(conn->Optimize("s", "gen gibberish 5 default 1 :", nullptr,
                              nullptr, &err));
  EXPECT_EQ(err.code, ErrorCode::kBadRequest);
  // num_relations beyond the service bound.
  EXPECT_FALSE(conn->Optimize("s", "gen chain 5000 default 1 :", nullptr,
                              nullptr, &err));
  EXPECT_EQ(err.code, ErrorCode::kBadRequest);
  // A mutation step that cannot apply must be an error, not an abort.
  EXPECT_FALSE(conn->Optimize("s", "gen chain 4 default 1 : drop-groupby:1",
                              nullptr, nullptr, &err));
  EXPECT_EQ(err.code, ErrorCode::kBadRequest);
  // Unknown session.
  EXPECT_FALSE(conn->Optimize("ghost", "gen chain 4 default 1 :", nullptr,
                              nullptr, &err));
  EXPECT_EQ(err.code, ErrorCode::kNoSuchSession);
  // The connection survived all of it.
  ASSERT_TRUE(conn->Optimize("s", "gen chain 4 default 1 :", nullptr,
                             nullptr, &err))
      << err.message;
}

TEST_F(PlanServerTest, BackpressureAtTheAdmissionBound) {
  ServiceOptions options;
  options.pool_threads = 1;
  options.max_inflight = 1;
  StartServer(options);

  // Occupy the single pool slot with a sentinel so the admitted request
  // below is provably still in flight when the second one arrives.
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  auto sentinel = service_->pool()->Submit([gate] { gate.wait(); });

  auto conn_a = Connect();
  auto conn_b = Connect();
  ASSERT_NE(conn_a, nullptr);
  ASSERT_NE(conn_b, nullptr);
  ErrorResponse err;
  ASSERT_TRUE(conn_a->OpenSession("a", PlannerKnobs{}, &err));
  ASSERT_TRUE(conn_b->OpenSession("b", PlannerKnobs{}, &err));

  OptimizeRequest req{"a", "gen chain 5 default 3 :"};
  ASSERT_TRUE(conn_a->Send(Opcode::kOptimize, EncodeOptimize(req)));
  // The request admits, submits behind the sentinel, and waits.
  while (service_->inflight() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  EXPECT_FALSE(conn_b->Optimize("b", "gen chain 5 default 4 :", nullptr,
                                nullptr, &err));
  EXPECT_EQ(err.code, ErrorCode::kBackpressure);

  release.set_value();
  sentinel.get();
  // The admitted request completes normally once the pool frees up.
  Frame frame;
  DecodeStatus decode = DecodeStatus::kOk;
  ASSERT_EQ(conn_a->Recv(&frame, &decode), ReadStatus::kOk);
  EXPECT_EQ(frame.opcode, static_cast<uint8_t>(Opcode::kPlanBlob));
  ASSERT_EQ(conn_a->Recv(&frame, &decode), ReadStatus::kOk);
  EXPECT_EQ(frame.opcode, static_cast<uint8_t>(Opcode::kStatsJson));
  // And the freed slot admits session b again.
  EXPECT_TRUE(conn_b->Optimize("b", "gen chain 5 default 4 :", nullptr,
                               nullptr, &err))
      << err.message;
}

TEST_F(PlanServerTest, BatchStreamsPairsInOrder) {
  StartServer(ServiceOptions{});
  auto conn = Connect();
  ASSERT_NE(conn, nullptr);
  ErrorResponse err;
  ASSERT_TRUE(conn->OpenSession("s", PlannerKnobs{}, &err));

  OptimizeBatchRequest req;
  req.session = "s";
  req.spec_lines = {"gen chain 4 default 1 :", "gen not-a-topology 4 x 1 :",
                    "gen star 5 default 2 :"};
  ASSERT_TRUE(conn->Send(Opcode::kOptimizeBatch, EncodeOptimizeBatch(req)));

  // Line 1: pair. Line 2: error frame. Line 3: pair. Then kBatchDone(2).
  Frame frame;
  DecodeStatus decode = DecodeStatus::kOk;
  ASSERT_EQ(conn->Recv(&frame, &decode), ReadStatus::kOk);
  EXPECT_EQ(frame.opcode, static_cast<uint8_t>(Opcode::kPlanBlob));
  ASSERT_EQ(conn->Recv(&frame, &decode), ReadStatus::kOk);
  EXPECT_EQ(frame.opcode, static_cast<uint8_t>(Opcode::kStatsJson));
  ASSERT_EQ(conn->Recv(&frame, &decode), ReadStatus::kOk);
  EXPECT_EQ(frame.opcode, static_cast<uint8_t>(Opcode::kError));
  ASSERT_EQ(conn->Recv(&frame, &decode), ReadStatus::kOk);
  EXPECT_EQ(frame.opcode, static_cast<uint8_t>(Opcode::kPlanBlob));
  ASSERT_EQ(conn->Recv(&frame, &decode), ReadStatus::kOk);
  EXPECT_EQ(frame.opcode, static_cast<uint8_t>(Opcode::kStatsJson));
  ASSERT_EQ(conn->Recv(&frame, &decode), ReadStatus::kOk);
  ASSERT_EQ(frame.opcode, static_cast<uint8_t>(Opcode::kBatchDone));
  BinReader r(frame.payload);
  EXPECT_EQ(r.ReadVarint64(), 2u);
  EXPECT_TRUE(r.AtEnd());
}

TEST_F(PlanServerTest, StatsAndInvalidateIntrospection) {
  StartServer(ServiceOptions{});
  auto conn = Connect();
  ASSERT_NE(conn, nullptr);
  ErrorResponse err;
  ASSERT_TRUE(conn->OpenSession("s", PlannerKnobs{}, &err));
  ASSERT_TRUE(
      conn->Optimize("s", "gen chain 5 default 3 :", nullptr, nullptr, &err));

  std::string global;
  ASSERT_TRUE(conn->StatsJson("", &global, &err));
  EXPECT_NE(global.find("\"sessions\":1"), std::string::npos) << global;
  EXPECT_NE(global.find("\"cache\":"), std::string::npos) << global;

  std::string per_session;
  ASSERT_TRUE(conn->StatsJson("s", &per_session, &err));
  EXPECT_NE(per_session.find("\"optimizes\":1"), std::string::npos)
      << per_session;

  ASSERT_TRUE(conn->InvalidateCache(&err));
  std::string warm_stats;
  ASSERT_TRUE(conn->Optimize("s", "gen chain 5 default 3 :", nullptr,
                             &warm_stats, &err));
  // The L1 entry is gone post-invalidation: this serve planned fresh.
  EXPECT_EQ(warm_stats.find("\"cache_tier\":1"), std::string::npos)
      << warm_stats;
}

// ---------------------------------------------------------------------------
// Round-trip bit-identity: a plan served over the wire re-encodes to the
// same bytes as an in-process run of the identical query and knobs. Under
// TSan the server runs in-process (fork + TSan do not mix); otherwise a
// genuinely separate server process serves the plans.
// ---------------------------------------------------------------------------

void ExpectServedPlansBitIdentical(int port) {
  std::string error;
  auto conn = ClientConnection::Connect("127.0.0.1", port, &error);
  ASSERT_NE(conn, nullptr) << error;
  ErrorResponse err;
  ASSERT_TRUE(conn->OpenSession("pin", PlannerKnobs{}, &err)) << err.message;

  const std::string lines[] = {
      "gen chain 6 default 11 :",
      "gen star 7 default 12 :",
      "gen random-tree 8 default 13 :",
      "gen cycle 6 inner 14 :",
      "tpch q3 :",
  };
  for (const std::string& line : lines) {
    SCOPED_TRACE(line);
    OptimizeResult served;
    ASSERT_TRUE(conn->Optimize("pin", line, &served, nullptr, &err))
        << err.message;

    CorpusEntry entry;
    std::string perr;
    ASSERT_TRUE(ParseCorpusEntry(line, &entry, &perr)) << perr;
    OptimizeResult local =
        OptimizeAdaptive(MaterializeSeed(entry.seed), OptimizerOptions{});

    // optimize_ms (and serve-path counters) legitimately differ; the
    // *plan* must not. Zero the stats on both sides and compare the full
    // deterministic encoding byte for byte.
    served.stats = OptimizeStats{};
    local.stats = OptimizeStats{};
    EXPECT_EQ(EncodePlan(served), EncodePlan(local));
  }
}

#if !defined(EADP_TSAN)
TEST(PlanServerRoundTrip, ForkedServerServesBitIdenticalPlans) {
  // Bind the listener in the parent so the kernel-chosen port is known
  // before the child exists; the child adopts the inherited fd.
  int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listen_fd, 8), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                          &len),
            0);
  int port = ntohs(addr.sin_port);

  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: build the whole service AFTER the fork (thread pools do not
    // survive fork) and serve until the parent's kShutdown frame.
    ServiceOptions service_options;
    service_options.pool_threads = 2;
    OptimizerService service(service_options);
    PlanServerOptions server_options;
    server_options.adopted_listen_fd = listen_fd;
    PlanServer server(&service, server_options);
    std::string error;
    if (!server.Listen(&error)) _exit(3);
    server.Serve();
    server.Shutdown();
    _exit(0);
  }

  ::close(listen_fd);
  ExpectServedPlansBitIdentical(port);

  std::string error;
  auto conn = ClientConnection::Connect("127.0.0.1", port, &error);
  ASSERT_NE(conn, nullptr) << error;
  ErrorResponse err;
  EXPECT_TRUE(conn->Shutdown(&err)) << err.message;

  int status = -1;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}
#else
TEST(PlanServerRoundTrip, InProcessServerServesBitIdenticalPlans) {
  OptimizerService service(ServiceOptions{});
  PlanServer server(&service, PlanServerOptions{});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  ExpectServedPlansBitIdentical(server.port());
  server.Shutdown();
}
#endif

// The load generator end to end, scaled down: concurrent Zipf sessions
// sustain a warm hit rate matching the in-process cache benchmarks and
// zero cost mismatches (the cross-session-serve detector).
TEST(PlanServerLoad, ConcurrentZipfSessionsHitWarmCache) {
  OptimizerService service(ServiceOptions{});
  PlanServer server(&service, PlanServerOptions{});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  LoadOptions options;
  options.port = server.port();
  options.connections = 4;
  options.queries_per_connection = 50;
  options.shapes = 12;
  bool ok = false;
  LoadReport report = RunLoad(options, &ok);
  server.Shutdown();

  ASSERT_TRUE(ok);
  EXPECT_EQ(report.errors, 0u);
  EXPECT_EQ(report.cost_mismatches, 0u);
  EXPECT_EQ(report.queries, 4u * 50u);
  EXPECT_GE(report.hit_rate, 0.95);
}

}  // namespace
}  // namespace eadp
