// The mutation fuzz driver (ctest label "fuzz"; exempt from tier-1
// wall-clock budgets).
//
//   * SweepAllStrategies — drives seeded mutation chains from generator
//     and TPC-H seeds, planning every mutant through the full oracle
//     stack of tests/fuzz_util.h (all strategies + plan validator +
//     exec-backed row equivalence + cache-warm path). Any failure is
//     minimized by replaying chain prefixes and emitted as a replayable
//     (seed, chain) corpus line — to stderr always, and into
//     $EADP_FUZZ_REPRO_DIR/*.corpus when set (CI uploads that directory
//     as an artifact).
//   * PlanCacheAdversarialStream — a 1000-query stream in which more than
//     half the queries are near-duplicate mutants of one another; every
//     cache hit must be cost-identical to a fresh plan and row-identical
//     to the canonical evaluation (zero cross-serving), with sane
//     aggregate hit-rate stats.
//   * ReplayFromEnv — replays one corpus line from $EADP_FUZZ_REPLAY
//     through the oracle stack (the reproducer loop of scripts/fuzz.sh).
//   * EmitCorpus — when $EADP_FUZZ_EMIT_CORPUS names a file, re-runs the
//     sweep and folds structurally distinct survivors into corpus-format
//     lines (the maintenance path for tests/corpus/).
//
// Budget: $EADP_FUZZ_MUTANTS when set; otherwise 5000 on optimized
// un-instrumented builds, scaled down under sanitizers and -O0 so the
// ASan/UBSan legs finish inside their CI slots while still sweeping every
// operator and seed kind. All randomness is seeded — two runs of the same
// binary fuzz identical mutants.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "plangen/plan_cache.h"
#include "queries/fingerprint.h"
#include "queries/mutation.h"
#include "tests/fuzz_util.h"

namespace eadp {
namespace {

int FuzzBudget() {
  if (const char* env = std::getenv("EADP_FUZZ_MUTANTS")) {
    return std::max(1, std::atoi(env));
  }
  if (kInstrumentedBuild) return 600;
  if (!kTimingPinned) return 1200;  // -O0 Debug legs
  return 5000;
}

/// The deterministic seed pool the sweep rotates through: every TPC-H
/// skeleton, the random-tree presets at several sizes, and every
/// structured topology (cliques kept small — kEaAll on a mutated clique
/// is the exponential worst case).
std::vector<FuzzSeed> FuzzSeedPool() {
  std::vector<FuzzSeed> pool;
  for (const char* name : {"ex", "q1", "q3", "q5", "q10", "q18"}) {
    FuzzSeed s;
    s.kind = "tpch";
    s.tpch = name;
    pool.push_back(s);
  }
  for (int n : {4, 5, 6, 7}) {
    for (const char* preset : {"default", "inner", "outer"}) {
      FuzzSeed s;
      s.kind = "gen";
      s.topology = QueryTopology::kRandomTree;
      s.num_relations = n;
      s.preset = preset;
      s.seed = static_cast<uint64_t>(n) * 131 + 7;
      pool.push_back(s);
    }
  }
  for (QueryTopology t : {QueryTopology::kChain, QueryTopology::kStar,
                          QueryTopology::kCycle, QueryTopology::kSnowflake}) {
    for (int n : {5, 7}) {
      FuzzSeed s;
      s.kind = "gen";
      s.topology = t;
      s.num_relations = n;
      s.seed = static_cast<uint64_t>(n) * 977 + 13;
      pool.push_back(s);
    }
  }
  {
    FuzzSeed s;
    s.kind = "gen";
    s.topology = QueryTopology::kClique;
    s.num_relations = 5;
    s.seed = 4242;
    pool.push_back(s);
  }
  for (QueryTopology t : {QueryTopology::kStar, QueryTopology::kSnowflake}) {
    FuzzSeed s;
    s.kind = "gen";
    s.topology = t;
    s.num_relations = 7;
    s.preset = "manyattr";
    s.seed = 5151;
    pool.push_back(s);
  }
  return pool;
}

/// Rotates the pool; generator seeds get fresh RNG seeds each lap so
/// successive laps fuzz fresh base queries.
FuzzSeed SeedAt(const std::vector<FuzzSeed>& pool, uint64_t round) {
  FuzzSeed seed = pool[round % pool.size()];
  if (seed.kind == "gen") seed.seed += 1000003 * (round / pool.size());
  return seed;
}

/// Minimizes a failing chain to its shortest failing prefix by replay
/// (each prefix is checked against a fresh, hermetic oracle).
CorpusEntry Minimize(const FuzzSeed& seed, const QuerySpec& seed_spec,
                     const std::vector<MutationStep>& chain,
                     std::vector<std::string>* failures) {
  CorpusEntry entry;
  entry.seed = seed;
  for (size_t len = 1; len <= chain.size(); ++len) {
    QuerySpec prefix = MutationEngine::Replay(seed_spec, chain, len);
    PlanCache cache;
    FuzzOracleOptions oracle;
    oracle.cache = &cache;
    FuzzOracleReport report = CheckMutant(prefix.ToQuery(), oracle);
    if (!report.failures.empty()) {
      entry.chain.assign(chain.begin(),
                         chain.begin() + static_cast<ptrdiff_t>(len));
      *failures = report.failures;
      return entry;
    }
  }
  // Only the full chain (under the shared, non-hermetic cache) failed.
  entry.chain = chain;
  return entry;
}

void EmitReproducer(const CorpusEntry& entry,
                    const std::vector<std::string>& failures, int index) {
  std::string repro = FormatReproducer(entry, failures);
  std::fprintf(stderr, "[mutation_fuzz] reproducer:\n%s", repro.c_str());
  if (const char* dir = std::getenv("EADP_FUZZ_REPRO_DIR")) {
    std::string path =
        StrFormat("%s/mutation_fuzz_repro_%d.corpus", dir, index);
    if (std::FILE* f = std::fopen(path.c_str(), "w")) {
      std::fputs(repro.c_str(), f);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "[mutation_fuzz] cannot write %s\n", path.c_str());
    }
  }
}

TEST(MutationFuzz, SweepAllStrategies) {
  const int budget = FuzzBudget();
  const std::vector<FuzzSeed> pool = FuzzSeedPool();
  PlanCache shared_cache(PlanCacheOptions{.capacity = 4096, .num_shards = 8});
  FuzzOracleOptions oracle;
  oracle.cache = &shared_cache;

  int checked = 0, rejected_rounds = 0, failures_found = 0;
  uint64_t strategies = 0;
  for (uint64_t round = 0; checked < budget; ++round) {
    FuzzSeed seed = SeedAt(pool, round);
    QuerySpec seed_spec = QuerySpec::FromQuery(MaterializeSeed(seed));
    MutationEngine engine(seed_spec.Clone(), 0x6d75746174ull + round);
    int chain_len = 1 + static_cast<int>(round % 4);
    bool stepped = false;
    for (int s = 0; s < chain_len && checked < budget; ++s) {
      if (!engine.Step()) break;
      stepped = true;
      FuzzOracleReport report = CheckMutant(engine.spec().ToQuery(), oracle);
      ++checked;
      strategies += static_cast<uint64_t>(report.strategies_run);
      if (!report.failures.empty()) {
        std::vector<std::string> min_failures = report.failures;
        CorpusEntry repro =
            Minimize(seed, seed_spec, engine.chain(), &min_failures);
        EmitReproducer(repro, min_failures, failures_found);
        ++failures_found;
        for (const std::string& f : min_failures) {
          ADD_FAILURE() << "mutant diverged (minimized to "
                        << repro.chain.size() << " step(s)): " << f;
        }
        if (failures_found >= 5) {
          GTEST_FAIL() << "stopping after 5 minimized divergences";
        }
      }
    }
    if (!stepped) ++rejected_rounds;
  }

  PlanCacheStats stats = shared_cache.Snapshot();
  std::fprintf(stderr,
               "[mutation_fuzz] %d mutants, %llu strategy runs, "
               "%d saturated rounds, cache hit rate %.2f "
               "(%llu hits / %llu misses)\n",
               checked, static_cast<unsigned long long>(strategies),
               rejected_rounds, stats.HitRate(),
               static_cast<unsigned long long>(stats.hits),
               static_cast<unsigned long long>(stats.misses));
  EXPECT_EQ(failures_found, 0);
  EXPECT_GE(checked, budget);
  // The warm-path oracle probes every mutant twice, so the shared cache
  // must have seen genuine hits; a zero hit rate means the warm path
  // never exercised the cache at all.
  EXPECT_GT(stats.hits, 0u);
}

TEST(MutationFuzz, PlanCacheAdversarialStream) {
  // 40 distinct mutants derived from 8 base seeds (1-2 mutation steps
  // each): structurally near-identical, fingerprint-distinct by the
  // mutation contract. The 1000-query stream rotates through them, so
  // ~96% of arrivals are repeats and every repeat's neighbors are
  // near-duplicates — the cross-serving worst case for a fingerprint
  // keyed cache.
  const std::vector<FuzzSeed> pool = FuzzSeedPool();
  std::vector<Query> mutants;
  std::set<std::string> canonicals;
  for (uint64_t round = 0; mutants.size() < 40; ++round) {
    FuzzSeed seed = SeedAt(pool, round * 3 + 1);
    QuerySpec spec = QuerySpec::FromQuery(MaterializeSeed(seed));
    MutationEngine engine(spec.Clone(), 0xcafe + round);
    int steps = 1 + static_cast<int>(round % 2);
    for (int s = 0; s < steps; ++s) engine.Step();
    if (engine.chain().empty()) continue;
    Query q = engine.spec().ToQuery();
    if (q.NumRelations() > 7) continue;  // keep the exec spot-checks cheap
    if (!canonicals.insert(FingerprintQuery(q).canonical).second) continue;
    mutants.push_back(std::move(q));
  }
  ASSERT_EQ(mutants.size(), 40u);

  PlanCache cache(PlanCacheOptions{.capacity = 256, .num_shards = 4});
  OptimizerOptions cached_opts;
  cached_opts.plan_cache = &cache;
  int hits = 0, cross_checked = 0;
  for (int i = 0; i < 1000; ++i) {
    const Query& q = mutants[static_cast<size_t>(i) % mutants.size()];
    OptimizeResult served = OptimizeAdaptive(q, cached_opts);
    ASSERT_NE(served.plan, nullptr);
    if (!served.stats.cache_hit) continue;
    ++hits;
    // Zero tolerance for cross-serving: the served plan must cost exactly
    // what a fresh optimization of *this* query costs...
    OptimizerOptions fresh_opts;
    OptimizeResult fresh = OptimizeAdaptive(q, fresh_opts);
    ASSERT_NE(fresh.plan, nullptr);
    ASSERT_EQ(served.plan->cost, fresh.plan->cost)
        << "cache hit served a plan with a different cost than a fresh "
        << "optimization — cross-served entry (query " << i << ")";
    // ...and (spot-checked) produce bit-identical rows to the canonical
    // evaluation.
    if (i % 25 == 0) {
      Database db = GenerateDatabase(q, 11);
      std::string message;
      ASSERT_TRUE(PlanMatchesCanonical(served.plan, q, db, &message))
          << "cache-served plan rows diverge (query " << i << "):\n"
          << message;
      ++cross_checked;
    }
  }

  PlanCacheStats stats = cache.Snapshot();
  // Sanity on the aggregate stats: every probe accounted for, a stream
  // with 96% repeats must hit nearly always after warmup, and this
  // stream's working set (40 << 256) must never evict.
  EXPECT_EQ(stats.hits + stats.misses, 1000u);  // one probe per arrival
  EXPECT_EQ(hits, 960);                         // 1000 - 40 cold misses
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_GT(stats.HitRate(), 0.45);
  EXPECT_GT(cross_checked, 20);
  std::fprintf(stderr,
               "[mutation_fuzz] adversarial stream: %d hits, hit rate "
               "%.3f, %d exec cross-checks\n",
               hits, stats.HitRate(), cross_checked);
}

TEST(MutationFuzz, ReplayFromEnv) {
  const char* line = std::getenv("EADP_FUZZ_REPLAY");
  if (line == nullptr) {
    GTEST_SKIP() << "set EADP_FUZZ_REPLAY='<corpus line>' to replay";
  }
  CorpusEntry entry;
  std::string error;
  ASSERT_TRUE(ParseCorpusEntry(line, &entry, &error)) << error;
  QuerySpec seed_spec = QuerySpec::FromQuery(MaterializeSeed(entry.seed));
  QuerySpec replayed =
      MutationEngine::Replay(seed_spec, entry.chain, entry.chain.size());
  PlanCache cache;
  FuzzOracleOptions oracle;
  oracle.cache = &cache;
  FuzzOracleReport report = CheckMutant(replayed.ToQuery(), oracle);
  for (const std::string& f : report.failures) {
    ADD_FAILURE() << f;
  }
}

TEST(MutationFuzz, EmitCorpus) {
  const char* path = std::getenv("EADP_FUZZ_EMIT_CORPUS");
  if (path == nullptr) {
    GTEST_SKIP() << "set EADP_FUZZ_EMIT_CORPUS=<file> to fold survivors";
  }
  // Structural diversity: one survivor per pool seed (full laps over the
  // pool, so TPC-H, the random-tree presets AND the structured topologies
  // at the pool's tail all contribute), deduplicated by (seed kind,
  // operator multiset) signature.
  const std::vector<FuzzSeed> pool = FuzzSeedPool();
  std::set<std::string> signatures;
  std::vector<CorpusEntry> survivors;
  for (size_t i = 0; i < pool.size(); ++i) {
    for (uint64_t lap = 0; lap < 4; ++lap) {
      uint64_t round = i + lap * pool.size();
      FuzzSeed seed = SeedAt(pool, round);
      QuerySpec seed_spec = QuerySpec::FromQuery(MaterializeSeed(seed));
      MutationEngine engine(seed_spec.Clone(), 0x6d75746174ull + round);
      int chain_len = 2 + static_cast<int>(round % 3);
      for (int s = 0; s < chain_len; ++s) engine.Step();
      if (engine.chain().empty()) continue;
      PlanCache cache;
      FuzzOracleOptions oracle;
      oracle.cache = &cache;
      if (!CheckMutant(engine.spec().ToQuery(), oracle).failures.empty()) {
        continue;  // divergent chains belong to SweepAllStrategies, not here
      }
      std::string sig = seed.kind == "tpch"
                            ? "tpch/" + seed.tpch
                            : StrFormat("gen/%s/%s",
                                        TopologyName(seed.topology),
                                        seed.preset.c_str());
      std::multiset<std::string> ops;
      for (const MutationStep& step : engine.chain()) {
        ops.insert(MutationOpName(step.op));
      }
      for (const std::string& op : ops) sig += "|" + op;
      if (!signatures.insert(sig).second) continue;
      CorpusEntry entry;
      entry.seed = seed;
      entry.chain = engine.chain();
      survivors.push_back(std::move(entry));
      break;  // one survivor per pool seed
    }
  }
  ASSERT_GE(survivors.size(), 10u);
  std::FILE* f = std::fopen(path, "w");
  ASSERT_NE(f, nullptr) << path;
  std::fputs(
      "# Mutation-fuzz regression corpus: structurally distinct survivor\n"
      "# chains folded from mutation_fuzz_test (EmitCorpus). One entry per\n"
      "# line; replayed by mutation_corpus_test (tier-1) and replayable\n"
      "# manually via scripts/fuzz.sh replay '<line>'.\n",
      f);
  for (const CorpusEntry& entry : survivors) {
    std::fprintf(f, "%s\n", FormatCorpusEntry(entry).c_str());
  }
  std::fclose(f);
}

}  // namespace
}  // namespace eadp
