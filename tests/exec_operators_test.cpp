// Tests the bag operators against the paper's Fig. 2 examples.

#include "exec/operators.h"

#include <gtest/gtest.h>

namespace eadp {
namespace {

Value I(int64_t v) { return Value::Int(v); }
Value N() { return Value::Null(); }

/// e1 and e2 of Fig. 2.
Table MakeE1() {
  Table t({"a", "b", "c"});
  t.AddRow({I(0), I(0), I(1)});
  t.AddRow({I(1), I(0), I(1)});
  t.AddRow({I(2), I(1), I(3)});
  t.AddRow({I(3), I(2), I(3)});
  return t;
}

Table MakeE2() {
  Table t({"d", "e", "f"});
  t.AddRow({I(0), I(0), I(1)});
  t.AddRow({I(1), I(1), I(1)});
  t.AddRow({I(2), I(2), I(1)});
  t.AddRow({I(3), I(4), I(2)});
  return t;
}

ExecPredicate Eq(const std::string& l, const std::string& r) {
  return {{l, r, CmpOp::kEq}};
}

TEST(ExecOperators, Fig2InnerJoin) {
  Table result = InnerJoin(MakeE1(), MakeE2(), Eq("b", "d"));
  Table expected({"a", "b", "c", "d", "e", "f"});
  expected.AddRow({I(0), I(0), I(1), I(0), I(0), I(1)});
  expected.AddRow({I(1), I(0), I(1), I(0), I(0), I(1)});
  expected.AddRow({I(2), I(1), I(3), I(1), I(1), I(1)});
  expected.AddRow({I(3), I(2), I(3), I(2), I(2), I(1)});
  EXPECT_TRUE(Table::BagEquals(result, expected)) << result.ToString();
}

TEST(ExecOperators, Fig2SemiJoin) {
  Table result = LeftSemiJoin(MakeE1(), MakeE2(), Eq("b", "d"));
  EXPECT_TRUE(Table::BagEquals(result, MakeE1())) << result.ToString();
}

TEST(ExecOperators, Fig2AntiJoin) {
  Table result = LeftAntiJoin(MakeE1(), MakeE2(), Eq("a", "e"));
  Table expected({"a", "b", "c"});
  expected.AddRow({I(3), I(2), I(3)});
  EXPECT_TRUE(Table::BagEquals(result, expected)) << result.ToString();
}

TEST(ExecOperators, Fig2LeftOuterJoin) {
  Table result = LeftOuterJoin(MakeE1(), MakeE2(), Eq("a", "e"));
  Table expected({"a", "b", "c", "d", "e", "f"});
  expected.AddRow({I(0), I(0), I(1), I(0), I(0), I(1)});
  expected.AddRow({I(1), I(0), I(1), I(1), I(1), I(1)});
  expected.AddRow({I(2), I(1), I(3), I(2), I(2), I(1)});
  expected.AddRow({I(3), I(2), I(3), N(), N(), N()});
  EXPECT_TRUE(Table::BagEquals(result, expected)) << result.ToString();
}

TEST(ExecOperators, Fig2FullOuterJoin) {
  Table result = FullOuterJoin(MakeE1(), MakeE2(), Eq("a", "e"));
  Table expected({"a", "b", "c", "d", "e", "f"});
  expected.AddRow({I(0), I(0), I(1), I(0), I(0), I(1)});
  expected.AddRow({I(1), I(0), I(1), I(1), I(1), I(1)});
  expected.AddRow({I(2), I(1), I(3), I(2), I(2), I(1)});
  expected.AddRow({I(3), I(2), I(3), N(), N(), N()});
  expected.AddRow({N(), N(), N(), I(3), I(4), I(2)});
  EXPECT_TRUE(Table::BagEquals(result, expected)) << result.ToString();
}

TEST(ExecOperators, Fig2GroupJoin) {
  // Definition (9): EVERY left tuple is extended; tuples without partners
  // aggregate over the empty set (sum -> NULL). (Fig. 2's rendering shows
  // only the matching rows; the formal definition keeps all.)
  std::vector<ExecAggregate> aggs = {
      ExecAggregate::Simple("g", AggKind::kSum, "f")};
  Table result = GroupJoin(MakeE1(), MakeE2(), Eq("a", "f"), aggs);
  Table expected({"a", "b", "c", "g"});
  expected.AddRow({I(0), I(0), I(1), N()});
  expected.AddRow({I(1), I(0), I(1), I(3)});
  expected.AddRow({I(2), I(1), I(3), I(2)});
  expected.AddRow({I(3), I(2), I(3), N()});
  EXPECT_TRUE(Table::BagEquals(result, expected)) << result.ToString();
}

TEST(ExecOperators, OuterJoinWithDefaults) {
  // Eqv. 7: unmatched left tuples get default values instead of NULLs.
  DefaultVector defaults = {{"f", I(1)}};
  Table result = LeftOuterJoin(MakeE1(), MakeE2(), Eq("a", "e"), defaults);
  int padded = 0;
  int f_idx = result.RequireColumn("f");
  int d_idx = result.RequireColumn("d");
  for (const Row& r : result.rows()) {
    if (r[static_cast<size_t>(d_idx)].is_null()) {
      ++padded;
      EXPECT_TRUE(Value::GroupEquals(r[static_cast<size_t>(f_idx)], I(1)));
    }
  }
  EXPECT_EQ(padded, 1);
}

TEST(ExecOperators, FullOuterJoinWithBothDefaults) {
  DefaultVector left_defaults = {{"c", I(7)}};
  DefaultVector right_defaults = {{"f", I(9)}};
  Table result = FullOuterJoin(MakeE1(), MakeE2(), Eq("a", "e"),
                               left_defaults, right_defaults);
  int c_idx = result.RequireColumn("c");
  int f_idx = result.RequireColumn("f");
  int a_idx = result.RequireColumn("a");
  int d_idx = result.RequireColumn("d");
  bool saw_left_pad = false;
  bool saw_right_pad = false;
  for (const Row& r : result.rows()) {
    if (r[static_cast<size_t>(a_idx)].is_null()) {
      saw_left_pad = true;
      EXPECT_TRUE(Value::GroupEquals(r[static_cast<size_t>(c_idx)], I(7)));
    }
    if (r[static_cast<size_t>(d_idx)].is_null()) {
      saw_right_pad = true;
      EXPECT_TRUE(Value::GroupEquals(r[static_cast<size_t>(f_idx)], I(9)));
    }
  }
  EXPECT_TRUE(saw_left_pad);
  EXPECT_TRUE(saw_right_pad);
}

TEST(ExecOperators, NullNeverMatchesPredicates) {
  Table l({"x"});
  l.AddRow({N()});
  l.AddRow({I(1)});
  Table r({"y"});
  r.AddRow({N()});
  r.AddRow({I(1)});
  Table join = InnerJoin(l, r, Eq("x", "y"));
  EXPECT_EQ(join.NumRows(), 1u);  // only 1 = 1; NULL = NULL is not a match
  Table outer = LeftOuterJoin(l, r, Eq("x", "y"));
  EXPECT_EQ(outer.NumRows(), 2u);  // NULL row survives as padded
}

TEST(ExecOperators, CrossProduct) {
  Table result = CrossProduct(MakeE1(), MakeE2());
  EXPECT_EQ(result.NumRows(), 16u);
  EXPECT_EQ(result.NumColumns(), 6u);
}

TEST(ExecOperators, EmptyInputs) {
  Table empty_left(std::vector<std::string>{"a", "b", "c"});
  Table e2 = MakeE2();
  EXPECT_EQ(InnerJoin(empty_left, e2, Eq("a", "e")).NumRows(), 0u);
  EXPECT_EQ(LeftOuterJoin(empty_left, e2, Eq("a", "e")).NumRows(), 0u);
  // Full outer of empty left: every right row survives padded.
  EXPECT_EQ(FullOuterJoin(empty_left, e2, Eq("a", "e")).NumRows(), 4u);
  EXPECT_EQ(LeftAntiJoin(MakeE1(), Table({"d", "e", "f"}), Eq("a", "e"))
                .NumRows(),
            4u);
}

TEST(ExecOperators, SelectAndProject) {
  Table e1 = MakeE1();
  Table sel = Select(e1, [](const Table& t, const Row& r) {
    return !r[static_cast<size_t>(t.ColumnIndex("c"))].is_null() &&
           r[static_cast<size_t>(t.ColumnIndex("c"))].AsInt() == 3;
  });
  EXPECT_EQ(sel.NumRows(), 2u);
  Table proj = Project(e1, {"c"});
  EXPECT_EQ(proj.NumRows(), 4u);
  EXPECT_EQ(proj.NumColumns(), 1u);
  Table dproj = DistinctProject(e1, {"c"});
  EXPECT_EQ(dproj.NumRows(), 2u);  // {1, 3}
}

TEST(ExecOperators, DistinctProjectTreatsNullsEqual) {
  Table t({"x"});
  t.AddRow({N()});
  t.AddRow({N()});
  t.AddRow({I(1)});
  EXPECT_EQ(DistinctProject(t, {"x"}).NumRows(), 2u);
}

TEST(ExecOperators, UnionAllReordersColumns) {
  Table a({"x", "y"});
  a.AddRow({I(1), I(2)});
  Table b({"y", "x"});
  b.AddRow({I(4), I(3)});
  Table u = UnionAll(a, b);
  ASSERT_EQ(u.NumRows(), 2u);
  Table expected({"x", "y"});
  expected.AddRow({I(1), I(2)});
  expected.AddRow({I(3), I(4)});
  EXPECT_TRUE(Table::BagEquals(u, expected));
}

TEST(ExecOperators, MapExpressions) {
  Table t({"a", "c1", "c2"});
  t.AddRow({I(5), I(2), I(3)});
  t.AddRow({N(), I(2), I(3)});
  std::vector<MapExpr> exprs;
  MapExpr mul;
  mul.output = "scaled";
  mul.kind = MapExpr::Kind::kMulCounts;
  mul.arg = "a";
  mul.counts = {"c1", "c2"};
  exprs.push_back(mul);
  MapExpr prod;
  prod.output = "prod";
  prod.kind = MapExpr::Kind::kCountProduct;
  prod.counts = {"c1", "c2"};
  exprs.push_back(prod);
  MapExpr cnn;
  cnn.output = "cnn";
  cnn.kind = MapExpr::Kind::kCountIfNotNull;
  cnn.arg = "a";
  cnn.counts = {"c1"};
  exprs.push_back(cnn);
  Table out = Map(t, exprs);
  int s = out.RequireColumn("scaled");
  int p = out.RequireColumn("prod");
  int c = out.RequireColumn("cnn");
  EXPECT_TRUE(Value::GroupEquals(out.rows()[0][static_cast<size_t>(s)], I(30)));
  EXPECT_TRUE(out.rows()[1][static_cast<size_t>(s)].is_null());
  EXPECT_TRUE(Value::GroupEquals(out.rows()[0][static_cast<size_t>(p)], I(6)));
  EXPECT_TRUE(Value::GroupEquals(out.rows()[0][static_cast<size_t>(c)], I(2)));
  EXPECT_TRUE(Value::GroupEquals(out.rows()[1][static_cast<size_t>(c)], I(0)));
}

TEST(ExecOperators, ThetaJoinFallsBackToNestedLoop) {
  Table l({"x"});
  l.AddRow({I(1)});
  l.AddRow({I(5)});
  Table r({"y"});
  r.AddRow({I(3)});
  ExecPredicate lt = {{"x", "y", CmpOp::kLt}};
  Table out = InnerJoin(l, r, lt);
  ASSERT_EQ(out.NumRows(), 1u);
  EXPECT_TRUE(Value::GroupEquals(out.rows()[0][0], I(1)));
}

}  // namespace
}  // namespace eadp
