// The oracle stack of the mutation fuzzer, shared between the fuzz driver
// (mutation_fuzz_test, ctest label "fuzz") and the committed-corpus replay
// (mutation_corpus_test, tier-1).
//
// For one mutant query, CheckMutant runs:
//   * every applicable planning strategy — the exhaustive generators
//     (kDphyp, kEaAll, kEaPrune) on queries small enough to enumerate,
//     always the large-query strategies (kGoo, kIdp) and the adaptive
//     facade — and validates every produced plan structurally
//     (plangen/plan_validator.h);
//   * the exec-backed equivalence oracle: each plan is executed on a tiny
//     generated database and must reproduce the canonical evaluation's
//     rows bit-identically (bag semantics);
//   * the cache-warm path: planning the mutant again through a shared
//     PlanCache must hit, and the served plan must be cost-identical to a
//     fresh plan and (when executed) row-identical to the canonical
//     evaluation — a near-duplicate mutant cross-serving another mutant's
//     plan fails one of the two;
//   * the serde oracle: the adaptive plan must round-trip through the
//     binary encoding (plangen/plan_serde.h) — decode, re-validate,
//     explain-bit-identity, re-encode byte-identity.
//
// Deliberately ABSENT: cross-strategy cost comparisons. Mutated
// selectivities and cardinalities violate the statistics-consistency
// precondition of dominance pruning's optimality proof (DESIGN.md §5), so
// "heuristic beats the exhaustive optimum" is *expected* on mutated stats
// and would drown real divergences in noise. Structural validity and
// result rows are invariant under statistics, so those oracles stay sound.

#ifndef EADP_TESTS_FUZZ_UTIL_H_
#define EADP_TESTS_FUZZ_UTIL_H_

#include <string>
#include <vector>

#include "common/strings.h"
#include "exec/plan_executor.h"
#include "plangen/plan_cache.h"
#include "plangen/plan_explain.h"
#include "plangen/plan_serde.h"
#include "plangen/plan_validator.h"
#include "plangen/plangen.h"
#include "queries/data_generator.h"
#include "queries/mutation.h"
#include "tests/test_util.h"

namespace eadp {

struct FuzzOracleOptions {
  /// Exhaustive strategies only run at or below this relation count
  /// (kEaAll is exponential; mutants never add relations, so seeds bound
  /// this). kGoo/kIdp/adaptive run regardless.
  int max_exhaustive_relations = 8;
  /// The exec oracle only runs at or below this relation count: tables
  /// have <= 10 rows, but a 10-relation cross-product-ish mutant can
  /// still blow up the interpreter.
  int max_exec_relations = 7;
  /// Seed for the generated database.
  uint64_t data_seed = 7;
  /// When set, the cache-warm path check runs against this (shared,
  /// long-lived) cache.
  PlanCache* cache = nullptr;
};

/// The result of one oracle sweep. `failures` empty = mutant survived.
struct FuzzOracleReport {
  std::vector<std::string> failures;
  int strategies_run = 0;
  bool executed = false;   ///< exec oracle ran
  bool cache_hit = false;  ///< warm probe served from cache
};

/// Runs the full oracle stack over one (canonicalized) query.
inline FuzzOracleReport CheckMutant(const Query& query,
                                    const FuzzOracleOptions& oracle) {
  FuzzOracleReport report;
  int n = query.NumRelations();
  bool run_exec = n <= oracle.max_exec_relations;
  Database db;
  if (run_exec) {
    db = GenerateDatabase(query, oracle.data_seed);
    report.executed = true;
  }

  std::vector<Algorithm> algorithms = {Algorithm::kGoo, Algorithm::kIdp};
  if (n <= oracle.max_exhaustive_relations) {
    algorithms.insert(algorithms.begin(),
                      {Algorithm::kDphyp, Algorithm::kEaAll,
                       Algorithm::kEaPrune});
  }

  auto check_plan = [&](const OptimizeResult& r, const char* label) {
    if (r.plan == nullptr) return;  // satisfiability handled by the caller
    for (const std::string& v : ValidatePlan(r.plan, query)) {
      report.failures.push_back(StrFormat("%s: validator: %s", label,
                                          v.c_str()));
    }
    if (run_exec) {
      std::string message;
      if (!PlanMatchesCanonical(r.plan, query, db, &message)) {
        report.failures.push_back(
            StrFormat("%s: exec oracle mismatch:\n%s", label,
                      message.c_str()));
      }
    }
  };

  // kDphyp is the reorder-only baseline: a structurally valid query it
  // cannot plan is itself a finding.
  bool baseline_planned = false;
  for (Algorithm a : algorithms) {
    OptimizerOptions opts;
    opts.algorithm = a;
    OptimizeResult r = Optimize(query, opts);
    ++report.strategies_run;
    if (a == Algorithm::kDphyp) baseline_planned = r.plan != nullptr;
    if (r.plan == nullptr && a == Algorithm::kDphyp) {
      report.failures.push_back("kDphyp: no plan for a valid query");
    }
    check_plan(r, AlgorithmName(a));
  }
  (void)baseline_planned;

  OptimizerOptions adaptive;
  OptimizeResult fresh = OptimizeAdaptive(query, adaptive);
  ++report.strategies_run;
  if (fresh.plan == nullptr) {
    report.failures.push_back("adaptive: no plan for a valid query");
  }
  check_plan(fresh, "adaptive");

  // Serde oracle (plangen/plan_serde.h): the surviving mutant's plan must
  // round-trip — decode cleanly, re-validate, stay explain-bit-identical
  // (cost/cardinality doubles travel by bit pattern) and re-encode to the
  // same bytes. Mutants reach plan shapes the curated corpus never
  // produces, which is exactly where an encoding hole would hide.
  if (fresh.plan != nullptr) {
    std::string blob = EncodePlan(fresh);
    OptimizeResult revived;
    std::string serde_error;
    if (!DecodePlan(blob, &revived, &serde_error)) {
      report.failures.push_back("serde: decode failed: " + serde_error);
    } else if (revived.plan == nullptr) {
      report.failures.push_back("serde: decode dropped the plan");
    } else {
      for (const std::string& v : ValidatePlan(revived.plan, query)) {
        report.failures.push_back("serde: revived plan validator: " + v);
      }
      if (ExplainToJson(revived, query.catalog()) !=
          ExplainToJson(fresh, query.catalog())) {
        report.failures.push_back(
            "serde: revived explain differs from original");
      }
      if (EncodePlan(revived) != blob) {
        report.failures.push_back("serde: re-encode not byte-identical");
      }
    }
  }

  if (oracle.cache != nullptr && fresh.plan != nullptr) {
    OptimizerOptions cached = adaptive;
    cached.plan_cache = oracle.cache;
    // First pass populates (or hits a structurally identical earlier
    // mutant — fine: fingerprint equality is structural equality); the
    // second pass must hit.
    OptimizeAdaptive(query, cached);
    OptimizeResult warm = OptimizeAdaptive(query, cached);
    if (!warm.stats.cache_hit) {
      report.failures.push_back("cache: warm probe missed");
    } else {
      report.cache_hit = true;
      // Cross-serving detection: a hit must be cost-identical to the
      // fresh plan (optimization is deterministic, so any cost delta
      // means the cache served a *different* query's plan) ...
      if (warm.plan == nullptr) {
        report.failures.push_back("cache: hit served a null plan");
      } else if (warm.plan->cost != fresh.plan->cost) {
        report.failures.push_back(
            StrFormat("cache: served plan cost %.17g != fresh cost %.17g "
                      "(cross-served entry?)",
                      warm.plan->cost, fresh.plan->cost));
      } else if (run_exec) {
        // ... and row-identical to the canonical evaluation.
        std::string message;
        if (!PlanMatchesCanonical(warm.plan, query, db, &message)) {
          report.failures.push_back(
              "cache: served plan rows diverge from canonical:\n" + message);
        }
      }
    }
  }
  // Stats-drift oracle (DESIGN.md §14): perturb the catalog *after*
  // planning — same structural fingerprint, moved stats overlay — and
  // probe the warm cache again. An unbounded drift tolerance must serve
  // the stale plan via re-cost (replan_avoided), and since result rows
  // are invariant under statistics the served plan must still reproduce
  // the canonical rows; a zero tolerance must re-plan inline, and the
  // re-plan must be cost-identical to a fresh uncached optimization under
  // the drifted statistics (the re-cost/tolerance path never leaks a
  // stale cost into a strict probe).
  if (oracle.cache != nullptr && fresh.plan != nullptr &&
      query.root() != nullptr) {
    QuerySpec drifted_spec = QuerySpec::FromQuery(query);
    Rng drift_rng(oracle.data_seed * 0x9e3779b97f4a7c15ull + 0x5eed);
    if (ApplyStatsDrift(&drifted_spec.catalog, &drift_rng)) {
      Query drifted = drifted_spec.ToQuery();
      OptimizerOptions tolerant = adaptive;
      tolerant.plan_cache = oracle.cache;
      tolerant.drift_tolerance = 1e18;
      OptimizeResult served = OptimizeAdaptive(drifted, tolerant);
      if (served.plan == nullptr) {
        report.failures.push_back("drift: tolerant probe served no plan");
      } else {
        if (!served.stats.cache_hit || !served.stats.replan_avoided) {
          report.failures.push_back(
              "drift: tolerant probe did not re-cost-and-serve "
              "(expected a drifted hit with replan_avoided)");
        }
        if (run_exec) {
          std::string message;
          if (!PlanMatchesCanonical(served.plan, drifted, db, &message)) {
            report.failures.push_back(
                "drift: re-cost-served plan rows diverge from canonical:\n" +
                message);
          }
        }
      }
      OptimizerOptions strict = adaptive;
      strict.plan_cache = oracle.cache;
      OptimizeResult replanned = OptimizeAdaptive(drifted, strict);
      OptimizeResult reference = OptimizeAdaptive(drifted, adaptive);
      if (replanned.plan == nullptr || reference.plan == nullptr) {
        report.failures.push_back("drift: no plan under drifted stats");
      } else {
        if (replanned.stats.replan_avoided) {
          report.failures.push_back(
              "drift: zero-tolerance probe avoided the re-plan");
        }
        if (replanned.plan->cost != reference.plan->cost) {
          report.failures.push_back(StrFormat(
              "drift: re-planned cost %.17g != fresh cost %.17g under "
              "drifted stats (stale plan leaked through?)",
              replanned.plan->cost, reference.plan->cost));
        }
      }
    }
  }
  return report;
}

/// Formats a replayable reproducer line for a failing (seed, chain) pair —
/// the exact corpus-format line scripts/fuzz.sh and the corpus replay
/// consume.
inline std::string FormatReproducer(const CorpusEntry& entry,
                                    const std::vector<std::string>& failures) {
  std::string out = "# " + std::to_string(failures.size()) + " failure(s):\n";
  for (const std::string& f : failures) {
    std::string line = f.substr(0, 200);
    for (char& c : line) {
      if (c == '\n') c = ' ';
    }
    out += "#   " + line + "\n";
  }
  out += FormatCorpusEntry(entry) + "\n";
  return out;
}

}  // namespace eadp

#endif  // EADP_TESTS_FUZZ_UTIL_H_
