// Reproduces the paper's Fig. 11 / Table 1 example exactly: the violation
// of Bellman's principle that motivates keeping multiple plans per class.
//
// Exec level: the actual intermediate sizes and C_out values of both
// operator trees match the paper (lazy: 10, eager + final grouping: 9,
// eager + Eqv. 42 projection: 7).
// Optimizer level: H1 discards the eager subplan (locally more expensive)
// and lands on the lazy plan; EA-Prune finds the eager one; H2 with a
// sufficiently large tolerance factor follows EA.

#include <gtest/gtest.h>

#include "exec/operators.h"
#include "plangen/plangen.h"

namespace eadp {
namespace {

Value I(int64_t v) { return Value::Int(v); }

Table MakeR0() {
  Table t({"R0.a", "R0.b"});
  t.AddRow({I(0), I(0)});
  t.AddRow({I(1), I(0)});
  t.AddRow({I(2), I(1)});
  t.AddRow({I(3), I(1)});
  return t;
}

Table MakeR1() {
  Table t({"R1.c", "R1.d"});
  t.AddRow({I(0), I(1)});
  t.AddRow({I(1), I(0)});
  t.AddRow({I(2), I(1)});
  t.AddRow({I(3), I(1)});
  t.AddRow({I(4), I(4)});
  return t;
}

Table MakeR2() {
  Table t({"R2.e", "R2.f"});
  t.AddRow({I(0), I(0)});
  t.AddRow({I(1), I(1)});
  t.AddRow({I(2), I(3)});
  t.AddRow({I(3), I(4)});
  return t;
}

TEST(BellmanViolation, Fig11ActualSizesAndCosts) {
  Table r0 = MakeR0();
  Table r1 = MakeR1();
  Table r2 = MakeR2();
  ExecPredicate p_de = {{"R1.d", "R2.e", CmpOp::kEq}};
  ExecPredicate p_af = {{"R0.a", "R2.f", CmpOp::kEq}};

  // Lazy tree (left of Fig. 11).
  Table e12 = InnerJoin(r1, r2, p_de);
  EXPECT_EQ(e12.NumRows(), 4u);
  Table e012 = InnerJoin(r0, e12, p_af);
  EXPECT_EQ(e012.NumRows(), 4u);
  Table lazy_final =
      GroupBy(e012, {"R1.d"},
              {ExecAggregate::Simple("d'", AggKind::kCountStar)});
  EXPECT_EQ(lazy_final.NumRows(), 2u);
  double lazy_cout = 4 + 4 + 2;
  EXPECT_DOUBLE_EQ(lazy_cout, 10);  // Table 1: Cout(Γ(e0,1,2)) = 10

  // Eager tree (right of Fig. 11).
  Table r1g = GroupBy(r1, {"R1.d"},
                      {ExecAggregate::Simple("d'", AggKind::kCountStar)});
  EXPECT_EQ(r1g.NumRows(), 3u);  // Table 1: Cout(e1') = 3
  Table e12e = InnerJoin(r1g, r2, p_de);
  EXPECT_EQ(e12e.NumRows(), 2u);  // Cout(e1,2') = 3 + 2 = 5
  Table e012e = InnerJoin(r0, e12e, p_af);
  EXPECT_EQ(e012e.NumRows(), 2u);  // Cout(e0,1,2') = 5 + 2 = 7
  Table eager_final = GroupBy(
      e012e, {"R1.d"}, {ExecAggregate::Simple("d''", AggKind::kSum, "d'")});
  EXPECT_EQ(eager_final.NumRows(), 2u);
  double eager_cout_with_group = 3 + 2 + 2 + 2;
  EXPECT_DOUBLE_EQ(eager_cout_with_group, 9);  // Table 1: Cout(Γ(e')) = 9

  // Eqv. 42: R1.d is a key of e0,1,2' in this data, so the final grouping
  // degenerates to a projection; d' already holds count(*).
  Table eliminated = Project(e012e, {"R1.d", "d'"});
  EXPECT_TRUE(Table::BagEquals(
      eliminated,
      GroupBy(e012, {"R1.d"},
              {ExecAggregate::Simple("d'", AggKind::kCountStar)})));
  double eager_cout_eliminated = 3 + 2 + 2;
  EXPECT_DOUBLE_EQ(eager_cout_eliminated, 7);  // Sec. 4.4: "cost value of 7"

  // Both trees compute the same result: {(1,3), (0,1)}.
  Table expected({"R1.d", "d'"});
  expected.AddRow({I(1), I(3)});
  expected.AddRow({I(0), I(1)});
  EXPECT_TRUE(Table::BagEquals(lazy_final, expected));
  EXPECT_TRUE(Table::BagEquals(eliminated, expected));
}

/// The Fig. 11 query as optimizer input, with statistics chosen to mirror
/// the example (selectivities reproduce the actual join sizes; R0.a and
/// R2.e declared keys as in the data).
Query MakeFig11Query() {
  Catalog catalog;
  int r0 = catalog.AddRelation("R0", 4);
  int a = catalog.AddAttribute(r0, "R0.a", 4);
  int r1 = catalog.AddRelation("R1", 5);
  int d = catalog.AddAttribute(r1, "R1.d", 3);
  int r2 = catalog.AddRelation("R2", 4);
  int e = catalog.AddAttribute(r2, "R2.e", 4);
  int f = catalog.AddAttribute(r2, "R2.f", 4);
  catalog.DeclareKey(r0, AttrSet::Single(a));
  catalog.DeclareKey(r2, AttrSet::Single(e));

  JoinPredicate p_de;
  p_de.AddEquality(d, e);
  auto lower = OpTreeNode::Binary(OpKind::kJoin, OpTreeNode::Leaf(r1),
                                  OpTreeNode::Leaf(r2), p_de, 0.2);
  JoinPredicate p_af;
  p_af.AddEquality(a, f);
  auto root = OpTreeNode::Binary(OpKind::kJoin, OpTreeNode::Leaf(r0),
                                 std::move(lower), p_af, 0.25);
  AttrSet g;
  g.Add(d);
  AggregateVector aggs(1);
  aggs[0].output = "d'";
  aggs[0].kind = AggKind::kCountStar;
  return Query::FromTree(std::move(catalog), std::move(root), g, aggs);
}

TEST(BellmanViolation, H1DiscardsTheGloballyOptimalSubplan) {
  Query q = MakeFig11Query();
  OptimizerOptions opt;
  opt.algorithm = Algorithm::kEaPrune;
  OptimizeResult best = Optimize(q, opt);
  opt.algorithm = Algorithm::kH1;
  OptimizeResult h1 = Optimize(q, opt);
  ASSERT_NE(best.plan, nullptr);
  ASSERT_NE(h1.plan, nullptr);

  // The optimum pushes a grouping below the joins; H1's local comparison
  // rejects the eager {R1,R2} subplan (grouping 3 + join 2.4 > plain
  // join 4), so it cannot reach the optimal tree. (Free reordering lets H1
  // recover part of the gain by joining R0 ⋈ R2 first and pushing the
  // grouping at the top-level step, but it remains suboptimal — the
  // Bellman violation of Sec. 4.4.)
  EXPECT_GT(best.plan->PushedGroupingCount(), 0)
      << best.plan->ToString(q.catalog());
  EXPECT_LT(best.plan->cost, h1.plan->cost)
      << "H1:\n"
      << h1.plan->ToString(q.catalog());

  // Estimated costs from the hand computation: the optimum is
  // 3 (Γ(R1)) + 2.4 + 2.4 = 7.8 with Eqv. 42 elimination.
  EXPECT_NEAR(best.plan->cost, 7.8, 1e-9);
  EXPECT_NEAR(h1.plan->cost, 9.4, 1e-9);
}

TEST(BellmanViolation, H2WithLargeToleranceFollowsTheOptimum) {
  Query q = MakeFig11Query();
  OptimizerOptions opt;
  opt.algorithm = Algorithm::kH2;
  opt.h2_tolerance = 1.5;  // 5.4 < 1.5 * 4: the eager subplan survives
  OptimizeResult h2_loose = Optimize(q, opt);
  opt.h2_tolerance = 1.03;  // 5.4 > 1.03 * 4: H2 behaves like H1 here
  OptimizeResult h2_tight = Optimize(q, opt);
  EXPECT_NEAR(h2_loose.plan->cost, 7.8, 1e-9);
  OptimizerOptions h1_opt;
  h1_opt.algorithm = Algorithm::kH1;
  EXPECT_NEAR(h2_tight.plan->cost, Optimize(q, h1_opt).plan->cost, 1e-9);
}

TEST(BellmanViolation, Eqv42EliminationIsLoadBearing) {
  // Without top-grouping elimination the eager plan pays the final
  // grouping (cost 7.8 + group) but still beats lazy (11 + nothing since
  // lazy always groups)... verify the option toggles costs coherently.
  Query q = MakeFig11Query();
  OptimizerOptions opt;
  opt.algorithm = Algorithm::kEaPrune;
  double with_elim = Optimize(q, opt).plan->cost;
  opt.builder.top_grouping_elimination = false;
  double without_elim = Optimize(q, opt).plan->cost;
  EXPECT_LT(with_elim, without_elim);
}

}  // namespace
}  // namespace eadp
