#include "common/bitset.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace eadp {
namespace {

TEST(Bitset64, EmptyAndSingle) {
  Bitset64 empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.Count(), 0);

  Bitset64 s = Bitset64::Single(5);
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s.Count(), 1);
  EXPECT_TRUE(s.Contains(5));
  EXPECT_FALSE(s.Contains(4));
  EXPECT_EQ(s.Lowest(), 5);
}

TEST(Bitset64, FirstN) {
  EXPECT_EQ(Bitset64::FirstN(0).Count(), 0);
  EXPECT_EQ(Bitset64::FirstN(3).Count(), 3);
  EXPECT_TRUE(Bitset64::FirstN(3).Contains(0));
  EXPECT_TRUE(Bitset64::FirstN(3).Contains(2));
  EXPECT_FALSE(Bitset64::FirstN(3).Contains(3));
  EXPECT_EQ(Bitset64::FirstN(64).Count(), 64);
}

TEST(Bitset64, SetAlgebra) {
  Bitset64 a = Bitset64::Single(1).Union(Bitset64::Single(3));
  Bitset64 b = Bitset64::Single(3).Union(Bitset64::Single(4));
  EXPECT_EQ(a.Union(b).Count(), 3);
  EXPECT_EQ(a.Intersect(b), Bitset64::Single(3));
  EXPECT_EQ(a.Minus(b), Bitset64::Single(1));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(Bitset64::Single(0)));
  EXPECT_TRUE(Bitset64::Single(3).IsSubsetOf(a));
  EXPECT_FALSE(a.IsSubsetOf(b));
}

TEST(Bitset64, AddRemove) {
  Bitset64 s;
  s.Add(7);
  s.Add(2);
  EXPECT_EQ(s.Count(), 2);
  s.Remove(7);
  EXPECT_EQ(s, Bitset64::Single(2));
  s.Remove(3);  // not present: no-op
  EXPECT_EQ(s, Bitset64::Single(2));
}

TEST(Bitset64, LowestBit) {
  Bitset64 s = Bitset64::Single(6).Union(Bitset64::Single(2));
  EXPECT_EQ(s.Lowest(), 2);
  EXPECT_EQ(s.LowestBit(), Bitset64::Single(2));
}

TEST(Bitset64, IterationOrder) {
  Bitset64 s;
  s.Add(9);
  s.Add(1);
  s.Add(63);
  std::vector<int> seen;
  for (int i : BitsOf(s)) seen.push_back(i);
  EXPECT_EQ(seen, (std::vector<int>{1, 9, 63}));
}

TEST(Bitset64, SubsetEnumerationCountsAllNonEmptySubsets) {
  Bitset64 super;
  super.Add(0);
  super.Add(2);
  super.Add(5);
  std::set<uint64_t> seen;
  for (Bitset64 s : SubsetsOf(super)) {
    EXPECT_TRUE(s.IsSubsetOf(super));
    EXPECT_FALSE(s.empty());
    seen.insert(s.bits());
  }
  EXPECT_EQ(seen.size(), 7u);  // 2^3 - 1
}

TEST(Bitset64, SubsetEnumerationOfEmptySetYieldsNothing) {
  int count = 0;
  for (Bitset64 s : SubsetsOf(Bitset64())) {
    (void)s;
    ++count;
  }
  EXPECT_EQ(count, 0);
}

TEST(Bitset64, SubsetEnumerationSingleton) {
  std::vector<uint64_t> seen;
  for (Bitset64 s : SubsetsOf(Bitset64::Single(4))) seen.push_back(s.bits());
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], Bitset64::Single(4).bits());
}

TEST(Bitset64, ToString) {
  Bitset64 s;
  s.Add(0);
  s.Add(3);
  EXPECT_EQ(s.ToString(), "{0,3}");
  EXPECT_EQ(Bitset64().ToString(), "{}");
}

class SubsetCountTest : public ::testing::TestWithParam<int> {};

TEST_P(SubsetCountTest, EnumeratesExactly2ToNMinus1) {
  int n = GetParam();
  Bitset64 super = Bitset64::FirstN(n);
  uint64_t count = 0;
  for (Bitset64 s : SubsetsOf(super)) {
    (void)s;
    ++count;
  }
  EXPECT_EQ(count, (uint64_t{1} << n) - 1);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SubsetCountTest,
                         ::testing::Values(1, 2, 3, 4, 8, 12, 16));

}  // namespace
}  // namespace eadp
