#include "common/bitset.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_map>
#include <vector>

namespace eadp {
namespace {

TEST(Bitset128, EmptyAndSingle) {
  Bitset128 empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.Count(), 0);

  Bitset128 s = Bitset128::Single(5);
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s.Count(), 1);
  EXPECT_TRUE(s.Contains(5));
  EXPECT_FALSE(s.Contains(4));
  EXPECT_EQ(s.Lowest(), 5);
}

TEST(Bitset128, FirstN) {
  EXPECT_EQ(Bitset128::FirstN(0).Count(), 0);
  EXPECT_EQ(Bitset128::FirstN(3).Count(), 3);
  EXPECT_TRUE(Bitset128::FirstN(3).Contains(0));
  EXPECT_TRUE(Bitset128::FirstN(3).Contains(2));
  EXPECT_FALSE(Bitset128::FirstN(3).Contains(3));
  EXPECT_EQ(Bitset128::FirstN(64).Count(), 64);
  EXPECT_EQ(Bitset128::FirstN(100).Count(), 100);
  EXPECT_EQ(Bitset128::FirstN(kBitsetCapacity).Count(), kBitsetCapacity);
}

TEST(Bitset128, SetAlgebra) {
  Bitset128 a = Bitset128::Single(1).Union(Bitset128::Single(3));
  Bitset128 b = Bitset128::Single(3).Union(Bitset128::Single(4));
  EXPECT_EQ(a.Union(b).Count(), 3);
  EXPECT_EQ(a.Intersect(b), Bitset128::Single(3));
  EXPECT_EQ(a.Minus(b), Bitset128::Single(1));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(Bitset128::Single(0)));
  EXPECT_TRUE(Bitset128::Single(3).IsSubsetOf(a));
  EXPECT_FALSE(a.IsSubsetOf(b));
}

TEST(Bitset128, AddRemove) {
  Bitset128 s;
  s.Add(7);
  s.Add(2);
  EXPECT_EQ(s.Count(), 2);
  s.Remove(7);
  EXPECT_EQ(s, Bitset128::Single(2));
  s.Remove(3);  // not present: no-op
  EXPECT_EQ(s, Bitset128::Single(2));
}

TEST(Bitset128, LowestBit) {
  Bitset128 s = Bitset128::Single(6).Union(Bitset128::Single(2));
  EXPECT_EQ(s.Lowest(), 2);
  EXPECT_EQ(s.LowestBit(), Bitset128::Single(2));
}

TEST(Bitset128, IterationOrder) {
  Bitset128 s;
  s.Add(9);
  s.Add(1);
  s.Add(63);
  std::vector<int> seen;
  for (int i : BitsOf(s)) seen.push_back(i);
  EXPECT_EQ(seen, (std::vector<int>{1, 9, 63}));
}

// The high word {64..127} must behave exactly like the low one — the
// large-query subsystem keeps relation and attribute indices of 100-way
// joins there.
TEST(Bitset128, HighWordElements) {
  Bitset128 s;
  s.Add(63);
  s.Add(64);
  s.Add(127);
  EXPECT_EQ(s.Count(), 3);
  EXPECT_TRUE(s.Contains(64));
  EXPECT_TRUE(s.Contains(127));
  EXPECT_FALSE(s.Contains(126));
  EXPECT_EQ(s.Lowest(), 63);
  s.Remove(63);
  EXPECT_EQ(s.Lowest(), 64);
  EXPECT_EQ(s.LowestBit(), Bitset128::Single(64));
  std::vector<int> seen;
  for (int i : BitsOf(s)) seen.push_back(i);
  EXPECT_EQ(seen, (std::vector<int>{64, 127}));
  EXPECT_EQ(s.ToString(), "{64,127}");
}

TEST(Bitset128, AlgebraAcrossTheWordBoundary) {
  Bitset128 a = Bitset128::Single(10).Union(Bitset128::Single(70));
  Bitset128 b = Bitset128::Single(70).Union(Bitset128::Single(120));
  EXPECT_EQ(a.Intersect(b), Bitset128::Single(70));
  EXPECT_EQ(a.Minus(b), Bitset128::Single(10));
  EXPECT_EQ(a.Union(b).Count(), 3);
  EXPECT_TRUE(Bitset128::Single(120).IsSubsetOf(b));
  EXPECT_FALSE(a.IsSubsetOf(b));
  // low()/high() split the halves consistently.
  EXPECT_EQ(a.low(), uint64_t{1} << 10);
  EXPECT_EQ(a.high(), uint64_t{1} << (70 - 64));
}

TEST(Bitset128, SubsetEnumerationCountsAllNonEmptySubsets) {
  Bitset128 super;
  super.Add(0);
  super.Add(2);
  super.Add(5);
  std::set<Bitset128> seen;
  for (Bitset128 s : SubsetsOf(super)) {
    EXPECT_TRUE(s.IsSubsetOf(super));
    EXPECT_FALSE(s.empty());
    seen.insert(s);
  }
  EXPECT_EQ(seen.size(), 7u);  // 2^3 - 1
}

TEST(Bitset128, SubsetEnumerationSpanningTheWordBoundary) {
  Bitset128 super;
  super.Add(3);
  super.Add(62);
  super.Add(65);
  super.Add(127);
  std::set<Bitset128> seen;
  for (Bitset128 s : SubsetsOf(super)) {
    EXPECT_TRUE(s.IsSubsetOf(super));
    EXPECT_FALSE(s.empty());
    seen.insert(s);
  }
  EXPECT_EQ(seen.size(), 15u);  // 2^4 - 1
  EXPECT_TRUE(seen.count(Bitset128::Single(62).Union(Bitset128::Single(65))));
}

TEST(Bitset128, SubsetEnumerationOfEmptySetYieldsNothing) {
  int count = 0;
  for (Bitset128 s : SubsetsOf(Bitset128())) {
    (void)s;
    ++count;
  }
  EXPECT_EQ(count, 0);
}

TEST(Bitset128, SubsetEnumerationSingleton) {
  std::vector<Bitset128> seen;
  for (Bitset128 s : SubsetsOf(Bitset128::Single(4))) seen.push_back(s);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], Bitset128::Single(4));
}

TEST(Bitset128, ToString) {
  Bitset128 s;
  s.Add(0);
  s.Add(3);
  EXPECT_EQ(s.ToString(), "{0,3}");
  EXPECT_EQ(Bitset128().ToString(), "{}");
}

class SubsetCountTest : public ::testing::TestWithParam<int> {};

TEST_P(SubsetCountTest, EnumeratesExactly2ToNMinus1) {
  int n = GetParam();
  Bitset128 super = Bitset128::FirstN(n);
  uint64_t count = 0;
  for (Bitset128 s : SubsetsOf(super)) {
    (void)s;
    ++count;
  }
  EXPECT_EQ(count, (uint64_t{1} << n) - 1);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SubsetCountTest,
                         ::testing::Values(1, 2, 3, 4, 8, 12, 16));

// --- Hash-quality audit for the n > 64 large-query regime.
//
// Bitset128::Hash() is Mix64(low + Mix64(high)): the low word enters the
// final mixer via addition rather than a mix round of its own. The audit
// question (2026-07 bugfix pass): do DP-table keys that differ only in
// bits 64–127 — exactly the classes a > 64-relation query creates — or
// subset patterns straddling the word boundary cluster into few buckets?
// Measured over all three regimes below, the answer is no: chi²/df stays
// within noise of 1.0 and the fullest bucket matches the Poisson
// expectation of an ideal hash, because Mix64(high) already decorrelates
// the high word and the outer Mix64 avalanches the sum. A second mix
// round was measured to buy nothing, so the hash stays single-round;
// these tests pin the distribution so any future "simplification" of the
// hash that re-introduces clustering fails loudly.

/// Max bucket load and chi²/df of `sets` hashed into an unordered_map
/// with the production Hasher (the same table shape DpTable uses).
struct BucketStats {
  size_t max_load = 0;
  double chi2_per_df = 0;
};

BucketStats MeasureBuckets(const std::vector<Bitset128>& sets) {
  std::unordered_map<Bitset128, int, Bitset128::Hasher> table;
  table.reserve(sets.size());
  for (const Bitset128& s : sets) table.emplace(s, 0);
  BucketStats stats;
  double n = static_cast<double>(table.size());
  double buckets = static_cast<double>(table.bucket_count());
  double mean = n / buckets;
  double chi2 = 0;
  for (size_t b = 0; b < table.bucket_count(); ++b) {
    size_t load = table.bucket_size(b);
    stats.max_load = std::max(stats.max_load, load);
    double d = static_cast<double>(load) - mean;
    chi2 += d * d / mean;
  }
  stats.chi2_per_df = chi2 / (buckets - 1);
  return stats;
}

TEST(Bitset128Hash, HighWordOnlySetsSpreadAcrossBuckets) {
  // 2^14 sets sharing one low word, differing only in bits 64–127.
  std::vector<Bitset128> sets;
  Bitset128 low;
  low.Add(3);
  low.Add(17);
  low.Add(41);
  for (uint64_t m = 0; m < (uint64_t{1} << 14); ++m) {
    Bitset128 s = low;
    for (int b = 0; b < 14; ++b) {
      if ((m >> b) & 1) s.Add(64 + 4 * b + 1);
    }
    sets.push_back(s);
  }
  BucketStats stats = MeasureBuckets(sets);
  // An ideal hash lands chi²/df ~ 1.0 (measured: 1.04) and a max load of
  // ~3x the mean at this fill; 2.0 / 5x give slack for library-specific
  // bucket counts while still catching real clustering (a low-entropy
  // hash sends chi²/df orders of magnitude up, not percent).
  EXPECT_LT(stats.chi2_per_df, 2.0);
  size_t expected_mean = sets.size() / 1543 + 1;  // any libstdc++ prime ~n
  EXPECT_LT(stats.max_load, 5 * expected_mean + 5);
}

TEST(Bitset128Hash, BoundaryStraddlingSubsetsSpreadAcrossBuckets) {
  // All 2^16 subsets of a 16-element universe straddling bit 64 (relations
  // 56..71) — the densest DP-table key pattern a 70-relation query makes.
  std::vector<Bitset128> sets;
  for (uint64_t m = 0; m < (uint64_t{1} << 16); ++m) {
    Bitset128 s;
    for (int b = 0; b < 16; ++b) {
      if ((m >> b) & 1) s.Add(56 + b);
    }
    sets.push_back(s);
  }
  BucketStats stats = MeasureBuckets(sets);
  EXPECT_LT(stats.chi2_per_df, 2.0);
}

TEST(Bitset128Hash, NoFullHashCollisionsAcrossAuditRegimes) {
  // The 64-bit hashes themselves (not just their buckets) must not collide
  // over the audited families — a structured collision in `low + Mix64(high)`
  // would show up here first.
  std::vector<uint64_t> hashes;
  for (uint64_t m = 0; m < (uint64_t{1} << 10); ++m) {
    for (uint64_t h = 0; h < (uint64_t{1} << 6); ++h) {
      Bitset128 s(static_cast<Bitset128::Word>(m) |
                  (static_cast<Bitset128::Word>(h) << 64));
      hashes.push_back(s.Hash());
    }
  }
  std::sort(hashes.begin(), hashes.end());
  EXPECT_EQ(std::adjacent_find(hashes.begin(), hashes.end()), hashes.end());
}

}  // namespace
}  // namespace eadp
