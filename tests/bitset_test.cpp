#include "common/bitset.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace eadp {
namespace {

TEST(Bitset128, EmptyAndSingle) {
  Bitset128 empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.Count(), 0);

  Bitset128 s = Bitset128::Single(5);
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s.Count(), 1);
  EXPECT_TRUE(s.Contains(5));
  EXPECT_FALSE(s.Contains(4));
  EXPECT_EQ(s.Lowest(), 5);
}

TEST(Bitset128, FirstN) {
  EXPECT_EQ(Bitset128::FirstN(0).Count(), 0);
  EXPECT_EQ(Bitset128::FirstN(3).Count(), 3);
  EXPECT_TRUE(Bitset128::FirstN(3).Contains(0));
  EXPECT_TRUE(Bitset128::FirstN(3).Contains(2));
  EXPECT_FALSE(Bitset128::FirstN(3).Contains(3));
  EXPECT_EQ(Bitset128::FirstN(64).Count(), 64);
  EXPECT_EQ(Bitset128::FirstN(100).Count(), 100);
  EXPECT_EQ(Bitset128::FirstN(kBitsetCapacity).Count(), kBitsetCapacity);
}

TEST(Bitset128, SetAlgebra) {
  Bitset128 a = Bitset128::Single(1).Union(Bitset128::Single(3));
  Bitset128 b = Bitset128::Single(3).Union(Bitset128::Single(4));
  EXPECT_EQ(a.Union(b).Count(), 3);
  EXPECT_EQ(a.Intersect(b), Bitset128::Single(3));
  EXPECT_EQ(a.Minus(b), Bitset128::Single(1));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(Bitset128::Single(0)));
  EXPECT_TRUE(Bitset128::Single(3).IsSubsetOf(a));
  EXPECT_FALSE(a.IsSubsetOf(b));
}

TEST(Bitset128, AddRemove) {
  Bitset128 s;
  s.Add(7);
  s.Add(2);
  EXPECT_EQ(s.Count(), 2);
  s.Remove(7);
  EXPECT_EQ(s, Bitset128::Single(2));
  s.Remove(3);  // not present: no-op
  EXPECT_EQ(s, Bitset128::Single(2));
}

TEST(Bitset128, LowestBit) {
  Bitset128 s = Bitset128::Single(6).Union(Bitset128::Single(2));
  EXPECT_EQ(s.Lowest(), 2);
  EXPECT_EQ(s.LowestBit(), Bitset128::Single(2));
}

TEST(Bitset128, IterationOrder) {
  Bitset128 s;
  s.Add(9);
  s.Add(1);
  s.Add(63);
  std::vector<int> seen;
  for (int i : BitsOf(s)) seen.push_back(i);
  EXPECT_EQ(seen, (std::vector<int>{1, 9, 63}));
}

// The high word {64..127} must behave exactly like the low one — the
// large-query subsystem keeps relation and attribute indices of 100-way
// joins there.
TEST(Bitset128, HighWordElements) {
  Bitset128 s;
  s.Add(63);
  s.Add(64);
  s.Add(127);
  EXPECT_EQ(s.Count(), 3);
  EXPECT_TRUE(s.Contains(64));
  EXPECT_TRUE(s.Contains(127));
  EXPECT_FALSE(s.Contains(126));
  EXPECT_EQ(s.Lowest(), 63);
  s.Remove(63);
  EXPECT_EQ(s.Lowest(), 64);
  EXPECT_EQ(s.LowestBit(), Bitset128::Single(64));
  std::vector<int> seen;
  for (int i : BitsOf(s)) seen.push_back(i);
  EXPECT_EQ(seen, (std::vector<int>{64, 127}));
  EXPECT_EQ(s.ToString(), "{64,127}");
}

TEST(Bitset128, AlgebraAcrossTheWordBoundary) {
  Bitset128 a = Bitset128::Single(10).Union(Bitset128::Single(70));
  Bitset128 b = Bitset128::Single(70).Union(Bitset128::Single(120));
  EXPECT_EQ(a.Intersect(b), Bitset128::Single(70));
  EXPECT_EQ(a.Minus(b), Bitset128::Single(10));
  EXPECT_EQ(a.Union(b).Count(), 3);
  EXPECT_TRUE(Bitset128::Single(120).IsSubsetOf(b));
  EXPECT_FALSE(a.IsSubsetOf(b));
  // low()/high() split the halves consistently.
  EXPECT_EQ(a.low(), uint64_t{1} << 10);
  EXPECT_EQ(a.high(), uint64_t{1} << (70 - 64));
}

TEST(Bitset128, SubsetEnumerationCountsAllNonEmptySubsets) {
  Bitset128 super;
  super.Add(0);
  super.Add(2);
  super.Add(5);
  std::set<Bitset128> seen;
  for (Bitset128 s : SubsetsOf(super)) {
    EXPECT_TRUE(s.IsSubsetOf(super));
    EXPECT_FALSE(s.empty());
    seen.insert(s);
  }
  EXPECT_EQ(seen.size(), 7u);  // 2^3 - 1
}

TEST(Bitset128, SubsetEnumerationSpanningTheWordBoundary) {
  Bitset128 super;
  super.Add(3);
  super.Add(62);
  super.Add(65);
  super.Add(127);
  std::set<Bitset128> seen;
  for (Bitset128 s : SubsetsOf(super)) {
    EXPECT_TRUE(s.IsSubsetOf(super));
    EXPECT_FALSE(s.empty());
    seen.insert(s);
  }
  EXPECT_EQ(seen.size(), 15u);  // 2^4 - 1
  EXPECT_TRUE(seen.count(Bitset128::Single(62).Union(Bitset128::Single(65))));
}

TEST(Bitset128, SubsetEnumerationOfEmptySetYieldsNothing) {
  int count = 0;
  for (Bitset128 s : SubsetsOf(Bitset128())) {
    (void)s;
    ++count;
  }
  EXPECT_EQ(count, 0);
}

TEST(Bitset128, SubsetEnumerationSingleton) {
  std::vector<Bitset128> seen;
  for (Bitset128 s : SubsetsOf(Bitset128::Single(4))) seen.push_back(s);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], Bitset128::Single(4));
}

TEST(Bitset128, ToString) {
  Bitset128 s;
  s.Add(0);
  s.Add(3);
  EXPECT_EQ(s.ToString(), "{0,3}");
  EXPECT_EQ(Bitset128().ToString(), "{}");
}

class SubsetCountTest : public ::testing::TestWithParam<int> {};

TEST_P(SubsetCountTest, EnumeratesExactly2ToNMinus1) {
  int n = GetParam();
  Bitset128 super = Bitset128::FirstN(n);
  uint64_t count = 0;
  for (Bitset128 s : SubsetsOf(super)) {
    (void)s;
    ++count;
  }
  EXPECT_EQ(count, (uint64_t{1} << n) - 1);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SubsetCountTest,
                         ::testing::Values(1, 2, 3, 4, 8, 12, 16));

}  // namespace
}  // namespace eadp
