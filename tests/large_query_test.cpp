// Tier-1 coverage of the large-query subsystem (plangen/large_query.h):
//
//   * differential optimality — on every corpus query small enough to
//     enumerate exhaustively (n <= 8), OptimizeAdaptive is cost-identical
//     to kEaPrune, and the kGoo/kIdp/original costs are finite and never
//     beat the optimum (with the kIdp/optimum ratio bounded and logged);
//   * structural validity — every plan any strategy produces passes
//     plan_validator, up to the seeded 100-relation topologies;
//   * facade policy — relation count decides exact vs. large-query, and
//     the 100-relation acceptance case optimizes within the budget;
//   * exec smoke — kGoo/kIdp plans compute the kDphyp baseline's rows
//     (the broad sweep lives in large_query_slow_test, ctest label
//     "slow").

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "plangen/large_query.h"
#include "plangen/plan_validator.h"
#include "plangen/plangen.h"
#include "queries/data_generator.h"
#include "queries/query_generator.h"
#include "tests/test_util.h"

namespace eadp {
namespace {

// Wall-clock assertions use the shared kTimingPinned gate from
// tests/test_util.h (optimized, un-instrumented builds only).

std::vector<QueryTopology> StructuredTopologies() {
  return {QueryTopology::kChain, QueryTopology::kStar, QueryTopology::kCycle,
          QueryTopology::kClique};
}

/// The small differential corpus: every structured topology up to n = 9
/// (n = 9 exceeds idp_block_size + 2, so kIdp genuinely stitches) plus the
/// paper's random operator trees (mixed operators and inner-only).
std::vector<Query> SmallCorpus() {
  std::vector<Query> corpus;
  for (QueryTopology t : StructuredTopologies()) {
    for (int n = 2; n <= 9; ++n) {
      for (uint64_t seed = 0; seed < 3; ++seed) {
        GeneratorOptions gen;
        gen.topology = t;
        gen.num_relations = n;
        corpus.push_back(GenerateRandomQuery(gen, seed));
      }
    }
  }
  for (uint64_t seed = 0; seed < 10; ++seed) {
    GeneratorOptions gen;
    gen.num_relations = 3 + static_cast<int>(seed % 4);
    corpus.push_back(GenerateRandomQuery(gen, seed));
    gen.num_relations = 5 + static_cast<int>(seed % 4);
    gen.inner_joins_only = true;
    corpus.push_back(GenerateRandomQuery(gen, seed + 500));
  }
  return corpus;
}

void ExpectValid(const OptimizeResult& r, const Query& query,
                 const char* label) {
  ASSERT_NE(r.plan, nullptr) << label;
  std::vector<std::string> violations = ValidatePlan(r.plan, query);
  EXPECT_TRUE(violations.empty())
      << label << ": " << violations.size() << " violations, first: "
      << violations.front();
}

TEST(LargeQueryDifferential, AdaptiveMatchesExactOptimumBelowThreshold) {
  // With the exact-DP threshold at its default (12 >= corpus n), the
  // facade must route to the exact enumeration — identical cost, not just
  // close: it literally runs the same DP.
  for (const Query& query : SmallCorpus()) {
    OptimizerOptions options;  // kEaPrune, adaptive_exact_relations = 12
    OptimizeResult exact = Optimize(query, options);
    OptimizeResult adaptive = OptimizeAdaptive(query, options);
    ASSERT_NE(exact.plan, nullptr);
    ASSERT_NE(adaptive.plan, nullptr);
    EXPECT_EQ(adaptive.stats.algorithm, Algorithm::kEaPrune);
    EXPECT_EQ(adaptive.plan->cost, exact.plan->cost) << query.ToString();
  }
}

TEST(LargeQueryDifferential, HeuristicCostsBracketedByOptimum) {
  // kGoo and kIdp never beat the exact optimum, stay finite, and validate.
  // The kIdp-vs-optimum ratio is logged and bounded on the seeded corpus;
  // the bound is empirical (worst observed ~3.8 for kIdp, ~2.6 for kGoo)
  // with headroom — a regression past it means a real quality loss, not
  // noise, since everything is seeded.
  double worst_idp = 1, worst_goo = 1;
  int idp_planned = 0, total = 0;
  for (const Query& query : SmallCorpus()) {
    ++total;
    OptimizerOptions options;
    OptimizeResult exact = Optimize(query, options);
    ASSERT_NE(exact.plan, nullptr);
    double optimum = exact.plan->cost;

    options.algorithm = Algorithm::kGoo;
    OptimizeResult goo = Optimize(query, options);
    ExpectValid(goo, query, "kGoo");
    EXPECT_TRUE(std::isfinite(goo.plan->cost));
    EXPECT_GE(goo.plan->cost, optimum * (1 - 1e-9));
    if (optimum > 0) worst_goo = std::max(worst_goo, goo.plan->cost / optimum);

    options.algorithm = Algorithm::kIdp;
    OptimizeResult idp = Optimize(query, options);
    if (idp.plan != nullptr) {
      ++idp_planned;
      ExpectValid(idp, query, "kIdp");
      EXPECT_TRUE(std::isfinite(idp.plan->cost));
      EXPECT_GE(idp.plan->cost, optimum * (1 - 1e-9));
      if (optimum > 0) {
        worst_idp = std::max(worst_idp, idp.plan->cost / optimum);
      }
    }

    options.algorithm = Algorithm::kEaPrune;
    OptimizeResult original = OptimizeOriginal(query, options);
    ExpectValid(original, query, "original");
    EXPECT_GE(original.plan->cost, optimum * (1 - 1e-9));
  }
  std::printf("[corpus %d queries] worst kIdp/optimum = %.3f (%d planned), "
              "worst kGoo/optimum = %.3f\n",
              total, worst_idp, idp_planned, worst_goo);
  EXPECT_LE(worst_idp, 6.0);
  EXPECT_LE(worst_goo, 5.0);
  // kIdp must actually plan the overwhelming share of the corpus (the
  // kGoo fallback exists for the rest).
  EXPECT_GE(idp_planned * 10, total * 9);
}

TEST(LargeQueryFacade, RelationCountSelectsTheStrategy) {
  GeneratorOptions gen;
  gen.topology = QueryTopology::kChain;
  gen.num_relations = 8;
  Query small = GenerateRandomQuery(gen, 3);
  OptimizerOptions options;
  EXPECT_EQ(OptimizeAdaptive(small, options).stats.algorithm,
            Algorithm::kEaPrune);

  gen.num_relations = 20;
  Query large = GenerateRandomQuery(gen, 3);
  OptimizeResult r = OptimizeAdaptive(large, options);
  ASSERT_NE(r.plan, nullptr);
  EXPECT_TRUE(r.stats.algorithm == Algorithm::kGoo ||
              r.stats.algorithm == Algorithm::kIdp);

  // Raising the threshold routes the same query to the exhaustive
  // enumeration. With the baseline insertion policy: kEaPrune's plan
  // lists at 20 relations are exactly the wall the facade exists to
  // avoid, but DPhyp's single-plan table enumerates a 20-chain in
  // microseconds.
  options.adaptive_exact_relations = 20;
  options.algorithm = Algorithm::kDphyp;
  EXPECT_EQ(OptimizeAdaptive(large, options).stats.algorithm,
            Algorithm::kDphyp);
}

TEST(LargeQueryFacade, HundredRelationQueriesOptimizeWithinBudget) {
  // The acceptance case: seeded 100-relation queries of every topology
  // pass through OptimizeAdaptive to a validator-clean plan, in under
  // 100 ms on un-instrumented builds.
  for (QueryTopology t : StructuredTopologies()) {
    GeneratorOptions gen;
    gen.topology = t;
    gen.num_relations = 100;
    Query query = GenerateRandomQuery(gen, 1);
    OptimizeResult r = OptimizeAdaptive(query, OptimizerOptions{});
    ExpectValid(r, query, TopologyName(t));
    EXPECT_TRUE(std::isfinite(r.plan->cost));
    EXPECT_EQ(r.plan->rels, query.AllRelations());
    if (kTimingPinned) {
      EXPECT_LT(r.stats.optimize_ms, 100) << TopologyName(t);
    }
  }
}

TEST(LargeQueryValidity, MidSizeTopologiesValidateUnderAllStrategies) {
  for (QueryTopology t : StructuredTopologies()) {
    for (int n : {20, 50}) {
      GeneratorOptions gen;
      gen.topology = t;
      gen.num_relations = n;
      Query query = GenerateRandomQuery(gen, 2);
      for (Algorithm a : {Algorithm::kGoo, Algorithm::kIdp}) {
        OptimizerOptions options;
        options.algorithm = a;
        OptimizeResult r = Optimize(query, options);
        if (a == Algorithm::kIdp && r.plan == nullptr) continue;  // clique
        ExpectValid(r, query, AlgorithmName(a));
      }
    }
  }
}

TEST(LargeQueryGooFallback, PartialMergeFallbackValidatesAndMatchesOriginal) {
  // Regression for the kGoo original-tree fallback: when greedy merging
  // stops mid-run with units already merged, the fallback discards those
  // units and rebuilds the canonical tree. The discarded-unit state must
  // not leak into the result: the plan validates and costs exactly what
  // OptimizeOriginal produces (never more). The natural trigger (conflict
  // rules blocking every remaining pair) has no known tree-shaped witness
  // — see the audit note in large_query.cc — so the merge budget drives
  // the same branch after 0, 1, 2 and 3 genuine merges.
  for (const Query& query : SmallCorpus()) {
    OptimizerOptions options;
    OptimizeResult original = OptimizeOriginal(query, options);
    ASSERT_NE(original.plan, nullptr);
    options.algorithm = Algorithm::kGoo;
    for (int budget : {0, 1, 2, 3}) {
      options.goo_merge_budget = budget;
      OptimizeResult fallback = Optimize(query, options);
      ExpectValid(fallback, query, "kGoo fallback");
      EXPECT_EQ(fallback.stats.algorithm, Algorithm::kGoo);
      EXPECT_TRUE(std::isfinite(fallback.plan->cost));
      EXPECT_LE(fallback.plan->cost, original.plan->cost) << budget;
      EXPECT_EQ(fallback.plan->rels, query.AllRelations());
    }
    // An unlimited budget is the production path: same result as default
    // options (the hook must be inert at -1).
    options.goo_merge_budget = -1;
    OptimizeResult unlimited = Optimize(query, options);
    OptimizerOptions plain;
    plain.algorithm = Algorithm::kGoo;
    OptimizeResult reference = Optimize(query, plain);
    ASSERT_NE(unlimited.plan, nullptr);
    ASSERT_NE(reference.plan, nullptr);
    EXPECT_EQ(unlimited.plan->cost, reference.plan->cost);
  }
}

TEST(LargeQueryGooFallback, FallbackPlanComputesCanonicalRows) {
  // Exec depth for the fallback path: a partially-merged run that falls
  // back must still compute the canonical rows.
  for (uint64_t seed = 0; seed < 4; ++seed) {
    GeneratorOptions gen;
    gen.num_relations = 4 + static_cast<int>(seed);
    Query query = GenerateRandomQuery(gen, seed);
    Database db = GenerateDatabase(query, seed * 17 + 3);
    OptimizerOptions options;
    options.algorithm = Algorithm::kGoo;
    options.goo_merge_budget = 2;
    OptimizeResult fallback = Optimize(query, options);
    ASSERT_NE(fallback.plan, nullptr);
    Table got = ExecutePlan(fallback.plan, query, db);
    Table want = ExecuteCanonical(query, db);
    EXPECT_TRUE(Table::BagEquals(got, want)) << "seed " << seed;
  }
}

TEST(LargeQueryExec, SmokeAgainstBaselineRows) {
  // Row-level agreement with the kDphyp baseline on a few mixed-operator
  // queries; the 60-seed sweep is in large_query_slow_test.
  for (uint64_t seed = 0; seed < 6; ++seed) {
    GeneratorOptions gen;
    gen.num_relations = 3 + static_cast<int>(seed % 3);
    Query query = GenerateRandomQuery(gen, seed);
    Database db = GenerateDatabase(query, seed * 31 + 5);
    OptimizerOptions options;
    options.algorithm = Algorithm::kDphyp;
    OptimizeResult baseline = Optimize(query, options);
    ASSERT_NE(baseline.plan, nullptr);
    Table want = ExecutePlan(baseline.plan, query, db);
    for (Algorithm a : {Algorithm::kGoo, Algorithm::kIdp}) {
      options.algorithm = a;
      OptimizeResult r = Optimize(query, options);
      if (a == Algorithm::kIdp && r.plan == nullptr) continue;
      ASSERT_NE(r.plan, nullptr) << AlgorithmName(a);
      Table got = ExecutePlan(r.plan, query, db);
      EXPECT_TRUE(Table::BagEquals(got, want))
          << AlgorithmName(a) << " on seed " << seed << "\n"
          << r.plan->ToString(query.catalog());
    }
  }
}

}  // namespace
}  // namespace eadp
