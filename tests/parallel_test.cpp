// Differential coverage of the parallel optimizer subsystem
// (plangen/parallel.h). Determinism is the contract under test: for every
// query, parallel and sequential runs must produce *cost-identical* plans.
//
//   * OptimizeBatch at 2/4/8 threads == the sequential loop, per query, on
//     a mixed-topology batch spanning the exact-DP and large-query paths —
//     repeated, so a scheduling-dependent divergence has several chances
//     to surface (and TSan several chances to see the interleavings);
//   * OptimizeAdaptiveConcurrent == OptimizeAdaptive on large queries of
//     every topology (including the clique, where kIdp returns no plan and
//     the race must settle on kGoo);
//   * batch stats are internally consistent (counts, percentile ordering,
//     throughput arithmetic);
//   * every parallel-produced plan is validator-clean and owned by a
//     live per-result arena (use-after-free here would be ASan's find).

#include "plangen/parallel.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "plangen/plan_validator.h"
#include "queries/query_generator.h"

namespace eadp {
namespace {

/// A seeded mixed-topology batch: random operator trees (exact-DP path)
/// plus structured chain/star/cycle/clique queries straddling the
/// adaptive threshold (large-query path).
std::vector<Query> MixedBatch(int queries_per_bucket) {
  std::vector<Query> batch;
  for (int i = 0; i < queries_per_bucket; ++i) {
    GeneratorOptions gen;
    gen.num_relations = 3 + i % 5;
    batch.push_back(GenerateRandomQuery(gen, static_cast<uint64_t>(i)));
  }
  for (QueryTopology t : {QueryTopology::kChain, QueryTopology::kStar,
                          QueryTopology::kCycle, QueryTopology::kClique}) {
    for (int i = 0; i < queries_per_bucket; ++i) {
      GeneratorOptions gen;
      gen.topology = t;
      gen.num_relations = 10 + 8 * (i % 3);  // 10 exact, 18/26 large-query
      batch.push_back(GenerateRandomQuery(
          gen, static_cast<uint64_t>(100 + i)));
    }
  }
  return batch;
}

TEST(OptimizeBatchDifferential, CostsBitIdenticalToSequentialLoop) {
  std::vector<Query> batch = MixedBatch(4);
  OptimizerOptions options;
  BatchResult sequential = OptimizeBatch(batch, options, 1);
  ASSERT_EQ(sequential.results.size(), batch.size());
  for (int threads : {2, 4, 8}) {
    for (int repeat = 0; repeat < 3; ++repeat) {
      BatchResult parallel = OptimizeBatch(batch, options, threads);
      ASSERT_EQ(parallel.results.size(), batch.size());
      for (size_t i = 0; i < batch.size(); ++i) {
        const OptimizeResult& want = sequential.results[i];
        const OptimizeResult& got = parallel.results[i];
        ASSERT_EQ(got.plan != nullptr, want.plan != nullptr) << i;
        if (want.plan == nullptr) continue;
        // Bit-identical cost, not approximately equal: both sides run the
        // same deterministic single-threaded code on private state.
        EXPECT_EQ(got.plan->cost, want.plan->cost)
            << "query " << i << " at " << threads << " threads";
        EXPECT_EQ(got.stats.algorithm, want.stats.algorithm) << i;
        EXPECT_EQ(got.plan->rels, want.plan->rels) << i;
      }
    }
  }
}

TEST(OptimizeBatchDifferential, ParallelPlansValidateAndOwnTheirArenas) {
  std::vector<Query> batch = MixedBatch(2);
  BatchResult result = OptimizeBatch(batch, OptimizerOptions{}, 4);
  for (size_t i = 0; i < batch.size(); ++i) {
    const OptimizeResult& r = result.results[i];
    ASSERT_NE(r.plan, nullptr) << i;
    ASSERT_NE(r.arena, nullptr) << i;
    std::vector<std::string> violations = ValidatePlan(r.plan, batch[i]);
    EXPECT_TRUE(violations.empty())
        << "query " << i << ": " << violations.size()
        << " violations, first: " << violations.front();
  }
}

TEST(OptimizeBatchStats, AggregatesAreInternallyConsistent) {
  std::vector<Query> batch = MixedBatch(2);
  BatchResult r = OptimizeBatch(batch, OptimizerOptions{}, 2);
  const BatchStats& s = r.stats;
  EXPECT_EQ(s.num_queries, static_cast<int>(batch.size()));
  EXPECT_EQ(s.num_threads, 2);
  EXPECT_GT(s.wall_ms, 0);
  EXPECT_GT(s.queries_per_second, 0);
  EXPECT_NEAR(s.queries_per_second, s.num_queries / (s.wall_ms / 1000.0),
              1e-6 * s.queries_per_second);
  EXPECT_LE(s.p50_ms, s.p95_ms);
  EXPECT_LE(s.p95_ms, s.max_ms);
  EXPECT_GE(s.total_optimize_ms, s.max_ms);
  // Sequential runs report themselves as one thread regardless of request.
  EXPECT_EQ(OptimizeBatch(batch, OptimizerOptions{}, 1).stats.num_threads, 1);
}

TEST(ConcurrentAdaptiveRace, CostIdenticalToSequentialFacade) {
  ThreadPool pool(2);
  for (QueryTopology t : {QueryTopology::kChain, QueryTopology::kStar,
                          QueryTopology::kCycle, QueryTopology::kClique}) {
    for (int n : {20, 40}) {
      GeneratorOptions gen;
      gen.topology = t;
      gen.num_relations = n;
      Query query = GenerateRandomQuery(gen, 7);
      OptimizerOptions options;
      OptimizeResult sequential = OptimizeAdaptive(query, options);
      ASSERT_NE(sequential.plan, nullptr);
      for (int repeat = 0; repeat < 3; ++repeat) {
        OptimizeResult concurrent =
            OptimizeAdaptiveConcurrent(query, options, &pool);
        ASSERT_NE(concurrent.plan, nullptr) << TopologyName(t);
        EXPECT_EQ(concurrent.plan->cost, sequential.plan->cost)
            << TopologyName(t) << " n=" << n;
        // The race must pick the same strategy, not just the same cost —
        // completion order may differ, the winner may not.
        EXPECT_EQ(concurrent.stats.algorithm, sequential.stats.algorithm)
            << TopologyName(t) << " n=" << n;
        std::vector<std::string> violations =
            ValidatePlan(concurrent.plan, query);
        EXPECT_TRUE(violations.empty()) << TopologyName(t);
      }
    }
  }
}

TEST(ConcurrentAdaptiveRace, FallsBackSequentiallyOnSmallPoolsAndQueries) {
  // Null pool and size-1 pool take the sequential facade; so do queries at
  // or below the exact threshold (identical results either way — this
  // pins that the exact path is unaffected by the pool argument).
  GeneratorOptions gen;
  gen.num_relations = 6;
  Query small = GenerateRandomQuery(gen, 11);
  OptimizerOptions options;
  OptimizeResult want = OptimizeAdaptive(small, options);
  ASSERT_NE(want.plan, nullptr);
  EXPECT_EQ(want.stats.algorithm, Algorithm::kEaPrune);

  ThreadPool tiny(1);
  ThreadPool wide(4);
  for (ThreadPool* pool : {static_cast<ThreadPool*>(nullptr), &tiny, &wide}) {
    OptimizeResult got = OptimizeAdaptiveConcurrent(small, options, pool);
    ASSERT_NE(got.plan, nullptr);
    EXPECT_EQ(got.plan->cost, want.plan->cost);
    EXPECT_EQ(got.stats.algorithm, Algorithm::kEaPrune);
  }

  gen.topology = QueryTopology::kChain;
  gen.num_relations = 25;
  Query large = GenerateRandomQuery(gen, 11);
  OptimizeResult seq_large = OptimizeAdaptive(large, options);
  for (ThreadPool* pool : {static_cast<ThreadPool*>(nullptr), &tiny}) {
    OptimizeResult got = OptimizeAdaptiveConcurrent(large, options, pool);
    ASSERT_NE(got.plan, nullptr);
    EXPECT_EQ(got.plan->cost, seq_large.plan->cost);
  }
}

}  // namespace
}  // namespace eadp
