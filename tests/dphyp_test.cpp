// DPhyp enumeration counts checked against closed forms and an independent
// brute-force enumeration of csg-cmp-pairs.

#include "hypergraph/dphyp_enumerator.h"

#include <gtest/gtest.h>

#include <set>
#include <utility>

namespace eadp {
namespace {

Hypergraph Chain(int n) {
  Hypergraph g(n);
  for (int i = 0; i + 1 < n; ++i) {
    g.AddEdge(RelSet::Single(i), RelSet::Single(i + 1), i);
  }
  return g;
}

Hypergraph Star(int n) {
  Hypergraph g(n);
  for (int i = 1; i < n; ++i) {
    g.AddEdge(RelSet::Single(0), RelSet::Single(i), i - 1);
  }
  return g;
}

Hypergraph Clique(int n) {
  Hypergraph g(n);
  int e = 0;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      g.AddEdge(RelSet::Single(i), RelSet::Single(j), e++);
    }
  }
  return g;
}

Hypergraph Cycle(int n) {
  Hypergraph g(n);
  for (int i = 0; i < n; ++i) {
    g.AddEdge(RelSet::Single(i), RelSet::Single((i + 1) % n), i);
  }
  return g;
}

/// Brute-force count of unordered csg-cmp-pairs per Def. 3.
uint64_t BruteForceCcp(const Hypergraph& g) {
  int n = g.num_nodes();
  uint64_t count = 0;
  for (uint64_t s1 = 1; s1 < (uint64_t{1} << n); ++s1) {
    if (!g.IsConnected(RelSet(s1))) continue;
    for (uint64_t s2 = s1 + 1; s2 < (uint64_t{1} << n); ++s2) {
      if (s1 & s2) continue;
      if (!g.IsConnected(RelSet(s2))) continue;
      if (g.Connects(RelSet(s1), RelSet(s2))) ++count;
    }
  }
  return count;
}

class GraphShapeTest : public ::testing::TestWithParam<int> {};

TEST_P(GraphShapeTest, ChainMatchesClosedForm) {
  uint64_t n = static_cast<uint64_t>(GetParam());
  // #ccp for chains: (n^3 - n) / 6 (Moerkotte & Neumann 2006).
  EXPECT_EQ(CountCsgCmpPairs(Chain(GetParam())), (n * n * n - n) / 6);
}

TEST_P(GraphShapeTest, StarMatchesClosedForm) {
  int n = GetParam();
  // #ccp for stars: (n-1) * 2^(n-2).
  EXPECT_EQ(CountCsgCmpPairs(Star(n)),
            static_cast<uint64_t>(n - 1) << (n - 2));
}

TEST_P(GraphShapeTest, CliqueMatchesClosedForm) {
  int n = GetParam();
  // #ccp for cliques: (3^n - 2^(n+1) + 1) / 2.
  uint64_t p3 = 1;
  for (int i = 0; i < n; ++i) p3 *= 3;
  uint64_t expected = (p3 - (uint64_t{1} << (n + 1)) + 1) / 2;
  EXPECT_EQ(CountCsgCmpPairs(Clique(n)), expected);
}

TEST_P(GraphShapeTest, CycleMatchesBruteForce) {
  EXPECT_EQ(CountCsgCmpPairs(Cycle(GetParam())),
            BruteForceCcp(Cycle(GetParam())));
}

TEST_P(GraphShapeTest, ChainMatchesBruteForce) {
  EXPECT_EQ(CountCsgCmpPairs(Chain(GetParam())),
            BruteForceCcp(Chain(GetParam())));
}

INSTANTIATE_TEST_SUITE_P(Sizes, GraphShapeTest,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8, 10));

TEST(Dphyp, EmitsEachPairOnce) {
  Hypergraph g = Clique(6);
  std::set<std::pair<RelSet, RelSet>> seen;
  EnumerateCsgCmpPairs(g, [&](RelSet s1, RelSet s2) {
    RelSet a = std::min(s1, s2);
    RelSet b = std::max(s1, s2);
    EXPECT_TRUE(seen.emplace(a, b).second)
        << "pair emitted twice: " << s1.ToString() << " " << s2.ToString();
    EXPECT_FALSE(s1.Intersects(s2));
    EXPECT_TRUE(g.IsConnected(s1));
    EXPECT_TRUE(g.IsConnected(s2));
    EXPECT_TRUE(g.Connects(s1, s2));
  });
}

TEST(Dphyp, BottomUpOrder) {
  // Both components of every emitted pair must already have been emitted as
  // unions of earlier pairs (or be singletons) — the DP prerequisite.
  Hypergraph g = Chain(6);
  std::set<RelSet> materialized;
  for (int i = 0; i < 6; ++i) {
    materialized.insert(RelSet::Single(i));
  }
  EnumerateCsgCmpPairs(g, [&](RelSet s1, RelSet s2) {
    EXPECT_TRUE(materialized.count(s1)) << s1.ToString();
    EXPECT_TRUE(materialized.count(s2)) << s2.ToString();
    materialized.insert(s1.Union(s2));
  });
}

TEST(Dphyp, HypergraphWithComplexEdge) {
  // {0,1} -- {2}: {0} and {2} cannot pair up; only {0,1}+{2} works.
  Hypergraph g(3);
  g.AddEdge(RelSet::Single(0), RelSet::Single(1), 0);
  Hypergraph g2 = g;
  RelSet u;
  u.Add(0);
  u.Add(1);
  g2.AddEdge(u, RelSet::Single(2), 1);
  EXPECT_EQ(CountCsgCmpPairs(g2), BruteForceCcp(g2));
  EXPECT_EQ(CountCsgCmpPairs(g2), 2u);  // {0}{1} and {0,1}{2}
}

TEST(Dphyp, DisconnectedGraphHasNoCrossPairs) {
  Hypergraph g(4);
  g.AddEdge(RelSet::Single(0), RelSet::Single(1), 0);
  g.AddEdge(RelSet::Single(2), RelSet::Single(3), 1);
  EXPECT_EQ(CountCsgCmpPairs(g), 2u);
}

}  // namespace
}  // namespace eadp
