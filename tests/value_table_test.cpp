// Value semantics, bag comparison, and string helpers.

#include <gtest/gtest.h>

#include "common/strings.h"
#include "exec/table.h"

namespace eadp {
namespace {

TEST(Value, NullSemantics) {
  Value n = Value::Null();
  Value i = Value::Int(3);
  EXPECT_TRUE(n.is_null());
  EXPECT_FALSE(i.is_null());
  // Predicate equality: NULL never matches, not even NULL.
  EXPECT_FALSE(Value::SqlEquals(n, n));
  EXPECT_FALSE(Value::SqlEquals(n, i));
  EXPECT_TRUE(Value::SqlEquals(i, Value::Int(3)));
  // Grouping equality: NULL == NULL.
  EXPECT_TRUE(Value::GroupEquals(n, n));
  EXPECT_FALSE(Value::GroupEquals(n, i));
}

TEST(Value, IntDoubleComparability) {
  EXPECT_TRUE(Value::SqlEquals(Value::Int(3), Value::Double(3.0)));
  EXPECT_TRUE(Value::GroupEquals(Value::Int(3), Value::Double(3.0)));
  EXPECT_EQ(Value::Int(3).Hash(), Value::Double(3.0).Hash());
}

TEST(Value, TotalOrderNullsFirst) {
  EXPECT_TRUE(Value::Less(Value::Null(), Value::Int(-100)));
  EXPECT_FALSE(Value::Less(Value::Int(-100), Value::Null()));
  EXPECT_TRUE(Value::Less(Value::Int(1), Value::Int(2)));
  EXPECT_FALSE(Value::Less(Value::Null(), Value::Null()));
}

TEST(Value, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "-");
  EXPECT_EQ(Value::Int(42).ToString(), "42");
  EXPECT_EQ(Value::Double(1.5).ToString(), "1.5");
}

TEST(Table, BagEqualsIgnoresRowAndColumnOrder) {
  Table a({"x", "y"});
  a.AddRow({Value::Int(1), Value::Int(2)});
  a.AddRow({Value::Int(3), Value::Int(4)});
  Table b({"y", "x"});
  b.AddRow({Value::Int(4), Value::Int(3)});
  b.AddRow({Value::Int(2), Value::Int(1)});
  EXPECT_TRUE(Table::BagEquals(a, b));
}

TEST(Table, BagEqualsRespectsMultiplicity) {
  Table a({"x"});
  a.AddRow({Value::Int(1)});
  a.AddRow({Value::Int(1)});
  Table b({"x"});
  b.AddRow({Value::Int(1)});
  EXPECT_FALSE(Table::BagEquals(a, b));
  b.AddRow({Value::Int(1)});
  EXPECT_TRUE(Table::BagEquals(a, b));
}

TEST(Table, BagEqualsDetectsValueDifference) {
  Table a({"x"});
  a.AddRow({Value::Int(1)});
  Table b({"x"});
  b.AddRow({Value::Int(2)});
  EXPECT_FALSE(Table::BagEquals(a, b));
}

TEST(Table, BagEqualsToleratesFloatNoise) {
  Table a({"x"});
  a.AddRow({Value::Double(1.0)});
  Table b({"x"});
  b.AddRow({Value::Double(1.0 + 1e-12)});
  EXPECT_TRUE(Table::BagEquals(a, b));
}

TEST(Table, BagEqualsMismatchedSchemas) {
  Table a({"x"});
  Table b({"y"});
  EXPECT_FALSE(Table::BagEquals(a, b));
}

TEST(Table, ColumnLookup) {
  Table t({"a", "b"});
  EXPECT_EQ(t.ColumnIndex("b"), 1);
  EXPECT_EQ(t.ColumnIndex("missing"), -1);
  EXPECT_EQ(t.RequireColumn("a"), 0);
}

TEST(Table, ToStringTruncates) {
  Table t({"x"});
  for (int i = 0; i < 100; ++i) t.AddRow({Value::Int(i)});
  std::string s = t.ToString(5);
  EXPECT_NE(s.find("100 rows total"), std::string::npos);
}

TEST(Strings, Format) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(Strings, Join) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"solo"}, ","), "solo");
}

}  // namespace
}  // namespace eadp
