// DpTable storage contract at scale: Append / InsertPruned / ReplaceSingle
// interleavings across many classes, and the reference-stability guarantee
// the generators rely on — a class list reference obtained before hundreds
// of insertions into *other* classes (forcing rehashes) must stay valid
// (plangen.cc holds such references across OpTrees/insert loops; run under
// ASan this test is the rehash-while-iterating regression guard).

#include "plangen/dp_table.h"

#include <gtest/gtest.h>

#include <vector>

#include "catalog/functional_dependency.h"
#include "plangen/keys.h"
#include "plangen/plan.h"

namespace eadp {
namespace {

class DpTableScaleTest : public ::testing::Test {
 protected:
  PlanPtr MakePlan(double cost, double card, bool dup_free = false) {
    PlanNode* p = arena_.NewNode();
    p->op = PlanOp::kJoin;
    p->cost = cost;
    p->cardinality = card;
    p->raw_cardinality = card;
    p->keys_ = arena_.InternKeys(KeySet{});
    p->duplicate_free = dup_free;
    return p;
  }

  PlanArena arena_;
  DpTable table_;
};

TEST_F(DpTableScaleTest, ClassReferencesSurviveRehashes) {
  // Seed two classes and keep references to their lists.
  RelSet a = RelSet::Single(0);
  RelSet b = RelSet::Single(1);
  table_.Append(a, MakePlan(1, 10));
  table_.Append(b, MakePlan(2, 20));
  const std::vector<PlanPtr>& list_a = table_.Plans(a);
  const std::vector<PlanPtr>& list_b = table_.Plans(b);
  PlanPtr first_a = list_a[0];

  // Insert into thousands of *other* classes — guaranteed to rehash an
  // unreserved unordered_map many times over.
  for (uint64_t s = 3; s < 5000; ++s) {
    table_.Append(RelSet(s), MakePlan(static_cast<double>(s), 1));
  }

  // The references (and their contents) are still valid.
  ASSERT_EQ(list_a.size(), 1u);
  ASSERT_EQ(list_b.size(), 1u);
  EXPECT_EQ(list_a[0], first_a);
  EXPECT_DOUBLE_EQ(list_a[0]->cost, 1);
  EXPECT_DOUBLE_EQ(list_b[0]->cost, 2);
  EXPECT_GT(table_.NumClasses(), 4000u);
}

TEST_F(DpTableScaleTest, MimicsGeneratorLoopWhileRehashing) {
  // The plangen.cc pattern: hold references to the source classes of a
  // csg-cmp-pair, produce trees from every pair, insert into the target
  // class — while the table grows (and rehashes) underneath.
  RelSet a = RelSet::Single(0);
  RelSet b = RelSet::Single(1);
  for (int i = 0; i < 8; ++i) {
    table_.Append(a, MakePlan(10 + i, 100));
    table_.Append(b, MakePlan(20 + i, 200));
  }
  const std::vector<PlanPtr>& plans_a = table_.Plans(a);
  const std::vector<PlanPtr>& plans_b = table_.Plans(b);

  uint64_t target = 4;  // class id counter for fresh target classes
  size_t pairs = 0;
  for (PlanPtr t1 : plans_a) {
    for (PlanPtr t2 : plans_b) {
      ++pairs;
      // Insert several plans into fresh classes per pair: rehash pressure.
      for (int k = 0; k < 16; ++k) {
        table_.InsertPruned(RelSet(target++),
                            MakePlan(t1->cost + t2->cost + k, 50));
      }
    }
  }
  EXPECT_EQ(pairs, 64u);
  EXPECT_EQ(plans_a.size(), 8u);
  EXPECT_EQ(plans_b.size(), 8u);
}

TEST_F(DpTableScaleTest, InterleavedPoliciesAtScale) {
  // Exercise all three insertion policies against the same classes, at a
  // size where bugs in list management (stale erase, double insert) show.
  const int kClasses = 512;
  for (int round = 0; round < 4; ++round) {
    for (int c = 0; c < kClasses; ++c) {
      RelSet s(static_cast<uint64_t>(c) + 1);
      double base = c + 10.0 * round;
      switch ((c + round) % 3) {
        case 0:
          table_.Append(s, MakePlan(base, base));
          break;
        case 1:
          table_.InsertPruned(s, MakePlan(base, base));
          break;
        default:
          table_.ReplaceSingle(s, MakePlan(base, base));
          break;
      }
    }
  }
  EXPECT_EQ(table_.NumClasses(), static_cast<size_t>(kClasses));
  EXPECT_GE(table_.TotalPlans(), static_cast<size_t>(kClasses));
  // Every class still answers queries consistently.
  for (int c = 0; c < kClasses; ++c) {
    RelSet s(static_cast<uint64_t>(c) + 1);
    ASSERT_TRUE(table_.Has(s));
    EXPECT_NE(table_.Best(s), nullptr);
  }
}

TEST_F(DpTableScaleTest, InsertPrunedKeepsParetoFrontierAtScale) {
  RelSet s = RelSet::FirstN(3);
  // 1000 plans on a diagonal: only the joint-minimum survives the sweep.
  for (int i = 0; i < 1000; ++i) {
    table_.InsertPruned(s, MakePlan(1000 - i, 1000 - i));
  }
  ASSERT_EQ(table_.Plans(s).size(), 1u);
  EXPECT_DOUBLE_EQ(table_.Best(s)->cost, 1);
  // An incomparable newcomer (cheaper card, higher cost) coexists.
  table_.InsertPruned(s, MakePlan(500, 0.5));
  EXPECT_EQ(table_.Plans(s).size(), 2u);
  // Reserve mid-life must not disturb stored plans.
  table_.Reserve(1u << 12);
  EXPECT_EQ(table_.Plans(s).size(), 2u);
}


TEST(KeySetDominance, AgreesWithSpanKeysDominateExhaustively) {
  // The branchless KeySetDominates (keys.h) is the hot-loop twin of the
  // span-based KeysDominate (catalog/functional_dependency.h); this pins
  // semantic agreement on every pair of key sets over a small universe.
  // Key sets are built through KeySet::Insert, so both sides compare the
  // same minimalized contents — exactly what plan nodes carry.
  std::vector<AttrSet> universe;
  for (uint64_t bits = 1; bits < 8; ++bits) universe.emplace_back(bits);
  std::vector<KeySet> sets;
  std::vector<std::vector<AttrSet>> raw;
  for (uint32_t pick = 0; pick < (1u << universe.size()); ++pick) {
    KeySet ks;
    for (size_t i = 0; i < universe.size(); ++i) {
      if (pick & (1u << i)) ks.Insert(universe[i]);
    }
    sets.push_back(ks);
    raw.emplace_back(ks.begin(), ks.end());
  }
  for (size_t a = 0; a < sets.size(); ++a) {
    for (size_t b = 0; b < sets.size(); ++b) {
      EXPECT_EQ(KeySetDominates(sets[a], sets[b]),
                KeysDominate(raw[a], raw[b]))
          << "a=" << a << " b=" << b;
    }
  }
}

}  // namespace
}  // namespace eadp
