// Aggregation-state bookkeeping: partialization, ⊗ multipliers, defaults.

#include "plangen/agg_state.h"

#include <gtest/gtest.h>

namespace eadp {
namespace {

/// R0(j,v) ⋈ R1(j,v), group by R0.j, F = cnt:count(*), s:sum(R0.v),
/// m:min(R1.v), d:count(distinct R1.v).
Query MakeQuery() {
  Catalog catalog;
  int r0 = catalog.AddRelation("R0", 100);
  int j0 = catalog.AddAttribute(r0, "R0.j", 10);
  int v0 = catalog.AddAttribute(r0, "R0.v", 50);
  int r1 = catalog.AddRelation("R1", 100);
  int j1 = catalog.AddAttribute(r1, "R1.j", 10);
  int v1 = catalog.AddAttribute(r1, "R1.v", 50);

  JoinPredicate p;
  p.AddEquality(j0, j1);
  auto root = OpTreeNode::Binary(OpKind::kJoin, OpTreeNode::Leaf(r0),
                                 OpTreeNode::Leaf(r1), p, 0.1);
  AttrSet g;
  g.Add(j0);

  AggregateVector aggs(4);
  aggs[0].output = "cnt";
  aggs[0].kind = AggKind::kCountStar;
  aggs[1].output = "s";
  aggs[1].kind = AggKind::kSum;
  aggs[1].arg = v0;
  aggs[2].output = "m";
  aggs[2].kind = AggKind::kMin;
  aggs[2].arg = v1;
  aggs[3].output = "d";
  aggs[3].kind = AggKind::kCount;
  aggs[3].arg = v1;
  aggs[3].distinct = true;
  return Query::FromTree(std::move(catalog), std::move(root), g, aggs);
}

TEST(AggState, LeafStateCoversOwnSlotsOnly) {
  Query q = MakeQuery();
  PlanAggState s0 = LeafAggState(q, 0);
  ASSERT_EQ(s0.slots.size(), 1u);  // sum(R0.v); count(*) is global
  EXPECT_EQ(s0.slots[0].query_index, 1);
  EXPECT_FALSE(s0.slots[0].partialized);

  PlanAggState s1 = LeafAggState(q, 1);
  ASSERT_EQ(s1.slots.size(), 2u);  // min(R1.v), count(distinct R1.v)
  EXPECT_TRUE(s0.counts.empty());
}

TEST(AggState, MergeConcatenatesAndReindexesHomes) {
  Query q = MakeQuery();
  PlanAggState a = LeafAggState(q, 0);
  a.counts.push_back({"$c0"});
  a.slots[0].partialized = true;
  a.slots[0].partial_column = "$p0";
  a.slots[0].home_count = 0;
  PlanAggState b = LeafAggState(q, 1);
  b.counts.push_back({"$c1"});
  b.slots[0].partialized = true;
  b.slots[0].partial_column = "$p1";
  b.slots[0].home_count = 0;

  PlanAggState merged = MergeAggStates(a, b);
  ASSERT_EQ(merged.counts.size(), 2u);
  ASSERT_EQ(merged.slots.size(), 3u);
  EXPECT_EQ(merged.slots[0].home_count, 0);
  EXPECT_EQ(merged.slots[1].home_count, 1);  // reindexed past a's counts
}

TEST(AggState, CanGroupRespectsDecomposability) {
  Query q = MakeQuery();
  PlanAggState s1 = LeafAggState(q, 1);  // min (ok) + count(distinct) (not)
  AttrSet g_without_arg;
  g_without_arg.Add(2);  // R1.j
  EXPECT_FALSE(CanGroup(q, s1, g_without_arg));
  // If the distinct argument is a grouping attribute, it survives raw.
  AttrSet g_with_arg = g_without_arg;
  g_with_arg.Add(3);  // R1.v
  EXPECT_TRUE(CanGroup(q, s1, g_with_arg));

  PlanAggState s0 = LeafAggState(q, 0);  // sum only: decomposable
  EXPECT_TRUE(CanGroup(q, s0, g_without_arg));
}

TEST(AggState, BuildGroupingSpecPartializes) {
  Query q = MakeQuery();
  PlanAggState s0 = LeafAggState(q, 0);
  AttrSet g;
  g.Add(0);  // R0.j
  NameGenerator names;
  std::vector<ExecAggregate> aggs;
  PlanAggState out = BuildGroupingSpec(q, s0, g, &names, &aggs);

  // One partial (sum) + one fresh count.
  ASSERT_EQ(aggs.size(), 2u);
  EXPECT_EQ(aggs[0].kind, AggKind::kSum);
  EXPECT_EQ(aggs[0].arg, "R0.v");
  EXPECT_TRUE(aggs[0].multipliers.empty());
  EXPECT_EQ(aggs[1].kind, AggKind::kCountStar);

  ASSERT_EQ(out.slots.size(), 1u);
  EXPECT_TRUE(out.slots[0].partialized);
  EXPECT_EQ(out.slots[0].home_count, 0);
  ASSERT_EQ(out.counts.size(), 1u);
}

TEST(AggState, RegroupingScalesByForeignCountsOnly) {
  Query q = MakeQuery();
  // State: slot sum(R0.v) partialized at $p0 homed at count 0 ($c0), plus a
  // foreign count $c1 (from the other side).
  PlanAggState state = LeafAggState(q, 0);
  state.slots[0].partialized = true;
  state.slots[0].partial_column = "$p0";
  state.slots[0].home_count = 0;
  state.counts.push_back({"$c0"});
  state.counts.push_back({"$c1"});

  AttrSet g;
  g.Add(0);
  NameGenerator names;
  std::vector<ExecAggregate> aggs;
  PlanAggState out = BuildGroupingSpec(q, state, g, &names, &aggs);

  ASSERT_EQ(aggs.size(), 2u);
  // Re-aggregate: sum($p0 * $c1): the home count $c0 must NOT multiply.
  EXPECT_EQ(aggs[0].kind, AggKind::kSum);
  EXPECT_EQ(aggs[0].arg, "$p0");
  ASSERT_EQ(aggs[0].multipliers.size(), 1u);
  EXPECT_EQ(aggs[0].multipliers[0], "$c1");
  // Fresh count: count(*) ⊗ $c0 ⊗ $c1.
  EXPECT_EQ(aggs[1].kind, AggKind::kCountStar);
  EXPECT_EQ(aggs[1].multipliers.size(), 2u);
  EXPECT_EQ(out.counts.size(), 1u);
}

TEST(AggState, FinalAggregatesScaleRawByAllCounts) {
  Query q = MakeQuery();
  PlanAggState state = MergeAggStates(LeafAggState(q, 0), LeafAggState(q, 1));
  state.counts.push_back({"$c0"});
  std::vector<ExecAggregate> finals = BuildFinalAggregates(q, state);
  ASSERT_EQ(finals.size(), 4u);
  // count(*): Σ Π counts.
  EXPECT_EQ(finals[0].kind, AggKind::kCountStar);
  ASSERT_EQ(finals[0].multipliers.size(), 1u);
  // raw sum: scaled.
  EXPECT_EQ(finals[1].kind, AggKind::kSum);
  EXPECT_EQ(finals[1].multipliers.size(), 1u);
  // min: duplicate agnostic, unscaled.
  EXPECT_EQ(finals[2].kind, AggKind::kMin);
  EXPECT_TRUE(finals[2].multipliers.empty());
  // count(distinct): duplicate agnostic, unscaled.
  EXPECT_TRUE(finals[3].distinct);
  EXPECT_TRUE(finals[3].multipliers.empty());
}

TEST(AggState, OuterJoinDefaultsPerPaper) {
  Query q = MakeQuery();
  PlanAggState state = LeafAggState(q, 1);
  // Partialize min(R1.v) -> NULL default; add a count -> default 1; and a
  // partialized count slot (use the non-distinct count by faking kind via
  // slot 1... use slot for min and a count column).
  state.slots[0].partialized = true;  // min slot
  state.slots[0].partial_column = "$p_min";
  state.slots[0].home_count = 0;
  state.counts.push_back({"$c0"});

  auto defaults = OuterJoinDefaults(q, state);
  // $c0 -> 1; min partial -> NULL (no entry); distinct slot raw (no entry).
  ASSERT_EQ(defaults.size(), 1u);
  EXPECT_EQ(defaults[0].column, "$c0");
  EXPECT_TRUE(defaults[0].one);
}

TEST(AggState, CountLikePartialGetsZeroDefault) {
  // A query with count(R1.v): its partial defaults to 0 under padding.
  Catalog catalog;
  int r0 = catalog.AddRelation("R0", 10);
  int j0 = catalog.AddAttribute(r0, "R0.j", 5);
  int r1 = catalog.AddRelation("R1", 10);
  int j1 = catalog.AddAttribute(r1, "R1.j", 5);
  int v1 = catalog.AddAttribute(r1, "R1.v", 5);
  JoinPredicate p;
  p.AddEquality(j0, j1);
  auto root = OpTreeNode::Binary(OpKind::kLeftOuter, OpTreeNode::Leaf(r0),
                                 OpTreeNode::Leaf(r1), p, 0.2);
  AttrSet g;
  g.Add(j0);
  AggregateVector aggs(1);
  aggs[0].output = "c";
  aggs[0].kind = AggKind::kCount;
  aggs[0].arg = v1;
  Query q = Query::FromTree(std::move(catalog), std::move(root), g, aggs);

  PlanAggState state = LeafAggState(q, 1);
  AttrSet gp;
  gp.Add(1);  // R1.j
  NameGenerator names;
  std::vector<ExecAggregate> spec;
  PlanAggState grouped = BuildGroupingSpec(q, state, gp, &names, &spec);
  auto defaults = OuterJoinDefaults(q, grouped);
  ASSERT_EQ(defaults.size(), 2u);
  // Partial count -> 0, count column -> 1 (order: counts first).
  EXPECT_TRUE(defaults[0].one);
  EXPECT_FALSE(defaults[1].one);
}

}  // namespace
}  // namespace eadp
