#include "cardinality/estimator.h"

#include <gtest/gtest.h>

#include "cost/cost_model.h"

namespace eadp {
namespace {

Catalog MakeCatalog() {
  Catalog c;
  int r0 = c.AddRelation("R0", 1000);
  c.AddAttribute(r0, "R0.j", 100);
  c.AddAttribute(r0, "R0.g", 10);
  int r1 = c.AddRelation("R1", 50);
  c.AddAttribute(r1, "R1.j", 50);
  return c;
}

TEST(Estimator, BaseCardinality) {
  Catalog c = MakeCatalog();
  CardinalityEstimator e(&c);
  EXPECT_DOUBLE_EQ(e.BaseCardinality(0), 1000);
  EXPECT_DOUBLE_EQ(e.BaseCardinality(1), 50);
}

TEST(Estimator, DistinctCappedByCardinality) {
  Catalog c = MakeCatalog();
  CardinalityEstimator e(&c);
  EXPECT_DOUBLE_EQ(e.DistinctInCard(0, 1000), 100);
  EXPECT_DOUBLE_EQ(e.DistinctInCard(0, 30), 30);  // capped
}

TEST(Estimator, GroupingCardinality) {
  Catalog c = MakeCatalog();
  CardinalityEstimator e(&c);
  AttrSet g;
  g.Add(1);  // d = 10
  EXPECT_DOUBLE_EQ(e.GroupingCardinality(g, 1000), 10);
  g.Add(0);  // d = 100 -> product 1000 capped at input card
  EXPECT_DOUBLE_EQ(e.GroupingCardinality(g, 500), 500);
  // Empty grouping: a single group (scalar aggregation).
  EXPECT_DOUBLE_EQ(e.GroupingCardinality(AttrSet(), 500), 1);
}

TEST(Estimator, InnerJoinCardinality) {
  Catalog c = MakeCatalog();
  CardinalityEstimator e(&c);
  EXPECT_DOUBLE_EQ(e.JoinCardinality(OpKind::kJoin, 1000, 50, 0.01), 500);
}

TEST(Estimator, OuterJoinsAtLeastPreservedSide) {
  Catalog c = MakeCatalog();
  CardinalityEstimator e(&c);
  // Low selectivity: left outer keeps all left rows.
  EXPECT_DOUBLE_EQ(e.JoinCardinality(OpKind::kLeftOuter, 1000, 50, 1e-6),
                   1000);
  // Full outer keeps both unmatched sides.
  double k = e.JoinCardinality(OpKind::kFullOuter, 1000, 50, 1e-6);
  EXPECT_GE(k, 1000 + 50 - 1);
}

TEST(Estimator, SemiAntiPartitionLeft) {
  Catalog c = MakeCatalog();
  CardinalityEstimator e(&c);
  double semi = e.JoinCardinality(OpKind::kLeftSemi, 1000, 50, 0.01);
  double anti = e.JoinCardinality(OpKind::kLeftAnti, 1000, 50, 0.01);
  EXPECT_DOUBLE_EQ(semi + anti, 1000);
  EXPECT_LE(semi, 1000);
  // Semi probability saturates at 1.
  EXPECT_DOUBLE_EQ(e.JoinCardinality(OpKind::kLeftSemi, 1000, 50, 1.0), 1000);
}

TEST(Estimator, GroupJoinKeepsLeftCardinality) {
  Catalog c = MakeCatalog();
  CardinalityEstimator e(&c);
  EXPECT_DOUBLE_EQ(e.JoinCardinality(OpKind::kGroupJoin, 1000, 50, 0.5),
                   1000);
}

TEST(CostModel, CoutDefinition) {
  CostModel m;
  EXPECT_DOUBLE_EQ(m.ScanCost(), 0);
  EXPECT_DOUBLE_EQ(m.BinaryOpCost(10, 3, 4), 17);
  EXPECT_DOUBLE_EQ(m.GroupingCost(5, 7), 12);
  EXPECT_DOUBLE_EQ(m.MapCost(7), 7);  // χ and Π are free
}

}  // namespace
}  // namespace eadp
