#include "cardinality/estimator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cost/cost_model.h"
#include "plangen/plangen.h"

namespace eadp {
namespace {

Catalog MakeCatalog() {
  Catalog c;
  int r0 = c.AddRelation("R0", 1000);
  c.AddAttribute(r0, "R0.j", 100);
  c.AddAttribute(r0, "R0.g", 10);
  int r1 = c.AddRelation("R1", 50);
  c.AddAttribute(r1, "R1.j", 50);
  return c;
}

TEST(Estimator, BaseCardinality) {
  Catalog c = MakeCatalog();
  CardinalityEstimator e(&c);
  EXPECT_DOUBLE_EQ(e.BaseCardinality(0), 1000);
  EXPECT_DOUBLE_EQ(e.BaseCardinality(1), 50);
}

TEST(Estimator, DistinctCappedByCardinality) {
  Catalog c = MakeCatalog();
  CardinalityEstimator e(&c);
  EXPECT_DOUBLE_EQ(e.DistinctInCard(0, 1000), 100);
  EXPECT_DOUBLE_EQ(e.DistinctInCard(0, 30), 30);  // capped
}

TEST(Estimator, GroupingCardinality) {
  Catalog c = MakeCatalog();
  CardinalityEstimator e(&c);
  AttrSet g;
  g.Add(1);  // d = 10
  EXPECT_DOUBLE_EQ(e.GroupingCardinality(g, 1000), 10);
  g.Add(0);  // d = 100 -> product 1000 capped at input card
  EXPECT_DOUBLE_EQ(e.GroupingCardinality(g, 500), 500);
  // Empty grouping: a single group (scalar aggregation).
  EXPECT_DOUBLE_EQ(e.GroupingCardinality(AttrSet(), 500), 1);
}

TEST(Estimator, InnerJoinCardinality) {
  Catalog c = MakeCatalog();
  CardinalityEstimator e(&c);
  EXPECT_DOUBLE_EQ(e.JoinCardinality(OpKind::kJoin, 1000, 50, 0.01), 500);
}

TEST(Estimator, OuterJoinsAtLeastPreservedSide) {
  Catalog c = MakeCatalog();
  CardinalityEstimator e(&c);
  // Low selectivity: left outer keeps all left rows.
  EXPECT_DOUBLE_EQ(e.JoinCardinality(OpKind::kLeftOuter, 1000, 50, 1e-6),
                   1000);
  // Full outer keeps both unmatched sides.
  double k = e.JoinCardinality(OpKind::kFullOuter, 1000, 50, 1e-6);
  EXPECT_GE(k, 1000 + 50 - 1);
}

TEST(Estimator, SemiAntiPartitionLeft) {
  Catalog c = MakeCatalog();
  CardinalityEstimator e(&c);
  double semi = e.JoinCardinality(OpKind::kLeftSemi, 1000, 50, 0.01);
  double anti = e.JoinCardinality(OpKind::kLeftAnti, 1000, 50, 0.01);
  EXPECT_DOUBLE_EQ(semi + anti, 1000);
  EXPECT_LE(semi, 1000);
  // Semi probability saturates at 1.
  EXPECT_DOUBLE_EQ(e.JoinCardinality(OpKind::kLeftSemi, 1000, 50, 1.0), 1000);
}

TEST(Estimator, GroupJoinKeepsLeftCardinality) {
  Catalog c = MakeCatalog();
  CardinalityEstimator e(&c);
  EXPECT_DOUBLE_EQ(e.JoinCardinality(OpKind::kGroupJoin, 1000, 50, 0.5),
                   1000);
}

TEST(CostModel, CoutDefinition) {
  CostModel m;
  EXPECT_DOUBLE_EQ(m.ScanCost(), 0);
  EXPECT_DOUBLE_EQ(m.BinaryOpCost(10, 3, 4), 17);
  EXPECT_DOUBLE_EQ(m.GroupingCost(5, 7), 12);
  EXPECT_DOUBLE_EQ(m.MapCost(7), 7);  // χ and Π are free
}

// --- Overflow regression: no non-finite value ever escapes the estimator.
// Before the kMaxCardinality clamp, the independence product along a deep
// chain reached inf in a few dozen joins (1e8 growth per step), and the
// generator only dodged it by bounding |R|*sel per step in the workload.

TEST(EstimatorOverflow, DeepChainSaturatesInsteadOfOverflowing) {
  Catalog c = MakeCatalog();
  CardinalityEstimator e(&c);
  // 60 joins each growing the result by 1e8: the unclamped product is
  // 1e8 * (1e8)^60 ~ 1e488 — far past inf (1.8e308).
  double card = 1e8;
  for (int step = 0; step < 60; ++step) {
    card = e.JoinCardinality(OpKind::kJoin, card, 1e8, 1.0);
    ASSERT_TRUE(std::isfinite(card)) << "step " << step;
  }
  EXPECT_DOUBLE_EQ(card, CardinalityEstimator::kMaxCardinality);
}

TEST(EstimatorOverflow, SaturatedInputsNeverProduceInfOrNaN) {
  Catalog c = MakeCatalog();
  CardinalityEstimator e(&c);
  double huge = CardinalityEstimator::kMaxCardinality;
  for (OpKind kind : {OpKind::kJoin, OpKind::kLeftSemi, OpKind::kLeftAnti,
                      OpKind::kLeftOuter, OpKind::kFullOuter,
                      OpKind::kGroupJoin}) {
    for (double sel : {1.0, 1e-3, 1e-200}) {
      double card = e.JoinCardinality(kind, huge, huge, sel);
      EXPECT_TRUE(std::isfinite(card)) << static_cast<int>(kind) << " " << sel;
      EXPECT_FALSE(std::isnan(card));
      EXPECT_LE(card, huge);
    }
  }
  // kFullOuter at saturation is the historically nastiest case: its
  // unmatched-side subtractions see `inner` products of already-huge
  // inputs. With clamped inputs inner stays finite and so does the sum.
  double full = e.JoinCardinality(OpKind::kFullOuter, huge, huge, 1e-5);
  EXPECT_TRUE(std::isfinite(full));
  // Inputs *above* the ceiling (e.g. a caller that chained products
  // without clamping) are clamped on entry rather than trusted.
  EXPECT_TRUE(std::isfinite(e.JoinCardinality(OpKind::kJoin, 1e300, 1e300,
                                              1.0)));
  EXPECT_TRUE(std::isfinite(e.GroupingCardinality(AttrSet::Single(0), 1e300)));
}

TEST(EstimatorOverflow, KeyImpliedBoundIsAlwaysFinite) {
  Catalog c;
  int r0 = c.AddRelation("R0", 1e12);
  // Two attributes with 1e80 distinct values each: the key product 1e160
  // exceeds the ceiling and must saturate, not overflow onward.
  int a0 = c.AddAttribute(r0, "R0.a", 1e80);
  int a1 = c.AddAttribute(r0, "R0.b", 1e80);
  CardinalityEstimator e(&c);
  std::vector<AttrSet> keys;
  // No keys: the bound must be the (finite) ceiling, leaving
  // min(estimate, bound) a no-op instead of comparing against inf.
  EXPECT_DOUBLE_EQ(e.KeyImpliedBound(keys),
                   CardinalityEstimator::kMaxCardinality);
  AttrSet both;
  both.Add(a0);
  both.Add(a1);
  keys.push_back(both);
  EXPECT_DOUBLE_EQ(e.KeyImpliedBound(keys),
                   CardinalityEstimator::kMaxCardinality);
}

/// A chain query whose unclamped estimates overflow: n relations of 1e30
/// rows, consecutive equalities with selectivity 1e-2, growth ~1e28 per
/// step — 12 relations reach ~1e338, past double's 1.8e308.
Query OverflowingChainQuery(int n) {
  Catalog catalog;
  std::vector<int> attrs;
  JoinPredicate dummy;
  std::unique_ptr<OpTreeNode> root;
  for (int i = 0; i < n; ++i) {
    std::string name = "R";
    name += std::to_string(i);
    int r = catalog.AddRelation(name, 1e30);
    attrs.push_back(catalog.AddAttribute(r, name + ".j", 100));
    if (i == 0) {
      root = OpTreeNode::Leaf(r);
    } else {
      JoinPredicate pred;
      pred.AddEquality(attrs[static_cast<size_t>(i) - 1],
                       attrs[static_cast<size_t>(i)]);
      root = OpTreeNode::Binary(OpKind::kJoin, std::move(root),
                                OpTreeNode::Leaf(r), pred, 1e-2);
    }
  }
  AggregateVector aggs;
  AggregateFunction cnt;
  cnt.output = "cnt";
  cnt.kind = AggKind::kCountStar;
  aggs.push_back(cnt);
  Query q = Query::FromTree(std::move(catalog), std::move(root),
                            AttrSet::Single(0), std::move(aggs));
  q.Canonicalize();
  return q;
}

TEST(EstimatorOverflow, OptimizerSurvivesPreviouslyOverflowingChain) {
  // Exact-DP path (n = 12 routes through the exhaustive enumeration) and
  // the large-query path (n = 40 routes through the kGoo/kIdp race): every
  // plan property and the final cost stay finite end to end.
  for (int n : {12, 40}) {
    Query q = OverflowingChainQuery(n);
    OptimizeResult r = OptimizeAdaptive(q, OptimizerOptions{});
    ASSERT_NE(r.plan, nullptr) << "n=" << n;
    EXPECT_TRUE(std::isfinite(r.plan->cost)) << "n=" << n;
    EXPECT_TRUE(std::isfinite(r.plan->cardinality)) << "n=" << n;
    EXPECT_TRUE(std::isfinite(r.plan->raw_cardinality)) << "n=" << n;
    EXPECT_TRUE(std::isfinite(r.plan->pregroup_cardinality)) << "n=" << n;
    EXPECT_GT(r.plan->cost, 0) << "n=" << n;
  }
}

}  // namespace
}  // namespace eadp
